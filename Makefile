# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench bench-parallel bench-alloc bench-scale bench-batch bench-durable bench-shard bench-push fuzz smoke chaos examples harness regen outputs

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# The concurrent tier: parallel FindNSM/Table-3.1 arrangements, workload
# throughput, and the cache/resolver contention micro-benchmarks.
bench-parallel:
	go test -bench 'Parallel|Throughput|ShardContention|CacheKey' -benchmem -run NONE ./...

# Allocation gate: the warm wire path (frame encode/decode) and the warm
# binding-cached FindNSM must stay at <=1 alloc/op. `-update` refreshes the
# BENCH_wire.json baseline after an intentional change.
bench-alloc:
	./scripts/bench_alloc.sh

# The fleet-scale scenario matrix: every named workload scenario at each
# client-count decade, written to BENCH_scale.json. Sim-side cells are
# deterministic per seed; ops/sec is wall-clock.
bench-scale:
	go run ./cmd/hnsbench -prose scale

# The batch/admission experiment: frame amortization, batched-vs-single
# throughput, and the 10k-caller shed arms, written to BENCH_batch.json.
bench-batch:
	go run ./cmd/hnsbench -prose batch

# The durability experiment: fsync-policy cost and checkpointed recovery
# time on a real directory, written to BENCH_durable.json.
bench-durable:
	go run ./cmd/hnsbench -prose durable

# The sharded meta-store experiment: warm-lookup parity, journaled update
# scaling at 1/2/4/8 shards, and the kill-one availability arm, written
# to BENCH_shard.json.
bench-shard:
	go run ./cmd/hnsbench -prose shard

# The push-invalidation experiment: authority fetches and NOTIFY
# propagation at 1k/10k/100k clients, push vs TTL-poll, plus the IXFR
# byte comparison, written to BENCH_push.json.
bench-push:
	go run ./cmd/hnsbench -prose push

# Short exploratory fuzzing over every wire codec.
fuzz:
	go test -fuzz FuzzDecodeMessage -fuzztime 15s ./internal/bind/
	go test -fuzz FuzzBatchDecode -fuzztime 10s ./internal/bind/
	go test -fuzz FuzzSunRPCControl -fuzztime 10s ./internal/hrpc/
	go test -fuzz FuzzCourierControl -fuzztime 10s ./internal/hrpc/
	go test -fuzz FuzzRawControl -fuzztime 10s ./internal/hrpc/
	go test -fuzz FuzzXDRDecode -fuzztime 10s ./internal/marshal/
	go test -fuzz FuzzCourierDecode -fuzztime 10s ./internal/marshal/
	go test -fuzz FuzzFindBatchDecode -fuzztime 10s ./internal/core/
	go test -fuzz FuzzSpecValidate -fuzztime 10s ./internal/workload/
	go test -fuzz FuzzWALDecode -fuzztime 10s ./internal/store/
	go test -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/store/
	go test -fuzz FuzzShardMapDecode -fuzztime 10s ./internal/shard/
	go test -fuzz FuzzIXFRDecode -fuzztime 10s ./internal/bind/
	go test -fuzz FuzzNotifyDecode -fuzztime 10s ./internal/push/

# Multi-process deployment over real sockets.
smoke:
	./scripts/smoke.sh

# The failure-injection tier: the seeded availability experiment (replica
# kill, loss bursts, total blackout) plus the failover, breaker, and
# fault-plan test suites under the race detector.
chaos:
	go test -race -run 'TestRunAvailability' ./internal/experiments/
	go test -race -run 'TestFailover|TestPlan|TestFaulty|TestUnavailable' ./internal/transport/ ./internal/hrpc/
	go test -race ./internal/health/
	go run ./cmd/hnsbench -prose availability

examples:
	go run ./examples/quickstart
	go run ./examples/binding
	go run ./examples/evolving
	go run ./examples/mailrouting
	go run ./examples/filing
	go run ./examples/looseintegration

# Regenerate every paper table/figure/prose measurement.
harness:
	go run ./cmd/hnsbench -all

# Regenerate checked-in stub-compiler output.
regen:
	go run ./cmd/hrpcgen -in internal/gen/greeter/greeter.idl \
		-pkg greeter -out internal/gen/greeter/greeter_stubs.go

# The final-verification artifacts EXPERIMENTS.md points at.
outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
