// The parallel benchmark tier: throughput beyond the paper. Table 3.1 and
// 3.2 time one caller at a time — the 1987 prototype served one MicroVAX.
// These benchmarks drive the same FindNSM hot path from many goroutines at
// once (b.RunParallel) and report real ops/sec and ns/op alongside the
// simulated figures, plus the cache-contention counters that justify the
// sharded meta-cache. See EXPERIMENTS.md "Throughput beyond the paper" for
// measured numbers and the single-core-container caveat.
package hns_test

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hns/internal/bind"
	"hns/internal/colocate"
	"hns/internal/core"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/workload"
	"hns/internal/world"
)

// reportOpsPerSec adds real aggregate throughput to a parallel benchmark.
func reportOpsPerSec(b *testing.B) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "ops/sec")
	}
}

// ---- Warm FindNSM under concurrency: the tentpole A/B.
//
// One shared HNS, every goroutine hammering the cache-warm FindNSM (the
// call clients make "on nearly every binding"). The two arms differ only
// in the meta-cache lock layout: a single mutex versus the sharded cache.
// lock-waits/op counts mutex acquisitions that had to block — the
// contention the shards exist to remove.
func BenchmarkParallelFindNSMWarm(b *testing.B) {
	for _, arm := range []struct {
		name   string
		shards int
	}{
		{"SingleMutexCache", 1},
		{"ShardedCache", 0},
	} {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			w := newBenchWorld(b)
			ctx := context.Background()
			h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled, CacheShards: arm.shards})
			name := world.DesiredServiceName()
			if _, err := h.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
				b.Fatal(err)
			}
			var totalSim atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var local time.Duration
				for pb.Next() {
					cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
						_, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
						return err
					})
					if err != nil {
						b.Fail()
						return
					}
					local += cost
				}
				totalSim.Add(int64(local))
			})
			b.StopTimer()
			reportSimMS(b, time.Duration(totalSim.Load()))
			reportOpsPerSec(b)
			b.ReportMetric(float64(h.Stats().Cache.LockWaits)/float64(b.N), "lock-waits/op")
		})
	}
}

// ---- Table 3.1 arrangements, concurrently.
//
// The same warm Import the Table 3.1 columns time, but issued from many
// goroutines against one importer per arrangement. Run under -race this
// doubles as the end-to-end transport/cache safety check for every
// client–HNS–NSM placement the paper evaluates.
func BenchmarkParallelTable31Warm(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	for i, arr := range colocate.Arrangements() {
		arr := arr
		b.Run(fmt.Sprintf("row%d_%s", i+1, sanitize(arr.String())), func(b *testing.B) {
			im, err := colocate.New(w, arr, bind.CacheMarshalled)
			if err != nil {
				b.Fatal(err)
			}
			defer im.Close()
			if _, err := im.Import(ctx, world.DesiredService,
				world.DesiredProgram, world.DesiredVersion, colocate.BindHostName()); err != nil {
				b.Fatal(err)
			}
			var totalSim atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var local time.Duration
				for pb.Next() {
					cost, err := colocate.MeasureImport(ctx, im, world.DesiredService,
						world.DesiredProgram, world.DesiredVersion, colocate.BindHostName())
					if err != nil {
						b.Fail()
						return
					}
					local += cost
				}
				totalSim.Add(int64(local))
			})
			b.StopTimer()
			reportSimMS(b, time.Duration(totalSim.Load()))
			reportOpsPerSec(b)
		})
	}
}

// ---- Many-client mixed warm/cold workload.
//
// The workload runner's concurrent mode: every synthetic client on its own
// goroutine, Zipf locality, real wall-clock throughput per placement. The
// shared placements funnel all clients through one meta-cache — the
// arrangement whose lock contention the shards address.
func BenchmarkWorkloadThroughput(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	const contexts = 6
	for i := 0; i < contexts; i++ {
		if _, err := w.AddSyntheticType(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
	spec := workload.Spec{Clients: 12, OpsPerClient: 8, Contexts: contexts, Skew: 1.3, Seed: 7}
	for _, placement := range []workload.Placement{
		workload.LocalHNS, workload.SharedRemoteHNS, workload.SharedLocalHNS,
	} {
		placement := placement
		b.Run(placement.String(), func(b *testing.B) {
			var totalSim time.Duration
			var ops float64
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				res, err := workload.RunConcurrent(ctx, w, spec, placement)
				if err != nil {
					b.Fatal(err)
				}
				totalSim += res.MeanOpCost
				ops += res.OpsPerSec
			}
			b.StopTimer()
			b.ReportMetric(float64(totalSim)/float64(time.Millisecond)/float64(b.N), "sim-ms/meanop")
			b.ReportMetric(ops/float64(b.N), "findnsm-ops/sec")
		})
	}
}

// TestParallelWarmScaling asserts the tentpole claim — sharding the
// meta-cache lifts warm-path throughput under real parallelism — on
// hardware that can express it. A single-core container cannot run two
// goroutines at once, so there the sharded and single-mutex arms are
// indistinguishable (no contention exists) and the test skips.
func TestParallelWarmScaling(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >=4 CPUs to measure parallel scaling, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("scaling measurement is slow")
	}
	ctx := context.Background()
	measure := func(shards int) float64 {
		w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled, CacheShards: shards})
		name := world.DesiredServiceName()
		if _, err := h.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
			t.Fatal(err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := h.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
						b.Fail()
						return
					}
				}
			})
		})
		return float64(res.N) / res.T.Seconds()
	}
	single := measure(1)
	sharded := measure(0)
	t.Logf("warm FindNSM ops/sec: single-mutex %.0f, sharded %.0f (%.2fx)",
		single, sharded, sharded/single)
	// The shards must at least not lose; on contended multi-core hardware
	// they should win clearly. The 1.0 floor keeps the assertion honest
	// without flaking on scheduler noise.
	if sharded < single*0.9 {
		t.Fatalf("sharded cache slower than single mutex under parallelism: %.0f vs %.0f ops/sec",
			sharded, single)
	}
}
