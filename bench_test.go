// Package hns_test holds the testing.B benchmark suite: one benchmark per
// table and figure of the paper's evaluation, plus ablation benches for
// the design choices DESIGN.md calls out. Each benchmark reports the
// simulated milliseconds per operation ("sim-ms/op") alongside Go's real
// wall-clock numbers; the simulated figures are the ones comparable to the
// paper (see EXPERIMENTS.md).
package hns_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hns/internal/bind"
	"hns/internal/colocate"
	"hns/internal/core"
	"hns/internal/experiments"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/regbaseline"
	"hns/internal/simtime"
	"hns/internal/workload"
	"hns/internal/world"
)

func newBenchWorld(b *testing.B) *world.World {
	b.Helper()
	w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	return w
}

func reportSimMS(b *testing.B, total time.Duration) {
	b.Helper()
	b.ReportMetric(float64(total)/float64(time.Millisecond)/float64(b.N), "sim-ms/op")
}

// ---- Table 3.1: one benchmark per (arrangement, cache state) cell.

func BenchmarkTable31(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	for i, arr := range colocate.Arrangements() {
		arr := arr
		for _, col := range []struct {
			name  string
			state string
		}{
			{"A_CacheMiss", "miss"},
			{"B_HNSHit", "hnshit"},
			{"C_BothHit", "bothhit"},
		} {
			col := col
			b.Run(fmt.Sprintf("row%d_%s/%s", i+1, sanitize(arr.String()), col.name), func(b *testing.B) {
				im, err := colocate.New(w, arr, bind.CacheMarshalled)
				if err != nil {
					b.Fatal(err)
				}
				defer im.Close()
				// Warm connections.
				if _, err := im.Import(ctx, world.DesiredService,
					world.DesiredProgram, world.DesiredVersion, colocate.BindHostName()); err != nil {
					b.Fatal(err)
				}
				var totalSim time.Duration
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					b.StopTimer()
					switch col.state {
					case "miss":
						im.FlushHNSCache()
						im.FlushNSMCache()
					case "hnshit":
						im.FlushNSMCache()
					}
					b.StartTimer()
					cost, err := colocate.MeasureImport(ctx, im, world.DesiredService,
						world.DesiredProgram, world.DesiredVersion, colocate.BindHostName())
					if err != nil {
						b.Fatal(err)
					}
					totalSim += cost
				}
				b.StopTimer()
				reportSimMS(b, totalSim)
			})
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '[', ']', ',', ' ':
			// drop
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// ---- Table 3.2: cache access speed by marshalling form.

func BenchmarkTable32(b *testing.B) {
	w := newBenchWorld(b)
	ln, hb, err := hrpc.Serve(w.Net, w.BindServer.HRPCServer(), hrpc.SuiteLocal,
		"fiji", "fiji:bind-hrpc-bench32")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	client := hrpc.NewClient(w.Net)
	b.Cleanup(func() { client.Close() })
	backend := bind.NewHRPCClient(client, hb)
	ctx := context.Background()

	cases := []struct {
		records int
		name    string
	}{
		{1, world.HostBind},
		{6, world.GatewayHost},
	}
	for _, c := range cases {
		for _, mode := range []bind.CacheMode{bind.CacheMarshalled, bind.CacheDemarshalled} {
			c, mode := c, mode
			b.Run(fmt.Sprintf("%dRR/%sHit", c.records, mode), func(b *testing.B) {
				r := bind.NewResolver(backend, w.Model, bind.ResolverConfig{Mode: mode})
				if _, err := r.Lookup(ctx, c.name, bind.TypeA); err != nil {
					b.Fatal(err)
				}
				var totalSim time.Duration
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
						_, err := r.Lookup(ctx, c.name, bind.TypeA)
						return err
					})
					if err != nil {
						b.Fatal(err)
					}
					totalSim += cost
				}
				reportSimMS(b, totalSim)
			})
		}
		c := c
		b.Run(fmt.Sprintf("%dRR/Miss", c.records), func(b *testing.B) {
			r := bind.NewResolver(backend, w.Model, bind.ResolverConfig{})
			var totalSim time.Duration
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				r.Purge()
				b.StartTimer()
				cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
					_, err := r.Lookup(ctx, c.name, bind.TypeA)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				totalSim += cost
			}
			b.StopTimer()
			reportSimMS(b, totalSim)
		})
	}
}

// ---- Figure 2.1: the two-world query flow.

func BenchmarkFigure21QueryFlow(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	im, err := colocate.New(w, colocate.ClientHNSNSMs, bind.CacheMarshalled)
	if err != nil {
		b.Fatal(err)
	}
	defer im.Close()
	var totalSim time.Duration
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
			if _, err := im.Import(ctx, "fileserver", world.CourierProgram,
				world.CourierVersion, "ch!"+world.CourierService); err != nil {
				return err
			}
			_, err := im.Import(ctx, world.DesiredService, world.DesiredProgram,
				world.DesiredVersion, colocate.BindHostName())
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		totalSim += cost
	}
	reportSimMS(b, totalSim)
}

// ---- Prose measurements.

func BenchmarkFindNSM(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	name := world.DesiredServiceName()

	b.Run("Uncached", func(b *testing.B) {
		h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled})
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			b.StopTimer()
			h.FlushCache()
			w.BindHostNSM.FlushCache()
			b.StartTimer()
			cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		b.StopTimer()
		reportSimMS(b, totalSim)
	})
	b.Run("Cached", func(b *testing.B) {
		h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled})
		if _, err := h.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
			b.Fatal(err)
		}
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		reportSimMS(b, totalSim)
	})
	b.Run("CachedDemarshalled", func(b *testing.B) {
		// Ablation: the Table 3.2 fix applied to the HNS cache.
		h := w.NewHNS(core.Config{CacheMode: bind.CacheDemarshalled})
		if _, err := h.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
			b.Fatal(err)
		}
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		reportSimMS(b, totalSim)
	})
}

// BenchmarkFindNSMWarmAllocs pins the warm FindNSM's heap behaviour: with
// the resolved-binding cache on and instrumentation off, a repeat call is
// one cache-key build plus a probe — at most 1 alloc/op, enforced by the
// bench-alloc gate (scripts/bench_alloc.sh). Wall-clock only; sim cost of
// the binding-cache arrangement is covered by the replycache experiment.
func BenchmarkFindNSMWarmAllocs(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	name := world.DesiredServiceName()
	h := w.NewHNS(core.Config{
		CacheMode:       bind.CacheDemarshalled,
		Metrics:         metrics.Discard,
		BindingCacheTTL: time.Hour,
	})
	if _, err := h.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := h.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Observability guard: instrumentation overhead on the warm path.
//
// The metrics layer must be effectively free where it matters most: the
// cache-warm FindNSM, the call the paper says clients make "on nearly
// every binding". Two identical warm-path arms differ only in the
// registry: a live one (counters, per-step histograms, warm/cold
// classification all active) versus metrics.Discard (every instrument a
// nil no-op). Compare the wall-clock ns/op; the budget is <5% overhead.
// EXPERIMENTS.md records the measured numbers.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	name := world.DesiredServiceName()

	arm := func(reg *metrics.Registry) func(*testing.B) {
		return func(b *testing.B) {
			h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled, Metrics: reg})
			if _, err := h.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
				b.Fatal(err)
			}
			var totalSim time.Duration
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
					_, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				totalSim += cost
			}
			reportSimMS(b, totalSim)
		}
	}
	b.Run("Instrumented", arm(metrics.NewRegistry()))
	b.Run("Discard", arm(metrics.Discard))
}

func BenchmarkUnderlyingLookups(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	b.Run("BIND", func(b *testing.B) {
		std := w.BindStdClient()
		defer std.Close()
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := std.Lookup(ctx, world.HostBind, bind.TypeA)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		reportSimMS(b, totalSim)
	})
	b.Run("Clearinghouse", func(b *testing.B) {
		res, err := experiments.RunUnderlying(ctx, w)
		if err != nil {
			b.Fatal(err)
		}
		var totalSim time.Duration
		for n := 0; n < b.N; n++ {
			totalSim += res.Clearinghouse
		}
		reportSimMS(b, totalSim)
	})
}

func BenchmarkBaselines(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()

	b.Run("ReplicatedFiles", func(b *testing.B) {
		fr := regbaseline.NewFileRegistry(w.Model)
		for i := 0; i < experiments.PaperBaselineEntries; i++ {
			fr.Add(regbaseline.FileEntry{
				Service: fmt.Sprintf("svc-%d", i), Host: "fiji",
				Binding: hrpc.SuiteSunRPC.Bind("fiji", fmt.Sprintf("fiji:%d", i), uint32(i), 1),
			})
		}
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := fr.Import(ctx, "svc-0", "fiji")
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		reportSimMS(b, totalSim)
	})
	b.Run("ReregisteredCH", func(b *testing.B) {
		cr := regbaseline.NewCHRegistry(w.CHClient(), w.Model, world.CHDomain, world.CHOrg)
		if err := cr.Register(ctx, "svc", hrpc.SuiteSunRPC.Bind("fiji", "fiji:1", 1, 1)); err != nil {
			b.Fatal(err)
		}
		if _, err := cr.Import(ctx, "svc"); err != nil {
			b.Fatal(err)
		}
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := cr.Import(ctx, "svc")
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		reportSimMS(b, totalSim)
	})
}

func BenchmarkPreload(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	var totalSim time.Duration
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled})
		b.StartTimer()
		cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
			_, err := h.Preload(ctx)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		totalSim += cost
	}
	b.StopTimer()
	reportSimMS(b, totalSim)
}

// ---- Ablation: collapsed meta-mappings.
//
// DESIGN.md calls out the choice of keeping FindNSM's mappings separate
// rather than collapsing (context, query class) directly to an NSM
// binding. The collapsed design would do one meta lookup instead of five —
// cheaper cold, but it duplicates binding data per context and cannot
// share cached name-service or host records across contexts. This
// benchmark quantifies the cold-path cost the separate mappings pay.
func BenchmarkAblationCollapsedMapping(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()

	b.Run("SeparateMappings", func(b *testing.B) {
		h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled})
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			b.StopTimer()
			h.FlushCache()
			w.BindHostNSM.FlushCache()
			b.StartTimer()
			cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := h.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		b.StopTimer()
		reportSimMS(b, totalSim)
	})
	b.Run("CollapsedSingleLookup", func(b *testing.B) {
		// Simulate the collapsed design: one meta record carrying the
		// whole answer (one remote lookup, no sharing).
		meta := w.MetaHRPCClient()
		pre, err := w.HNS.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
		if err != nil {
			b.Fatal(err)
		}
		collapsedName := "collapsed." + world.CtxBind + ".ctx." + world.MetaZone
		if _, err := meta.Update(ctx, world.MetaZone, bind.UpdateAdd,
			bind.HNSMeta(collapsedName, "binding="+pre.String(), 600)); err != nil {
			b.Fatal(err)
		}
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := meta.Lookup(ctx, collapsedName, bind.TypeHNSMeta)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		reportSimMS(b, totalSim)
	})
}

// ---- Micro-benchmarks of the data structures themselves (real time).

func BenchmarkWireEncodeDecode(b *testing.B) {
	m := &bind.Message{ID: 1, Response: true, QName: world.HostBind, QType: bind.TypeA,
		Answers: []bind.RR{bind.A(world.HostBind, "fiji", 600)}}
	b.Run("Encode", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, err := bind.EncodeMessage(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	buf, err := bind.EncodeMessage(m)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Decode", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, err := bind.DecodeMessage(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHNSNameParse(b *testing.B) {
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, err := names.Parse("hrpcbinding-bind!fiji.cs.washington.edu"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: binding cost vs registry size.
//
// The file baseline scans all reregistered data per binding, so it
// degrades with federation size; the HNS touches only the queried
// context's records, so it stays flat — the load "is naturally
// distributed among the subsystems".
func BenchmarkBindingVsRegistrySize(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()

	for _, entries := range []int{50, 200, 800} {
		entries := entries
		b.Run(fmt.Sprintf("ReplicatedFiles/%dentries", entries), func(b *testing.B) {
			fr := regbaseline.NewFileRegistry(w.Model)
			for i := 0; i < entries; i++ {
				fr.Add(regbaseline.FileEntry{
					Service: fmt.Sprintf("svc-%d", i), Host: "fiji",
					Binding: hrpc.SuiteSunRPC.Bind("fiji", fmt.Sprintf("fiji:%d", i), uint32(i), 1),
				})
			}
			var totalSim time.Duration
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
					_, err := fr.Import(ctx, "svc-0", "fiji")
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				totalSim += cost
			}
			reportSimMS(b, totalSim)
		})
	}
	b.Run("HNS/warm", func(b *testing.B) {
		im, err := colocate.New(w, colocate.ClientHNSNSMs, bind.CacheMarshalled)
		if err != nil {
			b.Fatal(err)
		}
		defer im.Close()
		if _, err := im.Import(ctx, world.DesiredService,
			world.DesiredProgram, world.DesiredVersion, colocate.BindHostName()); err != nil {
			b.Fatal(err)
		}
		var totalSim time.Duration
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			cost, err := colocate.MeasureImport(ctx, im, world.DesiredService,
				world.DesiredProgram, world.DesiredVersion, colocate.BindHostName())
			if err != nil {
				b.Fatal(err)
			}
			totalSim += cost
		}
		reportSimMS(b, totalSim)
	})
}

// ---- Workload: dynamic hit ratios by HNS placement (the paper's stated
// future work, see internal/workload).
func BenchmarkWorkloadPlacement(b *testing.B) {
	w := newBenchWorld(b)
	ctx := context.Background()
	const contexts = 6
	for i := 0; i < contexts; i++ {
		if _, err := w.AddSyntheticType(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
	spec := workload.Spec{Clients: 12, OpsPerClient: 3, Contexts: contexts, Skew: 1.3, Seed: 7}
	for _, placement := range []workload.Placement{workload.LocalHNS, workload.SharedRemoteHNS} {
		placement := placement
		b.Run(placement.String(), func(b *testing.B) {
			var totalSim time.Duration
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				res, err := workload.Run(ctx, w, spec, placement)
				if err != nil {
					b.Fatal(err)
				}
				totalSim += res.MeanOpCost
			}
			b.ReportMetric(float64(totalSim)/float64(time.Millisecond)/float64(b.N), "sim-ms/meanop")
		})
	}
}
