// Command bindd runs a BIND server over real sockets.
//
// It serves both interfaces: the standard DNS-style query interface over
// UDP, and the HRPC interface (Query/Update/Transfer — the "modified BIND"
// of the HNS prototype) over TCP. A bindd with -update enabled and an
// "hns" zone is a complete HNS meta-information repository.
//
// Usage:
//
//	bindd -host fiji -zone cs.washington.edu -update \
//	      -records zone.txt -hrpc 127.0.0.1:5301 -std 127.0.0.1:5302
//
// With -secondary, bindd instead mirrors its (single) zone from another
// bindd's HRPC interface by serial-checked zone transfer, re-checking
// every -refresh. A secondary is the replication arrangement real BIND
// used: point hnsd's -meta-replica at one and the meta-information
// survives the primary's death. Mirrors never accept updates, so
// -secondary excludes -update and -records.
//
//	bindd -host tahoma2 -zone hns -secondary 127.0.0.1:5301 \
//	      -refresh 30s -hrpc 127.0.0.1:5311
//
// Zone files use the line format of internal/bind.ParseZoneFile:
//
//	name  ttl  type  data...
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hns/internal/bind"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// zoneList collects repeated -zone flags.
type zoneList []string

func (z *zoneList) String() string     { return strings.Join(*z, ",") }
func (z *zoneList) Set(v string) error { *z = append(*z, v); return nil }

func main() {
	var (
		host     = flag.String("host", "localhost", "descriptive host name")
		zones    zoneList
		update   = flag.Bool("update", false, "enable dynamic updates on all zones (the modified BIND)")
		records  = flag.String("records", "", "zone file to load at startup")
		hrpcAddr = flag.String("hrpc", "127.0.0.1:5301", "HRPC interface listen address (TCP)")
		stdAddr  = flag.String("std", "127.0.0.1:5302", "standard interface listen address (UDP); empty disables")
		metrAddr = flag.String("metrics", "", "serve /metrics and /debug/hns on this address (empty disables)")
		secAddr  = flag.String("secondary", "", "mirror the zone from this primary bindd HRPC address (TCP) instead of serving authoritatively")
		refresh  = flag.Duration("refresh", 30*time.Second, "serial-check interval in -secondary mode")
		replyTTL = flag.Duration("reply-cache", 0, "answer repeat identical requests from cached pre-marshalled replies for this long (0 disables); invalidated on update and zone transfer")
	)
	flag.Var(&zones, "zone", "zone origin to be authoritative for (repeatable)")
	mux := flag.Bool("mux", true, "dial multiplexed connections (tagged frames, many in-flight calls per socket); disable to speak the legacy serialized framing to pre-mux peers")
	flag.Parse()
	if len(zones) == 0 {
		log.Fatal("bindd: at least one -zone is required")
	}

	if *metrAddr != "" {
		msrv, err := metrics.Serve(*metrAddr, metrics.Default())
		if err != nil {
			log.Fatalf("bindd: metrics listen: %v", err)
		}
		defer msrv.Close()
		log.Printf("bindd: metrics on http://%s/metrics", msrv.Addr())
	}

	model := simtime.Default()
	net := transport.NewNetwork(model)
	net.SetMux(*mux)

	var srv *bind.Server
	if *secAddr != "" {
		// Secondary mode: a read-only mirror of one zone, kept current by
		// serial-checked transfers from the primary.
		if *update {
			log.Fatal("bindd: -secondary excludes -update (mirrors never accept updates)")
		}
		if *records != "" {
			log.Fatal("bindd: -secondary excludes -records (contents come from the primary)")
		}
		if len(zones) != 1 {
			log.Fatal("bindd: -secondary mirrors exactly one -zone")
		}
		rpc := hrpc.NewClient(net)
		rpc.FreshConn = true
		defer rpc.Close()
		primary := bind.NewHRPCClient(rpc,
			hrpc.SuiteRawNet.Bind(*secAddr, *secAddr, bind.HRPCProgram, bind.HRPCVersion))
		sec, err := bind.NewSecondary(primary, zones[0], *host, model)
		if err != nil {
			log.Fatalf("bindd: %v", err)
		}
		srv = sec.Server()
		if _, err := sec.Refresh(context.Background()); err != nil {
			// A dead primary at startup is survivable: keep serving the
			// (empty) zone and keep trying — that is the point of a mirror.
			log.Printf("bindd: initial transfer from %s failed: %v (retrying every %s)",
				*secAddr, err, *refresh)
		} else {
			log.Printf("bindd: mirrored %s from %s at serial %d", zones[0], *secAddr, sec.Serial())
		}
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			ticker := time.NewTicker(*refresh)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					moved, err := sec.Refresh(context.Background())
					if err != nil {
						log.Printf("bindd: refresh: %v", err)
					} else if moved {
						// Transfers load the zone directly, below the
						// server's update hooks — drop cached replies so
						// the new contents are visible immediately.
						srv.InvalidateReplies()
						log.Printf("bindd: transferred %s at serial %d", zones[0], sec.Serial())
					}
				case <-stop:
					return
				}
			}
		}()
	} else {
		srv = bind.NewServer(*host, model)
		for _, origin := range zones {
			z, err := bind.NewZone(origin, *update)
			if err != nil {
				log.Fatalf("bindd: %v", err)
			}
			if err := srv.AddZone(z); err != nil {
				log.Fatalf("bindd: %v", err)
			}
		}
		if *records != "" {
			f, err := os.Open(*records)
			if err != nil {
				log.Fatalf("bindd: %v", err)
			}
			rrs, err := bind.ParseZoneFile(f)
			f.Close()
			if err != nil {
				log.Fatalf("bindd: %v", err)
			}
			if err := srv.LoadRecords(rrs); err != nil {
				log.Fatalf("bindd: %v", err)
			}
			log.Printf("bindd: loaded %d records from %s", len(rrs), *records)
		}
	}

	if *replyTTL > 0 {
		srv.EnableReplyCache(nil, *replyTTL, 0)
		log.Printf("bindd: reply cache enabled, ttl %s", *replyTTL)
	}

	hrpcLn, binding, err := hrpc.Serve(net, srv.HRPCServer(), hrpc.SuiteRawNet, *host, *hrpcAddr)
	if err != nil {
		log.Fatalf("bindd: hrpc listen: %v", err)
	}
	defer hrpcLn.Close()
	log.Printf("bindd: %s serving HRPC interface %s, zones %v, updates=%v",
		*host, binding, zones, *update)

	if *stdAddr != "" {
		stdLn, err := srv.ServeStd(net, "udp-net", *stdAddr)
		if err != nil {
			log.Fatalf("bindd: std listen: %v", err)
		}
		defer stdLn.Close()
		log.Printf("bindd: %s serving standard interface on %s/udp", *host, stdLn.Addr())
	}

	waitForSignal()
	log.Println("bindd: shutting down")
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
