// Command bindd runs a BIND server over real sockets.
//
// It serves both interfaces: the standard DNS-style query interface over
// UDP, and the HRPC interface (Query/Update/Transfer — the "modified BIND"
// of the HNS prototype) over TCP. A bindd with -update enabled and an
// "hns" zone is a complete HNS meta-information repository.
//
// Usage:
//
//	bindd -host fiji -zone cs.washington.edu -update \
//	      -records zone.txt -hrpc 127.0.0.1:5301 -std 127.0.0.1:5302
//
// With -secondary, bindd instead mirrors its (single) zone from another
// bindd's HRPC interface by serial-checked zone transfer, re-checking
// every -refresh. A secondary is the replication arrangement real BIND
// used: point hnsd's -meta-replica at one and the meta-information
// survives the primary's death. Mirrors never accept updates, so
// -secondary excludes -update and -records.
//
//	bindd -host tahoma2 -zone hns -secondary 127.0.0.1:5301 \
//	      -refresh 30s -hrpc 127.0.0.1:5311
//
// With -data-dir, bindd is crash-safe: every acknowledged update (or
// applied transfer) is appended to a write-ahead log under the data
// directory before the reply goes out, checkpointed every
// -snapshot-every records, and recovered on restart to exactly the
// acknowledged prefix. -fsync picks the flush policy: "always" (default;
// an acked update survives even kill -9), "interval" (flushes every
// -fsync-interval; bounded loss window), or "never" (left to the OS). A
// restarted -secondary with a data dir resumes from its persisted mirror
// and serial — a serial probe instead of a cold full transfer. Without
// -data-dir nothing touches disk, exactly the in-memory BIND the paper
// measured.
//
// With -shard-id and -shard-peers, bindd serves one shard of a
// partitioned meta-store: names are owned by rendezvous hash over the
// peer set, updates for names another shard owns are answered with a
// NOTOWNER redirect, and a background puller rebalances this shard's
// slice from its peers over the zone-transfer path after an epoch bump.
//
//	bindd -host s0 -zone hns -update -shard-id s0 \
//	      -shard-peers s0=127.0.0.1:5301,s1=127.0.0.1:5303 -hrpc 127.0.0.1:5301
//
// Zone files use the line format of internal/bind.ParseZoneFile:
//
//	name  ttl  type  data...
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hns/internal/bind"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/push"
	"hns/internal/shard"
	"hns/internal/simtime"
	"hns/internal/store"
	"hns/internal/transport"
)

// zoneList collects repeated -zone flags.
type zoneList []string

func (z *zoneList) String() string     { return strings.Join(*z, ",") }
func (z *zoneList) Set(v string) error { *z = append(*z, v); return nil }

func main() {
	var (
		host     = flag.String("host", "localhost", "descriptive host name")
		zones    zoneList
		update   = flag.Bool("update", false, "enable dynamic updates on all zones (the modified BIND)")
		records  = flag.String("records", "", "zone file to load at startup")
		hrpcAddr = flag.String("hrpc", "127.0.0.1:5301", "HRPC interface listen address (TCP)")
		stdAddr  = flag.String("std", "127.0.0.1:5302", "standard interface listen address (UDP); empty disables")
		metrAddr = flag.String("metrics", "", "serve /metrics and /debug/hns on this address (empty disables)")
		secAddr  = flag.String("secondary", "", "mirror the zone from this primary bindd HRPC address (TCP) instead of serving authoritatively")
		refresh  = flag.Duration("refresh", 30*time.Second, "serial-check interval in -secondary mode")
		replyTTL = flag.Duration("reply-cache", 0, "answer repeat identical requests from cached pre-marshalled replies for this long (0 disables); invalidated on update and zone transfer")

		shardID    = flag.String("shard-id", "", "serve as this member of a sharded meta-store (requires -shard-peers)")
		shardPeers = flag.String("shard-peers", "", "full shard set as id=addr,... (must include -shard-id); names are owned by rendezvous hash")
		shardEpoch = flag.Uint("shard-epoch", 1, "shard map epoch to serve")
		shardSeed  = flag.Uint64("shard-seed", 0, "shard map hash seed")
		shardZone  = flag.String("shard-zone", "hns", "the sharded zone")
		shardPull  = flag.Duration("shard-pull", 5*time.Second, "rebalance-pull interval (serial probe per peer; transfer only when a peer's zone moved)")

		dataDir   = flag.String("data-dir", "", "persist zones here (WAL + snapshots) and recover on restart; empty keeps everything in memory")
		fsyncMode = flag.String("fsync", "always", "WAL flush policy with -data-dir: always, interval, or never")
		fsyncIntv = flag.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync=interval")
		snapEvery = flag.Int("snapshot-every", 1024, "checkpoint the zone set after this many journaled records (0 disables snapshots)")
	)
	flag.Var(&zones, "zone", "zone origin to be authoritative for (repeatable)")
	mux := flag.Bool("mux", true, "dial multiplexed connections (tagged frames, many in-flight calls per socket); disable to speak the legacy serialized framing to pre-mux peers")
	pushOn := flag.Bool("push", false, "enable the push plane: clients may Subscribe and every dynamic update fans out NOTIFY invalidations")
	pushMax := flag.Int("push-max", 0, "bound the subscriber table (0 = default 4096); overflow subscribers are refused and poll")
	ixfrWindow := flag.Int("ixfr-window", 0, "retain this many recent zone mutations for incremental (IXFR) transfer; 0 disables (every transfer full)")
	notify := flag.Bool("notify", false, "-secondary mode: subscribe to the primary's NOTIFY stream and refresh immediately on serial bumps (falls back to -refresh polling)")
	flag.Parse()
	if len(zones) == 0 {
		log.Fatal("bindd: at least one -zone is required")
	}

	if *metrAddr != "" {
		msrv, err := metrics.Serve(*metrAddr, metrics.Default())
		if err != nil {
			log.Fatalf("bindd: metrics listen: %v", err)
		}
		defer msrv.Close()
		log.Printf("bindd: metrics on http://%s/metrics", msrv.Addr())
	}

	model := simtime.Default()
	net := transport.NewNetwork(model)
	net.SetMux(*mux)

	// Crash safety: open the durable store (recovering any prior state)
	// before any zone exists, so recovered contents overlay the declared
	// zones and every later mutation is journaled.
	var durable *bind.Durable
	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("bindd: %v", err)
		}
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("bindd: %v", err)
		}
		fs, err := store.DirFS(*dataDir)
		if err != nil {
			log.Fatalf("bindd: %v", err)
		}
		durable, err = bind.OpenDurable(bind.DurableConfig{
			FS:            fs,
			Name:          *host,
			Fsync:         policy,
			FsyncInterval: *fsyncIntv,
			SnapshotEvery: *snapEvery,
		})
		if err != nil {
			log.Fatalf("bindd: opening %s: %v", *dataDir, err)
		}
		st := durable.Stats()
		log.Printf("bindd: recovered %s in %s (snapshot lsn %d, %d wal records replayed, %d torn bytes dropped)",
			*dataDir, st.Elapsed.Round(time.Millisecond), st.SnapshotLSN, st.Replayed, st.TornBytes)
	}

	var srv *bind.Server
	if *secAddr != "" {
		// Secondary mode: a read-only mirror of one zone, kept current by
		// serial-checked transfers from the primary.
		if *update {
			log.Fatal("bindd: -secondary excludes -update (mirrors never accept updates)")
		}
		if *records != "" {
			log.Fatal("bindd: -secondary excludes -records (contents come from the primary)")
		}
		if len(zones) != 1 {
			log.Fatal("bindd: -secondary mirrors exactly one -zone")
		}
		rpc := hrpc.NewClient(net)
		rpc.FreshConn = true
		defer rpc.Close()
		primary := bind.NewHRPCClient(rpc,
			hrpc.SuiteRawNet.Bind(*secAddr, *secAddr, bind.HRPCProgram, bind.HRPCVersion))
		sec, err := bind.NewSecondary(primary, zones[0], *host, model)
		if err != nil {
			log.Fatalf("bindd: %v", err)
		}
		srv = sec.Server()
		if durable != nil {
			// Resume the mirror from disk: the next Refresh is a serial
			// probe, not a cold full transfer, when the primary is where
			// we left it.
			for _, rz := range durable.Zones() {
				if rz.Origin != srv.Zone(zones[0]).Origin() {
					log.Printf("bindd: ignoring recovered zone %s (not mirrored here)", rz.Origin)
					continue
				}
				if err := sec.Restore(rz.Serial, rz.Records); err != nil {
					log.Fatalf("bindd: restoring mirror %s: %v", rz.Origin, err)
				}
				log.Printf("bindd: restored mirror %s at serial %d (%d records)",
					rz.Origin, rz.Serial, len(rz.Records))
			}
			durable.Attach(srv)
			sec.SetJournal(durable)
		}
		if _, err := sec.Refresh(context.Background()); err != nil {
			// A dead primary at startup is survivable: keep serving the
			// (empty) zone and keep trying — that is the point of a mirror.
			log.Printf("bindd: initial transfer from %s failed: %v (retrying every %s)",
				*secAddr, err, *refresh)
		} else {
			log.Printf("bindd: mirrored %s from %s at serial %d", zones[0], *secAddr, sec.Serial())
		}
		stop := make(chan struct{})
		defer close(stop)
		kick := make(chan struct{}, 1)
		if *notify {
			// NOTIFY-driven refresh: the primary pushes a serial bump the
			// moment an update lands, and the mirror pulls the diff right
			// away instead of waiting out the ticker. The ticker stays as
			// the backstop — push narrows the lag, polling bounds it.
			sub := primary.Subscribe(bind.SubscribeConfig{
				Zone: zones[0],
				OnNotify: func(push.Notification) {
					select {
					case kick <- struct{}{}:
					default:
					}
				},
				OnReset: func() {
					select {
					case kick <- struct{}{}:
					default:
					}
				},
			})
			defer sub.Close()
			log.Printf("bindd: subscribed to NOTIFY from %s (-refresh %s remains the backstop)",
				*secAddr, *refresh)
		}
		go func() {
			ticker := time.NewTicker(*refresh)
			defer ticker.Stop()
			refreshOnce := func() {
				moved, err := sec.Refresh(context.Background())
				if err != nil {
					log.Printf("bindd: refresh: %v", err)
				} else if moved {
					// Transfers load the zone directly, below the
					// server's update hooks — drop cached replies so
					// the new contents are visible immediately.
					srv.InvalidateReplies()
					if tab := srv.PushTable(); tab != nil {
						// Our own subscribers learn of the refresh as a
						// zone-level event (the exact change set is not
						// re-derived here).
						tab.Publish(push.Notification{Zone: srv.Zone(zones[0]).Origin(), Serial: sec.Serial()})
					}
					log.Printf("bindd: transferred %s at serial %d (%d incremental refreshes so far)",
						zones[0], sec.Serial(), sec.DeltaRefreshes())
				}
			}
			for {
				select {
				case <-ticker.C:
					refreshOnce()
				case <-kick:
					refreshOnce()
				case <-stop:
					return
				}
			}
		}()
	} else {
		srv = bind.NewServer(*host, model)
		for _, origin := range zones {
			z, err := bind.NewZone(origin, *update)
			if err != nil {
				log.Fatalf("bindd: %v", err)
			}
			if err := srv.AddZone(z); err != nil {
				log.Fatalf("bindd: %v", err)
			}
		}
		freshStore := durable == nil || durable.Empty()
		if durable != nil {
			for _, rz := range durable.Zones() {
				z := srv.Zone(rz.Origin)
				if z == nil {
					// State for a zone no -zone flag declares: keep it on
					// disk (a later run may declare it) but don't serve it.
					log.Printf("bindd: recovered zone %s not declared with -zone; not serving it", rz.Origin)
					continue
				}
				if err := z.Replace(rz.Records, rz.Serial); err != nil {
					log.Fatalf("bindd: overlaying recovered zone %s: %v", rz.Origin, err)
				}
				log.Printf("bindd: zone %s restored at serial %d (%d records)",
					rz.Origin, rz.Serial, len(rz.Records))
			}
			durable.Attach(srv)
		}
		if *records != "" && freshStore {
			f, err := os.Open(*records)
			if err != nil {
				log.Fatalf("bindd: %v", err)
			}
			rrs, err := bind.ParseZoneFile(f)
			f.Close()
			if err != nil {
				log.Fatalf("bindd: %v", err)
			}
			if err := srv.LoadRecords(rrs); err != nil {
				log.Fatalf("bindd: %v", err)
			}
			log.Printf("bindd: loaded %d records from %s", len(rrs), *records)
		} else if *records != "" {
			log.Printf("bindd: %s has recovered state; skipping -records (delete the data dir to reseed)", *dataDir)
		}
	}

	if *replyTTL > 0 {
		srv.EnableReplyCache(nil, *replyTTL, 0)
		log.Printf("bindd: reply cache enabled, ttl %s", *replyTTL)
	}

	// Sharded meta-store: gate updates by rendezvous ownership, install
	// the shard-map record, and pull our slice from peers on a ticker.
	// With no -shard-id this whole block is skipped and bindd is exactly
	// the single-primary server above.
	if *shardID != "" {
		if *secAddr != "" {
			log.Fatal("bindd: -shard-id excludes -secondary (shards are authoritative)")
		}
		if !*update {
			log.Fatal("bindd: -shard-id requires -update (shards take dynamic updates for their slice)")
		}
		members, err := shard.ParseMembers(*shardPeers)
		if err != nil {
			log.Fatalf("bindd: -shard-peers: %v", err)
		}
		m := shard.Map{Epoch: uint32(*shardEpoch), Seed: *shardSeed, Members: members}
		serving, err := shard.Serve(srv, shard.ServingConfig{
			ID:   *shardID,
			Zone: *shardZone,
			Map:  m,
		})
		if err != nil {
			log.Fatalf("bindd: %v", err)
		}
		log.Printf("bindd: shard %s of %d (zone %s, map epoch %d)",
			*shardID, len(members), *shardZone, m.Epoch)
		if *shardPull > 0 {
			rpc := hrpc.NewClient(net)
			defer rpc.Close()
			dial := shard.NewDialer(rpc, hrpc.SuiteRawNet)
			var peers []shard.Peer
			for _, mem := range members {
				if mem.ID == *shardID {
					continue
				}
				peers = append(peers, shard.Peer{ID: mem.ID, Client: dial(mem.Addr)})
			}
			puller := shard.NewPuller(serving, srv, peers, nil)
			stopPull := make(chan struct{})
			defer close(stopPull)
			go func() {
				ticker := time.NewTicker(*shardPull)
				defer ticker.Stop()
				for {
					select {
					case <-ticker.C:
						n, err := puller.Pull(context.Background())
						if n > 0 {
							srv.InvalidateReplies()
							log.Printf("bindd: rebalance pulled %d records", n)
						}
						if err != nil {
							log.Printf("bindd: rebalance: %v", err)
						}
					case <-stopPull:
						return
					}
				}
			}()
		}
	}

	if *notify && *secAddr == "" {
		log.Fatal("bindd: -notify requires -secondary (only mirrors subscribe to a primary)")
	}
	if *ixfrWindow > 0 {
		for _, origin := range zones {
			if z := srv.Zone(origin); z != nil {
				z.EnableDiffLog(*ixfrWindow)
			}
		}
		log.Printf("bindd: retaining a %d-mutation diff window per zone for incremental transfer", *ixfrWindow)
	}
	if *pushOn {
		srv.EnablePush(*pushMax)
		log.Printf("bindd: push plane enabled (NOTIFY fan-out on update; clients may subscribe)")
	}

	hrpcLn, binding, err := hrpc.Serve(net, srv.HRPCServer(), hrpc.SuiteRawNet, *host, *hrpcAddr)
	if err != nil {
		log.Fatalf("bindd: hrpc listen: %v", err)
	}
	defer hrpcLn.Close()
	log.Printf("bindd: %s serving HRPC interface %s, zones %v, updates=%v",
		*host, binding, zones, *update)

	if *stdAddr != "" {
		stdLn, err := srv.ServeStd(net, "udp-net", *stdAddr)
		if err != nil {
			log.Fatalf("bindd: std listen: %v", err)
		}
		defer stdLn.Close()
		log.Printf("bindd: %s serving standard interface on %s/udp", *host, stdLn.Addr())
	}

	waitForSignal()
	log.Println("bindd: shutting down")
	if durable != nil {
		// A parting checkpoint makes the next recovery instant; failure
		// only means the restart replays the WAL instead.
		if err := durable.Snapshot(); err != nil {
			log.Printf("bindd: final snapshot: %v", err)
		}
		if err := durable.Close(); err != nil {
			log.Printf("bindd: closing store: %v", err)
		}
	}
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
