// Command chd runs a Clearinghouse server over real sockets (the Courier
// suite on TCP), with optional snapshot persistence and replication peers.
//
// Usage:
//
//	chd -host xerox -addr 127.0.0.1:5303 -snapshot ch.json \
//	    -principal admin:cs:uw=secret -peer 127.0.0.1:5304
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hns/internal/clearinghouse"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var (
		host       = flag.String("host", "xerox", "descriptive host name")
		addr       = flag.String("addr", "127.0.0.1:5303", "listen address (TCP)")
		snapshot   = flag.String("snapshot", "", "snapshot file to load at startup and save at shutdown")
		open       = flag.Bool("open", false, "admit any principal (demo mode)")
		principals stringList
		peers      stringList
		replCred   = flag.String("repl-cred", "", "principal=secret this server presents to peers")
		metrAddr   = flag.String("metrics", "", "serve /metrics and /debug/hns on this address (empty disables)")
	)
	flag.Var(&principals, "principal", "principal=secret to admit (repeatable)")
	flag.Var(&peers, "peer", "replication peer address (repeatable)")
	mux := flag.Bool("mux", true, "dial multiplexed connections (tagged frames, many in-flight calls per socket); disable to speak the legacy serialized framing to pre-mux peers")
	flag.Parse()

	if *metrAddr != "" {
		msrv, err := metrics.Serve(*metrAddr, metrics.Default())
		if err != nil {
			log.Fatalf("chd: metrics listen: %v", err)
		}
		defer msrv.Close()
		log.Printf("chd: metrics on http://%s/metrics", msrv.Addr())
	}

	model := simtime.Default()
	net := transport.NewNetwork(model)
	net.SetMux(*mux)

	auth := clearinghouse.NewAuthenticator(model, *open)
	for _, p := range principals {
		name, secret, ok := strings.Cut(p, "=")
		if !ok {
			log.Fatalf("chd: -principal wants name=secret, got %q", p)
		}
		auth.AddPrincipal(name, secret)
	}

	store := clearinghouse.NewStore(model)
	if *snapshot != "" {
		if err := store.LoadFile(*snapshot); err != nil {
			if !os.IsNotExist(err) {
				log.Fatalf("chd: %v", err)
			}
			log.Printf("chd: no snapshot at %s; starting empty", *snapshot)
		} else {
			log.Printf("chd: loaded %d objects from %s", store.Len(), *snapshot)
		}
	}

	srv := clearinghouse.NewServer(*host, model, store, auth)
	if len(peers) > 0 {
		rpc := hrpc.NewClient(net)
		defer rpc.Close()
		principal, secret, _ := strings.Cut(*replCred, "=")
		cred := clearinghouse.NewCredentials(principal, secret)
		for _, p := range peers {
			b := hrpc.SuiteCourierNet.Bind(p, p, clearinghouse.Program, clearinghouse.Version)
			srv.AddPeer(clearinghouse.NewClient(rpc, b, cred))
		}
		log.Printf("chd: replicating to %d peers", len(peers))
	}

	ln, binding, err := hrpc.Serve(net, srv.HRPCServer(), hrpc.SuiteCourierNet, *host, *addr)
	if err != nil {
		log.Fatalf("chd: %v", err)
	}
	defer ln.Close()
	log.Printf("chd: %s serving Clearinghouse %s, %d objects, open=%v",
		*host, binding, store.Len(), *open)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	if *snapshot != "" {
		if err := store.SaveFile(*snapshot); err != nil {
			log.Printf("chd: saving snapshot: %v", err)
		} else {
			log.Printf("chd: saved %d objects to %s", store.Len(), *snapshot)
		}
	}
	log.Println("chd: shutting down")
}
