// Command hcs is the user-facing client for an HCS federation deployed
// over real sockets (hnsd + the service daemons): filing, mail, and remote
// computation from one tool, every binding resolved through the HNS.
//
// Subcommands (all take -hns, the hnsd address):
//
//	hcs resolve <context> <individual>
//	hcs exec    <context!host> <command> [args...]
//	hcs file get <context!server> <path>
//	hcs file put <context!server> <path> <contents>
//	hcs file ls  <context!server> <prefix>
//	hcs mail send <context!user> <from> <subject> <body>
//	hcs mail read <context!user>
//
// Mail routing disciplines map to HRPCBinding contexts via repeated
// -world flags (discipline=context), e.g. -world smtp=hrpcbinding-bind.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"hns/internal/core"
	"hns/internal/filing"
	"hns/internal/hcs"
	"hns/internal/hrpc"
	"hns/internal/mail"
	"hns/internal/names"
	"hns/internal/rexec"
	"hns/internal/simtime"
	"hns/internal/transport"
)

type worldFlags []string

func (w *worldFlags) String() string     { return strings.Join(*w, ",") }
func (w *worldFlags) Set(v string) error { *w = append(*w, v); return nil }

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	hnsAddr := fs.String("hns", "127.0.0.1:5310", "hnsd address")
	mux := fs.Bool("mux", true, "dial multiplexed connections (tagged frames, many in-flight calls per socket); disable to speak the legacy serialized framing to pre-mux peers")
	var worlds worldFlags
	fs.Var(&worlds, "world", "discipline=context mail-routing mapping (repeatable)")

	// Split sub-subcommand for file/mail before flag parsing.
	var sub string
	if cmd == "file" || cmd == "mail" {
		if len(args) == 0 {
			usage()
		}
		sub, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		fail(err)
	}
	rest := fs.Args()

	net := transport.NewNetwork(simtime.Default())
	net.SetMux(*mux)
	rpc := hrpc.NewClient(net)
	defer rpc.Close()
	finder := core.NewRemoteHNS(rpc,
		hrpc.SuiteRawNet.Bind(*hnsAddr, *hnsAddr, core.HNSProgram, core.HNSVersion))
	dir := hcs.New(finder, rpc)
	ctx := context.Background()

	var err error
	switch cmd {
	case "resolve":
		err = cmdResolve(ctx, dir, rest)
	case "exec":
		err = cmdExec(ctx, dir, rpc, rest)
	case "file":
		err = cmdFile(ctx, finder, rpc, sub, rest)
	case "mail":
		err = cmdMail(ctx, dir, rpc, worlds, sub, rest)
	default:
		usage()
	}
	if err != nil {
		fail(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hcs {resolve|exec|file get/put/ls|mail send/read} [flags] args...")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hcs:", err)
	os.Exit(1)
}

func cmdResolve(ctx context.Context, dir *hcs.Directory, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("resolve wants <context> <individual>")
	}
	n, err := names.New(args[0], args[1])
	if err != nil {
		return err
	}
	addr, err := dir.ResolveHost(ctx, n)
	if err != nil {
		return err
	}
	fmt.Printf("%s -> %s\n", n, addr)
	return nil
}

func cmdExec(ctx context.Context, dir *hcs.Directory, rpc *hrpc.Client, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("exec wants <context!host> <command> [args...]")
	}
	host, err := names.Parse(args[0])
	if err != nil {
		return err
	}
	client := rexec.NewClient(dir, rpc)
	out, exit, err := client.Run(ctx, host, args[1], args[2:], "")
	if err != nil {
		return err
	}
	fmt.Print(out)
	if exit != 0 {
		os.Exit(int(exit))
	}
	return nil
}

func cmdFile(ctx context.Context, finder core.Finder, rpc *hrpc.Client, sub string, args []string) error {
	fc := filing.NewClient(finder, rpc)
	parseServer := func(s string) (names.Name, error) { return names.Parse(s) }
	switch sub {
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("file get wants <context!server> <path>")
		}
		server, err := parseServer(args[0])
		if err != nil {
			return err
		}
		data, err := fc.Fetch(ctx, server, args[1])
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return nil
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("file put wants <context!server> <path> <contents>")
		}
		server, err := parseServer(args[0])
		if err != nil {
			return err
		}
		return fc.Store(ctx, server, args[1], []byte(args[2]))
	case "ls":
		if len(args) != 2 {
			return fmt.Errorf("file ls wants <context!server> <prefix>")
		}
		server, err := parseServer(args[0])
		if err != nil {
			return err
		}
		paths, err := fc.List(ctx, server, args[1])
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Println(p)
		}
		return nil
	default:
		return fmt.Errorf("unknown file subcommand %q", sub)
	}
}

func cmdMail(ctx context.Context, dir *hcs.Directory, rpc *hrpc.Client, worlds worldFlags, sub string, args []string) error {
	wc := make(map[string]string)
	for _, w := range worlds {
		d, c, ok := strings.Cut(w, "=")
		if !ok {
			return fmt.Errorf("-world wants discipline=context, got %q", w)
		}
		wc[d] = c
	}
	agent := mail.NewAgent(dir, rpc, wc)
	switch sub {
	case "send":
		if len(args) != 4 {
			return fmt.Errorf("mail send wants <context!user> <from> <subject> <body>")
		}
		to, err := names.Parse(args[0])
		if err != nil {
			return err
		}
		id, err := agent.Send(ctx, mail.Message{
			From: args[1], To: to, Subject: args[2], Body: args[3],
		})
		if err != nil {
			return err
		}
		fmt.Printf("delivered, message id %d\n", id)
		return nil
	case "read":
		if len(args) != 1 {
			return fmt.Errorf("mail read wants <context!user>")
		}
		user, err := names.Parse(args[0])
		if err != nil {
			return err
		}
		msgs, err := agent.ReadMailbox(ctx, user)
		if err != nil {
			return err
		}
		for _, m := range msgs {
			fmt.Printf("%4d  %-20s %s\n", m.ID, m.From, m.Subject)
		}
		return nil
	default:
		return fmt.Errorf("unknown mail subcommand %q", sub)
	}
}
