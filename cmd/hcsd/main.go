// Command hcsd serves the three HCS application services — filing,
// mailbox, and remote execution — on one host over real sockets, speaking
// the Courier suite and registering its bindings in a Clearinghouse (the
// Xerox-world service discipline, which needs no portmapper).
//
// Usage:
//
//	hcsd -host xerox-d0 \
//	     -ch 127.0.0.1:5303 -ch-principal admin:cs:uw -ch-secret pw \
//	     -exec-object compute:cs:uw -files-object bigfiles:cs:uw \
//	     -mail-object mailsrv:cs:uw
//
// After an `hnsctl register-nsm` pointing the hrpcbinding-ch query class
// at a binding-ch nsmd, `hcs exec/file/mail` clients reach these services
// through the HNS.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"hns/internal/clearinghouse"
	"hns/internal/filing"
	"hns/internal/hrpc"
	"hns/internal/mail"
	"hns/internal/qclass"
	"hns/internal/rexec"
	"hns/internal/simtime"
	"hns/internal/transport"
)

func main() {
	var (
		host        = flag.String("host", "hcsd", "descriptive host name")
		chAddr      = flag.String("ch", "127.0.0.1:5303", "Clearinghouse address")
		chPrincipal = flag.String("ch-principal", "", "Clearinghouse principal")
		chSecret    = flag.String("ch-secret", "", "Clearinghouse secret")
		execObj     = flag.String("exec-object", "", "CH object to register the exec service under (empty disables)")
		filesObj    = flag.String("files-object", "", "CH object for the filing service (empty disables)")
		mailObj     = flag.String("mail-object", "", "CH object for the mailbox service (empty disables)")
		execAddr    = flag.String("exec-addr", "127.0.0.1:0", "exec service listen address")
		filesAddr   = flag.String("files-addr", "127.0.0.1:0", "filing service listen address")
		mailAddr    = flag.String("mail-addr", "127.0.0.1:0", "mailbox service listen address")
	)
	mux := flag.Bool("mux", true, "dial multiplexed connections (tagged frames, many in-flight calls per socket); disable to speak the legacy serialized framing to pre-mux peers")
	flag.Parse()

	model := simtime.Default()
	net := transport.NewNetwork(model)
	net.SetMux(*mux)
	rpc := hrpc.NewClient(net)
	defer rpc.Close()
	chB := hrpc.SuiteCourierNet.Bind(*chAddr, *chAddr, clearinghouse.Program, clearinghouse.Version)
	ch := clearinghouse.NewClient(rpc, chB, clearinghouse.NewCredentials(*chPrincipal, *chSecret))
	ctx := context.Background()

	serve := func(s *hrpc.Server, addr, object, label string) {
		if object == "" {
			return
		}
		ln, b, err := hrpc.Serve(net, s, hrpc.SuiteCourierNet, *host, addr)
		if err != nil {
			log.Fatalf("hcsd: %s: %v", label, err)
		}
		// Listener lives for the process; closed on exit.
		_ = ln
		n, err := clearinghouse.ParseName(object)
		if err != nil {
			log.Fatalf("hcsd: %s: %v", label, err)
		}
		if err := ch.AddItem(ctx, n, clearinghouse.PropBinding,
			[]byte(qclass.FormatBinding(b))); err != nil {
			log.Fatalf("hcsd: registering %s binding: %v", label, err)
		}
		log.Printf("hcsd: %s serving at %s, registered as %s", label, b, object)
	}

	serve(rexec.NewServer(*host, model).HRPCServer(), *execAddr, *execObj, "exec")
	serve(filing.NewServer(*host, model).HRPCServer(), *filesAddr, *filesObj, "filing")
	serve(mail.NewServer(*host, model).HRPCServer(), *mailAddr, *mailObj, "mailbox")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("hcsd: shutting down")
}
