// Command hnsbench regenerates every table and figure of the paper's
// evaluation (Section 3) on the simulated HCS environment and prints each
// next to the paper's published numbers.
//
// Usage:
//
//	hnsbench -all                 # everything
//	hnsbench -table 3.1           # one table
//	hnsbench -table 3.2
//	hnsbench -figure 2.1          # the query-processing trace
//	hnsbench -prose findnsm       # one prose measurement:
//	                              #   findnsm nsmcall underlying baselines
//	                              #   preload breakeven marshalling nsmsize scale ...
//
// Absolute numbers come from the calibrated cost model
// (internal/simtime.Model); the point of the harness is that the *shape* —
// who wins, by what factor, where the crossovers fall — is produced by the
// actual code paths: counts of remote calls, lookups, marshalling
// operations, and cache probes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"hns/internal/bind"
	"hns/internal/world"
)

func main() {
	var (
		table      = flag.String("table", "", `table to regenerate ("3.1" or "3.2")`)
		figure     = flag.String("figure", "", `figure to regenerate ("2.1")`)
		prose      = flag.String("prose", "", "prose measurement (findnsm nsmcall underlying baselines preload breakeven marshalling nsmsize scaling consistency hitratios broadcast throughput availability replycache muxthroughput scale batch durable shard)")
		all        = flag.Bool("all", false, "run everything")
		check      = flag.Bool("check", false, "regression gate: verify every Table 3.1 cell within ±20% of the paper and exit nonzero otherwise")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected runs to `file` (inspect with go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to `file` on exit (inspect with go tool pprof)")
	)
	flag.Parse()

	if !*all && *table == "" && *figure == "" && *prose == "" && !*check {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush accumulated garbage so the profile shows live + alloc_space accurately
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
	if err != nil {
		fatal(err)
	}
	defer w.Close()
	ctx := context.Background()

	run := func(name string, fn func(ctx context.Context, w *world.World) error) {
		if err := fn(ctx, w); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}

	if *check {
		run("check", checkTable31)
	}
	if *all || *table == "3.1" {
		run("table 3.1", printTable31)
	}
	if *all || *table == "3.2" {
		run("table 3.2", printTable32)
	}
	if *all || *figure == "2.1" {
		run("figure 2.1", printFigure21)
	}
	proseRunners := map[string]func(context.Context, *world.World) error{
		"findnsm":       printFindNSM,
		"nsmcall":       printNSMCall,
		"underlying":    printUnderlying,
		"baselines":     printBaselines,
		"preload":       printPreload,
		"breakeven":     printBreakEven,
		"marshalling":   printMarshalling,
		"nsmsize":       printNSMSize,
		"scaling":       printScaling,
		"consistency":   printConsistency,
		"hitratios":     printHitRatios,
		"broadcast":     printBroadcast,
		"throughput":    printThroughput,
		"availability":  printAvailability,
		"replycache":    printReplyCache,
		"muxthroughput": printMuxThroughput,
		"scale":         printScale,
		"batch":         printBatch,
		"durable":       printDurable,
		"shard":         printShard,
		"push":          printPush,
	}
	if *all {
		for _, name := range []string{"findnsm", "nsmcall", "underlying", "baselines",
			"preload", "breakeven", "marshalling", "nsmsize", "scaling", "consistency",
			"hitratios", "broadcast", "throughput", "availability", "replycache",
			"muxthroughput", "scale", "batch", "durable", "shard", "push"} {
			run("prose "+name, proseRunners[name])
		}
	} else if *prose != "" {
		fn, ok := proseRunners[*prose]
		if !ok {
			fatal(fmt.Errorf("unknown prose measurement %q", *prose))
		}
		run("prose "+*prose, fn)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hnsbench:", err)
	os.Exit(1)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
