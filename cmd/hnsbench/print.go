package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hns/internal/bind"
	"hns/internal/colocate"
	"hns/internal/experiments"
	"hns/internal/simtime"
	"hns/internal/workload"
	"hns/internal/world"
)

func printTable31(ctx context.Context, w *world.World) error {
	table, err := colocate.RunTable31(ctx, w, bind.CacheMarshalled)
	if err != nil {
		return err
	}
	fmt.Println("Table 3.1 — Performance of HRPC Binding for Various Colocation Arrangements (msec.)")
	fmt.Println("[ ] indicates colocation; 'paper' columns are the published 1987 measurements.")
	fmt.Println()
	fmt.Printf("%-24s %18s %18s %18s\n", "", "A. Cache Miss", "B. HNS Hit", "C. HNS+NSM Hit")
	fmt.Printf("%-24s %9s %8s %9s %8s %9s %8s\n",
		"Arrangement", "measured", "paper", "measured", "paper", "measured", "paper")
	for i, arr := range colocate.Arrangements() {
		c := table[arr]
		p := colocate.PaperTable31[arr]
		fmt.Printf("%d. %-21s %9.1f %8.0f %9.1f %8.0f %9.1f %8.0f\n",
			i+1, arr, ms(c.Miss), p[0], ms(c.HNSHit), p[1], ms(c.BothHit), p[2])
	}
	r1, r5 := table[colocate.ClientHNSNSMs], table[colocate.AllRemote]
	fmt.Println()
	fmt.Printf("shape: caching saves %.0f ms on the all-local row; full colocation saves only %.0f ms\n",
		ms(r1.Miss-r1.BothHit), ms(r5.Miss-r1.Miss))
	fmt.Println("       => \"the potential benefit of caching far exceeds that obtainable solely by colocation\"")
	return nil
}

// checkTable31 is the regression gate behind hnsbench -check: every cell
// of Table 3.1 must reproduce within ±20% of the published value.
func checkTable31(ctx context.Context, w *world.World) error {
	table, err := colocate.RunTable31(ctx, w, bind.CacheMarshalled)
	if err != nil {
		return err
	}
	failures := 0
	for _, arr := range colocate.Arrangements() {
		cell := table[arr]
		paper := colocate.PaperTable31[arr]
		for i, got := range []float64{ms(cell.Miss), ms(cell.HNSHit), ms(cell.BothHit)} {
			want := paper[i]
			dev := got/want - 1
			status := "ok"
			if dev < -0.20 || dev > 0.20 {
				status = "FAIL"
				failures++
			}
			fmt.Printf("%-4s %-24s col %s: %6.1f ms vs paper %4.0f (%+5.1f%%)\n",
				status, arr, []string{"A", "B", "C"}[i], got, want, dev*100)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of 15 cells outside ±20%%", failures)
	}
	fmt.Println("all 15 cells within ±20% of the paper")
	return nil
}

func printTable32(ctx context.Context, w *world.World) error {
	rows, err := experiments.RunTable32(ctx, w)
	if err != nil {
		return err
	}
	fmt.Println("Table 3.2 — The Effect of Marshalling Costs on Cache Access Speed (msec.)")
	fmt.Println()
	fmt.Printf("%-10s %19s %22s %24s\n", "Resource", "Cache miss", "Marshalled cache hit", "Demarshalled cache hit")
	fmt.Printf("%-10s %10s %8s %12s %9s %13s %10s\n",
		"records", "measured", "paper", "measured", "paper", "measured", "paper")
	for _, r := range rows {
		p := experiments.PaperTable32[r.Records]
		fmt.Printf("%-10d %10.2f %8.2f %12.2f %9.2f %13.2f %10.2f\n",
			r.Records, ms(r.Miss), p[0], ms(r.MarshalledHit), p[1], ms(r.DemarshalledHit), p[2])
	}
	fmt.Println()
	fmt.Println("shape: keeping cached data demarshalled turns an ~11-26 ms hit into a sub-ms one.")
	return nil
}

func printFigure21(ctx context.Context, w *world.World) error {
	return experiments.RunFigure21(ctx, w, os.Stdout)
}

func printFindNSM(ctx context.Context, w *world.World) error {
	res, err := experiments.RunFindNSM(ctx, w)
	if err != nil {
		return err
	}
	fmt.Println("P1 — FindNSM cost (msec.), marshalled meta-cache")
	fmt.Printf("  uncached: measured %6.1f   paper 460\n", ms(res.Miss))
	fmt.Printf("  cached:   measured %6.1f   paper  88\n", ms(res.Hit))
	fmt.Printf("  speedup:  measured %5.1fx  paper 5.2x\n", float64(res.Miss)/float64(res.Hit))
	return nil
}

func printNSMCall(ctx context.Context, w *world.World) error {
	res, err := experiments.RunNSMCalls(ctx, w)
	if err != nil {
		return err
	}
	fmt.Println("P2 — remote NSM call overhead by RPC system (msec.); paper: 22-38")
	fmt.Printf("  Sun RPC / UDP:  %5.1f\n", ms(res.SunRPC))
	fmt.Printf("  Courier / TCP:  %5.1f\n", ms(res.Courier))
	return nil
}

func printUnderlying(ctx context.Context, w *world.World) error {
	res, err := experiments.RunUnderlying(ctx, w)
	if err != nil {
		return err
	}
	fmt.Println("P3 — underlying name service lookups (msec.)")
	fmt.Printf("  BIND:          measured %6.1f   paper  27\n", ms(res.Bind))
	fmt.Printf("  Clearinghouse: measured %6.1f   paper 156\n", ms(res.Clearinghouse))
	fmt.Println("  (Clearinghouse authenticates every access and reads from disk — footnote 5.)")
	return nil
}

func printBaselines(ctx context.Context, w *world.World) error {
	res, err := experiments.RunBaselines(ctx, w)
	if err != nil {
		return err
	}
	fmt.Printf("P4 — binding mechanisms compared (msec.), %d registered services\n",
		experiments.PaperBaselineEntries)
	fmt.Printf("  replicated local files:      measured %6.1f   paper 200\n", ms(res.FileReg))
	fmt.Printf("  reregistered Clearinghouse:  measured %6.1f   paper 166\n", ms(res.CHReg))
	fmt.Printf("  HNS best (local, warm):      measured %6.1f   paper 104\n", ms(res.HNSBest))
	fmt.Printf("  HNS worst (remote, cold):    measured %6.1f   paper 547\n", ms(res.HNSWorst))
	fmt.Println("  => \"the tuned HNS performance is reasonably close to that of homogeneous name services\"")
	return nil
}

func printPreload(ctx context.Context, w *world.World) error {
	res, err := experiments.RunPreload(ctx, w)
	if err != nil {
		return err
	}
	fmt.Println("P5 — meta-cache preloading via zone transfer")
	fmt.Printf("  transferred: %d records, %d bytes   (paper: \"about 2KB\")\n", res.Records, res.Bytes)
	fmt.Printf("  preload cost:        measured %6.1f ms   paper ~390\n", ms(res.Cost))
	fmt.Printf("  FindNSM after:       measured %6.1f ms (all hits)\n", ms(res.HitAfter))
	fmt.Printf("  FindNSM cold:        measured %6.1f ms\n", ms(res.MissWithout))
	breakEvenCalls := float64(res.Cost) / float64(res.MissWithout-res.HitAfter)
	fmt.Printf("  pays off at %.1f distinct context/query-class calls (paper: between 1 and 2)\n",
		breakEvenCalls)
	return nil
}

func printBreakEven(ctx context.Context, w *world.World) error {
	res, err := experiments.RunBreakEven(ctx, w)
	if err != nil {
		return err
	}
	fmt.Println("P6 — equation (1): extra hit fraction q a remote location must earn")
	fmt.Printf("  inputs: C(remote call)=%.0f ms, HNS miss/hit=%.0f/%.0f, NSM miss/hit=%.0f/%.0f\n",
		ms(res.RemoteCall), ms(res.HNSMiss), ms(res.HNSHit), ms(res.NSMMiss), ms(res.NSMHit))
	fmt.Printf("  remote HNS needs q > %4.1f%%   (paper: 11%%)\n", res.QHNS*100)
	fmt.Printf("  remote NSMs need q > %4.1f%%   (paper: 42%%)\n", res.QNSM*100)
	return nil
}

func printMarshalling(ctx context.Context, w *world.World) error {
	rows := experiments.RunMarshalling(ctx, w)
	fmt.Println("P7 — generated (stub-compiler) vs hand-coded (standard library) marshalling (msec.)")
	fmt.Printf("%-10s %12s %18s %14s\n", "records", "hand", "hand (paper)", "generated")
	for _, r := range rows {
		fmt.Printf("%-10d %12.2f %18.2f %14.2f\n",
			r.Records, ms(r.Hand), experiments.PaperMarshalling[r.Records], ms(r.Generated))
	}
	fmt.Println("  (the generated routines' overhead is what made the marshalled cache slow — Table 3.2)")
	return nil
}

func printBroadcast(ctx context.Context, _ *world.World) error {
	// Builds its own world: the sweep integrates synthetic subsystems.
	w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
	if err != nil {
		return err
	}
	defer w.Close()
	points, err := experiments.RunBroadcast(ctx, w, []int{2, 4, 8, 16, 24})
	if err != nil {
		return err
	}
	fmt.Println("Broadcast name location vs the HNS (the alternative §2 rejects), worst case")
	fmt.Printf("%-12s %18s %10s %12s %12s\n",
		"subsystems", "broadcast (ms)", "queried", "HNS cold", "HNS warm")
	for _, p := range points {
		fmt.Printf("%-12d %18.1f %10d %12.1f %12.1f\n",
			p.Subsystems, ms(p.BroadcastWorst), p.BroadcastQueried, ms(p.HNSCold), ms(p.HNSWarm))
	}
	fmt.Println()
	fmt.Println("shape: broadcast grows linearly with the federation; the HNS is flat. A warm")
	fmt.Println("HNS wins from ~6 subsystems, a cold one from ~17 — \"too inefficient in our")
	fmt.Println("environment\" is a statement about growth, not small-federation latency.")
	return nil
}

func printHitRatios(ctx context.Context, _ *world.World) error {
	// Builds its own world: the populations need synthetic contexts.
	w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
	if err != nil {
		return err
	}
	defer w.Close()
	const contexts = 6
	for i := 0; i < contexts; i++ {
		if _, err := w.AddSyntheticType(ctx, i); err != nil {
			return err
		}
	}
	fmt.Println("Dynamic cache hit ratios in practice (the paper's stated future work)")
	fmt.Println("Populations of clients FindNSM-ing over 6 contexts, Zipf locality:")
	fmt.Println()
	fmt.Printf("%-34s %18s %18s %10s\n", "population", "local-per-client", "shared-remote", "winner")
	fmt.Printf("%-34s %8s %9s %8s %9s\n", "", "hit-rate", "mean-ms", "hit-rate", "mean-ms")
	for _, tc := range []struct {
		label string
		spec  workload.Spec
	}{
		{"12 clients x 3 ops (cold-start)",
			workload.Spec{Clients: 12, OpsPerClient: 3, Contexts: contexts, Skew: 1.3, Seed: 7}},
		{"3 clients x 80 ops (long-lived)",
			workload.Spec{Clients: 3, OpsPerClient: 80, Contexts: contexts, Skew: 1.5, Seed: 11}},
	} {
		local, shared, err := workload.Compare(ctx, w, tc.spec)
		if err != nil {
			return err
		}
		winner := "local"
		if shared.MeanOpCost < local.MeanOpCost {
			winner = "shared"
		}
		fmt.Printf("%-34s %7.0f%% %9.1f %7.0f%% %9.1f %10s\n",
			tc.label, local.HitRate*100, ms(local.MeanOpCost),
			shared.HitRate*100, ms(shared.MeanOpCost), winner)
	}
	fmt.Println()
	fmt.Println("shape: equation (1) realised — a shared remote HNS wins when its extra hit")
	fmt.Println("fraction q (earned from other clients' misses) beats the remote-call tax;")
	fmt.Println("long-lived clients warm their own caches and local linking wins.")
	return nil
}

func printConsistency(ctx context.Context, _ *world.World) error {
	// Needs a controllable clock, so it builds its own world.
	clk := simtime.NewFakeClock(time.Unix(563328000, 0)) // Nov 1987
	w, err := world.New(world.Config{Clock: clk, CacheMode: bind.CacheMarshalled})
	if err != nil {
		return err
	}
	defer w.Close()
	res, err := experiments.RunConsistency(ctx, w, clk)
	if err != nil {
		return err
	}
	fmt.Println("Cache consistency under the TTL discipline (paper footnote 7)")
	fmt.Printf("  stale binding served immediately after the move: %v (by design)\n", res.StaleServed)
	fmt.Printf("  staleness window: %s (the meta records' TTL)\n", res.Window)
	fmt.Printf("  after the window the client converges to %s\n", res.ConvergedTo.Addr)
	fmt.Println("  => \"given our assumption that data changes slowly over time, this mechanism will suffice\"")
	return nil
}

func printAvailability(ctx context.Context, _ *world.World) error {
	// Needs a controllable clock and its own chaos transport, so it
	// builds its own world.
	clk := simtime.NewFakeClock(time.Unix(563328000, 0)) // Nov 1987
	w, err := world.New(world.Config{Clock: clk, CacheMode: bind.CacheMarshalled})
	if err != nil {
		return err
	}
	defer w.Close()
	res, err := experiments.RunAvailability(ctx, w, clk, 1987)
	if err != nil {
		return err
	}
	fmt.Println("Availability under replica failure (two-replica meta BIND, chaos plan, seed 1987)")
	fmt.Printf("%-16s %5s %9s %14s %13s\n", "phase", "ops", "failures", "mean op (ms)", "stale serves")
	for _, p := range res.Phases {
		fmt.Printf("%-16s %5d %9d %14.1f %13d\n",
			p.Name, p.Ops, p.Failures, ms(p.MeanCost), p.StaleServed)
	}
	fmt.Printf("  success rate: %.4f over %d ops (%d failures)\n", res.SuccessRate, res.Ops, res.Failures)
	fmt.Printf("  failover discovery cost: +%.0f ms on the first op after the primary went silent\n",
		ms(res.FailoverExtra))
	fmt.Printf("  breaker opens: %d, half-open probes: %d, failovers to the secondary: %d\n",
		res.BreakerOpens, res.Probes, res.Failovers)
	fmt.Printf("  blackout survived on %d stale meta answers (serve-stale ceiling %s)\n",
		res.StaleServed, 24*time.Hour)
	fmt.Println("  => \"distributed and replicated for the usual reasons of performance, availability, and scalability\"")
	return nil
}

func printScaling(ctx context.Context, w *world.World) error {
	sizes := []int{1, 2, 4, 8, 16}
	points, err := experiments.RunScaling(ctx, w, sizes)
	if err != nil {
		return err
	}
	fmt.Println("Scaling in the heterogeneity dimension (the paper's design goal, measured)")
	fmt.Printf("%-14s %16s %14s %14s %12s\n",
		"system types", "integrate (ms)", "FindNSM cold", "FindNSM warm", "meta records")
	for _, p := range points {
		fmt.Printf("%-14d %16.1f %14.1f %14.1f %12d\n",
			p.SystemTypes, ms(p.IntegrationCost), ms(p.FindCold), ms(p.FindWarm), p.MetaRecords)
	}
	fmt.Println()
	fmt.Println("shape: integrating the Nth type costs the same as the 1st; FindNSM is flat in")
	fmt.Println("the number of types — load distributes across the subsystems; the meta zone")
	fmt.Println("grows by a small constant per type, never with the subsystems' name counts.")
	return nil
}

func printNSMSize(ctx context.Context, w *world.World) error {
	sizes, err := experiments.MeasureNSMSources()
	if err != nil {
		return err
	}
	fmt.Printf("P8 — NSM implementation size (paper: binding NSMs ≈ %d lines each)\n",
		experiments.PaperNSMLines)
	total := 0
	for _, s := range sizes {
		fmt.Printf("  %-28s %4d code lines\n", s.File, s.Lines)
		total += s.Lines
	}
	fmt.Printf("  %-28s %4d (six NSMs: two per query class)\n", "total", total)
	return nil
}

func printThroughput(ctx context.Context, _ *world.World) error {
	// Builds its own world: the populations need synthetic contexts.
	w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
	if err != nil {
		return err
	}
	defer w.Close()
	const contexts = 6
	for i := 0; i < contexts; i++ {
		if _, err := w.AddSyntheticType(ctx, i); err != nil {
			return err
		}
	}
	spec := workload.Spec{Clients: 12, OpsPerClient: 8, Contexts: contexts, Skew: 1.3, Seed: 7}
	fmt.Println("Throughput beyond the paper (all clients concurrent; real wall-clock ops/sec)")
	fmt.Printf("The 1987 prototype served one MicroVAX II at a time; this measures %d clients\n", spec.Clients)
	fmt.Printf("x %d FindNSM ops at once, per placement (GOMAXPROCS=%d):\n\n", spec.OpsPerClient, runtime.GOMAXPROCS(0))
	fmt.Printf("%-20s %12s %10s %12s %12s\n",
		"placement", "ops/sec", "hit-rate", "mean-sim-ms", "wall-ms")
	for _, placement := range []workload.Placement{
		workload.LocalHNS, workload.SharedRemoteHNS, workload.SharedLocalHNS,
	} {
		res, err := workload.RunConcurrent(ctx, w, spec, placement)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %12.0f %9.0f%% %12.1f %12.1f\n",
			placement, res.OpsPerSec, res.HitRate*100, ms(res.MeanOpCost), ms(res.Wall))
	}
	fmt.Println()
	fmt.Println("shape: simulated per-op cost (the paper-comparable number) is unchanged by")
	fmt.Println("concurrency; real throughput is what the sharded meta-cache and singleflight")
	fmt.Println("miss coalescing buy. shared-local funnels everyone through one cache — the")
	fmt.Println("contended arrangement those mechanisms exist for. On a single-core host the")
	fmt.Println("placements differ mainly via hit rates; see EXPERIMENTS.md for the caveat.")
	return nil
}

func printReplyCache(ctx context.Context, w *world.World) error {
	rows, err := experiments.RunReplyCache(ctx, w)
	if err != nil {
		return err
	}
	fmt.Println("Table 3.2 extension — server-side marshalled-reply caching (BIND over HRPC, colocated)")
	fmt.Println()
	fmt.Printf("%-10s %22s %24s %20s %10s\n",
		"Resource", "sim cost (ms)", "real ns/op", "allocs/op", "hit")
	fmt.Printf("%-10s %10s %11s %12s %11s %10s %9s %10s\n",
		"records", "off", "on", "off", "on", "off", "on", "rate")
	for _, r := range rows {
		fmt.Printf("%-10d %10.2f %11.2f %12.0f %11.0f %10.1f %9.1f %9.0f%%\n",
			r.Records, ms(r.SimOff), ms(r.SimOn), r.NsOff, r.NsOn,
			r.AllocsOff, r.AllocsOn, r.HitRate*100)
	}
	fmt.Println()
	fmt.Println("shape: simulated cost is identical by construction — a hit replays the")
	fmt.Println("recorded cost of the original exchange, so the paper's tables are untouched.")
	fmt.Println("The win is real: a repeat identical request skips demarshal → zone lookup →")
	fmt.Println("marshal and is answered from the stored encoded reply, which shows up as the")
	fmt.Println("ns/op and allocs/op deltas. See BENCH_wire.json for the enforced bounds.")
	return nil
}

// muxBenchFile is where printMuxThroughput records its numbers for
// EXPERIMENTS.md.
const muxBenchFile = "BENCH_mux.json"

func printMuxThroughput(ctx context.Context, _ *world.World) error {
	spec := experiments.DefaultMuxThroughputSpec()
	points, err := experiments.RunMuxThroughput(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println("Multiplexed vs serialized wire (HRPC echo over real TCP loopback, one endpoint)")
	fmt.Printf("handler sleeps %v real time per call; %d calls per point; sleeps overlap even\n",
		spec.Handle, spec.Calls)
	fmt.Printf("on one core (GOMAXPROCS=%d), so the single-CPU container caveat does not\n",
		runtime.GOMAXPROCS(0))
	fmt.Println("blunt this comparison the way it does CPU-bound throughput.")
	fmt.Println()
	fmt.Printf("%-12s %16s %16s %10s %14s\n",
		"goroutines", "serial ops/s", "mux ops/s", "speedup", "sim-warm-ms")
	for _, p := range points {
		fmt.Printf("%-12d %16.0f %16.0f %9.1fx %14.2f\n",
			p.Goroutines, p.SerialOps, p.MuxOps, p.Speedup, ms(p.SimWarmMux))
	}
	fmt.Println()
	fmt.Println("shape: at 1 caller the framing barely matters; with concurrent callers the")
	fmt.Println("serialized wire queues every call behind the slowest in-flight handler")
	fmt.Println("(head-of-line blocking) while tagged frames let replies return as they")
	fmt.Println("finish. Warm per-call simulated cost is identical across arms by")
	fmt.Println("construction — multiplexing changes scheduling, never the cost model.")

	type jsonPoint struct {
		Goroutines int     `json:"goroutines"`
		SerialOps  float64 `json:"serialized_ops_per_sec"`
		MuxOps     float64 `json:"multiplexed_ops_per_sec"`
		Speedup    float64 `json:"speedup"`
		SimWarmMS  float64 `json:"sim_warm_ms"`
	}
	doc := struct {
		Comment       string      `json:"comment"`
		HandlerMS     float64     `json:"handler_sleep_ms"`
		CallsPerPoint int         `json:"calls_per_point"`
		Points        []jsonPoint `json:"points"`
	}{
		Comment: "Serialized vs multiplexed ops/sec through one endpoint, refreshed by " +
			"`hnsbench -prose muxthroughput`. Real wall-clock numbers vary with the host; " +
			"the speedup column is the contract (>=3x at 64 callers).",
		HandlerMS:     ms(spec.Handle),
		CallsPerPoint: spec.Calls,
	}
	for _, p := range points {
		doc.Points = append(doc.Points, jsonPoint{
			Goroutines: p.Goroutines, SerialOps: p.SerialOps, MuxOps: p.MuxOps,
			Speedup: p.Speedup, SimWarmMS: ms(p.SimWarmMux),
		})
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(muxBenchFile, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", muxBenchFile)
	return nil
}

// scaleBenchFile is where printScale records the fleet-scale scenario
// matrix for EXPERIMENTS.md.
const scaleBenchFile = "BENCH_scale.json"

func printScale(ctx context.Context, _ *world.World) error {
	spec := experiments.DefaultScaleSpec()
	rows, err := experiments.RunScale(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println("Fleet-scale scenario matrix (simulated fleet over the colocation topology)")
	fmt.Printf("%d sites, %d contexts, Zipf skew %.1f, %d ops/client, seed %d; sim-side\n",
		spec.Sites, spec.Contexts, spec.Skew, spec.OpsPerClient, spec.Seed)
	fmt.Printf("numbers are deterministic per seed; ops/sec is wall-clock (GOMAXPROCS=%d).\n",
		runtime.GOMAXPROCS(0))
	fmt.Println()
	fmt.Printf("%-12s %9s %10s %10s %9s %7s %7s %7s %10s %9s %7s\n",
		"scenario", "clients", "p50 ms", "p99 ms", "ops/s", "host", "site", "auth", "fetches", "coalesce", "stale")
	for _, r := range rows {
		fmt.Printf("%-12s %9d %10.2f %10.2f %9.0f %6.0f%% %6.0f%% %6.0f%% %10d %9d %7d\n",
			r.Scenario, r.Clients, r.SimP50Ms, r.SimP99Ms, r.RealOpsPerSec,
			r.HostHitRatio*100, r.SiteHitRatio*100, r.AuthorityHitRatio*100,
			r.AuthorityFetches, r.Coalesced, r.StaleOps)
	}
	fmt.Println()
	fmt.Println("shape: authority fetches track sites x contexts, not clients — the cache")
	fmt.Println("hierarchy plus singleflight absorbs fleet growth; coldstart's coalesce count")
	fmt.Println("is the measured stampede, and primaryloss answers from the secondary (and")
	fmt.Println("serve-stale grace) so failures stay zero through the blackholed peak.")

	doc := experiments.BuildScaleDoc(spec, rows)
	buf, err := experiments.EncodeScaleDoc(doc)
	if err != nil {
		return err
	}
	if err := os.WriteFile(scaleBenchFile, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", scaleBenchFile)
	return nil
}

// batchBenchFile is where printBatch records the batched-resolution and
// front-door shed measurements for EXPERIMENTS.md.
const batchBenchFile = "BENCH_batch.json"

func printBatch(ctx context.Context, _ *world.World) error {
	spec := experiments.DefaultBatchSpec()
	res, err := experiments.RunBatch(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println("Batched resolution and the admission-controlled front door")
	fmt.Printf("batch of %d names vs %d singles; %d concurrent callers; shed crowd of %d\n",
		spec.Names, spec.Names, spec.Callers, spec.ShedCallers)
	fmt.Printf("against an in-flight cap of %d (GOMAXPROCS=%d).\n",
		spec.ShedMaxInflight, runtime.GOMAXPROCS(0))
	fmt.Println()
	f, tp, sh := res.Frames, res.Throughput, res.Shed
	fmt.Printf("frames (deterministic):  batch %d, singles %d  =>  %.0fx amortization (bar: >= 4x)\n",
		f.BatchFrames, f.SingleFrames, f.Amortization)
	fmt.Printf("throughput (wall):       batch %.0f names/s, singles %.0f names/s  =>  %.1fx\n",
		tp.BatchNamesPerSec, tp.SingleNamesPerSec, tp.Speedup)
	fmt.Printf("shed at %d callers:   uncapped p99 %.1f ms; capped served p99 %.1f ms\n",
		sh.Callers, sh.UncappedP99Ms, sh.CappedServedP99Ms)
	fmt.Printf("                         (%d served, %d refused with typed Overloaded)\n",
		sh.Served, sh.Refused)
	fmt.Println()
	fmt.Println("shape: one exchange carries the whole batch, so frames amortize with batch")
	fmt.Println("size; under a crowd the cap keeps the *served* tail bounded by cap x service")
	fmt.Println("time while the uncapped tail grows with the crowd itself.")

	doc := experiments.BuildBatchDoc(spec, res)
	buf, err := experiments.EncodeBatchDoc(doc)
	if err != nil {
		return err
	}
	if err := os.WriteFile(batchBenchFile, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", batchBenchFile)
	return nil
}

// durableBenchFile is where printDurable records the crash-safety cost
// and recovery measurements for EXPERIMENTS.md.
const durableBenchFile = "BENCH_durable.json"

func printDurable(ctx context.Context, _ *world.World) error {
	spec := experiments.DefaultDurabilitySpec()
	res, err := experiments.RunDurability(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println("Crash-safe bindd: WAL fsync cost and checkpointed recovery")
	fmt.Printf("%d journaled updates per fsync policy; recovery timed at WAL lengths %v\n",
		spec.Updates, spec.RecoverySteps)
	fmt.Printf("with checkpoints off and every %d records (GOMAXPROCS=%d).\n",
		spec.SnapshotEvery, runtime.GOMAXPROCS(0))
	fmt.Println()
	fmt.Println("fsync policy (wall):")
	for _, r := range res.Fsync {
		fmt.Printf("  %-8s  %8.0f updates/s  (%d fsyncs)\n", r.Policy, r.UpdatesPerSec, r.Fsyncs)
	}
	fmt.Println()
	fmt.Println("recovery (replayed counts deterministic, ms wall):")
	for _, r := range res.Recovery {
		mode := "replay-all "
		if r.Snapshotted {
			mode = "checkpoint"
		}
		fmt.Printf("  %6d records  %s  snapshot@%-6d replay %-6d %7.2f ms\n",
			r.WALRecords, mode, r.SnapshotLSN, r.Replayed, r.RecoveryMs)
	}
	fmt.Println()
	fmt.Println("shape: always pays one fsync per acked update (the exact-acked-prefix")
	fmt.Println("guarantee); checkpoints bound replay to the suffix past the newest snapshot,")
	fmt.Println("so recovery time stays flat as the update history grows.")

	doc := experiments.BuildDurabilityDoc(spec, res)
	buf, err := experiments.EncodeDurabilityDoc(doc)
	if err != nil {
		return err
	}
	if err := os.WriteFile(durableBenchFile, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", durableBenchFile)
	return nil
}

// shardBenchFile is where printShard records the sharded meta-store
// measurements for EXPERIMENTS.md.
const shardBenchFile = "BENCH_shard.json"

func printShard(ctx context.Context, _ *world.World) error {
	spec := experiments.DefaultShardSpec()
	res, err := experiments.RunShard(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println("Sharded meta-store: rendezvous-partitioned bindd shards")
	fmt.Printf("%d names, %d warm lookups and %d journaled updates per arm (journal cost\n",
		spec.Names, spec.Lookups, spec.Updates)
	fmt.Printf("%.1f ms inside each shard's journal lock; sleeps overlap across shards even\n",
		float64(spec.UpdateCost)/float64(time.Millisecond))
	fmt.Printf("on one core, GOMAXPROCS=%d); kill arm at %d shards, seed %d.\n",
		runtime.GOMAXPROCS(0), spec.KillShards, spec.Seed)
	fmt.Println()
	fmt.Printf("warm lookups (wall):     unsharded baseline %.0f ops/s\n", res.BaselineLookupOpsPerSec)
	for _, r := range res.Lookup {
		fmt.Printf("  %2d shard(s)  %12.0f ops/s\n", r.Shards, r.OpsPerSec)
	}
	fmt.Println()
	fmt.Println("journaled updates (wall; bar: >= 2.5x at 4 shards):")
	for _, r := range res.Update {
		fmt.Printf("  %2d shard(s)  %12.0f updates/s  %5.2fx\n", r.Shards, r.UpdatesPerSec, r.SpeedupVs1)
	}
	fmt.Println()
	k := res.Kill
	fmt.Printf("kill one of %d shards:   victim %s owned %d of %d names\n",
		k.Shards, k.VictimID, k.VictimOwned, k.Names)
	fmt.Printf("  kept %d names (%.1f%%, bar: >= %.1f%%) at survivor p99 %.4f ms vs pre-kill %.4f ms\n",
		k.Kept, k.KeptFrac*100, float64(k.Shards-1)/float64(k.Shards)*100,
		k.SurvivorP99Ms, k.PrekillP99Ms)
	fmt.Println()
	fmt.Println("shape: warm reads route straight to the owning shard (one hash, no fan-out),")
	fmt.Println("so partitioning costs reads nothing; update throughput scales with shards")
	fmt.Println("because each shard journals its own slice; killing one shard loses exactly")
	fmt.Println("that slice while every other name keeps pre-kill latency.")

	doc := experiments.BuildShardDoc(spec, res)
	buf, err := experiments.EncodeShardDoc(doc)
	if err != nil {
		return err
	}
	if err := os.WriteFile(shardBenchFile, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", shardBenchFile)
	return nil
}

// pushBenchFile is where printPush records the push-invalidation
// measurements for EXPERIMENTS.md.
const pushBenchFile = "BENCH_push.json"

func printPush(ctx context.Context, _ *world.World) error {
	spec := experiments.DefaultPushSpec()
	res, err := experiments.RunPush(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println("Push invalidation: NOTIFY fan-out vs TTL polling under sustained churn")
	fmt.Printf("%d hot names, working set %d per client, %d churned per %ds poll interval,\n",
		spec.Names, spec.WorkingSet, spec.ChurnPerRound, spec.PollIntervalSec)
	fmt.Printf("%d intervals per arm (equal-freshness fetch ratio = names/churn = %dx).\n",
		spec.Rounds, spec.Names/spec.ChurnPerRound)
	fmt.Println()
	fmt.Println("authority fetches (deterministic; bar: >= 10x at 10k clients):")
	for _, r := range res.Rows {
		fmt.Printf("  %7d clients   poll %9d   push %8d   %6.1fx   notify p50/p99 %.2f/%.2f ms (interval %gms)\n",
			r.Clients, r.PollFetches, r.PushFetches, r.FetchRatio,
			r.PropagationP50Ms, r.PropagationP99Ms, r.PollIntervalMs)
	}
	fmt.Println()
	ix := res.IXFR
	fmt.Printf("incremental transfer:    %d-record zone, %d mutations missed\n", ix.ZoneRecords, ix.DeltaRecords)
	fmt.Printf("  full %d bytes vs delta %d bytes (%.1fx); out-of-window fallback to full: %v\n",
		ix.FullBytes, ix.DeltaBytes, ix.BytesRatio, ix.FallbackFull)
	fmt.Println()
	fmt.Println("shape: polling re-fetches the whole working set every interval to bound")
	fmt.Println("staleness; a subscriber re-fetches only what the NOTIFY names, so the ratio")
	fmt.Println("is set by churn, not fleet size, and the staleness window shrinks from one")
	fmt.Println("poll interval to the fan-out tail. IXFR prices catch-up by what changed.")

	doc := experiments.BuildPushDoc(spec, res)
	buf, err := experiments.EncodePushDoc(doc)
	if err != nil {
		return err
	}
	if err := os.WriteFile(pushBenchFile, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", pushBenchFile)
	return nil
}
