package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"hns/internal/metrics"
)

// cmdAdmit fetches a daemon's /debug/hns snapshot and renders the
// admission front-door state: one row per admission-controlled server
// (normally the hnsgw gateway started with -metrics) with admitted and
// shed totals broken out by reason, plus the live in-flight and
// known-client gauges.
func cmdAdmit(args []string) error {
	fs := flag.NewFlagSet("admit", flag.ExitOnError)
	from := fs.String("from", "127.0.0.1:5321", "daemon metrics address (-metrics value)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + *from + "/debug/hns")
	if err != nil {
		return fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching snapshot: %s", resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}

	type row struct {
		server             string
		admitted           int64
		shedRate, shedLoad int64
		inflight, clients  int64
	}
	rows := make(map[string]*row)
	get := func(server string) *row {
		r := rows[server]
		if r == nil {
			r = &row{server: server}
			rows[server] = r
		}
		return r
	}
	for _, c := range snap.Counters {
		name, labels, ok := splitSeries(c.Name)
		if !ok || !strings.HasPrefix(name, "admission_") {
			continue
		}
		server, reason := parseAdmitLabels(labels)
		switch name {
		case "admission_admitted_total":
			get(server).admitted = c.Value
		case "admission_shed_total":
			switch reason {
			case "rate":
				get(server).shedRate = c.Value
			case "load":
				get(server).shedLoad = c.Value
			}
		}
	}
	for _, g := range snap.Gauges {
		name, labels, ok := splitSeries(g.Name)
		if !ok || !strings.HasPrefix(name, "admission_") {
			continue
		}
		server, _ := parseAdmitLabels(labels)
		switch name {
		case "admission_inflight":
			get(server).inflight = g.Value
		case "admission_clients":
			get(server).clients = g.Value
		}
	}
	if len(rows) == 0 {
		fmt.Println("no admission state recorded (is the daemon running with admission enabled?)")
		return nil
	}

	out := make([]*row, 0, len(rows))
	for _, r := range rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].server < out[j].server })
	fmt.Printf("%-24s %10s %11s %11s %9s %8s\n",
		"server", "admitted", "shed(rate)", "shed(load)", "inflight", "clients")
	for _, r := range out {
		fmt.Printf("%-24s %10d %11d %11d %9d %8d\n",
			r.server, r.admitted, r.shedRate, r.shedLoad, r.inflight, r.clients)
	}
	return nil
}

// parseAdmitLabels extracts server and reason from a label body like
// `server="hnsgw",reason="load"`.
func parseAdmitLabels(labels string) (server, reason string) {
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		v = strings.Trim(v, `"`)
		switch k {
		case "server":
			server = v
		case "reason":
			reason = v
		}
	}
	return server, reason
}
