package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"hns/internal/health"
	"hns/internal/metrics"
)

// cmdHealth fetches a daemon's /debug/hns snapshot and renders the
// breaker state of every replica endpoint the daemon talks to: one row
// per (service, endpoint) with the circuit state and the failure /
// failover counters. Any daemon started with -metrics serves the data;
// rows exist once a replica-aware client has touched an endpoint.
func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	from := fs.String("from", "127.0.0.1:5390", "daemon metrics address (-metrics value)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + *from + "/debug/hns")
	if err != nil {
		return fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching snapshot: %s", resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}

	type row struct {
		service, endpoint       string
		state                   health.State
		healthy                 bool
		opens, probes, failures int64
	}
	rows := make(map[string]*row)
	get := func(labels string) *row {
		r := rows[labels]
		if r == nil {
			r = &row{}
			r.service, r.endpoint = parseHealthLabels(labels)
			rows[labels] = r
		}
		return r
	}
	for _, g := range snap.Gauges {
		name, labels, ok := splitSeries(g.Name)
		if !ok {
			continue
		}
		switch name {
		case "endpoint_health":
			get(labels).healthy = g.Value != 0
		case "breaker_state":
			get(labels).state = health.State(g.Value)
		}
	}
	for _, c := range snap.Counters {
		name, labels, ok := splitSeries(c.Name)
		if !ok {
			continue
		}
		switch name {
		case "breaker_opens_total":
			get(labels).opens = c.Value
		case "breaker_probes_total":
			get(labels).probes = c.Value
		case "breaker_failures_total":
			get(labels).failures = c.Value
		}
	}
	if len(rows) == 0 {
		fmt.Println("no endpoint health recorded (no replica-aware client has run yet)")
		return nil
	}

	out := make([]*row, 0, len(rows))
	for _, r := range rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].service != out[j].service {
			return out[i].service < out[j].service
		}
		return out[i].endpoint < out[j].endpoint
	})
	fmt.Printf("%-14s %-28s %-9s %-8s %6s %7s %9s\n",
		"service", "endpoint", "state", "healthy", "opens", "probes", "failures")
	for _, r := range out {
		fmt.Printf("%-14s %-28s %-9s %-8v %6d %7d %9d\n",
			r.service, r.endpoint, r.state, r.healthy, r.opens, r.probes, r.failures)
	}
	return nil
}

// splitSeries splits a labelled series name "n{k="v",...}" into the bare
// name and the label body; ok is false for unlabelled series.
func splitSeries(s string) (name, labels string, ok bool) {
	i := strings.IndexByte(s, '{')
	if i < 0 || !strings.HasSuffix(s, "}") {
		return "", "", false
	}
	return s[:i], s[i+1 : len(s)-1], true
}

// parseHealthLabels extracts service and endpoint from a label body like
// `service="hrpc",endpoint="127.0.0.1:5301"`.
func parseHealthLabels(labels string) (service, endpoint string) {
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		v = strings.Trim(v, `"`)
		switch k {
		case "service":
			service = v
		case "endpoint":
			endpoint = v
		}
	}
	return service, endpoint
}
