// Command hnsctl is the administrative and query client for a deployed
// HNS federation (bindd + chd + hnsd + nsmd over real sockets).
//
// Subcommands:
//
//	hnsctl find    -hns 127.0.0.1:5310 <context> <individual> <queryclass>
//	hnsctl resolve -hns 127.0.0.1:5310 <context> <individual>
//	hnsctl lookup  -server 127.0.0.1:5302 <name> <type>
//	hnsctl register-ns      -meta 127.0.0.1:5301 <name> <type>
//	hnsctl register-context -meta 127.0.0.1:5301 <context> <nameservice>
//	hnsctl register-nsm     -meta 127.0.0.1:5301 -name N -ns NS -qclass QC \
//	                        -nsm-host H -hostctx C -port P -suite t,d,c
//	hnsctl dump    -meta 127.0.0.1:5301
//	hnsctl watch   -meta 127.0.0.1:5301 [-zone hns] [<zone>|<name>...]
//	hnsctl stats   -from 127.0.0.1:5390 [-filter substr]
//	hnsctl shard   -meta 127.0.0.1:5301 -from 127.0.0.1:5390 [-from ...]
//	hnsctl health  -from 127.0.0.1:5390
//	hnsctl admit   -from 127.0.0.1:5321
//
// Registrations write meta records through the modified BIND's dynamic
// update interface; `dump` prints the whole meta zone as a zone file.
// Against a sharded meta-store (bindd -shard-id), pass the register and
// unregister commands -meta-shards id=addr,... instead of -meta: each
// record then routes to the shard owning its name, with the one-shot
// map-refresh retry on a NOTOWNER redirect.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/shard"
	"hns/internal/simtime"
	"hns/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	env := &env{
		net: transport.NewNetwork(simtime.Default()),
	}
	env.rpc = hrpc.NewClient(env.net)
	defer env.rpc.Close()

	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "find":
		err = cmdFind(env, args, false)
	case "resolve":
		err = cmdFind(env, args, true)
	case "lookup":
		err = cmdLookup(env, args)
	case "register-ns":
		err = cmdRegisterNS(env, args)
	case "register-context":
		err = cmdRegisterContext(env, args)
	case "register-nsm":
		err = cmdRegisterNSM(env, args)
	case "unregister-context":
		err = cmdUnregister(env, args, "context")
	case "unregister-nsm":
		err = cmdUnregister(env, args, "nsm")
	case "dump":
		err = cmdDump(env, args)
	case "watch":
		err = cmdWatch(env, args)
	case "stats":
		err = cmdStats(args)
	case "store":
		err = cmdStore(args)
	case "shard":
		err = cmdShard(env, args)
	case "health":
		err = cmdHealth(args)
	case "admit":
		err = cmdAdmit(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hnsctl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hnsctl {find|resolve|lookup|register-ns|register-context|register-nsm|unregister-context|unregister-nsm|dump|watch|stats|store|shard|health|admit} [flags] args...")
	os.Exit(2)
}

type env struct {
	net *transport.Network
	rpc *hrpc.Client
}

// metaClient opens the meta-BIND's HRPC interface.
func (e *env) metaClient(addr string) *bind.HRPCClient {
	c := hrpc.NewClient(e.net)
	c.FreshConn = true
	return bind.NewHRPCClient(c,
		hrpc.SuiteRawNet.Bind(addr, addr, bind.HRPCProgram, bind.HRPCVersion))
}

// metaUpdater is the dynamic-update surface the register and unregister
// commands write through: the plain single-server client, or the
// owner-routing shard client when -meta-shards is set.
type metaUpdater interface {
	Update(ctx context.Context, zone string, op uint32, rr bind.RR) (uint32, error)
}

func (e *env) metaUpdater(metaAddr, shards, zone string) (metaUpdater, error) {
	if shards == "" {
		return e.metaClient(metaAddr), nil
	}
	members, err := shard.ParseMembers(shards)
	if err != nil {
		return nil, fmt.Errorf("-meta-shards: %w", err)
	}
	c := hrpc.NewClient(e.net)
	c.FreshConn = true
	return shard.NewClient(shard.ClientConfig{
		Zone:    zone,
		Members: members,
		Dial:    shard.NewDialer(c, hrpc.SuiteRawNet),
		Model:   simtime.Default(),
	})
}

func cmdFind(e *env, args []string, alsoResolve bool) error {
	fs := flag.NewFlagSet("find", flag.ExitOnError)
	hnsAddr := fs.String("hns", "127.0.0.1:5310", "hnsd address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	want := 3
	if alsoResolve {
		want = 2
	}
	if len(rest) != want {
		return fmt.Errorf("want %d positional args, got %d", want, len(rest))
	}
	qc := qclass.HostAddress
	if !alsoResolve {
		qc = rest[2]
	}
	name, err := names.New(rest[0], rest[1])
	if err != nil {
		return err
	}
	finder := core.NewRemoteHNS(e.rpc,
		hrpc.SuiteRawNet.Bind(*hnsAddr, *hnsAddr, core.HNSProgram, core.HNSVersion))
	ctx := context.Background()
	b, err := finder.FindNSM(ctx, name, qc)
	if err != nil {
		return err
	}
	fmt.Printf("NSM binding: %s\n", b)
	if !alsoResolve {
		return nil
	}
	addr, err := nsm.CallResolveHost(ctx, e.rpc, b, name)
	if err != nil {
		return err
	}
	fmt.Printf("%s -> %s\n", name, addr)
	return nil
}

func cmdLookup(e *env, args []string) error {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	server := fs.String("server", "127.0.0.1:5302", "BIND standard-interface UDP address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("want <name> <type>")
	}
	t, err := bind.ParseRRType(rest[1])
	if err != nil {
		return err
	}
	std := bind.NewStdClient(e.net, "udp-net", *server)
	defer std.Close()
	rrs, err := std.Lookup(context.Background(), rest[0], t)
	if err != nil {
		return err
	}
	for _, rr := range rrs {
		fmt.Println(rr)
	}
	return nil
}

func cmdRegisterNS(e *env, args []string) error {
	fs := flag.NewFlagSet("register-ns", flag.ExitOnError)
	meta := fs.String("meta", "127.0.0.1:5301", "meta-BIND HRPC address")
	shards := fs.String("meta-shards", "", "sharded meta-store as id=addr,...; routes the record to its owning shard")
	zone := fs.String("zone", "hns", "meta zone")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("want <name> <type>")
	}
	rr, err := core.NameServiceRecord(*zone, rest[0], rest[1])
	if err != nil {
		return err
	}
	return applyRecords(e, *meta, *shards, *zone, rr)
}

func cmdRegisterContext(e *env, args []string) error {
	fs := flag.NewFlagSet("register-context", flag.ExitOnError)
	meta := fs.String("meta", "127.0.0.1:5301", "meta-BIND HRPC address")
	shards := fs.String("meta-shards", "", "sharded meta-store as id=addr,...; routes the record to its owning shard")
	zone := fs.String("zone", "hns", "meta zone")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("want <context> <nameservice>")
	}
	rr, err := core.ContextRecord(*zone, rest[0], rest[1])
	if err != nil {
		return err
	}
	return applyRecords(e, *meta, *shards, *zone, rr)
}

func cmdRegisterNSM(e *env, args []string) error {
	fs := flag.NewFlagSet("register-nsm", flag.ExitOnError)
	meta := fs.String("meta", "127.0.0.1:5301", "meta-BIND HRPC address")
	shards := fs.String("meta-shards", "", "sharded meta-store as id=addr,...; routes each record to its owning shard")
	zone := fs.String("zone", "hns", "meta zone")
	name := fs.String("name", "", "NSM name")
	ns := fs.String("ns", "", "name service")
	qc := fs.String("qclass", "", "query class")
	nsmHost := fs.String("nsm-host", "", "host the NSM runs on (individual name)")
	hostctx := fs.String("hostctx", "", "context resolving that host")
	port := fs.String("port", "", "NSM endpoint port/suffix on the host")
	suite := fs.String("suite", "udp-net,xdr,sunrpc", "transport,datarep,control")
	if err := fs.Parse(args); err != nil {
		return err
	}
	parts := strings.Split(*suite, ",")
	if len(parts) != 3 {
		return fmt.Errorf("-suite wants transport,datarep,control")
	}
	rrs, err := core.NSMRecords(*zone, core.NSMInfo{
		Name: *name, NameService: *ns, QueryClass: *qc,
		Host: *nsmHost, HostContext: *hostctx, Port: *port,
		Suite: hrpc.Suite{Transport: parts[0], DataRep: parts[1], Control: parts[2]},
	})
	if err != nil {
		return err
	}
	return applyRecords(e, *meta, *shards, *zone, rrs...)
}

func applyRecords(e *env, metaAddr, shards, zone string, rrs ...bind.RR) error {
	mc, err := e.metaUpdater(metaAddr, shards, zone)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, rr := range rrs {
		serial, err := mc.Update(ctx, zone, bind.UpdateAdd, rr)
		if err != nil {
			return err
		}
		fmt.Printf("added %s (zone serial %d)\n", rr, serial)
	}
	return nil
}

// cmdUnregister removes a context mapping or an NSM's records.
func cmdUnregister(e *env, args []string, kind string) error {
	fs := flag.NewFlagSet("unregister-"+kind, flag.ExitOnError)
	meta := fs.String("meta", "127.0.0.1:5301", "meta-BIND HRPC address")
	shards := fs.String("meta-shards", "", "sharded meta-store as id=addr,...; routes each removal to its owning shard")
	zone := fs.String("zone", "hns", "meta zone")
	ns := fs.String("ns", "", "name service (unregister-nsm)")
	qc := fs.String("qclass", "", "query class (unregister-nsm)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 1 {
		return fmt.Errorf("want one positional argument (the %s name)", kind)
	}
	mc, err := e.metaUpdater(*meta, *shards, *zone)
	if err != nil {
		return err
	}
	ctx := context.Background()
	remove := func(owner string) error {
		serial, err := mc.Update(ctx, *zone, bind.UpdateRemove,
			bind.RR{Name: owner, Type: bind.TypeHNSMeta})
		if err != nil {
			return err
		}
		fmt.Printf("removed %s (zone serial %d)\n", owner, serial)
		return nil
	}
	switch kind {
	case "context":
		return remove(rest[0] + ".ctx." + *zone)
	default: // nsm
		if *ns == "" || *qc == "" {
			return fmt.Errorf("unregister-nsm needs -ns and -qclass")
		}
		if err := remove(*qc + "." + *ns + ".qc." + *zone); err != nil {
			return err
		}
		return remove(rest[0] + ".nsm." + *zone)
	}
}

func cmdDump(e *env, args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	meta := fs.String("meta", "127.0.0.1:5301", "meta-BIND HRPC address")
	zone := fs.String("zone", "hns", "meta zone")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mc := e.metaClient(*meta)
	serial, rrs, err := mc.Transfer(context.Background(), *zone)
	if err != nil {
		return err
	}
	fmt.Printf("; zone %s serial %d (%d records)\n", *zone, serial, len(rrs))
	fmt.Print(bind.FormatZoneFile(rrs))
	return nil
}
