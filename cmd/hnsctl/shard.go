package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"hns/internal/bind"
	"hns/internal/metrics"
	"hns/internal/shard"
)

// cmdShard renders a sharded meta-store: the shard map itself (fetched
// from any shard's meta zone) and, per shard daemon, the shard_* series
// from its /debug/hns snapshot — map epoch, zone record count, NOTOWNER
// redirects served, and rebalance activity.
func cmdShard(e *env, args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	meta := fs.String("meta", "", "any shard's HRPC address; fetches and prints the shard-map record")
	zone := fs.String("zone", "hns", "the sharded zone")
	var froms stringFlagList
	fs.Var(&froms, "from", "shard daemon metrics address (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *meta == "" && len(froms) == 0 {
		return fmt.Errorf("want -meta and/or at least one -from")
	}

	if *meta != "" {
		rrs, err := e.metaClient(*meta).Lookup(context.Background(),
			shard.MapName(*zone), bind.TypeHNSMeta)
		if err != nil {
			return fmt.Errorf("fetching shard map: %w", err)
		}
		m, err := shard.FromRecords(rrs)
		if err != nil {
			return fmt.Errorf("decoding shard map: %w", err)
		}
		fmt.Printf("shard map for %q: epoch %d, seed %d, %d members\n",
			*zone, m.Epoch, m.Seed, len(m.Members))
		for _, mem := range m.Members {
			fmt.Printf("  %-12s %s\n", mem.ID, mem.Addr)
		}
	}

	client := &http.Client{Timeout: 5 * time.Second}
	for _, from := range froms {
		resp, err := client.Get("http://" + from + "/debug/hns")
		if err != nil {
			return fmt.Errorf("fetching snapshot from %s: %w", from, err)
		}
		var snap metrics.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding snapshot from %s: %w", from, err)
		}

		type shardView struct {
			counters map[string]int64
			gauges   map[string]int64
		}
		views := make(map[string]*shardView)
		view := func(id string) *shardView {
			v, ok := views[id]
			if !ok {
				v = &shardView{counters: make(map[string]int64), gauges: make(map[string]int64)}
				views[id] = v
			}
			return v
		}
		for _, c := range snap.Counters {
			if base, id, ok := shardSeries(c.Name); ok {
				view(id).counters[base] = c.Value
			}
		}
		for _, g := range snap.Gauges {
			if base, id, ok := shardSeries(g.Name); ok {
				view(id).gauges[base] = g.Value
			}
		}
		if len(views) == 0 {
			fmt.Printf("%s: no shard series; is this bindd running with -shard-id?\n", from)
			continue
		}
		ids := make([]string, 0, len(views))
		for id := range views {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			v := views[id]
			fmt.Printf("shard %q at %s\n", id, from)
			fmt.Printf("  map epoch:    %d\n", v.gauges["shard_map_epoch"])
			fmt.Printf("  zone records: %d\n", v.gauges["shard_zone_records"])
			fmt.Printf("  notowner:     %d redirects served\n", v.counters["shard_notowner_total"])
			fmt.Printf("  rebalance:    %d records pulled over %d transfers\n",
				v.counters["shard_rebalance_pulled_total"], v.counters["shard_rebalance_transfers_total"])
		}
	}
	return nil
}

// shardSeries splits `shard_map_epoch{shard="s0"}` into base and shard
// label; ok is false for series without a shard label.
func shardSeries(name string) (base, id string, ok bool) {
	i := strings.Index(name, `{shard="`)
	if i < 0 || !strings.HasSuffix(name, `"}`) {
		return "", "", false
	}
	return name[:i], name[i+len(`{shard="`) : len(name)-len(`"}`)], true
}

// stringFlagList collects a repeatable string flag.
type stringFlagList []string

func (s *stringFlagList) String() string     { return strings.Join(*s, ",") }
func (s *stringFlagList) Set(v string) error { *s = append(*s, v); return nil }
