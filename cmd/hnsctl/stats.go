package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hns/internal/metrics"
)

// cmdStats fetches a daemon's /debug/hns snapshot and pretty-prints it.
// Any daemon started with -metrics serves the endpoint.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	from := fs.String("from", "127.0.0.1:5390", "daemon metrics address (-metrics value)")
	filter := fs.String("filter", "", "only show series whose name contains this substring")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + *from + "/debug/hns")
	if err != nil {
		return fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching snapshot: %s", resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}

	match := func(name string) bool {
		return *filter == "" || strings.Contains(name, *filter)
	}
	printed := 0
	section := func(title string) {
		if printed > 0 {
			fmt.Println()
		}
		fmt.Printf("%s\n", title)
		printed++
	}

	// The push plane's subscriber table, summarized up front when the
	// daemon has one (bindd -push): the raw push_* series still appear in
	// the sections below.
	if v, ok := lookup(snap.Gauges, "push_subscribers"); ok && match("push_subscribers") {
		section("push plane:")
		row := func(label, name string, ss []metrics.Series) {
			n, _ := lookup(ss, name)
			fmt.Printf("  %-60s %d\n", label, n)
		}
		fmt.Printf("  %-60s %d\n", "subscribers now", v)
		row("subscriptions accepted", "push_subscribe_total", snap.Counters)
		row("subscriptions rejected (table full)", "push_subscribe_rejected_total", snap.Counters)
		row("notifies sent", "push_notify_sent_total", snap.Counters)
		row("notifies dropped (slow subscribers)", "push_notify_dropped_total", snap.Counters)
		row("subscriber connections dropped", "push_conn_drops_total", snap.Counters)
	}

	if any(snap.Counters, match) {
		section("counters:")
		for _, c := range snap.Counters {
			if match(c.Name) {
				fmt.Printf("  %-60s %d\n", c.Name, c.Value)
			}
		}
	}
	if any(snap.Gauges, match) {
		section("gauges:")
		for _, g := range snap.Gauges {
			if match(g.Name) {
				fmt.Printf("  %-60s %d\n", g.Name, g.Value)
			}
		}
	}
	histShown := false
	for _, h := range snap.Histograms {
		if !match(h.Name) {
			continue
		}
		if !histShown {
			section("histograms (simulated ms):")
			histShown = true
		}
		fmt.Printf("  %-60s n=%-7d mean=%-8.3f p50≤%-7g p99≤%-7g\n",
			h.Name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}
	if printed == 0 {
		fmt.Println("no series matched")
	}
	return nil
}

func lookup(ss []metrics.Series, name string) (int64, bool) {
	for _, s := range ss {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

func any(ss []metrics.Series, match func(string) bool) bool {
	for _, s := range ss {
		if match(s.Name) {
			return true
		}
	}
	return false
}
