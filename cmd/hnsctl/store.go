package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"hns/internal/metrics"
)

// cmdStore fetches a daemon's /debug/hns snapshot and renders the
// durable-store series — WAL appends and fsyncs, snapshots, recovery —
// grouped per store label. A bindd started with -data-dir and -metrics
// is the usual target.
func cmdStore(args []string) error {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	from := fs.String("from", "127.0.0.1:5390", "daemon metrics address (-metrics value)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + *from + "/debug/hns")
	if err != nil {
		return fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching snapshot: %s", resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}

	// Group every store-labelled series by the label value.
	type storeView struct {
		counters map[string]int64
		gauges   map[string]int64
	}
	stores := make(map[string]*storeView)
	view := func(label string) *storeView {
		v, ok := stores[label]
		if !ok {
			v = &storeView{counters: make(map[string]int64), gauges: make(map[string]int64)}
			stores[label] = v
		}
		return v
	}
	for _, c := range snap.Counters {
		if base, label, ok := storeSeries(c.Name); ok {
			view(label).counters[base] = c.Value
		}
	}
	for _, g := range snap.Gauges {
		if base, label, ok := storeSeries(g.Name); ok {
			view(label).gauges[base] = g.Value
		}
	}
	if len(stores) == 0 {
		fmt.Println("no durable-store series; is the daemon running with -data-dir?")
		return nil
	}

	labels := make([]string, 0, len(stores))
	for l := range stores {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for i, label := range labels {
		if i > 0 {
			fmt.Println()
		}
		v := stores[label]
		fmt.Printf("store %q\n", label)
		fmt.Printf("  wal:       %d appends, %d fsyncs, last lsn %d, %d segments\n",
			v.counters["wal_appends_total"], v.counters["wal_fsync_total"],
			v.gauges["store_wal_last_lsn"], v.gauges["store_wal_segments"])
		fmt.Printf("  snapshots: %d written, covering lsn %d (%d skipped as invalid)\n",
			v.counters["snapshot_total"], v.gauges["store_snapshot_lsn"],
			v.gauges["store_snapshot_skipped"])
		fmt.Printf("  recovery:  %d records replayed, %d torn bytes dropped, %d ms\n",
			v.gauges["store_recovery_replayed"], v.gauges["store_recovery_torn_bytes"],
			v.gauges["store_recovery_ms"])
		for _, h := range snap.Histograms {
			if base, l, ok := storeSeries(h.Name); ok && l == label && base == "wal_fsync_seconds" {
				fmt.Printf("  fsync:     n=%d mean=%.3gms p99≤%gms\n",
					h.Count, h.Mean(), h.Quantile(0.99))
			}
		}
	}
	return nil
}

// storeSeries splits a series name like `wal_appends_total{store="fiji"}`
// into its base name and store label; ok is false for series without a
// store label.
func storeSeries(name string) (base, label string, ok bool) {
	i := strings.Index(name, `{store="`)
	if i < 0 || !strings.HasSuffix(name, `"}`) {
		return "", "", false
	}
	return name[:i], name[i+len(`{store="`) : len(name)-len(`"}`)], true
}
