package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"hns/internal/bind"
	"hns/internal/push"
)

// cmdWatch subscribes to a bindd's push plane and prints every NOTIFY
// as it arrives — the operator's live view of the invalidation stream.
// A positional argument equal to the zone (or no arguments) watches the
// whole zone; any other argument narrows delivery to that owner name
// (repeatable). Zone-level events are always delivered.
func cmdWatch(e *env, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	meta := fs.String("meta", "127.0.0.1:5301", "bindd HRPC address")
	zone := fs.String("zone", "hns", "zone to watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var names []string
	for _, arg := range fs.Args() {
		if arg == *zone {
			// Bare zone: no name filter — everything in the zone.
			names = nil
			break
		}
		names = append(names, arg)
	}

	mc := e.metaClient(*meta)
	var seen atomic.Int64
	stamp := func() string { return time.Now().Format("15:04:05.000") }
	sub := mc.Subscribe(bind.SubscribeConfig{
		Zone:  *zone,
		Names: names,
		OnNotify: func(n push.Notification) {
			seen.Add(1)
			if n.Name == "" {
				fmt.Printf("%s  serial %-8d zone-level event (%s)\n", stamp(), n.Serial, n.Zone)
				return
			}
			fmt.Printf("%s  serial %-8d %s\n", stamp(), n.Serial, n.Name)
		},
		OnReset: func() {
			fmt.Printf("%s  RESET: continuity lost past the server's diff window\n", stamp())
		},
	})
	defer sub.Close()

	// The subscriber degrades silently by design (its consumers fall back
	// to polling); a human watching wants the verdict up front instead.
	deadline := time.Now().Add(5 * time.Second)
	for !sub.Active() {
		if sub.Degraded() {
			return fmt.Errorf("%s has no push plane (old server, legacy framing, or a full subscriber table); start bindd with -push", *meta)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no subscription to %s after 5s (server down?)", *meta)
		}
		time.Sleep(50 * time.Millisecond)
	}
	what := "whole zone"
	if len(names) > 0 {
		what = fmt.Sprintf("%d name(s)", len(names))
	}
	fmt.Printf("watching zone %q on %s (%s) from serial %d — ctrl-C to stop\n",
		*zone, *meta, what, sub.LastSerial())

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	<-done
	fmt.Printf("\n%d notification(s); last serial %d\n", seen.Load(), sub.LastSerial())
	return nil
}
