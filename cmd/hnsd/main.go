// Command hnsd runs the HNS as a network service over real sockets: a
// FindNSM server backed by a meta-BIND (a bindd with an updatable meta
// zone), with HostAddress NSMs linked in per the prototype's arrangement.
//
// Usage:
//
//	hnsd -addr 127.0.0.1:5310 -meta 127.0.0.1:5301 -metazone hns \
//	     -link-bind bind-cs=127.0.0.1:5302 \
//	     -link-ch   ch-uw=127.0.0.1:5303,reader:cs:uw,secret
//
// -link-bind links a BIND-world HostAddress NSM (name service = the
// conventional BIND at the given standard-interface UDP address);
// -link-ch links a Clearinghouse-world one (Courier address plus
// credentials).
//
// With -meta-shards id=addr,... the meta-store is a set of bindd shards
// (see bindd -shard-id): lookups and updates route straight to the shard
// owning each name under the fetched shard map, with a one-shot
// map-refresh retry on a NOTOWNER redirect.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hns/internal/bind"
	"hns/internal/clearinghouse"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/nsm"
	"hns/internal/shard"
	"hns/internal/simtime"
	"hns/internal/transport"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var (
		host       = flag.String("host", "hnsd", "descriptive host name")
		addr       = flag.String("addr", "127.0.0.1:5310", "FindNSM service listen address (TCP)")
		metaAddr   = flag.String("meta", "127.0.0.1:5301", "meta-BIND HRPC address (TCP)")
		metaZone   = flag.String("metazone", "hns", "meta-information zone")
		marshCach  = flag.Bool("marshalled-cache", false, "keep the meta-cache in marshalled form (Table 3.2's slow mode)")
		preload    = flag.Bool("preload", false, "preload the meta-cache via zone transfer at startup")
		negTTL     = flag.Duration("neg-ttl", 0, "cache authoritative NotFound answers for this long (0 disables negative caching)")
		metrAddr   = flag.String("metrics", "", "serve /metrics and /debug/hns on this address (empty disables)")
		staleFor   = flag.Duration("serve-stale", 0, "serve expired meta-cache entries up to this long past expiry when every meta-BIND replica is down (0 disables)")
		refrAhead  = flag.Float64("refresh-ahead", 0, "refresh meta-cache entries asynchronously once their remaining TTL falls to this fraction of the original (0 disables; try 0.2)")
		bindTTL    = flag.Duration("binding-cache", 0, "memoize fully resolved FindNSM bindings for this long (0 disables; layered above the meta-cache)")
		mux        = flag.Bool("mux", true, "dial multiplexed connections (tagged frames, many in-flight calls per socket); disable to speak the legacy serialized framing to pre-mux peers")
		subscribe  = flag.Bool("subscribe", false, "subscribe to the meta-BIND's push plane: updates invalidate the meta-cache immediately instead of waiting out TTLs (degrades to polling against old peers)")
		connIdle   = flag.Duration("conn-idle", 0, "close pooled HRPC connections idle for this long (0 keeps them until shutdown)")
		metaShards = flag.String("meta-shards", "", "sharded meta-store as id=addr,... ; replaces -meta/-meta-replica with owner-routed shard access")
		linkBind   stringList
		linkCH     stringList
		metaReps   stringList
	)
	flag.Var(&linkBind, "link-bind", "ns=stdaddr: link a BIND HostAddress NSM (repeatable)")
	flag.Var(&linkCH, "link-ch", "ns=addr,principal,secret: link a Clearinghouse HostAddress NSM (repeatable)")
	flag.Var(&metaReps, "meta-replica", "additional meta-BIND HRPC address tried when -meta is unreachable (repeatable, ordered)")
	flag.Parse()

	if *metrAddr != "" {
		msrv, err := metrics.Serve(*metrAddr, metrics.Default())
		if err != nil {
			log.Fatalf("hnsd: metrics listen: %v", err)
		}
		defer msrv.Close()
		log.Printf("hnsd: metrics on http://%s/metrics", msrv.Addr())
	}

	model := simtime.Default()
	net := transport.NewNetwork(model)
	net.SetMux(*mux)
	rpc := hrpc.NewClient(net)
	rpc.Pool.IdleTimeout = *connIdle
	defer rpc.Close()

	metaRPC := hrpc.NewClient(net)
	metaRPC.FreshConn = true
	var meta core.MetaClient
	if *metaShards != "" {
		// Sharded meta-store: route every meta lookup/update to the
		// shard owning the name under the fetched shard map. Shards are
		// not replicas of one another (a write must land on its owner),
		// so -meta-replica does not combine with -meta-shards.
		if len(metaReps) > 0 {
			log.Fatal("hnsd: -meta-shards excludes -meta-replica (each name has one owning shard)")
		}
		members, err := shard.ParseMembers(*metaShards)
		if err != nil {
			log.Fatalf("hnsd: -meta-shards: %v", err)
		}
		sc, err := shard.NewClient(shard.ClientConfig{
			Zone:         *metaZone,
			Members:      members,
			Dial:         shard.NewDialer(metaRPC, hrpc.SuiteRawNet),
			Model:        model,
			RouterConfig: shard.RouterConfig{StaleFor: *staleFor},
		})
		if err != nil {
			log.Fatalf("hnsd: %v", err)
		}
		meta = sc
		log.Printf("hnsd: meta-store sharded across %d binds", len(members))
	} else {
		if len(metaReps) > 0 {
			metaRPC.SetReplicas(*metaAddr, metaReps...)
			log.Printf("hnsd: meta failover replicas: %s", metaReps.String())
		}
		meta = bind.NewHRPCClient(metaRPC,
			hrpc.SuiteRawNet.Bind(*metaAddr, *metaAddr, bind.HRPCProgram, bind.HRPCVersion))
	}

	mode := bind.CacheDemarshalled
	if *marshCach {
		mode = bind.CacheMarshalled
	}
	h := core.New(meta, model, core.Config{
		MetaZone:         *metaZone,
		CacheMode:        mode,
		NegativeCacheTTL: *negTTL,
		ServeStale:       *staleFor,
		RefreshAhead:     *refrAhead,
		BindingCacheTTL:  *bindTTL,
		RPC:              rpc,
	})

	for _, spec := range linkBind {
		ns, stdAddr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("hnsd: -link-bind wants ns=addr, got %q", spec)
		}
		std := bind.NewStdClient(net, "udp-net", stdAddr)
		h.LinkHostResolver(ns, nsm.NewBindHostAddr("hostaddr-"+ns, ns, std, model, nsm.Options{}))
		log.Printf("hnsd: linked BIND HostAddress NSM for %s at %s", ns, stdAddr)
	}
	for _, spec := range linkCH {
		ns, rest, ok := strings.Cut(spec, "=")
		parts := strings.SplitN(rest, ",", 3)
		if !ok || len(parts) != 3 {
			log.Fatalf("hnsd: -link-ch wants ns=addr,principal,secret, got %q", spec)
		}
		chB := hrpc.SuiteCourierNet.Bind(parts[0], parts[0], clearinghouse.Program, clearinghouse.Version)
		ch := clearinghouse.NewClient(rpc, chB, clearinghouse.NewCredentials(parts[1], parts[2]))
		h.LinkHostResolver(ns, nsm.NewCHHostAddr("hostaddr-"+ns, ns, ch, model, nsm.Options{}))
		log.Printf("hnsd: linked Clearinghouse HostAddress NSM for %s at %s", ns, parts[0])
	}

	if *subscribe {
		if h.SubscribeMeta() {
			defer h.UnsubscribeMeta()
			log.Printf("hnsd: subscribed to push invalidation for zone %q", *metaZone)
		} else {
			// The sharded client has no single subscription endpoint yet;
			// TTL polling carries the freshness contract as before.
			log.Printf("hnsd: -subscribe: meta client cannot subscribe; staying on TTL polling")
		}
	}

	if *preload {
		rep, err := h.Preload(context.Background())
		if err != nil {
			log.Fatalf("hnsd: preload: %v", err)
		}
		log.Printf("hnsd: preloaded %d meta records (%d bytes) at serial %d",
			rep.Records, rep.Bytes, rep.Serial)
	}

	ln, binding, err := hrpc.Serve(net, core.NewHNSServer(h, "hns@"+*host), hrpc.SuiteRawNet, *host, *addr)
	if err != nil {
		log.Fatalf("hnsd: %v", err)
	}
	defer ln.Close()
	log.Printf("hnsd: serving FindNSM %s (meta %s zone %q, cache %s)",
		binding, *metaAddr, *metaZone, mode)

	// Long-lived server hygiene: sweep expired meta-cache entries so dead
	// data does not pin memory between touches.
	sweepDone := make(chan struct{})
	go func() {
		ticker := time.NewTicker(5 * time.Minute)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				h.SweepCache()
				if *connIdle > 0 {
					// Pool eviction is otherwise lazy (checked on the next
					// call to the same endpoint); the sweep closes idle
					// connections to endpoints no one is calling anymore.
					rpc.CloseIdle()
				}
			case <-sweepDone:
				return
			}
		}
	}()

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	close(sweepDone)
	st := h.Stats()
	log.Printf("hnsd: %d FindNSM calls, cache hit rate %.0f%%; shutting down",
		st.FindNSMCalls, st.Cache.HitRate*100)
}
