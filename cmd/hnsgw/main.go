// Command hnsgw runs the admission-controlled resolution gateway: an HNS
// front door that forwards FindNSM and FindNSMBatch to a backend hnsd,
// shedding excess load with typed backpressure before it reaches the
// resolver.
//
// Usage:
//
//	hnsgw -addr 127.0.0.1:5320 -backend 127.0.0.1:5310 \
//	      -rate 100 -burst 200 -max-inflight 256 -metrics 127.0.0.1:5321
//
// Repeating -backend builds a round-robin pool: admitted calls rotate
// across the backends and fail over when one is unreachable — the
// arrangement for a fleet of hnsds over a sharded meta-store.
//
// Batch resolution is classified low priority and sheds first (at
// -low-watermark of the in-flight cap); single-name calls keep flowing
// to the full cap. With -propagate-deadline, budgets arriving from new
// clients cross the gateway so the backend sees the caller's remaining
// deadline, and already-expired work is shed at this hop.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hns/internal/admission"
	"hns/internal/core"
	"hns/internal/gateway"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// backendList collects repeated -backend flags.
type backendList []string

func (b *backendList) String() string     { return strings.Join(*b, ",") }
func (b *backendList) Set(v string) error { *b = append(*b, v); return nil }

func main() {
	var backends backendList
	var (
		host     = flag.String("host", "hnsgw", "descriptive host name")
		addr     = flag.String("addr", "127.0.0.1:5320", "gateway listen address (TCP)")
		rate     = flag.Float64("rate", 0, "per-client sustained admissions per second (0 disables rate limiting)")
		burst    = flag.Float64("burst", 0, "per-client bucket depth (0 means max(1, rate))")
		maxInfl  = flag.Int("max-inflight", 0, "cap on concurrently admitted calls (0 disables the load cap)")
		lowWater = flag.Float64("low-watermark", 0.75, "fraction of -max-inflight past which batch (low-priority) calls shed")
		maxCli   = flag.Int("max-clients", 0, "per-client bucket table bound (0 means the default)")
		retryAft = flag.Duration("retry-after", 0, "backoff hint carried in Overloaded replies (0 means the default)")
		propDL   = flag.Bool("propagate-deadline", false, "forward callers' remaining budgets to the backend (requires a budget-aware backend)")
		metrAddr = flag.String("metrics", "", "serve /metrics and /debug/hns on this address (empty disables)")
		mux      = flag.Bool("mux", true, "dial multiplexed upstream connections; disable for pre-mux backends")
		connIdle = flag.Duration("conn-idle", 0, "close pooled upstream connections idle for this long (0 keeps them)")
	)
	flag.Var(&backends, "backend", "backend HNS FindNSM address (TCP); repeat for a round-robin pool with failover")
	flag.Parse()
	if len(backends) == 0 {
		backends = backendList{"127.0.0.1:5310"}
	}

	if *metrAddr != "" {
		msrv, err := metrics.Serve(*metrAddr, metrics.Default())
		if err != nil {
			log.Fatalf("hnsgw: metrics listen: %v", err)
		}
		defer msrv.Close()
		log.Printf("hnsgw: metrics on http://%s/metrics", msrv.Addr())
	}

	model := simtime.Default()
	net := transport.NewNetwork(model)
	net.SetMux(*mux)
	up := hrpc.NewClient(net)
	up.Pool.IdleTimeout = *connIdle
	defer up.Close()

	cfg := gateway.Config{
		Name:              "hnsgw@" + *host,
		PropagateDeadline: *propDL,
	}
	if *rate > 0 || *maxInfl > 0 {
		cfg.Admission = &admission.Config{
			Rate:         *rate,
			Burst:        *burst,
			MaxInflight:  *maxInfl,
			LowWatermark: *lowWater,
			MaxClients:   *maxCli,
			RetryAfter:   *retryAft,
		}
	}
	var bindings []hrpc.Binding
	for _, b := range backends {
		bindings = append(bindings, hrpc.SuiteRawNet.Bind(b, b, core.HNSProgram, core.HNSVersion))
	}
	var gw *gateway.Gateway
	if len(bindings) == 1 {
		gw = gateway.New(up, bindings[0], cfg)
	} else {
		gw = gateway.NewPooled(up, bindings, cfg)
	}

	ln, binding, err := gw.Serve(net, hrpc.SuiteRawNet, *host, *addr)
	if err != nil {
		log.Fatalf("hnsgw: %v", err)
	}
	defer ln.Close()
	switch {
	case cfg.Admission != nil:
		log.Printf("hnsgw: serving %s -> %s (rate %.0f/s burst %.0f, inflight cap %d, low watermark %.2f)",
			binding, backends.String(), *rate, *burst, *maxInfl, *lowWater)
	default:
		log.Printf("hnsgw: serving %s -> %s (admission disabled)", binding, backends.String())
	}

	// Long-lived hygiene: evict idle upstream connections.
	done := make(chan struct{})
	if *connIdle > 0 {
		go func() {
			ticker := time.NewTicker(time.Minute)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					up.CloseIdle()
				case <-done:
					return
				}
			}
		}()
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	close(done)
	if ctl := gw.Admission(); ctl != nil {
		log.Printf("hnsgw: shutting down (%d in flight, %d known clients)", ctl.Inflight(), ctl.Clients())
	} else {
		log.Print("hnsgw: shutting down")
	}
}
