// Command hrpcgen is the HRPC stub compiler: it reads an interface
// description (see internal/idl) and emits Go stub code — typed client,
// handler interface, server wiring, and marshalling glue.
//
// Usage:
//
//	hrpcgen -in greeter.idl -out greeter_stubs.go -pkg greeter
//
// The checked-in package internal/gen/greeter is hrpcgen output; its test
// regenerates and diffs it, so `go test ./...` fails if the stubs drift
// from their IDL.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"log"
	"os"

	"hns/internal/idl"
)

func main() {
	var (
		in  = flag.String("in", "", "interface description file (required)")
		out = flag.String("out", "", "output Go file (default stdout)")
		pkg = flag.String("pkg", "", "package name for the generated code (required)")
	)
	flag.Parse()
	if *in == "" || *pkg == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("hrpcgen: %v", err)
	}
	iface, err := idl.Parse(f)
	f.Close()
	if err != nil {
		log.Fatalf("hrpcgen: %v", err)
	}
	src, err := idl.Generate(iface, *pkg)
	if err != nil {
		log.Fatalf("hrpcgen: %v", err)
	}
	formatted, err := format.Source(src)
	if err != nil {
		// Emit the unformatted source to ease debugging, but fail.
		os.Stderr.Write(src)
		log.Fatalf("hrpcgen: generated code does not parse: %v", err)
	}
	if *out == "" {
		os.Stdout.Write(formatted)
		return
	}
	if err := os.WriteFile(*out, formatted, 0o644); err != nil {
		log.Fatalf("hrpcgen: %v", err)
	}
	fmt.Printf("hrpcgen: wrote %s (%s program %d.%d, %d procs)\n",
		*out, iface.Program, iface.Number, iface.Version, len(iface.Procs))
}
