// Command nsmd hosts Naming Semantics Managers as network services.
//
// One nsmd serves one NSM over its world's native protocol suite:
//
//	# the BIND-world binding NSM (Sun RPC over UDP)
//	nsmd -type binding-bind -ns bind-cs -bind-std 127.0.0.1:5302 \
//	     -addr 127.0.0.1:5320
//
//	# the Clearinghouse-world binding NSM (Courier over TCP)
//	nsmd -type binding-ch -ns ch-uw -ch 127.0.0.1:5303 \
//	     -ch-principal reader:cs:uw -ch-secret secret -addr 127.0.0.1:5321
//
// Types: binding-bind, binding-ch, hostaddr-bind, hostaddr-ch, mail-bind,
// mail-ch. Registering the served NSM with the HNS is done separately with
// `hnsctl register-nsm` — "registering an NSM with the HNS extends the
// functionality of all machines at once".
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"hns/internal/bind"
	"hns/internal/clearinghouse"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/nsm"
	"hns/internal/simtime"
	"hns/internal/transport"
)

func main() {
	var (
		host        = flag.String("host", "nsmd", "descriptive host name")
		addr        = flag.String("addr", "127.0.0.1:5320", "listen address")
		nsmType     = flag.String("type", "", "NSM type: binding-bind binding-ch hostaddr-bind hostaddr-ch mail-bind mail-ch")
		name        = flag.String("name", "", "registered NSM name (default <type>-1)")
		ns          = flag.String("ns", "", "underlying name service's registered name")
		bindStd     = flag.String("bind-std", "", "standard-interface UDP address of the underlying BIND")
		chAddr      = flag.String("ch", "", "Courier TCP address of the underlying Clearinghouse")
		chPrincipal = flag.String("ch-principal", "", "Clearinghouse principal")
		chSecret    = flag.String("ch-secret", "", "Clearinghouse secret")
		marshalled  = flag.Bool("marshalled-cache", false, "keep the NSM cache in marshalled form")
		staleFor    = flag.Duration("serve-stale", 0, "serve expired cache entries up to this long past expiry when the underlying name service is down (0 disables)")
		metrAddr    = flag.String("metrics", "", "serve /metrics and /debug/hns on this address (empty disables)")
	)
	mux := flag.Bool("mux", true, "dial multiplexed connections (tagged frames, many in-flight calls per socket); disable to speak the legacy serialized framing to pre-mux peers")
	flag.Parse()
	if *nsmType == "" || *ns == "" {
		log.Fatal("nsmd: -type and -ns are required")
	}
	if *name == "" {
		*name = *nsmType + "-1"
	}

	if *metrAddr != "" {
		msrv, err := metrics.Serve(*metrAddr, metrics.Default())
		if err != nil {
			log.Fatalf("nsmd: metrics listen: %v", err)
		}
		defer msrv.Close()
		log.Printf("nsmd: metrics on http://%s/metrics", msrv.Addr())
	}

	model := simtime.Default()
	net := transport.NewNetwork(model)
	net.SetMux(*mux)
	rpc := hrpc.NewClient(net)
	defer rpc.Close()

	opts := nsm.Options{StaleFor: *staleFor}
	if *marshalled {
		opts.CacheMode = bind.CacheMarshalled
	}

	newStd := func() *bind.StdClient {
		if *bindStd == "" {
			log.Fatalf("nsmd: -type %s requires -bind-std", *nsmType)
		}
		return bind.NewStdClient(net, "udp-net", *bindStd)
	}
	newCH := func() *clearinghouse.Client {
		if *chAddr == "" {
			log.Fatalf("nsmd: -type %s requires -ch (and credentials)", *nsmType)
		}
		b := hrpc.SuiteCourierNet.Bind(*chAddr, *chAddr, clearinghouse.Program, clearinghouse.Version)
		return clearinghouse.NewClient(rpc, b, clearinghouse.NewCredentials(*chPrincipal, *chSecret))
	}

	var (
		server *hrpc.Server
		suite  hrpc.Suite
	)
	switch *nsmType {
	case "binding-bind":
		server = nsm.NewBindBinding(*name, *ns, newStd(), rpc, model, opts).Server()
		suite = hrpc.SuiteSunRPCNet
	case "binding-ch":
		server = nsm.NewCHBinding(*name, *ns, newCH(), rpc, model, opts).Server()
		suite = hrpc.SuiteCourierNet
	case "hostaddr-bind":
		server = nsm.NewBindHostAddr(*name, *ns, newStd(), model, opts).Server()
		suite = hrpc.SuiteSunRPCNet
	case "hostaddr-ch":
		server = nsm.NewCHHostAddr(*name, *ns, newCH(), model, opts).Server()
		suite = hrpc.SuiteCourierNet
	case "mail-bind":
		server = nsm.NewBindMailRoute(*name, *ns, newStd(), model, opts).Server()
		suite = hrpc.SuiteSunRPCNet
	case "mail-ch":
		server = nsm.NewCHMailRoute(*name, *ns, newCH(), model, opts).Server()
		suite = hrpc.SuiteCourierNet
	default:
		log.Fatalf("nsmd: unknown NSM type %q", *nsmType)
	}

	ln, binding, err := hrpc.Serve(net, server, suite, *host, *addr)
	if err != nil {
		log.Fatalf("nsmd: %v", err)
	}
	defer ln.Close()
	log.Printf("nsmd: serving %s (%s for %s) at %s", *name, *nsmType, *ns, binding)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	log.Println("nsmd: shutting down")
}
