// Binding: the paper's Section 3 walk-through — an HRPC client Imports
// "DesiredService" by HNS name and the whole FindNSM → BindingNSM →
// portmapper chain runs underneath, for both the BIND/Sun world and the
// Clearinghouse/Courier world. Also demonstrates the colocation
// arrangements and cache states of Table 3.1.
//
//	go run ./examples/binding
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hns/internal/bind"
	"hns/internal/colocate"
	"hns/internal/world"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
	if err != nil {
		return err
	}
	defer w.Close()

	fmt.Println("HRPC binding through the HNS — the paper's Import walk-through")
	fmt.Println()

	// The paper's example call:
	//   Import(ServiceName: "DesiredService",
	//          HostName:    "BIND!fiji.cs.washington.edu",
	//          ResultBinding: DesiredBinding)
	im, err := colocate.New(w, colocate.ClientHNSNSMs, bind.CacheMarshalled)
	if err != nil {
		return err
	}
	defer im.Close()

	fmt.Printf("Import(ServiceName: %q, HostName: %q)\n",
		world.DesiredService, colocate.BindHostName())
	cost, err := colocate.MeasureImport(ctx, im, world.DesiredService,
		world.DesiredProgram, world.DesiredVersion, colocate.BindHostName())
	if err != nil {
		return err
	}
	b, err := im.Import(ctx, world.DesiredService,
		world.DesiredProgram, world.DesiredVersion, colocate.BindHostName())
	if err != nil {
		return err
	}
	fmt.Printf("  -> %s   (cold: %.0f simulated ms)\n", b, ms(cost))

	// The binding is system-independent: just call through it.
	ret, err := w.RPC.Call(ctx, b, world.EchoProc, world.EchoArgs("ping"))
	if err != nil {
		return err
	}
	echo, _ := ret.Items[0].AsString()
	fmt.Printf("  calling DesiredService through the binding -> %q\n\n", echo)

	// Same client code, a Courier-world service: only the tag changes.
	fmt.Printf("Import(ServiceName: %q, HostName: %q)\n",
		"fileserver", "ch!"+world.CourierService)
	b2, err := im.Import(ctx, "fileserver",
		world.CourierProgram, world.CourierVersion, "ch!"+world.CourierService)
	if err != nil {
		return err
	}
	fmt.Printf("  -> %s\n", b2)
	fmt.Println("  (different binding protocol, data representation, transport — same client code)")
	fmt.Println()

	// Table 3.1 in miniature: the five colocation arrangements.
	fmt.Println("Import cost by colocation arrangement and cache state (simulated ms):")
	fmt.Printf("  %-26s %10s %10s %10s\n", "arrangement", "miss", "hns-hit", "both-hit")
	table, err := colocate.RunTable31(ctx, w, bind.CacheMarshalled)
	if err != nil {
		return err
	}
	for _, arr := range colocate.Arrangements() {
		c := table[arr]
		fmt.Printf("  %-26s %10.0f %10.0f %10.0f\n", arr, ms(c.Miss), ms(c.HNSHit), ms(c.BothHit))
	}
	fmt.Println()
	fmt.Println("Lesson (paper §3): each cache hit eliminates many remote calls; colocation")
	fmt.Println("eliminates at most two — caching dominates.")
	return nil
}
