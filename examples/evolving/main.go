// Evolving: the property the paper leads with — integrating a brand-new
// system type into a running federation without modifying existing
// applications, and watching native updates flow through the global name
// space with no reregistration.
//
// Two demonstrations:
//
//  1. Direct access: an "existing application" creates a name using its
//     native BIND interface (knowing nothing of the HNS); a global client
//     resolves it through the HNS immediately.
//
//  2. A new system type (a Tektronix workstation running Uniflex, one of
//     the HCS machines) joins: its name service is a plain BIND zone, and
//     integration is just building/registering NSMs — no client changes.
//
//     go run ./examples/evolving
package main

import (
	"context"
	"fmt"
	"log"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	w, err := world.New(world.Config{})
	if err != nil {
		return err
	}
	defer w.Close()

	fmt.Println("== 1. Direct access: native updates are globally visible ==")
	fmt.Println()

	// An existing application on fiji registers a new host the way it
	// always has: a native BIND dynamic update. It has never heard of the
	// HNS.
	nativeRPC := hrpc.NewClient(w.Net)
	defer nativeRPC.Close()
	_, fijiHRPC, err := w.BindServer.ServeHRPC(w.Net, "fiji:bind-hrpc-app")
	if err != nil {
		return err
	}
	native := bind.NewHRPCClient(nativeRPC, fijiHRPC)
	if _, err := native.Update(ctx, world.BindZone, bind.UpdateAdd,
		bind.A("newhost.cs.washington.edu", "newhost", 600)); err != nil {
		return err
	}
	fmt.Println("existing app: added A record for newhost.cs.washington.edu via native BIND update")

	// A global client resolves it through the HNS — no reregistration
	// step ever ran.
	q := names.Must(world.CtxHostB, "newhost.cs.washington.edu")
	b, err := w.HNS.FindNSM(ctx, q, qclass.HostAddress)
	if err != nil {
		return err
	}
	addr, err := nsm.CallResolveHost(ctx, w.RPC, b, q)
	if err != nil {
		return err
	}
	fmt.Printf("global client: %s -> %s  (visible immediately, zero reregistration)\n\n", q, addr)

	fmt.Println("== 2. A new system type joins the federation ==")
	fmt.Println()

	// The Tektronix/Uniflex machine arrives with its own name service (a
	// BIND zone of its own, standing in for whatever it ships with).
	uniflex := bind.NewServer("tek", w.Model)
	zone, err := bind.NewZone("tek.lab", true)
	if err != nil {
		return err
	}
	if err := uniflex.AddZone(zone); err != nil {
		return err
	}
	if err := uniflex.LoadRecords([]bind.RR{
		bind.A("tek4404.tek.lab", "tek", 600),
		bind.A("plotter.tek.lab", "tekplot", 600),
	}); err != nil {
		return err
	}
	if _, err := uniflex.ServeStd(w.Net, "udp", "tek:53"); err != nil {
		return err
	}
	fmt.Println("uniflex world: name server up with 2 hosts; existing tek apps unchanged")

	// Integration effort = one NSM + three registrations. "An amount of
	// integration effort appropriate to the benefits received can be
	// chosen individually for each subsystem type": here only the
	// HostAddress query class is worth supporting.
	std := bind.NewStdClient(w.Net, "udp", "tek:53")
	tekHost := nsm.NewBindHostAddr("hostaddr-tek-1", "uniflex-tek", std, w.Model, w.NSMOptions())
	if _, _, err := hrpc.Serve(w.Net, tekHost.Server(), hrpc.SuiteRaw, world.HostNSM, "june:nsm-hostaddr-tek"); err != nil {
		return err
	}
	w.HNS.LinkHostResolver("uniflex-tek", tekHost)

	if err := w.HNS.RegisterNameService(ctx, "uniflex-tek", "uniflex"); err != nil {
		return err
	}
	if err := w.HNS.RegisterContext(ctx, "hostaddr-tek", "uniflex-tek"); err != nil {
		return err
	}
	if err := w.HNS.RegisterNSM(ctx, core.NSMInfo{
		Name: "hostaddr-tek-1", NameService: "uniflex-tek", QueryClass: qclass.HostAddress,
		Host: world.HostNSM, HostContext: world.CtxHostB,
		Port: "nsm-hostaddr-tek", Suite: hrpc.SuiteRaw,
	}); err != nil {
		return err
	}
	fmt.Println("integration:   1 NSM built + registered (name service, context, NSM records)")

	// Global clients can resolve tek names now — with the very same call
	// they already used.
	q2 := names.Must("hostaddr-tek", "plotter.tek.lab")
	b2, err := w.HNS.FindNSM(ctx, q2, qclass.HostAddress)
	if err != nil {
		return err
	}
	addr2, err := nsm.CallResolveHost(ctx, w.RPC, b2, q2)
	if err != nil {
		return err
	}
	fmt.Printf("global client: %s -> %s  (same FindNSM call, new world)\n\n", q2, addr2)

	inv, err := w.HNS.ListRegistrations(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("federation now spans %d name services: %v\n", len(inv.NameServices), inv.NameServices)
	fmt.Println("no existing application or client was modified or relinked.")
	return nil
}
