// Filing: the heterogeneous file system of the paper's conclusions — a
// filing client that names file servers through the HNS and moves files
// between a UNIX file server (named in BIND, bound via the portmapper,
// spoken to over Sun RPC) and a Xerox file server (named in the
// Clearinghouse, bound via its stored Courier binding) with the same
// three-line client code.
//
//	go run ./examples/filing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hns/internal/clearinghouse"
	"hns/internal/filing"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	w, err := world.New(world.Config{})
	if err != nil {
		return err
	}
	defer w.Close()

	// A UNIX file server on fiji, registered like any Sun RPC service.
	unix := filing.NewServer("fiji", w.Model)
	_, bU, err := hrpc.Serve(w.Net, unix.HRPCServer(), hrpc.SuiteSunRPC, "fiji", "fiji:filing")
	if err != nil {
		return err
	}
	w.Portmappers["fiji"].Set(filing.Program, filing.Version, "udp", bU.Addr)

	// A Xerox file server, its binding stored as a Clearinghouse property.
	xerox := filing.NewServer("xerox-d0", w.Model)
	_, bX, err := hrpc.Serve(w.Net, xerox.HRPCServer(), hrpc.SuiteCourier, "xerox-d0", "xerox:filing")
	if err != nil {
		return err
	}
	const xeroxFS = "bigfiles:cs:uw"
	if err := w.CHClient().AddItem(ctx, clearinghouse.MustName(xeroxFS),
		clearinghouse.PropBinding, []byte(qclass.FormatBinding(bX))); err != nil {
		return err
	}

	client := filing.NewClient(w.HNS, w.RPC)
	unixName := names.Must(world.CtxBind, world.HostBind)
	xeroxName := names.Must(world.CtxCH, xeroxFS)

	fmt.Println("heterogeneous filing through the HNS")
	fmt.Println()

	// Author a file on the UNIX server.
	paper := []byte("A Name Service for Evolving, Heterogeneous Systems\n" +
		"Schwartz, Zahorjan, Notkin — SOSP 1987\n")
	if err := client.Store(ctx, unixName, "/papers/hns.txt", paper); err != nil {
		return err
	}
	fmt.Printf("stored /papers/hns.txt on %s (%d bytes)\n", unixName, len(paper))

	// Archive it to the Xerox server — one call, two worlds.
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		return client.Copy(ctx, unixName, "/papers/hns.txt", xeroxName, "/archive/hns.txt")
	})
	if err != nil {
		return err
	}
	fmt.Printf("copied to %s in %.0f simulated ms\n", xeroxName, float64(cost)/float64(time.Millisecond))
	fmt.Println("  (under the hood: FindNSM x2, portmapper binding on one side,")
	fmt.Println("   Clearinghouse-stored Courier binding on the other)")
	fmt.Println()

	// Read it back from the Xerox side.
	got, err := client.Fetch(ctx, xeroxName, "/archive/hns.txt")
	if err != nil {
		return err
	}
	fmt.Printf("fetched from the Xerox world:\n%s\n", got)

	listing, err := client.List(ctx, xeroxName, "/archive/")
	if err != nil {
		return err
	}
	fmt.Printf("archive listing: %v\n", listing)
	fmt.Println()
	fmt.Println("The filing client holds no per-file location database (contrast Jasmine,")
	fmt.Println("paper §4): file servers are HNS names; files live where their servers put them.")
	return nil
}
