// Looseintegration: the HCS project's goal realised — "a set of core
// services (filing, mail, and remote computation) are provided
// network-wide, but no attempt is made to mask the heterogeneous aspects
// of the various systems". One program drives all three services across a
// UNIX machine and a Xerox D-machine, every binding flowing through the
// HNS.
//
//	go run ./examples/looseintegration
package main

import (
	"context"
	"fmt"
	"log"

	"hns/internal/clearinghouse"
	"hns/internal/filing"
	"hns/internal/hcs"
	"hns/internal/hrpc"
	"hns/internal/mail"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/rexec"
	"hns/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	w, err := world.New(world.Config{})
	if err != nil {
		return err
	}
	defer w.Close()

	// ---- Stand up the three services on both machines.
	// UNIX side (fiji): Sun RPC services registered with the portmapper.
	serveSun := func(s *hrpc.Server, port string, prog, vers uint32) error {
		_, b, err := hrpc.Serve(w.Net, s, hrpc.SuiteSunRPC, "fiji", "fiji:"+port)
		if err != nil {
			return err
		}
		w.Portmappers["fiji"].Set(prog, vers, "udp", b.Addr)
		return nil
	}
	files := filing.NewServer("fiji", w.Model)
	boxes := mail.NewServer("june", w.Model)
	exec := rexec.NewServer("fiji", w.Model)
	if err := serveSun(files.HRPCServer(), "filing", filing.Program, filing.Version); err != nil {
		return err
	}
	if err := serveSun(exec.HRPCServer(), "rexec", rexec.Program, rexec.Version); err != nil {
		return err
	}
	_, bBox, err := hrpc.Serve(w.Net, boxes.HRPCServer(), hrpc.SuiteSunRPC, "june", "june:mailbox")
	if err != nil {
		return err
	}
	w.Portmappers["june"].Set(mail.Program, mail.Version, "udp", bBox.Addr)

	// Xerox side: Courier services, bindings stored in the Clearinghouse.
	serveCourier := func(s *hrpc.Server, port, object string) error {
		_, b, err := hrpc.Serve(w.Net, s, hrpc.SuiteCourier, "xerox-d0", "xerox:"+port)
		if err != nil {
			return err
		}
		return w.CHClient().AddItem(ctx, clearinghouse.MustName(object),
			clearinghouse.PropBinding, []byte(qclass.FormatBinding(b)))
	}
	xfiles := filing.NewServer("xerox-d0", w.Model)
	xexec := rexec.NewServer("xerox-d0", w.Model)
	if err := serveCourier(xfiles.HRPCServer(), "filing", "bigfiles:cs:uw"); err != nil {
		return err
	}
	if err := serveCourier(xexec.HRPCServer(), "rexec", "compute:cs:uw"); err != nil {
		return err
	}

	// ---- The clients: one facade, three services.
	dir := hcs.New(w.HNS, w.RPC)
	fc := filing.NewClient(w.HNS, w.RPC)
	agent := mail.NewAgent(dir, w.RPC, map[string]string{"smtp": world.CtxBind})
	rc := rexec.NewClient(dir, w.RPC)

	unixHost := names.Must(world.CtxBind, world.HostBind)
	xeroxFS := names.Must(world.CtxCH, "bigfiles:cs:uw")
	xeroxExec := names.Must(world.CtxCH, "compute:cs:uw")

	fmt.Println("HCS loose integration: filing + mail + remote computation, one name service")
	fmt.Println()

	// 1. Remote computation across the fleet.
	results := rc.RunEverywhere(ctx, []names.Name{unixHost, xeroxExec}, "hostname", nil, "")
	fmt.Println("rexec: hostname on every machine —")
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
		fmt.Printf("  %-28s -> %s", r.Host, r.Stdout)
	}
	fmt.Println()

	// 2. Filing: author on UNIX, archive on the D-machine.
	if err := fc.Store(ctx, unixHost, "/tmp/report", []byte("all machines answered")); err != nil {
		return err
	}
	if err := fc.Copy(ctx, unixHost, "/tmp/report", xeroxFS, "/archive/report"); err != nil {
		return err
	}
	data, err := fc.Fetch(ctx, xeroxFS, "/archive/report")
	if err != nil {
		return err
	}
	fmt.Printf("filing: /tmp/report authored on fiji, archived on xerox -> %q\n\n", data)

	// 3. Mail: tell the team.
	if _, err := agent.Send(ctx, mail.Message{
		From:    "operator",
		To:      names.Must(world.CtxMailB, world.MailUserBind),
		Subject: "fleet status",
		Body:    string(data),
	}); err != nil {
		return err
	}
	inbox, err := agent.ReadMailbox(ctx, names.Must(world.CtxMailB, world.MailUserBind))
	if err != nil {
		return err
	}
	fmt.Printf("mail: %s has %d message(s); latest: %q\n\n",
		world.MailUserBind, len(inbox), inbox[len(inbox)-1].Subject)

	st := w.HNS.Stats()
	fmt.Printf("every binding flowed through the HNS: %d FindNSM calls, %.0f%% cache hits\n",
		st.FindNSMCalls, st.Cache.HitRate*100)
	return nil
}
