// Mailrouting: the mail application the HCS project layered on the HNS —
// and the paper's contrast with sendmail. A mail agent must route messages
// to users whose mailbox data lives in different name services with
// different semantics. With the HNS, the agent resolves every user through
// one query class; the per-service parsing/semantics live in the MailRoute
// NSMs, not in the mailer (sendmail's rewriting rules centralised exactly
// this knowledge in every host's mailer, which is what the paper
// criticises).
//
//	go run ./examples/mailrouting
package main

import (
	"context"
	"fmt"
	"log"

	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/world"
)

// message is a toy mail message.
type message struct {
	to   names.Name
	body string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	w, err := world.New(world.Config{})
	if err != nil {
		return err
	}
	defer w.Close()

	fmt.Println("mail routing across heterogeneous user registries")
	fmt.Println()

	// The outbound queue holds mail for a UNIX user (registered in BIND)
	// and a Xerox user (registered in the Clearinghouse).
	queue := []message{
		{to: names.Must(world.CtxMailB, world.MailUserBind), body: "SOSP deadline!"},
		{to: names.Must(world.CtxMailCH, world.MailUserCH), body: "D-machine reboot at 5"},
		{to: names.Must(world.CtxMailB, world.MailUserBind), body: "re: SOSP deadline"},
	}

	// The mailer's entire routing logic — identical for every world:
	route := func(m message) (string, string, error) {
		nsmB, err := w.HNS.FindNSM(ctx, m.to, qclass.MailRoute)
		if err != nil {
			return "", "", err
		}
		return nsm.CallMailRoute(ctx, w.RPC, nsmB, m.to)
	}

	delivered := map[string]int{}
	for _, m := range queue {
		host, discipline, err := route(m)
		if err != nil {
			return fmt.Errorf("routing %s: %w", m.to, err)
		}
		delivered[host]++
		fmt.Printf("  %-28s -> mailbox host %-26s via %s\n", m.to.Individual, host, discipline)
	}
	fmt.Println()

	// Unroutable users fail cleanly, they don't bounce around rewriting
	// rules.
	if _, _, err := route(message{to: names.Must(world.CtxMailB, "nobody.cs.washington.edu")}); err != nil {
		fmt.Printf("  nobody.cs.washington.edu     -> bounced: %v\n", err)
	}
	fmt.Println()

	st := w.HNS.Stats()
	fmt.Printf("deliveries per host: %v\n", delivered)
	fmt.Printf("HNS meta-cache hit rate after the run: %.0f%% — repeat recipients ride the cache\n",
		st.Cache.HitRate*100)
	fmt.Println()
	fmt.Println("The mailer contains no name-service-specific code: adding a new user")
	fmt.Println("registry means writing one MailRoute NSM, not touching any mail agent.")
	return nil
}
