// Quickstart: stand up a minimal heterogeneous federation by hand — one
// BIND world, one Clearinghouse world, a meta-BIND, an HNS — then resolve
// names from both worlds through the single HNS interface.
//
// This example builds everything with the library API directly (no test
// scaffolding) so it doubles as a tour of the public surface:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hns/internal/bind"
	"hns/internal/clearinghouse"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	model := simtime.Default()
	net := transport.NewNetwork(model)
	rpc := hrpc.NewClient(net)
	defer rpc.Close()

	// ---- 1. The modified BIND that stores HNS meta-information.
	metaSrv := bind.NewServer("meta", model)
	metaZone, err := bind.NewZone("hns", true) // dynamic updates enabled
	if err != nil {
		return err
	}
	if err := metaSrv.AddZone(metaZone); err != nil {
		return err
	}
	_, metaBinding, err := metaSrv.ServeHRPC(net, "meta:bind-hrpc")
	if err != nil {
		return err
	}
	metaClientRPC := hrpc.NewClient(net)
	metaClientRPC.FreshConn = true // Raw-suite discipline: one connection per call
	meta := bind.NewHRPCClient(metaClientRPC, metaBinding)

	// ---- 2. A BIND world: a zone with a couple of hosts.
	bindSrv := bind.NewServer("ns1", model)
	zone, err := bind.NewZone("lab.edu", true)
	if err != nil {
		return err
	}
	if err := bindSrv.AddZone(zone); err != nil {
		return err
	}
	if err := bindSrv.LoadRecords([]bind.RR{
		bind.A("alpha.lab.edu", "alpha", 600),
		bind.A("beta.lab.edu", "beta", 600),
	}); err != nil {
		return err
	}
	if _, err := bindSrv.ServeStd(net, "udp", "ns1:53"); err != nil {
		return err
	}

	// ---- 3. A Clearinghouse world with one registered host.
	auth := clearinghouse.NewAuthenticator(model, true)
	ch := clearinghouse.NewServer("chsrv", model, clearinghouse.NewStore(model), auth)
	_, chBinding, err := ch.Serve(net, "chsrv:ch")
	if err != nil {
		return err
	}
	chClient := clearinghouse.NewClient(rpc, chBinding,
		clearinghouse.NewCredentials("demo:lab:org", "pw"))
	if err := chClient.AddItem(ctx, clearinghouse.MustName("gamma:lab:org"),
		clearinghouse.PropAddress, []byte("gamma")); err != nil {
		return err
	}

	// ---- 4. HostAddress NSMs for both worlds, linked into a local HNS.
	std := bind.NewStdClient(net, "udp", "ns1:53")
	bindHost := nsm.NewBindHostAddr("hostaddr-lab", "lab-bind", std, model, nsm.Options{})
	chHost := nsm.NewCHHostAddr("hostaddr-laborg", "lab-ch", chClient, model, nsm.Options{})

	h := core.New(meta, model, core.Config{MetaZone: "hns"})
	h.LinkHostResolver("lab-bind", bindHost)
	h.LinkHostResolver("lab-ch", chHost)

	// ---- 5. Register the federation's meta-information.
	for _, reg := range []struct{ name, typ string }{
		{"lab-bind", "bind"}, {"lab-ch", "clearinghouse"},
	} {
		if err := h.RegisterNameService(ctx, reg.name, reg.typ); err != nil {
			return err
		}
	}
	for ctxName, ns := range map[string]string{
		"hostaddr-bind-ctx": "lab-bind",
		"hostaddr-ch-ctx":   "lab-ch",
	} {
		if err := h.RegisterContext(ctx, ctxName, ns); err != nil {
			return err
		}
	}
	// Serve both HostAddress NSMs remotely too, and register them — the
	// same instances that are linked in can also answer network clients.
	if _, _, err := hrpc.Serve(net, bindHost.Server(), hrpc.SuiteSunRPC, "alpha", "alpha:nsm-host"); err != nil {
		return err
	}
	if _, _, err := hrpc.Serve(net, chHost.Server(), hrpc.SuiteCourier, "alpha", "alpha:nsm-host-ch"); err != nil {
		return err
	}
	for _, info := range []core.NSMInfo{
		{Name: "hostaddr-lab", NameService: "lab-bind", QueryClass: qclass.HostAddress,
			Host: "alpha.lab.edu", HostContext: "hostaddr-bind-ctx",
			Port: "nsm-host", Suite: hrpc.SuiteSunRPC},
		{Name: "hostaddr-laborg", NameService: "lab-ch", QueryClass: qclass.HostAddress,
			Host: "alpha.lab.edu", HostContext: "hostaddr-bind-ctx",
			Port: "nsm-host-ch", Suite: hrpc.SuiteCourier},
	} {
		if err := h.RegisterNSM(ctx, info); err != nil {
			return err
		}
	}

	// ---- 6. Resolve names from both worlds through one interface.
	fmt.Println("quickstart: one HNS, two heterogeneous name services")
	fmt.Println()
	for _, q := range []names.Name{
		names.Must("hostaddr-bind-ctx", "beta.lab.edu"),
		names.Must("hostaddr-ch-ctx", "gamma:lab:org"),
	} {
		var addr string
		cost, err := simtime.Measure(ctx, func(mctx context.Context) error {
			b, err := h.FindNSM(mctx, q, qclass.HostAddress)
			if err != nil {
				return err
			}
			addr, err = nsm.CallResolveHost(mctx, rpc, b, q)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-35s -> %-8s (%.1f simulated ms, cold)\n",
			q, addr, float64(cost)/float64(time.Millisecond))
	}

	// Warm queries ride the caches.
	q := names.Must("hostaddr-bind-ctx", "beta.lab.edu")
	cost, err := simtime.Measure(ctx, func(mctx context.Context) error {
		b, err := h.FindNSM(mctx, q, qclass.HostAddress)
		if err != nil {
			return err
		}
		_, err = nsm.CallResolveHost(mctx, rpc, b, q)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %-35s -> %-8s (%.1f simulated ms, warm)\n",
		q, "beta", float64(cost)/float64(time.Millisecond))

	st := h.Stats()
	fmt.Printf("\nHNS meta-cache: %d hits, %d misses (hit rate %.0f%%)\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.HitRate*100)
	return nil
}
