module hns

go 1.22
