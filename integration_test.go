// Real-socket integration: the federation — meta BIND, application BIND,
// Clearinghouse, NSMs, HNS service — deployed over actual TCP/UDP sockets
// on localhost (the same wiring the cmd/ daemons use), exercised end to
// end.
package hns_test

import (
	"context"
	"strings"
	"testing"

	"hns/internal/bind"
	"hns/internal/clearinghouse"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// portOf extracts the port part of a host:port address.
func portOf(t *testing.T, addr string) string {
	t.Helper()
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		t.Fatalf("address %q has no port", addr)
	}
	return addr[i+1:]
}

// netFederation is an all-real-sockets deployment.
type netFederation struct {
	net  *transport.Network
	rpc  *hrpc.Client
	hns  *core.HNS
	hnsB hrpc.Binding
}

func newNetFederation(t *testing.T) *netFederation {
	t.Helper()
	model := simtime.Default()
	net := transport.NewNetwork(model)
	f := &netFederation{net: net, rpc: hrpc.NewClient(net)}
	t.Cleanup(func() { f.rpc.Close() })
	ctx := context.Background()

	serve := func(s *hrpc.Server, suite hrpc.Suite) hrpc.Binding {
		t.Helper()
		ln, b, err := hrpc.Serve(net, s, suite, "localhost", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		return b
	}

	// Meta BIND (modified: updatable "hns" zone) over real TCP.
	metaSrv := bind.NewServer("tahoma", model)
	metaZone, err := bind.NewZone("hns", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := metaSrv.AddZone(metaZone); err != nil {
		t.Fatal(err)
	}
	metaB := serve(metaSrv.HRPCServer(), hrpc.SuiteRawNet)
	metaRPC := hrpc.NewClient(net)
	metaRPC.FreshConn = true
	meta := bind.NewHRPCClient(metaRPC, metaB)

	// Application BIND over real UDP (standard interface).
	appSrv := bind.NewServer("fiji", model)
	appZone, err := bind.NewZone("cs.washington.edu", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := appSrv.AddZone(appZone); err != nil {
		t.Fatal(err)
	}
	if err := appSrv.LoadRecords([]bind.RR{
		bind.A("fiji.cs.washington.edu", "127.0.0.1", 600),
		bind.A("june.cs.washington.edu", "127.0.0.1", 600),
	}); err != nil {
		t.Fatal(err)
	}
	stdLn, err := appSrv.ServeStd(net, "udp-net", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stdLn.Close() })

	// Clearinghouse over real TCP (Courier).
	auth := clearinghouse.NewAuthenticator(model, false)
	auth.AddPrincipal("itest:cs:uw", "pw")
	chSrv := clearinghouse.NewServer("xerox", model, clearinghouse.NewStore(model), auth)
	chB := serve(chSrv.HRPCServer(), hrpc.SuiteCourierNet)
	chClient := clearinghouse.NewClient(f.rpc, chB, clearinghouse.NewCredentials("itest:cs:uw", "pw"))

	// HostAddress NSMs served over each world's native real-socket suite.
	std := bind.NewStdClient(net, "udp-net", stdLn.Addr())
	hostNSM := nsm.NewBindHostAddr("hostaddr-bind-1", "bind-cs", std, model, nsm.Options{})
	hostB := serve(hostNSM.Server(), hrpc.SuiteSunRPCNet)
	chHostNSM := nsm.NewCHHostAddr("hostaddr-ch-1", "ch-uw", chClient, model, nsm.Options{})
	chHostB := serve(chHostNSM.Server(), hrpc.SuiteCourierNet)

	// The HNS, served over real TCP.
	h := core.New(meta, model, core.Config{MetaZone: "hns", RPC: f.rpc})
	h.LinkHostResolver("bind-cs", hostNSM)
	h.LinkHostResolver("ch-uw", chHostNSM)
	f.hns = h
	f.hnsB = serve(core.NewHNSServer(h, "hns@itest"), hrpc.SuiteRawNet)

	// Registrations. On real sockets the NSM record's host resolves to
	// "127.0.0.1" and the port field carries the kernel-assigned port.
	for _, step := range []func() error{
		func() error { return h.RegisterNameService(ctx, "bind-cs", "bind") },
		func() error { return h.RegisterNameService(ctx, "ch-uw", "clearinghouse") },
		func() error { return h.RegisterContext(ctx, "hostaddr-bind", "bind-cs") },
		func() error { return h.RegisterContext(ctx, "hostaddr-ch", "ch-uw") },
		func() error {
			return h.RegisterNSM(ctx, core.NSMInfo{
				Name: "hostaddr-bind-1", NameService: "bind-cs", QueryClass: qclass.HostAddress,
				Host: "june.cs.washington.edu", HostContext: "hostaddr-bind",
				Port: portOf(t, hostB.Addr), Suite: hrpc.SuiteSunRPCNet,
			})
		},
		func() error {
			return h.RegisterNSM(ctx, core.NSMInfo{
				Name: "hostaddr-ch-1", NameService: "ch-uw", QueryClass: qclass.HostAddress,
				Host: "june.cs.washington.edu", HostContext: "hostaddr-bind",
				Port: portOf(t, chHostB.Addr), Suite: hrpc.SuiteCourierNet,
			})
		},
		func() error {
			return chClient.AddItem(ctx, clearinghouse.MustName("xerox-d0:cs:uw"),
				clearinghouse.PropAddress, []byte("127.0.0.1"))
		},
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestRealSocketsFederation(t *testing.T) {
	f := newNetFederation(t)
	ctx := context.Background()

	// Resolve a BIND-world host through the remote HNS over real TCP,
	// then call the designated NSM over real UDP.
	remote := core.NewRemoteHNS(f.rpc, f.hnsB)
	name := names.Must("hostaddr-bind", "fiji.cs.washington.edu")
	b, err := remote.FindNSM(ctx, name, qclass.HostAddress)
	if err != nil {
		t.Fatal(err)
	}
	if b.Transport != "udp-net" {
		t.Fatalf("NSM binding transport = %q", b.Transport)
	}
	addr, err := nsm.CallResolveHost(ctx, f.rpc, b, name)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1" {
		t.Fatalf("resolved %q", addr)
	}

	// Same through the Clearinghouse world (Courier over real TCP).
	chName := names.Must("hostaddr-ch", "xerox-d0:cs:uw")
	b2, err := remote.FindNSM(ctx, chName, qclass.HostAddress)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Transport != "tcp-net" || b2.Control != "courier" {
		t.Fatalf("CH NSM binding = %v", b2)
	}
	addr2, err := nsm.CallResolveHost(ctx, f.rpc, b2, chName)
	if err != nil {
		t.Fatal(err)
	}
	if addr2 != "127.0.0.1" {
		t.Fatalf("resolved %q", addr2)
	}

	// Warm FindNSM on the server side: verify its cache engaged.
	if _, err := remote.FindNSM(ctx, name, qclass.HostAddress); err != nil {
		t.Fatal(err)
	}
	if st := f.hns.Stats(); st.Cache.Hits == 0 {
		t.Fatalf("server-side HNS cache unused: %+v", st.Cache)
	}

	// An unknown context fails cleanly across the wire.
	if _, err := remote.FindNSM(ctx, names.Must("ghost", "x"), qclass.HostAddress); err == nil {
		t.Fatal("ghost context resolved over real sockets")
	}
}
