// Package admission implements the server-side front door: per-client
// token-bucket rate limiting plus a global in-flight cap, with
// priority-aware shedding. A name server at fleet scale cannot afford to
// queue unboundedly — a request admitted after its caller has given up
// is pure waste — so the controller refuses excess work up front with a
// typed Overloaded error that retry machinery treats as backpressure
// (back off, don't trip the breaker: the server is alive, just busy).
//
// The controller is deliberately small: buckets refill continuously on a
// Clock (real time in daemons, a FakeClock in tests), the in-flight gauge
// is a single atomic, and everything is exported as admission_* series so
// `hnsctl admit` can watch a live daemon shed.
package admission

import (
	"fmt"
	"sync"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

// Priority orders work under overload: when the in-flight load passes
// the low-priority threshold, Low work is shed first while High work
// keeps flowing up to the full cap. Batch and background traffic should
// run Low; interactive single-name resolution High.
type Priority int

// Priorities.
const (
	Low  Priority = 0
	High Priority = 1
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	if p == High {
		return "high"
	}
	return "low"
}

// Overloaded is the typed backpressure error: the server is healthy but
// refused the request to protect itself. RetryAfter is the server's hint
// for how long the client should back off before retrying this endpoint.
type Overloaded struct {
	Server     string
	Reason     string // "rate" (per-client bucket empty) or "load" (in-flight cap)
	RetryAfter time.Duration
}

// Error implements error.
func (e *Overloaded) Error() string {
	return fmt.Sprintf("admission: %s overloaded (%s), retry after %s",
		e.Server, e.Reason, e.RetryAfter)
}

// Config parameterizes a Controller. The zero value of any field picks
// its default.
type Config struct {
	// Rate is each client's sustained admission rate in requests per
	// second. Non-positive disables per-client rate limiting.
	Rate float64

	// Burst is each client's bucket depth — how many requests a client
	// may issue back to back before the rate applies. Non-positive means
	// max(1, Rate).
	Burst float64

	// MaxInflight caps concurrently admitted requests across all
	// clients. Non-positive disables the load cap.
	MaxInflight int

	// LowWatermark is the in-flight level (fraction of MaxInflight, in
	// (0,1]) past which Low-priority work is shed while High-priority
	// work continues to the full cap. Non-positive means 1 (no
	// priority distinction).
	LowWatermark float64

	// MaxClients bounds the per-client bucket table; when full, new
	// clients share one overflow bucket rather than growing the map
	// without bound. Non-positive means DefaultMaxClients.
	MaxClients int

	// RetryAfter is the backoff hint carried in Overloaded errors.
	// Non-positive means DefaultRetryAfter.
	RetryAfter time.Duration

	// Clock supplies the time base for bucket refill. Nil means real
	// time.
	Clock simtime.Clock

	// Metrics receives the admission_* series. Nil means the
	// process-wide metrics.Default(); metrics.Discard disables them.
	Metrics *metrics.Registry

	// Server labels the exported series.
	Server string
}

// Defaults for Config's zero fields.
const (
	DefaultMaxClients = 4096
	DefaultRetryAfter = 50 * time.Millisecond
)

// Controller applies a Config to a request stream. Safe for concurrent
// use.
type Controller struct {
	cfg      Config
	lowLimit int // in-flight level past which Low work is shed

	mu       sync.Mutex
	buckets  map[string]*bucket
	overflow bucket // shared by clients past MaxClients
	inflight int

	admitted  *metrics.Counter // admission_admitted_total
	shedRate  *metrics.Counter // admission_shed_total{reason=rate}
	shedLoad  *metrics.Counter // admission_shed_total{reason=load}
	inflightG *metrics.Gauge   // admission_inflight
	clientsG  *metrics.Gauge   // admission_clients
}

// bucket is one client's token bucket. Tokens refill continuously at
// cfg.Rate up to cfg.Burst.
type bucket struct {
	tokens float64
	last   time.Time
}

// New creates a controller, resolving Config defaults.
func New(cfg Config) *Controller {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.RealClock{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default()
	}
	if cfg.Server == "" {
		cfg.Server = "default"
	}
	c := &Controller{cfg: cfg, buckets: make(map[string]*bucket)}
	c.lowLimit = cfg.MaxInflight
	if cfg.LowWatermark > 0 && cfg.LowWatermark <= 1 && cfg.MaxInflight > 0 {
		c.lowLimit = int(float64(cfg.MaxInflight) * cfg.LowWatermark)
		if c.lowLimit < 1 {
			c.lowLimit = 1
		}
	}
	reg := cfg.Metrics
	c.admitted = reg.Counter(metrics.Labels("admission_admitted_total",
		"server", cfg.Server))
	c.shedRate = reg.Counter(metrics.Labels("admission_shed_total",
		"server", cfg.Server, "reason", "rate"))
	c.shedLoad = reg.Counter(metrics.Labels("admission_shed_total",
		"server", cfg.Server, "reason", "load"))
	c.inflightG = reg.Gauge(metrics.Labels("admission_inflight",
		"server", cfg.Server))
	c.clientsG = reg.Gauge(metrics.Labels("admission_clients",
		"server", cfg.Server))
	return c
}

// Admit asks to admit one request from client at the given priority. On
// success it returns nil and the caller MUST call Done once the request
// finishes; on refusal it returns an *Overloaded describing why.
func (c *Controller) Admit(client string, pri Priority) error {
	c.mu.Lock()
	// Load cap first: a full server sheds regardless of whose bucket has
	// tokens, and Low work sheds at the watermark so High work retains
	// headroom.
	if c.cfg.MaxInflight > 0 {
		limit := c.cfg.MaxInflight
		if pri == Low {
			limit = c.lowLimit
		}
		if c.inflight >= limit {
			c.mu.Unlock()
			c.shedLoad.Inc()
			return &Overloaded{Server: c.cfg.Server, Reason: "load", RetryAfter: c.cfg.RetryAfter}
		}
	}
	if c.cfg.Rate > 0 && !c.take(client) {
		c.mu.Unlock()
		c.shedRate.Inc()
		return &Overloaded{Server: c.cfg.Server, Reason: "rate", RetryAfter: c.cfg.RetryAfter}
	}
	c.inflight++
	c.inflightG.Set(int64(c.inflight))
	c.mu.Unlock()
	c.admitted.Inc()
	return nil
}

// Done releases one admitted request's in-flight slot.
func (c *Controller) Done() {
	c.mu.Lock()
	if c.inflight > 0 {
		c.inflight--
	}
	c.inflightG.Set(int64(c.inflight))
	c.mu.Unlock()
}

// take consumes one token from client's bucket, refilling first. Called
// with c.mu held.
func (c *Controller) take(client string) bool {
	b := c.buckets[client]
	if b == nil {
		if len(c.buckets) >= c.cfg.MaxClients {
			b = &c.overflow
			if b.last.IsZero() {
				b.tokens = c.cfg.Burst
				b.last = c.cfg.Clock.Now()
			}
		} else {
			b = &bucket{tokens: c.cfg.Burst, last: c.cfg.Clock.Now()}
			c.buckets[client] = b
			c.clientsG.Set(int64(len(c.buckets)))
		}
	}
	now := c.cfg.Clock.Now()
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * c.cfg.Rate
		if b.tokens > c.cfg.Burst {
			b.tokens = c.cfg.Burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Inflight reports the currently admitted request count.
func (c *Controller) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// Clients reports how many distinct clients hold buckets.
func (c *Controller) Clients() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buckets)
}
