package admission

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

func testConfig(cfg Config) Config {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return cfg
}

func TestRateLimitPerClient(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New(testConfig(Config{Rate: 10, Burst: 2, Clock: clk, Server: "t"}))

	// The burst admits two back-to-back requests; the third sheds.
	for i := 0; i < 2; i++ {
		if err := c.Admit("alice", High); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		c.Done()
	}
	err := c.Admit("alice", High)
	var ov *Overloaded
	if !errors.As(err, &ov) || ov.Reason != "rate" {
		t.Fatalf("want rate Overloaded, got %v", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("RetryAfter not set: %v", ov)
	}

	// A different client has its own bucket.
	if err := c.Admit("bob", High); err != nil {
		t.Fatalf("bob should have a fresh bucket: %v", err)
	}
	c.Done()

	// Refill: 100 ms at 10/s restores one token.
	clk.Advance(100 * time.Millisecond)
	if err := c.Admit("alice", High); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	c.Done()
}

func TestBucketCapsAtBurst(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New(testConfig(Config{Rate: 10, Burst: 3, Clock: clk}))
	if err := c.Admit("a", High); err != nil {
		t.Fatal(err)
	}
	c.Done()
	// A long idle period must not accumulate more than Burst tokens.
	clk.Advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if err := c.Admit("a", High); err == nil {
			admitted++
			c.Done()
		}
	}
	if admitted != 3 {
		t.Fatalf("burst cap: admitted %d, want 3", admitted)
	}
}

func TestInflightCapAndPriority(t *testing.T) {
	c := New(testConfig(Config{MaxInflight: 4, LowWatermark: 0.5, Server: "t"}))

	// Fill to the low watermark (2 of 4): Low work now sheds, High flows.
	for i := 0; i < 2; i++ {
		if err := c.Admit("c", Low); err != nil {
			t.Fatalf("low admit %d: %v", i, err)
		}
	}
	var ov *Overloaded
	if err := c.Admit("c", Low); !errors.As(err, &ov) || ov.Reason != "load" {
		t.Fatalf("low past watermark: want load Overloaded, got %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Admit("c", High); err != nil {
			t.Fatalf("high admit %d: %v", i, err)
		}
	}
	if err := c.Admit("c", High); !errors.As(err, &ov) || ov.Reason != "load" {
		t.Fatalf("high past cap: want load Overloaded, got %v", err)
	}
	if got := c.Inflight(); got != 4 {
		t.Fatalf("inflight = %d, want 4", got)
	}
	c.Done()
	if err := c.Admit("c", High); err != nil {
		t.Fatalf("after Done: %v", err)
	}
	for i := 0; i < 4; i++ {
		c.Done()
	}
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}

func TestMaxClientsOverflowBucket(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New(testConfig(Config{Rate: 1, Burst: 1, MaxClients: 2, Clock: clk}))
	if err := c.Admit("a", High); err != nil {
		t.Fatal(err)
	}
	c.Done()
	if err := c.Admit("b", High); err != nil {
		t.Fatal(err)
	}
	c.Done()
	if got := c.Clients(); got != 2 {
		t.Fatalf("clients = %d, want 2", got)
	}
	// Client table full: c and d share the overflow bucket (burst 1), so
	// the second overflow request sheds even though "d" never called.
	if err := c.Admit("c", High); err != nil {
		t.Fatalf("first overflow request: %v", err)
	}
	c.Done()
	var ov *Overloaded
	if err := c.Admit("d", High); !errors.As(err, &ov) {
		t.Fatalf("overflow bucket should be empty: %v", err)
	}
	if got := c.Clients(); got != 2 {
		t.Fatalf("overflow grew the table: clients = %d", got)
	}
}

func TestMetricsSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{MaxInflight: 1, Metrics: reg, Server: "m"})
	if err := c.Admit("a", High); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit("a", High); err == nil {
		t.Fatal("want shed")
	}
	c.Done()
	if got := reg.Counter(metrics.Labels("admission_admitted_total", "server", "m")).Value(); got != 1 {
		t.Fatalf("admitted = %d, want 1", got)
	}
	if got := reg.Counter(metrics.Labels("admission_shed_total", "server", "m", "reason", "load")).Value(); got != 1 {
		t.Fatalf("shed{load} = %d, want 1", got)
	}
	if got := reg.Gauge(metrics.Labels("admission_inflight", "server", "m")).Value(); got != 0 {
		t.Fatalf("inflight gauge = %d, want 0", got)
	}
}

func TestDisabledLimitsAdmitEverything(t *testing.T) {
	c := New(testConfig(Config{})) // no rate, no cap
	for i := 0; i < 100; i++ {
		if err := c.Admit("anyone", Low); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
}

func TestConcurrentAdmitRace(t *testing.T) {
	c := New(testConfig(Config{Rate: 1e6, MaxInflight: 8, Server: "race"}))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := c.Admit("client", High); err == nil {
					c.Done()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight leaked: %d", got)
	}
}

func TestOverloadedError(t *testing.T) {
	e := &Overloaded{Server: "s", Reason: "rate", RetryAfter: time.Second}
	if e.Error() == "" || Low.String() != "low" || High.String() != "high" {
		t.Fatal("stringers")
	}
}
