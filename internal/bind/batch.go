package bind

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
)

// Batched resolution: one tagged frame carries up to MaxBatchNames
// questions and one frame carries their per-name answers, amortizing the
// per-call frame cost that dominates small lookups. Status is per name —
// an NXDOMAIN in slot 3 does not poison slots 0–2.

// MaxBatchNames bounds one batch call. The cap keeps a single frame
// within the transports' datagram budgets and bounds head-of-line
// blocking behind one giant batch.
const MaxBatchNames = 64

// Question is one (name, type) query in a batch.
type Question struct {
	Name string
	Type RRType
}

// BatchResult is the per-name outcome of a batch lookup: the records, or
// the error for that name alone (a *NotFoundError for authoritative
// negatives, like single-name Lookup).
type BatchResult struct {
	RRs []RR
	Err error
}

// procQueryBatch is the batch query procedure: a list of questions in, a
// list of (rcode, records) out, positionally matched. Read-only and
// deterministic given zone state, so — like procQuery — it is eligible
// for the server's marshalled-reply cache.
var procQueryBatch = hrpc.Procedure{
	Name: "BINDQueryBatch", ID: 5,
	Args:      marshal.TStruct(marshal.TList(marshal.TStruct(marshal.TString, marshal.TUint32))),
	Ret:       marshal.TStruct(marshal.TList(marshal.TStruct(marshal.TUint32, marshal.TList(rrType)))),
	Style:     marshal.StyleNone,
	Cacheable: true,
}

// registerBatch installs the batch handler on an HRPC server wrapping s.
func (s *Server) registerBatch(hs *hrpc.Server) {
	batches := s.reg.Counter("bind_batch_queries_total")
	names := s.reg.Counter("bind_batch_names_total")
	hs.Register(procQueryBatch, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		qs := args.Items[0]
		if qs.Len() > MaxBatchNames {
			return marshal.Value{}, fmt.Errorf("bind: batch of %d exceeds limit %d", qs.Len(), MaxBatchNames)
		}
		results := make([]marshal.Value, 0, qs.Len())
		for _, it := range qs.Items {
			name, err := it.Items[0].AsString()
			if err != nil {
				return marshal.Value{}, err
			}
			qt, err := it.Items[1].AsU32()
			if err != nil {
				return marshal.Value{}, err
			}
			// Per-name status: a bad name yields its own rcode slot and
			// the rest of the batch proceeds.
			rcode, rrs := s.Query(ctx, name, RRType(qt))
			results = append(results, marshal.StructV(marshal.U32(uint32(rcode)), rrsToList(rrs)))
		}
		batches.Inc()
		names.Add(int64(qs.Len()))
		return marshal.StructV(marshal.ListV(results...)), nil
	})
}

// decodeBatchResults validates and unpacks a batch reply against the
// questions that produced it. It returns the per-name results plus the
// total record count (for demarshal pricing). Every malformation — wrong
// arity, wrong kinds, a result count that does not match the question
// count — is an error, never a panic: the reply may come from a peer
// running other software.
func decodeBatchResults(ret marshal.Value, qs []Question) ([]BatchResult, int, error) {
	if ret.Kind != marshal.KindStruct || ret.Len() != 1 {
		return nil, 0, fmt.Errorf("bind: batch reply is not a 1-field struct")
	}
	list := ret.Items[0]
	if list.Kind != marshal.KindList {
		return nil, 0, fmt.Errorf("bind: batch reply body is not a list")
	}
	if list.Len() != len(qs) {
		return nil, 0, fmt.Errorf("bind: batch reply has %d results for %d questions", list.Len(), len(qs))
	}
	out := make([]BatchResult, len(qs))
	records := 0
	for i, it := range list.Items {
		if it.Kind != marshal.KindStruct || it.Len() != 2 {
			return nil, 0, fmt.Errorf("bind: batch result %d is not an (rcode, records) pair", i)
		}
		rcode, err := it.Items[0].AsU32()
		if err != nil {
			return nil, 0, fmt.Errorf("bind: batch result %d: %v", i, err)
		}
		if it.Items[1].Kind != marshal.KindList {
			return nil, 0, fmt.Errorf("bind: batch result %d records are not a list", i)
		}
		rrs, err := listToRRs(it.Items[1])
		if err != nil {
			return nil, 0, fmt.Errorf("bind: batch result %d: %v", i, err)
		}
		if RCode(rcode) != RCodeOK {
			out[i] = BatchResult{Err: &NotFoundError{Name: qs[i].Name, Type: qs[i].Type, RCode: RCode(rcode)}}
			continue
		}
		out[i] = BatchResult{RRs: rrs}
		records += len(rrs)
	}
	return out, records, nil
}

// LookupBatch resolves up to MaxBatchNames questions in one call. The
// returned slice matches qs positionally; each slot carries its own
// records or error (partial failure does not poison the batch), and the
// call-level error is reserved for transport/availability failures.
//
// Against an old server without the batch procedure, the first call
// learns so from the procedure-unavailable fault, falls back to
// single-name lookups, and remembers the answer — later batches skip the
// probe and fan out directly.
func (c *HRPCClient) LookupBatch(ctx context.Context, qs []Question) ([]BatchResult, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if len(qs) > MaxBatchNames {
		return nil, fmt.Errorf("bind: batch of %d exceeds limit %d", len(qs), MaxBatchNames)
	}
	if !c.noBatch.Load() {
		res, err := c.lookupBatchWire(ctx, qs)
		if err == nil {
			return res, nil
		}
		if !hrpc.ProcUnavailable(err) {
			return nil, err
		}
		// Old peer: no batch procedure on that program. Negotiate down.
		c.noBatch.Store(true)
		c.obs.batchFallbacks.Inc()
	}
	return c.lookupBatchSingles(ctx, qs)
}

// lookupBatchWire is the batched wire path: one frame out, one frame in.
func (c *HRPCClient) lookupBatchWire(ctx context.Context, qs []Question) ([]BatchResult, error) {
	model := c.c.Network().Model()
	// One generated-stub request marshal for the whole batch — this is
	// the amortization the batch exists for.
	simtime.Charge(ctx, model.GenMarshalRequest)
	items := make([]marshal.Value, 0, len(qs))
	for _, q := range qs {
		items = append(items, marshal.StructV(marshal.Str(q.Name), marshal.U32(uint32(q.Type))))
	}
	ret, err := c.c.Call(ctx, c.b, procQueryBatch, marshal.StructV(marshal.ListV(items...)))
	if err != nil {
		return nil, err
	}
	res, records, err := decodeBatchResults(ret, qs)
	if err != nil {
		return nil, err
	}
	marshal.ChargeRecords(ctx, model, marshal.StyleGenerated, records)
	c.obs.batches.Inc()
	c.obs.batchNames.Add(int64(len(qs)))
	for _, r := range res {
		c.obs.count(r.Err)
	}
	return res, nil
}

// lookupBatchSingles is the negotiation fallback: the same contract as
// LookupBatch, served by per-name single calls against an old server.
func (c *HRPCClient) lookupBatchSingles(ctx context.Context, qs []Question) ([]BatchResult, error) {
	out := make([]BatchResult, len(qs))
	for i, q := range qs {
		rrs, err := c.Lookup(ctx, q.Name, q.Type)
		if err != nil && !isNotFound(err) {
			// Transport-level trouble fails the batch, matching the wire
			// path, where a lost frame loses every slot.
			return nil, err
		}
		out[i] = BatchResult{RRs: rrs, Err: err}
	}
	return out, nil
}

// ---- Client-side auto-batching.

// Batcher coalesces concurrent single-name Lookups into batch calls: a
// lookup joins the open window, and the window flushes when it holds
// MaxBatch questions or has been open MaxWait. Each waiter is charged
// the batch call's full simulated cost (coalescing reduces frames and
// backend work, not the latency any one caller observes) and gets its
// own slot's answer. A Batcher is a Lookuper, so it drops in front of a
// Resolver exactly where the plain client would go.
type Batcher struct {
	backend  *HRPCClient
	maxBatch int
	maxWait  time.Duration

	mu      sync.Mutex
	pending []*batchWaiter
	timer   *time.Timer

	flushesSize, flushesTime *metrics.Counter // bind_batcher_flushes_total{cause}
	joined                   *metrics.Counter // bind_batcher_joined_total
}

// batchWaiter is one caller parked in the window.
type batchWaiter struct {
	q    Question
	done chan struct{}
	rrs  []RR
	err  error
	cost time.Duration
}

// BatcherConfig configures NewBatcher.
type BatcherConfig struct {
	// MaxBatch flushes a window when it holds this many questions;
	// default 16, capped at MaxBatchNames.
	MaxBatch int
	// MaxWait flushes a window this long after it opens; default 1ms.
	// This is real time — the knife-edge between amortization and added
	// latency for the first caller in a window.
	MaxWait time.Duration
	// Metrics receives the batcher's counters; nil means the
	// process-wide registry.
	Metrics *metrics.Registry
}

// NewBatcher wraps backend in an auto-batching front.
func NewBatcher(backend *HRPCClient, cfg BatcherConfig) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MaxBatch > MaxBatchNames {
		cfg.MaxBatch = MaxBatchNames
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	return &Batcher{
		backend:  backend,
		maxBatch: cfg.MaxBatch,
		maxWait:  cfg.MaxWait,
		flushesSize: reg.Counter(metrics.Labels("bind_batcher_flushes_total",
			"cause", "size")),
		flushesTime: reg.Counter(metrics.Labels("bind_batcher_flushes_total",
			"cause", "time")),
		joined: reg.Counter("bind_batcher_joined_total"),
	}
}

// Lookup implements Lookuper by joining the open batch window.
func (ba *Batcher) Lookup(ctx context.Context, name string, t RRType) ([]RR, error) {
	w := &batchWaiter{q: Question{Name: name, Type: t}, done: make(chan struct{})}
	ba.mu.Lock()
	ba.pending = append(ba.pending, w)
	if len(ba.pending) > 1 {
		ba.joined.Inc()
	}
	switch {
	case len(ba.pending) >= ba.maxBatch:
		batch := ba.takeLocked()
		ba.mu.Unlock()
		ba.flushesSize.Inc()
		ba.run(batch)
	case len(ba.pending) == 1:
		// First into the window: arm the timer that bounds how long it
		// stays open.
		ba.timer = time.AfterFunc(ba.maxWait, func() {
			ba.mu.Lock()
			batch := ba.takeLocked()
			ba.mu.Unlock()
			if len(batch) > 0 {
				ba.flushesTime.Inc()
				ba.run(batch)
			}
		})
		ba.mu.Unlock()
	default:
		ba.mu.Unlock()
	}
	select {
	case <-w.done:
	case <-ctx.Done():
		// The batch call still completes for the other waiters; this
		// caller just stops waiting for it.
		return nil, ctx.Err()
	}
	// Replay the leader's measured cost to this caller's meter: in
	// simulated time every waiter sat through the batch exchange.
	simtime.Charge(ctx, w.cost)
	return w.rrs, w.err
}

// Flush forces the open window out immediately (shutdown, tests).
func (ba *Batcher) Flush() {
	ba.mu.Lock()
	batch := ba.takeLocked()
	ba.mu.Unlock()
	if len(batch) > 0 {
		ba.run(batch)
	}
}

// takeLocked claims the pending window and disarms its timer.
func (ba *Batcher) takeLocked() []*batchWaiter {
	batch := ba.pending
	ba.pending = nil
	if ba.timer != nil {
		ba.timer.Stop()
		ba.timer = nil
	}
	return batch
}

// run executes one flushed window on a private meter and distributes
// per-slot answers and the measured cost to the waiters.
func (ba *Batcher) run(batch []*batchWaiter) {
	qs := make([]Question, len(batch))
	for i, w := range batch {
		qs[i] = w.q
	}
	m := simtime.NewMeter()
	ctx := simtime.WithMeter(context.Background(), m)
	res, err := ba.backend.LookupBatch(ctx, qs)
	cost := m.Elapsed()
	for i, w := range batch {
		w.cost = cost
		if err != nil {
			w.err = err
		} else {
			w.rrs, w.err = res[i].RRs, res[i].Err
		}
		close(w.done)
	}
}
