package bind

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
)

func TestLookupBatchRoundTrip(t *testing.T) {
	env := newTestEnv(t)
	c := NewHRPCClient(env.client, env.hrpcB)
	qs := []Question{
		{"fiji.cs.washington.edu", TypeA},
		{"ghost.cs.washington.edu", TypeA}, // NXDOMAIN slot
		{"june.cs.washington.edu", TypeA},
		{"parc.xerox.com", TypeA}, // REFUSED slot
	}
	res, err := c.LookupBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(qs) {
		t.Fatalf("got %d results, want %d", len(res), len(qs))
	}
	if res[0].Err != nil || len(res[0].RRs) != 1 || string(res[0].RRs[0].Data) != "udp!fiji" {
		t.Fatalf("slot 0 = %+v", res[0])
	}
	var nf *NotFoundError
	if !errors.As(res[1].Err, &nf) || nf.RCode != RCodeNXDomain {
		t.Fatalf("slot 1 err = %v, want NXDOMAIN", res[1].Err)
	}
	// Partial failure does not poison the batch: slot 2 still answers.
	if res[2].Err != nil || len(res[2].RRs) != 1 || string(res[2].RRs[0].Data) != "udp!june" {
		t.Fatalf("slot 2 = %+v", res[2])
	}
	if !errors.As(res[3].Err, &nf) || nf.RCode != RCodeRefused {
		t.Fatalf("slot 3 err = %v, want REFUSED", res[3].Err)
	}
}

// TestLookupBatchCheaperThanSingles pins the amortization in simulated
// time: one batch of N costs less than N sequential singles (one
// request marshal and one network exchange versus N of each).
func TestLookupBatchCheaperThanSingles(t *testing.T) {
	env := newTestEnv(t)
	c := NewHRPCClient(env.client, env.hrpcB)
	qs := make([]Question, 8)
	for i := range qs {
		qs[i] = Question{"fiji.cs.washington.edu", TypeA}
	}
	batchCost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := c.LookupBatch(ctx, qs)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	singleCost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		for range qs {
			if _, err := c.Lookup(ctx, "fiji.cs.washington.edu", TypeA); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batchCost >= singleCost {
		t.Fatalf("batch of %d cost %v, singles cost %v; batching should amortize", len(qs), batchCost, singleCost)
	}
}

func TestLookupBatchLimits(t *testing.T) {
	env := newTestEnv(t)
	c := NewHRPCClient(env.client, env.hrpcB)
	if res, err := c.LookupBatch(context.Background(), nil); err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	big := make([]Question, MaxBatchNames+1)
	for i := range big {
		big[i] = Question{"fiji.cs.washington.edu", TypeA}
	}
	if _, err := c.LookupBatch(context.Background(), big); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestLookupBatchFallsBackToOldServer is the negotiation test: against
// a server without the batch procedure, LookupBatch answers via
// single-name calls, latches the downgrade, and never re-probes.
func TestLookupBatchFallsBackToOldServer(t *testing.T) {
	env := newTestEnv(t)
	// An "old" peer: same program and version, query procedure only —
	// the interface as it was before this extension.
	old := hrpc.NewServer("bind-old", HRPCProgram, HRPCVersion)
	old.Register(procQuery, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		name, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		qt, err := args.Items[1].AsU32()
		if err != nil {
			return marshal.Value{}, err
		}
		rcode, rrs := env.server.Query(ctx, name, RRType(qt))
		return marshal.StructV(marshal.U32(uint32(rcode)), rrsToList(rrs)), nil
	})
	ln, b, err := hrpc.Serve(env.net, old, hrpc.SuiteRaw, "old", "old:bind-hrpc")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c := NewHRPCClient(env.client, b)
	qs := []Question{
		{"fiji.cs.washington.edu", TypeA},
		{"ghost.cs.washington.edu", TypeA},
	}
	res, err := c.LookupBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || len(res[0].RRs) != 1 {
		t.Fatalf("slot 0 via fallback = %+v", res[0])
	}
	var nf *NotFoundError
	if !errors.As(res[1].Err, &nf) {
		t.Fatalf("slot 1 via fallback = %v, want NotFound", res[1].Err)
	}
	if !c.noBatch.Load() {
		t.Fatal("downgrade not latched after procedure-unavailable fault")
	}
	// Second batch goes straight to singles; it must still work.
	if _, err := c.LookupBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherCoalescesBySize(t *testing.T) {
	env := newTestEnv(t)
	reg := metrics.NewRegistry()
	ba := NewBatcher(NewHRPCClient(env.client, env.hrpcB), BatcherConfig{
		MaxBatch: 4,
		MaxWait:  time.Minute, // only the size trigger may fire
		Metrics:  reg,
	})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	costs := make([]time.Duration, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := simtime.WithMeter(context.Background(), simtime.NewMeter())
			_, errs[i] = ba.Lookup(ctx, "fiji.cs.washington.edu", TypeA)
			costs[i] = simtime.From(ctx).Elapsed()
		}()
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if costs[i] == 0 {
			t.Fatalf("waiter %d charged nothing; batch cost must replay to every waiter", i)
		}
	}
	if got := reg.Counter(metrics.Labels("bind_batcher_flushes_total", "cause", "size")).Value(); got != 1 {
		t.Fatalf("size flushes = %d, want 1", got)
	}
	if got := reg.Counter("bind_batcher_joined_total").Value(); got != 3 {
		t.Fatalf("joined = %d, want 3", got)
	}
}

func TestBatcherFlushesOnTimer(t *testing.T) {
	env := newTestEnv(t)
	reg := metrics.NewRegistry()
	ba := NewBatcher(NewHRPCClient(env.client, env.hrpcB), BatcherConfig{
		MaxBatch: 16,
		MaxWait:  2 * time.Millisecond,
		Metrics:  reg,
	})
	rrs, err := ba.Lookup(context.Background(), "june.cs.washington.edu", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || string(rrs[0].Data) != "udp!june" {
		t.Fatalf("Lookup via batcher = %v", rrs)
	}
	if got := reg.Counter(metrics.Labels("bind_batcher_flushes_total", "cause", "time")).Value(); got != 1 {
		t.Fatalf("time flushes = %d, want 1", got)
	}
}

func TestBatcherLookupNotFound(t *testing.T) {
	env := newTestEnv(t)
	ba := NewBatcher(NewHRPCClient(env.client, env.hrpcB), BatcherConfig{MaxBatch: 1})
	_, err := ba.Lookup(context.Background(), "ghost.cs.washington.edu", TypeA)
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.RCode != RCodeNXDomain {
		t.Fatalf("want NXDOMAIN through batcher, got %v", err)
	}
}

// FuzzBatchDecode hammers the batch reply decoder with arbitrary bytes:
// whatever a peer sends, decode must return an error or a result — never
// panic, never index out of range.
func FuzzBatchDecode(f *testing.F) {
	rep, err := marshal.Lookup("xdr")
	if err != nil {
		f.Fatal(err)
	}
	// Seed with a well-formed two-slot reply and some near-misses.
	good := marshal.StructV(marshal.ListV(
		marshal.StructV(marshal.U32(0), marshal.ListV(rrToValue(A("a.example", "x", 60)))),
		marshal.StructV(marshal.U32(3), marshal.ListV()),
	))
	if enc, err := rep.Append(nil, good, procQueryBatch.Ret); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	qs := []Question{{"a.example", TypeA}, {"b.example", TypeA}}
	f.Fuzz(func(t *testing.T, data []byte) {
		ret, err := marshal.Unmarshal(rep, data, procQueryBatch.Ret)
		if err != nil {
			return // rejected at the wire layer: fine
		}
		// Shape-valid bytes may still disagree with the question count or
		// carry mangled records; decode must fail soft.
		res, _, err := decodeBatchResults(ret, qs)
		if err == nil && len(res) != len(qs) {
			t.Fatalf("decode returned %d results for %d questions without error", len(res), len(qs))
		}
	})
}
