package bind

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/simtime"
	"hns/internal/transport"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"FIJI.CS.Washington.EDU", "fiji.cs.washington.edu", true},
		{"fiji.cs.washington.edu.", "fiji.cs.washington.edu", true},
		{"a", "a", true},
		{"", "", false},
		{".", "", false},
		{"a..b", "", false},
		{"has space.example", "", false},
		{strings.Repeat("a", 64) + ".example", "", false},
		{strings.Repeat("a.", 130) + "a", "", false},
	}
	for _, tc := range cases {
		got, err := CanonicalName(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("CanonicalName(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("CanonicalName(%q) accepted", tc.in)
		}
	}
}

func TestRRValidate(t *testing.T) {
	rr := A("FIJI.cs.washington.edu", "udp!fiji:53", 300)
	if err := (&rr).Validate(); err != nil {
		t.Fatal(err)
	}
	if rr.Name != "fiji.cs.washington.edu" {
		t.Fatalf("name not canonicalized: %q", rr.Name)
	}
	big := RR{Name: "x.example", Type: TypeTXT, Data: make([]byte, MaxRDataLen+1)}
	if err := (&big).Validate(); !errors.Is(err, ErrDataTooBig) {
		t.Fatalf("oversized data accepted: %v", err)
	}
}

func newTestZone(t *testing.T) *Zone {
	t.Helper()
	z, err := NewZone("cs.washington.edu", true)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestZoneAddLookup(t *testing.T) {
	z := newTestZone(t)
	if err := z.Add(A("fiji.cs.washington.edu", "10.0.0.1", 60)); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(A("fiji.cs.washington.edu", "10.0.0.2", 60)); err != nil {
		t.Fatal(err)
	}
	rrs, err := z.Lookup("FIJI.cs.washington.edu", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 2 {
		t.Fatalf("Lookup returned %d records", len(rrs))
	}
	// Type filtering.
	rrs, err = z.Lookup("fiji.cs.washington.edu", TypeTXT)
	if err != nil || rrs != nil {
		t.Fatalf("TXT lookup = %v, %v", rrs, err)
	}
}

func TestZoneRejectsForeignName(t *testing.T) {
	z := newTestZone(t)
	if err := z.Add(A("parc.xerox.com", "10.1.1.1", 60)); !errors.Is(err, ErrNotInZone) {
		t.Fatalf("foreign name accepted: %v", err)
	}
}

func TestZoneSerialBumps(t *testing.T) {
	z := newTestZone(t)
	s0 := z.Serial()
	if err := z.Add(A("a.cs.washington.edu", "1", 60)); err != nil {
		t.Fatal(err)
	}
	if z.Serial() <= s0 {
		t.Fatal("Add did not bump serial")
	}
	s1 := z.Serial()
	if err := z.Remove(RR{Name: "a.cs.washington.edu", Type: TypeA}); err != nil {
		t.Fatal(err)
	}
	if z.Serial() <= s1 {
		t.Fatal("Remove did not bump serial")
	}
}

func TestZoneDuplicateAddRefreshesTTL(t *testing.T) {
	z := newTestZone(t)
	if err := z.Add(A("a.cs.washington.edu", "1", 60)); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(A("a.cs.washington.edu", "1", 999)); err != nil {
		t.Fatal(err)
	}
	rrs, _ := z.Lookup("a.cs.washington.edu", TypeA)
	if len(rrs) != 1 || rrs[0].TTL != 999 {
		t.Fatalf("duplicate add: %v", rrs)
	}
}

func TestZoneRemove(t *testing.T) {
	z := newTestZone(t)
	z.Add(A("a.cs.washington.edu", "1", 60))
	z.Add(A("a.cs.washington.edu", "2", 60))
	// Remove by exact data.
	if err := z.Remove(A("a.cs.washington.edu", "1", 0)); err != nil {
		t.Fatal(err)
	}
	rrs, _ := z.Lookup("a.cs.washington.edu", TypeA)
	if len(rrs) != 1 || string(rrs[0].Data) != "2" {
		t.Fatalf("after targeted remove: %v", rrs)
	}
	// Remove all of a type.
	if err := z.Remove(RR{Name: "a.cs.washington.edu", Type: TypeA}); err != nil {
		t.Fatal(err)
	}
	if rrs, _ := z.Lookup("a.cs.washington.edu", TypeA); rrs != nil {
		t.Fatalf("after full remove: %v", rrs)
	}
	// Removing the absent record errors.
	if err := z.Remove(RR{Name: "a.cs.washington.edu", Type: TypeA}); !errors.Is(err, ErrNoSuchRecord) {
		t.Fatalf("missing remove: %v", err)
	}
}

func TestZoneCNAME(t *testing.T) {
	z := newTestZone(t)
	z.Add(A("real.cs.washington.edu", "10.0.0.9", 60))
	if err := z.Add(CNAME("alias.cs.washington.edu", "real.cs.washington.edu", 60)); err != nil {
		t.Fatal(err)
	}
	rrs, err := z.Lookup("alias.cs.washington.edu", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || string(rrs[0].Data) != "10.0.0.9" {
		t.Fatalf("CNAME chase: %v", rrs)
	}
	// CNAME may not coexist with other data.
	if err := z.Add(A("alias.cs.washington.edu", "10.0.0.10", 60)); !errors.Is(err, ErrCNAMEConflict) {
		t.Fatalf("A beside CNAME accepted: %v", err)
	}
	if err := z.Add(CNAME("real.cs.washington.edu", "x.cs.washington.edu", 60)); !errors.Is(err, ErrCNAMEConflict) {
		t.Fatalf("CNAME beside A accepted: %v", err)
	}
}

func TestZoneCNAMELoop(t *testing.T) {
	z := newTestZone(t)
	z.Add(CNAME("a.cs.washington.edu", "b.cs.washington.edu", 60))
	z.Add(CNAME("b.cs.washington.edu", "a.cs.washington.edu", 60))
	if _, err := z.Lookup("a.cs.washington.edu", TypeA); !errors.Is(err, ErrTooManyAliases) {
		t.Fatalf("CNAME loop: %v", err)
	}
}

func TestZoneAllSortedAndCount(t *testing.T) {
	z := newTestZone(t)
	z.Add(A("b.cs.washington.edu", "2", 60))
	z.Add(A("a.cs.washington.edu", "1", 60))
	z.Add(TXT("a.cs.washington.edu", "hello", 60))
	all := z.All()
	if len(all) != 3 || z.Count() != 3 {
		t.Fatalf("All/Count = %d/%d", len(all), z.Count())
	}
	if all[0].Name != "a.cs.washington.edu" || all[2].Name != "b.cs.washington.edu" {
		t.Fatalf("All not sorted: %v", all)
	}
}

// Property: Add then Lookup always finds the record; Remove then Lookup
// never does.
func TestZoneAddRemoveProperty(t *testing.T) {
	f := func(labels []string, data []byte) bool {
		z, _ := NewZone("z.test", true)
		if len(data) > MaxRDataLen {
			data = data[:MaxRDataLen]
		}
		// Zones only accept data that survives the zone-file format
		// (non-empty, no line breaks, no edge whitespace) — see
		// storableData; normalize the generated payload to that shape.
		data = bytes.TrimSpace(bytes.ReplaceAll(bytes.ReplaceAll(data,
			[]byte("\n"), []byte("_")), []byte("\r"), []byte("_")))
		if len(data) == 0 {
			data = []byte("x")
		}
		seen := map[string]bool{}
		for _, l := range labels {
			name, err := CanonicalName(strings.Trim(l, ".") + ".z.test")
			if err != nil {
				continue // unencodable label; skip
			}
			rr := RR{Name: name, Type: TypeTXT, TTL: 60, Data: data}
			if err := z.Add(rr); err != nil {
				return false
			}
			seen[name] = true
		}
		for name := range seen {
			rrs, err := z.Lookup(name, TypeTXT)
			if err != nil || len(rrs) == 0 {
				return false
			}
			if err := z.Remove(RR{Name: name, Type: TypeTXT}); err != nil {
				return false
			}
			rrs, err = z.Lookup(name, TypeTXT)
			if err != nil || rrs != nil {
				return false
			}
		}
		return z.Count() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// ---- Wire codec.

func TestWireRoundTrip(t *testing.T) {
	m := &Message{
		ID:       42,
		Response: true,
		RCode:    RCodeOK,
		QName:    "fiji.cs.washington.edu",
		QType:    TypeA,
		Answers: []RR{
			A("fiji.cs.washington.edu", "10.0.0.1", 300),
			A("fiji.cs.washington.edu", "10.0.0.2", 300),
		},
	}
	buf, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || !got.Response || got.RCode != m.RCode ||
		got.QName != m.QName || got.QType != m.QType || len(got.Answers) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if string(got.Answers[1].Data) != "10.0.0.2" {
		t.Fatalf("answer data: %v", got.Answers)
	}
}

func TestWireTruncation(t *testing.T) {
	m := &Message{ID: 1, QName: "a.b", QType: TypeA,
		Answers: []RR{A("a.b", "1.2.3.4", 60)}}
	buf, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeMessage(buf[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := DecodeMessage(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestWireFuzzProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = DecodeMessage(raw) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// ---- Server + clients end to end.

// testEnv stands up one BIND server with both interfaces on a fresh
// simulated network.
type testEnv struct {
	net     *transport.Network
	model   *simtime.Model
	server  *Server
	stdAddr string
	hrpcB   hrpc.Binding
	client  *hrpc.Client
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	model := simtime.Default()
	net := transport.NewNetwork(model)
	s := NewServer("fiji", model)

	z, err := NewZone("cs.washington.edu", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(z); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRecords([]RR{
		A("fiji.cs.washington.edu", "udp!fiji", 600),
		A("june.cs.washington.edu", "udp!june", 600),
		HNSMeta("ctx.hrpcbinding-bind.cs.washington.edu", "ns=bind.cs.washington.edu", 600),
	}); err != nil {
		t.Fatal(err)
	}

	stdLn, err := s.ServeStd(net, "udp", "fiji:53")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stdLn.Close() })

	hrpcLn, hb, err := s.ServeHRPC(net, "fiji:bind-hrpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hrpcLn.Close() })

	c := hrpc.NewClient(net)
	t.Cleanup(func() { c.Close() })
	return &testEnv{net: net, model: model, server: s, stdAddr: "fiji:53", hrpcB: hb, client: c}
}

func TestStdClientLookup(t *testing.T) {
	env := newTestEnv(t)
	c := NewStdClient(env.net, "udp", env.stdAddr)
	defer c.Close()
	rrs, err := c.Lookup(context.Background(), "FIJI.cs.washington.edu", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || string(rrs[0].Data) != "udp!fiji" {
		t.Fatalf("Lookup = %v", rrs)
	}
}

func TestStdClientNXDomain(t *testing.T) {
	env := newTestEnv(t)
	c := NewStdClient(env.net, "udp", env.stdAddr)
	defer c.Close()
	_, err := c.Lookup(context.Background(), "ghost.cs.washington.edu", TypeA)
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.RCode != RCodeNXDomain {
		t.Fatalf("want NXDOMAIN, got %v", err)
	}
}

func TestStdClientNotAuthoritative(t *testing.T) {
	env := newTestEnv(t)
	c := NewStdClient(env.net, "udp", env.stdAddr)
	defer c.Close()
	_, err := c.Lookup(context.Background(), "parc.xerox.com", TypeA)
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.RCode != RCodeRefused {
		t.Fatalf("want REFUSED, got %v", err)
	}
}

// TestStdLookupCostAnchor pins the paper's headline number: "a BIND name
// to address lookup takes 27 msec."
func TestStdLookupCostAnchor(t *testing.T) {
	env := newTestEnv(t)
	c := NewStdClient(env.net, "udp", env.stdAddr)
	defer c.Close()
	cost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := c.Lookup(ctx, "fiji.cs.washington.edu", TypeA)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	gotMS := float64(cost) / float64(time.Millisecond)
	if gotMS < 24 || gotMS > 30 {
		t.Fatalf("standard BIND lookup = %.2f ms, want ≈27 ms", gotMS)
	}
}

func TestHRPCClientQuery(t *testing.T) {
	env := newTestEnv(t)
	c := NewHRPCClient(env.client, env.hrpcB)
	rrs, err := c.Lookup(context.Background(), "june.cs.washington.edu", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || string(rrs[0].Data) != "udp!june" {
		t.Fatalf("Lookup = %v", rrs)
	}
	// The HNSMETA unspecified-type record is retrievable too.
	rrs, err = c.Lookup(context.Background(), "ctx.hrpcbinding-bind.cs.washington.edu", TypeHNSMeta)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || !strings.Contains(string(rrs[0].Data), "ns=") {
		t.Fatalf("HNSMETA lookup = %v", rrs)
	}
}

// TestHRPCLookupDearerThanStd verifies the generated-marshalling interface
// costs visibly more than the standard one over the same network path —
// the phenomenon behind Table 3.2.
func TestHRPCLookupDearerThanStd(t *testing.T) {
	env := newTestEnv(t)
	std := NewStdClient(env.net, "udp", env.stdAddr)
	defer std.Close()
	hc := NewHRPCClient(env.client, env.hrpcB)

	stdCost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := std.Lookup(ctx, "fiji.cs.washington.edu", TypeA)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the TCP connection so setup cost doesn't skew the comparison.
	if _, err := hc.Lookup(context.Background(), "fiji.cs.washington.edu", TypeA); err != nil {
		t.Fatal(err)
	}
	hrpcCost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := hc.Lookup(ctx, "fiji.cs.washington.edu", TypeA)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if hrpcCost <= stdCost {
		t.Fatalf("HRPC lookup (%v) should cost more than standard (%v)", hrpcCost, stdCost)
	}
}

func TestDynamicUpdate(t *testing.T) {
	env := newTestEnv(t)
	c := NewHRPCClient(env.client, env.hrpcB)
	ctx := context.Background()

	s0, err := c.Serial(ctx, "cs.washington.edu")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := c.Update(ctx, "cs.washington.edu", UpdateAdd,
		A("new.cs.washington.edu", "udp!new", 300))
	if err != nil {
		t.Fatal(err)
	}
	if serial <= s0 {
		t.Fatalf("serial %d not bumped from %d", serial, s0)
	}
	rrs, err := c.Lookup(ctx, "new.cs.washington.edu", TypeA)
	if err != nil || len(rrs) != 1 {
		t.Fatalf("lookup after update: %v, %v", rrs, err)
	}
	if _, err := c.Update(ctx, "cs.washington.edu", UpdateRemove,
		RR{Name: "new.cs.washington.edu", Type: TypeA}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(ctx, "new.cs.washington.edu", TypeA); err == nil {
		t.Fatal("record survived removal")
	}
}

func TestUpdateDeniedOnConventionalZone(t *testing.T) {
	model := simtime.Default()
	net := transport.NewNetwork(model)
	s := NewServer("vax", model)
	z, _ := NewZone("static.test", false) // conventional BIND: no updates
	s.AddZone(z)
	ln, b, err := s.ServeHRPC(net, "vax:bind-hrpc")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hc := hrpc.NewClient(net)
	defer hc.Close()
	c := NewHRPCClient(hc, b)
	_, err = c.Update(context.Background(), "static.test", UpdateAdd, A("a.static.test", "1", 60))
	if err == nil {
		t.Fatal("update accepted on conventional zone")
	}
}

func TestZoneTransfer(t *testing.T) {
	env := newTestEnv(t)
	c := NewHRPCClient(env.client, env.hrpcB)
	serial, rrs, err := c.Transfer(context.Background(), "cs.washington.edu")
	if err != nil {
		t.Fatal(err)
	}
	if serial == 0 || len(rrs) != 3 {
		t.Fatalf("Transfer = serial %d, %d records", serial, len(rrs))
	}
	// Deterministic order.
	_, rrs2, err := c.Transfer(context.Background(), "cs.washington.edu")
	if err != nil {
		t.Fatal(err)
	}
	for i := range rrs {
		if !rrs[i].Equal(rrs2[i]) {
			t.Fatal("transfer order not deterministic")
		}
	}
	if _, _, err := c.Transfer(context.Background(), "other.zone"); err == nil {
		t.Fatal("transfer of foreign zone accepted")
	}
}

// ---- Resolver caching.

func TestResolverCachesAndExpires(t *testing.T) {
	env := newTestEnv(t)
	std := NewStdClient(env.net, "udp", env.stdAddr)
	defer std.Close()
	clk := simtime.NewFakeClock(time.Now())
	r := NewResolver(std, env.model, ResolverConfig{Clock: clk})

	ctx := context.Background()
	if _, err := r.Lookup(ctx, "fiji.cs.washington.edu", TypeA); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(ctx, "fiji.cs.washington.edu", TypeA); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Expire (records carry TTL 600s).
	clk.Advance(601 * time.Second)
	if _, err := r.Lookup(ctx, "fiji.cs.washington.edu", TypeA); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Expired != 1 {
		t.Fatalf("stats after expiry = %+v", st)
	}
}

func TestResolverHitCostByMode(t *testing.T) {
	env := newTestEnv(t)
	std := NewStdClient(env.net, "udp", env.stdAddr)
	defer std.Close()
	ctx := context.Background()

	measureHit := func(mode CacheMode) time.Duration {
		r := NewResolver(std, env.model, ResolverConfig{Mode: mode, Style: marshal.StyleGenerated})
		if _, err := r.Lookup(ctx, "fiji.cs.washington.edu", TypeA); err != nil {
			t.Fatal(err)
		}
		cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
			_, err := r.Lookup(ctx, "fiji.cs.washington.edu", TypeA)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}

	demars := measureHit(CacheDemarshalled)
	mars := measureHit(CacheMarshalled)
	// Table 3.2, one record: demarshalled 0.83 ms vs marshalled 11.11 ms.
	if demars >= mars {
		t.Fatalf("demarshalled hit (%v) must beat marshalled hit (%v)", demars, mars)
	}
	dms := float64(demars) / float64(time.Millisecond)
	mms := float64(mars) / float64(time.Millisecond)
	if dms < 0.5 || dms > 1.5 {
		t.Errorf("demarshalled hit = %.2f ms, want ≈0.83", dms)
	}
	if mms < 10 || mms > 13 {
		t.Errorf("marshalled hit = %.2f ms, want ≈11.11", mms)
	}
}

func TestResolverPreload(t *testing.T) {
	env := newTestEnv(t)
	std := NewStdClient(env.net, "udp", env.stdAddr)
	defer std.Close()
	r := NewResolver(std, env.model, ResolverConfig{})
	r.Preload([]RR{
		A("fiji.cs.washington.edu", "udp!fiji", 600),
		A("june.cs.washington.edu", "udp!june", 600),
	})
	cost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := r.Lookup(ctx, "june.cs.washington.edu", TypeA)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// A preloaded entry must be served from cache (far below a 27 ms
	// remote lookup).
	if cost > 5*time.Millisecond {
		t.Fatalf("preloaded lookup cost %v — went remote", cost)
	}
	if st := r.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerDuplicateZone(t *testing.T) {
	model := simtime.Default()
	s := NewServer("h", model)
	z1, _ := NewZone("a.test", false)
	z2, _ := NewZone("a.test", false)
	if err := s.AddZone(z1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(z2); err == nil {
		t.Fatal("duplicate zone accepted")
	}
}

func TestServerLongestZoneMatch(t *testing.T) {
	model := simtime.Default()
	s := NewServer("h", model)
	parent, _ := NewZone("washington.edu", true)
	child, _ := NewZone("cs.washington.edu", true)
	s.AddZone(parent)
	s.AddZone(child)
	child.Add(A("fiji.cs.washington.edu", "child", 60))
	parent.Add(A("ee.washington.edu", "parent", 60))

	rcode, rrs := s.Query(context.Background(), "fiji.cs.washington.edu", TypeA)
	if rcode != RCodeOK || string(rrs[0].Data) != "child" {
		t.Fatalf("child zone not matched: %v %v", rcode, rrs)
	}
	rcode, rrs = s.Query(context.Background(), "ee.washington.edu", TypeA)
	if rcode != RCodeOK || string(rrs[0].Data) != "parent" {
		t.Fatalf("parent zone not matched: %v %v", rcode, rrs)
	}
}

func TestMinTTL(t *testing.T) {
	if MinTTL(nil) != 0 {
		t.Fatal("MinTTL(nil) != 0")
	}
	rrs := []RR{A("a.b", "1", 300), A("a.b", "2", 60), A("a.b", "3", 900)}
	if got := MinTTL(rrs); got != 60 {
		t.Fatalf("MinTTL = %d", got)
	}
}

func TestRRTypeStrings(t *testing.T) {
	for typ, want := range map[RRType]string{
		TypeA: "A", TypeCNAME: "CNAME", TypeTXT: "TXT",
		TypeHNSMeta: "HNSMETA", RRType(999): "TYPE999",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	for rc, want := range map[RCode]string{
		RCodeOK: "NOERROR", RCodeNXDomain: "NXDOMAIN",
		RCodeNotOwner: "NOTOWNER", RCode(11): "RCODE11",
	} {
		if got := rc.String(); got != want {
			t.Errorf("rcode %d = %q, want %q", rc, got, want)
		}
	}
}

func TestServerString(t *testing.T) {
	model := simtime.Default()
	s := NewServer("fiji", model)
	z, _ := NewZone("cs.washington.edu", false)
	s.AddZone(z)
	if got := s.String(); !strings.Contains(got, "fiji") || !strings.Contains(got, "cs.washington.edu") {
		t.Fatalf("String() = %q", got)
	}
	if got := fmt.Sprint(A("a.b", "x", 1)); !strings.Contains(got, "A") {
		t.Fatalf("RR String = %q", got)
	}
}

func TestStdClientOverTCP(t *testing.T) {
	// The standard interface is transport-agnostic: serve it over the
	// (simulated) TCP transport and query it there.
	env := newTestEnv(t)
	ln, err := env.server.ServeStd(env.net, "tcp", "fiji:53tcp")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := NewStdClient(env.net, "tcp", "fiji:53tcp")
	defer c.Close()
	rrs, err := c.Lookup(context.Background(), world_HostBind, TypeA)
	if err != nil || len(rrs) != 1 {
		t.Fatalf("tcp lookup: %v, %v", rrs, err)
	}
	// TCP costs more than UDP for the same query.
	udp := NewStdClient(env.net, "udp", env.stdAddr)
	defer udp.Close()
	udpCost, _ := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := udp.Lookup(ctx, world_HostBind, TypeA)
		return err
	})
	tcpCost, _ := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := c.Lookup(ctx, world_HostBind, TypeA)
		return err
	})
	if tcpCost <= udpCost {
		t.Fatalf("tcp lookup (%v) not dearer than udp (%v)", tcpCost, udpCost)
	}
}

// world_HostBind avoids importing the world package (which imports bind).
const world_HostBind = "fiji.cs.washington.edu"
