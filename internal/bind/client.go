package bind

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hns/internal/cache"
	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
	"time"
)

// Lookuper is the client-side face shared by the two BIND interfaces and
// the caching resolver: resolve (name, type) to records.
type Lookuper interface {
	Lookup(ctx context.Context, name string, t RRType) ([]RR, error)
}

// NotFoundError reports an authoritative negative answer.
type NotFoundError struct {
	Name  string
	Type  RRType
	RCode RCode
}

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("bind: %s %s: %s", e.Name, e.Type, e.RCode)
}

// ---- Standard-interface client (hand-coded marshalling).

// StdClient speaks the standard wire protocol to one server. Its
// marshalling is priced at the hand-coded rates: this is the "standard
// BIND library" path (27 ms lookups in the paper).
type StdClient struct {
	net           *transport.Network
	transportName string
	addr          string
	obs           clientObs

	mu   sync.Mutex
	conn transport.Conn
	id   atomic.Uint32
}

// clientObs holds the BIND client-side counters, shared by both client
// flavors and labeled by interface ("std" or "hrpc").
type clientObs struct {
	ok, notFound, errs *metrics.Counter // bind_client_lookups_total{iface,result}
	updates            *metrics.Counter // bind_client_updates_total{iface}
	transfers          *metrics.Counter // bind_client_transfers_total{iface}
}

func newClientObs(iface string) clientObs {
	r := metrics.Default()
	lookups := func(result string) *metrics.Counter {
		return r.Counter(metrics.Labels("bind_client_lookups_total",
			"iface", iface, "result", result))
	}
	return clientObs{
		ok:       lookups("ok"),
		notFound: lookups("not_found"),
		errs:     lookups("error"),
		updates:  r.Counter(metrics.Labels("bind_client_updates_total", "iface", iface)),
		transfers: r.Counter(metrics.Labels("bind_client_transfers_total",
			"iface", iface)),
	}
}

// count classifies a finished lookup into the right counter.
func (o clientObs) count(err error) {
	switch {
	case err == nil:
		o.ok.Inc()
	case isNotFound(err):
		o.notFound.Inc()
	default:
		o.errs.Inc()
	}
}

func isNotFound(err error) bool {
	var nf *NotFoundError
	return errors.As(err, &nf)
}

// NewStdClient creates a standard-interface client for the server at addr
// over the named transport ("udp" for the classic remote configuration).
func NewStdClient(net *transport.Network, transportName, addr string) *StdClient {
	return &StdClient{net: net, transportName: transportName, addr: addr, obs: newClientObs("std")}
}

// Lookup implements Lookuper.
func (c *StdClient) Lookup(ctx context.Context, name string, t RRType) (_ []RR, err error) {
	defer func() { c.obs.count(err) }()
	model := c.net.Model()
	q := &Message{ID: uint16(c.id.Add(1)), QName: name, QType: t}
	// Hand-coded request marshalling: base cost only (a question is a
	// zero-record message).
	simtime.Charge(ctx, model.HandMarshalBase)
	req, err := EncodeMessage(q)
	if err != nil {
		return nil, err
	}
	respBytes, err := c.call(ctx, req)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeMessage(respBytes)
	if err != nil {
		return nil, err
	}
	// Hand-coded response demarshalling, priced per answer record.
	marshal.ChargeRecords(ctx, model, marshal.StyleHand, len(resp.Answers))
	if resp.ID != q.ID {
		return nil, fmt.Errorf("bind: response ID %d does not match query %d", resp.ID, q.ID)
	}
	if resp.RCode != RCodeOK {
		return nil, &NotFoundError{Name: name, Type: t, RCode: resp.RCode}
	}
	return resp.Answers, nil
}

func (c *StdClient) call(ctx context.Context, req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		tr, err := c.net.Transport(c.transportName)
		if err != nil {
			return nil, err
		}
		conn, err := tr.Dial(ctx, c.addr)
		if err != nil {
			return nil, err
		}
		c.conn = conn
	}
	resp, err := c.conn.Call(ctx, req)
	if err != nil {
		// Drop the connection; the next call redials.
		_ = c.conn.Close()
		c.conn = nil
	}
	return resp, err
}

// Close releases the client's connection.
func (c *StdClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// ---- HRPC-interface client (generated marshalling).

// HRPCClient speaks the HRPC interface to one (modified) BIND server. Its
// marshalling is priced at the generated-stub rates — the expensive path
// Table 3.2 measured — and it is the interface carrying dynamic updates
// and zone transfers.
type HRPCClient struct {
	c   *hrpc.Client
	b   hrpc.Binding
	obs clientObs
}

// NewHRPCClient creates a client for the BIND HRPC interface bound at b.
func NewHRPCClient(client *hrpc.Client, b hrpc.Binding) *HRPCClient {
	return &HRPCClient{c: client, b: b, obs: newClientObs("hrpc")}
}

// Binding reports the binding in use.
func (c *HRPCClient) Binding() hrpc.Binding { return c.b }

// Lookup implements Lookuper.
func (c *HRPCClient) Lookup(ctx context.Context, name string, t RRType) (_ []RR, err error) {
	defer func() { c.obs.count(err) }()
	model := c.c.Network().Model()
	// Generated request marshalling.
	simtime.Charge(ctx, model.GenMarshalRequest)
	ret, err := c.c.Call(ctx, c.b, procQuery, marshal.StructV(
		marshal.Str(name), marshal.U32(uint32(t)),
	))
	if err != nil {
		return nil, err
	}
	rcode, err := ret.Items[0].AsU32()
	if err != nil {
		return nil, err
	}
	rrs, err := listToRRs(ret.Items[1])
	if err != nil {
		return nil, err
	}
	// Generated response demarshalling, per record (Table 3.2 pricing).
	marshal.ChargeRecords(ctx, model, marshal.StyleGenerated, len(rrs))
	if RCode(rcode) != RCodeOK {
		return nil, &NotFoundError{Name: name, Type: t, RCode: RCode(rcode)}
	}
	return rrs, nil
}

// Update applies a dynamic update.
func (c *HRPCClient) Update(ctx context.Context, zone string, op uint32, rr RR) (uint32, error) {
	model := c.c.Network().Model()
	simtime.Charge(ctx, model.GenMarshalRequest)
	marshal.ChargeRecords(ctx, model, marshal.StyleGenerated, 1) // the RR in the request
	ret, err := c.c.Call(ctx, c.b, procUpdate, marshal.StructV(
		marshal.Str(zone), marshal.U32(op), rrToValue(rr),
	))
	if err != nil {
		return 0, err
	}
	rcode, _ := ret.Items[0].AsU32()
	serial, _ := ret.Items[1].AsU32()
	if RCode(rcode) != RCodeOK {
		return serial, fmt.Errorf("bind: update refused: %s", RCode(rcode))
	}
	c.obs.updates.Inc()
	return serial, nil
}

// Transfer fetches the zone's full contents (the preloading mechanism).
// The per-record transfer cost is charged server-side.
func (c *HRPCClient) Transfer(ctx context.Context, zone string) (uint32, []RR, error) {
	model := c.c.Network().Model()
	simtime.Charge(ctx, model.GenMarshalRequest)
	ret, err := c.c.Call(ctx, c.b, procTransfer, marshal.StructV(marshal.Str(zone)))
	if err != nil {
		return 0, nil, err
	}
	rcode, _ := ret.Items[0].AsU32()
	serial, _ := ret.Items[1].AsU32()
	if RCode(rcode) != RCodeOK {
		return serial, nil, fmt.Errorf("bind: transfer refused: %s", RCode(rcode))
	}
	rrs, err := listToRRs(ret.Items[2])
	if err != nil {
		return serial, nil, err
	}
	c.obs.transfers.Inc()
	return serial, rrs, nil
}

// Serial fetches the zone's serial (cheap freshness probe).
func (c *HRPCClient) Serial(ctx context.Context, zone string) (uint32, error) {
	ret, err := c.c.Call(ctx, c.b, procSerial, marshal.StructV(marshal.Str(zone)))
	if err != nil {
		return 0, err
	}
	rcode, _ := ret.Items[0].AsU32()
	serial, _ := ret.Items[1].AsU32()
	if RCode(rcode) != RCodeOK {
		return 0, fmt.Errorf("bind: serial refused: %s", RCode(rcode))
	}
	return serial, nil
}

// ---- Caching resolver.

// CacheMode selects what form cached answers are kept in — the subject of
// Table 3.2.
type CacheMode int

// Cache modes.
const (
	// CacheDemarshalled keeps parsed records; a hit costs only the cache
	// probe (0.83 ms scale).
	CacheDemarshalled CacheMode = iota
	// CacheMarshalled keeps wire-form records and demarshals on every
	// access — the prototype's initial, surprisingly expensive choice
	// (11–26 ms per hit).
	CacheMarshalled
)

// String implements fmt.Stringer.
func (m CacheMode) String() string {
	if m == CacheMarshalled {
		return "marshalled"
	}
	return "demarshalled"
}

// Resolver wraps a Lookuper with a TTL answer cache.
type Resolver struct {
	backend Lookuper
	model   *simtime.Model
	mode    CacheMode
	// style prices marshalled-mode hits: generated for the HRPC backend,
	// hand for the standard backend.
	style marshal.Style
	cache *cache.TTL[[]RR]
	// demarshals counts marshalled-mode hit demarshals
	// (cache_demarshal_total{cache=...}); nil when uninstrumented.
	demarshals *metrics.Counter
}

// ResolverConfig configures NewResolver.
type ResolverConfig struct {
	// Mode selects the cache entry form; default CacheDemarshalled.
	Mode CacheMode
	// Style prices marshalled-mode hits; default StyleGenerated.
	Style marshal.Style
	// Clock drives TTL expiry; default real time.
	Clock simtime.Clock
	// MaxEntries bounds the cache; 0 = unbounded.
	MaxEntries int
	// Metrics, with CacheName, exposes the cache's counters as
	// cache_*{cache=CacheName} series. Nil Metrics or empty CacheName
	// leaves the resolver uninstrumented.
	Metrics *metrics.Registry
	// CacheName labels this resolver's series (e.g. "meta").
	CacheName string
}

// NewResolver creates a caching resolver over backend.
func NewResolver(backend Lookuper, model *simtime.Model, cfg ResolverConfig) *Resolver {
	r := &Resolver{
		backend: backend,
		model:   model,
		mode:    cfg.Mode,
		style:   cfg.Style,
		cache:   cache.New[[]RR](cfg.Clock, cfg.MaxEntries),
	}
	if cfg.CacheName != "" && cfg.Metrics.Enabled() {
		r.cache.Instrument(cfg.Metrics, cfg.CacheName)
		r.demarshals = cfg.Metrics.Counter(
			metrics.Labels("cache_demarshal_total", "cache", cfg.CacheName))
	}
	return r
}

func cacheKey(name string, t RRType) string {
	return fmt.Sprintf("%s/%d", name, t)
}

// Lookup implements Lookuper with caching. Hits are priced by cache mode;
// misses go to the backend and are cached under the answer set's minimum
// TTL.
func (r *Resolver) Lookup(ctx context.Context, name string, t RRType) ([]RR, error) {
	cname, err := CanonicalName(name)
	if err != nil {
		return nil, err
	}
	key := cacheKey(cname, t)
	if rrs, ok := r.cache.Get(key); ok {
		r.chargeHit(ctx, len(rrs))
		return append([]RR(nil), rrs...), nil
	}
	metrics.CallCounterFrom(ctx).AddMiss()
	rrs, err := r.backend.Lookup(ctx, cname, t)
	if err != nil {
		return nil, err
	}
	r.cache.Put(key, rrs, time.Duration(MinTTL(rrs))*time.Second)
	return rrs, nil
}

func (r *Resolver) chargeHit(ctx context.Context, n int) {
	switch r.mode {
	case CacheMarshalled:
		// Every access pays a full demarshal of the stored answer.
		marshal.ChargeRecords(ctx, r.model, r.style, n)
		simtime.Charge(ctx, r.model.CacheHit(0)) // plus the probe itself
		r.demarshals.Inc()
	default:
		simtime.Charge(ctx, r.model.CacheHit(n))
	}
}

// Preload bulk-installs records (grouped by name/type) with their own
// TTLs — the zone-transfer preloading path.
func (r *Resolver) Preload(rrs []RR) {
	groups := make(map[string][]RR)
	for _, rr := range rrs {
		k := cacheKey(rr.Name, rr.Type)
		groups[k] = append(groups[k], rr)
	}
	for k, g := range groups {
		r.cache.Put(k, g, time.Duration(MinTTL(g))*time.Second)
	}
}

// Stats exposes the cache counters.
func (r *Resolver) Stats() cache.Stats { return r.cache.Stats() }

// Purge empties the cache.
func (r *Resolver) Purge() { r.cache.Purge() }

// Sweep proactively removes expired cache entries, reporting how many were
// dropped.
func (r *Resolver) Sweep() int { return r.cache.Sweep() }
