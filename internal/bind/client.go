package bind

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hns/internal/cache"
	"hns/internal/health"
	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
	"time"
)

// Lookuper is the client-side face shared by the two BIND interfaces and
// the caching resolver: resolve (name, type) to records.
type Lookuper interface {
	Lookup(ctx context.Context, name string, t RRType) ([]RR, error)
}

// NotFoundError reports an authoritative negative answer.
type NotFoundError struct {
	Name  string
	Type  RRType
	RCode RCode
}

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("bind: %s %s: %s", e.Name, e.Type, e.RCode)
}

// NotOwnerError reports a dynamic update refused with NOTOWNER: the
// contacted shard is authoritative for the zone but another shard owns
// the name under the current shard map. Server-side the gate fills in
// the owner it would route to; the client-side error (decoded from the
// wire rcode alone) carries only the name and zone — the caller
// refreshes its shard map and retries against the owner it names.
type NotOwnerError struct {
	Name string
	Zone string
	// Epoch, OwnerID, and OwnerAddr describe the refusing server's view
	// of the map; zero/empty on client-decoded errors.
	Epoch     uint32
	OwnerID   string
	OwnerAddr string
}

// Error implements error.
func (e *NotOwnerError) Error() string {
	if e.OwnerID != "" {
		return fmt.Sprintf("bind: update refused: NOTOWNER %s in %s: owner %s@%s (map epoch %d)",
			e.Name, e.Zone, e.OwnerID, e.OwnerAddr, e.Epoch)
	}
	return fmt.Sprintf("bind: update refused: NOTOWNER %s in %s", e.Name, e.Zone)
}

// ---- Standard-interface client (hand-coded marshalling).

// StdClient speaks the standard wire protocol to a server, or an ordered
// replica set of servers: the first address is preferred, and per-endpoint
// circuit breakers fail traffic over to the next live replica when it
// stops answering. Its marshalling is priced at the hand-coded rates: this
// is the "standard BIND library" path (27 ms lookups in the paper).
type StdClient struct {
	net           *transport.Network
	transportName string
	addrs         []string // ordered replica set; addrs[0] preferred
	obs           clientObs
	health        *health.Set

	mu       sync.Mutex
	conn     transport.Conn
	connAddr string
	id       atomic.Uint32
}

// clientObs holds the BIND client-side counters, shared by both client
// flavors and labeled by interface ("std" or "hrpc").
type clientObs struct {
	ok, notFound, errs *metrics.Counter // bind_client_lookups_total{iface,result}
	updates            *metrics.Counter // bind_client_updates_total{iface}
	transfers          *metrics.Counter // bind_client_transfers_total{iface}
	batches            *metrics.Counter // bind_client_batches_total{iface}
	batchNames         *metrics.Counter // bind_client_batch_names_total{iface}
	batchFallbacks     *metrics.Counter // bind_client_batch_fallback_total{iface}
}

func newClientObs(iface string) clientObs {
	r := metrics.Default()
	lookups := func(result string) *metrics.Counter {
		return r.Counter(metrics.Labels("bind_client_lookups_total",
			"iface", iface, "result", result))
	}
	return clientObs{
		ok:       lookups("ok"),
		notFound: lookups("not_found"),
		errs:     lookups("error"),
		updates:  r.Counter(metrics.Labels("bind_client_updates_total", "iface", iface)),
		transfers: r.Counter(metrics.Labels("bind_client_transfers_total",
			"iface", iface)),
		batches: r.Counter(metrics.Labels("bind_client_batches_total",
			"iface", iface)),
		batchNames: r.Counter(metrics.Labels("bind_client_batch_names_total",
			"iface", iface)),
		batchFallbacks: r.Counter(metrics.Labels("bind_client_batch_fallback_total",
			"iface", iface)),
	}
}

// count classifies a finished lookup into the right counter.
func (o clientObs) count(err error) {
	switch {
	case err == nil:
		o.ok.Inc()
	case isNotFound(err):
		o.notFound.Inc()
	default:
		o.errs.Inc()
	}
}

func isNotFound(err error) bool {
	var nf *NotFoundError
	return errors.As(err, &nf)
}

// NewStdClient creates a standard-interface client for the server at addr
// over the named transport ("udp" for the classic remote configuration).
// Additional replica addresses, tried in order when earlier endpoints are
// unhealthy, may follow.
func NewStdClient(net *transport.Network, transportName, addr string, replicas ...string) *StdClient {
	return &StdClient{
		net:           net,
		transportName: transportName,
		addrs:         append([]string{addr}, replicas...),
		obs:           newClientObs("std"),
		health:        health.NewSet(health.Config{Service: "bind-std"}),
	}
}

// SetHealth replaces the client's breaker configuration (clock, threshold,
// cooldown, metrics registry). Set before first use.
func (c *StdClient) SetHealth(cfg health.Config) {
	if cfg.Service == "" {
		cfg.Service = "bind-std"
	}
	c.health = health.NewSet(cfg)
}

// Lookup implements Lookuper.
func (c *StdClient) Lookup(ctx context.Context, name string, t RRType) (_ []RR, err error) {
	defer func() { c.obs.count(err) }()
	model := c.net.Model()
	q := &Message{ID: uint16(c.id.Add(1)), QName: name, QType: t}
	// Hand-coded request marshalling: base cost only (a question is a
	// zero-record message).
	simtime.Charge(ctx, model.HandMarshalBase)
	req, err := EncodeMessage(q)
	if err != nil {
		return nil, err
	}
	respBytes, err := c.call(ctx, req)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeMessage(respBytes)
	if err != nil {
		return nil, err
	}
	// Hand-coded response demarshalling, priced per answer record.
	marshal.ChargeRecords(ctx, model, marshal.StyleHand, len(resp.Answers))
	if resp.ID != q.ID {
		return nil, fmt.Errorf("bind: response ID %d does not match query %d", resp.ID, q.ID)
	}
	if resp.RCode != RCodeOK {
		return nil, &NotFoundError{Name: name, Type: t, RCode: resp.RCode}
	}
	return resp.Answers, nil
}

// call performs one exchange against the first live replica, failing over
// down the replica list when an endpoint proves unreachable. The handle's
// mutex guards only connection checkout (dialing included); the round trip
// itself runs outside it, so one slow lookup no longer serializes every
// goroutine sharing the client.
func (c *StdClient) call(ctx context.Context, req []byte) ([]byte, error) {
	var lastErr error
	for range c.addrs {
		conn, addr, err := c.checkout(ctx)
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		resp, err := conn.Call(ctx, req)
		if err == nil {
			c.health.Breaker(addr).Success()
			return resp, nil
		}
		// Drop the connection; the next call redials.
		c.drop(conn)
		var re *transport.RemoteError
		if errors.As(err, &re) {
			// A live server answering with an error: healthy endpoint,
			// nothing a replica would fix.
			c.health.Breaker(addr).Success()
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, err
		}
		c.health.Breaker(addr).Failure()
		lastErr = err
	}
	return nil, lastErr
}

// checkout returns the shared connection, dialing the first replica whose
// breaker admits a call when no connection is cached. A cached connection
// to an endpoint whose breaker has since opened is discarded, so traffic
// follows health, not connection affinity.
func (c *StdClient) checkout(ctx context.Context) (transport.Conn, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		if ok, _ := c.health.Breaker(c.connAddr).Allow(); ok {
			return c.conn, c.connAddr, nil
		}
		_ = c.conn.Close()
		c.conn, c.connAddr = nil, ""
	}
	tr, err := c.net.Transport(c.transportName)
	if err != nil {
		return nil, "", err
	}
	var lastErr error
	for _, addr := range c.addrs {
		ok, _ := c.health.Breaker(addr).Allow()
		if !ok {
			continue
		}
		conn, err := tr.Dial(ctx, addr)
		if err != nil {
			c.health.Breaker(addr).Failure()
			lastErr = err
			continue
		}
		c.conn, c.connAddr = conn, addr
		return conn, addr, nil
	}
	if lastErr == nil {
		lastErr = health.ErrNoLiveEndpoint
	}
	return nil, "", lastErr
}

// drop closes conn and forgets it if it is still the cached connection
// (a concurrent caller may have already replaced it).
func (c *StdClient) drop(conn transport.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn, c.connAddr = nil, ""
	}
	c.mu.Unlock()
	_ = conn.Close()
}

// Close releases the client's connection.
func (c *StdClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn, c.connAddr = nil, ""
		return err
	}
	return nil
}

// ---- HRPC-interface client (generated marshalling).

// HRPCClient speaks the HRPC interface to one (modified) BIND server. Its
// marshalling is priced at the generated-stub rates — the expensive path
// Table 3.2 measured — and it is the interface carrying dynamic updates
// and zone transfers.
type HRPCClient struct {
	c   *hrpc.Client
	b   hrpc.Binding
	obs clientObs

	// noBatch latches once the server reports the batch procedure
	// unavailable: later LookupBatch calls fan out as singles without
	// re-probing (see batch.go).
	noBatch atomic.Bool
	// noIxfr latches likewise for the incremental-transfer procedure:
	// against an old server every refresh goes straight to the full
	// Transfer (see subscribe.go).
	noIxfr atomic.Bool
}

// NewHRPCClient creates a client for the BIND HRPC interface bound at b.
func NewHRPCClient(client *hrpc.Client, b hrpc.Binding) *HRPCClient {
	return &HRPCClient{c: client, b: b, obs: newClientObs("hrpc")}
}

// Binding reports the binding in use.
func (c *HRPCClient) Binding() hrpc.Binding { return c.b }

// Lookup implements Lookuper.
func (c *HRPCClient) Lookup(ctx context.Context, name string, t RRType) (_ []RR, err error) {
	defer func() { c.obs.count(err) }()
	model := c.c.Network().Model()
	// Generated request marshalling.
	simtime.Charge(ctx, model.GenMarshalRequest)
	ret, err := c.c.Call(ctx, c.b, procQuery, marshal.StructV(
		marshal.Str(name), marshal.U32(uint32(t)),
	))
	if err != nil {
		return nil, err
	}
	rcode, err := ret.Items[0].AsU32()
	if err != nil {
		return nil, err
	}
	rrs, err := listToRRs(ret.Items[1])
	if err != nil {
		return nil, err
	}
	// Generated response demarshalling, per record (Table 3.2 pricing).
	marshal.ChargeRecords(ctx, model, marshal.StyleGenerated, len(rrs))
	if RCode(rcode) != RCodeOK {
		return nil, &NotFoundError{Name: name, Type: t, RCode: RCode(rcode)}
	}
	return rrs, nil
}

// Update applies a dynamic update.
func (c *HRPCClient) Update(ctx context.Context, zone string, op uint32, rr RR) (uint32, error) {
	model := c.c.Network().Model()
	simtime.Charge(ctx, model.GenMarshalRequest)
	marshal.ChargeRecords(ctx, model, marshal.StyleGenerated, 1) // the RR in the request
	ret, err := c.c.Call(ctx, c.b, procUpdate, marshal.StructV(
		marshal.Str(zone), marshal.U32(op), rrToValue(rr),
	))
	if err != nil {
		return 0, err
	}
	rcode, _ := ret.Items[0].AsU32()
	serial, _ := ret.Items[1].AsU32()
	if RCode(rcode) == RCodeNotOwner {
		return serial, &NotOwnerError{Name: rr.Name, Zone: zone}
	}
	if RCode(rcode) != RCodeOK {
		return serial, fmt.Errorf("bind: update refused: %s", RCode(rcode))
	}
	c.obs.updates.Inc()
	return serial, nil
}

// Transfer fetches the zone's full contents (the preloading mechanism).
// The per-record transfer cost is charged server-side.
func (c *HRPCClient) Transfer(ctx context.Context, zone string) (uint32, []RR, error) {
	model := c.c.Network().Model()
	simtime.Charge(ctx, model.GenMarshalRequest)
	ret, err := c.c.Call(ctx, c.b, procTransfer, marshal.StructV(marshal.Str(zone)))
	if err != nil {
		return 0, nil, err
	}
	rcode, _ := ret.Items[0].AsU32()
	serial, _ := ret.Items[1].AsU32()
	if RCode(rcode) != RCodeOK {
		return serial, nil, fmt.Errorf("bind: transfer refused: %s", RCode(rcode))
	}
	rrs, err := listToRRs(ret.Items[2])
	if err != nil {
		return serial, nil, err
	}
	c.obs.transfers.Inc()
	return serial, rrs, nil
}

// Serial fetches the zone's serial (cheap freshness probe).
func (c *HRPCClient) Serial(ctx context.Context, zone string) (uint32, error) {
	ret, err := c.c.Call(ctx, c.b, procSerial, marshal.StructV(marshal.Str(zone)))
	if err != nil {
		return 0, err
	}
	rcode, _ := ret.Items[0].AsU32()
	serial, _ := ret.Items[1].AsU32()
	if RCode(rcode) != RCodeOK {
		return 0, fmt.Errorf("bind: serial refused: %s", RCode(rcode))
	}
	return serial, nil
}

// ---- Caching resolver.

// CacheMode selects what form cached answers are kept in — the subject of
// Table 3.2.
type CacheMode int

// Cache modes.
const (
	// CacheDemarshalled keeps parsed records; a hit costs only the cache
	// probe (0.83 ms scale).
	CacheDemarshalled CacheMode = iota
	// CacheMarshalled keeps wire-form records and demarshals on every
	// access — the prototype's initial, surprisingly expensive choice
	// (11–26 ms per hit).
	CacheMarshalled
)

// String implements fmt.Stringer.
func (m CacheMode) String() string {
	if m == CacheMarshalled {
		return "marshalled"
	}
	return "demarshalled"
}

// Resolver wraps a Lookuper with a TTL answer cache. It is safe for
// concurrent use: the cache is sharded, and concurrent misses for the
// same key are coalesced into a single backend lookup (see flightGroup).
type Resolver struct {
	backend Lookuper
	model   *simtime.Model
	mode    CacheMode
	// style prices marshalled-mode hits: generated for the HRPC backend,
	// hand for the standard backend.
	style marshal.Style
	cache *cache.TTL[[]RR]
	// neg caches authoritative negative answers for negTTL; nil when
	// negative caching is disabled (the default).
	neg     *cache.TTL[*NotFoundError]
	negTTL  time.Duration
	flights flightGroup
	// demarshals counts marshalled-mode hit demarshals
	// (cache_demarshal_total{cache=...}); nil when uninstrumented.
	demarshals *metrics.Counter
	// negHits/negStores count negative-cache activity
	// (cache_negative_{hits,stores}_total{cache=...}).
	negHits, negStores *metrics.Counter
	// coalesced counts lookups that joined another caller's in-progress
	// backend fetch (cache_coalesced_total{cache=...}).
	coalesced *metrics.Counter
	// staleFor, when positive, lets Lookup answer from expired entries up
	// to that long past expiry when the backend is unreachable (RFC
	// 8767-style serve-stale). Zero disables degraded mode.
	staleFor time.Duration
	// refreshAhead, when in (0,1), triggers an asynchronous backend
	// re-fetch for a hit whose remaining lifetime has fallen below that
	// fraction of its original TTL, so hot entries are renewed before they
	// expire and the miss cost never lands on a caller. Zero disables it.
	refreshAhead float64
	// refreshing guards against piling up refreshes: at most one in-flight
	// background refresh per key.
	refreshing sync.Map
	// refreshes counts launched background refreshes
	// (cache_refresh_ahead_total{cache=...}); nil when uninstrumented.
	refreshes *metrics.Counter
	// pushActive, when set and returning true, reports that a live push
	// subscription covers this resolver's entries: the server notifies us
	// of every change, so timer-driven refresh-ahead would only re-fetch
	// data push already keeps fresh. Refresh-ahead resumes the moment the
	// subscription drops (fn returns false).
	pushActive atomic.Pointer[func() bool]
}

// ResolverConfig configures NewResolver.
type ResolverConfig struct {
	// Mode selects the cache entry form; default CacheDemarshalled.
	Mode CacheMode
	// Style prices marshalled-mode hits; default StyleGenerated.
	Style marshal.Style
	// Clock drives TTL expiry; default real time.
	Clock simtime.Clock
	// MaxEntries bounds the cache; 0 = unbounded.
	MaxEntries int
	// Shards pins the cache shard count: 0 picks automatically, 1
	// reproduces the single-mutex cache (the parallel benchmarks'
	// contention baseline).
	Shards int
	// NegativeTTL, when positive, caches authoritative NotFound answers
	// for that long, so repeated lookups of absent names stop re-querying
	// the backend ("negative answers dominate real resolver load").
	// Zero disables negative caching.
	NegativeTTL time.Duration
	// Metrics, with CacheName, exposes the cache's counters as
	// cache_*{cache=CacheName} series. Nil Metrics or empty CacheName
	// leaves the resolver uninstrumented.
	Metrics *metrics.Registry
	// CacheName labels this resolver's series (e.g. "meta").
	CacheName string
	// StaleFor, when positive, enables serve-stale degraded mode: if the
	// backend (every replica of it) is unreachable, Lookup may answer
	// from an expired cache entry up to StaleFor past its expiry. Served
	// answers count in cache_stale_served_total and in the request's
	// CallCounter. Zero keeps strict TTL semantics.
	StaleFor time.Duration
	// RefreshAhead, when in (0,1), enables refresh-ahead: a cache hit
	// whose remaining lifetime is below RefreshAhead×TTL still answers
	// immediately but also kicks off one asynchronous backend re-fetch
	// (per key) that re-installs the entry with a fresh TTL. The refresh
	// runs on a private discarded meter, so it never perturbs any
	// caller's simulated cost. Zero (the default) disables it.
	RefreshAhead float64
}

// NewResolver creates a caching resolver over backend.
func NewResolver(backend Lookuper, model *simtime.Model, cfg ResolverConfig) *Resolver {
	newCache := func() *cache.TTL[[]RR] {
		if cfg.Shards > 0 {
			return cache.NewWithShards[[]RR](cfg.Clock, cfg.MaxEntries, cfg.Shards)
		}
		return cache.New[[]RR](cfg.Clock, cfg.MaxEntries)
	}
	r := &Resolver{
		backend:  backend,
		model:    model,
		mode:     cfg.Mode,
		style:    cfg.Style,
		cache:    newCache(),
		negTTL:   cfg.NegativeTTL,
		staleFor: cfg.StaleFor,
	}
	if cfg.RefreshAhead > 0 && cfg.RefreshAhead < 1 {
		r.refreshAhead = cfg.RefreshAhead
	}
	if cfg.StaleFor > 0 {
		r.cache.SetStaleGrace(cfg.StaleFor)
	}
	if cfg.NegativeTTL > 0 {
		r.neg = cache.New[*NotFoundError](cfg.Clock, cfg.MaxEntries)
	}
	if cfg.CacheName != "" && cfg.Metrics.Enabled() {
		r.cache.Instrument(cfg.Metrics, cfg.CacheName)
		r.demarshals = cfg.Metrics.Counter(
			metrics.Labels("cache_demarshal_total", "cache", cfg.CacheName))
		r.coalesced = cfg.Metrics.Counter(
			metrics.Labels("cache_coalesced_total", "cache", cfg.CacheName))
		r.refreshes = cfg.Metrics.Counter(
			metrics.Labels("cache_refresh_ahead_total", "cache", cfg.CacheName))
		if r.neg != nil {
			r.negHits = cfg.Metrics.Counter(
				metrics.Labels("cache_negative_hits_total", "cache", cfg.CacheName))
			r.negStores = cfg.Metrics.Counter(
				metrics.Labels("cache_negative_stores_total", "cache", cfg.CacheName))
			neg := r.neg
			cfg.Metrics.GaugeFunc(
				metrics.Labels("cache_negative_entries", "cache", cfg.CacheName),
				func() int64 { return int64(neg.Len()) })
		}
	}
	return r
}

// cacheKey renders "name/type" without fmt's reflection or its
// interface-boxing allocations — this runs on every single lookup. The
// Builder's String() hands back its buffer without another copy, so the
// whole key costs one allocation.
func cacheKey(name string, t RRType) string {
	var sb strings.Builder
	sb.Grow(len(name) + 6) // '/' plus up to 5 digits of a uint16 type
	sb.WriteString(name)
	sb.WriteByte('/')
	var digits [5]byte
	sb.Write(strconv.AppendUint(digits[:0], uint64(t), 10))
	return sb.String()
}

// copyRRs returns a private copy of rrs, deep enough that callers and the
// cache cannot corrupt each other: the slice and each record's Data bytes
// are duplicated (everything else in an RR is immutable value data).
func copyRRs(rrs []RR) []RR {
	if rrs == nil {
		return nil
	}
	out := make([]RR, len(rrs))
	copy(out, rrs)
	for i := range out {
		if out[i].Data != nil {
			out[i].Data = append([]byte(nil), out[i].Data...)
		}
	}
	return out
}

// Lookup implements Lookuper with caching. Hits are priced by cache mode;
// misses go to the backend — concurrent misses for one key share a single
// backend lookup, with each caller charged the full simulated cost — and
// are cached under the answer set's minimum TTL. Returned slices are
// private copies; mutating them cannot corrupt the cache.
func (r *Resolver) Lookup(ctx context.Context, name string, t RRType) ([]RR, error) {
	cname, err := CanonicalName(name)
	if err != nil {
		return nil, err
	}
	key := cacheKey(cname, t)
	if rrs, remaining, original, ok := r.cache.GetWithTTL(key); ok {
		r.chargeHit(ctx, len(rrs))
		r.maybeRefreshAhead(key, cname, t, remaining, original)
		return copyRRs(rrs), nil
	}
	if r.neg != nil {
		if nf, ok := r.neg.Get(key); ok {
			// A remembered authoritative "no": priced as a probe of an
			// empty answer, like any other hit.
			simtime.Charge(ctx, r.model.CacheHit(0))
			r.negHits.Inc()
			return nil, nf
		}
	}
	metrics.CallCounterFrom(ctx).AddMiss()
	rrs, cost, joined, err := r.flights.do(ctx, key, func(ctx context.Context) ([]RR, error) {
		rrs, err := r.backend.Lookup(ctx, cname, t)
		if err != nil {
			var nf *NotFoundError
			if r.neg != nil && errors.As(err, &nf) {
				r.neg.Put(key, nf, r.negTTL)
				r.negStores.Inc()
			}
			return nil, err
		}
		// The cache keeps its own copy so later caller mutations of the
		// returned slice cannot corrupt it.
		r.cache.Put(key, copyRRs(rrs), time.Duration(MinTTL(rrs))*time.Second)
		return rrs, nil
	})
	if joined {
		metrics.CallCounterFrom(ctx).AddCoalesced()
		r.coalesced.Inc()
	}
	// Each waiter pays the full lookup, exactly as if it had gone to the
	// backend itself — coalescing reduces backend load, not the simulated
	// cost any one client experiences.
	simtime.Charge(ctx, cost)
	if err != nil {
		if rrs, ok := r.staleLookup(ctx, key, err); ok {
			return rrs, nil
		}
		return nil, err
	}
	if joined {
		rrs = copyRRs(rrs)
	}
	return rrs, nil
}

// maybeRefreshAhead launches one asynchronous backend re-fetch for a hit
// entry nearing expiry. The refresh runs outside any caller's request: it
// gets a Background context with a private meter whose cost is discarded,
// so simulated time is untouched, and a per-key guard keeps concurrent
// hits on the same cooling entry from stampeding the backend. A failed
// refresh is simply dropped — the entry expires on schedule and the next
// miss retries synchronously.
func (r *Resolver) maybeRefreshAhead(key, cname string, t RRType, remaining, original time.Duration) {
	if r.refreshAhead <= 0 || original <= 0 {
		return
	}
	if fn := r.pushActive.Load(); fn != nil && (*fn)() {
		// A live push subscription already keeps these entries fresh;
		// refreshing on a timer too would double-fetch every hot name.
		return
	}
	if remaining > time.Duration(float64(original)*r.refreshAhead) {
		return
	}
	if _, inFlight := r.refreshing.LoadOrStore(key, struct{}{}); inFlight {
		return
	}
	r.refreshes.Inc()
	go func() {
		defer r.refreshing.Delete(key)
		ctx := simtime.WithMeter(context.Background(), simtime.NewMeter())
		rrs, err := r.backend.Lookup(ctx, cname, t)
		if err != nil {
			return
		}
		r.cache.Put(key, copyRRs(rrs), time.Duration(MinTTL(rrs))*time.Second)
	}()
}

// SetPushCovered suppresses refresh-ahead while fn reports a live push
// subscription covering this resolver (typically Subscriber.Active).
// Push and refresh-ahead are complementary freshness mechanisms; this
// keeps them from both fetching the same entry — push wins while it
// flows, the timer takes over when it doesn't.
func (r *Resolver) SetPushCovered(fn func() bool) {
	if fn == nil {
		r.pushActive.Store(nil)
		return
	}
	r.pushActive.Store(&fn)
}

// staleLookup is the serve-stale fallback: when a backend lookup failed
// because the backend was unreachable (not a NotFound, not a remote
// fault), answer from an expired cache entry still within the stale
// grace. The hit is priced like any other cache hit, counted in
// cache_stale_served_total (via the cache's stats) and flagged on the
// request's CallCounter so callers can mark the answer as possibly out
// of date.
func (r *Resolver) staleLookup(ctx context.Context, key string, cause error) ([]RR, bool) {
	if r.staleFor <= 0 || !hrpc.Unavailable(cause) {
		return nil, false
	}
	rrs, ok := r.cache.GetStale(key)
	if !ok {
		return nil, false
	}
	r.chargeHit(ctx, len(rrs))
	metrics.CallCounterFrom(ctx).AddStale()
	return copyRRs(rrs), true
}

func (r *Resolver) chargeHit(ctx context.Context, n int) {
	switch r.mode {
	case CacheMarshalled:
		// Every access pays a full demarshal of the stored answer.
		marshal.ChargeRecords(ctx, r.model, r.style, n)
		simtime.Charge(ctx, r.model.CacheHit(0)) // plus the probe itself
		r.demarshals.Inc()
	default:
		simtime.Charge(ctx, r.model.CacheHit(n))
	}
}

// Preload bulk-installs records (grouped by name/type) with their own
// TTLs — the zone-transfer preloading path. The cache stores private
// copies, so later mutation of the caller's records (or their Data
// bytes) cannot corrupt cached answers.
func (r *Resolver) Preload(rrs []RR) {
	groups := make(map[string][]RR)
	for _, rr := range rrs {
		k := cacheKey(rr.Name, rr.Type)
		groups[k] = append(groups[k], rr)
	}
	for k, g := range groups {
		r.cache.Put(k, copyRRs(g), time.Duration(MinTTL(g))*time.Second)
	}
}

// Stats exposes the cache counters.
func (r *Resolver) Stats() cache.Stats { return r.cache.Stats() }

// NegativeStats exposes the negative cache's counters (zero when negative
// caching is disabled).
func (r *Resolver) NegativeStats() cache.Stats {
	if r.neg == nil {
		return cache.Stats{}
	}
	return r.neg.Stats()
}

// LockWaits reports contended shard-lock acquisitions on the answer cache.
func (r *Resolver) LockWaits() int64 { return r.cache.LockWaits() }

// Invalidate drops the cached answer — positive and negative — for one
// (name, type), so the next Lookup goes to the backend. Concurrent
// missers after an Invalidate still coalesce into a single backend
// fetch through the resolver's singleflight group; the shard-map
// refresh path relies on exactly that to turn an epoch bump under many
// callers into one refetch instead of a stampede.
func (r *Resolver) Invalidate(name string, t RRType) {
	cname, err := CanonicalName(name)
	if err != nil {
		return
	}
	key := cacheKey(cname, t)
	r.cache.Delete(key)
	if r.neg != nil {
		r.neg.Delete(key)
	}
}

// Purge empties the cache, the negative cache included.
func (r *Resolver) Purge() {
	r.cache.Purge()
	if r.neg != nil {
		r.neg.Purge()
	}
}

// Sweep proactively removes expired cache entries (negative ones
// included), reporting how many were dropped.
func (r *Resolver) Sweep() int {
	n := r.cache.Sweep()
	if r.neg != nil {
		n += r.neg.Sweep()
	}
	return n
}
