package bind

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"hns/internal/metrics"
	"hns/internal/store"
)

// Durable is the ZoneStore that makes a bindd crash-safe: every zone
// mutation is appended to a write-ahead log before it is acknowledged,
// and every SnapshotEvery records the full zone set is checkpointed so
// recovery replays a bounded suffix. Opening a Durable recovers exactly
// the acknowledged-update prefix: the newest valid snapshot is loaded,
// the WAL is replayed past it (a torn tail — the unacked final write of
// a crash — is discarded), and each replayed update pins the zone serial
// the original caller saw.
//
// Snapshot payloads are the zone-file master format, sectioned per zone:
//
//	zone <origin> serial <serial> records <n>
//	<n WriteZone lines>
//
// so a snapshot is human-readable and reuses the exact ParseZoneFile
// round trip the zone-file loader is tested against.

// DurableConfig configures OpenDurable.
type DurableConfig struct {
	// FS is the directory holding WAL segments and snapshots
	// (store.DirFS in the daemon; MemFS/FaultFS in the crash harness).
	FS store.FS
	// Name labels this store's metric series; empty disables metrics.
	Name string
	// Fsync is the WAL flush policy (default store.SyncAlways — only
	// that policy gives the exact-acked-prefix guarantee).
	Fsync store.SyncPolicy
	// FsyncInterval is the flush period under SyncInterval.
	FsyncInterval time.Duration
	// SnapshotEvery checkpoints after this many journal records
	// (0 disables snapshots: recovery replays the whole log).
	SnapshotEvery int
	// SegmentBytes sizes WAL segments (0 = store default).
	SegmentBytes int64
}

// RecoveredZone is one zone's state as recovered from disk.
type RecoveredZone struct {
	Origin  string
	Serial  uint32
	Records []RR
}

// RecoveryStats describes what opening the store had to do.
type RecoveryStats struct {
	// SnapshotLSN is the checkpoint recovery started from (0 = none).
	SnapshotLSN uint64
	// SnapshotsSkipped counts invalid (bitrotted/partial) snapshots
	// passed over to find a valid one.
	SnapshotsSkipped int
	// Replayed counts WAL records applied past the snapshot.
	Replayed int
	// TornBytes is the torn-tail length discarded (unacked final write).
	TornBytes int64
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// Durable implements ZoneStore over a store.Log plus snapshots.
type Durable struct {
	cfg DurableConfig
	log *store.Log

	mu        sync.Mutex
	srv       *Server // snapshot source once attached
	recovered map[string]*Zone
	order     []string // recovery order of origins, deterministic output
	sinceSnap int
	snapLSN   uint64
	stats     RecoveryStats
	closed    bool
}

// OpenDurable opens (or initializes) the store under cfg.FS and recovers
// zone state: newest valid snapshot, then WAL replay. Interior log or
// snapshot damage is store.ErrCorrupt; a torn WAL tail is tolerated and
// reported in Stats.
func OpenDurable(cfg DurableConfig) (*Durable, error) {
	t0 := time.Now()
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = 100 * time.Millisecond
	}
	d := &Durable{cfg: cfg, recovered: make(map[string]*Zone)}

	snap, err := store.LatestSnapshot(cfg.FS)
	if err != nil {
		return nil, err
	}
	d.snapLSN = snap.LSN
	d.stats.SnapshotLSN = snap.LSN
	d.stats.SnapshotsSkipped = snap.Skipped
	if snap.LSN > 0 {
		if err := d.loadSnapshot(snap.Payload); err != nil {
			return nil, err
		}
	}

	log, err := store.OpenLog(cfg.FS, store.LogOptions{
		Name:         cfg.Name,
		Sync:         cfg.Fsync,
		SyncEvery:    cfg.FsyncInterval,
		SegmentBytes: cfg.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	d.log = log
	lst := log.Stats()
	d.stats.TornBytes = lst.TornBytes
	if lst.LastLSN > snap.LSN && lst.FirstLSN > snap.LSN+1 {
		log.Close()
		return nil, fmt.Errorf("%w: wal starts at lsn %d but snapshot covers only %d",
			store.ErrCorrupt, lst.FirstLSN, snap.LSN)
	}
	if err := log.Replay(snap.LSN, d.apply); err != nil {
		log.Close()
		return nil, err
	}
	d.stats.Elapsed = time.Since(t0)
	if cfg.Name != "" {
		reg := metrics.Default()
		reg.Gauge(metrics.Labels("store_recovery_replayed", "store", cfg.Name)).
			Set(int64(d.stats.Replayed))
		reg.Gauge(metrics.Labels("store_recovery_torn_bytes", "store", cfg.Name)).
			Set(d.stats.TornBytes)
		reg.Gauge(metrics.Labels("store_recovery_ms", "store", cfg.Name)).
			Set(d.stats.Elapsed.Milliseconds())
		reg.Gauge(metrics.Labels("store_snapshot_skipped", "store", cfg.Name)).
			Set(int64(snap.Skipped))
	}
	return d, nil
}

// loadSnapshot parses the sectioned zone-file payload into zones.
func (d *Durable) loadSnapshot(payload []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(payload))
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 6 || f[0] != "zone" || f[2] != "serial" || f[4] != "records" {
			return fmt.Errorf("%w: bad snapshot section header %q", store.ErrCorrupt, sc.Text())
		}
		serial, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return fmt.Errorf("%w: bad snapshot serial %q", store.ErrCorrupt, f[3])
		}
		n, err := strconv.Atoi(f[5])
		if err != nil || n < 0 {
			return fmt.Errorf("%w: bad snapshot record count %q", store.ErrCorrupt, f[5])
		}
		var lines strings.Builder
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return fmt.Errorf("%w: snapshot section %s truncated at record %d", store.ErrCorrupt, f[1], i)
			}
			lines.WriteString(sc.Text())
			lines.WriteByte('\n')
		}
		rrs, err := ParseZoneFile(strings.NewReader(lines.String()))
		if err != nil {
			return fmt.Errorf("%w: snapshot zone %s: %v", store.ErrCorrupt, f[1], err)
		}
		z, err := d.zone(f[1])
		if err != nil {
			return fmt.Errorf("%w: snapshot zone %q: %v", store.ErrCorrupt, f[1], err)
		}
		if err := z.Replace(rrs, uint32(serial)); err != nil {
			return fmt.Errorf("%w: snapshot zone %s: %v", store.ErrCorrupt, f[1], err)
		}
	}
	return sc.Err()
}

// zone finds or creates the recovery-time zone for origin.
func (d *Durable) zone(origin string) (*Zone, error) {
	if z, ok := d.recovered[origin]; ok {
		return z, nil
	}
	z, err := NewZone(origin, true)
	if err != nil {
		return nil, err
	}
	d.recovered[z.Origin()] = z
	d.order = append(d.order, z.Origin())
	return z, nil
}

// apply replays one journal record into the recovery zones through the
// real Zone mutation paths, so replay reproduces exactly the semantics
// (CNAME conflicts, duplicate refresh, wildcard removal) the original
// call had.
func (d *Durable) apply(lsn uint64, payload []byte) error {
	rec, err := decodeJournal(payload)
	if err != nil {
		return fmt.Errorf("%w: lsn %d: %v", store.ErrCorrupt, lsn, err)
	}
	_, existed := d.recovered[rec.zone]
	z, err := d.zone(rec.zone)
	if err != nil {
		return fmt.Errorf("%w: lsn %d: %v", store.ErrCorrupt, lsn, err)
	}
	switch rec.kind {
	case journalKindUpdate:
		// Serials an acked update reported are strictly increasing per
		// zone; a regression in the journal is damage, not history.
		if existed && rec.serial <= z.Serial() {
			return fmt.Errorf("%w: lsn %d: serial %d not after %d for %s",
				store.ErrCorrupt, lsn, rec.serial, z.Serial(), rec.zone)
		}
		switch rec.op {
		case UpdateAdd:
			err = z.Add(rec.rr)
		case UpdateRemove:
			err = z.Remove(rec.rr)
		default:
			err = fmt.Errorf("unknown op %d", rec.op)
		}
		if err != nil {
			return fmt.Errorf("%w: lsn %d: replaying %s: %v", store.ErrCorrupt, lsn, rec.zone, err)
		}
	case journalKindReplace:
		if err := z.Replace(rec.rrs, rec.serial); err != nil {
			return fmt.Errorf("%w: lsn %d: replaying %s: %v", store.ErrCorrupt, lsn, rec.zone, err)
		}
	}
	// Pin the serial the original caller was told, whatever path the
	// in-memory zone took to get here.
	z.ForceSerial(rec.serial)
	d.stats.Replayed++
	return nil
}

// Zones returns the recovered zone states, in first-seen order.
func (d *Durable) Zones() []RecoveredZone {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]RecoveredZone, 0, len(d.order))
	for _, origin := range d.order {
		z := d.recovered[origin]
		out = append(out, RecoveredZone{Origin: origin, Serial: z.Serial(), Records: z.All()})
	}
	return out
}

// Empty reports whether the store held no state at all (fresh data dir).
func (d *Durable) Empty() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapLSN == 0 && d.log.LastLSN() == 0
}

// Stats reports what recovery did.
func (d *Durable) Stats() RecoveryStats { return d.stats }

// LastLSN reports the newest journaled record's LSN.
func (d *Durable) LastLSN() uint64 { return d.log.LastLSN() }

// LogStats exposes the underlying WAL's shape.
func (d *Durable) LogStats() store.LogStats { return d.log.Stats() }

// Attach makes srv the snapshot source and routes its mutations through
// this journal (srv.SetJournal). Call it after overlaying the recovered
// state onto srv's zones; the recovery-time zones are released.
func (d *Durable) Attach(srv *Server) {
	d.mu.Lock()
	d.srv = srv
	d.recovered = nil
	d.order = nil
	d.mu.Unlock()
	srv.SetJournal(d)
}

// LogUpdate implements ZoneStore: append one update record, then maybe
// checkpoint. The record is durable per the fsync policy when this
// returns nil; an error means the caller must not acknowledge.
func (d *Durable) LogUpdate(zone string, op uint32, rr RR, serial uint32) error {
	return d.append(encodeUpdate(zone, op, rr, serial))
}

// LogReplace implements ZoneStore for bulk loads and transfer applies.
func (d *Durable) LogReplace(zone string, serial uint32, rrs []RR) error {
	return d.append(encodeReplace(zone, serial, rrs))
}

func (d *Durable) append(payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("bind: journal closed")
	}
	if _, err := d.log.Append(payload); err != nil {
		return err
	}
	d.sinceSnap++
	if d.cfg.SnapshotEvery > 0 && d.sinceSnap >= d.cfg.SnapshotEvery {
		if err := d.snapshotLocked(); err != nil {
			// The appended record is safe; a failed checkpoint only means
			// recovery replays more. Retry at the next interval.
			return nil
		}
	}
	return nil
}

// Snapshot forces a checkpoint now (the daemon calls this on clean
// shutdown so restart recovery is instant).
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

// snapshotLocked checkpoints the attached server's zones at the current
// WAL position, then prunes covered segments and older snapshots. d.mu
// held; callers of journaled mutations are serialized by the server's
// journal lock, so the zone set is consistent with LastLSN.
func (d *Durable) snapshotLocked() error {
	if d.srv == nil {
		return fmt.Errorf("bind: no server attached for snapshot")
	}
	var buf bytes.Buffer
	for _, origin := range d.srv.ZoneOrigins() {
		z := d.srv.Zone(origin)
		if z == nil {
			continue
		}
		rrs := z.All()
		fmt.Fprintf(&buf, "zone %s serial %d records %d\n", origin, z.Serial(), len(rrs))
		if err := WriteZone(&buf, rrs); err != nil {
			return err
		}
	}
	lsn := d.log.LastLSN()
	if err := store.WriteSnapshot(d.cfg.FS, d.cfg.Name, lsn, buf.Bytes()); err != nil {
		return err
	}
	d.sinceSnap = 0
	d.snapLSN = lsn
	if err := d.log.Prune(lsn); err != nil {
		return err
	}
	return store.PruneSnapshots(d.cfg.FS, lsn)
}

// Sync forces the WAL to stable storage regardless of policy.
func (d *Durable) Sync() error { return d.log.Sync() }

// Close flushes and releases the store.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.log.Close()
}
