package bind

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hns/internal/simtime"
	"hns/internal/store"
)

// The crash-loop harness: drive a durable bindd through a seeded update
// storm, kill it at a seeded disk-fault point (torn write, clean write
// cut, snapshot-rename crash), restart from the surviving disk image,
// and assert the recovered state is EXACTLY the acknowledged prefix —
// no acked update lost, no unacked update resurrected, serials pinned.
//
// A shadow pair of plain in-memory zones receives every acknowledged op
// and nothing else; FormatZoneFile makes state comparison canonical.

const (
	crashZoneA = "hns"
	crashZoneB = "meta.hns"
)

// crashShadow tracks the acked state of both zones.
type crashShadow struct {
	zones map[string]*Zone
}

func newCrashShadow(t *testing.T) *crashShadow {
	t.Helper()
	s := &crashShadow{zones: make(map[string]*Zone)}
	for _, origin := range []string{crashZoneB, crashZoneA} { // longest first, as a Server sorts
		z, err := NewZone(origin, true)
		if err != nil {
			t.Fatal(err)
		}
		s.zones[origin] = z
	}
	return s
}

// state renders both zones canonically, serials included.
func (s *crashShadow) state() string {
	var b strings.Builder
	for _, origin := range []string{crashZoneA, crashZoneB} {
		z := s.zones[origin]
		fmt.Fprintf(&b, "zone %s serial %d\n%s", origin, z.Serial(), FormatZoneFile(z.All()))
	}
	return b.String()
}

// newCrashServer builds a two-zone durable server over fs, overlaying
// recovered state — the bindd startup sequence.
func newCrashServer(t *testing.T, fs store.FS, cfg DurableConfig) (*Server, *Durable, error) {
	t.Helper()
	cfg.FS = fs
	d, err := OpenDurable(cfg)
	if err != nil {
		return nil, nil, err
	}
	srv := NewServer("fiji", simtime.Default())
	for _, origin := range []string{crashZoneA, crashZoneB} {
		z, err := NewZone(origin, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.AddZone(z); err != nil {
			t.Fatal(err)
		}
	}
	for _, rz := range d.Zones() {
		target := srv.Zone(rz.Origin)
		if target == nil {
			t.Fatalf("recovered unknown zone %q", rz.Origin)
		}
		if err := target.Replace(rz.Records, rz.Serial); err != nil {
			t.Fatalf("overlay %s: %v", rz.Origin, err)
		}
		target.ForceSerial(rz.Serial)
	}
	d.Attach(srv)
	return srv, d, nil
}

// serverState renders the server's two zones the same way the shadow does.
func serverState(srv *Server) string {
	var b strings.Builder
	for _, origin := range []string{crashZoneA, crashZoneB} {
		z := srv.Zone(origin)
		fmt.Fprintf(&b, "zone %s serial %d\n%s", origin, z.Serial(), FormatZoneFile(z.All()))
	}
	return b.String()
}

// stormOp applies one seeded op to the durable server and, iff it was
// acknowledged, to the shadow. Reports whether the disk has crashed.
func stormOp(t *testing.T, rng *rand.Rand, srv *Server, shadow *crashShadow) (crashed bool) {
	t.Helper()
	origin := crashZoneA
	if rng.Intn(3) == 0 {
		origin = crashZoneB
	}
	var op uint32 = UpdateAdd
	rr := A(fmt.Sprintf("h%d.%s", rng.Intn(30), origin), fmt.Sprintf("10.0.%d.1", rng.Intn(200)), 60)
	if rng.Intn(10) < 3 {
		op = UpdateRemove
		rr = RR{Name: fmt.Sprintf("h%d.%s", rng.Intn(30), origin), Type: TypeA} // wildcard remove
	}
	rcode, serial, err := srv.Update(context.Background(), origin, op, rr)
	if errors.Is(err, store.ErrCrashed) {
		return true
	}
	if rcode != RCodeOK {
		return false // semantic refusal (e.g. removing a missing name); not acked, keep going
	}
	sz := shadow.zones[origin]
	if op == UpdateAdd {
		err = sz.Add(rr)
	} else {
		err = sz.Remove(rr)
	}
	if err != nil {
		t.Fatalf("shadow diverged applying acked op: %v", err)
	}
	if sz.Serial() != serial {
		t.Fatalf("acked serial %d but shadow at %d", serial, sz.Serial())
	}
	return false
}

// TestCrashRecoveryStorm is the required 100+-point crash matrix: one
// sub-run per seeded fault point.
func TestCrashRecoveryStorm(t *testing.T) {
	const points = 120
	cfg := DurableConfig{Fsync: store.SyncAlways, SnapshotEvery: 7, SegmentBytes: 512}
	for point := 0; point < points; point++ {
		point := point
		t.Run(fmt.Sprintf("point-%03d", point), func(t *testing.T) {
			mem := store.NewMemFS()
			plan := store.NewFaultPlan(int64(1000 + point))
			switch {
			case point%10 == 9:
				// Every tenth point: the crash lands on a snapshot's
				// atomic rename instead of a WAL write.
				plan.CrashOnRename(1 + (point/10)%3)
			default:
				plan.CrashAfterWrites(1+point, point%2 == 0)
			}
			srv, d, err := newCrashServer(t, store.NewFaultFS(mem, plan), cfg)
			if err != nil {
				t.Fatalf("fresh open failed: %v", err)
			}
			shadow := newCrashShadow(t)
			rng := rand.New(rand.NewSource(int64(77 * (point + 1))))
			for i := 0; i < 200; i++ {
				if stormOp(t, rng, srv, shadow) {
					break
				}
			}
			if !plan.Crashed() {
				t.Fatalf("fault point %d never fired in a 200-op storm", point)
			}
			d.Close() // the dying process's half-close; errors irrelevant

			// Restart from the surviving disk image, faults gone.
			srv2, d2, err := newCrashServer(t, mem, cfg)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer d2.Close()
			if got, want := serverState(srv2), shadow.state(); got != want {
				t.Fatalf("recovered state is not the acked prefix:\n--- recovered\n%s--- acked\n%s", got, want)
			}
		})
	}
}

// TestCrashRecoveryBitrot layers read-path bitrot over recovery: for
// each seed the reopened store must either refuse (ErrCorrupt — acked
// data is damaged and silence would be loss) or recover a state that
// exactly matches some acked prefix of the storm.
func TestCrashRecoveryBitrot(t *testing.T) {
	cfg := DurableConfig{Fsync: store.SyncAlways, SnapshotEvery: 9, SegmentBytes: 384}
	for seed := int64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			mem := store.NewMemFS()
			srv, d, err := newCrashServer(t, mem, cfg)
			if err != nil {
				t.Fatal(err)
			}
			shadow := newCrashShadow(t)
			prefixes := []string{shadow.state()}
			rng := rand.New(rand.NewSource(31 * seed))
			for i := 0; i < 60; i++ {
				if stormOp(t, rng, srv, shadow) {
					t.Fatal("clean storm crashed")
				}
				prefixes = append(prefixes, shadow.state())
			}
			d.Close()

			plan := store.NewFaultPlan(seed)
			plan.BitrotRead(int(seed % 7))
			srv2, d2, err := newCrashServer(t, store.NewFaultFS(mem, plan), cfg)
			if err != nil {
				if !errors.Is(err, store.ErrCorrupt) {
					t.Fatalf("recovery under bitrot: %v, want ErrCorrupt or success", err)
				}
				return // detected: the required outcome for damaged acked data
			}
			defer d2.Close()
			got := serverState(srv2)
			for _, p := range prefixes {
				if got == p {
					return
				}
			}
			t.Fatalf("recovered state under bitrot matches no acked prefix:\n%s", got)
		})
	}
}

// TestCrashRecoveryIdempotent restarts twice from the same image: both
// recoveries must agree (recovery itself mutates nothing it shouldn't).
func TestCrashRecoveryIdempotent(t *testing.T) {
	cfg := DurableConfig{Fsync: store.SyncAlways, SnapshotEvery: 5, SegmentBytes: 256}
	mem := store.NewMemFS()
	plan := store.NewFaultPlan(424242)
	plan.CrashAfterWrites(33, true)
	srv, d, err := newCrashServer(t, store.NewFaultFS(mem, plan), cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadow := newCrashShadow(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if stormOp(t, rng, srv, shadow) {
			break
		}
	}
	d.Close()

	srvA, dA, err := newCrashServer(t, mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stateA := serverState(srvA)
	dA.Close()
	srvB, dB, err := newCrashServer(t, mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dB.Close()
	if stateB := serverState(srvB); stateA != stateB {
		t.Fatalf("recovery not idempotent:\n--- first\n%s--- second\n%s", stateA, stateB)
	}
	if stateA != shadow.state() {
		t.Fatalf("recovered state drifted from acked prefix")
	}
}
