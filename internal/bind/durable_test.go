package bind

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hns/internal/simtime"
	"hns/internal/store"
)

// openDurableServer builds a Server with one updatable zone over fs and
// attaches a Durable journal, overlaying any recovered state first —
// the same sequence bindd runs at startup.
func openDurableServer(t *testing.T, fs store.FS, origin string, cfg DurableConfig) (*Server, *Durable) {
	t.Helper()
	cfg.FS = fs
	d, err := OpenDurable(cfg)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	srv := NewServer("fiji", simtime.Default())
	z, err := NewZone(origin, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddZone(z); err != nil {
		t.Fatal(err)
	}
	for _, rz := range d.Zones() {
		target := srv.Zone(rz.Origin)
		if target == nil {
			t.Fatalf("recovered unknown zone %s", rz.Origin)
		}
		if err := target.Replace(rz.Records, rz.Serial); err != nil {
			t.Fatalf("overlay %s: %v", rz.Origin, err)
		}
	}
	d.Attach(srv)
	return srv, d
}

func TestDurableUpdateSurvivesRestart(t *testing.T) {
	fs := NewCrashFS(t)
	srv, d := openDurableServer(t, fs, "hns", DurableConfig{})
	ctx := context.Background()
	var lastSerial uint32
	for i := 0; i < 20; i++ {
		rcode, serial, err := srv.Update(ctx, "hns", UpdateAdd, A(fmt.Sprintf("h%d.hns", i), fmt.Sprintf("10.0.0.%d", i), 60))
		if err != nil || rcode != RCodeOK {
			t.Fatalf("update %d: %v %v", i, rcode, err)
		}
		if serial <= lastSerial {
			t.Fatalf("serial not monotonic: %d after %d", serial, lastSerial)
		}
		lastSerial = serial
	}
	if rcode, _, err := srv.Update(ctx, "hns", UpdateRemove, RR{Name: "h3.hns", Type: TypeA}); err != nil || rcode != RCodeOK {
		t.Fatalf("remove: %v %v", rcode, err)
	}
	want := srv.Zone("hns").All()
	d.Close()

	srv2, d2 := openDurableServer(t, fs, "hns", DurableConfig{})
	defer d2.Close()
	z := srv2.Zone("hns")
	if z.Serial() != lastSerial+1 {
		t.Fatalf("recovered serial %d, want %d", z.Serial(), lastSerial+1)
	}
	got := z.All()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) || got[i].TTL != want[i].TTL {
			t.Fatalf("record %d: got %v want %v", i, got[i], want[i])
		}
	}
	if st := d2.Stats(); st.Replayed != 21 {
		t.Fatalf("replayed %d, want 21: %+v", st.Replayed, st)
	}
}

// NewCrashFS returns a MemFS (the crash harness's disk image); a helper
// so durable tests read naturally.
func NewCrashFS(t *testing.T) *store.MemFS {
	t.Helper()
	return store.NewMemFS()
}

func TestDurableLoadRecordsJournaled(t *testing.T) {
	fs := NewCrashFS(t)
	srv, d := openDurableServer(t, fs, "cs.washington.edu", DurableConfig{})
	if !d.Empty() {
		t.Fatal("fresh store not empty")
	}
	rrs := []RR{
		A("fiji.cs.washington.edu", "10.0.0.1", 600),
		HINFO("fiji.cs.washington.edu", "MicroVAX-II/Unix", 600),
	}
	if err := srv.LoadRecords(rrs); err != nil {
		t.Fatal(err)
	}
	d.Close()

	srv2, d2 := openDurableServer(t, fs, "cs.washington.edu", DurableConfig{})
	defer d2.Close()
	if d2.Empty() {
		t.Fatal("store empty after journaled load")
	}
	if n := srv2.Zone("cs.washington.edu").Count(); n != 2 {
		t.Fatalf("recovered %d records, want 2", n)
	}
}

func TestDurableSnapshotBoundsReplay(t *testing.T) {
	fs := NewCrashFS(t)
	srv, d := openDurableServer(t, fs, "hns", DurableConfig{SnapshotEvery: 5, SegmentBytes: 256})
	ctx := context.Background()
	for i := 0; i < 23; i++ {
		if _, _, err := srv.Update(ctx, "hns", UpdateAdd, A(fmt.Sprintf("h%d.hns", i), "10.0.0.1", 60)); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	srv2, d2 := openDurableServer(t, fs, "hns", DurableConfig{SnapshotEvery: 5, SegmentBytes: 256})
	defer d2.Close()
	st := d2.Stats()
	// 23 updates with a checkpoint every 5: the snapshot covers 20, so
	// recovery replays only the last 3.
	if st.SnapshotLSN != 20 || st.Replayed != 3 {
		t.Fatalf("recovery stats %+v, want snapshot at 20 and 3 replayed", st)
	}
	if n := srv2.Zone("hns").Count(); n != 23 {
		t.Fatalf("recovered %d records, want 23", n)
	}
	// Checkpoints prune covered WAL segments.
	if ls := d2.LogStats(); ls.FirstLSN > 21 {
		t.Fatalf("pruned too far: %+v", ls)
	}
}

func TestDurableTornTailDropsUnacked(t *testing.T) {
	fs := NewCrashFS(t)
	srv, d := openDurableServer(t, fs, "hns", DurableConfig{})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, _, err := srv.Update(ctx, "hns", UpdateAdd, A(fmt.Sprintf("h%d.hns", i), "10.0.0.1", 60)); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	// Simulate a crash mid-append: half a frame at the log's tail.
	f, err := fs.Append("wal-0000000000000001.log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 40, 1, 2})
	f.Close()

	srv2, d2 := openDurableServer(t, fs, "hns", DurableConfig{})
	defer d2.Close()
	st := d2.Stats()
	if st.TornBytes != 6 || st.Replayed != 5 {
		t.Fatalf("recovery stats %+v, want 6 torn bytes and 5 replayed", st)
	}
	if n := srv2.Zone("hns").Count(); n != 5 {
		t.Fatalf("recovered %d records, want 5 (torn record resurrected?)", n)
	}
}

func TestDurableInteriorCorruptionRefusesSilentLoss(t *testing.T) {
	fs := NewCrashFS(t)
	srv, d := openDurableServer(t, fs, "hns", DurableConfig{})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, _, err := srv.Update(ctx, "hns", UpdateAdd, A(fmt.Sprintf("h%d.hns", i), "10.0.0.1", 60)); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	if err := fs.Corrupt("wal-0000000000000001.log", 12); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(DurableConfig{FS: fs}); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("open over corrupt interior: %v, want ErrCorrupt", err)
	}
}

func TestDurableJournalFailureMeansNoAck(t *testing.T) {
	mem := NewCrashFS(t)
	plan := store.NewFaultPlan(5)
	ffs := store.NewFaultFS(mem, plan)
	srv, d := openDurableServer(t, ffs, "hns", DurableConfig{})
	defer d.Close()
	ctx := context.Background()
	if _, _, err := srv.Update(ctx, "hns", UpdateAdd, A("a.hns", "10.0.0.1", 60)); err != nil {
		t.Fatal(err)
	}
	plan.CrashAfterWrites(1, true)
	rcode, _, err := srv.Update(ctx, "hns", UpdateAdd, A("b.hns", "10.0.0.2", 60))
	if err == nil || rcode != RCodeServFail {
		t.Fatalf("update with dead disk acked: %v %v", rcode, err)
	}
	// Restart from the surviving image: only the acked update is there.
	srv2, d2 := openDurableServer(t, mem, "hns", DurableConfig{})
	defer d2.Close()
	if n := srv2.Zone("hns").Count(); n != 1 {
		t.Fatalf("recovered %d records, want 1 (unacked update resurrected?)", n)
	}
}

func TestSecondaryRestoreSkipsColdTransfer(t *testing.T) {
	model := simtime.Default()
	primary, cl, _ := newPrimary(t)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, _, err := primary.Update(ctx, "repl.test", UpdateAdd, A(fmt.Sprintf("h%d.repl.test", i), "10.0.0.1", 60)); err != nil {
			t.Fatal(err)
		}
	}

	sec, err := NewSecondary(cl, "repl.test", "fiji", model)
	if err != nil {
		t.Fatal(err)
	}
	// Journal the mirror; the first refresh is a full transfer.
	fs := NewCrashFS(t)
	d, err := OpenDurable(DurableConfig{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	d.Attach(sec.Server())
	sec.SetJournal(d)
	if moved, err := sec.Refresh(ctx); err != nil || !moved {
		t.Fatalf("first refresh: %v %v", moved, err)
	}
	if sec.Refreshes() != 1 {
		t.Fatalf("refreshes = %d", sec.Refreshes())
	}
	wantSerial := sec.Serial()
	d.Close()

	// Restart: recover the mirror from disk, restore, and refresh. The
	// primary hasn't moved, so no transfer happens — the serial probe is
	// enough.
	d2, err := OpenDurable(DurableConfig{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	sec2, err := NewSecondary(cl, "repl.test", "fiji", model)
	if err != nil {
		t.Fatal(err)
	}
	zones := d2.Zones()
	if len(zones) != 1 || zones[0].Origin != "repl.test" {
		t.Fatalf("recovered zones %+v", zones)
	}
	if err := sec2.Restore(zones[0].Serial, zones[0].Records); err != nil {
		t.Fatal(err)
	}
	d2.Attach(sec2.Server())
	sec2.SetJournal(d2)
	if sec2.Serial() != wantSerial {
		t.Fatalf("restored serial %d, want %d", sec2.Serial(), wantSerial)
	}
	if moved, err := sec2.Refresh(ctx); err != nil || moved {
		t.Fatalf("post-restore refresh transferred: moved=%v err=%v", moved, err)
	}
	if sec2.Refreshes() != 0 {
		t.Fatalf("restored secondary paid %d transfers, want 0", sec2.Refreshes())
	}
	// newPrimary preloads 2 records; the 4 updates above make 6.
	if n := sec2.Server().Zone("repl.test").Count(); n != 6 {
		t.Fatalf("restored mirror has %d records, want 6", n)
	}

	// The primary moves: the next refresh transfers and re-journals.
	if _, _, err := primary.Update(ctx, "repl.test", UpdateAdd, A("h9.repl.test", "10.0.0.9", 60)); err != nil {
		t.Fatal(err)
	}
	if moved, err := sec2.Refresh(ctx); err != nil || !moved {
		t.Fatalf("refresh after primary update: moved=%v err=%v", moved, err)
	}
}
