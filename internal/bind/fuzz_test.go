package bind

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets for the wire-facing parsers. `go test` runs the seed
// corpus; `go test -fuzz=FuzzDecodeMessage ./internal/bind` explores.

func FuzzDecodeMessage(f *testing.F) {
	// Seeds: a real query, a real response, and junk.
	q, _ := EncodeMessage(&Message{ID: 1, QName: "fiji.cs.washington.edu", QType: TypeA})
	r, _ := EncodeMessage(&Message{
		ID: 2, Response: true, QName: "a.b", QType: TypeTXT,
		Answers: []RR{TXT("a.b", "hello", 60), A("a.b", "1.2.3.4", 60)},
	})
	f.Add(q)
	f.Add(r)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// Round-trip invariant: anything we accept re-encodes and decodes
		// to the same message.
		buf, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("accepted message does not re-encode: %v (%+v)", err, m)
		}
		m2, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if m.ID != m2.ID || m.QName != m2.QName || len(m.Answers) != len(m2.Answers) {
			t.Fatalf("round trip changed message: %+v vs %+v", m, m2)
		}
		for i := range m.Answers {
			if !m.Answers[i].Equal(m2.Answers[i]) {
				t.Fatalf("answer %d changed", i)
			}
		}
	})
}

func FuzzParseZoneFile(f *testing.F) {
	f.Add(sampleZoneFile)
	f.Add("name 600 A data\n")
	f.Add("; only a comment\n")
	f.Fuzz(func(t *testing.T, text string) {
		rrs, err := ParseZoneFile(strings.NewReader(text))
		if err != nil {
			return
		}
		// Anything accepted must survive format → parse unchanged.
		back, err := ParseZoneFile(strings.NewReader(FormatZoneFile(rrs)))
		if err != nil {
			t.Fatalf("formatted zone does not re-parse: %v", err)
		}
		if len(back) != len(rrs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(rrs), len(back))
		}
	})
}

func FuzzCanonicalName(f *testing.F) {
	f.Add("FIJI.cs.washington.edu")
	f.Add("..")
	f.Add(strings.Repeat("a.", 200))
	f.Fuzz(func(t *testing.T, name string) {
		c, err := CanonicalName(name)
		if err != nil {
			return
		}
		// Canonicalization is idempotent.
		c2, err := CanonicalName(c)
		if err != nil || c2 != c {
			t.Fatalf("not idempotent: %q -> %q, %v", c, c2, err)
		}
		if bytes.ContainsAny([]byte(c), " \t\n") {
			t.Fatalf("whitespace survived: %q", c)
		}
	})
}
