package bind

// IXFR-style incremental zone transfer and the push-invalidation plane.
//
// The paper's secondaries (and the HNS preloader, and the shard
// rebalancer) re-fetch whole zones to learn about any change — AXFR
// every refresh. At fleet scale most refreshes move bytes that have not
// changed. This file adds the two halves that fix it server-side:
//
//   - TransferDelta ("changes since serial S"): answered from the
//     zone's bounded in-memory diff log (Zone.EnableDiffLog). A peer
//     inside the window receives only the mutations it missed, encoded
//     as the journal codec's 'U' records; a peer outside it is told to
//     take a full transfer. Cost is charged per diff record, so an
//     incremental catch-up is priced by what moved, not by zone size.
//
//   - Subscribe: a client on a multiplexed connection registers for
//     push invalidations; every dynamic update then fans a serial-bump
//     notification out over the transport's server-initiated frames
//     (NOTIFY). The subscriber table is bounded — an overflowing or
//     push-incapable peer is refused and falls back to TTL polling.
//
// Both are opt-in (EnableDiffLog / EnablePush); at the defaults the
// server is byte- and cost-identical to the paper's.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/push"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// ErrSubscribeUnsupported is the fault a Subscribe call raises when the
// carrying connection cannot receive pushes (legacy framing, datagram
// transport) or the server has no push plane enabled. Clients latch it
// and fall back to TTL polling.
var ErrSubscribeUnsupported = errors.New("bind: subscribe unsupported on this connection")

// encodeDiffs renders an incremental transfer payload: one journal 'U'
// record per mutation, oldest first — byte-compatible with the WAL
// format, decoded by the same walker.
func encodeDiffs(zone string, diffs []DiffRec) []byte {
	var b []byte
	for _, d := range diffs {
		b = append(b, encodeUpdate(zone, d.Op, d.RR, d.Serial)...)
	}
	return b
}

// decodeDiffs parses an incremental transfer payload back into its
// mutation sequence, enforcing that every record is an update for zone
// and that serials strictly increase — a malformed or spliced payload
// fails whole rather than half-applying.
func decodeDiffs(zone string, payload []byte) ([]DiffRec, error) {
	var out []DiffRec
	d := &journalDecoder{b: payload}
	var last uint32
	for len(d.b) > 0 {
		kind, err := d.u8()
		if err != nil {
			return nil, err
		}
		if kind != journalKindUpdate {
			return nil, fmt.Errorf("bind: ixfr payload has non-update record kind %q", kind)
		}
		serial, err := d.u32()
		if err != nil {
			return nil, err
		}
		zb, err := d.bytes()
		if err != nil {
			return nil, err
		}
		if string(zb) != zone {
			return nil, fmt.Errorf("bind: ixfr record for zone %q in a %q transfer", zb, zone)
		}
		op, err := d.u8()
		if err != nil {
			return nil, err
		}
		rr, err := d.rr()
		if err != nil {
			return nil, err
		}
		if len(out) > 0 && serial <= last {
			return nil, fmt.Errorf("bind: ixfr serials not increasing (%d after %d)", serial, last)
		}
		last = serial
		out = append(out, DiffRec{Serial: serial, Op: uint32(op), RR: rr})
	}
	return out, nil
}

// TransferDelta answers "changes to zoneOrigin since serial since".
// ok=true with an empty diff means the peer is already current. ok=false
// means the diff log cannot prove continuity from since — the caller
// must take a full Transfer. Cost is charged per diff record moved, the
// whole point of the incremental path.
func (s *Server) TransferDelta(ctx context.Context, zoneOrigin string, since uint32) (rcode RCode, serial uint32, diffs []DiffRec, ok bool) {
	z := s.Zone(zoneOrigin)
	if z == nil {
		return RCodeRefused, 0, nil, false
	}
	diffs, ok = z.DiffSince(since)
	serial = z.Serial()
	if !ok {
		s.reg.Counter(metrics.Labels("ixfr_requests_total", "result", "fallback")).Inc()
		return RCodeOK, serial, nil, false
	}
	simtime.Charge(ctx, s.model.ZoneXfer(len(diffs)))
	s.reg.Counter(metrics.Labels("ixfr_requests_total", "result", "diff")).Inc()
	s.reg.Counter("ixfr_records_total").Add(int64(len(diffs)))
	return RCodeOK, serial, diffs, true
}

// EnablePush equips the server with a push plane: a bounded subscriber
// table fed by every dynamic update. maxSubscribers <= 0 uses
// push.DefaultMaxSubscribers. Off (the default) the server never sends
// a server-initiated frame and Subscribe calls are refused.
func (s *Server) EnablePush(maxSubscribers int) {
	s.pushTab.Store(push.NewTable(maxSubscribers, s.reg))
}

// PushTable exposes the server's subscriber table (nil when push is
// disabled) — bindd uses it to publish zone-level events after a
// secondary refresh lands behind the Server's back.
func (s *Server) PushTable() *push.Table {
	return s.pushTab.Load()
}

// publishUpdate fans one applied update out to subscribers. No-op with
// push disabled.
func (s *Server) publishUpdate(zone, name string, serial uint32) {
	t := s.pushTab.Load()
	if t == nil {
		return
	}
	// Subscribers filter by canonical owner name (the form the zone
	// stores and Lookup matches).
	if cn, err := CanonicalName(name); err == nil {
		name = cn
	}
	t.Publish(push.Notification{Zone: zone, Name: name, Serial: serial})
}

// The incremental-transfer and subscription procedures. Old servers
// reject both with "procedure unavailable", which new clients latch
// (hrpc.ProcUnavailable) to fall back to full transfers and polling.
var (
	procIxfr = hrpc.Procedure{
		Name: "BINDIxfr", ID: 6,
		Args:  marshal.TStruct(marshal.TString, marshal.TUint32),
		Ret:   marshal.TStruct(marshal.TUint32, marshal.TUint32, marshal.TUint32, marshal.TBytes),
		Style: marshal.StyleNone,
		// Read-only and deterministic given zone state; invalidated with
		// every zone mutation like Query and Serial.
		Cacheable: true,
	}
	procSubscribe = hrpc.Procedure{
		Name: "BINDSubscribe", ID: 7,
		Args:  marshal.TStruct(marshal.TString, marshal.TList(marshal.TString), marshal.TUint32),
		Ret:   marshal.TStruct(marshal.TUint32, marshal.TUint32),
		Style: marshal.StyleNone,
		// Registers connection state: never cacheable.
	}
)

// ixfrFull is the in-band "window exceeded" flag: the client must fall
// back to a full transfer.
const (
	ixfrIncremental = 0
	ixfrFull        = 1
)

// registerPush wires the IXFR and Subscribe procedures onto hs.
func (s *Server) registerPush(hs *hrpc.Server) {
	hs.Register(procIxfr, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		zone, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		since, err := args.Items[1].AsU32()
		if err != nil {
			return marshal.Value{}, err
		}
		rcode, serial, diffs, ok := s.TransferDelta(ctx, zone, since)
		if !ok {
			return marshal.StructV(marshal.U32(uint32(rcode)), marshal.U32(serial),
				marshal.U32(ixfrFull), marshal.BytesV(nil)), nil
		}
		payload := encodeDiffs(zone, diffs)
		s.reg.Counter("ixfr_bytes_total").Add(int64(len(payload)))
		return marshal.StructV(marshal.U32(uint32(rcode)), marshal.U32(serial),
			marshal.U32(ixfrIncremental), marshal.BytesV(payload)), nil
	})
	hs.Register(procSubscribe, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		zone, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		var names []string
		for _, it := range args.Items[1].Items {
			n, err := it.AsString()
			if err != nil {
				return marshal.Value{}, err
			}
			names = append(names, n)
		}
		// args.Items[2] is the subscriber's last-seen serial; the reply's
		// current serial tells it whether to catch up first (via IXFR).
		tab := s.pushTab.Load()
		if tab == nil {
			return marshal.Value{}, ErrSubscribeUnsupported
		}
		z := s.Zone(zone)
		if z == nil {
			return marshal.StructV(marshal.U32(uint32(RCodeRefused)), marshal.U32(0)), nil
		}
		pusher, ok := transport.PusherFrom(ctx)
		if !ok {
			// Legacy framing or a datagram transport: no push channel.
			return marshal.Value{}, ErrSubscribeUnsupported
		}
		if _, ok := tab.Add(push.Subscription{Zone: z.Origin(), Names: names}, pusher); !ok {
			// Table full: refuse so the client degrades to polling.
			return marshal.Value{}, fmt.Errorf("bind: subscriber table full for %s", z.Origin())
		}
		return marshal.StructV(marshal.U32(uint32(RCodeOK)), marshal.U32(z.Serial())), nil
	})
}

// pushTabPtr aliases the atomic holder so Server stays tidy.
type pushTabPtr = atomic.Pointer[push.Table]
