package bind

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/push"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// ---- Zone diff log.

func TestDiffLogBasics(t *testing.T) {
	z, _ := NewZone("d.test", true)
	z.EnableDiffLog(64)
	base := z.Serial()
	if err := z.Add(A("a.d.test", "1", 60)); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(A("b.d.test", "2", 60)); err != nil {
		t.Fatal(err)
	}
	if err := z.Remove(RR{Name: "a.d.test", Type: TypeA}); err != nil {
		t.Fatal(err)
	}

	diffs, ok := z.DiffSince(base)
	if !ok || len(diffs) != 3 {
		t.Fatalf("DiffSince(base) = %d recs, ok=%v; want 3, true", len(diffs), ok)
	}
	if diffs[0].Op != UpdateAdd || diffs[0].RR.Name != "a.d.test" {
		t.Fatalf("first diff = %+v", diffs[0])
	}
	if diffs[2].Op != UpdateRemove {
		t.Fatalf("third diff op = %d, want remove", diffs[2].Op)
	}
	for i := 1; i < len(diffs); i++ {
		if diffs[i].Serial <= diffs[i-1].Serial {
			t.Fatalf("serials not increasing: %d then %d", diffs[i-1].Serial, diffs[i].Serial)
		}
	}
	// An up-to-date peer gets an empty-but-ok answer.
	if d, ok := z.DiffSince(z.Serial()); !ok || len(d) != 0 {
		t.Fatalf("DiffSince(current) = %d, ok=%v", len(d), ok)
	}
	// A peer from the future is refused.
	if _, ok := z.DiffSince(z.Serial() + 1); ok {
		t.Fatal("DiffSince accepted a future serial")
	}
	// Partial range: only the tail.
	mid := diffs[0].Serial
	tail, ok := z.DiffSince(mid)
	if !ok || len(tail) != 2 {
		t.Fatalf("DiffSince(mid) = %d recs, ok=%v; want 2, true", len(tail), ok)
	}
}

func TestDiffLogWindowAndResets(t *testing.T) {
	z, _ := NewZone("d.test", true)
	z.EnableDiffLog(4)
	base := z.Serial()
	for i := 0; i < 20; i++ {
		if err := z.Add(A(fmt.Sprintf("n%d.d.test", i), "1", 60)); err != nil {
			t.Fatal(err)
		}
	}
	// The retained log is bounded (2× window at most) and an old peer is
	// pushed to a full transfer.
	if len(z.diff) > 8 {
		t.Fatalf("diff log grew to %d entries with window 4", len(z.diff))
	}
	if _, ok := z.DiffSince(base); ok {
		t.Fatal("DiffSince claims continuity past the trimmed window")
	}
	// The newest mutations are still incrementally servable.
	cur := z.Serial()
	if err := z.Add(A("fresh.d.test", "9", 60)); err != nil {
		t.Fatal(err)
	}
	if diffs, ok := z.DiffSince(cur); !ok || len(diffs) != 1 {
		t.Fatalf("recent DiffSince = %d, ok=%v", len(diffs), ok)
	}

	// Replace and ForceSerial break continuity wholesale.
	if err := z.Replace([]RR{A("x.d.test", "1", 60)}, 100); err != nil {
		t.Fatal(err)
	}
	if _, ok := z.DiffSince(99); ok {
		t.Fatal("DiffSince survived Replace")
	}
	z.EnableDiffLog(4)
	if err := z.Add(A("y.d.test", "1", 60)); err != nil {
		t.Fatal(err)
	}
	z.ForceSerial(200)
	if _, ok := z.DiffSince(100); ok {
		t.Fatal("DiffSince survived ForceSerial")
	}
	// Disabling drops the log.
	if err := z.Add(A("z.d.test", "1", 60)); err != nil {
		t.Fatal(err)
	}
	z.EnableDiffLog(0)
	if _, ok := z.DiffSince(200); ok {
		t.Fatal("DiffSince answered with the log disabled")
	}
}

// ---- IXFR payload codec.

func TestDiffCodecRoundTrip(t *testing.T) {
	in := []DiffRec{
		{Serial: 5, Op: UpdateAdd, RR: A("a.d.test", "1", 60)},
		{Serial: 6, Op: UpdateRemove, RR: RR{Name: "a.d.test", Type: TypeA, Class: ClassIN}},
		{Serial: 9, Op: UpdateAdd, RR: RR{Name: "m.d.test", Type: TypeHNSMeta, Class: ClassIN, TTL: 30, Data: []byte("loc=cluster-7")}},
	}
	payload := encodeDiffs("d.test", in)
	out, err := decodeDiffs("d.test", payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Serial != in[i].Serial || out[i].Op != in[i].Op ||
			out[i].RR.Name != in[i].RR.Name || out[i].RR.Type != in[i].RR.Type ||
			string(out[i].RR.Data) != string(in[i].RR.Data) {
			t.Fatalf("record %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestDiffCodecRejectsMalformed(t *testing.T) {
	good := encodeDiffs("d.test", []DiffRec{
		{Serial: 5, Op: UpdateAdd, RR: A("a.d.test", "1", 60)},
		{Serial: 6, Op: UpdateAdd, RR: A("b.d.test", "2", 60)},
	})
	cases := map[string][]byte{
		"truncated":    good[:len(good)-3],
		"wrong kind":   append([]byte{'R'}, good[1:]...),
		"trailing":     append(append([]byte(nil), good...), 0x01),
		"serial order": encodeDiffs("d.test", []DiffRec{{Serial: 6, Op: UpdateAdd, RR: A("a.d.test", "1", 60)}, {Serial: 6, Op: UpdateAdd, RR: A("b.d.test", "2", 60)}}),
	}
	for name, b := range cases {
		if _, err := decodeDiffs("d.test", b); err == nil {
			t.Errorf("%s: decodeDiffs accepted malformed payload", name)
		}
	}
	// Zone mismatch fails whole.
	if _, err := decodeDiffs("other.test", good); err == nil {
		t.Error("decodeDiffs accepted a foreign zone's payload")
	}
}

func FuzzIXFRDecode(f *testing.F) {
	f.Add([]byte("d.test"), encodeDiffs("d.test", []DiffRec{
		{Serial: 5, Op: UpdateAdd, RR: A("a.d.test", "1", 60)},
		{Serial: 7, Op: UpdateRemove, RR: RR{Name: "a.d.test", Type: TypeA, Class: ClassIN}},
	}))
	f.Add([]byte("z"), []byte{'U', 0, 0, 0})
	f.Add([]byte(""), []byte{})
	f.Fuzz(func(t *testing.T, zone, payload []byte) {
		diffs, err := decodeDiffs(string(zone), payload)
		if err != nil {
			return
		}
		// Accepted payloads re-encode byte-identically (canonical codec)
		// and keep their serial-order invariant.
		for i := 1; i < len(diffs); i++ {
			if diffs[i].Serial <= diffs[i-1].Serial {
				t.Fatalf("accepted non-increasing serials: %+v", diffs)
			}
		}
		out := encodeDiffs(string(zone), diffs)
		if string(out) != string(payload) {
			t.Fatalf("decode/encode not canonical: in=%x out=%x", payload, out)
		}
	})
}

// ---- Server plane over the wire.

// newPushPrimary stands up a primary with push + diff log enabled.
func newPushPrimary(t *testing.T, window int) (*Server, *HRPCClient, *transport.Network) {
	t.Helper()
	model := simtime.Default()
	net := transport.NewNetwork(model)
	s := NewServer("primary", model)
	z, err := NewZone("repl.test", true)
	if err != nil {
		t.Fatal(err)
	}
	z.EnableDiffLog(window)
	if err := s.AddZone(z); err != nil {
		t.Fatal(err)
	}
	s.EnablePush(0)
	if err := s.LoadRecords([]RR{
		A("a.repl.test", "1", 600),
		A("b.repl.test", "2", 600),
	}); err != nil {
		t.Fatal(err)
	}
	ln, b, err := s.ServeHRPC(net, "primary:bind-hrpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	hc := hrpc.NewClient(net)
	t.Cleanup(func() { hc.Close() })
	return s, NewHRPCClient(hc, b), net
}

func TestTransferDeltaOverWire(t *testing.T) {
	s, client, _ := newPushPrimary(t, 64)
	ctx := context.Background()
	base, err := client.Serial(ctx, "repl.test")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A(fmt.Sprintf("u%d.repl.test", i), "9", 60)); err != nil {
			t.Fatal(err)
		}
	}
	serial, diffs, ok, err := client.TransferDelta(ctx, "repl.test", base)
	if err != nil || !ok {
		t.Fatalf("TransferDelta = ok=%v err=%v", ok, err)
	}
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs, want 3", len(diffs))
	}
	if serial != s.Zone("repl.test").Serial() {
		t.Fatalf("serial %d != zone serial %d", serial, s.Zone("repl.test").Serial())
	}
	// Up to date: empty diff, still ok.
	if _, diffs, ok, err := client.TransferDelta(ctx, "repl.test", serial); err != nil || !ok || len(diffs) != 0 {
		t.Fatalf("current TransferDelta = %d diffs ok=%v err=%v", len(diffs), ok, err)
	}
	// Unknown zone refuses.
	if _, _, ok, err := client.TransferDelta(ctx, "nope.test", 1); ok || err == nil {
		t.Fatalf("unknown zone: ok=%v err=%v", ok, err)
	}
}

func TestTransferDeltaFallsBackPastWindow(t *testing.T) {
	s, client, _ := newPushPrimary(t, 2)
	ctx := context.Background()
	base, _ := client.Serial(ctx, "repl.test")
	for i := 0; i < 12; i++ {
		if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A(fmt.Sprintf("w%d.repl.test", i), "1", 60)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, ok, err := client.TransferDelta(ctx, "repl.test", base)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("TransferDelta claimed continuity far past the window")
	}
}

// TestTransferDeltaOldServerLatches exercises interop with a pre-IXFR
// peer: the first call gets "procedure unavailable" and latches, later
// calls skip the wire entirely.
func TestTransferDeltaOldServerLatches(t *testing.T) {
	model := simtime.Default()
	net := transport.NewNetwork(model)
	// An "old" server: the same program/version, but only the original
	// four procedures registered.
	hs := hrpc.NewServer("bind-hrpc@old", HRPCProgram, HRPCVersion)
	hs.Register(procSerial, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		return marshal.StructV(marshal.U32(uint32(RCodeOK)), marshal.U32(7)), nil
	})
	ln, b, err := hrpc.Serve(net, hs, hrpc.SuiteRaw, "old", "old:bind-hrpc")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hc := hrpc.NewClient(net)
	defer hc.Close()
	client := NewHRPCClient(hc, b)

	ctx := context.Background()
	_, _, ok, err := client.TransferDelta(ctx, "repl.test", 1)
	if err != nil || ok {
		t.Fatalf("old server TransferDelta = ok=%v err=%v; want graceful fallback", ok, err)
	}
	if !client.noIxfr.Load() {
		t.Fatal("noIxfr did not latch after procedure-unavailable")
	}
	// Latch means no wire traffic: works even with the listener closed.
	ln.Close()
	if _, _, ok, err := client.TransferDelta(ctx, "repl.test", 1); err != nil || ok {
		t.Fatalf("latched TransferDelta = ok=%v err=%v", ok, err)
	}
}

// ---- Subscription end to end.

// notifyRecorder collects notifications thread-safely.
type notifyRecorder struct {
	mu     sync.Mutex
	names  []string
	resets int
}

func (r *notifyRecorder) onNotify(n push.Notification) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names = append(r.names, n.Name)
}

func (r *notifyRecorder) onReset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resets++
}

func (r *notifyRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

func (r *notifyRecorder) resetCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resets
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubscribeDeliversNotify(t *testing.T) {
	s, client, _ := newPushPrimary(t, 64)
	rec := &notifyRecorder{}
	sub := NewSubscriber(client, SubscribeConfig{
		Zone:     "repl.test",
		OnNotify: rec.onNotify,
		Backoff:  10 * time.Millisecond,
		Metrics:  metrics.Discard,
	})
	sub.Start()
	defer sub.Close()
	waitFor(t, "subscription active", sub.Active)

	ctx := context.Background()
	if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A("hot.repl.test", "7", 60)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "notify delivery", func() bool { return len(rec.snapshot()) >= 1 })
	if got := rec.snapshot(); got[0] != "hot.repl.test" {
		t.Fatalf("notified name %q, want hot.repl.test", got[0])
	}
	if sub.LastSerial() != s.Zone("repl.test").Serial() {
		t.Fatalf("LastSerial %d != zone serial %d", sub.LastSerial(), s.Zone("repl.test").Serial())
	}
	if sub.Degraded() {
		t.Fatal("healthy subscription marked degraded")
	}
}

// TestSubscribeResubscribeCatchUp is the crash-consistency guarantee:
// kill the connection mid-stream, mutate the zone while the subscriber
// is dark, and verify the resubscribe-with-serial IXFR replays every
// missed invalidation — zero lost, none duplicated.
func TestSubscribeResubscribeCatchUp(t *testing.T) {
	s, client, _ := newPushPrimary(t, 64)
	rec := &notifyRecorder{}
	sub := NewSubscriber(client, SubscribeConfig{
		Zone:     "repl.test",
		OnNotify: rec.onNotify,
		OnReset:  rec.onReset,
		Backoff:  5 * time.Millisecond,
		Metrics:  metrics.Discard,
	})
	sub.Start()
	defer sub.Close()
	waitFor(t, "subscription active", sub.Active)

	ctx := context.Background()
	if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A("live.repl.test", "1", 60)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live notify", func() bool { return len(rec.snapshot()) >= 1 })

	// Kill the mux conn mid-stream.
	sub.mu.Lock()
	conn := sub.conn
	sub.mu.Unlock()
	if conn == nil {
		t.Fatal("no live conn to kill")
	}
	conn.Close()
	waitFor(t, "subscription inactive", func() bool { return !sub.Active() })

	// Three updates land while the subscriber is dark.
	missed := []string{"m1.repl.test", "m2.repl.test", "m3.repl.test"}
	for _, name := range missed {
		if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A(name, "1", 60)); err != nil {
			t.Fatal(err)
		}
	}

	// The subscriber redials, resubscribes with its last serial, and the
	// IXFR catch-up replays exactly the missed names.
	waitFor(t, "catch-up", func() bool { return len(rec.snapshot()) >= 1+len(missed) })
	got := rec.snapshot()
	for i, name := range missed {
		if got[1+i] != name {
			t.Fatalf("catch-up replay = %v, want suffix %v", got[1:], missed)
		}
	}
	if rec.resetCount() != 0 {
		t.Fatal("catch-up within the window must not reset")
	}
	if sub.LastSerial() != s.Zone("repl.test").Serial() {
		t.Fatalf("LastSerial %d != zone serial %d after catch-up", sub.LastSerial(), s.Zone("repl.test").Serial())
	}
	waitFor(t, "subscription re-active", sub.Active)

	// And live pushes flow again on the new connection.
	if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A("post.repl.test", "1", 60)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-catch-up notify", func() bool {
		snap := rec.snapshot()
		return len(snap) >= 2+len(missed) && snap[len(snap)-1] == "post.repl.test"
	})
}

// TestSubscribeResetPastWindow: if the outage outlives the diff window,
// the subscriber must signal a reset instead of silently missing
// invalidations.
func TestSubscribeResetPastWindow(t *testing.T) {
	s, client, _ := newPushPrimary(t, 2)
	rec := &notifyRecorder{}
	sub := NewSubscriber(client, SubscribeConfig{
		Zone:     "repl.test",
		OnNotify: rec.onNotify,
		OnReset:  rec.onReset,
		Backoff:  5 * time.Millisecond,
		Metrics:  metrics.Discard,
	})
	sub.Start()
	defer sub.Close()
	waitFor(t, "subscription active", sub.Active)

	sub.mu.Lock()
	conn := sub.conn
	sub.mu.Unlock()
	conn.Close()
	waitFor(t, "subscription inactive", func() bool { return !sub.Active() })

	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A(fmt.Sprintf("o%d.repl.test", i), "1", 60)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "reset", func() bool { return rec.resetCount() > 0 })
	waitFor(t, "subscription re-active", sub.Active)
	if sub.LastSerial() != s.Zone("repl.test").Serial() {
		t.Fatalf("LastSerial %d != zone serial %d after reset", sub.LastSerial(), s.Zone("repl.test").Serial())
	}
}

// TestSubscribeDegradesWithoutPushPlane: a server without EnablePush
// refuses, and the subscriber latches degraded instead of retrying.
func TestSubscribeDegradesWithoutPushPlane(t *testing.T) {
	_, client, _ := newPrimary(t) // no EnablePush
	sub := NewSubscriber(client, SubscribeConfig{
		Zone:    "repl.test",
		Backoff: 5 * time.Millisecond,
		Metrics: metrics.Discard,
	})
	sub.Start()
	defer sub.Close()
	waitFor(t, "degraded latch", sub.Degraded)
	if sub.Active() {
		t.Fatal("degraded subscriber claims active")
	}
}

// TestSubscribeDegradesOnSerialFraming: with mux framing off (old
// transport stack), the connection has no push channel; the subscriber
// must fall back to polling, not error-loop.
func TestSubscribeDegradesOnSerialFraming(t *testing.T) {
	s, client, net := newPushPrimary(t, 64)
	_ = s
	net.SetMux(false)
	sub := NewSubscriber(client, SubscribeConfig{
		Zone:    "repl.test",
		Backoff: 5 * time.Millisecond,
		Metrics: metrics.Discard,
	})
	sub.Start()
	defer sub.Close()
	waitFor(t, "degraded latch", sub.Degraded)
}

// TestTableOverflowDegradesSubscriber: a full subscriber table refuses
// the subscription and the client latches degraded (polls instead).
func TestTableOverflowDegradesSubscriber(t *testing.T) {
	s, client, _ := newPushPrimary(t, 64)
	// Rebuild the push plane with room for exactly one subscriber.
	s.EnablePush(1)
	first := NewSubscriber(client, SubscribeConfig{
		Zone:    "repl.test",
		Backoff: 5 * time.Millisecond,
		Metrics: metrics.Discard,
	})
	first.Start()
	defer first.Close()
	waitFor(t, "first subscriber active", first.Active)

	second := NewSubscriber(client, SubscribeConfig{
		Zone:    "repl.test",
		Backoff: 5 * time.Millisecond,
		Metrics: metrics.Discard,
	})
	second.Start()
	defer second.Close()
	waitFor(t, "second subscriber degraded", second.Degraded)
}

// ---- Secondary over IXFR.

func TestSecondaryRefreshesIncrementally(t *testing.T) {
	s, client, _ := newPushPrimary(t, 64)
	sec, err := NewSecondary(client, "repl.test", "mirror", simtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Cold start: full transfer (serial 0 cannot prove continuity).
	if changed, err := sec.Refresh(ctx); err != nil || !changed {
		t.Fatalf("cold refresh = %v, %v", changed, err)
	}
	if sec.DeltaRefreshes() != 0 {
		t.Fatal("cold refresh should be full, not incremental")
	}

	// Incremental: one add, one remove.
	if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A("inc.repl.test", "5", 60)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Update(ctx, "repl.test", UpdateRemove, RR{Name: "a.repl.test", Type: TypeA, Class: ClassIN}); err != nil {
		t.Fatal(err)
	}
	changed, err := sec.Refresh(ctx)
	if err != nil || !changed {
		t.Fatalf("delta refresh = %v, %v", changed, err)
	}
	if sec.DeltaRefreshes() != 1 {
		t.Fatalf("DeltaRefreshes = %d, want 1", sec.DeltaRefreshes())
	}
	if sec.Serial() != s.Zone("repl.test").Serial() {
		t.Fatalf("mirror serial %d != primary %d", sec.Serial(), s.Zone("repl.test").Serial())
	}
	if rcode, rrs := sec.Server().Query(ctx, "inc.repl.test", TypeA); rcode != RCodeOK || len(rrs) != 1 {
		t.Fatalf("added record not mirrored: %v %v", rcode, rrs)
	}
	if rcode, _ := sec.Server().Query(ctx, "a.repl.test", TypeA); rcode != RCodeNXDomain {
		t.Fatalf("removed record survives on mirror: %v", rcode)
	}

	// The incremental path must be far cheaper than re-copying the zone.
	// Grow the zone well past the diff window (forcing one full resync),
	// then measure a one-record delta refresh against the full-zone cost.
	var bulk []RR
	for i := 0; i < 300; i++ {
		bulk = append(bulk, A(fmt.Sprintf("bulk%d.repl.test", i), "1", 600))
	}
	if err := s.LoadRecords(bulk); err != nil {
		t.Fatal(err)
	}
	if _, err := sec.Refresh(ctx); err != nil { // full: 300 adds > window
		t.Fatal(err)
	}
	if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A("one.repl.test", "1", 60)); err != nil {
		t.Fatal(err)
	}
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		changed, err := sec.Refresh(ctx)
		if err == nil && !changed {
			t.Error("delta refresh saw no change")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sec.DeltaRefreshes() != 2 {
		t.Fatalf("DeltaRefreshes = %d, want 2", sec.DeltaRefreshes())
	}
	model := simtime.Default()
	fullCost := model.ZoneXfer(sec.Server().Zone("repl.test").Count())
	if cost >= fullCost/2 {
		t.Fatalf("delta refresh cost %v not ≪ full transfer %v", cost, fullCost)
	}
}

func TestSecondaryFallsBackPastWindow(t *testing.T) {
	s, client, _ := newPushPrimary(t, 2)
	sec, err := NewSecondary(client, "repl.test", "mirror", simtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sec.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := s.Update(ctx, "repl.test", UpdateAdd, A(fmt.Sprintf("f%d.repl.test", i), "1", 60)); err != nil {
			t.Fatal(err)
		}
	}
	changed, err := sec.Refresh(ctx)
	if err != nil || !changed {
		t.Fatalf("fallback refresh = %v, %v", changed, err)
	}
	if sec.DeltaRefreshes() != 0 {
		t.Fatal("refresh past the window must fall back to a full transfer")
	}
	// Contents converge regardless.
	if rcode, _ := sec.Server().Query(ctx, "f11.repl.test", TypeA); rcode != RCodeOK {
		t.Fatalf("fallback did not converge: %v", rcode)
	}
	if sec.Serial() != s.Zone("repl.test").Serial() {
		t.Fatalf("mirror serial %d != primary %d", sec.Serial(), s.Zone("repl.test").Serial())
	}
}
