package bind

import (
	"encoding/binary"
	"fmt"
)

// ZoneStore is the journal a Server writes zone mutations through. The
// default is nil — no journal, the purely in-memory BIND of the paper —
// which keeps every measured table bit-identical. A durable
// implementation (see Durable) appends each mutation to a write-ahead
// log before the server acknowledges it.
//
// LogUpdate records one dynamic update (UpdateAdd/UpdateRemove) that has
// been applied to the named zone, leaving it at serial. LogReplace
// records a wholesale content swap — bulk load or zone-transfer apply —
// again with the serial the zone ended at. An error from either means
// the mutation is NOT durable and must not be acknowledged.
type ZoneStore interface {
	LogUpdate(zone string, op uint32, rr RR, serial uint32) error
	LogReplace(zone string, serial uint32, rrs []RR) error
}

// Journal record wire format. One WAL payload is one mutation:
//
//	'U' u32 serial  u16 len zone  u8 op  RR        (dynamic update)
//	'R' u32 serial  u16 len zone  u32 count  RR*   (content replace)
//
// with RR = u16 len name, u16 type, u16 class, u32 ttl, u16 len data.
// All integers big-endian. The format is versionless on purpose: the
// kind byte leaves room ('V', ...) if a revision is ever needed.
const (
	journalKindUpdate  = 'U'
	journalKindReplace = 'R'
)

func appendU16String(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendRR(b []byte, rr RR) []byte {
	b = appendU16String(b, rr.Name)
	b = binary.BigEndian.AppendUint16(b, uint16(rr.Type))
	b = binary.BigEndian.AppendUint16(b, rr.Class)
	b = binary.BigEndian.AppendUint32(b, rr.TTL)
	b = binary.BigEndian.AppendUint16(b, uint16(len(rr.Data)))
	return append(b, rr.Data...)
}

// encodeUpdate builds the WAL payload for one dynamic update.
func encodeUpdate(zone string, op uint32, rr RR, serial uint32) []byte {
	b := make([]byte, 0, 16+len(zone)+len(rr.Name)+len(rr.Data))
	b = append(b, journalKindUpdate)
	b = binary.BigEndian.AppendUint32(b, serial)
	b = appendU16String(b, zone)
	b = append(b, byte(op))
	return appendRR(b, rr)
}

// encodeReplace builds the WAL payload for a content swap.
func encodeReplace(zone string, serial uint32, rrs []RR) []byte {
	b := make([]byte, 0, 16+len(zone)+len(rrs)*24)
	b = append(b, journalKindReplace)
	b = binary.BigEndian.AppendUint32(b, serial)
	b = appendU16String(b, zone)
	b = binary.BigEndian.AppendUint32(b, uint32(len(rrs)))
	for _, rr := range rrs {
		b = appendRR(b, rr)
	}
	return b
}

// journalRec is one decoded journal record.
type journalRec struct {
	kind   byte
	zone   string
	serial uint32
	op     uint32 // update only
	rr     RR     // update only
	rrs    []RR   // replace only
}

// journalDecoder walks one record payload.
type journalDecoder struct {
	b []byte
}

func (d *journalDecoder) u8() (byte, error) {
	if len(d.b) < 1 {
		return 0, fmt.Errorf("bind: truncated journal record")
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *journalDecoder) u16() (uint16, error) {
	if len(d.b) < 2 {
		return 0, fmt.Errorf("bind: truncated journal record")
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v, nil
}

func (d *journalDecoder) u32() (uint32, error) {
	if len(d.b) < 4 {
		return 0, fmt.Errorf("bind: truncated journal record")
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v, nil
}

func (d *journalDecoder) bytes() ([]byte, error) {
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if len(d.b) < int(n) {
		return nil, fmt.Errorf("bind: truncated journal record")
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v, nil
}

func (d *journalDecoder) rr() (RR, error) {
	name, err := d.bytes()
	if err != nil {
		return RR{}, err
	}
	t, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	class, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.u32()
	if err != nil {
		return RR{}, err
	}
	data, err := d.bytes()
	if err != nil {
		return RR{}, err
	}
	return RR{Name: string(name), Type: RRType(t), Class: class, TTL: ttl, Data: data}, nil
}

// decodeJournal parses one WAL payload back into a mutation.
func decodeJournal(payload []byte) (journalRec, error) {
	d := &journalDecoder{b: payload}
	var rec journalRec
	var err error
	if rec.kind, err = d.u8(); err != nil {
		return rec, err
	}
	if rec.serial, err = d.u32(); err != nil {
		return rec, err
	}
	zone, err := d.bytes()
	if err != nil {
		return rec, err
	}
	rec.zone = string(zone)
	switch rec.kind {
	case journalKindUpdate:
		op, err := d.u8()
		if err != nil {
			return rec, err
		}
		rec.op = uint32(op)
		if rec.rr, err = d.rr(); err != nil {
			return rec, err
		}
	case journalKindReplace:
		n, err := d.u32()
		if err != nil {
			return rec, err
		}
		if int(n) > len(d.b)/11 { // 11 bytes = minimal encoded RR
			return rec, fmt.Errorf("bind: journal replace claims %d records in %d bytes", n, len(d.b))
		}
		rec.rrs = make([]RR, 0, n)
		for i := uint32(0); i < n; i++ {
			rr, err := d.rr()
			if err != nil {
				return rec, err
			}
			rec.rrs = append(rec.rrs, rr)
		}
	default:
		return rec, fmt.Errorf("bind: unknown journal record kind %q", rec.kind)
	}
	if len(d.b) != 0 {
		return rec, fmt.Errorf("bind: %d trailing bytes in journal record", len(d.b))
	}
	return rec, nil
}
