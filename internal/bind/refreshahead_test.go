package bind

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hns/internal/simtime"
)

// gatedBackend is a Lookuper that counts calls and can block them on a
// gate channel (nil gate = never blocks).
type gatedBackend struct {
	calls atomic.Int64
	gate  chan struct{}
	ttl   uint32
}

func (b *gatedBackend) Lookup(ctx context.Context, name string, t RRType) ([]RR, error) {
	b.calls.Add(1)
	if b.gate != nil {
		<-b.gate
	}
	return []RR{A(name, "addr", b.ttl)}, nil
}

func waitForCalls(t *testing.T, b *gatedBackend, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.calls.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("backend calls = %d, want %d", b.calls.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestResolverRefreshAhead(t *testing.T) {
	clock := simtime.NewFakeClock(time.Unix(0, 0))
	backend := &gatedBackend{ttl: 10}
	r := NewResolver(backend, simtime.Default(), ResolverConfig{
		Clock:        clock,
		RefreshAhead: 0.5,
	})
	ctx := context.Background()

	if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
		t.Fatal(err)
	}
	if backend.calls.Load() != 1 {
		t.Fatalf("miss made %d backend calls", backend.calls.Load())
	}

	// Remaining 6s of 10s: above the 0.5 threshold, a plain hit. The
	// refresh decision is made synchronously, so no call can appear later.
	clock.Advance(4 * time.Second)
	if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
		t.Fatal(err)
	}
	if backend.calls.Load() != 1 {
		t.Fatalf("fresh hit refreshed (%d backend calls)", backend.calls.Load())
	}

	// Remaining 4s: below the threshold. The hit answers immediately and
	// one background refresh re-installs the entry with a fresh TTL.
	clock.Advance(2 * time.Second)
	if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
		t.Fatal(err)
	}
	waitForCalls(t, backend, 2)

	// t=10s: past the original expiry — only the refreshed entry (expires
	// t=16s) can answer without another backend call.
	clock.Advance(4 * time.Second)
	if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
		t.Fatal(err)
	}
	if backend.calls.Load() != 2 {
		t.Fatalf("renewed entry missed (%d backend calls)", backend.calls.Load())
	}
	st := r.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 hits 1 miss", st)
	}
}

// TestResolverRefreshAheadSingleFlight proves concurrent hits on one
// cooling entry launch at most one background refresh.
func TestResolverRefreshAheadSingleFlight(t *testing.T) {
	clock := simtime.NewFakeClock(time.Unix(0, 0))
	backend := &gatedBackend{ttl: 10}
	r := NewResolver(backend, simtime.Default(), ResolverConfig{
		Clock:        clock,
		RefreshAhead: 0.5,
	})
	ctx := context.Background()

	if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
		t.Fatal(err)
	}
	clock.Advance(6 * time.Second)

	// Hold the refresh open; every further hit must decline to start
	// another one while it is in flight.
	backend.gate = make(chan struct{})
	for i := 0; i < 8; i++ {
		if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
			t.Fatal(err)
		}
	}
	close(backend.gate)
	waitForCalls(t, backend, 2)
	// Give any extra (buggy) refresh goroutines a moment to show up.
	time.Sleep(10 * time.Millisecond)
	if got := backend.calls.Load(); got != 2 {
		t.Fatalf("refresh stampede: %d backend calls, want 2", got)
	}
}

// TestResolverRefreshAheadYieldsToPush is the push/refresh-ahead
// interplay regression: while a live push subscription covers the
// resolver, a cooling hit must NOT also launch a timer refresh — the
// server tells us about every change, so the re-fetch would be pure
// duplicate load. The moment the subscription drops, refresh-ahead
// takes back over.
func TestResolverRefreshAheadYieldsToPush(t *testing.T) {
	clock := simtime.NewFakeClock(time.Unix(0, 0))
	backend := &gatedBackend{ttl: 10}
	r := NewResolver(backend, simtime.Default(), ResolverConfig{
		Clock:        clock,
		RefreshAhead: 0.5,
	})
	var pushLive atomic.Bool
	pushLive.Store(true)
	r.SetPushCovered(pushLive.Load)
	ctx := context.Background()

	if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
		t.Fatal(err)
	}
	// Remaining 4s of 10: below the refresh threshold, but push-covered.
	clock.Advance(6 * time.Second)
	if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let any (buggy) refresh land
	if got := backend.calls.Load(); got != 1 {
		t.Fatalf("push-covered entry was timer-refreshed (%d backend calls)", got)
	}

	// Subscription drops (conn death, degradation): the same cooling hit
	// now refreshes, so TTL freshness is preserved without push.
	pushLive.Store(false)
	if _, err := r.Lookup(ctx, "a.test", TypeA); err != nil {
		t.Fatal(err)
	}
	waitForCalls(t, backend, 2)
}
