package bind

import (
	"context"
	"testing"
	"time"

	"hns/internal/hrpc"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// newReplyCacheEnv is newTestEnv with the server's reply caches enabled
// before the interfaces are bound.
func newReplyCacheEnv(t *testing.T) *testEnv {
	t.Helper()
	model := simtime.Default()
	net := transport.NewNetwork(model)
	s := NewServer("fiji", model)
	s.EnableReplyCache(nil, time.Hour, 0)

	z, err := NewZone("cs.washington.edu", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(z); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRecords([]RR{
		A("fiji.cs.washington.edu", "udp!fiji", 600),
		A("june.cs.washington.edu", "udp!june", 600),
	}); err != nil {
		t.Fatal(err)
	}

	stdLn, err := s.ServeStd(net, "udp", "fiji:53")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stdLn.Close() })

	hrpcLn, hb, err := s.ServeHRPC(net, "fiji:bind-hrpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hrpcLn.Close() })

	c := hrpc.NewClient(net)
	t.Cleanup(func() { c.Close() })
	return &testEnv{net: net, model: model, server: s, stdAddr: "fiji:53", hrpcB: hb, client: c}
}

func stdLookupCost(t *testing.T, c *StdClient, name string) (time.Duration, []RR) {
	t.Helper()
	var rrs []RR
	cost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		var err error
		rrs, err = c.Lookup(ctx, name, TypeA)
		return err
	})
	if err != nil {
		t.Fatalf("lookup %s: %v", name, err)
	}
	return cost, rrs
}

// TestStdReplyCacheServesRepeatWithoutLookup proves a repeat standard query
// is answered from the stored encoded reply without consulting the zones:
// mutating a zone behind the server's back leaves the cached (old) answer
// in place until an explicit invalidation, and a hit replays exactly the
// miss's simulated cost.
func TestStdReplyCacheServesRepeatWithoutLookup(t *testing.T) {
	env := newReplyCacheEnv(t)
	c := NewStdClient(env.net, "udp", env.stdAddr)
	defer c.Close()

	stdLookupCost(t, c, "june.cs.washington.edu") // warm any connection state
	missCost, rrs := stdLookupCost(t, c, "fiji.cs.washington.edu")
	if len(rrs) != 1 || string(rrs[0].Data) != "udp!fiji" {
		t.Fatalf("first lookup = %v", rrs)
	}

	// Mutate the zone directly, bypassing the Server's invalidation hooks.
	z := env.server.Zone("cs.washington.edu")
	if err := z.Add(A("fiji.cs.washington.edu", "udp!fiji2", 600)); err != nil {
		t.Fatal(err)
	}

	hitCost, rrs := stdLookupCost(t, c, "fiji.cs.washington.edu")
	if len(rrs) != 1 || string(rrs[0].Data) != "udp!fiji" {
		t.Fatalf("repeat lookup went to the zones (got %v), want cached answer", rrs)
	}
	if hitCost != missCost {
		t.Fatalf("hit cost %v != miss cost %v", hitCost, missCost)
	}
	st := env.server.StdReplyCacheStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("std reply cache stats = %+v, want 1 hit 2 misses", st)
	}

	env.server.InvalidateReplies()
	_, rrs = stdLookupCost(t, c, "fiji.cs.washington.edu")
	if len(rrs) != 2 {
		t.Fatalf("post-invalidate lookup = %v, want both records", rrs)
	}
}

// TestStdReplyCacheInvalidatedByUpdate proves a dynamic update through the
// server drops cached standard replies.
func TestStdReplyCacheInvalidatedByUpdate(t *testing.T) {
	env := newReplyCacheEnv(t)
	c := NewStdClient(env.net, "udp", env.stdAddr)
	defer c.Close()

	_, rrs := stdLookupCost(t, c, "fiji.cs.washington.edu")
	if len(rrs) != 1 {
		t.Fatalf("first lookup = %v", rrs)
	}
	rcode, _, err := env.server.Update(context.Background(), "cs.washington.edu",
		UpdateAdd, A("fiji.cs.washington.edu", "udp!fiji-b", 600))
	if err != nil || rcode != RCodeOK {
		t.Fatalf("update: %s, %v", rcode, err)
	}
	_, rrs = stdLookupCost(t, c, "fiji.cs.washington.edu")
	if len(rrs) != 2 {
		t.Fatalf("lookup after update = %v, want the new record visible", rrs)
	}
}

// TestHRPCReplyCacheInvalidatedByUpdate exercises the HRPC interface's
// inherited reply cache: repeat queries are served from it (old answer
// survives an out-of-band zone mutation) and a dynamic update through the
// interface invalidates it.
func TestHRPCReplyCacheInvalidatedByUpdate(t *testing.T) {
	env := newReplyCacheEnv(t)
	hc := NewHRPCClient(env.client, env.hrpcB)

	rrs, err := hc.Lookup(context.Background(), "fiji.cs.washington.edu", TypeA)
	if err != nil || len(rrs) != 1 {
		t.Fatalf("first lookup = %v, %v", rrs, err)
	}

	// Out-of-band mutation: the cached reply must keep serving.
	z := env.server.Zone("cs.washington.edu")
	if err := z.Add(A("fiji.cs.washington.edu", "udp!fiji-oob", 600)); err != nil {
		t.Fatal(err)
	}
	rrs, err = hc.Lookup(context.Background(), "fiji.cs.washington.edu", TypeA)
	if err != nil || len(rrs) != 1 {
		t.Fatalf("repeat lookup = %v, %v; want cached single record", rrs, err)
	}

	// A dynamic update through the server invalidates every interface.
	if _, err := hc.Update(context.Background(), "cs.washington.edu",
		UpdateAdd, A("fiji.cs.washington.edu", "udp!fiji-c", 600)); err != nil {
		t.Fatal(err)
	}
	rrs, err = hc.Lookup(context.Background(), "fiji.cs.washington.edu", TypeA)
	if err != nil || len(rrs) != 3 {
		t.Fatalf("lookup after update = %v, %v; want all three records", rrs, err)
	}
}
