package bind

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

// blockingBackend is a Lookuper whose calls charge a fixed simulated cost
// and, when armed, park on a channel until released — letting the
// stampede test pile an entire herd onto one in-progress lookup.
type blockingBackend struct {
	calls   atomic.Int64
	cost    time.Duration
	release chan struct{} // nil = don't block
	answers map[string][]RR
}

func (b *blockingBackend) Lookup(ctx context.Context, name string, t RRType) ([]RR, error) {
	b.calls.Add(1)
	if b.release != nil {
		select {
		case <-b.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	simtime.Charge(ctx, b.cost)
	rrs, ok := b.answers[name]
	if !ok {
		return nil, &NotFoundError{Name: name, Type: t, RCode: RCodeNXDomain}
	}
	return rrs, nil
}

// TestStampedeSingleBackendLookup is the miss-coalescing acceptance test:
// 64 concurrent misses of one cold key must cost the backend exactly one
// lookup, while every caller still experiences (is charged) the full
// simulated cost of a cache miss.
func TestStampedeSingleBackendLookup(t *testing.T) {
	const herd = 64
	backend := &blockingBackend{
		cost:    27 * time.Millisecond,
		release: make(chan struct{}),
		answers: map[string][]RR{
			"stampede.test": {A("stampede.test", "10.0.0.1", 600)},
		},
	}
	r := NewResolver(backend, simtime.Default(), ResolverConfig{})

	var wg sync.WaitGroup
	costs := make([]time.Duration, herd)
	errs := make([]error, herd)
	answers := make([][]RR, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			costs[i], errs[i] = simtime.Measure(context.Background(), func(ctx context.Context) error {
				rrs, err := r.Lookup(ctx, "stampede.test", TypeA)
				answers[i] = rrs
				return err
			})
		}(i)
	}

	// Release the backend only once the whole herd is attached to the one
	// flight (leader inside the backend + 63 joiners waiting).
	key := cacheKey("stampede.test", TypeA)
	deadline := time.Now().Add(10 * time.Second)
	for r.flights.waiting(key) != herd {
		if time.Now().After(deadline) {
			t.Fatalf("herd never assembled: %d/%d waiting", r.flights.waiting(key), herd)
		}
		time.Sleep(time.Millisecond)
	}
	close(backend.release)
	wg.Wait()

	if got := backend.calls.Load(); got != 1 {
		t.Fatalf("backend saw %d lookups for %d concurrent misses, want 1", got, herd)
	}
	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if costs[i] != backend.cost {
			t.Fatalf("caller %d charged %v, want the full miss cost %v", i, costs[i], backend.cost)
		}
		if len(answers[i]) != 1 || string(answers[i][0].Data) != "10.0.0.1" {
			t.Fatalf("caller %d got %v", i, answers[i])
		}
	}
	// Every caller must hold a private slice: corrupting one cannot
	// affect another or the cache.
	answers[0][0].Data[0] = 'X'
	if string(answers[1][0].Data) != "10.0.0.1" {
		t.Fatal("coalesced callers share one answer slice")
	}
	if rrs, _ := r.Lookup(context.Background(), "stampede.test", TypeA); string(rrs[0].Data) != "10.0.0.1" {
		t.Fatal("caller mutation reached the cache")
	}
}

// TestLookupAliasing is the regression test for the cache-corruption bug:
// the miss path used to return the very slice it had just cached, so a
// caller mutating its answer silently poisoned every later hit.
func TestLookupAliasing(t *testing.T) {
	backend := &blockingBackend{
		answers: map[string][]RR{
			"alias.test": {A("alias.test", "10.0.0.1", 600), A("alias.test", "10.0.0.2", 600)},
		},
	}
	r := NewResolver(backend, simtime.Default(), ResolverConfig{})
	ctx := context.Background()

	// Miss path: mutate the returned records and their Data bytes.
	got, err := r.Lookup(ctx, "alias.test", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = A("alias.test", "evil", 600)
	got[1].Data[0] = 'X'

	// Hit path: the cache must still hold the pristine answer.
	got2, err := r.Lookup(ctx, "alias.test", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2[0].Data) != "10.0.0.1" || string(got2[1].Data) != "10.0.0.2" {
		t.Fatalf("miss-path caller mutation corrupted the cache: %v", got2)
	}

	// Hit-path answers must be private too.
	got2[0].Data[0] = 'Y'
	got3, _ := r.Lookup(ctx, "alias.test", TypeA)
	if string(got3[0].Data) != "10.0.0.1" {
		t.Fatalf("hit-path caller mutation corrupted the cache: %v", got3)
	}
	if backend.calls.Load() != 1 {
		t.Fatalf("backend called %d times, want 1", backend.calls.Load())
	}
}

func TestPreloadCopiesCallerRecords(t *testing.T) {
	r := NewResolver(&blockingBackend{}, simtime.Default(), ResolverConfig{})
	rrs := []RR{A("pre.test", "10.0.0.9", 600)}
	r.Preload(rrs)
	rrs[0].Data[0] = 'X' // caller reuses its buffer
	got, err := r.Lookup(context.Background(), "pre.test", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Data) != "10.0.0.9" {
		t.Fatalf("preloaded entry shares caller bytes: %q", got[0].Data)
	}
}

func TestNegativeCache(t *testing.T) {
	clk := simtime.NewFakeClock(time.Date(1987, 11, 8, 0, 0, 0, 0, time.UTC))
	backend := &blockingBackend{cost: 27 * time.Millisecond}
	reg := metrics.NewRegistry()
	model := simtime.Default()
	r := NewResolver(backend, model, ResolverConfig{
		Clock:       clk,
		NegativeTTL: 30 * time.Second,
		Metrics:     reg,
		CacheName:   "negtest",
	})
	ctx := context.Background()

	// First miss goes to the backend and is remembered as a negative
	// answer.
	if _, err := r.Lookup(ctx, "ghost.test", TypeA); !isNotFound(err) {
		t.Fatalf("want NotFoundError, got %v", err)
	}
	if backend.calls.Load() != 1 {
		t.Fatalf("backend calls = %d", backend.calls.Load())
	}

	// Within the TTL the negative answer is served from cache — no
	// backend traffic, priced as an empty-answer probe.
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := r.Lookup(ctx, "ghost.test", TypeA)
		return err
	})
	if !isNotFound(err) {
		t.Fatalf("want NotFoundError from negative cache, got %v", err)
	}
	if backend.calls.Load() != 1 {
		t.Fatalf("negative hit still queried the backend (%d calls)", backend.calls.Load())
	}
	if cost != model.CacheHit(0) {
		t.Fatalf("negative hit charged %v, want cache probe %v", cost, model.CacheHit(0))
	}
	if got := reg.Counter(metrics.Labels("cache_negative_hits_total", "cache", "negtest")).Value(); got != 1 {
		t.Fatalf("cache_negative_hits_total = %d, want 1", got)
	}
	if got := reg.Counter(metrics.Labels("cache_negative_stores_total", "cache", "negtest")).Value(); got != 1 {
		t.Fatalf("cache_negative_stores_total = %d, want 1", got)
	}
	if st := r.NegativeStats(); st.Hits != 1 {
		t.Fatalf("NegativeStats = %+v", st)
	}

	// Past the TTL the backend is consulted again.
	clk.Advance(31 * time.Second)
	if _, err := r.Lookup(ctx, "ghost.test", TypeA); !isNotFound(err) {
		t.Fatalf("want NotFoundError, got %v", err)
	}
	if backend.calls.Load() != 2 {
		t.Fatalf("expired negative entry not refetched (%d calls)", backend.calls.Load())
	}

	// Registration of the name must become visible once the negative
	// entry expires (Purge models the admin flushing after an update).
	backend.answers = map[string][]RR{"ghost.test": {A("ghost.test", "10.1.1.1", 600)}}
	r.Purge()
	if rrs, err := r.Lookup(ctx, "ghost.test", TypeA); err != nil || len(rrs) != 1 {
		t.Fatalf("after purge: %v, %v", rrs, err)
	}
}

// TestNegativeCacheDisabledByDefault pins the default-off knob: without
// NegativeTTL every NotFound goes to the backend, exactly as before.
func TestNegativeCacheDisabledByDefault(t *testing.T) {
	backend := &blockingBackend{}
	r := NewResolver(backend, simtime.Default(), ResolverConfig{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := r.Lookup(ctx, "ghost.test", TypeA); !isNotFound(err) {
			t.Fatalf("want NotFoundError, got %v", err)
		}
	}
	if backend.calls.Load() != 3 {
		t.Fatalf("backend calls = %d, want 3 (no negative caching)", backend.calls.Load())
	}
}

func TestCacheKey(t *testing.T) {
	for _, tc := range []struct {
		name string
		t    RRType
	}{
		{"fiji.cs.washington.edu", TypeA},
		{"x", TypeHNSMeta},
		{"", 0},
		{"a.b", 65535},
	} {
		want := fmt.Sprintf("%s/%d", tc.name, tc.t)
		if got := cacheKey(tc.name, tc.t); got != want {
			t.Errorf("cacheKey(%q, %d) = %q, want %q", tc.name, tc.t, got, want)
		}
	}
}

// BenchmarkCacheKey documents the satellite win: the hand-rolled append
// formats the key with a single allocation, where fmt.Sprintf pays for
// reflection and interface boxing.
func BenchmarkCacheKey(b *testing.B) {
	const name = "hostaddr-bind.ctx.hns"
	b.Run("Append", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if cacheKey(name, TypeHNSMeta) == "" {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("Sprintf", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if fmt.Sprintf("%s/%d", name, TypeHNSMeta) == "" {
				b.Fatal("empty key")
			}
		}
	})
}

// BenchmarkResolverWarmParallel measures concurrent warm hits through the
// whole resolver (cache probe + copy + pricing), single-mutex vs sharded.
func BenchmarkResolverWarmParallel(b *testing.B) {
	const keys = 128
	for _, arm := range []struct {
		name   string
		shards int
	}{
		{"SingleMutexCache", 1},
		{"ShardedCache", 0},
	} {
		b.Run(arm.name, func(b *testing.B) {
			backend := &blockingBackend{answers: map[string][]RR{}}
			names := make([]string, keys)
			for i := range names {
				names[i] = fmt.Sprintf("host%d.bench.test", i)
				backend.answers[names[i]] = []RR{A(names[i], "10.0.0.1", 600)}
			}
			r := NewResolver(backend, simtime.Default(), ResolverConfig{Shards: arm.shards})
			ctx := context.Background()
			for _, n := range names {
				if _, err := r.Lookup(ctx, n, TypeA); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := r.Lookup(ctx, names[i%keys], TypeA); err != nil {
						b.Fail()
					}
					i++
				}
			})
			b.ReportMetric(float64(r.LockWaits())/float64(b.N), "lock-waits/op")
		})
	}
}
