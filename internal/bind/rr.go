// Package bind implements a BIND-class domain name server and resolver —
// the Berkeley Internet Name Domain server (Terry et al. 1984) as the HNS
// prototype used it.
//
// Two faces are provided, matching the prototype's two BIND interfaces:
//
//   - The standard interface: a compact DNS-style wire format with
//     hand-coded marshalling, used for ordinary lookups. This is the
//     "standard BIND library routines" whose marshalling cost the paper
//     measured at 0.65/2.6 ms.
//   - The HRPC interface: Query/Update/Transfer procedures served over the
//     Raw HRPC suite with stub-compiler ("generated") marshalling — the
//     interface the HNS uses for its meta-naming repository, and the one
//     whose marshalling expense motivated Table 3.2. Dynamic update and
//     zone transfer (used for cache preloading) live here, mirroring the
//     authors' modified BIND [Schwartz 1987].
//
// The server is authoritative over a set of zones; the resolver caches
// answers by TTL in marshalled or demarshalled form.
package bind

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// RRType is a resource-record type code. Values follow the DNS assignments
// of the era.
type RRType uint16

// Resource record types. TypeHNSMeta is the "data of unspecified type" the
// authors added to BIND for the HNS meta-information; it lives in the
// private-use range.
const (
	TypeA     RRType = 1
	TypeNS    RRType = 2
	TypeCNAME RRType = 5
	TypeSOA   RRType = 6
	TypeWKS   RRType = 11
	TypePTR   RRType = 12
	TypeHINFO RRType = 13
	TypeTXT   RRType = 16

	TypeHNSMeta RRType = 65280
)

// String implements fmt.Stringer.
func (t RRType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeWKS:
		return "WKS"
	case TypePTR:
		return "PTR"
	case TypeHINFO:
		return "HINFO"
	case TypeTXT:
		return "TXT"
	case TypeHNSMeta:
		return "HNSMETA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// ClassIN is the only record class implemented (Internet).
const ClassIN uint16 = 1

// MaxRDataLen bounds record data: "each of which can be up to 256 bytes of
// data" (paper, footnote 9).
const MaxRDataLen = 256

// MaxNameLen bounds a domain name, per the DNS specification of the era.
const MaxNameLen = 255

// RR is one resource record. Separate records under one name store
// alternate data (e.g. multiple addresses for gateway hosts).
type RR struct {
	// Name is the owner name, canonical (lower case, no trailing dot).
	Name string
	// Type is the record type.
	Type RRType
	// Class is the record class (always ClassIN here).
	Class uint16
	// TTL is the time-to-live in seconds.
	TTL uint32
	// Data is the record payload, at most MaxRDataLen bytes. Address
	// records store the textual transport address; HNSMETA records store
	// HNS meta-information.
	Data []byte
}

// String implements fmt.Stringer.
func (r RR) String() string {
	return fmt.Sprintf("%s %d %s %q", r.Name, r.TTL, r.Type, r.Data)
}

// Errors reported by record and name validation.
var (
	ErrBadName    = errors.New("bind: malformed domain name")
	ErrDataTooBig = errors.New("bind: record data exceeds 256 bytes")
)

// CanonicalName lower-cases a domain name and strips one trailing dot,
// returning an error for names that are empty, too long, or contain empty
// labels or whitespace.
func CanonicalName(name string) (string, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return "", fmt.Errorf("%w: empty name", ErrBadName)
	}
	if len(name) > MaxNameLen {
		return "", fmt.Errorf("%w: %d bytes", ErrBadName, len(name))
	}
	name = strings.ToLower(name)
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			return "", fmt.Errorf("%w: empty label in %q", ErrBadName, name)
		}
		if len(label) > 63 {
			return "", fmt.Errorf("%w: label %q exceeds 63 bytes", ErrBadName, label)
		}
		for _, c := range label {
			// Any Unicode whitespace, not just ASCII: the zone-file
			// format tokenizes on unicode.IsSpace, so a name containing
			// such a rune could never round-trip through a zone dump.
			if unicode.IsSpace(c) {
				return "", fmt.Errorf("%w: whitespace in %q", ErrBadName, name)
			}
		}
	}
	return name, nil
}

// Validate checks the record for well-formedness and canonicalizes its
// name in place.
func (r *RR) Validate() error {
	name, err := CanonicalName(r.Name)
	if err != nil {
		return err
	}
	r.Name = name
	if len(r.Data) > MaxRDataLen {
		return fmt.Errorf("%w: %d bytes on %s", ErrDataTooBig, len(r.Data), r.Name)
	}
	if r.Class == 0 {
		r.Class = ClassIN
	}
	return nil
}

// Equal reports whether two records are identical apart from TTL (the DNS
// notion of a duplicate for update purposes).
func (r RR) Equal(o RR) bool {
	return r.Name == o.Name && r.Type == o.Type && r.Class == o.Class &&
		string(r.Data) == string(o.Data)
}

// Record constructors for the common cases.

// A builds an address record mapping name to the transport address addr.
func A(name, addr string, ttl uint32) RR {
	return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, Data: []byte(addr)}
}

// CNAME builds an alias record.
func CNAME(name, target string, ttl uint32) RR {
	return RR{Name: name, Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: []byte(target)}
}

// TXT builds a text record.
func TXT(name, text string, ttl uint32) RR {
	return RR{Name: name, Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: []byte(text)}
}

// HNSMeta builds an unspecified-type record carrying HNS meta-information.
func HNSMeta(name, payload string, ttl uint32) RR {
	return RR{Name: name, Type: TypeHNSMeta, Class: ClassIN, TTL: ttl, Data: []byte(payload)}
}

// HINFO builds a host-information record.
func HINFO(name, cpuOS string, ttl uint32) RR {
	return RR{Name: name, Type: TypeHINFO, Class: ClassIN, TTL: ttl, Data: []byte(cpuOS)}
}

// SortRRs orders records deterministically (name, type, data) — used by
// zone transfers so preload contents are stable.
func SortRRs(rrs []RR) {
	sort.Slice(rrs, func(i, j int) bool {
		a, b := rrs[i], rrs[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return string(a.Data) < string(b.Data)
	})
}

// MinTTL returns the smallest TTL among records, which is what a cache must
// honour for the set; 0 if the set is empty.
func MinTTL(rrs []RR) uint32 {
	if len(rrs) == 0 {
		return 0
	}
	min := rrs[0].TTL
	for _, r := range rrs[1:] {
		if r.TTL < min {
			min = r.TTL
		}
	}
	return min
}
