package bind

import (
	"context"
	"fmt"
	"sync"

	"hns/internal/simtime"
)

// Secondary mirrors one zone from a primary server by serial-checked zone
// transfers — the replication arrangement real BIND used and the paper's
// implementation leaned on ("its implementation must be distributed and
// replicated for the usual reasons of performance, availability, and
// scalability"; the preloading experiment reuses exactly this transfer
// path). A Secondary embeds its own authoritative Server, so it answers
// queries for the mirrored zone like any other server.
type Secondary struct {
	primary *HRPCClient
	origin  string
	server  *Server
	zone    *Zone

	mu       sync.Mutex
	serial   uint32
	refreshN int
	deltaN   int
	journal  ZoneStore
}

// NewSecondary creates a secondary for the named zone, serving on a local
// Server for host. The initial contents are empty until Refresh runs.
func NewSecondary(primary *HRPCClient, zoneOrigin, host string, model *simtime.Model) (*Secondary, error) {
	z, err := NewZone(zoneOrigin, false) // mirrors never accept updates
	if err != nil {
		return nil, err
	}
	srv := NewServer(host, model)
	if err := srv.AddZone(z); err != nil {
		return nil, err
	}
	return &Secondary{primary: primary, origin: z.Origin(), server: srv, zone: z}, nil
}

// Server returns the serving face of the mirror.
func (s *Secondary) Server() *Server { return s.server }

// Serial reports the serial of the last transferred contents (0 before
// the first refresh).
func (s *Secondary) Serial() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serial
}

// Refreshes reports how many refreshes performed a transfer.
func (s *Secondary) Refreshes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshN
}

// DeltaRefreshes reports how many of those transfers were served
// incrementally (IXFR) rather than as full zone copies.
func (s *Secondary) DeltaRefreshes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltaN
}

// Restore seeds the mirror from recovered state, as a restarted bindd
// does: the next Refresh probes the primary's serial and transfers only
// if it moved, instead of paying a cold full transfer.
func (s *Secondary) Restore(serial uint32, rrs []RR) error {
	if err := s.zone.Replace(rrs, serial); err != nil {
		return err
	}
	s.mu.Lock()
	s.serial = serial
	s.mu.Unlock()
	return nil
}

// SetJournal journals every subsequently transferred zone content, so a
// restart can Restore the mirror instead of re-transferring it.
func (s *Secondary) SetJournal(j ZoneStore) {
	s.mu.Lock()
	s.journal = j
	s.mu.Unlock()
}

// Refresh checks the primary's serial and transfers the zone if it moved,
// reporting whether a transfer happened. The serial probe is cheap; an
// incremental (IXFR) transfer is tried first and pays only per changed
// record, falling back to the full per-record transfer cost when the
// primary cannot prove diff continuity from our serial.
func (s *Secondary) Refresh(ctx context.Context) (bool, error) {
	remote, err := s.primary.Serial(ctx, s.origin)
	if err != nil {
		return false, fmt.Errorf("bind: secondary %s: %w", s.origin, err)
	}
	s.mu.Lock()
	current := s.serial
	journal := s.journal
	s.mu.Unlock()
	if remote == current {
		return false, nil
	}
	if current != 0 {
		if done, err := s.refreshDelta(ctx, current, journal); err == nil && done {
			return true, nil
		}
		// Any incremental failure — window exceeded, old primary, apply
		// error — falls through to the full transfer below.
	}
	serial, rrs, err := s.primary.Transfer(ctx, s.origin)
	if err != nil {
		return false, fmt.Errorf("bind: secondary %s: %w", s.origin, err)
	}
	if err := s.zone.Replace(rrs, serial); err != nil {
		return false, err
	}
	if journal != nil {
		if err := journal.LogReplace(s.origin, serial, rrs); err != nil {
			return false, fmt.Errorf("bind: secondary %s: transfer not durable: %w", s.origin, err)
		}
	}
	s.mu.Lock()
	s.serial = serial
	s.refreshN++
	s.mu.Unlock()
	return true, nil
}

// refreshDelta attempts an incremental refresh from serial current.
// done=false with a nil error means the incremental path was unusable
// (not an error: the caller takes a full transfer).
func (s *Secondary) refreshDelta(ctx context.Context, current uint32, journal ZoneStore) (bool, error) {
	serial, diffs, ok, err := s.primary.TransferDelta(ctx, s.origin, current)
	if err != nil || !ok {
		return false, err
	}
	// Replay the primary's mutations in order. The mirror's state equals
	// the primary's at serial current, so each op must apply cleanly; any
	// surprise aborts to a full transfer rather than half-applying.
	for _, d := range diffs {
		switch d.Op {
		case UpdateAdd:
			err = s.zone.Add(d.RR)
		case UpdateRemove:
			err = s.zone.Remove(d.RR)
		default:
			err = fmt.Errorf("bind: unknown diff op %d", d.Op)
		}
		if err != nil {
			return false, fmt.Errorf("bind: secondary %s: diff apply: %w", s.origin, err)
		}
		if journal != nil {
			if err := journal.LogUpdate(s.origin, d.Op, d.RR, d.Serial); err != nil {
				return false, fmt.Errorf("bind: secondary %s: delta not durable: %w", s.origin, err)
			}
		}
	}
	// Pin the exact transferred serial: local Add/Remove bumped ours in
	// lockstep, but the primary's dedup semantics are authoritative.
	s.zone.ForceSerial(serial)
	s.server.InvalidateReplies()
	s.mu.Lock()
	s.serial = serial
	s.refreshN++
	s.deltaN++
	s.mu.Unlock()
	return true, nil
}
