package bind

import (
	"context"
	"testing"

	"hns/internal/hrpc"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// newPrimary stands up a primary with an updatable zone and returns an
// HRPC client to it.
func newPrimary(t *testing.T) (*Server, *HRPCClient, *transport.Network) {
	t.Helper()
	model := simtime.Default()
	net := transport.NewNetwork(model)
	s := NewServer("primary", model)
	z, err := NewZone("repl.test", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(z); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRecords([]RR{
		A("a.repl.test", "1", 600),
		A("b.repl.test", "2", 600),
	}); err != nil {
		t.Fatal(err)
	}
	ln, b, err := s.ServeHRPC(net, "primary:bind-hrpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	hc := hrpc.NewClient(net)
	t.Cleanup(func() { hc.Close() })
	return s, NewHRPCClient(hc, b), net
}

func TestSecondaryMirrorsZone(t *testing.T) {
	_, client, _ := newPrimary(t)
	model := simtime.Default()
	sec, err := NewSecondary(client, "repl.test", "mirror", model)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Before the first refresh: empty.
	if rcode, _ := sec.Server().Query(ctx, "a.repl.test", TypeA); rcode != RCodeNXDomain {
		t.Fatalf("pre-refresh rcode = %v", rcode)
	}

	changed, err := sec.Refresh(ctx)
	if err != nil || !changed {
		t.Fatalf("Refresh = %v, %v", changed, err)
	}
	rcode, rrs := sec.Server().Query(ctx, "a.repl.test", TypeA)
	if rcode != RCodeOK || len(rrs) != 1 || string(rrs[0].Data) != "1" {
		t.Fatalf("post-refresh query = %v %v", rcode, rrs)
	}
	if sec.Serial() == 0 || sec.Refreshes() != 1 {
		t.Fatalf("serial/refreshes = %d/%d", sec.Serial(), sec.Refreshes())
	}
}

func TestSecondaryRefreshIsSerialGated(t *testing.T) {
	primary, client, _ := newPrimary(t)
	model := simtime.Default()
	sec, err := NewSecondary(client, "repl.test", "mirror", model)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sec.Refresh(ctx); err != nil {
		t.Fatal(err)
	}

	// Unchanged primary: refresh is a cheap probe, no transfer.
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		changed, err := sec.Refresh(ctx)
		if changed {
			t.Error("refresh transferred an unchanged zone")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost > 100*simtime.Default().ZoneXferPerRR {
		t.Fatalf("no-op refresh cost %v — looks like a transfer", cost)
	}

	// Primary changes: the next refresh picks it up.
	if err := primary.Zone("repl.test").Add(A("c.repl.test", "3", 600)); err != nil {
		t.Fatal(err)
	}
	changed, err := sec.Refresh(ctx)
	if err != nil || !changed {
		t.Fatalf("Refresh after update = %v, %v", changed, err)
	}
	rcode, rrs := sec.Server().Query(ctx, "c.repl.test", TypeA)
	if rcode != RCodeOK || len(rrs) != 1 {
		t.Fatalf("new record not mirrored: %v %v", rcode, rrs)
	}
	// Removals propagate too.
	if err := primary.Zone("repl.test").Remove(RR{Name: "a.repl.test", Type: TypeA}); err != nil {
		t.Fatal(err)
	}
	if _, err := sec.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if rcode, _ := sec.Server().Query(ctx, "a.repl.test", TypeA); rcode != RCodeNXDomain {
		t.Fatalf("removed record survives on mirror: %v", rcode)
	}
}

func TestSecondaryRejectsUpdates(t *testing.T) {
	_, client, _ := newPrimary(t)
	sec, err := NewSecondary(client, "repl.test", "mirror", simtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sec.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	rcode, _, err := sec.Server().Update(ctx, "repl.test", UpdateAdd, A("x.repl.test", "9", 60))
	if rcode != RCodeRefused || err == nil {
		t.Fatalf("mirror accepted an update: %v %v", rcode, err)
	}
}

func TestZoneReplace(t *testing.T) {
	z, _ := NewZone("r.test", false)
	if err := z.Replace([]RR{A("a.r.test", "1", 60)}, 42); err != nil {
		t.Fatal(err)
	}
	if z.Serial() != 42 || z.Count() != 1 {
		t.Fatalf("serial/count = %d/%d", z.Serial(), z.Count())
	}
	// Replace rejects foreign names wholesale.
	if err := z.Replace([]RR{A("a.other.test", "1", 60)}, 43); err == nil {
		t.Fatal("foreign record accepted")
	}
	// Failed replace must not have clobbered contents.
	if z.Count() != 1 || z.Serial() != 42 {
		t.Fatal("failed Replace mutated the zone")
	}
}
