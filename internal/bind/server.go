package bind

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hns/internal/cache"
	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// Server is an authoritative BIND server over a set of zones. One Server
// can expose both the standard interface and the HRPC interface at once
// (the prototype ran a conventional BIND and a separate modified BIND; a
// deployment here does the same by running two Servers).
type Server struct {
	host  string
	model *simtime.Model
	reg   *metrics.Registry

	mu    sync.RWMutex
	zones []*Zone // sorted longest-origin-first for suffix matching

	// Reply caching (Table 3.2 applied server-side). stdReplies memoizes
	// whole encoded standard-interface responses; replyCfg is propagated
	// to the HRPC servers this Server spawns, whose own reply caches
	// memoize marshalled results. Both are dropped by InvalidateReplies,
	// which every zone mutation through this Server calls.
	stdReplies atomic.Pointer[stdReplyCache]
	replyMu    sync.Mutex
	replyCfg   *replyCacheConfig
	hrpcSrvs   []*hrpc.Server

	// journal, when set, receives every zone mutation made through this
	// Server before the mutation is acknowledged. journalMu serializes
	// apply+journal pairs so journaled serials are strictly increasing
	// per zone. nil (the default) is the paper's in-memory BIND.
	journalMu sync.Mutex
	journal   ZoneStore

	// gate, when set, vets dynamic updates before they apply — the
	// sharded meta-store's ownership check. nil (the default) accepts
	// every update the zone allows, exactly the unsharded server.
	gate atomic.Pointer[updateGateHolder]

	// pushTab, when set (EnablePush), holds the push-invalidation
	// subscriber table; every applied update fans a notification out to
	// it. nil (the default) sends nothing — the paper's poll-only server.
	pushTab pushTabPtr
}

// UpdateGate vets a dynamic update before it is applied. A nil return
// admits the update; a *NotOwnerError refuses it with RCodeNotOwner so
// clients re-route to the owning shard (any other error yields REFUSED).
type UpdateGate interface {
	AllowUpdate(zone, name string) error
}

// updateGateHolder wraps the interface so it fits an atomic.Pointer.
type updateGateHolder struct{ g UpdateGate }

// SetUpdateGate installs (or, with nil, removes) the server's dynamic-
// update gate. Safe to call while serving.
func (s *Server) SetUpdateGate(g UpdateGate) {
	if g == nil {
		s.gate.Store(nil)
		return
	}
	s.gate.Store(&updateGateHolder{g: g})
}

// replyCacheConfig records the EnableReplyCache parameters so HRPC servers
// created later inherit them.
type replyCacheConfig struct {
	clock      simtime.Clock
	ttl        time.Duration
	maxEntries int
}

// stdReplyCache memoizes encoded standard-interface responses keyed by the
// request bytes past the 2-byte message ID. A hit skips decode, zone
// lookup, and encode: it copies the stored response and patches the ID.
type stdReplyCache struct {
	ttl   time.Duration
	cache *cache.TTL[stdCachedReply]

	hits, misses, invalidates *metrics.Counter
}

// stdCachedReply is one memoized response plus the simulated cost the
// original exchange charged; a hit replays that cost, so caching changes
// real CPU and allocations, never simulated time.
type stdCachedReply struct {
	reply []byte
	cost  time.Duration
}

// NewServer creates a zoneless server on host. It records its query,
// update, and transfer counters into the process-wide metrics registry.
func NewServer(host string, model *simtime.Model) *Server {
	return &Server{host: host, model: model, reg: metrics.Default()}
}

// Host reports the server's host name.
func (s *Server) Host() string { return s.host }

// EnableReplyCache equips the server's interfaces with TTL-bounded
// marshalled-reply caches of at most maxEntries entries each (0 =
// unbounded): the standard interface caches whole encoded responses, and
// every HRPC server the Server has spawned (or spawns later) caches
// marshalled query/serial results. A nil clock uses real time. Zone
// mutations through this Server invalidate both; the TTL bounds staleness
// from mutations that bypass it (direct Zone.Add, secondary refresh —
// bindd invalidates after a transfer lands).
func (s *Server) EnableReplyCache(clock simtime.Clock, ttl time.Duration, maxEntries int) {
	if ttl <= 0 {
		return
	}
	s.stdReplies.Store(&stdReplyCache{
		ttl:   ttl,
		cache: cache.New[stdCachedReply](clock, maxEntries),
		hits: s.reg.Counter(metrics.Labels("reply_cache_hit_total",
			"server", "bind-std@"+s.host)),
		misses: s.reg.Counter(metrics.Labels("reply_cache_miss_total",
			"server", "bind-std@"+s.host)),
		invalidates: s.reg.Counter(metrics.Labels("reply_cache_invalidate_total",
			"server", "bind-std@"+s.host)),
	})
	s.replyMu.Lock()
	defer s.replyMu.Unlock()
	s.replyCfg = &replyCacheConfig{clock: clock, ttl: ttl, maxEntries: maxEntries}
	for _, hs := range s.hrpcSrvs {
		hs.EnableReplyCache(clock, ttl, maxEntries)
	}
}

// InvalidateReplies drops every cached reply on every interface. Zone
// mutations through the Server call it automatically; callers that mutate
// zones behind its back (secondary refresh) call it themselves.
func (s *Server) InvalidateReplies() {
	if rc := s.stdReplies.Load(); rc != nil {
		rc.cache.Purge()
		rc.invalidates.Inc()
	}
	s.replyMu.Lock()
	srvs := append([]*hrpc.Server(nil), s.hrpcSrvs...)
	s.replyMu.Unlock()
	for _, hs := range srvs {
		hs.InvalidateReplies()
	}
}

// StdReplyCacheStats reports the standard interface's reply-cache counters
// (zeros when the cache is disabled).
func (s *Server) StdReplyCacheStats() cache.Stats {
	if rc := s.stdReplies.Load(); rc != nil {
		return rc.cache.Stats()
	}
	return cache.Stats{}
}

// AddZone makes the server authoritative for z. Duplicate origins are
// rejected.
func (s *Server) AddZone(z *Zone) error {
	s.mu.Lock()
	for _, have := range s.zones {
		if have.Origin() == z.Origin() {
			s.mu.Unlock()
			return fmt.Errorf("bind: already authoritative for %s", z.Origin())
		}
	}
	s.zones = append(s.zones, z)
	sort.Slice(s.zones, func(i, j int) bool {
		return len(s.zones[i].Origin()) > len(s.zones[j].Origin())
	})
	s.mu.Unlock()
	s.InvalidateReplies() // a new zone changes answers (REFUSED → data)
	return nil
}

// Zone returns the zone with the given origin, or nil.
func (s *Server) Zone(origin string) *Zone {
	origin, err := CanonicalName(origin)
	if err != nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, z := range s.zones {
		if z.Origin() == origin {
			return z
		}
	}
	return nil
}

// findZone locates the longest-origin zone containing name.
func (s *Server) findZone(name string) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, z := range s.zones {
		if z.Contains(name) {
			return z
		}
	}
	return nil
}

// Query answers one lookup, charging the server-side lookup cost.
func (s *Server) Query(ctx context.Context, name string, t RRType) (RCode, []RR) {
	rcode, rrs := s.query(ctx, name, t)
	s.reg.Counter(metrics.Labels("bind_queries_total",
		"type", t.String(), "rcode", rcode.String())).Inc()
	return rcode, rrs
}

func (s *Server) query(ctx context.Context, name string, t RRType) (RCode, []RR) {
	simtime.Charge(ctx, s.model.BindServerLookup)
	name, err := CanonicalName(name)
	if err != nil {
		return RCodeFormErr, nil
	}
	z := s.findZone(name)
	if z == nil {
		return RCodeRefused, nil // not authoritative
	}
	rrs, err := z.Lookup(name, t)
	if err != nil {
		return RCodeServFail, nil
	}
	if len(rrs) == 0 {
		return RCodeNXDomain, nil
	}
	return RCodeOK, rrs
}

// Update operations for the dynamic-update extension.
const (
	UpdateAdd    = 0
	UpdateRemove = 1
)

// SetJournal routes every subsequent zone mutation made through this
// Server into j before it is acknowledged. A nil journal (the default)
// is the purely in-memory server. Normally called via Durable.Attach.
func (s *Server) SetJournal(j ZoneStore) {
	s.journalMu.Lock()
	s.journal = j
	s.journalMu.Unlock()
}

// Update applies a dynamic update to the named zone, charging the
// server-side update cost. Only zones created with allowUpdate accept it.
// With a journal set, the update is journaled before the OK is returned:
// a journal failure yields SERVFAIL and the caller must treat the update
// as not applied (it may be in memory but will not survive a restart).
func (s *Server) Update(ctx context.Context, zoneOrigin string, op uint32, rr RR) (rcode RCode, serial uint32, err error) {
	defer func() {
		s.reg.Counter(metrics.Labels("bind_updates_total", "rcode", rcode.String())).Inc()
	}()
	simtime.Charge(ctx, s.model.BindServerUpdate)
	z := s.Zone(zoneOrigin)
	if z == nil {
		return RCodeRefused, 0, fmt.Errorf("bind: not authoritative for %q", zoneOrigin)
	}
	if !z.AllowsUpdate() {
		return RCodeRefused, z.Serial(), ErrUpdateDenied
	}
	if h := s.gate.Load(); h != nil {
		if gerr := h.g.AllowUpdate(z.Origin(), rr.Name); gerr != nil {
			var noe *NotOwnerError
			if errors.As(gerr, &noe) {
				return RCodeNotOwner, z.Serial(), gerr
			}
			return RCodeRefused, z.Serial(), gerr
		}
	}
	s.journalMu.Lock()
	journal := s.journal
	if journal == nil {
		// No journal: release immediately, mutations need no ordering
		// beyond the zone's own lock (the bit-identical in-memory path).
		s.journalMu.Unlock()
	} else {
		defer s.journalMu.Unlock()
	}
	switch op {
	case UpdateAdd:
		err = z.Add(rr)
	case UpdateRemove:
		err = z.Remove(rr)
	default:
		return RCodeNotImp, z.Serial(), fmt.Errorf("bind: unknown update op %d", op)
	}
	if err != nil {
		return RCodeServFail, z.Serial(), err
	}
	serial = z.Serial()
	if journal != nil {
		if jerr := journal.LogUpdate(z.Origin(), op, rr, serial); jerr != nil {
			return RCodeServFail, serial, fmt.Errorf("bind: update not durable: %w", jerr)
		}
	}
	// The zone changed: cached encoded replies are now stale. Dropping
	// them here (rather than per-name) keeps the invalidation as simple
	// as the TTL scheme the paper's caching leans on.
	s.InvalidateReplies()
	// NOTIFY fan-out: subscribers learn of the serial bump now instead
	// of on their next poll. No-op unless EnablePush was called.
	s.publishUpdate(z.Origin(), rr.Name, serial)
	return RCodeOK, serial, nil
}

// Transfer returns the zone's full contents (AXFR), charging the per-record
// transfer cost — the mechanism the HNS uses to preload its cache.
func (s *Server) Transfer(ctx context.Context, zoneOrigin string) (RCode, uint32, []RR) {
	z := s.Zone(zoneOrigin)
	if z == nil {
		return RCodeRefused, 0, nil
	}
	rrs := z.All()
	simtime.Charge(ctx, s.model.ZoneXfer(len(rrs)))
	s.reg.Counter("bind_transfers_total").Inc()
	s.reg.Counter("bind_transfer_records_total").Add(int64(len(rrs)))
	return RCodeOK, z.Serial(), rrs
}

// ---- Standard interface (DNS-style wire, hand marshalling).

// StdHandler adapts the server to the standard wire protocol. Query only —
// the conventional BIND of the era had no dynamic update or client-visible
// transfer call.
//
// With a reply cache enabled, a repeat of an identical question (compared
// as raw bytes past the 2-byte message ID) is answered from the stored
// encoded response with the ID patched in — no decode, no zone lookup, no
// encode. The recorded simulated cost is replayed, so the cache never
// changes simulated time, and only responses to well-formed questions are
// cached (resp.ID == req ID there, which is what makes ID patching exact).
func (s *Server) StdHandler() transport.Handler {
	return func(ctx context.Context, req []byte) ([]byte, error) {
		rc := s.stdReplies.Load()
		var key string
		if rc != nil && len(req) >= 2 {
			key = string(req[2:])
			if e, ok := rc.cache.Get(key); ok {
				rc.hits.Inc()
				simtime.Charge(ctx, e.cost)
				out := make([]byte, len(e.reply))
				copy(out, e.reply)
				copy(out[:2], req[:2])
				return out, nil
			}
			rc.misses.Inc()
			// Meter the exchange privately so its cost can be recorded
			// for replay; the deferred Charge forwards it to the caller.
			m := simtime.NewMeter()
			outer := ctx
			ctx = simtime.WithMeter(ctx, m)
			defer func() { simtime.Charge(outer, m.Elapsed()) }()
		}
		q, err := DecodeMessage(req)
		resp := &Message{Response: true, QName: "invalid"}
		if err != nil {
			// The question may be unrecoverable; answer FORMERR with a
			// placeholder name so the response still encodes.
			resp.RCode = RCodeFormErr
			return EncodeMessage(resp)
		}
		resp.ID = q.ID
		resp.QName = q.QName
		resp.QType = q.QType
		if q.Response {
			resp.RCode = RCodeFormErr
			return EncodeMessage(resp)
		}
		resp.RCode, resp.Answers = s.Query(ctx, q.QName, q.QType)
		out, err := EncodeMessage(resp)
		if err == nil && rc != nil && key != "" {
			rc.cache.Put(key, stdCachedReply{
				reply: out,
				cost:  simtime.From(ctx).Elapsed(),
			}, rc.ttl)
		}
		return out, err
	}
}

// ServeStd binds the standard interface at addr over the named transport
// (conventionally "udp"; port 53 in spirit).
func (s *Server) ServeStd(net *transport.Network, transportName, addr string) (transport.Listener, error) {
	tr, err := net.Transport(transportName)
	if err != nil {
		return nil, err
	}
	return tr.Listen(addr, s.StdHandler())
}

// ---- HRPC interface (Raw suite, generated marshalling).

// HRPCProgram and HRPCVersion identify the BIND HRPC interface.
const (
	HRPCProgram = 100017
	HRPCVersion = 1
)

// rrType is the IDL shape of one resource record on the HRPC interface.
var rrType = marshal.TStruct(
	marshal.TString, // name
	marshal.TUint32, // type
	marshal.TUint32, // class
	marshal.TUint32, // ttl
	marshal.TBytes,  // data
)

// The HRPC procedures. Marshalling is priced explicitly per message by
// record count (Table 3.2), so the stubs use StyleNone.
var (
	procQuery = hrpc.Procedure{
		Name: "BINDQuery", ID: 1,
		Args:  marshal.TStruct(marshal.TString, marshal.TUint32),
		Ret:   marshal.TStruct(marshal.TUint32, marshal.TList(rrType)),
		Style: marshal.StyleNone,
		// Read-only and deterministic given zone state: eligible for the
		// server's marshalled-reply cache.
		Cacheable: true,
	}
	procUpdate = hrpc.Procedure{
		Name: "BINDUpdate", ID: 2,
		Args:  marshal.TStruct(marshal.TString, marshal.TUint32, rrType),
		Ret:   marshal.TStruct(marshal.TUint32, marshal.TUint32),
		Style: marshal.StyleNone,
	}
	procTransfer = hrpc.Procedure{
		Name: "BINDTransfer", ID: 3,
		Args:  marshal.TStruct(marshal.TString),
		Ret:   marshal.TStruct(marshal.TUint32, marshal.TUint32, marshal.TList(rrType)),
		Style: marshal.StyleNone,
	}
	procSerial = hrpc.Procedure{
		Name: "BINDSerial", ID: 4,
		Args:      marshal.TStruct(marshal.TString),
		Ret:       marshal.TStruct(marshal.TUint32, marshal.TUint32),
		Style:     marshal.StyleNone,
		Cacheable: true, // cheap freshness probe; read-only
	}
)

func rrToValue(rr RR) marshal.Value {
	return marshal.StructV(
		marshal.Str(rr.Name),
		marshal.U32(uint32(rr.Type)),
		marshal.U32(uint32(rr.Class)),
		marshal.U32(rr.TTL),
		marshal.BytesV(rr.Data),
	)
}

func valueToRR(v marshal.Value) (RR, error) {
	if v.Kind != marshal.KindStruct || v.Len() != 5 {
		return RR{}, fmt.Errorf("bind: bad RR value %v", v)
	}
	name, err := v.Items[0].AsString()
	if err != nil {
		return RR{}, err
	}
	t, err := v.Items[1].AsU32()
	if err != nil {
		return RR{}, err
	}
	class, err := v.Items[2].AsU32()
	if err != nil {
		return RR{}, err
	}
	ttl, err := v.Items[3].AsU32()
	if err != nil {
		return RR{}, err
	}
	data, err := v.Items[4].AsBytes()
	if err != nil {
		return RR{}, err
	}
	return RR{Name: name, Type: RRType(t), Class: uint16(class), TTL: ttl, Data: data}, nil
}

func rrsToList(rrs []RR) marshal.Value {
	items := make([]marshal.Value, 0, len(rrs))
	for _, rr := range rrs {
		items = append(items, rrToValue(rr))
	}
	return marshal.ListV(items...)
}

func listToRRs(v marshal.Value) ([]RR, error) {
	out := make([]RR, 0, v.Len())
	for _, it := range v.Items {
		rr, err := valueToRR(it)
		if err != nil {
			return nil, err
		}
		out = append(out, rr)
	}
	return out, nil
}

// HRPCServer wraps the server in the HRPC interface program. The returned
// server inherits any reply-cache configuration (EnableReplyCache) and is
// invalidated along with the standard interface on zone mutations.
func (s *Server) HRPCServer() *hrpc.Server {
	hs := hrpc.NewServer("bind-hrpc@"+s.host, HRPCProgram, HRPCVersion)
	s.replyMu.Lock()
	if s.replyCfg != nil {
		hs.EnableReplyCache(s.replyCfg.clock, s.replyCfg.ttl, s.replyCfg.maxEntries)
	}
	s.hrpcSrvs = append(s.hrpcSrvs, hs)
	s.replyMu.Unlock()
	hs.Register(procQuery, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		name, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		qt, err := args.Items[1].AsU32()
		if err != nil {
			return marshal.Value{}, err
		}
		rcode, rrs := s.Query(ctx, name, RRType(qt))
		return marshal.StructV(marshal.U32(uint32(rcode)), rrsToList(rrs)), nil
	})
	hs.Register(procUpdate, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		zone, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		op, err := args.Items[1].AsU32()
		if err != nil {
			return marshal.Value{}, err
		}
		rr, err := valueToRR(args.Items[2])
		if err != nil {
			return marshal.Value{}, err
		}
		rcode, serial, uerr := s.Update(ctx, zone, op, rr)
		// NOTOWNER travels in-band (rcode + serial) rather than as a
		// remote error: it is a routing hint, not a fault, and the
		// client's breakers must not count it against the endpoint.
		if uerr != nil && rcode != RCodeOK && rcode != RCodeNotOwner {
			return marshal.Value{}, fmt.Errorf("%s: %v", rcode, uerr)
		}
		return marshal.StructV(marshal.U32(uint32(rcode)), marshal.U32(serial)), nil
	})
	hs.Register(procTransfer, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		zone, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		rcode, serial, rrs := s.Transfer(ctx, zone)
		return marshal.StructV(marshal.U32(uint32(rcode)), marshal.U32(serial), rrsToList(rrs)), nil
	})
	hs.Register(procSerial, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		zone, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		z := s.Zone(zone)
		if z == nil {
			return marshal.StructV(marshal.U32(uint32(RCodeRefused)), marshal.U32(0)), nil
		}
		return marshal.StructV(marshal.U32(uint32(RCodeOK)), marshal.U32(z.Serial())), nil
	})
	s.registerBatch(hs)
	s.registerPush(hs)
	return hs
}

// ServeHRPC binds the HRPC interface at addr over the Raw suite (as the
// prototype did) and returns the listener plus the binding.
func (s *Server) ServeHRPC(net *transport.Network, addr string) (transport.Listener, hrpc.Binding, error) {
	return hrpc.Serve(net, s.HRPCServer(), hrpc.SuiteRaw, s.host, addr)
}

// LoadRecords bulk-adds records to the server's zones, routing each to the
// zone containing it. Useful for test and daemon setup. With a journal
// set, each touched zone's full contents are journaled as one replace
// record once the load completes.
func (s *Server) LoadRecords(rrs []RR) error {
	s.journalMu.Lock()
	journal := s.journal
	if journal == nil {
		s.journalMu.Unlock()
	} else {
		defer s.journalMu.Unlock()
	}
	touched := make(map[*Zone]bool)
	for _, rr := range rrs {
		name, err := CanonicalName(rr.Name)
		if err != nil {
			return err
		}
		z := s.findZone(name)
		if z == nil {
			return fmt.Errorf("bind: no zone for %s", name)
		}
		if err := z.Add(rr); err != nil {
			return err
		}
		touched[z] = true
	}
	if journal != nil {
		for z := range touched {
			if err := journal.LogReplace(z.Origin(), z.Serial(), z.All()); err != nil {
				return fmt.Errorf("bind: load not durable for %s: %w", z.Origin(), err)
			}
		}
	}
	s.InvalidateReplies() // bulk load changes answers wholesale
	return nil
}

// ZoneOrigins lists the origins the server is authoritative for.
func (s *Server) ZoneOrigins() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.zones))
	for _, z := range s.zones {
		out = append(out, z.Origin())
	}
	sort.Strings(out)
	return out
}

// String implements fmt.Stringer.
func (s *Server) String() string {
	return fmt.Sprintf("bind[%s zones=%s]", s.host, strings.Join(s.ZoneOrigins(), ","))
}
