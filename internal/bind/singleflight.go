package bind

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hns/internal/simtime"
)

// flightGroup coalesces concurrent cache misses for the same key into one
// backend lookup — the classic singleflight discipline, specialised for
// the resolver.
//
// The subtlety is simulated cost. The paper's tables price what one client
// *experiences*: a cache-cold FindNSM costs the full lookup whether or not
// some other client happens to be fetching the same record at the same
// instant. So the leader runs the backend call against a private meter,
// and every caller (leader and joiners alike) is charged the captured
// cost on its own meter. Coalescing therefore changes backend load — N
// concurrent misses cost the meta-BIND one lookup — without perturbing a
// single Table 3.1/3.2 cell.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress backend lookup.
type flight struct {
	done chan struct{} // closed when the leader finishes

	// waiters counts every caller attached to this flight, leader
	// included (read by the stampede test to release the backend only
	// once the whole herd has piled up).
	waiters atomic.Int64

	// Results, valid after done is closed. rrs is the leader's private
	// copy; each waiter re-copies before returning (see copyRRs).
	rrs  []RR
	err  error
	cost time.Duration // simulated cost of the backend lookup
}

// do executes fn for key, coalescing with an in-progress flight for the
// same key if one exists. It reports the answer, the simulated cost the
// caller must charge, and whether this caller joined an existing flight
// rather than leading one. A caller whose ctx dies while waiting detaches
// with ctx.Err() — the flight itself keeps running for the others.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) ([]RR, error)) (rrs []RR, cost time.Duration, joined bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		f.waiters.Add(1)
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.rrs, f.cost, true, f.err
		case <-ctx.Done():
			return nil, 0, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	f.waiters.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	// Lead: run the backend lookup against a private meter so its cost
	// can be replayed onto every waiter's meter, exactly once each.
	meter := simtime.NewMeter()
	f.rrs, f.err = fn(simtime.WithMeter(ctx, meter))
	f.cost = meter.Elapsed()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.rrs, f.cost, false, f.err
}

// waiting reports how many callers are currently attached to the flight
// for key (0 when none is in progress). Test hook.
func (g *flightGroup) waiting(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.waiters.Load()
	}
	return 0
}
