package bind

// Client side of the push-invalidation plane: the incremental-transfer
// call and the Subscriber state machine.
//
// A Subscriber owns one dedicated connection (hrpc.StickyConn) to the
// authoritative server. It registers interest in a zone (optionally a
// name set), then sits on the connection's push channel: every dynamic
// update the server applies arrives as a NOTIFY frame, decoded and
// handed to OnNotify — typically a cache-invalidation hook. When the
// connection dies it redials and resubscribes *with the last serial it
// saw*; the server's reply serial reveals whether updates were missed
// while disconnected, and the gap is closed by an IXFR catch-up that
// replays exactly the missed mutations as synthetic notifications. If
// the diff window cannot cover the gap, OnReset fires instead — the
// consumer must treat everything it cached as suspect.
//
// Degradation is automatic and latched: an old server (no Subscribe
// procedure), a push-incapable connection (legacy serialized framing),
// or a full subscriber table all mark the Subscriber degraded, after
// which it stays silent and the consumer's TTL polling — which push
// never replaces, only quiets — carries on exactly as before.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/push"
	"hns/internal/simtime"
)

// TransferDelta asks the server for the zone's changes since serial
// since. ok=false means the incremental path is unusable — old server
// (latched), window exceeded, or unknown zone — and the caller should
// fall back to a full Transfer. An up-to-date caller gets (serial,
// nil, true).
func (c *HRPCClient) TransferDelta(ctx context.Context, zone string, since uint32) (uint32, []DiffRec, bool, error) {
	if c.noIxfr.Load() {
		return 0, nil, false, nil
	}
	model := c.c.Network().Model()
	simtime.Charge(ctx, model.GenMarshalRequest)
	ret, err := c.c.Call(ctx, c.b, procIxfr, marshal.StructV(
		marshal.Str(zone), marshal.U32(since),
	))
	if err != nil {
		if hrpc.ProcUnavailable(err) {
			// Old server: remember and stop probing.
			c.noIxfr.Store(true)
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	rcode, _ := ret.Items[0].AsU32()
	serial, _ := ret.Items[1].AsU32()
	full, _ := ret.Items[2].AsU32()
	if RCode(rcode) != RCodeOK {
		return serial, nil, false, fmt.Errorf("bind: ixfr refused: %s", RCode(rcode))
	}
	if full == ixfrFull {
		return serial, nil, false, nil
	}
	payload, err := ret.Items[3].AsBytes()
	if err != nil {
		return serial, nil, false, err
	}
	diffs, err := decodeDiffs(zone, payload)
	if err != nil {
		return serial, nil, false, err
	}
	// Incremental demarshalling is priced per record moved, like the
	// full transfer — just over far fewer records.
	marshal.ChargeRecords(ctx, model, marshal.StyleGenerated, len(diffs))
	return serial, diffs, true, nil
}

// SubscribeConfig configures a Subscriber.
type SubscribeConfig struct {
	// Zone is the zone whose updates to watch (required).
	Zone string
	// Names, when non-empty, narrows delivery to these owner names.
	// Zone-level events (empty-Name notifications) are always delivered.
	Names []string
	// OnNotify receives each invalidation — live pushes and catch-up
	// replays alike. It runs on the connection's reader goroutine, so it
	// must be fast (a cache delete, a channel send).
	OnNotify func(push.Notification)
	// OnReset fires when continuity was lost: the server could not
	// replay the gap, so anything cached from this zone is suspect.
	// Optional; when nil a reset simply resumes from the new serial.
	OnReset func()
	// Backoff is the wait between redial attempts after a connection
	// death (default 500ms). Real time, not simulated: connection
	// maintenance is a background activity, priced to no caller.
	Backoff time.Duration
	// Metrics receives the push_client_* counters (default
	// metrics.Default()).
	Metrics *metrics.Registry
}

// Subscriber maintains one push subscription across connection deaths.
type Subscriber struct {
	c   *HRPCClient
	cfg SubscribeConfig

	notified   *metrics.Counter // push_client_notify_total
	resubs     *metrics.Counter // push_client_resubscribe_total
	caughtUp   *metrics.Counter // push_client_catchup_records_total
	resets     *metrics.Counter // push_client_resets_total
	degradedCt *metrics.Counter // push_client_degraded_total

	mu         sync.Mutex
	lastSerial uint32
	active     bool
	degraded   bool
	conn       *hrpc.StickyConn
	closed     bool

	wg sync.WaitGroup
}

// errDegrade marks conditions under which the subscriber permanently
// falls back to TTL polling rather than retrying.
var errDegrade = errors.New("bind: push unavailable, degrading to poll")

// NewSubscriber creates a Subscriber speaking to c's server. Call Start
// to begin; the zero value of lastSerial means "no history" — the first
// successful subscribe adopts the server's serial without catch-up.
func NewSubscriber(c *HRPCClient, cfg SubscribeConfig) *Subscriber {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default()
	}
	r := cfg.Metrics
	return &Subscriber{
		c:          c,
		cfg:        cfg,
		notified:   r.Counter("push_client_notify_total"),
		resubs:     r.Counter("push_client_resubscribe_total"),
		caughtUp:   r.Counter("push_client_catchup_records_total"),
		resets:     r.Counter("push_client_resets_total"),
		degradedCt: r.Counter("push_client_degraded_total"),
	}
}

// Start launches the maintenance loop. It returns immediately; use
// Active to observe whether the subscription is live.
func (s *Subscriber) Start() {
	s.wg.Add(1)
	go s.run()
}

// Close tears the subscription down and waits for the loop to exit.
func (s *Subscriber) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.conn = nil
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	s.wg.Wait()
	return nil
}

// Active reports whether a live push subscription currently stands.
// Consumers use it to suppress redundant freshness work (refresh-ahead)
// only while pushes actually flow.
func (s *Subscriber) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Degraded reports whether the subscriber has permanently fallen back
// to TTL polling (old peer, legacy framing, or table overflow).
func (s *Subscriber) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// LastSerial reports the newest zone serial the subscriber has fully
// processed (via push or catch-up): every invalidation up to this
// serial has been delivered to OnNotify and OnNotify has returned.
func (s *Subscriber) LastSerial() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSerial
}

func (s *Subscriber) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Subscriber) run() {
	defer s.wg.Done()
	for !s.isClosed() {
		err := s.session()
		if errors.Is(err, errDegrade) {
			s.mu.Lock()
			s.degraded = true
			s.mu.Unlock()
			s.degradedCt.Inc()
			return
		}
		if s.isClosed() {
			return
		}
		_ = err // transient: dial failure or conn death; retry after backoff
		time.Sleep(s.cfg.Backoff)
	}
}

// session runs one subscription lifetime: dial, subscribe, catch up,
// then block until the connection dies or the Subscriber closes.
func (s *Subscriber) session() error {
	// Subscription upkeep is background work priced to nobody: give it a
	// throwaway meter so no caller's bill moves.
	ctx := simtime.WithMeter(context.Background(), simtime.NewMeter())
	sc, err := s.c.c.DialSticky(ctx, s.c.b)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sc.Close()
		return nil
	}
	s.conn = sc
	s.mu.Unlock()

	died := make(chan struct{})
	var dieOnce sync.Once
	ok := sc.SetPushHandler(func(body []byte, perr error) {
		if perr != nil {
			dieOnce.Do(func() { close(died) })
			return
		}
		n, derr := push.DecodeNotification(body)
		if derr != nil {
			return // malformed frame: ignore, polling still bounds staleness
		}
		if s.cfg.OnNotify != nil {
			s.cfg.OnNotify(n)
		}
		// The serial advances only after OnNotify returns, so LastSerial
		// is a processed watermark: once it reaches serial S, every
		// invalidation up to S has been applied, not merely received.
		s.mu.Lock()
		if n.Serial > s.lastSerial {
			s.lastSerial = n.Serial
		}
		s.mu.Unlock()
		s.notified.Inc()
	})
	if !ok {
		sc.Close()
		return fmt.Errorf("%w: connection cannot receive pushes", errDegrade)
	}

	s.mu.Lock()
	since := s.lastSerial
	s.mu.Unlock()
	ret, err := sc.Call(ctx, procSubscribe, marshal.StructV(
		marshal.Str(s.cfg.Zone), namesToList(s.cfg.Names), marshal.U32(since),
	))
	if err != nil {
		sc.Close()
		var rf *hrpc.RemoteFault
		if errors.As(err, &rf) {
			// Unsupported, refused, or table full: the server answered and
			// said no. Stop asking.
			return fmt.Errorf("%w: %v", errDegrade, err)
		}
		return err // transport trouble: retry
	}
	rcode, _ := ret.Items[0].AsU32()
	serial, _ := ret.Items[1].AsU32()
	if RCode(rcode) != RCodeOK {
		sc.Close()
		return fmt.Errorf("%w: subscribe rcode %s", errDegrade, RCode(rcode))
	}
	s.resubs.Inc()

	if since != 0 && serial != since {
		s.catchUp(ctx, since, serial)
	} else {
		s.mu.Lock()
		if serial > s.lastSerial {
			s.lastSerial = serial
		}
		s.mu.Unlock()
	}

	s.mu.Lock()
	s.active = true
	s.mu.Unlock()
	<-died
	s.mu.Lock()
	s.active = false
	if s.conn == sc {
		s.conn = nil
	}
	s.mu.Unlock()
	sc.Close()
	return nil
}

// catchUp closes the gap between since and the server's serial by
// replaying the missed mutations as synthetic notifications — the
// "resubscribe with serial" path that guarantees zero missed
// invalidations across a connection death.
func (s *Subscriber) catchUp(ctx context.Context, since, serial uint32) {
	gotSerial, diffs, ok, err := s.c.TransferDelta(ctx, s.cfg.Zone, since)
	if err != nil || !ok {
		// Window exceeded (or IXFR unusable): continuity is lost.
		s.resets.Inc()
		if s.cfg.OnReset != nil {
			s.cfg.OnReset()
		}
		s.mu.Lock()
		if serial > s.lastSerial {
			s.lastSerial = serial
		}
		s.mu.Unlock()
		return
	}
	for _, d := range diffs {
		s.caughtUp.Inc()
		if s.cfg.OnNotify != nil {
			s.cfg.OnNotify(push.Notification{Zone: s.cfg.Zone, Name: d.RR.Name, Serial: d.Serial})
		}
	}
	s.mu.Lock()
	if gotSerial > s.lastSerial {
		s.lastSerial = gotSerial
	}
	s.mu.Unlock()
}

// namesToList marshals a name set for the Subscribe call.
func namesToList(names []string) marshal.Value {
	items := make([]marshal.Value, len(names))
	for i, n := range names {
		items[i] = marshal.Str(n)
	}
	return marshal.ListV(items...)
}

// Subscribe creates and starts a Subscriber against this client's
// server — the one-call form consumers reach through optional interface
// assertion (see core.MetaSubscriber).
func (c *HRPCClient) Subscribe(cfg SubscribeConfig) *Subscriber {
	s := NewSubscriber(c, cfg)
	s.Start()
	return s
}
