package bind

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// The standard BIND wire format: a compact DNS-style binary message, the
// one the "standard BIND library routines" hand-marshal. One question per
// message, answers as resource records, length-prefixed labels (no
// compression — the prototype predates widespread use of it in resolver
// libraries).

// RCode is a response code.
type RCode uint8

// Response codes, following the DNS assignments.
const (
	RCodeOK       RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
	// RCodeNotOwner is the sharded meta-store's redirect: the server is
	// authoritative for the zone but, under the current shard map, another
	// shard owns the updated name. Clients refresh their shard map and
	// retry against the owner (see internal/shard).
	RCodeNotOwner RCode = 9
)

// String implements fmt.Stringer.
func (r RCode) String() string {
	switch r {
	case RCodeOK:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	case RCodeNotOwner:
		return "NOTOWNER"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Message is a standard-interface query or response.
type Message struct {
	ID       uint16
	Response bool
	RCode    RCode
	QName    string
	QType    RRType
	Answers  []RR
}

// ErrBadMessage reports an unparseable wire message.
var ErrBadMessage = errors.New("bind: malformed wire message")

// EncodeMessage renders m in the standard wire format.
func EncodeMessage(m *Message) ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = binary.BigEndian.AppendUint16(buf, m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.RCode) & 0xf
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, 1) // qdcount
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))

	var err error
	if buf, err = appendName(buf, m.QName); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.QType))
	buf = binary.BigEndian.AppendUint16(buf, ClassIN)

	for _, rr := range m.Answers {
		if buf, err = appendName(buf, rr.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
		buf = binary.BigEndian.AppendUint16(buf, rr.Class)
		buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
		if len(rr.Data) > MaxRDataLen {
			return nil, fmt.Errorf("%w on %s", ErrDataTooBig, rr.Name)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rr.Data)))
		buf = append(buf, rr.Data...)
	}
	return buf, nil
}

// DecodeMessage parses a standard wire message.
func DecodeMessage(buf []byte) (*Message, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("%w: short header", ErrBadMessage)
	}
	m := &Message{ID: binary.BigEndian.Uint16(buf)}
	flags := binary.BigEndian.Uint16(buf[2:])
	m.Response = flags&(1<<15) != 0
	m.RCode = RCode(flags & 0xf)
	qd := binary.BigEndian.Uint16(buf[4:])
	an := binary.BigEndian.Uint16(buf[6:])
	if qd != 1 {
		return nil, fmt.Errorf("%w: qdcount %d", ErrBadMessage, qd)
	}
	rest := buf[8:]

	var err error
	if m.QName, rest, err = decodeName(rest); err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: truncated question", ErrBadMessage)
	}
	m.QType = RRType(binary.BigEndian.Uint16(rest))
	rest = rest[4:] // skip qtype + qclass

	for i := 0; i < int(an); i++ {
		var rr RR
		if rr.Name, rest, err = decodeName(rest); err != nil {
			return nil, err
		}
		if len(rest) < 10 {
			return nil, fmt.Errorf("%w: truncated answer %d", ErrBadMessage, i)
		}
		rr.Type = RRType(binary.BigEndian.Uint16(rest))
		rr.Class = binary.BigEndian.Uint16(rest[2:])
		rr.TTL = binary.BigEndian.Uint32(rest[4:])
		rdlen := int(binary.BigEndian.Uint16(rest[8:]))
		rest = rest[10:]
		if rdlen > MaxRDataLen {
			return nil, fmt.Errorf("%w: rdlen %d", ErrBadMessage, rdlen)
		}
		if rdlen > len(rest) {
			return nil, fmt.Errorf("%w: rdata overruns message", ErrBadMessage)
		}
		rr.Data = append([]byte(nil), rest[:rdlen]...)
		rest = rest[rdlen:]
		m.Answers = append(m.Answers, rr)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(rest))
	}
	return m, nil
}

// appendName encodes a domain name as length-prefixed labels.
func appendName(buf []byte, name string) ([]byte, error) {
	name, err := CanonicalName(name)
	if err != nil {
		return nil, err
	}
	for _, label := range strings.Split(name, ".") {
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// decodeName parses a label-encoded name, returning it canonicalized
// (lower case, like every name a server stores) and the remainder.
func decodeName(buf []byte) (string, []byte, error) {
	var labels []string
	total := 0
	for {
		if len(buf) == 0 {
			return "", nil, fmt.Errorf("%w: unterminated name", ErrBadMessage)
		}
		n := int(buf[0])
		buf = buf[1:]
		if n == 0 {
			break
		}
		if n > 63 {
			return "", nil, fmt.Errorf("%w: label length %d", ErrBadMessage, n)
		}
		if n > len(buf) {
			return "", nil, fmt.Errorf("%w: label overruns message", ErrBadMessage)
		}
		total += n + 1
		if total > MaxNameLen {
			return "", nil, fmt.Errorf("%w: name too long", ErrBadMessage)
		}
		labels = append(labels, strings.ToLower(string(buf[:n])))
		buf = buf[n:]
	}
	if len(labels) == 0 {
		return "", nil, fmt.Errorf("%w: empty name", ErrBadMessage)
	}
	// Hold wire names to the same rules as stored names, so everything
	// accepted here can be processed and re-encoded.
	name, err := CanonicalName(strings.Join(labels, "."))
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return name, buf, nil
}
