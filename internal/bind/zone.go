package bind

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Errors reported by zone operations.
var (
	ErrNotInZone      = errors.New("bind: name not within zone")
	ErrUpdateDenied   = errors.New("bind: dynamic update not enabled for zone")
	ErrNoSuchRecord   = errors.New("bind: no such record")
	ErrCNAMEConflict  = errors.New("bind: CNAME cannot coexist with other records")
	ErrTooManyAliases = errors.New("bind: CNAME chain too long")
)

// Zone is one authoritative zone: an origin, a serial, and the records at
// or below the origin. Zones are safe for concurrent use.
type Zone struct {
	origin string
	// allowUpdate marks the authors' modified BIND: only such zones
	// accept dynamic updates over the HRPC interface.
	allowUpdate bool

	mu      sync.RWMutex
	serial  uint32
	records map[string][]RR // keyed by owner name; mixed types per name

	// IXFR diff log: the most recent diffWindow mutations, each tagged
	// with the serial it left the zone at, so "changes since serial S"
	// can be answered from memory. Zero window (the default) keeps the
	// zone byte-identical to the paper's: no log, every transfer full.
	diffWindow int
	diff       []DiffRec
}

// DiffRec is one retained zone mutation, the unit of an IXFR-style
// incremental transfer: applying Op/RR leaves the zone at Serial.
type DiffRec struct {
	Serial uint32
	Op     uint32 // UpdateAdd or UpdateRemove
	RR     RR
}

// NewZone creates an empty zone rooted at origin. allowUpdate enables the
// dynamic-update extension (the HNS meta-zones need it; conventional zones
// do not).
func NewZone(origin string, allowUpdate bool) (*Zone, error) {
	o, err := CanonicalName(origin)
	if err != nil {
		return nil, err
	}
	return &Zone{
		origin:      o,
		allowUpdate: allowUpdate,
		serial:      1,
		records:     make(map[string][]RR),
	}, nil
}

// Origin reports the zone's origin name.
func (z *Zone) Origin() string { return z.origin }

// AllowsUpdate reports whether the zone accepts dynamic updates.
func (z *Zone) AllowsUpdate() bool { return z.allowUpdate }

// Serial reports the zone's current serial number; every mutation bumps
// it, as secondaries (and the HNS preloader) rely on.
func (z *Zone) Serial() uint32 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.serial
}

// Contains reports whether name falls at or below the zone origin.
func (z *Zone) Contains(name string) bool {
	return name == z.origin || strings.HasSuffix(name, "."+z.origin)
}

// Add installs a record (validated and canonicalized first). Duplicate
// records (same name/type/data) replace the existing one, refreshing its
// TTL. Adding a CNAME where other records exist — or vice versa — is
// rejected, per DNS rules. Data must survive the zone-file line format
// (non-empty, no newlines, no edge whitespace) so any zone can be
// snapshotted and re-parsed losslessly.
func (z *Zone) Add(rr RR) error {
	if err := (&rr).Validate(); err != nil {
		return err
	}
	if err := storableData(rr.Data); err != nil {
		return fmt.Errorf("%v on %s %s", err, rr.Name, rr.Type)
	}
	if !z.Contains(rr.Name) {
		return fmt.Errorf("%w: %s not under %s", ErrNotInZone, rr.Name, z.origin)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	existing := z.records[rr.Name]
	for _, e := range existing {
		if rr.Type == TypeCNAME && e.Type != TypeCNAME {
			return fmt.Errorf("%w: %s already has %s records", ErrCNAMEConflict, rr.Name, e.Type)
		}
		if rr.Type != TypeCNAME && e.Type == TypeCNAME {
			return fmt.Errorf("%w: %s is an alias", ErrCNAMEConflict, rr.Name)
		}
	}
	for i, e := range existing {
		if e.Equal(rr) {
			z.records[rr.Name][i] = rr // refresh TTL
			z.serial++
			z.logDiff(UpdateAdd, rr)
			return nil
		}
	}
	z.records[rr.Name] = append(existing, rr)
	z.serial++
	z.logDiff(UpdateAdd, rr)
	return nil
}

// Remove deletes the record matching rr by name/type/data. A nil/empty
// Data removes every record of that name and type.
func (z *Zone) Remove(rr RR) error {
	if err := (&rr).Validate(); err != nil {
		return err
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	existing, ok := z.records[rr.Name]
	if !ok {
		return fmt.Errorf("%w: %s %s", ErrNoSuchRecord, rr.Name, rr.Type)
	}
	kept := existing[:0]
	removed := 0
	for _, e := range existing {
		match := e.Type == rr.Type && (len(rr.Data) == 0 || string(e.Data) == string(rr.Data))
		if match {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed == 0 {
		return fmt.Errorf("%w: %s %s %q", ErrNoSuchRecord, rr.Name, rr.Type, rr.Data)
	}
	if len(kept) == 0 {
		delete(z.records, rr.Name)
	} else {
		z.records[rr.Name] = kept
	}
	z.serial++
	z.logDiff(UpdateRemove, rr)
	return nil
}

// EnableDiffLog retains the zone's most recent window mutations for
// incremental (IXFR-style) transfer; 0 disables and drops the log.
// Enable before serving: the log only covers mutations from this call
// on, and DiffSince refuses ranges it cannot prove continuous.
func (z *Zone) EnableDiffLog(window int) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.diffWindow = window
	if window <= 0 {
		z.diff = nil
	}
}

// logDiff appends one mutation to the diff log. Caller holds z.mu, and
// z.serial is already the post-mutation serial.
func (z *Zone) logDiff(op uint32, rr RR) {
	if z.diffWindow <= 0 {
		return
	}
	z.diff = append(z.diff, DiffRec{Serial: z.serial, Op: op, RR: rr})
	if len(z.diff) > 2*z.diffWindow {
		// Trim lazily at 2× the window, keeping the newest window
		// records in one copy — amortized O(1) per mutation. The window
		// bounds memory; peers older than it take a full transfer.
		z.diff = append(z.diff[:0:0], z.diff[len(z.diff)-z.diffWindow:]...)
	}
}

// DiffSince returns the mutations that move the zone from serial since
// to its current serial, oldest first. ok=false means the log cannot
// prove continuity — since is outside the retained window (or ahead of
// the zone, or the log is disabled) — and the caller must fall back to
// a full transfer. An up-to-date caller gets (nil, true).
func (z *Zone) DiffSince(since uint32) ([]DiffRec, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	if since == z.serial {
		return nil, true
	}
	if since > z.serial || z.diffWindow <= 0 {
		return nil, false
	}
	// Find the first retained record after since; continuity holds only
	// if the log reaches back to since+1.
	if len(z.diff) == 0 || z.diff[0].Serial > since+1 {
		return nil, false
	}
	start := 0
	for start < len(z.diff) && z.diff[start].Serial <= since {
		start++
	}
	out := make([]DiffRec, len(z.diff)-start)
	copy(out, z.diff[start:])
	return out, true
}

// Lookup returns the records of the given type at name, following CNAME
// chains (to a depth of 8). The returned slice is a copy.
func (z *Zone) Lookup(name string, t RRType) ([]RR, error) {
	name, err := CanonicalName(name)
	if err != nil {
		return nil, err
	}
	z.mu.RLock()
	defer z.mu.RUnlock()
	for hop := 0; hop < 8; hop++ {
		rrs := z.records[name]
		if len(rrs) == 0 {
			return nil, nil
		}
		// Direct match?
		var out []RR
		for _, r := range rrs {
			if r.Type == t {
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			return append([]RR(nil), out...), nil
		}
		// Alias?
		var alias string
		for _, r := range rrs {
			if r.Type == TypeCNAME {
				alias = string(r.Data)
				break
			}
		}
		if alias == "" {
			return nil, nil
		}
		if alias, err = CanonicalName(alias); err != nil {
			return nil, err
		}
		name = alias
	}
	return nil, ErrTooManyAliases
}

// All returns every record in the zone, deterministically ordered — the
// payload of an AXFR-style transfer.
func (z *Zone) All() []RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]RR, 0, len(z.records))
	for _, rrs := range z.records {
		out = append(out, rrs...)
	}
	SortRRs(out)
	return out
}

// Count reports the number of records in the zone.
func (z *Zone) Count() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, rrs := range z.records {
		n += len(rrs)
	}
	return n
}

// Replace swaps the zone's entire contents for rrs at the given serial —
// the receiving half of a zone transfer. Every record must validate and
// fall within the zone.
func (z *Zone) Replace(rrs []RR, serial uint32) error {
	fresh := make(map[string][]RR, len(rrs))
	for _, rr := range rrs {
		if err := (&rr).Validate(); err != nil {
			return err
		}
		if err := storableData(rr.Data); err != nil {
			return fmt.Errorf("%v on %s %s", err, rr.Name, rr.Type)
		}
		if !z.Contains(rr.Name) {
			return fmt.Errorf("%w: %s not under %s", ErrNotInZone, rr.Name, z.origin)
		}
		fresh[rr.Name] = append(fresh[rr.Name], rr)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.records = fresh
	z.serial = serial
	// A wholesale swap breaks diff continuity: incremental history
	// restarts from the new serial.
	z.diff = nil
	return nil
}

// ForceSerial pins the zone serial. Journal recovery uses it to
// reproduce exactly the serial each acknowledged update reported;
// nothing else should.
func (z *Zone) ForceSerial(s uint32) {
	z.mu.Lock()
	z.serial = s
	z.diff = nil // an arbitrary serial jump breaks diff continuity
	z.mu.Unlock()
}

// Names returns the owner names present in the zone (unsorted).
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.records))
	for n := range z.records {
		out = append(out, n)
	}
	return out
}
