package bind

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Zone-file loading for the bindd daemon: a master-file-like line format,
//
//	; comment
//	name  ttl  type  data...
//
// e.g.
//
//	fiji.cs.washington.edu  600  A      10.0.0.1
//	fiji.cs.washington.edu  600  HINFO  MicroVAX-II/Unix
//	meta.hns                600  HNSMETA ns=bind-cs
//
// Data is everything after the type token, verbatim (so HNSMETA payloads
// and HINFO strings can contain spaces).

// typeByName maps mnemonic type names to codes.
var typeByName = map[string]RRType{
	"A": TypeA, "NS": TypeNS, "CNAME": TypeCNAME, "SOA": TypeSOA,
	"WKS": TypeWKS, "PTR": TypePTR, "HINFO": TypeHINFO, "TXT": TypeTXT,
	"HNSMETA": TypeHNSMeta,
}

// ParseRRType resolves a mnemonic ("A", "TXT", ...) or numeric ("TYPE16",
// "16") record type.
func ParseRRType(s string) (RRType, error) {
	if t, ok := typeByName[strings.ToUpper(s)]; ok {
		return t, nil
	}
	num := strings.TrimPrefix(strings.ToUpper(s), "TYPE")
	n, err := strconv.ParseUint(num, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bind: unknown record type %q", s)
	}
	return RRType(n), nil
}

// ParseZoneFile reads records from r in the line format above.
func ParseZoneFile(r io.Reader) ([]RR, error) {
	var out []RR
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("bind: zone file line %d: want 'name ttl type data', got %q", lineNo, line)
		}
		ttl, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bind: zone file line %d: bad ttl %q", lineNo, fields[1])
		}
		t, err := ParseRRType(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bind: zone file line %d: %w", lineNo, err)
		}
		// Data is the remainder of the line after the type token,
		// preserving interior spacing.
		idx := strings.Index(line, fields[2])
		data := strings.TrimSpace(line[idx+len(fields[2]):])
		rr := RR{Name: fields[0], Type: t, Class: ClassIN, TTL: uint32(ttl), Data: []byte(data)}
		if err := (&rr).Validate(); err != nil {
			return nil, fmt.Errorf("bind: zone file line %d: %w", lineNo, err)
		}
		out = append(out, rr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// storableData reports whether record data survives the master-file line
// format: ParseZoneFile takes data as the trimmed remainder of the line,
// so empty data, edge whitespace, and line breaks would not round-trip.
// Zone mutation enforces this, which is what lets snapshots reuse the
// zone-file format losslessly.
func storableData(data []byte) error {
	if len(data) == 0 {
		return errors.New("bind: empty record data cannot be stored")
	}
	if bytes.ContainsAny(data, "\n\r") {
		return errors.New("bind: record data contains a line break")
	}
	if len(bytes.TrimSpace(data)) != len(data) {
		return errors.New("bind: record data has leading or trailing whitespace")
	}
	return nil
}

// WriteZone streams records to w in the exact ParseZoneFile master-file
// format, deterministically ordered — the serialization both zone dumps
// and store snapshots use. Every record must be storable (see Zone.Add);
// parse∘write∘parse is the identity.
func WriteZone(w io.Writer, rrs []RR) error {
	sorted := append([]RR(nil), rrs...)
	SortRRs(sorted)
	for _, rr := range sorted {
		if err := storableData(rr.Data); err != nil {
			return fmt.Errorf("%v on %s %s", err, rr.Name, rr.Type)
		}
		if _, err := fmt.Fprintf(w, "%s %d %s %s\n", rr.Name, rr.TTL, rr.Type, rr.Data); err != nil {
			return err
		}
	}
	return nil
}

// FormatZoneFile renders records in the ParseZoneFile format,
// deterministically ordered.
func FormatZoneFile(rrs []RR) string {
	var b strings.Builder
	WriteZone(&b, rrs) // strings.Builder never errors; unstorable data renders partially
	return b.String()
}
