package bind

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleZoneFile = `
; the cs.washington.edu zone
fiji.cs.washington.edu   600  A       10.0.0.1
fiji.cs.washington.edu   600  HINFO   MicroVAX-II/Unix with spaces
june.cs.washington.edu   300  A       10.0.0.2
# hash comments too
schwartz.cs.washington.edu 600 TXT    mailhost=june.cs.washington.edu
ctx.hns                  600  HNSMETA ns=bind-cs
weird.cs.washington.edu  60   TYPE999 raw payload
`

func TestParseZoneFile(t *testing.T) {
	rrs, err := ParseZoneFile(strings.NewReader(sampleZoneFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 6 {
		t.Fatalf("parsed %d records, want 6", len(rrs))
	}
	if rrs[1].Type != TypeHINFO || string(rrs[1].Data) != "MicroVAX-II/Unix with spaces" {
		t.Fatalf("interior spacing lost: %v", rrs[1])
	}
	if rrs[4].Type != TypeHNSMeta {
		t.Fatalf("HNSMETA not recognised: %v", rrs[4])
	}
	if rrs[5].Type != RRType(999) {
		t.Fatalf("numeric type not recognised: %v", rrs[5])
	}
}

func TestParseZoneFileErrors(t *testing.T) {
	cases := []string{
		"name 600 A",              // too few fields
		"name notanum A data",     // bad ttl
		"name 600 BOGUS data",     // bad type
		"bad..name 600 A data",    // bad name
		"name 99999999999 A data", // ttl overflow
	}
	for _, c := range cases {
		if _, err := ParseZoneFile(strings.NewReader(c)); err == nil {
			t.Errorf("ParseZoneFile(%q) accepted", c)
		}
	}
}

func TestZoneFileRoundTrip(t *testing.T) {
	rrs, err := ParseZoneFile(strings.NewReader(sampleZoneFile))
	if err != nil {
		t.Fatal(err)
	}
	text := FormatZoneFile(rrs)
	back, err := ParseZoneFile(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rrs) {
		t.Fatalf("round trip lost records: %d -> %d", len(rrs), len(back))
	}
	SortRRs(rrs)
	for i := range rrs {
		if !back[i].Equal(rrs[i]) || back[i].TTL != rrs[i].TTL {
			t.Fatalf("record %d mangled:\n was %v\n now %v", i, rrs[i], back[i])
		}
	}
}

func TestParseRRType(t *testing.T) {
	for s, want := range map[string]RRType{
		"a": TypeA, "A": TypeA, "hnsmeta": TypeHNSMeta,
		"TYPE16": TypeTXT, "16": TypeTXT,
	} {
		got, err := ParseRRType(s)
		if err != nil || got != want {
			t.Errorf("ParseRRType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseRRType("MX!"); err == nil {
		t.Error("garbage type accepted")
	}
}

// Property: format ∘ parse is lossless for valid records without newlines
// in their data.
func TestZoneFileProperty(t *testing.T) {
	f := func(label string, ttl uint16, payload string) bool {
		name, err := CanonicalName(strings.Trim(label, ".") + ".z.test")
		if err != nil {
			return true
		}
		payload = strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return '_'
			}
			return r
		}, payload)
		payload = strings.TrimSpace(payload)
		if payload == "" || len(payload) > MaxRDataLen {
			return true
		}
		rr := RR{Name: name, Type: TypeTXT, Class: ClassIN, TTL: uint32(ttl), Data: []byte(payload)}
		back, err := ParseZoneFile(strings.NewReader(FormatZoneFile([]RR{rr})))
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0].Equal(rr) && back[0].TTL == rr.TTL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: parse ∘ write ∘ parse is the identity — what snapshots rely
// on. Starting from parsed (hence storable) records, WriteZone's output
// parses back to exactly the same set.
func TestWriteZoneRoundTripProperty(t *testing.T) {
	f := func(labels []string, ttl uint16, payloads []string) bool {
		var rrs []RR
		for i, l := range labels {
			name, err := CanonicalName(strings.Trim(l, ".") + ".z.test")
			if err != nil {
				continue
			}
			payload := "p"
			if i < len(payloads) {
				p := strings.TrimSpace(strings.Map(func(r rune) rune {
					if r == '\n' || r == '\r' {
						return '_'
					}
					return r
				}, payloads[i]))
				if p != "" && len(p) <= MaxRDataLen {
					payload = p
				}
			}
			rrs = append(rrs, RR{Name: name, Type: TypeTXT, Class: ClassIN,
				TTL: uint32(ttl), Data: []byte(payload)})
		}
		var b strings.Builder
		if err := WriteZone(&b, rrs); err != nil {
			return false
		}
		once, err := ParseZoneFile(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		var b2 strings.Builder
		if err := WriteZone(&b2, once); err != nil {
			return false
		}
		if b.String() != b2.String() { // write is canonical after one parse
			return false
		}
		twice, err := ParseZoneFile(strings.NewReader(b2.String()))
		if err != nil || len(twice) != len(once) {
			return false
		}
		for i := range once {
			if !twice[i].Equal(once[i]) || twice[i].TTL != once[i].TTL {
				return false
			}
		}
		SortRRs(rrs)
		return len(once) == len(rrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteZoneRejectsUnstorable(t *testing.T) {
	for _, data := range []string{"", "has\nnewline", " edge", "edge "} {
		var b strings.Builder
		err := WriteZone(&b, []RR{{Name: "a.z.test", Type: TypeTXT, Class: ClassIN, Data: []byte(data)}})
		if err == nil {
			t.Errorf("WriteZone accepted unstorable data %q", data)
		}
	}
}
