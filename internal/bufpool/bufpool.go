// Package bufpool provides sized byte-slice pools for the wire hot path.
//
// Every request/reply exchange used to allocate at least three fresh
// buffers: the request frame, the server's read buffer, and the framed
// reply. At the traffic volumes the ROADMAP targets those allocations —
// not the work between them — dominate the garbage collector's share of
// CPU. This package recycles them: buffers come from sync.Pools bucketed
// by power-of-two capacity, so a warm exchange reuses the same few arrays
// indefinitely.
//
// Ownership discipline: a buffer obtained from Get is owned by the caller
// until handed to Put, after which it must not be touched. Put is always
// optional — a buffer that escapes (stored in a cache, returned across an
// API boundary that keeps it) is simply left to the garbage collector.
// That property is what makes pooling safe to thread through code that
// sometimes retains a buffer: retain it and don't Put, nothing breaks.
package bufpool

import "sync"

const (
	// minClassBits is the smallest class, 1<<6 = 64 bytes: below that the
	// bookkeeping costs more than the allocation.
	minClassBits = 6
	// maxClassBits is the largest class, 1<<20 = 1 MiB — the transport's
	// frame limit. Larger requests fall through to plain make and are
	// never pooled.
	maxClassBits = 20

	numClasses = maxClassBits - minClassBits + 1
)

// pools[i] holds buffers with cap >= 1<<(minClassBits+i). Entries are
// *[]byte to keep the slice header itself off the heap (a plain []byte
// stored in an interface escapes).
var pools [numClasses]sync.Pool

// classForGet returns the smallest class whose buffers hold n bytes, or -1
// when n exceeds the largest class.
func classForGet(n int) int {
	c := 0
	for size := 1 << minClassBits; size < n; size <<= 1 {
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

// classForPut returns the largest class whose floor the buffer's capacity
// covers, or -1 when the capacity is below the smallest class. Filing by
// floor keeps the Get invariant: every buffer in class i has
// cap >= 1<<(minClassBits+i).
func classForPut(c int) int {
	if c < 1<<minClassBits {
		return -1
	}
	class := 0
	for size := 1 << (minClassBits + 1); size <= c && class < numClasses-1; size <<= 1 {
		class++
	}
	return class
}

// Get returns a zero-length buffer with capacity at least n, recycled when
// one is available. Requests beyond the largest class are satisfied by
// plain allocation (and silently ignored by Put).
func Get(n int) []byte {
	c := classForGet(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	if p, _ := pools[c].Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return make([]byte, 0, 1<<(minClassBits+c))
}

// Put recycles a buffer for a future Get. The caller must not use buf
// after Put. Buffers that are too small or too large to pool are dropped.
func Put(buf []byte) {
	c := classForPut(cap(buf))
	if c < 0 || cap(buf) > 1<<maxClassBits {
		return
	}
	buf = buf[:0]
	pools[c].Put(&buf)
}
