package bufpool

import (
	"testing"
)

func TestGetCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 1024, 9000, 1 << 20, 1<<20 + 1} {
		buf := Get(n)
		if len(buf) != 0 {
			t.Errorf("Get(%d): len = %d, want 0", n, len(buf))
		}
		if cap(buf) < n {
			t.Errorf("Get(%d): cap = %d, want >= %d", n, cap(buf), n)
		}
		Put(buf)
	}
}

func TestClassInvariant(t *testing.T) {
	// Every buffer filed in class i must satisfy future Gets routed to
	// class i: cap >= the class floor.
	for c := 0; c < numClasses; c++ {
		floor := 1 << (minClassBits + c)
		for _, capacity := range []int{floor, floor + 1, floor*2 - 1} {
			if got := classForPut(capacity); got < 0 || 1<<(minClassBits+got) > capacity {
				t.Errorf("classForPut(%d) = %d: floor %d exceeds capacity",
					capacity, got, 1<<(minClassBits+got))
			}
		}
		if got := classForGet(floor); got != c {
			t.Errorf("classForGet(%d) = %d, want %d", floor, got, c)
		}
	}
	if classForPut(63) != -1 {
		t.Error("classForPut(63) should reject sub-minimum buffers")
	}
	if classForGet(1<<20+1) != -1 {
		t.Error("classForGet above the max class should fall through to make")
	}
}

func TestRoundTripReuse(t *testing.T) {
	// Not guaranteed by sync.Pool, but overwhelmingly likely within one
	// goroutine with no GC in between: a Put buffer comes back on Get.
	buf := Get(256)
	buf = append(buf, "hello"...)
	Put(buf)
	again := Get(256)
	if len(again) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(again))
	}
	if cap(again) < 256 {
		t.Fatalf("recycled buffer cap %d < 256", cap(again))
	}
}

func TestOversizePutDropped(t *testing.T) {
	Put(make([]byte, 0, 2<<20)) // must not panic or poison a class
	buf := Get(1 << 20)
	if cap(buf) < 1<<20 {
		t.Fatalf("cap %d after oversize Put", cap(buf))
	}
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(512)
		buf = append(buf, 1, 2, 3)
		Put(buf)
	}
}
