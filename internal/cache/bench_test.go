package cache

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkShardContention is the tentpole's micro-level A/B: parallel
// readers over a warm cache with one shard (the old single-mutex design)
// versus the sharded default. At GOMAXPROCS ≥ 4 the sharded arm must
// deliver ≥ 2x the single-mutex throughput; the system-level version of
// the same comparison lives in the root package's
// BenchmarkParallelFindNSMWarm.
func BenchmarkShardContention(b *testing.B) {
	const keys = 512
	for _, arm := range []struct {
		name   string
		shards int
	}{
		{"SingleMutex", 1},
		{"Sharded", DefaultShards},
	} {
		b.Run(arm.name, func(b *testing.B) {
			c := NewWithShards[int](nil, 0, arm.shards)
			ks := make([]string, keys)
			for i := range ks {
				ks[i] = fmt.Sprintf("host%d.cs.washington.edu/65280", i)
				c.Put(ks[i], i, time.Hour)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := c.Get(ks[i%keys]); !ok {
						b.Fail()
					}
					i++
				}
			})
			b.ReportMetric(float64(c.LockWaits())/float64(b.N), "lock-waits/op")
		})
	}
}

// BenchmarkShardContentionMixed adds a write fraction (every 16th access),
// the shape of a busy resolver absorbing TTL refreshes while serving hits.
func BenchmarkShardContentionMixed(b *testing.B) {
	const keys = 512
	for _, arm := range []struct {
		name   string
		shards int
	}{
		{"SingleMutex", 1},
		{"Sharded", DefaultShards},
	} {
		b.Run(arm.name, func(b *testing.B) {
			c := NewWithShards[int](nil, 0, arm.shards)
			ks := make([]string, keys)
			for i := range ks {
				ks[i] = fmt.Sprintf("host%d.cs.washington.edu/65280", i)
				c.Put(ks[i], i, time.Hour)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := ks[i%keys]
					if i%16 == 0 {
						c.Put(k, i, time.Hour)
					} else {
						c.Get(k)
					}
					i++
				}
			})
			b.ReportMetric(float64(c.LockWaits())/float64(b.N), "lock-waits/op")
		})
	}
}
