// Package cache provides the TTL cache underlying both the BIND resolver
// cache and the HNS meta-naming cache.
//
// The paper's caching scheme is deliberately simple: "Cached data is tagged
// with a time-to-live field for cache invalidation. While this simplistic
// mechanism can cause cache consistency problems, it would not make sense
// to use a more sophisticated scheme because the source of our cached data
// (BIND) also uses this mechanism." This package implements exactly that —
// TTL expiry, no invalidation protocol — plus LRU bounding and hit/miss
// accounting, which the colocation analysis (equation 1) needs.
//
// The cache is storage only; *pricing* an access (demarshalled probe vs
// demarshal-on-every-access, Table 3.2) is the caller's job, because only
// the caller knows what form it stores entries in.
//
// Internally the cache is sharded: keys hash (FNV-1a) onto a power-of-two
// number of shards, each with its own mutex, map, LRU list, and stats.
// Concurrent readers of distinct keys therefore never contend, which is
// what lets the warm FindNSM path scale with cores (the paper's cache
// arithmetic assumed a single caller; a server front-ending millions of
// users does not have that luxury). Stats are merged across shards at
// snapshot time, so the Stats/HitRate numbers the colocation analysis
// reads are unchanged by sharding. Small bounded caches stay single-shard
// so their LRU victim selection remains exact.
package cache

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits        int64
	Misses      int64
	Expired     int64 // misses caused by TTL expiry of a present entry
	Evicted     int64 // entries discarded by the LRU bound
	Preloads    int64 // entries installed by bulk preload
	StaleServed int64 // expired entries handed out by GetStale (degraded mode)
}

// HitRate returns hits/(hits+misses), or 0 with no accesses. This is the
// "p" and "p+q" of the paper's equation (1).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Expired += o.Expired
	s.Evicted += o.Evicted
	s.Preloads += o.Preloads
	s.StaleServed += o.StaleServed
}

type entry[V any] struct {
	key     string
	value   V
	expires time.Time
	ttl     time.Duration // the TTL the entry was stored with
	elem    *list.Element
}

// shard is one independently locked slice of the key space.
type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	order   *list.List // front = most recently used
	stats   Stats
	max     int // this shard's entry bound; 0 = unbounded
}

// DefaultShards is the shard count used for unbounded and large caches.
// Power of two so shard selection is a mask.
const DefaultShards = 16

// minShardedMax is the smallest bounded capacity that gets sharded. Below
// it a single shard keeps LRU victim selection exact, which tiny caches
// (and the tests pinning the paper's eviction behaviour) care about more
// than they care about lock contention.
const minShardedMax = 1024

// maxShards bounds explicit shard requests.
const maxShards = 256

// TTL is a TTL + LRU cache. The zero value is not usable; call New.
// TTL is safe for concurrent use.
type TTL[V any] struct {
	clock  simtime.Clock
	max    int // 0 = unbounded
	mask   uint32
	stale  time.Duration // grace period expired entries remain servable via GetStale
	shards []*shard[V]

	// lockWaits counts shard-lock acquisitions that found the lock held
	// (TryLock failed) — a direct contention signal, exposed as
	// cache_lock_wait_total.
	lockWaits atomic.Int64
}

// New creates a cache reading time from clock and holding at most max
// entries (0 for unbounded). A nil clock means the real clock. The shard
// count is chosen automatically; use NewWithShards to pin it.
func New[V any](clock simtime.Clock, max int) *TTL[V] {
	shards := DefaultShards
	if max > 0 && max < minShardedMax {
		shards = 1
	}
	return NewWithShards[V](clock, max, shards)
}

// NewWithShards creates a cache with an explicit shard count (rounded up
// to a power of two, clamped to [1, 256] and — for bounded caches — to at
// most max, so no shard's capacity rounds down to zero). Shards = 1
// reproduces the classic single-mutex cache; the parallel benchmark tier
// uses that as its contention baseline.
func NewWithShards[V any](clock simtime.Clock, max, shards int) *TTL[V] {
	if clock == nil {
		clock = simtime.RealClock{}
	}
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	// A bounded cache never gets more shards than entries, or a shard's
	// capacity would round down to zero (which means "unbounded").
	for max > 0 && n > max {
		n >>= 1
	}
	c := &TTL[V]{
		clock:  clock,
		max:    max,
		mask:   uint32(n - 1),
		shards: make([]*shard[V], n),
	}
	// Distribute a bounded capacity across shards so the global bound
	// (sum of shard bounds) is exactly max.
	base, rem := 0, 0
	if max > 0 {
		base, rem = max/n, max%n
	}
	for i := range c.shards {
		sm := 0
		if max > 0 {
			sm = base
			if i < rem {
				sm++
			}
		}
		c.shards[i] = &shard[V]{
			entries: make(map[string]*entry[V]),
			order:   list.New(),
			max:     sm,
		}
	}
	return c
}

// ShardCount reports how many shards the cache was built with.
func (c *TTL[V]) ShardCount() int { return len(c.shards) }

// shardFor selects the shard owning key (inlined FNV-1a; importing
// hash/fnv would allocate a hasher per access).
func (c *TTL[V]) shardFor(key string) *shard[V] {
	if c.mask == 0 {
		return c.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h&c.mask]
}

// lock acquires s.mu, counting the acquisition as contended when the lock
// was already held. The TryLock fast path costs one atomic on the
// uncontended path.
func (c *TTL[V]) lock(s *shard[V]) {
	if s.mu.TryLock() {
		return
	}
	c.lockWaits.Add(1)
	s.mu.Lock()
}

// LockWaits reports how many shard-lock acquisitions found the lock held.
func (c *TTL[V]) LockWaits() int64 { return c.lockWaits.Load() }

// SetStaleGrace makes expired entries linger for grace past their expiry,
// servable through GetStale — RFC 8767's "serve stale" degraded mode. It
// must be set before the cache sees concurrent use (it reconfigures expiry
// handling, not a per-call option). Zero (the default) removes expired
// entries on access exactly as before.
func (c *TTL[V]) SetStaleGrace(grace time.Duration) {
	if grace < 0 {
		grace = 0
	}
	c.stale = grace
}

// StaleGrace reports the configured serve-stale grace period.
func (c *TTL[V]) StaleGrace() time.Duration { return c.stale }

// Get returns the live entry for key. Expired entries count as misses;
// they are removed unless a stale grace keeps them servable via GetStale.
func (c *TTL[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		var zero V
		return zero, false
	}
	if now := c.clock.Now(); !now.Before(e.expires) {
		if c.stale <= 0 || !now.Before(e.expires.Add(c.stale)) {
			s.removeLocked(e)
		}
		s.stats.Misses++
		s.stats.Expired++
		var zero V
		return zero, false
	}
	s.order.MoveToFront(e.elem)
	s.stats.Hits++
	return e.value, true
}

// GetWithTTL is Get plus the entry's freshness: on a hit it also reports
// how much of the entry's lifetime remains and the TTL it was stored with.
// Refresh-ahead callers use the ratio to decide whether an entry is close
// enough to expiry to refresh asynchronously while still serving the hit.
func (c *TTL[V]) GetWithTTL(key string) (value V, remaining, original time.Duration, ok bool) {
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	e, present := s.entries[key]
	if !present {
		s.stats.Misses++
		return value, 0, 0, false
	}
	now := c.clock.Now()
	if !now.Before(e.expires) {
		if c.stale <= 0 || !now.Before(e.expires.Add(c.stale)) {
			s.removeLocked(e)
		}
		s.stats.Misses++
		s.stats.Expired++
		return value, 0, 0, false
	}
	s.order.MoveToFront(e.elem)
	s.stats.Hits++
	return e.value, e.expires.Sub(now), e.ttl, true
}

// GetStale returns the entry for key even if expired, as long as it is
// within the stale grace period — the degraded-mode answer when every
// backend replica is down. Served entries count in Stats.StaleServed.
// Live entries are returned too (counting as stale only when actually
// expired). Returns false with no grace configured and the entry expired.
func (c *TTL[V]) GetStale(key string) (V, bool) {
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	now := c.clock.Now()
	if now.Before(e.expires) {
		return e.value, true
	}
	if c.stale <= 0 || !now.Before(e.expires.Add(c.stale)) {
		var zero V
		return zero, false
	}
	s.stats.StaleServed++
	return e.value, true
}

// Peek returns the live entry for key without touching LRU order or stats.
func (c *TTL[V]) Peek(key string) (V, bool) {
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || !c.clock.Now().Before(e.expires) {
		var zero V
		return zero, false
	}
	return e.value, true
}

// Put installs value under key with the given TTL. Non-positive TTLs are
// not cached (matching BIND: a zero TTL means "do not cache").
func (c *TTL[V]) Put(key string, value V, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	c.putLocked(s, key, value, ttl)
}

func (c *TTL[V]) putLocked(s *shard[V], key string, value V, ttl time.Duration) {
	if e, ok := s.entries[key]; ok {
		e.value = value
		e.expires = c.clock.Now().Add(ttl)
		e.ttl = ttl
		s.order.MoveToFront(e.elem)
		return
	}
	e := &entry[V]{key: key, value: value, expires: c.clock.Now().Add(ttl), ttl: ttl}
	e.elem = s.order.PushFront(e)
	s.entries[key] = e
	for s.max > 0 && len(s.entries) > s.max {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		s.removeLocked(oldest.Value.(*entry[V]))
		s.stats.Evicted++
	}
}

// Preload bulk-installs entries (the zone-transfer preloading experiment).
// Existing entries are overwritten.
func (c *TTL[V]) Preload(items map[string]V, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	for k, v := range items {
		s := c.shardFor(k)
		c.lock(s)
		c.putLocked(s, k, v, ttl)
		s.stats.Preloads++
		s.mu.Unlock()
	}
}

// Delete removes key, reporting whether it was present.
func (c *TTL[V]) Delete(key string) bool {
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok {
		s.removeLocked(e)
	}
	return ok
}

func (s *shard[V]) removeLocked(e *entry[V]) {
	delete(s.entries, e.key)
	s.order.Remove(e.elem)
}

// Sweep removes expired entries proactively, returning how many were
// dropped. Expired entries are otherwise removed lazily on access, so
// long-lived servers (hnsd, the NSM daemons) call Sweep periodically to
// keep dead data from pinning memory. Shards are swept one at a time, so
// a sweep never stalls readers of the whole cache.
func (c *TTL[V]) Sweep() int {
	now := c.clock.Now()
	dropped := 0
	for _, s := range c.shards {
		c.lock(s)
		for _, e := range s.entries {
			// With a stale grace configured, expired-but-graced entries
			// stay servable for degraded mode; only truly dead ones go.
			if !now.Before(e.expires.Add(c.stale)) {
				s.removeLocked(e)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// Purge empties the cache (stats are kept).
func (c *TTL[V]) Purge() {
	for _, s := range c.shards {
		c.lock(s)
		s.entries = make(map[string]*entry[V])
		s.order.Init()
		s.mu.Unlock()
	}
}

// Len reports the number of entries, including any not yet expired-out.
func (c *TTL[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		c.lock(s)
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters, merged across shards.
func (c *TTL[V]) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		c.lock(s)
		out.add(s.stats)
		s.mu.Unlock()
	}
	return out
}

// ShardStats returns each shard's counters — the access distribution the
// parallel benchmark tier inspects for hash balance.
func (c *TTL[V]) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		c.lock(s)
		out[i] = s.stats
		s.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the counters (used between benchmark phases).
func (c *TTL[V]) ResetStats() {
	for _, s := range c.shards {
		c.lock(s)
		s.stats = Stats{}
		s.mu.Unlock()
	}
	c.lockWaits.Store(0)
}

// Instrument exposes the cache's counters as gauge series on r, labeled
// cache=<name>: cache_hits_total, cache_misses_total, cache_expired_total,
// cache_evicted_total, cache_preloads_total, cache_entries, plus the
// concurrency series cache_shards, cache_lock_wait_total, and per-shard
// cache_shard_accesses{shard=i}. The series read the existing Stats at
// snapshot time, so instrumenting adds no work to the access path.
func (c *TTL[V]) Instrument(r *metrics.Registry, name string) {
	series := func(metric string, read func(Stats) int64) {
		r.GaugeFunc(metrics.Labels(metric, "cache", name), func() int64 {
			return read(c.Stats())
		})
	}
	series("cache_hits_total", func(s Stats) int64 { return s.Hits })
	series("cache_misses_total", func(s Stats) int64 { return s.Misses })
	series("cache_expired_total", func(s Stats) int64 { return s.Expired })
	series("cache_evicted_total", func(s Stats) int64 { return s.Evicted })
	series("cache_preloads_total", func(s Stats) int64 { return s.Preloads })
	series("cache_stale_served_total", func(s Stats) int64 { return s.StaleServed })
	r.GaugeFunc(metrics.Labels("cache_entries", "cache", name), func() int64 {
		return int64(c.Len())
	})
	r.GaugeFunc(metrics.Labels("cache_shards", "cache", name), func() int64 {
		return int64(c.ShardCount())
	})
	r.GaugeFunc(metrics.Labels("cache_lock_wait_total", "cache", name), c.LockWaits)
	for i := range c.shards {
		s := c.shards[i]
		r.GaugeFunc(metrics.Labels("cache_shard_accesses",
			"cache", name, "shard", strconv.Itoa(i)), func() int64 {
			c.lock(s)
			defer s.mu.Unlock()
			return s.stats.Hits + s.stats.Misses
		})
	}
}
