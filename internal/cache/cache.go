// Package cache provides the TTL cache underlying both the BIND resolver
// cache and the HNS meta-naming cache.
//
// The paper's caching scheme is deliberately simple: "Cached data is tagged
// with a time-to-live field for cache invalidation. While this simplistic
// mechanism can cause cache consistency problems, it would not make sense
// to use a more sophisticated scheme because the source of our cached data
// (BIND) also uses this mechanism." This package implements exactly that —
// TTL expiry, no invalidation protocol — plus LRU bounding and hit/miss
// accounting, which the colocation analysis (equation 1) needs.
//
// The cache is storage only; *pricing* an access (demarshalled probe vs
// demarshal-on-every-access, Table 3.2) is the caller's job, because only
// the caller knows what form it stores entries in.
package cache

import (
	"container/list"
	"sync"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits     int64
	Misses   int64
	Expired  int64 // misses caused by TTL expiry of a present entry
	Evicted  int64 // entries discarded by the LRU bound
	Preloads int64 // entries installed by bulk preload
}

// HitRate returns hits/(hits+misses), or 0 with no accesses. This is the
// "p" and "p+q" of the paper's equation (1).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry[V any] struct {
	key     string
	value   V
	expires time.Time
	elem    *list.Element
}

// TTL is a TTL + LRU cache. The zero value is not usable; call New.
// TTL is safe for concurrent use.
type TTL[V any] struct {
	clock simtime.Clock
	max   int // 0 = unbounded

	mu      sync.Mutex
	entries map[string]*entry[V]
	order   *list.List // front = most recently used
	stats   Stats
}

// New creates a cache reading time from clock and holding at most max
// entries (0 for unbounded). A nil clock means the real clock.
func New[V any](clock simtime.Clock, max int) *TTL[V] {
	if clock == nil {
		clock = simtime.RealClock{}
	}
	return &TTL[V]{
		clock:   clock,
		max:     max,
		entries: make(map[string]*entry[V]),
		order:   list.New(),
	}
}

// Get returns the live entry for key. Expired entries count as misses and
// are removed.
func (c *TTL[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		var zero V
		return zero, false
	}
	if !c.clock.Now().Before(e.expires) {
		c.removeLocked(e)
		c.stats.Misses++
		c.stats.Expired++
		var zero V
		return zero, false
	}
	c.order.MoveToFront(e.elem)
	c.stats.Hits++
	return e.value, true
}

// Peek returns the live entry for key without touching LRU order or stats.
func (c *TTL[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !c.clock.Now().Before(e.expires) {
		var zero V
		return zero, false
	}
	return e.value, true
}

// Put installs value under key with the given TTL. Non-positive TTLs are
// not cached (matching BIND: a zero TTL means "do not cache").
func (c *TTL[V]) Put(key string, value V, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, value, ttl)
}

func (c *TTL[V]) putLocked(key string, value V, ttl time.Duration) {
	if e, ok := c.entries[key]; ok {
		e.value = value
		e.expires = c.clock.Now().Add(ttl)
		c.order.MoveToFront(e.elem)
		return
	}
	e := &entry[V]{key: key, value: value, expires: c.clock.Now().Add(ttl)}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	for c.max > 0 && len(c.entries) > c.max {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest.Value.(*entry[V]))
		c.stats.Evicted++
	}
}

// Preload bulk-installs entries (the zone-transfer preloading experiment).
// Existing entries are overwritten.
func (c *TTL[V]) Preload(items map[string]V, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range items {
		c.putLocked(k, v, ttl)
		c.stats.Preloads++
	}
}

// Delete removes key, reporting whether it was present.
func (c *TTL[V]) Delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.removeLocked(e)
	}
	return ok
}

func (c *TTL[V]) removeLocked(e *entry[V]) {
	delete(c.entries, e.key)
	c.order.Remove(e.elem)
}

// Sweep removes expired entries proactively, returning how many were
// dropped. Expired entries are otherwise removed lazily on access, so
// long-lived servers (hnsd, the NSM daemons) call Sweep periodically to
// keep dead data from pinning memory.
func (c *TTL[V]) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	dropped := 0
	for _, e := range c.entries {
		if !now.Before(e.expires) {
			c.removeLocked(e)
			dropped++
		}
	}
	return dropped
}

// Purge empties the cache (stats are kept).
func (c *TTL[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry[V])
	c.order.Init()
}

// Len reports the number of entries, including any not yet expired-out.
func (c *TTL[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *TTL[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters (used between benchmark phases).
func (c *TTL[V]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// Instrument exposes the cache's counters as gauge series on r, labeled
// cache=<name>: cache_hits_total, cache_misses_total, cache_expired_total,
// cache_evicted_total, cache_preloads_total, and cache_entries. The series
// read the existing Stats at snapshot time, so instrumenting adds no work
// to the access path.
func (c *TTL[V]) Instrument(r *metrics.Registry, name string) {
	series := func(metric string, read func(Stats) int64) {
		r.GaugeFunc(metrics.Labels(metric, "cache", name), func() int64 {
			return read(c.Stats())
		})
	}
	series("cache_hits_total", func(s Stats) int64 { return s.Hits })
	series("cache_misses_total", func(s Stats) int64 { return s.Misses })
	series("cache_expired_total", func(s Stats) int64 { return s.Expired })
	series("cache_evicted_total", func(s Stats) int64 { return s.Evicted })
	series("cache_preloads_total", func(s Stats) int64 { return s.Preloads })
	r.GaugeFunc(metrics.Labels("cache_entries", "cache", name), func() int64 {
		return int64(c.Len())
	})
}
