package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hns/internal/simtime"
)

func newClock() *simtime.FakeClock {
	return simtime.NewFakeClock(time.Date(1987, 11, 8, 0, 0, 0, 0, time.UTC))
}

func TestPutGet(t *testing.T) {
	c := New[string](newClock(), 0)
	c.Put("k", "v", time.Minute)
	got, ok := c.Get("k")
	if !ok || got != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := newClock()
	c := New[int](clk, 0)
	c.Put("k", 1, time.Minute)
	clk.Advance(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired early")
	}
	clk.Advance(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry outlived TTL")
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not removed")
	}
}

func TestZeroTTLNotCached(t *testing.T) {
	c := New[int](newClock(), 0)
	c.Put("k", 1, 0)
	c.Put("k2", 2, -time.Second)
	if c.Len() != 0 {
		t.Fatal("non-positive TTL entries cached")
	}
}

func TestOverwrite(t *testing.T) {
	clk := newClock()
	c := New[int](clk, 0)
	c.Put("k", 1, time.Second)
	c.Put("k", 2, time.Hour)
	clk.Advance(time.Minute)
	got, ok := c.Get("k")
	if !ok || got != 2 {
		t.Fatalf("Get after overwrite = %d, %v", got, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](newClock(), 3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprint(i), i, time.Hour)
	}
	// Touch 0 so 1 is the LRU victim.
	if _, ok := c.Get("0"); !ok {
		t.Fatal("0 missing")
	}
	c.Put("3", 3, time.Hour)
	if _, ok := c.Peek("1"); ok {
		t.Fatal("LRU victim 1 survived")
	}
	for _, k := range []string{"0", "2", "3"} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	if st := c.Stats(); st.Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", st.Evicted)
	}
}

func TestPeekDoesNotCountOrPromote(t *testing.T) {
	c := New[int](newClock(), 2)
	c.Put("a", 1, time.Hour)
	c.Put("b", 2, time.Hour)
	c.Peek("a") // must not promote
	c.Put("c", 3, time.Hour)
	if _, ok := c.Peek("a"); ok {
		t.Fatal("Peek promoted entry")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek affected stats: %+v", st)
	}
}

func TestStatsAndHitRate(t *testing.T) {
	c := New[int](newClock(), 0)
	c.Put("k", 1, time.Hour)
	c.Get("k")
	c.Get("k")
	c.Get("nope")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("HitRate = %f", got)
	}
	c.ResetStats()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("ResetStats left %+v", st)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty HitRate not zero")
	}
}

func TestPreload(t *testing.T) {
	c := New[int](newClock(), 0)
	c.Preload(map[string]int{"a": 1, "b": 2, "c": 3}, time.Hour)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if st := c.Stats(); st.Preloads != 3 {
		t.Fatalf("Preloads = %d", st.Preloads)
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("preloaded entry = %d, %v", v, ok)
	}
	// Preload with non-positive TTL is a no-op.
	c2 := New[int](newClock(), 0)
	c2.Preload(map[string]int{"x": 1}, 0)
	if c2.Len() != 0 {
		t.Fatal("zero-TTL preload cached")
	}
}

func TestDeleteAndPurge(t *testing.T) {
	c := New[int](newClock(), 0)
	c.Put("a", 1, time.Hour)
	c.Put("b", 2, time.Hour)
	if !c.Delete("a") {
		t.Fatal("Delete existing returned false")
	}
	if c.Delete("a") {
		t.Fatal("Delete missing returned true")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("Purge left entries")
	}
	// Cache still usable after purge.
	c.Put("c", 3, time.Hour)
	if _, ok := c.Get("c"); !ok {
		t.Fatal("cache unusable after Purge")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](newClock(), 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := fmt.Sprint(j % 100)
				c.Put(k, j, time.Hour)
				c.Get(k)
				if j%50 == 0 {
					c.Delete(k)
				}
			}
		}(i)
	}
	wg.Wait()
}

// Property: after any Put sequence under capacity, every inserted key is
// retrievable before its TTL.
func TestPutGetProperty(t *testing.T) {
	f := func(keys []string) bool {
		c := New[int](newClock(), 0)
		last := map[string]int{}
		for i, k := range keys {
			c.Put(k, i, time.Hour)
			last[k] = i
		}
		for k, want := range last {
			got, ok := c.Get(k)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache never exceeds its capacity bound.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(keys []string, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := New[int](newClock(), capacity)
		for i, k := range keys {
			c.Put(k, i, time.Hour)
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSweep(t *testing.T) {
	clk := newClock()
	c := New[int](clk, 0)
	c.Put("short", 1, time.Minute)
	c.Put("long", 2, time.Hour)
	clk.Advance(2 * time.Minute)
	if got := c.Sweep(); got != 1 {
		t.Fatalf("Sweep dropped %d, want 1", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after sweep", c.Len())
	}
	if _, ok := c.Get("long"); !ok {
		t.Fatal("live entry swept")
	}
	// Sweeping again drops nothing and does not disturb stats semantics.
	if got := c.Sweep(); got != 0 {
		t.Fatalf("second Sweep dropped %d", got)
	}
}

func TestGetWithTTL(t *testing.T) {
	clk := newClock()
	c := New[string](clk, 0)
	c.Put("k", "v", 10*time.Second)

	v, remaining, original, ok := c.GetWithTTL("k")
	if !ok || v != "v" || remaining != 10*time.Second || original != 10*time.Second {
		t.Fatalf("GetWithTTL = %q, %v, %v, %v", v, remaining, original, ok)
	}
	clk.Advance(7 * time.Second)
	if _, remaining, original, ok = c.GetWithTTL("k"); !ok || remaining != 3*time.Second || original != 10*time.Second {
		t.Fatalf("aged GetWithTTL = %v remaining of %v, ok=%v", remaining, original, ok)
	}
	// Re-Put resets both the deadline and the recorded TTL.
	c.Put("k", "v2", time.Minute)
	if v, remaining, original, ok = c.GetWithTTL("k"); !ok || v != "v2" || remaining != time.Minute || original != time.Minute {
		t.Fatalf("refreshed GetWithTTL = %q, %v, %v, %v", v, remaining, original, ok)
	}
	clk.Advance(2 * time.Minute)
	if _, _, _, ok = c.GetWithTTL("k"); ok {
		t.Fatal("expired entry returned")
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
