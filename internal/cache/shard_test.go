package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestShardCountSelection(t *testing.T) {
	cases := []struct {
		max, shards, want int
	}{
		{0, 16, 16},     // unbounded: as requested
		{0, 0, 1},       // degenerate request clamps up
		{0, 5, 8},       // rounds up to a power of two
		{0, 1 << 20, maxShards},
		{8, 16, 8},      // bounded: never more shards than capacity
		{3, 16, 2},      // rounded down to a power of two ≤ max
	}
	for _, tc := range cases {
		c := NewWithShards[int](newClock(), tc.max, tc.shards)
		if got := c.ShardCount(); got != tc.want {
			t.Errorf("NewWithShards(max=%d, shards=%d).ShardCount() = %d, want %d",
				tc.max, tc.shards, got, tc.want)
		}
	}
	// New picks a single shard for small bounded caches (exact LRU) and
	// the default for unbounded ones.
	if got := New[int](newClock(), 3).ShardCount(); got != 1 {
		t.Errorf("New(max=3).ShardCount() = %d, want 1", got)
	}
	if got := New[int](newClock(), 0).ShardCount(); got != DefaultShards {
		t.Errorf("New(max=0).ShardCount() = %d, want %d", got, DefaultShards)
	}
}

func TestShardedCapacityBound(t *testing.T) {
	// The per-shard bounds must sum to exactly the global bound.
	const max = 4100 // deliberately not a multiple of the shard count
	c := NewWithShards[int](newClock(), max, 16)
	for i := 0; i < 3*max; i++ {
		c.Put(fmt.Sprint(i), i, time.Hour)
	}
	if got := c.Len(); got > max {
		t.Fatalf("Len = %d exceeds bound %d", got, max)
	}
	total := 0
	for _, s := range c.shards {
		total += s.max
	}
	if total != max {
		t.Fatalf("shard bounds sum to %d, want %d", total, max)
	}
}

func TestShardedStatsMerge(t *testing.T) {
	c := NewWithShards[int](newClock(), 0, 8)
	const n = 200
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprint(i), i, time.Hour)
	}
	for i := 0; i < n; i++ {
		if _, ok := c.Get(fmt.Sprint(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	for i := 0; i < 50; i++ {
		c.Get(fmt.Sprintf("missing-%d", i))
	}
	st := c.Stats()
	if st.Hits != n || st.Misses != 50 {
		t.Fatalf("merged stats = %+v, want %d hits / 50 misses", st, n)
	}
	// The per-shard view must add up to the merged view, and with this
	// many distinct keys more than one shard must have seen traffic.
	var sum Stats
	busy := 0
	for _, s := range c.ShardStats() {
		sum.add(s)
		if s.Hits+s.Misses > 0 {
			busy++
		}
	}
	if sum != st {
		t.Fatalf("ShardStats sum %+v != Stats %+v", sum, st)
	}
	if busy < 2 {
		t.Fatalf("all traffic landed on %d shard(s); hash not distributing", busy)
	}
}

// TestShardedStress hammers every mutating and reading operation from many
// goroutines at once; run under -race this is the memory-safety gate for
// the sharded rewrite.
func TestShardedStress(t *testing.T) {
	clk := newClock()
	c := NewWithShards[int](clk, 2048, 16)
	const (
		workers = 8
		iters   = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprint((w*iters + i) % 500)
				switch i % 7 {
				case 0:
					c.Put(k, i, time.Hour)
				case 1:
					c.Get(k)
				case 2:
					c.Peek(k)
				case 3:
					c.Delete(k)
				case 4:
					c.Sweep()
				case 5:
					c.Preload(map[string]int{k: i, k + "x": i}, time.Minute)
				case 6:
					if i%70 == 6 {
						c.Purge()
					} else {
						c.Stats()
						c.Len()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// The cache must still be coherent afterwards.
	c.Put("after", 1, time.Hour)
	if v, ok := c.Get("after"); !ok || v != 1 {
		t.Fatalf("cache unusable after stress: %d, %v", v, ok)
	}
	if c.Len() > 2048 {
		t.Fatalf("capacity bound violated: %d", c.Len())
	}
}

func TestLockWaitCounter(t *testing.T) {
	// Single shard + many writers of one key: contention is guaranteed on
	// at least some acquisitions. The counter is a lower bound, so all we
	// assert is that it moves under contention and stays at zero without.
	c := NewWithShards[int](newClock(), 0, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Put("k", i, time.Hour)
				c.Get("k")
			}
		}()
	}
	wg.Wait()
	if c.LockWaits() == 0 {
		t.Skip("no contention observed (single-core run?)")
	}
	c.ResetStats()
	if c.LockWaits() != 0 {
		t.Fatal("ResetStats did not clear lock waits")
	}
	c.Get("k")
	if c.LockWaits() != 0 {
		t.Fatal("uncontended access counted as a lock wait")
	}
}
