package cache

import (
	"testing"
	"time"

	"hns/internal/simtime"
)

func TestGetStaleWithinGrace(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New[string](clk, 0)
	c.SetStaleGrace(time.Hour)

	c.Put("k", "v", time.Minute)
	clk.Advance(30 * time.Minute) // expired 29 minutes ago, within grace

	if _, ok := c.Get("k"); ok {
		t.Fatal("Get returned an expired entry as live")
	}
	v, ok := c.GetStale("k")
	if !ok || v != "v" {
		t.Fatalf("GetStale = (%q, %v), want the graced entry", v, ok)
	}
	st := c.Stats()
	if st.StaleServed != 1 {
		t.Fatalf("StaleServed = %d, want 1", st.StaleServed)
	}
	if st.Expired != 1 || st.Misses != 1 {
		t.Fatalf("Expired/Misses = %d/%d, want 1/1 (Get still counts the miss)", st.Expired, st.Misses)
	}
}

func TestGetStaleBeyondGrace(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New[string](clk, 0)
	c.SetStaleGrace(time.Hour)

	c.Put("k", "v", time.Minute)
	clk.Advance(2 * time.Hour) // past expiry + grace

	if _, ok := c.GetStale("k"); ok {
		t.Fatal("GetStale served an entry beyond the grace period")
	}
	if c.Stats().StaleServed != 0 {
		t.Fatal("beyond-grace lookups must not count as stale-served")
	}
}

func TestGetStaleWithoutGraceConfigured(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New[string](clk, 0)

	c.Put("k", "v", time.Minute)
	clk.Advance(2 * time.Minute)

	if _, ok := c.GetStale("k"); ok {
		t.Fatal("GetStale must refuse expired entries with no grace configured")
	}
	// And Get removes the expired entry exactly as before.
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired entry returned live")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0 (no grace keeps nothing)", c.Len())
	}
}

func TestGetStaleReturnsLiveEntryWithoutCounting(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New[string](clk, 0)
	c.SetStaleGrace(time.Hour)

	c.Put("k", "v", time.Minute)
	if v, ok := c.GetStale("k"); !ok || v != "v" {
		t.Fatalf("GetStale on a live entry = (%q, %v)", v, ok)
	}
	if c.Stats().StaleServed != 0 {
		t.Fatal("a live entry is not a stale serve")
	}
}

func TestSweepKeepsGracedEntries(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New[string](clk, 0)
	c.SetStaleGrace(time.Hour)

	c.Put("graced", "v", time.Minute)
	c.Put("dead", "v", time.Second)
	// At 60m30s, "dead" (expired at 0m01s) is past expiry+grace while
	// "graced" (expired at 1m, grace until 61m) is still within it.
	clk.Advance(60*time.Minute + 30*time.Second)
	if dropped := c.Sweep(); dropped != 1 {
		t.Fatalf("Sweep dropped %d, want 1 (only the beyond-grace entry)", dropped)
	}
	if _, ok := c.GetStale("graced"); !ok {
		t.Fatal("Sweep removed a graced entry")
	}
}

func TestSweepWithoutGraceDropsExpired(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	c := New[string](clk, 0)
	c.Put("k", "v", time.Minute)
	clk.Advance(2 * time.Minute)
	if dropped := c.Sweep(); dropped != 1 {
		t.Fatalf("Sweep dropped %d, want 1", dropped)
	}
}
