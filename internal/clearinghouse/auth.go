package clearinghouse

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"sync"

	"hns/internal/simtime"
)

// The Clearinghouse authenticates every access — the paper's footnote 5
// attributes most of the 156 ms lookup cost to "each access is
// authenticated, and virtually all data is retrieved from disk". We model
// the simple-credentials flavour: the client presents its principal name
// and a proof derived from a shared secret; the server verifies the proof
// against its principal table and charges the authentication cost.

// Credentials identify a calling principal.
type Credentials struct {
	// Principal is the caller's name ("user:domain:org" by convention).
	Principal string
	// Proof is the hashed shared secret, as produced by Proof.
	Proof []byte
}

// Proof derives the wire proof for a principal/secret pair.
func Proof(principal, secret string) []byte {
	sum := sha256.Sum256([]byte(principal + "\x00" + secret))
	return sum[:]
}

// NewCredentials builds credentials from a principal and its secret.
func NewCredentials(principal, secret string) Credentials {
	return Credentials{Principal: principal, Proof: Proof(principal, secret)}
}

// ErrAuthFailed reports a rejected access.
var ErrAuthFailed = errors.New("clearinghouse: authentication failed")

// Authenticator is a server's principal table.
type Authenticator struct {
	model *simtime.Model

	mu         sync.RWMutex
	principals map[string][]byte // principal -> expected proof
	open       bool
}

// NewAuthenticator creates an empty principal table. If open is true every
// access is admitted (still charging authentication cost) — used for
// test/demo deployments, mirroring sites that ran the Clearinghouse with a
// wildcard principal.
func NewAuthenticator(model *simtime.Model, open bool) *Authenticator {
	return &Authenticator{
		model:      model,
		principals: make(map[string][]byte),
		open:       open,
	}
}

// AddPrincipal registers (or replaces) a principal's secret.
func (a *Authenticator) AddPrincipal(principal, secret string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.principals[principal] = Proof(principal, secret)
}

// RemovePrincipal deletes a principal.
func (a *Authenticator) RemovePrincipal(principal string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.principals, principal)
}

// Verify checks credentials, charging the per-access authentication cost
// regardless of outcome (the handshake happens either way).
func (a *Authenticator) Verify(ctx context.Context, c Credentials) error {
	simtime.Charge(ctx, a.model.CHAuth)
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.open {
		return nil
	}
	want, ok := a.principals[c.Principal]
	if !ok {
		return ErrAuthFailed
	}
	if subtle.ConstantTimeCompare(want, c.Proof) != 1 {
		return ErrAuthFailed
	}
	return nil
}

// String renders a proof for diagnostics (never the secret).
func (c Credentials) String() string {
	return c.Principal + "/" + hex.EncodeToString(c.Proof)[:8]
}
