package clearinghouse

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hns/internal/hrpc"
	"hns/internal/simtime"
	"hns/internal/transport"
)

func TestParseName(t *testing.T) {
	n, err := ParseName("FileServer:CS:UW")
	if err != nil {
		t.Fatal(err)
	}
	if n != (Name{Object: "fileserver", Domain: "cs", Org: "uw"}) {
		t.Fatalf("ParseName = %+v", n)
	}
	if n.String() != "fileserver:cs:uw" {
		t.Fatalf("String = %q", n.String())
	}
	if n.DomainString() != "cs:uw" {
		t.Fatalf("DomainString = %q", n.DomainString())
	}
	for _, bad := range []string{"", "a:b", "a:b:c:d", ":b:c", "a::c", "a:b:"} {
		if _, err := ParseName(bad); !errors.Is(err, ErrBadCHName) {
			t.Errorf("ParseName(%q) accepted", bad)
		}
	}
}

func TestParseNameProperty(t *testing.T) {
	// Property: parse ∘ String is idempotent for any parseable input.
	f := func(a, b, c string) bool {
		s := a + ":" + b + ":" + c
		n, err := ParseName(s)
		if err != nil {
			return true // unparseable inputs are out of scope
		}
		n2, err := ParseName(n.String())
		return err == nil && n == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCredentials(t *testing.T) {
	model := simtime.Default()
	a := NewAuthenticator(model, false)
	a.AddPrincipal("schwartz:cs:uw", "hunter2")

	ctx := context.Background()
	good := NewCredentials("schwartz:cs:uw", "hunter2")
	if err := a.Verify(ctx, good); err != nil {
		t.Fatalf("good credentials rejected: %v", err)
	}
	bad := NewCredentials("schwartz:cs:uw", "wrong")
	if err := a.Verify(ctx, bad); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("bad secret accepted: %v", err)
	}
	unknown := NewCredentials("nobody:cs:uw", "x")
	if err := a.Verify(ctx, unknown); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("unknown principal accepted: %v", err)
	}
	a.RemovePrincipal("schwartz:cs:uw")
	if err := a.Verify(ctx, good); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("removed principal accepted: %v", err)
	}
	// Open mode admits anyone but still charges.
	openAuth := NewAuthenticator(model, true)
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		return openAuth.Verify(ctx, unknown)
	})
	if err != nil {
		t.Fatalf("open auth rejected: %v", err)
	}
	if cost != model.CHAuth {
		t.Fatalf("auth cost %v != %v", cost, model.CHAuth)
	}
	if s := good.String(); strings.Contains(s, "hunter2") {
		t.Fatal("credentials String leaks the secret")
	}
}

func TestStoreBasics(t *testing.T) {
	model := simtime.Default()
	s := NewStore(model)
	ctx := context.Background()
	n := MustName("fileserver:cs:uw")

	if _, err := s.Retrieve(ctx, n, PropAddress); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("missing object: %v", err)
	}
	s.AddItem(ctx, n, PropAddress, []byte("tcp!fs:10"))
	got, err := s.Retrieve(ctx, n, PropAddress)
	if err != nil || string(got) != "tcp!fs:10" {
		t.Fatalf("Retrieve = %q, %v", got, err)
	}
	if _, err := s.Retrieve(ctx, n, "nothere"); !errors.Is(err, ErrNoSuchProperty) {
		t.Fatalf("missing property: %v", err)
	}
	// Returned value is a copy.
	got[0] = 'X'
	got2, _ := s.Retrieve(ctx, n, PropAddress)
	if string(got2) != "tcp!fs:10" {
		t.Fatal("Retrieve aliases internal storage")
	}
	// Deleting the last property removes the object.
	if err := s.DeleteItem(ctx, n, PropAddress); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("empty object survived")
	}
}

func TestStoreListAndProperties(t *testing.T) {
	model := simtime.Default()
	s := NewStore(model)
	ctx := context.Background()
	s.AddItem(ctx, MustName("b:cs:uw"), PropUser, []byte("1"))
	s.AddItem(ctx, MustName("a:cs:uw"), PropUser, []byte("1"))
	s.AddItem(ctx, MustName("a:cs:uw"), PropMailbox, []byte("m"))
	s.AddItem(ctx, MustName("z:ee:uw"), PropUser, []byte("1"))

	names := s.List(ctx, "cs", "uw")
	if len(names) != 2 || names[0].Object != "a" || names[1].Object != "b" {
		t.Fatalf("List = %v", names)
	}
	props, err := s.Properties(ctx, MustName("a:cs:uw"))
	if err != nil || len(props) != 2 {
		t.Fatalf("Properties = %v, %v", props, err)
	}
	if _, err := s.Properties(ctx, MustName("ghost:cs:uw")); !errors.Is(err, ErrNoSuchObject) {
		t.Fatal("ghost object has properties")
	}
}

func TestStoreReadChargesDisk(t *testing.T) {
	model := simtime.Default()
	s := NewStore(model)
	n := MustName("fs:cs:uw")
	s.AddItem(context.Background(), n, PropAddress, []byte("x"))
	cost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := s.Retrieve(ctx, n, PropAddress)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost != model.CHDiskRead {
		t.Fatalf("read cost %v != CHDiskRead %v", cost, model.CHDiskRead)
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	model := simtime.Default()
	s := NewStore(model)
	ctx := context.Background()
	s.AddItem(ctx, MustName("fs:cs:uw"), PropAddress, []byte("tcp!fs:10"))
	s.AddItem(ctx, MustName("user:cs:uw"), PropMailbox, []byte("mbox"))

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(model)
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Retrieve(ctx, MustName("fs:cs:uw"), PropAddress)
	if err != nil || string(got) != "tcp!fs:10" {
		t.Fatalf("after reload: %q, %v", got, err)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len after reload = %d", s2.Len())
	}
}

func TestStoreSnapshotFile(t *testing.T) {
	model := simtime.Default()
	s := NewStore(model)
	s.AddItem(context.Background(), MustName("fs:cs:uw"), PropAddress, []byte("a"))
	path := filepath.Join(t.TempDir(), "ch.json")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	s2 := NewStore(model)
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatal("reload from file failed")
	}
}

func TestStoreLoadRejectsGarbage(t *testing.T) {
	s := NewStore(simtime.Default())
	if err := s.Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if err := s.Load(strings.NewReader(`[{"name":"bad","properties":{}}]`)); err == nil {
		t.Fatal("bad name in snapshot accepted")
	}
}

// ---- Server end to end.

type chEnv struct {
	net    *transport.Network
	model  *simtime.Model
	server *Server
	b      hrpc.Binding
	hc     *hrpc.Client
}

func newCHEnv(t *testing.T) *chEnv {
	t.Helper()
	model := simtime.Default()
	net := transport.NewNetwork(model)
	auth := NewAuthenticator(model, false)
	auth.AddPrincipal("admin:cs:uw", "secret")
	s := NewServer("xerox", model, NewStore(model), auth)
	ln, b, err := s.Serve(net, "xerox:ch")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	hc := hrpc.NewClient(net)
	t.Cleanup(func() { hc.Close() })
	return &chEnv{net: net, model: model, server: s, b: b, hc: hc}
}

func (e *chEnv) client(principal, secret string) *Client {
	return NewClient(e.hc, e.b, NewCredentials(principal, secret))
}

func TestCHEndToEnd(t *testing.T) {
	env := newCHEnv(t)
	c := env.client("admin:cs:uw", "secret")
	ctx := context.Background()
	n := MustName("printserver:cs:uw")

	if err := c.AddItem(ctx, n, PropAddress, []byte("tcp!print:5")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Retrieve(ctx, n, PropAddress)
	if err != nil || string(got) != "tcp!print:5" {
		t.Fatalf("Retrieve = %q, %v", got, err)
	}
	names, err := c.List(ctx, "cs", "uw")
	if err != nil || len(names) != 1 || names[0] != n {
		t.Fatalf("List = %v, %v", names, err)
	}
	props, err := c.Properties(ctx, n)
	if err != nil || len(props) != 1 || props[0] != PropAddress {
		t.Fatalf("Properties = %v, %v", props, err)
	}
	if err := c.DeleteObject(ctx, n); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Retrieve(ctx, n, PropAddress); err == nil {
		t.Fatal("object survived deletion")
	}
}

func TestCHRejectsBadCredentials(t *testing.T) {
	env := newCHEnv(t)
	c := env.client("admin:cs:uw", "wrong")
	_, err := c.Retrieve(context.Background(), MustName("x:cs:uw"), PropAddress)
	var rf *hrpc.RemoteFault
	if !errors.As(err, &rf) || !strings.Contains(rf.Msg, "authentication failed") {
		t.Fatalf("bad credentials: %v", err)
	}
}

// TestCHLookupCostAnchor pins the paper's number: "a Clearinghouse name to
// address lookup takes 156 msec."
func TestCHLookupCostAnchor(t *testing.T) {
	env := newCHEnv(t)
	c := env.client("admin:cs:uw", "secret")
	ctx := context.Background()
	n := MustName("fileserver:cs:uw")
	if err := c.AddItem(ctx, n, PropAddress, []byte("tcp!fs:9")); err != nil {
		t.Fatal(err)
	}
	// Warm the Courier TCP connection (steady-state measurement).
	if _, err := c.Retrieve(ctx, n, PropAddress); err != nil {
		t.Fatal(err)
	}
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := c.Retrieve(ctx, n, PropAddress)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	gotMS := float64(cost) / float64(time.Millisecond)
	if gotMS < 140 || gotMS > 172 {
		t.Fatalf("Clearinghouse lookup = %.2f ms, want ≈156 ms", gotMS)
	}
}

func TestCHReplication(t *testing.T) {
	model := simtime.Default()
	net := transport.NewNetwork(model)
	hc := hrpc.NewClient(net)
	defer hc.Close()

	mkServer := func(host string) (*Server, hrpc.Binding) {
		auth := NewAuthenticator(model, true)
		s := NewServer(host, model, NewStore(model), auth)
		ln, b, err := s.Serve(net, host+":ch")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		return s, b
	}
	s1, b1 := mkServer("ch1")
	s2, b2 := mkServer("ch2")
	cred := NewCredentials("any:cs:uw", "x")
	// Full mesh.
	s1.AddPeer(NewClient(hc, b2, cred))
	s2.AddPeer(NewClient(hc, b1, cred))

	ctx := context.Background()
	c1 := NewClient(hc, b1, cred)
	c2 := NewClient(hc, b2, cred)
	n := MustName("gateway:cs:uw")

	// Write to server 1; read from server 2.
	if err := c1.AddItem(ctx, n, PropAddress, []byte("udp!gw:7")); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Retrieve(ctx, n, PropAddress)
	if err != nil || string(got) != "udp!gw:7" {
		t.Fatalf("replicated read = %q, %v", got, err)
	}
	// Delete via server 2; gone from server 1.
	if err := c2.DeleteObject(ctx, n); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Retrieve(ctx, n, PropAddress); err == nil {
		t.Fatal("delete did not replicate")
	}
	if s1.ReplicationFailures() != 0 || s2.ReplicationFailures() != 0 {
		t.Fatal("replication failures recorded on healthy mesh")
	}
}

func TestCHReplicationFailureIsBestEffort(t *testing.T) {
	model := simtime.Default()
	net := transport.NewNetwork(model)
	hc := hrpc.NewClient(net)
	defer hc.Close()

	auth := NewAuthenticator(model, true)
	s := NewServer("ch1", model, NewStore(model), auth)
	ln, b, err := s.Serve(net, "ch1:ch")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Peer that does not exist.
	deadPeer := NewClient(hc, hrpc.SuiteCourier.Bind("ghost", "ghost:ch", Program, Version),
		NewCredentials("any:cs:uw", "x"))
	s.AddPeer(deadPeer)

	c := NewClient(hc, b, NewCredentials("any:cs:uw", "x"))
	ctx := context.Background()
	// The write must still succeed locally.
	if err := c.AddItem(ctx, MustName("svc:cs:uw"), PropAddress, []byte("a")); err != nil {
		t.Fatalf("write failed because of dead peer: %v", err)
	}
	if s.ReplicationFailures() == 0 {
		t.Fatal("dead peer failure not recorded")
	}
	if _, err := c.Retrieve(ctx, MustName("svc:cs:uw"), PropAddress); err != nil {
		t.Fatal(err)
	}
}

func TestCHAuthDominatesCost(t *testing.T) {
	// The paper's footnote: authentication + disk are why the CH is slow.
	model := simtime.Default()
	authShare := float64(model.CHAuth+model.CHDiskRead) /
		float64(model.CHAuth+model.CHDiskRead+model.CHServerWork+model.RTTTCP+model.CtlCourier)
	if authShare < 0.6 {
		t.Fatalf("auth+disk share = %.2f of a CH access; paper says they dominate", authShare)
	}
}

func TestCHConcurrentClients(t *testing.T) {
	env := newCHEnv(t)
	ctx := context.Background()
	seed := env.client("admin:cs:uw", "secret")
	for i := 0; i < 8; i++ {
		n := MustName(fmt.Sprintf("svc%d:cs:uw", i))
		if err := seed.AddItem(ctx, n, PropAddress, []byte(fmt.Sprintf("addr%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := env.client("admin:cs:uw", "secret")
			n := MustName(fmt.Sprintf("svc%d:cs:uw", i))
			for j := 0; j < 20; j++ {
				got, err := c.Retrieve(ctx, n, PropAddress)
				if err != nil {
					errs <- err
					return
				}
				if string(got) != fmt.Sprintf("addr%d", i) {
					errs <- fmt.Errorf("svc%d read %q", i, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCHWrongVersionClient(t *testing.T) {
	env := newCHEnv(t)
	// A client compiled against a future Clearinghouse version.
	b := env.b
	b.Version = Version + 1
	c := NewClient(env.hc, b, NewCredentials("admin:cs:uw", "secret"))
	_, err := c.Retrieve(context.Background(), MustName("x:cs:uw"), PropAddress)
	if err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("version mismatch not surfaced: %v", err)
	}
}
