package clearinghouse

import (
	"context"

	"hns/internal/hrpc"
	"hns/internal/marshal"
)

// Client is an authenticated Clearinghouse client bound to one server.
type Client struct {
	c    *hrpc.Client
	b    hrpc.Binding
	cred Credentials
}

// NewClient creates a client for the Clearinghouse bound at b, presenting
// cred on every access.
func NewClient(c *hrpc.Client, b hrpc.Binding, cred Credentials) *Client {
	return &Client{c: c, b: b, cred: cred}
}

// Binding reports the server binding in use.
func (c *Client) Binding() hrpc.Binding { return c.b }

// Retrieve reads one property of an object.
func (c *Client) Retrieve(ctx context.Context, n Name, property string) ([]byte, error) {
	ret, err := c.c.Call(ctx, c.b, procRetrieveItem, marshal.StructV(
		credValue(c.cred), marshal.Str(n.String()), marshal.Str(property),
	))
	if err != nil {
		return nil, err
	}
	return ret.Items[0].AsBytes()
}

// AddItem creates or replaces a property on an object.
func (c *Client) AddItem(ctx context.Context, n Name, property string, value []byte) error {
	return c.addItem(ctx, n, property, value, false)
}

func (c *Client) addItem(ctx context.Context, n Name, property string, value []byte, replicated bool) error {
	_, err := c.c.Call(ctx, c.b, procAddItem, marshal.StructV(
		credValue(c.cred), marshal.Str(n.String()), marshal.Str(property),
		marshal.BytesV(value), marshal.BoolV(replicated),
	))
	return err
}

// DeleteItem removes one property.
func (c *Client) DeleteItem(ctx context.Context, n Name, property string) error {
	return c.deleteItem(ctx, n, property, false)
}

func (c *Client) deleteItem(ctx context.Context, n Name, property string, replicated bool) error {
	_, err := c.c.Call(ctx, c.b, procDeleteItem, marshal.StructV(
		credValue(c.cred), marshal.Str(n.String()), marshal.Str(property),
		marshal.BoolV(replicated),
	))
	return err
}

// DeleteObject removes an object entirely.
func (c *Client) DeleteObject(ctx context.Context, n Name) error {
	return c.deleteObject(ctx, n, false)
}

func (c *Client) deleteObject(ctx context.Context, n Name, replicated bool) error {
	_, err := c.c.Call(ctx, c.b, procDeleteObject, marshal.StructV(
		credValue(c.cred), marshal.Str(n.String()), marshal.BoolV(replicated),
	))
	return err
}

// List enumerates the objects of a domain:organization.
func (c *Client) List(ctx context.Context, domain, org string) ([]Name, error) {
	ret, err := c.c.Call(ctx, c.b, procListObjects, marshal.StructV(
		credValue(c.cred), marshal.Str(domain), marshal.Str(org),
	))
	if err != nil {
		return nil, err
	}
	out := make([]Name, 0, ret.Items[0].Len())
	for _, it := range ret.Items[0].Items {
		s, err := it.AsString()
		if err != nil {
			return nil, err
		}
		n, err := ParseName(s)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// Properties lists the property names of an object.
func (c *Client) Properties(ctx context.Context, n Name) ([]string, error) {
	ret, err := c.c.Call(ctx, c.b, procListProperties, marshal.StructV(
		credValue(c.cred), marshal.Str(n.String()),
	))
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, ret.Items[0].Len())
	for _, it := range ret.Items[0].Items {
		s, err := it.AsString()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
