// Package clearinghouse implements a Xerox Clearinghouse-class name
// service (Oppen & Dalal 1983), the second underlying service the HNS
// prototype integrated.
//
// Characteristics reproduced from the paper and the Clearinghouse design:
//
//   - three-part names object:domain:organization, case-insensitive;
//   - typed property lists per object;
//   - every access is authenticated (the paper's footnote 5 blames
//     authentication plus disk residency for the 156 ms lookups, versus
//     BIND's 27 ms);
//   - data is disk-resident (the store charges a disk-read cost per
//     access and supports real snapshot persistence for the daemon);
//   - servers replicate updates to peers;
//   - the service speaks the Courier protocol suite (program 2,
//     version 3 — the historical Clearinghouse Courier program).
package clearinghouse

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a three-part Clearinghouse name: object:domain:organization.
type Name struct {
	Object string
	Domain string
	Org    string
}

// ErrBadCHName reports an unparseable Clearinghouse name.
var ErrBadCHName = errors.New("clearinghouse: malformed name")

// ParseName parses "object:domain:organization". All three parts are
// required and non-empty; the result is canonical (lower case).
func ParseName(s string) (Name, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Name{}, fmt.Errorf("%w: %q needs object:domain:organization", ErrBadCHName, s)
	}
	n := Name{
		Object: strings.ToLower(strings.TrimSpace(parts[0])),
		Domain: strings.ToLower(strings.TrimSpace(parts[1])),
		Org:    strings.ToLower(strings.TrimSpace(parts[2])),
	}
	if n.Object == "" || n.Domain == "" || n.Org == "" {
		return Name{}, fmt.Errorf("%w: %q has an empty part", ErrBadCHName, s)
	}
	return n, nil
}

// MustName parses s, panicking on error. For tests and literals.
func MustName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String implements fmt.Stringer.
func (n Name) String() string {
	return n.Object + ":" + n.Domain + ":" + n.Org
}

// DomainString returns the domain:organization pair that scopes the name.
func (n Name) DomainString() string { return n.Domain + ":" + n.Org }

// IsZero reports whether the name is empty.
func (n Name) IsZero() bool { return n == Name{} }

// Canonical lower-cases n in place and reports whether it is well formed.
func (n Name) Canonical() (Name, error) {
	return ParseName(n.String())
}

// Well-known property names, following Clearinghouse usage.
const (
	// PropAddress holds a server's transport address list.
	PropAddress = "addresslist"
	// PropAuthKey holds a principal's authentication key hash.
	PropAuthKey = "authenticationkey"
	// PropMailbox holds a user's mail server name.
	PropMailbox = "mailboxes"
	// PropUser marks user objects.
	PropUser = "user"
	// PropBinding holds a serialized HRPC binding (used by the CH binding
	// NSM and the reregistration baseline).
	PropBinding = "binding"
)
