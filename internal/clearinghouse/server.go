package clearinghouse

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// Program identification: the historical Clearinghouse Courier program.
const (
	Program = 2
	Version = 3
)

// credType is the wire shape of Credentials.
var credType = marshal.TStruct(marshal.TString, marshal.TBytes)

// The Clearinghouse procedures. Numbers loosely follow the Courier
// program's procedure space.
var (
	procRetrieveItem = hrpc.Procedure{
		Name: "CHRetrieveItem", ID: 2,
		Args: marshal.TStruct(credType, marshal.TString, marshal.TString),
		Ret:  marshal.TStruct(marshal.TBytes),
	}
	procAddItem = hrpc.Procedure{
		Name: "CHAddItem", ID: 3,
		Args: marshal.TStruct(credType, marshal.TString, marshal.TString, marshal.TBytes, marshal.TBool),
		Ret:  marshal.TStruct(),
	}
	procDeleteItem = hrpc.Procedure{
		Name: "CHDeleteItem", ID: 4,
		Args: marshal.TStruct(credType, marshal.TString, marshal.TString, marshal.TBool),
		Ret:  marshal.TStruct(),
	}
	procDeleteObject = hrpc.Procedure{
		Name: "CHDeleteObject", ID: 5,
		Args: marshal.TStruct(credType, marshal.TString, marshal.TBool),
		Ret:  marshal.TStruct(),
	}
	procListObjects = hrpc.Procedure{
		Name: "CHListObjects", ID: 6,
		Args: marshal.TStruct(credType, marshal.TString, marshal.TString),
		Ret:  marshal.TStruct(marshal.TList(marshal.TString)),
	}
	procListProperties = hrpc.Procedure{
		Name: "CHListProperties", ID: 7,
		Args: marshal.TStruct(credType, marshal.TString),
		Ret:  marshal.TStruct(marshal.TList(marshal.TString)),
	}
)

func credValue(c Credentials) marshal.Value {
	return marshal.StructV(marshal.Str(c.Principal), marshal.BytesV(c.Proof))
}

func valueCred(v marshal.Value) (Credentials, error) {
	if v.Kind != marshal.KindStruct || v.Len() != 2 {
		return Credentials{}, fmt.Errorf("clearinghouse: bad credentials value")
	}
	p, err := v.Items[0].AsString()
	if err != nil {
		return Credentials{}, err
	}
	proof, err := v.Items[1].AsBytes()
	if err != nil {
		return Credentials{}, err
	}
	return Credentials{Principal: p, Proof: proof}, nil
}

// Server is one Clearinghouse server: an authenticated, disk-resident
// store replicating updates to its peers, served over the Courier suite.
type Server struct {
	host  string
	model *simtime.Model
	store *Store
	auth  *Authenticator

	mu    sync.RWMutex
	peers []*Client

	replFailures atomic.Int64
}

// NewServer creates a Clearinghouse server on host over the given store
// and principal table.
func NewServer(host string, model *simtime.Model, store *Store, auth *Authenticator) *Server {
	return &Server{host: host, model: model, store: store, auth: auth}
}

// Host reports the server's host name.
func (s *Server) Host() string { return s.host }

// Store exposes the underlying store (for daemon persistence).
func (s *Server) Store() *Store { return s.store }

// AddPeer registers a replication peer. Updates received directly from
// clients are forwarded to every peer; updates received from a peer are
// not re-forwarded (one-hop flooding over a full mesh, the classic
// Clearinghouse arrangement).
func (s *Server) AddPeer(peer *Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = append(s.peers, peer)
}

// ReplicationFailures reports how many peer forwards have failed
// (best-effort replication: failures are counted, not fatal).
func (s *Server) ReplicationFailures() int64 { return s.replFailures.Load() }

func (s *Server) replicate(ctx context.Context, fn func(ctx context.Context, peer *Client) error) {
	s.mu.RLock()
	peers := append([]*Client(nil), s.peers...)
	s.mu.RUnlock()
	for _, p := range peers {
		// Replication traffic is background work: it must not inflate the
		// caller's measured cost, so it runs without the request meter.
		if err := fn(context.WithoutCancel(context.Background()), p); err != nil {
			s.replFailures.Add(1)
		}
	}
}

// HRPCServer wraps the server in its Courier program.
func (s *Server) HRPCServer() *hrpc.Server {
	hs := hrpc.NewServer("clearinghouse@"+s.host, Program, Version)

	// guard authenticates and charges baseline server work.
	guard := func(ctx context.Context, args marshal.Value) error {
		simtime.Charge(ctx, s.model.CHServerWork)
		cred, err := valueCred(args.Items[0])
		if err != nil {
			return err
		}
		return s.auth.Verify(ctx, cred)
	}

	hs.Register(procRetrieveItem, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		if err := guard(ctx, args); err != nil {
			return marshal.Value{}, err
		}
		rawName, _ := args.Items[1].AsString()
		prop, _ := args.Items[2].AsString()
		n, err := ParseName(rawName)
		if err != nil {
			return marshal.Value{}, err
		}
		v, err := s.store.Retrieve(ctx, n, prop)
		if err != nil {
			return marshal.Value{}, err
		}
		return marshal.StructV(marshal.BytesV(v)), nil
	})

	hs.Register(procAddItem, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		if err := guard(ctx, args); err != nil {
			return marshal.Value{}, err
		}
		rawName, _ := args.Items[1].AsString()
		prop, _ := args.Items[2].AsString()
		value, _ := args.Items[3].AsBytes()
		replicated, _ := args.Items[4].AsBool()
		n, err := ParseName(rawName)
		if err != nil {
			return marshal.Value{}, err
		}
		s.store.AddItem(ctx, n, prop, value)
		if !replicated {
			s.replicate(ctx, func(ctx context.Context, p *Client) error {
				return p.addItem(ctx, n, prop, value, true)
			})
		}
		return marshal.StructV(), nil
	})

	hs.Register(procDeleteItem, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		if err := guard(ctx, args); err != nil {
			return marshal.Value{}, err
		}
		rawName, _ := args.Items[1].AsString()
		prop, _ := args.Items[2].AsString()
		replicated, _ := args.Items[3].AsBool()
		n, err := ParseName(rawName)
		if err != nil {
			return marshal.Value{}, err
		}
		if err := s.store.DeleteItem(ctx, n, prop); err != nil {
			return marshal.Value{}, err
		}
		if !replicated {
			s.replicate(ctx, func(ctx context.Context, p *Client) error {
				return p.deleteItem(ctx, n, prop, true)
			})
		}
		return marshal.StructV(), nil
	})

	hs.Register(procDeleteObject, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		if err := guard(ctx, args); err != nil {
			return marshal.Value{}, err
		}
		rawName, _ := args.Items[1].AsString()
		replicated, _ := args.Items[2].AsBool()
		n, err := ParseName(rawName)
		if err != nil {
			return marshal.Value{}, err
		}
		if err := s.store.DeleteObject(ctx, n); err != nil {
			return marshal.Value{}, err
		}
		if !replicated {
			s.replicate(ctx, func(ctx context.Context, p *Client) error {
				return p.deleteObject(ctx, n, true)
			})
		}
		return marshal.StructV(), nil
	})

	hs.Register(procListObjects, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		if err := guard(ctx, args); err != nil {
			return marshal.Value{}, err
		}
		domain, _ := args.Items[1].AsString()
		org, _ := args.Items[2].AsString()
		names := s.store.List(ctx, domain, org)
		items := make([]marshal.Value, 0, len(names))
		for _, n := range names {
			items = append(items, marshal.Str(n.String()))
		}
		return marshal.StructV(marshal.ListV(items...)), nil
	})

	hs.Register(procListProperties, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		if err := guard(ctx, args); err != nil {
			return marshal.Value{}, err
		}
		rawName, _ := args.Items[1].AsString()
		n, err := ParseName(rawName)
		if err != nil {
			return marshal.Value{}, err
		}
		props, err := s.store.Properties(ctx, n)
		if err != nil {
			return marshal.Value{}, err
		}
		items := make([]marshal.Value, 0, len(props))
		for _, p := range props {
			items = append(items, marshal.Str(p))
		}
		return marshal.StructV(marshal.ListV(items...)), nil
	})

	return hs
}

// Serve binds the server at addr over the Courier suite.
func (s *Server) Serve(net *transport.Network, addr string) (transport.Listener, hrpc.Binding, error) {
	return hrpc.Serve(net, s.HRPCServer(), hrpc.SuiteCourier, s.host, addr)
}
