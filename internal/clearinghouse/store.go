package clearinghouse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"hns/internal/simtime"
)

// Store holds Clearinghouse entries. Reads charge the disk-read cost (the
// Clearinghouse keeps "virtually all data" on disk); writes charge the
// write-through cost. The store supports JSON snapshot persistence so the
// chd daemon can survive restarts.
type Store struct {
	model *simtime.Model

	mu      sync.RWMutex
	entries map[Name]map[string][]byte
}

// Errors reported by store operations.
var (
	ErrNoSuchObject   = errors.New("clearinghouse: no such object")
	ErrNoSuchProperty = errors.New("clearinghouse: no such property")
)

// NewStore creates an empty store.
func NewStore(model *simtime.Model) *Store {
	return &Store{model: model, entries: make(map[Name]map[string][]byte)}
}

// Retrieve reads one property of an object, charging disk cost.
func (s *Store) Retrieve(ctx context.Context, n Name, property string) ([]byte, error) {
	simtime.Charge(ctx, s.model.CHDiskRead)
	s.mu.RLock()
	defer s.mu.RUnlock()
	props, ok := s.entries[n]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchObject, n)
	}
	v, ok := props[property]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoSuchProperty, property, n)
	}
	return append([]byte(nil), v...), nil
}

// AddItem creates or replaces a property on an object, creating the object
// if needed, charging write-through cost.
func (s *Store) AddItem(ctx context.Context, n Name, property string, value []byte) {
	simtime.Charge(ctx, s.model.CHWriteThrough)
	s.mu.Lock()
	defer s.mu.Unlock()
	props, ok := s.entries[n]
	if !ok {
		props = make(map[string][]byte)
		s.entries[n] = props
	}
	props[property] = append([]byte(nil), value...)
}

// DeleteItem removes one property; deleting the last property removes the
// object.
func (s *Store) DeleteItem(ctx context.Context, n Name, property string) error {
	simtime.Charge(ctx, s.model.CHWriteThrough)
	s.mu.Lock()
	defer s.mu.Unlock()
	props, ok := s.entries[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchObject, n)
	}
	if _, ok := props[property]; !ok {
		return fmt.Errorf("%w: %s on %s", ErrNoSuchProperty, property, n)
	}
	delete(props, property)
	if len(props) == 0 {
		delete(s.entries, n)
	}
	return nil
}

// DeleteObject removes an object and all its properties.
func (s *Store) DeleteObject(ctx context.Context, n Name) error {
	simtime.Charge(ctx, s.model.CHWriteThrough)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[n]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchObject, n)
	}
	delete(s.entries, n)
	return nil
}

// List enumerates (sorted) the objects in a domain:organization, charging
// one disk read — the Clearinghouse enumeration the reregistration
// baseline leans on.
func (s *Store) List(ctx context.Context, domain, org string) []Name {
	simtime.Charge(ctx, s.model.CHDiskRead)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Name
	for n := range s.entries {
		if n.Domain == domain && n.Org == org {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Properties lists (sorted) the property names of an object.
func (s *Store) Properties(ctx context.Context, n Name) ([]string, error) {
	simtime.Charge(ctx, s.model.CHDiskRead)
	s.mu.RLock()
	defer s.mu.RUnlock()
	props, ok := s.entries[n]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchObject, n)
	}
	out := make([]string, 0, len(props))
	for p := range props {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Len reports the number of objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// snapshotEntry is the persistence form of one object.
type snapshotEntry struct {
	Name       string            `json:"name"`
	Properties map[string][]byte `json:"properties"`
}

// Save writes a JSON snapshot of the store.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	entries := make([]snapshotEntry, 0, len(s.entries))
	for n, props := range s.entries {
		cp := make(map[string][]byte, len(props))
		for k, v := range props {
			cp[k] = append([]byte(nil), v...)
		}
		entries = append(entries, snapshotEntry{Name: n.String(), Properties: cp})
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// Load replaces the store's contents from a JSON snapshot.
func (s *Store) Load(r io.Reader) error {
	var entries []snapshotEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("clearinghouse: load snapshot: %w", err)
	}
	fresh := make(map[Name]map[string][]byte, len(entries))
	for _, e := range entries {
		n, err := ParseName(e.Name)
		if err != nil {
			return err
		}
		fresh[n] = e.Properties
	}
	s.mu.Lock()
	s.entries = fresh
	s.mu.Unlock()
	return nil
}

// SaveFile writes a snapshot to path atomically.
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile loads a snapshot from path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
