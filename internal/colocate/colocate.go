// Package colocate builds the five client/HNS/NSM colocation arrangements
// of the paper's Table 3.1 and the Import operation measured there.
//
// "Because the HNS accesses its data from other servers..., even the HNS
// can be linked locally. Similarly, the NSMs can be linked with any
// process. ... We call the choice of where the HNS and NSMs are linked for
// each client the colocation arrangement."
//
// The arrangements (brackets mark process/host boundaries):
//
//  1. [Client, HNS, NSMs]        — everything linked into the client
//  2. [Client] [HNS, NSMs]       — a remote agent runs HNS and NSMs
//  3. [HNS] [Client, NSMs]       — remote HNS service, linked NSMs
//  4. [NSMs] [Client, HNS]       — linked HNS, remote NSMs
//  5. [Client] [HNS] [NSMs]      — everything remote
package colocate

import (
	"context"
	"fmt"
	"time"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/transport"
	"hns/internal/world"
)

// Arrangement enumerates Table 3.1's rows.
type Arrangement int

// The five arrangements, in table order.
const (
	ClientHNSNSMs Arrangement = iota + 1 // row 1
	AgentHNSNSMs                         // row 2
	RemoteHNS                            // row 3
	RemoteNSMs                           // row 4
	AllRemote                            // row 5
)

// Arrangements lists all five in table order.
func Arrangements() []Arrangement {
	return []Arrangement{ClientHNSNSMs, AgentHNSNSMs, RemoteHNS, RemoteNSMs, AllRemote}
}

// String implements fmt.Stringer using the paper's bracket notation.
func (a Arrangement) String() string {
	switch a {
	case ClientHNSNSMs:
		return "[Client, HNS, NSMs]"
	case AgentHNSNSMs:
		return "[Client] [HNS, NSMs]"
	case RemoteHNS:
		return "[HNS] [Client, NSMs]"
	case RemoteNSMs:
		return "[NSMs] [Client, HNS]"
	case AllRemote:
		return "[Client] [HNS] [NSMs]"
	default:
		return fmt.Sprintf("arrangement(%d)", int(a))
	}
}

// Importer performs the paper's Import call — bind a named service to an
// HRPC Binding — under one colocation arrangement.
type Importer struct {
	arr Arrangement
	w   *world.World
	rpc *hrpc.Client

	// finder answers FindNSM: a linked *core.HNS or a *core.RemoteHNS.
	finder core.Finder
	// localHNS is set when the finder is linked into this client (rows 1
	// and 4): its cache is the client's HNS cache.
	localHNS *core.HNS
	// localNSMs dispatches NSM calls in-process when NSMs are linked with
	// the client (rows 1 and 3), keyed by the NSM endpoint FindNSM names.
	localNSMs map[string]bindServiceFn

	// agent carries row 2: one remote call that does everything.
	agent hrpc.Binding
	// agentHNS is the agent-side HNS instance (its cache is the "HNS
	// cache" of that arrangement).
	agentHNS *core.HNS

	listeners []transport.Listener
}

type bindServiceFn func(ctx context.Context, service string, program, version uint32, name names.Name) (hrpc.Binding, error)

// hnsServiceAddr is where the remote-HNS arrangements serve the HNS; the
// paper ran it on a separate lightly loaded MicroVAX.
const hnsServiceAddr = "beaver:hns"

// agentAddr is where the row-2 agent lives.
const agentAddr = "beaver:agent"

// New builds an Importer for the arrangement over an existing world. The
// HNS cache mode comes from the world's configuration.
func New(w *world.World, arr Arrangement, cacheMode bind.CacheMode) (*Importer, error) {
	im := &Importer{arr: arr, w: w, rpc: hrpc.NewClient(w.Net)}

	linkNSMs := func() {
		im.localNSMs = map[string]bindServiceFn{
			"june:" + world.PortBindingBind: im.w.BindBindingNSM.BindService,
			"june:" + world.PortBindingCH:   im.w.CHBindingNSM.BindService,
		}
	}
	newHNS := func() *core.HNS {
		return w.NewHNS(core.Config{CacheMode: cacheMode})
	}

	switch arr {
	case ClientHNSNSMs: // row 1: all linked
		im.localHNS = newHNS()
		im.finder = im.localHNS
		linkNSMs()

	case AgentHNSNSMs: // row 2: one remote agent holds HNS + NSMs
		im.agentHNS = newHNS()
		srv, err := newAgentServer(w, im.agentHNS)
		if err != nil {
			return nil, err
		}
		ln, b, err := hrpc.Serve(w.Net, srv, hrpc.SuiteRaw, "beaver", agentAddr)
		if err != nil {
			return nil, err
		}
		im.listeners = append(im.listeners, ln)
		im.agent = b

	case RemoteHNS: // row 3: HNS remote, NSMs linked with client
		h := newHNS()
		ln, b, err := core.ServeHNS(w.Net, h, "beaver", hnsServiceAddr)
		if err != nil {
			return nil, err
		}
		im.listeners = append(im.listeners, ln)
		im.localHNS = h // the remote service's cache is still "the HNS cache"
		im.finder = core.NewRemoteHNS(im.rpc, b)
		linkNSMs()

	case RemoteNSMs: // row 4: HNS linked with client, NSMs remote
		im.localHNS = newHNS()
		im.finder = im.localHNS

	case AllRemote: // row 5: both remote
		h := newHNS()
		ln, b, err := core.ServeHNS(w.Net, h, "beaver", hnsServiceAddr)
		if err != nil {
			return nil, err
		}
		im.listeners = append(im.listeners, ln)
		im.localHNS = h
		im.finder = core.NewRemoteHNS(im.rpc, b)

	default:
		return nil, fmt.Errorf("colocate: unknown arrangement %d", arr)
	}
	return im, nil
}

// Close releases the importer's servers and connections.
func (im *Importer) Close() {
	for _, ln := range im.listeners {
		ln.Close()
	}
	im.listeners = nil
	im.rpc.Close()
}

// Arrangement reports which row this importer implements.
func (im *Importer) Arrangement() Arrangement { return im.arr }

// Import binds ServiceName on the host the HNS name designates — the
// paper's Import call. hostName is an HNS name whose context tags the
// naming world ("bind!fiji.cs.washington.edu"); Import constructs the
// HRPCBinding context from it, exactly as the paper's Import builds
// "HRPCBinding-BIND" from "BIND!fiji.cs.washington.edu".
func (im *Importer) Import(ctx context.Context, service string, program, version uint32, hostName string) (hrpc.Binding, error) {
	tagged, err := names.Parse(hostName)
	if err != nil {
		return hrpc.Binding{}, err
	}
	name, err := names.New(qclass.HRPCBinding+"-"+tagged.Context, tagged.Individual)
	if err != nil {
		return hrpc.Binding{}, err
	}

	if im.arr == AgentHNSNSMs {
		return callAgent(ctx, im.rpc, im.agent, service, program, version, name)
	}

	nsmB, err := im.finder.FindNSM(ctx, name, qclass.HRPCBinding)
	if err != nil {
		return hrpc.Binding{}, err
	}
	if local, ok := im.localNSMs[nsmB.Addr]; ok {
		// NSM linked with the client: a local procedure call,
		// "effectively zero in the time scale of the other terms".
		return local(ctx, service, program, version, name)
	}
	return nsm.CallBindService(ctx, im.rpc, nsmB, service, program, version, name)
}

// FlushHNSCache empties this arrangement's HNS meta-cache and the linked
// HostAddress NSM caches (the HNS side of the six mappings) — producing
// Table 3.1's column A/B distinction.
func (im *Importer) FlushHNSCache() {
	if im.localHNS != nil {
		im.localHNS.FlushCache()
	}
	if im.agentHNS != nil {
		im.agentHNS.FlushCache()
	}
	im.w.BindHostNSM.FlushCache()
	im.w.CHHostNSM.FlushCache()
}

// FlushNSMCache empties the binding NSMs' caches (the NSM side) —
// producing Table 3.1's column B/C distinction.
func (im *Importer) FlushNSMCache() {
	im.w.BindBindingNSM.FlushCache()
	im.w.CHBindingNSM.FlushCache()
}

// HNSCacheStats reports the arrangement's HNS cache counters.
func (im *Importer) HNSCacheStats() core.CacheStats {
	switch {
	case im.localHNS != nil:
		return im.localHNS.Stats().Cache
	case im.agentHNS != nil:
		return im.agentHNS.Stats().Cache
	default:
		return core.CacheStats{}
	}
}

// ---- The row-2 agent.

// AgentProgram identifies the client's-agent service.
const (
	AgentProgram uint32 = 300100
	AgentVersion uint32 = 1
)

var procAgentImport = hrpc.Procedure{
	Name: "AgentImport", ID: 1,
	Args: marshal.TStruct(marshal.TString, marshal.TUint32, marshal.TUint32,
		marshal.TString, marshal.TString),
	Ret: marshal.TStruct(marshal.TStruct(
		marshal.TString, marshal.TString, marshal.TString, marshal.TString,
		marshal.TString, marshal.TUint32, marshal.TUint32,
	)),
}

// newAgentServer builds the row-2 agent: a process that links the HNS and
// the NSMs and performs the whole Import on the client's behalf, so "the
// code to be modified with changes to the NSM is well contained".
func newAgentServer(w *world.World, h *core.HNS) (*hrpc.Server, error) {
	localNSMs := map[string]bindServiceFn{
		"june:" + world.PortBindingBind: w.BindBindingNSM.BindService,
		"june:" + world.PortBindingCH:   w.CHBindingNSM.BindService,
	}
	s := hrpc.NewServer("hcs-agent", AgentProgram, AgentVersion)
	s.Register(procAgentImport, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		service, _ := args.Items[0].AsString()
		program, _ := args.Items[1].AsU32()
		version, _ := args.Items[2].AsU32()
		context_, _ := args.Items[3].AsString()
		individual, _ := args.Items[4].AsString()
		name, err := names.New(context_, individual)
		if err != nil {
			return marshal.Value{}, err
		}
		nsmB, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
		if err != nil {
			return marshal.Value{}, err
		}
		impl, ok := localNSMs[nsmB.Addr]
		if !ok {
			return marshal.Value{}, fmt.Errorf("agent: NSM at %s not linked", nsmB.Addr)
		}
		b, err := impl(ctx, service, program, version, name)
		if err != nil {
			return marshal.Value{}, err
		}
		return marshal.StructV(qclass.BindingValue(b)), nil
	})
	return s, nil
}

func callAgent(ctx context.Context, c *hrpc.Client, agent hrpc.Binding,
	service string, program, version uint32, name names.Name) (hrpc.Binding, error) {
	ret, err := c.Call(ctx, agent, procAgentImport, marshal.StructV(
		marshal.Str(service), marshal.U32(program), marshal.U32(version),
		marshal.Str(name.Context), marshal.Str(name.Individual),
	))
	if err != nil {
		return hrpc.Binding{}, err
	}
	return qclass.ValueBinding(ret.Items[0])
}

// ---- Equation (1): the caching-vs-colocation break-even.

// BreakEven computes the paper's equation (1): the additional cache hit
// fraction q a *remote* HNS (or NSM) must achieve over a locally linked
// copy for remote location to win:
//
//	q > C(remote call) / (C(cache miss) - C(cache hit))
func BreakEven(remoteCall, miss, hit time.Duration) float64 {
	denom := miss - hit
	if denom <= 0 {
		return 1
	}
	return float64(remoteCall) / float64(denom)
}

// MeasureImport measures one Import's simulated cost.
func MeasureImport(ctx context.Context, im *Importer, service string, program, version uint32, hostName string) (time.Duration, error) {
	return simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := im.Import(ctx, service, program, version, hostName)
		return err
	})
}
