package colocate

import (
	"context"
	"testing"
	"time"

	"hns/internal/bind"
	"hns/internal/world"
)

func newWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func TestImportWorksInEveryArrangement(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	for _, arr := range Arrangements() {
		t.Run(arr.String(), func(t *testing.T) {
			im, err := New(w, arr, bind.CacheMarshalled)
			if err != nil {
				t.Fatal(err)
			}
			defer im.Close()
			w.FlushAllCaches()
			im.FlushHNSCache()

			b, err := im.Import(ctx, world.DesiredService,
				world.DesiredProgram, world.DesiredVersion, BindHostName())
			if err != nil {
				t.Fatal(err)
			}
			// The binding must actually work.
			ret, err := w.RPC.Call(ctx, b, world.EchoProc, world.EchoArgs("bound"))
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := ret.Items[0].AsString(); got != "bound" {
				t.Fatalf("echo = %q", got)
			}
		})
	}
}

func TestImportCourierServiceThroughSameClientCode(t *testing.T) {
	// The client's Import does not change when the name comes from the
	// Clearinghouse world: only the tag in the host name differs.
	w := newWorld(t)
	im, err := New(w, ClientHNSNSMs, bind.CacheMarshalled)
	if err != nil {
		t.Fatal(err)
	}
	defer im.Close()
	ctx := context.Background()
	b, err := im.Import(ctx, "fileserver", world.CourierProgram, world.CourierVersion,
		"ch!"+world.CourierService)
	if err != nil {
		t.Fatal(err)
	}
	if b.Control != "courier" {
		t.Fatalf("courier-world binding = %v", b)
	}
	if _, err := w.RPC.Call(ctx, b, world.EchoProc, world.EchoArgs("x")); err != nil {
		t.Fatal(err)
	}
}

func TestImportUnknownWorld(t *testing.T) {
	w := newWorld(t)
	im, err := New(w, ClientHNSNSMs, bind.CacheMarshalled)
	if err != nil {
		t.Fatal(err)
	}
	defer im.Close()
	_, err = im.Import(context.Background(), "svc", 1, 1, "vms!node42")
	if err == nil {
		t.Fatal("import from unregistered world succeeded")
	}
	if _, err := im.Import(context.Background(), "svc", 1, 1, "untagged-host"); err == nil {
		t.Fatal("untagged host name accepted")
	}
}

// TestTable31Shape verifies the relationships the paper draws from
// Table 3.1 — the orderings and magnitudes, not exact figures.
func TestTable31Shape(t *testing.T) {
	w := newWorld(t)
	table, err := RunTable31(context.Background(), w, bind.CacheMarshalled)
	if err != nil {
		t.Fatal(err)
	}
	for arr, cell := range table {
		// Columns strictly improve left to right.
		if !(cell.Miss > cell.HNSHit && cell.HNSHit > cell.BothHit) {
			t.Errorf("%s: columns not decreasing: %.0f/%.0f/%.0f",
				arr, ms(cell.Miss), ms(cell.HNSHit), ms(cell.BothHit))
		}
	}
	// Row 1 is the cheapest, row 5 the dearest, in every column.
	r1, r5 := table[ClientHNSNSMs], table[AllRemote]
	for _, arr := range Arrangements() {
		c := table[arr]
		if c.Miss < r1.Miss || c.HNSHit < r1.HNSHit || c.BothHit < r1.BothHit {
			t.Errorf("%s undercuts the all-local row", arr)
		}
		if c.Miss > r5.Miss || c.HNSHit > r5.HNSHit || c.BothHit > r5.BothHit {
			t.Errorf("%s exceeds the all-remote row", arr)
		}
	}
	// The paper's major lesson: "the potential benefit of caching far
	// exceeds that obtainable solely by colocation" — the best
	// colocation saves less than caching saves.
	colocationGain := r5.Miss - r1.Miss
	cachingGain := r1.Miss - r1.BothHit
	if cachingGain < 2*colocationGain {
		t.Errorf("caching gain %v not ≫ colocation gain %v", cachingGain, colocationGain)
	}
	// Middle rows (one remote call) sit within a tight band of each
	// other, as in the paper (509-517 for column A).
	mids := []Cell{table[AgentHNSNSMs], table[RemoteHNS], table[RemoteNSMs]}
	for _, m := range mids {
		for _, m2 := range mids {
			if d := m.Miss - m2.Miss; d > 30*time.Millisecond || d < -30*time.Millisecond {
				t.Errorf("one-remote-call rows differ by %v", d)
			}
		}
	}
}

// TestTable31Row1Anchors pins row 1 against the paper's 460/180/104.
func TestTable31Row1Anchors(t *testing.T) {
	w := newWorld(t)
	cell, err := RunRow(context.Background(), w, ClientHNSNSMs, bind.CacheMarshalled)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got time.Duration, want, tolPct float64) {
		t.Helper()
		g := ms(got)
		if g < want*(1-tolPct) || g > want*(1+tolPct) {
			t.Errorf("row 1 %s = %.1f ms, want %.0f ± %.0f%%", name, g, want, tolPct*100)
		}
	}
	check("miss", cell.Miss, 460, 0.18)
	check("hns-hit", cell.HNSHit, 180, 0.18)
	check("both-hit", cell.BothHit, 104, 0.18)
}

func TestBreakEven(t *testing.T) {
	// The paper's worked examples: making the HNS local vs remote with
	// C(remote call)=33, C(hit)=261, C(miss)=547 → q ≈ 11%; NSMs with
	// C(hit)=147, C(miss)=225 → q ≈ 42%.
	q := BreakEven(33*time.Millisecond, 547*time.Millisecond, 261*time.Millisecond)
	if q < 0.10 || q > 0.13 {
		t.Errorf("HNS break-even = %.3f, want ≈0.11", q)
	}
	q = BreakEven(33*time.Millisecond, 225*time.Millisecond, 147*time.Millisecond)
	if q < 0.40 || q > 0.45 {
		t.Errorf("NSM break-even = %.3f, want ≈0.42", q)
	}
	// Degenerate: no miss/hit gap → remote can never win.
	if q := BreakEven(time.Millisecond, time.Millisecond, time.Millisecond); q != 1 {
		t.Errorf("degenerate break-even = %f, want 1", q)
	}
}

func TestHNSCacheStatsPerArrangement(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	for _, arr := range []Arrangement{ClientHNSNSMs, AgentHNSNSMs, AllRemote} {
		im, err := New(w, arr, bind.CacheMarshalled)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := im.Import(ctx, world.DesiredService,
			world.DesiredProgram, world.DesiredVersion, BindHostName()); err != nil {
			t.Fatal(err)
		}
		if st := im.HNSCacheStats(); st.Hits+st.Misses == 0 {
			t.Errorf("%s: no cache activity recorded", arr)
		}
		im.Close()
	}
}

func TestArrangementStrings(t *testing.T) {
	want := map[Arrangement]string{
		ClientHNSNSMs: "[Client, HNS, NSMs]",
		AgentHNSNSMs:  "[Client] [HNS, NSMs]",
		RemoteHNS:     "[HNS] [Client, NSMs]",
		RemoteNSMs:    "[NSMs] [Client, HNS]",
		AllRemote:     "[Client] [HNS] [NSMs]",
	}
	for arr, s := range want {
		if arr.String() != s {
			t.Errorf("%d.String() = %q, want %q", arr, arr.String(), s)
		}
	}
	if Arrangement(0).String() == "" {
		t.Error("unknown arrangement has empty String")
	}
}

// TestTable31AllCellsNearPaper asserts every one of the fifteen published
// cells, not just row 1: the whole table reproduces within ±20% (most
// cells land within a few percent; see EXPERIMENTS.md).
func TestTable31AllCellsNearPaper(t *testing.T) {
	w := newWorld(t)
	table, err := RunTable31(context.Background(), w, bind.CacheMarshalled)
	if err != nil {
		t.Fatal(err)
	}
	for _, arr := range Arrangements() {
		cell := table[arr]
		paper := PaperTable31[arr]
		for i, got := range []time.Duration{cell.Miss, cell.HNSHit, cell.BothHit} {
			col := []string{"A miss", "B hns-hit", "C both-hit"}[i]
			g := ms(got)
			want := paper[i]
			if g < want*0.80 || g > want*1.20 {
				t.Errorf("%s %s = %.1f ms, paper %.0f (off by %+.0f%%)",
					arr, col, g, want, (g/want-1)*100)
			}
		}
	}
}
