package colocate

import (
	"context"
	"fmt"
	"time"

	"hns/internal/bind"
	"hns/internal/names"
	"hns/internal/world"
)

// Table 3.1 reproduction: "Performance of HRPC Binding for Various
// Colocation Arrangements (msec.)". Rows are colocation arrangements,
// columns are cache states:
//
//	A. Cache Miss          — HNS and NSM caches cold
//	B. HNS Cache Hit       — HNS cache warm, NSM cache cold
//	C. HNS and NSM Cache Hit — both warm
//
// The workload is the paper's: HRPC Import of a Sun RPC server named in
// BIND, measured at steady state (connections warm, caches controlled).

// Cell is one row of the table.
type Cell struct {
	Miss    time.Duration // column A
	HNSHit  time.Duration // column B
	BothHit time.Duration // column C
}

// PaperTable31 records the paper's published numbers (milliseconds) for
// side-by-side reporting.
var PaperTable31 = map[Arrangement][3]float64{
	ClientHNSNSMs: {460, 180, 104},
	AgentHNSNSMs:  {517, 235, 137},
	RemoteHNS:     {515, 232, 140},
	RemoteNSMs:    {509, 225, 147},
	AllRemote:     {547, 261, 181},
}

// BindHostName is the Table 3.1 import target in the client's tagged-host
// notation.
func BindHostName() string {
	return names.Must("bind", world.HostBind).String()
}

// RunRow measures one arrangement's three cells.
func RunRow(ctx context.Context, w *world.World, arr Arrangement, mode bind.CacheMode) (Cell, error) {
	im, err := New(w, arr, mode)
	if err != nil {
		return Cell{}, err
	}
	defer im.Close()

	importOnce := func() (time.Duration, error) {
		return MeasureImport(ctx, im, world.DesiredService,
			world.DesiredProgram, world.DesiredVersion, BindHostName())
	}

	// Warm transport connections without polluting the measurement, then
	// establish the cold-cache state.
	if _, err := importOnce(); err != nil {
		return Cell{}, err
	}
	im.FlushHNSCache()
	im.FlushNSMCache()

	var cell Cell
	// Column A: cold everywhere.
	if cell.Miss, err = importOnce(); err != nil {
		return Cell{}, err
	}
	// That run warmed both sides; recreate "HNS hit, NSM miss".
	im.FlushNSMCache()
	if cell.HNSHit, err = importOnce(); err != nil {
		return Cell{}, err
	}
	// Both warm now.
	if cell.BothHit, err = importOnce(); err != nil {
		return Cell{}, err
	}
	return cell, nil
}

// RunTable31 measures all five rows.
func RunTable31(ctx context.Context, w *world.World, mode bind.CacheMode) (map[Arrangement]Cell, error) {
	out := make(map[Arrangement]Cell, 5)
	for _, arr := range Arrangements() {
		cell, err := RunRow(ctx, w, arr, mode)
		if err != nil {
			return nil, fmt.Errorf("row %s: %w", arr, err)
		}
		out[arr] = cell
	}
	return out, nil
}
