package colocate

import "math/rand"

// Site is one site of a simulated fleet: a client population sharing one
// site-level HNS ("hnsd") deployed under one of Table 3.1's colocation
// arrangements. The fleet engine (internal/workload) draws a topology and
// runs per-site populations against it, so hit ratios are measured over
// the same placement vocabulary the paper's Table 3.1 uses.
type Site struct {
	// Index identifies the site (0-based).
	Index int
	// Arrangement is the site's colocation row: it decides whether the
	// site HNS is linked into the clients' process or reached by a
	// remote call.
	Arrangement Arrangement
	// Clients is this site's population share.
	Clients int
}

// HNSIsRemote reports whether this arrangement places the HNS across a
// process boundary from the client — rows 2, 3, and 5, where every HNS
// access pays a remote call.
func (a Arrangement) HNSIsRemote() bool {
	switch a {
	case AgentHNSNSMs, RemoteHNS, AllRemote:
		return true
	default:
		return false
	}
}

// Topology draws a deterministic fleet topology: `clients` clients spread
// over `sites` sites with seeded, skewed population shares (real fleets
// have big campuses and small field offices), each site assigned one of
// the five Table 3.1 arrangements. The same (sites, clients, seed) triple
// always yields the same topology; every site gets at least one client
// when clients >= sites.
func Topology(sites, clients int, seed int64) []Site {
	if sites <= 0 || clients <= 0 {
		return nil
	}
	if sites > clients {
		sites = clients
	}
	rng := rand.New(rand.NewSource(seed ^ 0x51735173))
	arrs := Arrangements()

	out := make([]Site, sites)
	weights := make([]float64, sites)
	var total float64
	for i := range out {
		out[i] = Site{Index: i, Arrangement: arrs[rng.Intn(len(arrs))], Clients: 1}
		// 0.25 floor keeps every site a real population; the random part
		// skews shares ~5:1 between the largest and smallest sites.
		weights[i] = 0.25 + rng.Float64()
		total += weights[i]
	}
	// One client per site is already allocated; distribute the rest by
	// weight, then hand out rounding leftovers in site order.
	remaining := clients - sites
	assigned := 0
	for i := range out {
		share := int(float64(remaining) * weights[i] / total)
		out[i].Clients += share
		assigned += share
	}
	for i := 0; assigned < remaining; i = (i + 1) % sites {
		out[i].Clients++
		assigned++
	}
	return out
}
