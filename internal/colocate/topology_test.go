package colocate

import "testing"

func TestTopologyDeterministicAndExact(t *testing.T) {
	a := Topology(8, 1000, 42)
	b := Topology(8, 1000, 42)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("site counts %d/%d, want 8", len(a), len(b))
	}
	total := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("site %d differs between identical draws: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Clients < 1 {
			t.Fatalf("site %d has %d clients, want >= 1", i, a[i].Clients)
		}
		total += a[i].Clients
	}
	if total != 1000 {
		t.Fatalf("topology allocates %d clients, want 1000", total)
	}
}

func TestTopologySeedsDiffer(t *testing.T) {
	a := Topology(8, 1000, 1)
	b := Topology(8, 1000, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical topologies")
	}
}

func TestTopologyMoreSitesThanClients(t *testing.T) {
	sites := Topology(10, 3, 7)
	if len(sites) != 3 {
		t.Fatalf("got %d sites for 3 clients, want 3", len(sites))
	}
	for _, s := range sites {
		if s.Clients != 1 {
			t.Fatalf("site %d has %d clients, want 1", s.Index, s.Clients)
		}
	}
	if Topology(0, 5, 1) != nil || Topology(5, 0, 1) != nil {
		t.Fatal("degenerate topologies should be nil")
	}
}

func TestHNSIsRemote(t *testing.T) {
	want := map[Arrangement]bool{
		ClientHNSNSMs: false,
		AgentHNSNSMs:  true,
		RemoteHNS:     true,
		RemoteNSMs:    false,
		AllRemote:     true,
	}
	for arr, remote := range want {
		if arr.HNSIsRemote() != remote {
			t.Errorf("%v HNSIsRemote = %v, want %v", arr, arr.HNSIsRemote(), remote)
		}
	}
}
