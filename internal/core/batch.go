package core

import (
	"context"
	"errors"
	"fmt"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/names"
	"hns/internal/qclass"
)

// Batched FindNSM: one frame resolves many names, with per-name status —
// the core-interface counterpart of the BIND layer's batch query. A
// client that binds to many services at startup (or a gateway fronting a
// fleet of them) pays one frame exchange instead of one per name.

// MaxFindBatch bounds one FindNSMBatch call.
const MaxFindBatch = 64

// NameQuery is one (name, query class) resolution request in a batch.
type NameQuery struct {
	Name       names.Name
	QueryClass string
}

// FindResult is the per-name outcome: a binding, or that name's error.
type FindResult struct {
	Binding hrpc.Binding
	Err     error
}

// procFindNSMBatch is the batch resolution procedure.
//
//	args: {[{context, individual, queryClass}]}
//	ret:  {[{errText, binding}]}  — errText empty on success, and then
//	      the binding slot is meaningful; positionally matched to args.
var procFindNSMBatch = hrpc.Procedure{
	Name: "FindNSMBatch", ID: ProcFindNSMBatchID,
	Args: marshal.TStruct(marshal.TList(marshal.TStruct(
		marshal.TString, marshal.TString, marshal.TString,
	))),
	Ret: marshal.TStruct(marshal.TList(marshal.TStruct(
		marshal.TString,
		marshal.TStruct(
			marshal.TString, marshal.TString, marshal.TString, marshal.TString,
			marshal.TString, marshal.TUint32, marshal.TUint32,
		),
	))),
}

// FindNSMBatch resolves up to MaxFindBatch queries against the local
// library, one result per query. Each name resolves (and is charged)
// independently; a failure fills its own slot and the rest proceed.
func (h *HNS) FindNSMBatch(ctx context.Context, qs []NameQuery) ([]FindResult, error) {
	if len(qs) > MaxFindBatch {
		return nil, fmt.Errorf("hns: batch of %d exceeds limit %d", len(qs), MaxFindBatch)
	}
	out := make([]FindResult, len(qs))
	for i, q := range qs {
		b, err := h.FindNSM(ctx, q.Name, q.QueryClass)
		out[i] = FindResult{Binding: b, Err: err}
	}
	return out, nil
}

// registerFindBatch installs the batch procedure on an HNS server over
// any Finder (batch-capable finders batch through; others loop).
func registerFindBatch(s *hrpc.Server, f Finder) {
	s.Register(procFindNSMBatch, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		qs := args.Items[0]
		if qs.Len() > MaxFindBatch {
			return marshal.Value{}, fmt.Errorf("hns: batch of %d exceeds limit %d", qs.Len(), MaxFindBatch)
		}
		// Per-name status: each slot carries its own error text (the
		// reply-level error is reserved for malformed batches). Slots
		// whose names parse go to the Finder together — FindAll batches
		// them through a batch-capable backend in one upstream call,
		// which is what lets a gateway amortize its forwarding too.
		n := qs.Len()
		errTexts := make([]string, n)
		bindings := make([]hrpc.Binding, n)
		queries := make([]NameQuery, 0, n)
		slots := make([]int, 0, n)
		for i, it := range qs.Items {
			cx, err := it.Items[0].AsString()
			if err != nil {
				return marshal.Value{}, err
			}
			individual, err := it.Items[1].AsString()
			if err != nil {
				return marshal.Value{}, err
			}
			qc, err := it.Items[2].AsString()
			if err != nil {
				return marshal.Value{}, err
			}
			nm, err := names.New(cx, individual)
			if err != nil {
				errTexts[i] = err.Error()
				continue
			}
			queries = append(queries, NameQuery{Name: nm, QueryClass: qc})
			slots = append(slots, i)
		}
		res, err := FindAll(ctx, f, queries)
		if err != nil {
			return marshal.Value{}, err
		}
		for j, r := range res {
			if r.Err != nil {
				errTexts[slots[j]] = r.Err.Error()
			} else {
				bindings[slots[j]] = r.Binding
			}
		}
		results := make([]marshal.Value, 0, n)
		for i := 0; i < n; i++ {
			results = append(results, marshal.StructV(
				marshal.Str(errTexts[i]), qclass.BindingValue(bindings[i]),
			))
		}
		return marshal.StructV(marshal.ListV(results...)), nil
	})
}

// batchFinder is the optional batched face of a Finder.
type batchFinder interface {
	FindNSMBatch(ctx context.Context, qs []NameQuery) ([]FindResult, error)
}

// FindAll resolves qs against any Finder, batching when f supports it
// and falling back to sequential FindNSM calls otherwise.
func FindAll(ctx context.Context, f Finder, qs []NameQuery) ([]FindResult, error) {
	if bf, ok := f.(batchFinder); ok {
		return bf.FindNSMBatch(ctx, qs)
	}
	out := make([]FindResult, len(qs))
	for i, q := range qs {
		b, err := f.FindNSM(ctx, q.Name, q.QueryClass)
		out[i] = FindResult{Binding: b, Err: err}
	}
	return out, nil
}

// FindNSMBatch resolves a batch over the wire in one call. Against an
// old server without the batch procedure it downgrades to per-name
// FindNSM calls and latches the downgrade, so only the first batch pays
// the probe.
func (r *RemoteHNS) FindNSMBatch(ctx context.Context, qs []NameQuery) ([]FindResult, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if len(qs) > MaxFindBatch {
		return nil, fmt.Errorf("hns: batch of %d exceeds limit %d", len(qs), MaxFindBatch)
	}
	if !r.noBatch.Load() {
		res, err := r.findBatchWire(ctx, qs)
		if err == nil {
			return res, nil
		}
		if !hrpc.ProcUnavailable(err) {
			return nil, err
		}
		r.noBatch.Store(true)
	}
	out := make([]FindResult, len(qs))
	for i, q := range qs {
		b, err := r.FindNSM(ctx, q.Name, q.QueryClass)
		out[i] = FindResult{Binding: b, Err: err}
	}
	return out, nil
}

func (r *RemoteHNS) findBatchWire(ctx context.Context, qs []NameQuery) ([]FindResult, error) {
	items := make([]marshal.Value, 0, len(qs))
	for _, q := range qs {
		items = append(items, marshal.StructV(
			marshal.Str(q.Name.Context), marshal.Str(q.Name.Individual), marshal.Str(q.QueryClass),
		))
	}
	ret, err := r.c.Call(ctx, r.b, procFindNSMBatch, marshal.StructV(marshal.ListV(items...)))
	if err != nil {
		return nil, err
	}
	return decodeFindResults(ret, len(qs))
}

// decodeFindResults validates a batch reply. Malformed shapes and a
// result count that disagrees with the question count are errors, never
// panics: the reply comes from a peer possibly running other software.
func decodeFindResults(ret marshal.Value, n int) ([]FindResult, error) {
	if ret.Kind != marshal.KindStruct || ret.Len() != 1 {
		return nil, errors.New("hns: batch reply is not a 1-field struct")
	}
	list := ret.Items[0]
	if list.Kind != marshal.KindList {
		return nil, errors.New("hns: batch reply body is not a list")
	}
	if list.Len() != n {
		return nil, fmt.Errorf("hns: batch reply has %d results for %d queries", list.Len(), n)
	}
	out := make([]FindResult, n)
	for i, it := range list.Items {
		if it.Kind != marshal.KindStruct || it.Len() != 2 {
			return nil, fmt.Errorf("hns: batch result %d is not an (err, binding) pair", i)
		}
		errText, err := it.Items[0].AsString()
		if err != nil {
			return nil, fmt.Errorf("hns: batch result %d: %v", i, err)
		}
		if errText != "" {
			out[i] = FindResult{Err: &hrpc.RemoteFault{Proc: procFindNSMBatch.Name, Msg: errText}}
			continue
		}
		b, err := qclass.ValueBinding(it.Items[1])
		if err != nil {
			return nil, fmt.Errorf("hns: batch result %d: %v", i, err)
		}
		out[i] = FindResult{Binding: b}
	}
	return out, nil
}
