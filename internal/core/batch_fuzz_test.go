package core

import (
	"testing"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/qclass"
)

// FuzzFindBatchDecode hammers the FindNSMBatch reply decoder with
// arbitrary bytes: whatever a peer sends, decode must return an error or
// a result — never panic, never index out of range.
func FuzzFindBatchDecode(f *testing.F) {
	rep, err := marshal.Lookup("xdr")
	if err != nil {
		f.Fatal(err)
	}
	// Seed with a well-formed two-slot reply (one success, one per-name
	// error) and some near-misses.
	good := marshal.StructV(marshal.ListV(
		marshal.StructV(marshal.Str(""), qclass.BindingValue(hrpc.Binding{
			Host: "nsm-host", Addr: "nsm:1", Transport: "udp",
			DataRep: "xdr", Control: "sunrpc", Program: 200100, Version: 10,
		})),
		marshal.StructV(marshal.Str("no such context"), qclass.BindingValue(hrpc.Binding{})),
	))
	if enc, err := rep.Append(nil, good, procFindNSMBatch.Ret); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		ret, err := marshal.Unmarshal(rep, data, procFindNSMBatch.Ret)
		if err != nil {
			return // rejected at the wire layer: fine
		}
		// Shape-valid bytes may still disagree with the question count or
		// carry a mangled binding; decode must fail soft.
		res, err := decodeFindResults(ret, 2)
		if err == nil && len(res) != 2 {
			t.Fatalf("decode returned %d results for 2 queries without error", len(res))
		}
	})
}
