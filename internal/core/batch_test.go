package core_test

import (
	"context"
	"errors"
	"testing"

	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/world"
)

func batchQueries() []core.NameQuery {
	return []core.NameQuery{
		{Name: world.DesiredServiceName(), QueryClass: qclass.HRPCBinding},
		{Name: names.Must("ghost", "x"), QueryClass: qclass.HRPCBinding}, // failing slot
		{Name: world.CourierServiceName(), QueryClass: qclass.HRPCBinding},
	}
}

func TestLocalFindNSMBatch(t *testing.T) {
	w := newWorld(t, world.Config{})
	res, err := w.HNS.FindNSMBatch(context.Background(), batchQueries())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Err != nil || res[0].Binding.Host != world.HostNSM {
		t.Fatalf("slot 0 = %+v", res[0])
	}
	if res[1].Err == nil {
		t.Fatal("ghost context resolved")
	}
	// Partial failure does not poison the batch.
	if res[2].Err != nil || res[2].Binding.Addr != "june:"+world.PortBindingCH {
		t.Fatalf("slot 2 = %+v", res[2])
	}
}

func TestRemoteFindNSMBatch(t *testing.T) {
	w := newWorld(t, world.Config{})
	ln, hb, err := core.ServeHNS(w.Net, w.HNS, "june", "june:hns")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	remote := core.NewRemoteHNS(w.RPC, hb)

	ctx := context.Background()
	res, err := remote.FindNSMBatch(ctx, batchQueries())
	if err != nil {
		t.Fatal(err)
	}
	local, err := w.HNS.FindNSMBatch(ctx, batchQueries())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if (res[i].Err == nil) != (local[i].Err == nil) {
			t.Fatalf("slot %d: remote err %v, local err %v", i, res[i].Err, local[i].Err)
		}
		if res[i].Err == nil && res[i].Binding != local[i].Binding {
			t.Fatalf("slot %d: remote %v != local %v", i, res[i].Binding, local[i].Binding)
		}
	}
	// The failing slot is a remote fault naming the cause, not a dead call.
	var rf *hrpc.RemoteFault
	if !errors.As(res[1].Err, &rf) {
		t.Fatalf("slot 1 err = %v, want RemoteFault", res[1].Err)
	}
}

// TestRemoteFindNSMBatchOldServer is the negotiation test: an HNS
// server without the batch procedure still serves batches via per-name
// FindNSM fallback, and the downgrade is latched after one probe.
func TestRemoteFindNSMBatchOldServer(t *testing.T) {
	w := newWorld(t, world.Config{})
	// An old peer: the HNS program exactly as it shipped before this
	// extension — FindNSM only.
	old := hrpc.NewServer("hns-old@june", core.HNSProgram, core.HNSVersion)
	bindingT := marshal.TStruct(
		marshal.TString, marshal.TString, marshal.TString, marshal.TString,
		marshal.TString, marshal.TUint32, marshal.TUint32,
	)
	old.Register(hrpc.Procedure{
		Name: "FindNSM", ID: 1,
		Args: marshal.TStruct(marshal.TString, marshal.TString, marshal.TString),
		Ret:  marshal.TStruct(bindingT),
	}, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		cx, _ := args.Items[0].AsString()
		individual, _ := args.Items[1].AsString()
		qc, _ := args.Items[2].AsString()
		n, err := names.New(cx, individual)
		if err != nil {
			return marshal.Value{}, err
		}
		b, err := w.HNS.FindNSM(ctx, n, qc)
		if err != nil {
			return marshal.Value{}, err
		}
		return marshal.StructV(qclass.BindingValue(b)), nil
	})
	ln, hb, err := hrpc.Serve(w.Net, old, hrpc.SuiteRaw, "june", "june:hns-old")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	remote := core.NewRemoteHNS(w.RPC, hb)
	ctx := context.Background()
	res, err := remote.FindNSMBatch(ctx, batchQueries())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Binding.Host != world.HostNSM {
		t.Fatalf("slot 0 via fallback = %+v", res[0])
	}
	if res[1].Err == nil {
		t.Fatal("ghost context resolved via fallback")
	}
	// A second batch must work too (now going straight to singles).
	if _, err := remote.FindNSMBatch(ctx, batchQueries()); err != nil {
		t.Fatal(err)
	}
}

// TestFindAll covers the generic helper: batch-capable finders batch,
// plain finders loop.
func TestFindAll(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	res, err := core.FindAll(ctx, w.HNS, batchQueries())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[1].Err == nil || res[2].Err != nil {
		t.Fatalf("FindAll results: %+v", res)
	}

	res2, err := core.FindAll(ctx, plainFinder{w.HNS}, batchQueries())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if (res[i].Err == nil) != (res2[i].Err == nil) {
			t.Fatalf("slot %d differs between batch and loop paths", i)
		}
		if res[i].Err == nil && res[i].Binding != res2[i].Binding {
			t.Fatalf("slot %d bindings differ: %v vs %v", i, res[i].Binding, res2[i].Binding)
		}
	}
}

// plainFinder hides the batch method, forcing FindAll's loop path.
type plainFinder struct{ f core.Finder }

func (p plainFinder) FindNSM(ctx context.Context, n names.Name, qc string) (hrpc.Binding, error) {
	return p.f.FindNSM(ctx, n, qc)
}

// TestRemoteBatchCheaperThanSingles pins the amortization on the core
// interface in simulated time (warm caches, so frame cost dominates).
func TestRemoteBatchCheaperThanSingles(t *testing.T) {
	w := newWorld(t, world.Config{})
	ln, hb, err := core.ServeHNS(w.Net, w.HNS, "june", "june:hns")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	remote := core.NewRemoteHNS(w.RPC, hb)

	qs := make([]core.NameQuery, 8)
	for i := range qs {
		qs[i] = core.NameQuery{Name: world.DesiredServiceName(), QueryClass: qclass.HRPCBinding}
	}
	// Warm every cache first so both arms measure pure call cost.
	if _, err := remote.FindNSMBatch(context.Background(), qs[:1]); err != nil {
		t.Fatal(err)
	}
	batchCost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := remote.FindNSMBatch(ctx, qs)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	singleCost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		for _, q := range qs {
			if _, err := remote.FindNSM(ctx, q.Name, q.QueryClass); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batchCost >= singleCost {
		t.Fatalf("batch of %d cost %v, singles cost %v; batching should amortize", len(qs), batchCost, singleCost)
	}
}
