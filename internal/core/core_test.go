package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/world"
)

func newWorld(t *testing.T, cfg world.Config) *world.World {
	t.Helper()
	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func TestFindNSMBindWorld(t *testing.T) {
	w := newWorld(t, world.Config{})
	b, err := w.HNS.FindNSM(context.Background(), world.DesiredServiceName(), qclass.HRPCBinding)
	if err != nil {
		t.Fatal(err)
	}
	if b.Host != world.HostNSM {
		t.Fatalf("NSM host = %q, want %q", b.Host, world.HostNSM)
	}
	if b.Addr != "june:"+world.PortBindingBind {
		t.Fatalf("NSM addr = %q", b.Addr)
	}
	if b.Program != qclass.ProgHRPCBinding || b.Version != qclass.NSMVersion {
		t.Fatalf("NSM program = %d.%d", b.Program, b.Version)
	}
	if b.Control != "sunrpc" {
		t.Fatalf("BIND-world NSM control = %q, want sunrpc", b.Control)
	}
}

func TestFindNSMCHWorld(t *testing.T) {
	w := newWorld(t, world.Config{})
	b, err := w.HNS.FindNSM(context.Background(), world.CourierServiceName(), qclass.HRPCBinding)
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr != "june:"+world.PortBindingCH {
		t.Fatalf("NSM addr = %q", b.Addr)
	}
	if b.Control != "courier" {
		t.Fatalf("CH-world NSM control = %q, want courier", b.Control)
	}
}

// TestFindNSMIdenticalInterface verifies Figure 2.1's property: two
// queries in different worlds yield bindings with the same program and
// procedure interface, so the client needs no knowledge of which name
// service answers.
func TestFindNSMIdenticalInterface(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	b1, err := w.HNS.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w.HNS.FindNSM(ctx, world.CourierServiceName(), qclass.HRPCBinding)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Program != b2.Program || b1.Version != b2.Version {
		t.Fatalf("interfaces differ: %v vs %v", b1, b2)
	}
	if b1.Addr == b2.Addr {
		t.Fatal("different worlds resolved to the same NSM")
	}
}

// TestFindNSMSixMappings verifies the paper's structural claim: a
// cache-cold FindNSM performs exactly six remote data mappings; a warm one
// performs none.
func TestFindNSMSixMappings(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	name := world.DesiredServiceName()

	if _, err := w.HNS.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	st := w.HNS.Stats()
	// Five of the six mappings are meta-cache misses (mapping 6 is the
	// hostaddr NSM's underlying lookup, counted in its own cache).
	if st.Cache.Misses != 5 {
		t.Fatalf("meta-cache misses = %d, want 5", st.Cache.Misses)
	}
	if hs := w.BindHostNSM.CacheStats(); hs.Misses != 1 {
		t.Fatalf("hostaddr NSM misses = %d, want 1", hs.Misses)
	}

	// Second call: all six served from caches.
	if _, err := w.HNS.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	st2 := w.HNS.Stats()
	if st2.Cache.Misses != st.Cache.Misses {
		t.Fatalf("warm FindNSM missed the cache: %+v", st2.Cache)
	}
	if st2.Cache.Hits != 5 {
		t.Fatalf("warm FindNSM hits = %d, want 5", st2.Cache.Hits)
	}
}

// TestFindNSMCostAnchors pins the headline HNS numbers: ≈460 ms cache-cold
// (the paper's initial FindNSM measurement) shrinking to ≈88 ms with the
// (marshalled-entry) cache.
func TestFindNSMCostAnchors(t *testing.T) {
	w := newWorld(t, world.Config{CacheMode: bind.CacheMarshalled})
	ctx := context.Background()
	name := world.DesiredServiceName()

	missCost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := w.HNS.FindNSM(ctx, name, qclass.HRPCBinding)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	hitCost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := w.HNS.FindNSM(ctx, name, qclass.HRPCBinding)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ms(missCost); got < 300 || got > 480 {
		t.Errorf("FindNSM miss = %.1f ms, want the paper's few-hundred-ms scale (460)", got)
	}
	if got := ms(hitCost); got < 70 || got > 110 {
		t.Errorf("FindNSM marshalled-cache hit = %.1f ms, want ≈88 ms", got)
	}
	if missCost < 4*hitCost {
		t.Errorf("caching speedup %0.1fx below the paper's ≈5x", float64(missCost)/float64(hitCost))
	}
}

func TestFindNSMDemarshalledCacheFaster(t *testing.T) {
	// The Table 3.2 lesson applied to FindNSM: demarshalled meta-cache
	// entries make warm FindNSM dramatically cheaper than 88 ms.
	w := newWorld(t, world.Config{CacheMode: bind.CacheDemarshalled})
	ctx := context.Background()
	name := world.DesiredServiceName()
	if _, err := w.HNS.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	hitCost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := w.HNS.FindNSM(ctx, name, qclass.HRPCBinding)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ms(hitCost); got > 15 {
		t.Fatalf("demarshalled warm FindNSM = %.1f ms, want ≪ 88 ms", got)
	}
}

func TestFindNSMErrors(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()

	_, err := w.HNS.FindNSM(ctx, names.Must("no-such-context", "x"), qclass.HRPCBinding)
	if !errors.Is(err, core.ErrNoSuchContext) {
		t.Fatalf("unknown context: %v", err)
	}
	_, err = w.HNS.FindNSM(ctx, world.DesiredServiceName(), "no-such-class")
	if !errors.Is(err, core.ErrNoSuchNSM) {
		t.Fatalf("unknown query class: %v", err)
	}
	_, err = w.HNS.FindNSM(ctx, names.Name{}, qclass.HRPCBinding)
	if err == nil {
		t.Fatal("zero name accepted")
	}
}

func TestRegisterAndUnregister(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	h := w.HNS

	// A new system type arrives: register its service, context, and NSM.
	if err := h.RegisterNameService(ctx, "uniflex-ns", "uniflex"); err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterContext(ctx, "hrpcbinding-uniflex", "uniflex-ns"); err != nil {
		t.Fatal(err)
	}
	info := core.NSMInfo{
		Name: "binding-uniflex-1", NameService: "uniflex-ns",
		QueryClass: qclass.HRPCBinding,
		Host:       world.HostNSM, HostContext: world.CtxHostB,
		Port: world.PortBindingBind, Suite: hrpc.SuiteRaw,
	}
	if err := h.RegisterNSM(ctx, info); err != nil {
		t.Fatal(err)
	}
	b, err := h.FindNSM(ctx, names.Must("hrpcbinding-uniflex", "anything"), qclass.HRPCBinding)
	if err != nil {
		t.Fatal(err)
	}
	if b.Transport != "tcp" || b.Control != "raw" {
		t.Fatalf("uniflex NSM binding = %v", b)
	}

	// Unregister and confirm it is gone.
	if err := h.UnregisterNSM(ctx, "binding-uniflex-1", "uniflex-ns", qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	if _, err := h.FindNSM(ctx, names.Must("hrpcbinding-uniflex", "x"), qclass.HRPCBinding); !errors.Is(err, core.ErrNoSuchNSM) {
		t.Fatalf("after unregister: %v", err)
	}
	if err := h.UnregisterContext(ctx, "hrpcbinding-uniflex"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.FindNSM(ctx, names.Must("hrpcbinding-uniflex", "x"), qclass.HRPCBinding); !errors.Is(err, core.ErrNoSuchContext) {
		t.Fatalf("after context unregister: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	if err := w.HNS.RegisterNSM(ctx, core.NSMInfo{Name: "incomplete"}); err == nil {
		t.Fatal("incomplete NSM registration accepted")
	}
	if err := w.HNS.RegisterContext(ctx, "bad context!", "ns"); err == nil {
		t.Fatal("bad context name accepted")
	}
	if err := w.HNS.RegisterNameService(ctx, "", ""); err == nil {
		t.Fatal("empty name service accepted")
	}
}

func TestListRegistrations(t *testing.T) {
	w := newWorld(t, world.Config{})
	inv, err := w.HNS.ListRegistrations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.NameServices) != 2 {
		t.Fatalf("name services = %v", inv.NameServices)
	}
	if inv.Contexts[world.CtxBind] != world.NSBind {
		t.Fatalf("contexts = %v", inv.Contexts)
	}
	if inv.NSMs[qclass.HRPCBinding+"@"+world.NSBind] != "binding-bind-1" {
		t.Fatalf("NSMs = %v", inv.NSMs)
	}
}

// TestPreload pins the preloading experiment: ~2 KB of meta-information,
// ~390 ms, and guaranteed cache hits afterwards.
func TestPreload(t *testing.T) {
	w := newWorld(t, world.Config{CacheMode: bind.CacheMarshalled})
	ctx := context.Background()

	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		rep, err := w.HNS.Preload(ctx)
		if err != nil {
			return err
		}
		if rep.Records == 0 {
			t.Error("preload transferred no records")
		}
		// "the relatively small amount of information (currently about
		// 2KB)" — ours must be the same order of magnitude.
		if rep.Bytes < 500 || rep.Bytes > 8000 {
			t.Errorf("preload size = %d bytes, want ~2 KB scale", rep.Bytes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ms(cost); got < 250 || got > 520 {
		t.Errorf("preload cost = %.1f ms, want ≈390 ms", got)
	}

	// After preloading, FindNSM must be all cache hits.
	st0 := w.HNS.Stats()
	if _, err := w.HNS.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	st1 := w.HNS.Stats()
	if st1.Cache.Misses != st0.Cache.Misses {
		t.Fatalf("FindNSM missed after preload: %+v", st1.Cache)
	}
}

func TestFreshSerialProbe(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	rep, err := w.HNS.Preload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := w.HNS.Fresh(ctx, rep.Serial)
	if err != nil || !fresh {
		t.Fatalf("Fresh = %v, %v", fresh, err)
	}
	// A registration bumps the serial.
	if err := w.HNS.RegisterNameService(ctx, "another-ns", "test"); err != nil {
		t.Fatal(err)
	}
	fresh, err = w.HNS.Fresh(ctx, rep.Serial)
	if err != nil || fresh {
		t.Fatalf("Fresh after update = %v, %v", fresh, err)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := simtime.NewFakeClock(time.Now())
	w := newWorld(t, world.Config{Clock: clk})
	ctx := context.Background()
	name := world.DesiredServiceName()
	if _, err := w.HNS.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	// Meta TTL is 600 s; advance beyond it.
	clk.Advance(time.Duration(core.DefaultMetaTTL+10) * time.Second)
	m0 := w.HNS.Stats().Cache.Misses
	if _, err := w.HNS.FindNSM(ctx, name, qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	if got := w.HNS.Stats().Cache.Misses; got <= m0 {
		t.Fatal("expired meta entries served from cache")
	}
}

func TestRemoteHNS(t *testing.T) {
	w := newWorld(t, world.Config{})
	ln, hb, err := core.ServeHNS(w.Net, w.HNS, "june", "june:hns")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	remote := core.NewRemoteHNS(w.RPC, hb)

	ctx := context.Background()
	bLocal, err := w.HNS.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
	if err != nil {
		t.Fatal(err)
	}
	bRemote, err := remote.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
	if err != nil {
		t.Fatal(err)
	}
	if bLocal != bRemote {
		t.Fatalf("remote FindNSM %v != local %v", bRemote, bLocal)
	}
	// Remote errors surface as faults.
	if _, err := remote.FindNSM(ctx, names.Must("ghost", "x"), qclass.HRPCBinding); err == nil {
		t.Fatal("remote FindNSM for ghost context succeeded")
	}
}

// TestRemoteHostAddrFallback exercises the generalisation beyond the
// prototype: an NSM whose host is named in a service with no linked
// HostAddress resolver is still resolvable by calling that service's
// HostAddress NSM remotely.
func TestRemoteHostAddrFallback(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	// Register an NSM that lives on the Xerox D-machine, whose host name
	// is a Clearinghouse name.
	err := w.HNS.RegisterNSM(ctx, core.NSMInfo{
		Name: "mail-ch-xerox", NameService: "uniflex2-ns", QueryClass: qclass.MailRoute,
		Host: world.HostXerox, HostContext: world.CtxHostCH,
		Port: "nsm-mail", Suite: hrpc.SuiteCourier,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.HNS.RegisterNameService(ctx, "uniflex2-ns", "test"); err != nil {
		t.Fatal(err)
	}
	if err := w.HNS.RegisterContext(ctx, "mail-uniflex2", "uniflex2-ns"); err != nil {
		t.Fatal(err)
	}

	// An HNS instance with only remote HostAddress access for the CH
	// world: no linked CH resolver, but RPC fallback available.
	h := w.NewHNS(core.Config{})
	h2 := core.New(w.MetaHRPCClient(), w.Model, core.Config{MetaZone: world.MetaZone, RPC: w.RPC})
	h2.LinkHostResolver(world.NSBind, w.BindHostNSM) // bind linked, CH not
	_ = h

	b, err := h2.FindNSM(ctx, names.Must("mail-uniflex2", "whoever"), qclass.MailRoute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.Addr, "xerox:") {
		t.Fatalf("fallback resolution addr = %q, want on xerox", b.Addr)
	}

	// Without RPC fallback the same resolution must fail cleanly.
	h3 := core.New(w.MetaHRPCClient(), w.Model, core.Config{MetaZone: world.MetaZone})
	h3.LinkHostResolver(world.NSBind, w.BindHostNSM)
	if _, err := h3.FindNSM(ctx, names.Must("mail-uniflex2", "x"), qclass.MailRoute); err == nil {
		t.Fatal("resolution without linked resolver or RPC succeeded")
	}
}

func TestStatsCounters(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := w.HNS.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
			t.Fatal(err)
		}
	}
	st := w.HNS.Stats()
	if st.FindNSMCalls != 3 {
		t.Fatalf("FindNSMCalls = %d", st.FindNSMCalls)
	}
	if st.Cache.HitRate <= 0.5 {
		t.Fatalf("hit rate = %f after warm calls", st.Cache.HitRate)
	}
}

// TestSubscribeMetaInvalidatesRemoteCache is the tentpole scenario: a
// second HNS instance (a "remote" cache that would otherwise converge
// only by TTL) subscribes to the meta zone; an update made elsewhere
// must evict its cached entries via push, long before any TTL expires.
func TestSubscribeMetaInvalidatesRemoteCache(t *testing.T) {
	w := newWorld(t, world.Config{})
	w.MetaServer.Zone(world.MetaZone).EnableDiffLog(256)
	w.MetaServer.EnablePush(0)

	h2 := w.NewHNS(core.Config{MetaZone: world.MetaZone})
	if !h2.SubscribeMeta() {
		t.Fatal("SubscribeMeta refused with push enabled")
	}
	defer h2.UnsubscribeMeta()
	sub := h2.MetaSubscription()
	if sub == nil {
		t.Fatal("no subscription exposed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !sub.Active() {
		if time.Now().After(deadline) {
			t.Fatal("subscription never became active")
		}
		time.Sleep(time.Millisecond)
	}

	// Warm h2's meta cache (default meta TTL is 600s — far beyond this
	// test's lifetime, so only push can invalidate it in time).
	ctx := context.Background()
	if _, err := h2.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}

	// The registration authority (a DIFFERENT HNS instance) withdraws the
	// NSM. h2 must observe the withdrawal via push, not TTL.
	if err := w.HNS.UnregisterNSM(ctx, "binding-bind-1", world.NSBind, qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, err := h2.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
		if errors.Is(err, core.ErrNoSuchNSM) {
			break // push invalidation landed
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote cache still serves the withdrawn NSM (last err: %v)", err)
		}
		time.Sleep(time.Millisecond)
	}

	// A client that cannot subscribe (the optional interface is absent)
	// reports so and keeps working on TTL.
	plain := core.New(noSubMeta{w.MetaHRPCClient()}, w.Model, core.Config{MetaZone: world.MetaZone})
	if plain.SubscribeMeta() {
		t.Fatal("SubscribeMeta succeeded on a client without the optional interface")
	}
}

// noSubMeta wraps a MetaClient, hiding any Subscribe method.
type noSubMeta struct{ core.MetaClient }
