// Package core implements the HCS Name Service (HNS) proper — the paper's
// primary contribution.
//
// The HNS is a *direct access* global name service: all data about
// individually nameable entities stays in the underlying name services
// (BIND, Clearinghouse, ...), and the HNS maintains only meta-naming
// information — which name service a context maps to, which NSM handles a
// (name service, query class) pair, and where that NSM lives. The
// meta-information is itself stored in a modified BIND supporting dynamic
// updates and records of unspecified type; the HNS is "a collection of
// library routines that access this version of BIND".
//
// The primary function is FindNSM, implemented as the paper's sequence of
// mappings:
//
//  1. Context → Name Service Name                  (meta-BIND lookup)
//  2. (Name Service Name, Query Class) → NSM Name  (meta-BIND lookup)
//  3. NSM Name → NSM record                        (meta-BIND lookup)
//     4-5. the NSM record names the NSM's host; translating it to an
//     address is itself an HNS operation, re-running mappings 1-2 for
//     the host's context                         (two meta-BIND lookups)
//  6. the HostAddress NSM interrogates the real underlying name service.
//
// Further recursion is avoided by linking HostAddress NSM instances
// directly with the HNS (LinkHostResolver), so their own addresses never
// need to be found. A cache-cold FindNSM therefore performs exactly six
// remote lookups; a warm one performs none.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hns/internal/bind"
	"hns/internal/cache"
	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/simtime"
)

// HostResolver is the face of a linked-in HostAddress NSM: it translates a
// host's individual name into a transport address using its underlying
// name service, and is expected to cache.
type HostResolver interface {
	// ResolveHost maps the individual name of a host to its transport
	// address.
	ResolveHost(ctx context.Context, individual string) (string, error)
}

// Finder is the client-side face of the HNS, satisfied by both the local
// library (*HNS) and the remote service (*RemoteHNS) — the choice between
// them is the "colocation arrangement" of the paper's Table 3.1.
type Finder interface {
	// FindNSM maps an HNS name's context plus a query class to an HRPC
	// binding for the NSM that can answer queries of that class.
	FindNSM(ctx context.Context, name names.Name, queryClass string) (hrpc.Binding, error)
}

// Errors reported by HNS operations.
var (
	ErrNoSuchContext = errors.New("hns: context not registered")
	ErrNoSuchNSM     = errors.New("hns: no NSM registered for query class on name service")
	ErrBadMetaRecord = errors.New("hns: malformed meta-naming record")
	ErrDepthExceeded = errors.New("hns: host resolution recursion too deep")
)

// Config configures a local HNS instance.
type Config struct {
	// MetaZone is the BIND zone holding the meta-information
	// (default "hns").
	MetaZone string
	// CacheMode selects the meta-cache entry form (Table 3.2):
	// demarshalled (default) or marshalled.
	CacheMode bind.CacheMode
	// Clock drives cache TTL expiry; default real time.
	Clock simtime.Clock
	// MaxCacheEntries bounds the meta-cache; 0 = unbounded.
	MaxCacheEntries int
	// CacheShards pins the meta-cache shard count: 0 picks automatically
	// (sharded), 1 restores the single-mutex cache. The parallel
	// benchmark tier uses 1 as its contention baseline.
	CacheShards int
	// NegativeCacheTTL, when positive, remembers authoritative "no such
	// meta record" answers for that long, so lookups of unregistered
	// contexts stop hammering the meta-BIND. Zero disables negative
	// caching (the paper's prototype had none).
	NegativeCacheTTL time.Duration
	// ServeStale, when positive, enables serve-stale degraded mode on the
	// meta-cache: if every meta-BIND replica is unreachable, FindNSM's
	// mapping lookups may answer from expired entries up to ServeStale
	// past expiry (counted in cache_stale_served_total and
	// Stats.Cache.StaleServed). Zero keeps strict TTL semantics.
	ServeStale time.Duration
	// RefreshAhead, when in (0,1), refreshes meta-cache entries ahead of
	// expiry: a hit whose remaining TTL is at or below that fraction of
	// the original TTL triggers one asynchronous re-fetch (singleflight
	// per key, simulated cost discarded), so hot meta records rarely take
	// a synchronous miss. Zero disables.
	RefreshAhead float64
	// BindingCacheTTL, when positive, memoizes fully resolved FindNSM
	// results: a repeat (context, query class) is answered from the
	// stored binding without re-walking the six mappings — priced as one
	// cache probe (CacheHit(0)) on top of the fixed assembly cost. This
	// is an additional layer above the meta-cache, so it is off by
	// default and the paper's tables are computed without it; the
	// zero-allocation warm path the bench-alloc gate pins uses it.
	BindingCacheTTL time.Duration
	// RPC, when set, lets the HNS fall back to *remote* HostAddress NSMs
	// for name services with no linked resolver. Without it, such
	// lookups fail — the prototype always linked its HostAddress NSMs.
	RPC *hrpc.Client
	// Metrics receives this instance's counters and per-mapping-step
	// latency histograms (core_findnsm_* and the meta-cache's cache_*
	// series). Nil means the process-wide metrics.Default();
	// metrics.Discard disables instrumentation entirely.
	Metrics *metrics.Registry
}

// MetaClient is the client-side face of the meta-information repository:
// the BIND HRPC interface's lookup, dynamic update, zone transfer, and
// serial probe. *bind.HRPCClient (one modified BIND) satisfies it, and so
// does *shard.Client (the namespace rendezvous-partitioned across bindd
// shards) — the HNS library is indifferent to which.
type MetaClient interface {
	bind.Lookuper
	Update(ctx context.Context, zone string, op uint32, rr bind.RR) (uint32, error)
	Transfer(ctx context.Context, zone string) (uint32, []bind.RR, error)
	Serial(ctx context.Context, zone string) (uint32, error)
}

// HNS is a local instance of the name service library.
type HNS struct {
	model    *simtime.Model
	metaZone string
	meta     MetaClient
	resolver *bind.Resolver
	rpc      *hrpc.Client

	// bindings, when non-nil, is the resolved-binding cache
	// (Config.BindingCacheTTL): (context, query class) → hrpc.Binding.
	bindings   *cache.TTL[hrpc.Binding]
	bindingTTL time.Duration

	mu            sync.RWMutex
	hostResolvers map[string]HostResolver
	// metaSub, when non-nil, is the live push subscription feeding
	// cache invalidations (see SubscribeMeta in subscribe.go).
	metaSub *bind.Subscriber

	findCalls atomic.Int64
	instr     bool
	obs       hnsObs
}

// hnsObs holds the pre-created instrument handles FindNSM records into.
// Handles are resolved once in New so the warm path never touches the
// registry's name table.
type hnsObs struct {
	warm, cold     *metrics.Counter   // core_findnsm_total{state=...}
	errors         *metrics.Counter   // core_findnsm_errors_total
	warmMS, coldMS *metrics.Histogram // core_findnsm_ms{state=...}
	steps          [6]*metrics.Histogram
	// core_binding_cache_total{result=...}; registered only when the
	// binding cache is enabled (nil handles are no-ops otherwise).
	bindHits, bindMisses *metrics.Counter
}

// New creates an HNS over the given meta-information client — usually a
// *bind.HRPCClient for one modified BIND, or a *shard.Client when the
// meta namespace is partitioned across bindd shards.
func New(meta MetaClient, model *simtime.Model, cfg Config) *HNS {
	zone := cfg.MetaZone
	if zone == "" {
		zone = "hns"
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	h := &HNS{
		model:    model,
		metaZone: zone,
		meta:     meta,
		rpc:      cfg.RPC,
		resolver: bind.NewResolver(meta, model, bind.ResolverConfig{
			Mode: cfg.CacheMode,
			// Meta data arrives via the generated stubs, so marshalled-
			// mode hits pay the generated demarshal rate.
			Style:        marshal.StyleGenerated,
			Clock:        cfg.Clock,
			MaxEntries:   cfg.MaxCacheEntries,
			Shards:       cfg.CacheShards,
			NegativeTTL:  cfg.NegativeCacheTTL,
			Metrics:      reg,
			CacheName:    "meta",
			StaleFor:     cfg.ServeStale,
			RefreshAhead: cfg.RefreshAhead,
		}),
		hostResolvers: make(map[string]HostResolver),
		instr:         reg.Enabled(),
	}
	h.obs = hnsObs{
		warm:   reg.Counter(metrics.Labels("core_findnsm_total", "state", "warm")),
		cold:   reg.Counter(metrics.Labels("core_findnsm_total", "state", "cold")),
		errors: reg.Counter("core_findnsm_errors_total"),
		warmMS: reg.Histogram(metrics.Labels("core_findnsm_ms", "state", "warm")),
		coldMS: reg.Histogram(metrics.Labels("core_findnsm_ms", "state", "cold")),
	}
	for i := range h.obs.steps {
		h.obs.steps[i] = reg.Histogram(metrics.Labels("core_findnsm_step_ms",
			"step", fmt.Sprintf("mapping%d", i+1)))
	}
	if cfg.BindingCacheTTL > 0 {
		h.bindings = cache.New[hrpc.Binding](cfg.Clock, cfg.MaxCacheEntries)
		h.bindingTTL = cfg.BindingCacheTTL
		h.obs.bindHits = reg.Counter(metrics.Labels("core_binding_cache_total", "result", "hit"))
		h.obs.bindMisses = reg.Counter(metrics.Labels("core_binding_cache_total", "result", "miss"))
	}
	return h
}

// MetaZone reports the meta-information zone name.
func (h *HNS) MetaZone() string { return h.metaZone }

// LinkHostResolver links a HostAddress NSM instance directly with the HNS
// for the given name service, breaking the FindNSM recursion for hosts
// named in that service.
func (h *HNS) LinkHostResolver(nameService string, r HostResolver) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hostResolvers[strings.ToLower(nameService)] = r
}

// linkedResolver returns the linked HostAddress NSM for a name service.
func (h *HNS) linkedResolver(nameService string) HostResolver {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.hostResolvers[nameService]
}

// Meta record owner names. Contexts, name services, query-class mappings
// and NSM records live under distinct sub-trees of the meta zone.
func (h *HNS) ctxName(context string) string { return context + ".ctx." + h.metaZone }
func (h *HNS) nsName(ns string) string       { return ns + ".ns." + h.metaZone }
func (h *HNS) qcName(qc, ns string) string   { return qc + "." + ns + ".qc." + h.metaZone }
func (h *HNS) nsmName(nsm string) string     { return nsm + ".nsm." + h.metaZone }

// metaLookup fetches the meta records at name through the caching
// resolver; the six FindNSM mappings all come through here.
func (h *HNS) metaLookup(ctx context.Context, name string) ([]bind.RR, error) {
	return h.resolver.Lookup(ctx, name, bind.TypeHNSMeta)
}

// kv parses the "key=value" payload convention of meta records.
func kv(rr bind.RR) (string, string, error) {
	s := string(rr.Data)
	i := strings.IndexByte(s, '=')
	if i <= 0 {
		return "", "", fmt.Errorf("%w: %q on %s", ErrBadMetaRecord, s, rr.Name)
	}
	return s[:i], s[i+1:], nil
}

// findValue extracts the value for key from a meta record set.
func findValue(rrs []bind.RR, key string) (string, bool) {
	for _, rr := range rrs {
		k, v, err := kv(rr)
		if err == nil && k == key {
			return v, true
		}
	}
	return "", false
}

// stepObs tracks per-step simulated duration and cache state for one
// FindNSM call, feeding both the per-step histograms and the structured
// trace events. A nil *stepObs (uninstrumented, untraced call) makes
// every lap free.
type stepObs struct {
	meter *simtime.Meter
	fn    EventFunc
	cc    metrics.CallCounter
	prevD time.Duration
	prevM int64
}

// lap reports the simulated time and cache state since the previous lap.
func (s *stepObs) lap() (time.Duration, string) {
	if s == nil {
		return 0, CacheWarm
	}
	var d time.Duration
	if s.meter != nil {
		now := s.meter.Elapsed()
		d = now - s.prevD
		s.prevD = now
	}
	state := CacheWarm
	if m := s.cc.Misses(); m > s.prevM {
		state = CacheCold
		s.prevM = m
	}
	return d, state
}

// FindNSM implements Finder. It is the paper's primary HNS call.
func (h *HNS) FindNSM(ctx context.Context, name names.Name, queryClass string) (hrpc.Binding, error) {
	h.findCalls.Add(1)
	simtime.Charge(ctx, h.model.FindNSMAssembly)
	if err := name.Validate(); err != nil {
		h.obs.errors.Inc()
		return hrpc.Binding{}, err
	}
	queryClass = strings.ToLower(queryClass)

	// Resolved-binding cache: a repeat (context, query class) skips the
	// entire mapping walk. The key concatenation is the warm path's one
	// allocation; the hit is priced as a single cache probe.
	var bkey string
	if h.bindings != nil {
		cctx, cerr := names.CanonicalContext(name.Context)
		if cerr == nil {
			bkey = cctx + "\x00" + queryClass
			if b, ok := h.bindings.Get(bkey); ok {
				simtime.Charge(ctx, h.model.CacheHit(0))
				h.obs.bindHits.Inc()
				return b, nil
			}
			h.obs.bindMisses.Inc()
		}
	}

	var so *stepObs
	var start time.Duration
	if tr := tracer(ctx); h.instr || tr != nil {
		so = &stepObs{meter: simtime.From(ctx), fn: tr}
		ctx = metrics.InstallCallCounter(ctx, &so.cc)
		so.prevD = so.meter.Elapsed()
		start = so.prevD
	}
	b, err := h.findNSM(ctx, name.Context, queryClass, 0, so)
	if err != nil {
		h.obs.errors.Inc()
		return b, err
	}
	if h.bindings != nil && bkey != "" {
		h.bindings.Put(bkey, b, h.bindingTTL)
	}
	if h.instr {
		// The final "resolved" lap left prevD at the call's end time,
		// so the total needs no further meter read.
		total := so.prevD - start
		if so.cc.Misses() == 0 {
			h.obs.warm.Inc()
			h.obs.warmMS.Observe(total)
		} else {
			h.obs.cold.Inc()
			h.obs.coldMS.Observe(total)
		}
	}
	return b, nil
}

func (h *HNS) findNSM(ctx context.Context, context, queryClass string, depth int, so *stepObs) (hrpc.Binding, error) {
	if depth > 2 {
		return hrpc.Binding{}, ErrDepthExceeded
	}
	// Mapping 1: Context → Name Service Name.
	ns, err := h.lookupContext(ctx, context)
	if err != nil {
		return hrpc.Binding{}, err
	}
	d, state := so.lap()
	h.obs.steps[0].Observe(d)
	so.emit("mapping 1", d, state, "context %q -> name service %q", context, ns)
	// Mapping 2: (Name Service Name, Query Class) → NSM Name.
	nsm, err := h.lookupNSMName(ctx, ns, queryClass)
	if err != nil {
		return hrpc.Binding{}, err
	}
	d, state = so.lap()
	h.obs.steps[1].Observe(d)
	so.emit("mapping 2", d, state, "(%q, %q) -> NSM %q", ns, queryClass, nsm)
	// Mapping 3: NSM Name → NSM record (host, port, program, suite).
	rec, err := h.lookupNSMRecord(ctx, nsm)
	if err != nil {
		return hrpc.Binding{}, err
	}
	d, state = so.lap()
	h.obs.steps[2].Observe(d)
	so.emit("mapping 3", d, state, "NSM %q -> host %s port %s suite %s,%s,%s",
		nsm, rec.Host, rec.Port, rec.Suite.Transport, rec.Suite.DataRep, rec.Suite.Control)
	// Mappings 4-6: translate the NSM's host name to an address.
	hostAddr, err := h.resolveHost(ctx, rec.HostContext, rec.Host, depth, so)
	if err != nil {
		return hrpc.Binding{}, fmt.Errorf("hns: resolving NSM host %s: %w", rec.Host, err)
	}
	d, state = so.lap()
	so.emit("resolved", d, state, "NSM host %q -> address %q", rec.Host, hostAddr)
	prog, err := qclass.Program(queryClass)
	if err != nil {
		return hrpc.Binding{}, err
	}
	return hrpc.Binding{
		Host:      rec.Host,
		Addr:      hostAddr + ":" + rec.Port,
		Transport: rec.Suite.Transport,
		DataRep:   rec.Suite.DataRep,
		Control:   rec.Suite.Control,
		Program:   prog,
		Version:   qclass.NSMVersion,
	}, nil
}

// lookupContext performs mapping 1.
func (h *HNS) lookupContext(ctx context.Context, context string) (string, error) {
	context, err := names.CanonicalContext(context)
	if err != nil {
		return "", err
	}
	rrs, err := h.metaLookup(ctx, h.ctxName(context))
	if err != nil {
		var nf *bind.NotFoundError
		if errors.As(err, &nf) {
			return "", fmt.Errorf("%w: %q", ErrNoSuchContext, context)
		}
		return "", err
	}
	ns, ok := findValue(rrs, "ns")
	if !ok {
		return "", fmt.Errorf("%w: context %q record lacks ns=", ErrBadMetaRecord, context)
	}
	return ns, nil
}

// lookupNSMName performs mapping 2.
func (h *HNS) lookupNSMName(ctx context.Context, ns, queryClass string) (string, error) {
	rrs, err := h.metaLookup(ctx, h.qcName(queryClass, ns))
	if err != nil {
		var nf *bind.NotFoundError
		if errors.As(err, &nf) {
			return "", fmt.Errorf("%w: %s on %s", ErrNoSuchNSM, queryClass, ns)
		}
		return "", err
	}
	nsm, ok := findValue(rrs, "nsm")
	if !ok {
		return "", fmt.Errorf("%w: qc record for %s/%s lacks nsm=", ErrBadMetaRecord, ns, queryClass)
	}
	return nsm, nil
}

// nsmRecord is the decoded form of an NSM's meta records.
type nsmRecord struct {
	Host        string
	HostContext string
	Port        string
	Suite       hrpc.Suite
}

// lookupNSMRecord performs mapping 3.
func (h *HNS) lookupNSMRecord(ctx context.Context, nsm string) (nsmRecord, error) {
	rrs, err := h.metaLookup(ctx, h.nsmName(nsm))
	if err != nil {
		var nf *bind.NotFoundError
		if errors.As(err, &nf) {
			return nsmRecord{}, fmt.Errorf("%w: NSM %q has no record", ErrNoSuchNSM, nsm)
		}
		return nsmRecord{}, err
	}
	var rec nsmRecord
	var ok bool
	if rec.Host, ok = findValue(rrs, "host"); !ok {
		return nsmRecord{}, fmt.Errorf("%w: NSM %q lacks host=", ErrBadMetaRecord, nsm)
	}
	if rec.HostContext, ok = findValue(rrs, "hostctx"); !ok {
		return nsmRecord{}, fmt.Errorf("%w: NSM %q lacks hostctx=", ErrBadMetaRecord, nsm)
	}
	if rec.Port, ok = findValue(rrs, "port"); !ok {
		return nsmRecord{}, fmt.Errorf("%w: NSM %q lacks port=", ErrBadMetaRecord, nsm)
	}
	suite, ok := findValue(rrs, "suite")
	if !ok {
		return nsmRecord{}, fmt.Errorf("%w: NSM %q lacks suite=", ErrBadMetaRecord, nsm)
	}
	parts := strings.Split(suite, ",")
	if len(parts) != 3 {
		return nsmRecord{}, fmt.Errorf("%w: NSM %q suite %q", ErrBadMetaRecord, nsm, suite)
	}
	rec.Suite = hrpc.Suite{Transport: parts[0], DataRep: parts[1], Control: parts[2]}
	return rec, nil
}

// resolveHost performs mappings 4-6: an HNS HostAddress operation for the
// NSM's own host, short-circuited through linked resolvers.
func (h *HNS) resolveHost(ctx context.Context, hostContext, host string, depth int, so *stepObs) (string, error) {
	// Mapping 4: the host's context → its name service.
	hostNS, err := h.lookupContext(ctx, hostContext)
	if err != nil {
		return "", err
	}
	d, state := so.lap()
	h.obs.steps[3].Observe(d)
	so.emit("mapping 4", d, state, "host context %q -> name service %q", hostContext, hostNS)
	// Mapping 5: (host NS, HostAddress) → NSM name. Performed even when a
	// linked instance will serve the query — the HNS must confirm the
	// query class is supported before dispatching.
	hostNSM, err := h.lookupNSMName(ctx, hostNS, qclass.HostAddress)
	if err != nil {
		return "", err
	}
	d, state = so.lap()
	h.obs.steps[4].Observe(d)
	so.emit("mapping 5", d, state, "(%q, %q) -> NSM %q", hostNS, qclass.HostAddress, hostNSM)
	// Mapping 6: the HostAddress NSM interrogates its name service.
	if r := h.linkedResolver(hostNS); r != nil {
		addr, err := r.ResolveHost(ctx, host)
		d, state = so.lap()
		h.obs.steps[5].Observe(d)
		if err != nil {
			return "", err
		}
		so.emit("mapping 6", d, state, "linked HostAddress NSM for %q resolves %q", hostNS, host)
		return addr, nil
	}
	// No linked instance: fall back to calling the remote HostAddress
	// NSM, which requires finding *it* first (bounded recursion).
	if h.rpc == nil {
		return "", fmt.Errorf("hns: no linked HostAddress NSM for name service %q", hostNS)
	}
	b, err := h.findNSM(ctx, hostContext, qclass.HostAddress, depth+1, so)
	if err != nil {
		return "", err
	}
	ret, err := h.rpc.Call(ctx, b, qclass.ProcResolveHost, resolveHostArgs(hostContext, host))
	d, _ = so.lap()
	h.obs.steps[5].Observe(d)
	if err != nil {
		return "", err
	}
	return ret.Items[0].AsString()
}

// Stats reports the HNS's operational counters.
type Stats struct {
	// FindNSMCalls counts FindNSM invocations.
	FindNSMCalls int64
	// Cache carries the meta-cache counters (the paper's p and p+q).
	Cache CacheStats
}

// CacheStats mirrors cache.Stats without exporting the cache package.
type CacheStats struct {
	Hits, Misses, Expired, Preloads int64
	HitRate                         float64
	// NegativeHits counts lookups answered from the negative cache
	// (zero unless Config.NegativeCacheTTL is set).
	NegativeHits int64
	// LockWaits counts contended meta-cache shard-lock acquisitions.
	LockWaits int64
	// StaleServed counts degraded-mode answers from expired entries
	// (zero unless Config.ServeStale is set).
	StaleServed int64
}

// Stats returns a snapshot.
func (h *HNS) Stats() Stats {
	cs := h.resolver.Stats()
	return Stats{
		FindNSMCalls: h.findCalls.Load(),
		Cache: CacheStats{
			Hits: cs.Hits, Misses: cs.Misses, Expired: cs.Expired,
			Preloads: cs.Preloads, HitRate: cs.HitRate(),
			NegativeHits: h.resolver.NegativeStats().Hits,
			LockWaits:    h.resolver.LockWaits(),
			StaleServed:  cs.StaleServed,
		},
	}
}

// BindingCacheStats reports the resolved-binding cache's counters (zeros
// when Config.BindingCacheTTL is unset).
func (h *HNS) BindingCacheStats() (hits, misses int64) {
	if h.bindings == nil {
		return 0, 0
	}
	st := h.bindings.Stats()
	return st.Hits, st.Misses
}

// FlushCache empties the meta-cache — and the resolved-binding cache, when
// enabled (between benchmark phases).
func (h *HNS) FlushCache() {
	h.resolver.Purge()
	if h.bindings != nil {
		h.bindings.Purge()
	}
}
