package core_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hns/internal/core"
	"hns/internal/metrics"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/world"
)

// findnsmCounters reads the core_findnsm_* series back out of a registry.
func findnsmCounters(reg *metrics.Registry) (warm, cold, errs int64) {
	warm = reg.Counter(metrics.Labels("core_findnsm_total", "state", "warm")).Value()
	cold = reg.Counter(metrics.Labels("core_findnsm_total", "state", "cold")).Value()
	errs = reg.Counter("core_findnsm_errors_total").Value()
	return
}

// TestFindNSMMetricsConcurrent drives one instrumented HNS from many
// goroutines and checks the books balance: every call is counted exactly
// once, classified warm or cold by what the meta-cache actually did, and
// every mapping step's histogram saw every call.
func TestFindNSMMetricsConcurrent(t *testing.T) {
	const (
		goroutines = 32
		perG       = 25
	)
	w := newWorld(t, world.Config{})
	reg := metrics.NewRegistry()
	h := w.NewHNS(core.Config{Metrics: reg})

	// Prime the meta-cache: exactly one cache-cold call.
	if _, err := h.FindNSM(context.Background(), world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	if warm, cold, errs := findnsmCounters(reg); warm != 0 || cold != 1 || errs != 0 {
		t.Fatalf("after priming: warm=%d cold=%d errs=%d, want 0/1/0", warm, cold, errs)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := h.FindNSM(context.Background(), world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	const want = goroutines * perG
	warm, cold, errs := findnsmCounters(reg)
	if warm != want || cold != 1 || errs != 0 {
		t.Fatalf("warm=%d cold=%d errs=%d, want %d/1/0", warm, cold, errs, want)
	}
	if n := reg.Histogram(metrics.Labels("core_findnsm_ms", "state", "warm")).Count(); n != want {
		t.Fatalf("warm latency histogram count = %d, want %d", n, want)
	}
	if n := reg.Histogram(metrics.Labels("core_findnsm_ms", "state", "cold")).Count(); n != 1 {
		t.Fatalf("cold latency histogram count = %d, want 1", n)
	}
	// Every successful call walks all six mappings exactly once.
	for step := 1; step <= 6; step++ {
		name := metrics.Labels("core_findnsm_step_ms", "step", fmt.Sprintf("mapping%d", step))
		if n := reg.Histogram(name).Count(); n != want+1 {
			t.Errorf("%s count = %d, want %d", name, n, want+1)
		}
	}
	// The registered cache gauges must agree with the HNS's own stats.
	st := h.Stats()
	snap := reg.Snapshot()
	gauges := map[string]int64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if got := gauges[metrics.Labels("cache_hits_total", "cache", "meta")]; got != st.Cache.Hits {
		t.Errorf("cache_hits_total gauge = %d, HNS stats say %d", got, st.Cache.Hits)
	}
	if got := gauges[metrics.Labels("cache_misses_total", "cache", "meta")]; got != st.Cache.Misses {
		t.Errorf("cache_misses_total gauge = %d, HNS stats say %d", got, st.Cache.Misses)
	}
}

// TestFindNSMErrorCounter: failed calls land in core_findnsm_errors_total,
// not in the warm/cold totals.
func TestFindNSMErrorCounter(t *testing.T) {
	w := newWorld(t, world.Config{})
	reg := metrics.NewRegistry()
	h := w.NewHNS(core.Config{Metrics: reg})
	if _, err := h.FindNSM(context.Background(), world.DesiredServiceName(), "no-such-class"); err == nil {
		t.Fatal("expected error for unknown query class")
	}
	warm, cold, errs := findnsmCounters(reg)
	if errs != 1 {
		t.Fatalf("errors = %d, want 1", errs)
	}
	if warm != 0 || cold != 0 {
		t.Fatalf("failed call leaked into warm=%d/cold=%d", warm, cold)
	}
}

// TestTracerEvents: the structured tracer sees one Event per mapping step
// carrying duration and cache state — cold on first touch, warm once the
// meta-cache holds every mapping.
func TestTracerEvents(t *testing.T) {
	w := newWorld(t, world.Config{})

	collect := func() []core.Event {
		var events []core.Event
		ctx := core.WithTracer(context.Background(), func(e core.Event) { events = append(events, e) })
		ctx = simtime.WithMeter(ctx, simtime.NewMeter())
		if _, err := w.HNS.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
			t.Fatal(err)
		}
		return events
	}

	w.HNS.FlushCache()
	cold := collect()
	warm := collect()

	wantSteps := []string{"mapping 1", "mapping 2", "mapping 3", "mapping 4", "mapping 5", "mapping 6", "resolved"}
	for name, events := range map[string][]core.Event{"cold": cold, "warm": warm} {
		if len(events) != len(wantSteps) {
			t.Fatalf("%s pass: %d events, want %d", name, len(events), len(wantSteps))
		}
		for i, e := range events {
			if e.Step != wantSteps[i] {
				t.Errorf("%s pass event %d: Step = %q, want %q", name, i, e.Step, wantSteps[i])
			}
			if e.Detail == "" {
				t.Errorf("%s pass event %d has empty Detail", name, i)
			}
		}
	}
	// The five meta-mapping steps are cold on the first pass, warm on the
	// second; each cold meta lookup costs simulated time.
	for i := 0; i < 5; i++ {
		if cold[i].Cache != core.CacheCold {
			t.Errorf("cold pass %s: Cache = %q, want cold", cold[i].Step, cold[i].Cache)
		}
		if cold[i].Duration <= 0 {
			t.Errorf("cold pass %s: Duration = %v, want > 0", cold[i].Step, cold[i].Duration)
		}
		if warm[i].Cache != core.CacheWarm {
			t.Errorf("warm pass %s: Cache = %q, want warm", warm[i].Step, warm[i].Cache)
		}
	}
}

// TestWithTraceShimMatchesEvents: the legacy string callback receives
// exactly the Events flattened through Event.String — one line per step,
// same wording as before the structured upgrade.
func TestWithTraceShimMatchesEvents(t *testing.T) {
	w := newWorld(t, world.Config{})

	w.HNS.FlushCache()
	var events []core.Event
	ctxE := core.WithTracer(context.Background(), func(e core.Event) { events = append(events, e) })
	if _, err := w.HNS.FindNSM(ctxE, world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}

	w.HNS.FlushCache()
	var lines []string
	ctxS := core.WithTrace(context.Background(), func(s string) { lines = append(lines, s) })
	if _, err := w.HNS.FindNSM(ctxS, world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}

	if len(lines) != len(events) {
		t.Fatalf("shim got %d lines, tracer got %d events", len(lines), len(events))
	}
	for i, e := range events {
		if lines[i] != e.String() {
			t.Errorf("line %d = %q, want %q", i, lines[i], e.String())
		}
		if !strings.HasPrefix(lines[i], e.Step+": ") {
			t.Errorf("line %d = %q does not start with %q", i, lines[i], e.Step+": ")
		}
	}
}
