package core

import (
	"context"
)

// Cache preloading. "In those cases where the HNS used by the client is a
// local copy, the cost of the many remote lookups required on the initial
// reference to various pieces of meta-naming information might exceed the
// cost of preloading the relatively small amount of information (currently
// about 2KB) required to guarantee HNS cache hits." The BIND zone-transfer
// mechanism is used to fetch the whole meta zone in one operation.

// PreloadReport summarises one preload.
type PreloadReport struct {
	// Records is the number of meta records transferred.
	Records int
	// Bytes is the total payload size (the paper's "about 2KB").
	Bytes int
	// Serial is the meta-zone serial at transfer time.
	Serial uint32
}

// Preload fetches the entire meta zone by zone transfer and installs it in
// the meta-cache, guaranteeing HNS cache hits until the records' TTLs
// expire.
func (h *HNS) Preload(ctx context.Context) (PreloadReport, error) {
	serial, rrs, err := h.meta.Transfer(ctx, h.metaZone)
	if err != nil {
		return PreloadReport{}, err
	}
	h.resolver.Preload(rrs)
	rep := PreloadReport{Records: len(rrs), Serial: serial}
	for _, rr := range rrs {
		rep.Bytes += len(rr.Name) + len(rr.Data)
	}
	return rep, nil
}

// Fresh reports whether the local cache view is still current by comparing
// the remembered serial against the server's — the cheap probe secondaries
// use between transfers.
func (h *HNS) Fresh(ctx context.Context, lastSerial uint32) (bool, error) {
	serial, err := h.meta.Serial(ctx, h.metaZone)
	if err != nil {
		return false, err
	}
	return serial == lastSerial, nil
}

// MetaClient exposes the underlying meta-information client (used by
// tooling that needs raw access, e.g. hnsctl dump).
func (h *HNS) MetaClient() MetaClient { return h.meta }

// SweepCache proactively removes expired meta-cache entries (long-lived
// server hygiene); it reports how many were dropped.
func (h *HNS) SweepCache() int { return h.resolver.Sweep() }
