package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hns/internal/bind"
	"hns/internal/hrpc"
	"hns/internal/names"
)

// Registration writes meta-naming records into the modified BIND through
// dynamic updates. This is the entirety of what "adding a new system type"
// costs at the HNS: register the name service, its contexts, and the NSMs
// built for it. Existing applications on the new system keep using their
// native name service; their updates are visible globally with no further
// work — the direct-access property.

// DefaultMetaTTL is the TTL (seconds) stamped on meta records unless a
// registration overrides it.
const DefaultMetaTTL uint32 = 600

// NSMInfo describes one NSM for registration.
type NSMInfo struct {
	// Name uniquely identifies the NSM, e.g. "binding-bind-1".
	Name string
	// NameService is the underlying service the NSM fronts, e.g. "bind-cs".
	NameService string
	// QueryClass is the query class it answers, e.g. qclass.HRPCBinding.
	QueryClass string
	// Host is the individual name of the host the NSM runs on, e.g.
	// "fiji.cs.washington.edu".
	Host string
	// HostContext is the HNS context that resolves Host.
	HostContext string
	// Port is the address suffix of the NSM's endpoint on that host.
	Port string
	// Suite names the protocol components the NSM is served over.
	Suite hrpc.Suite
	// TTL overrides DefaultMetaTTL when positive.
	TTL uint32
}

func (i NSMInfo) ttl() uint32 {
	if i.TTL > 0 {
		return i.TTL
	}
	return DefaultMetaTTL
}

// validate checks the registration for completeness.
func (i NSMInfo) validate() error {
	switch {
	case i.Name == "":
		return fmt.Errorf("hns: NSM registration lacks a name")
	case i.NameService == "":
		return fmt.Errorf("hns: NSM %q lacks a name service", i.Name)
	case i.QueryClass == "":
		return fmt.Errorf("hns: NSM %q lacks a query class", i.Name)
	case i.Host == "":
		return fmt.Errorf("hns: NSM %q lacks a host", i.Name)
	case i.HostContext == "":
		return fmt.Errorf("hns: NSM %q lacks a host context", i.Name)
	case i.Port == "":
		return fmt.Errorf("hns: NSM %q lacks a port", i.Name)
	case i.Suite.Transport == "" || i.Suite.DataRep == "" || i.Suite.Control == "":
		return fmt.Errorf("hns: NSM %q has an incomplete protocol suite", i.Name)
	}
	return nil
}

// Meta-record constructors, shared by the library registration calls and
// administrative tooling (hnsctl) that writes records directly.

// ContextRecord builds the meta record mapping context onto nameService.
func ContextRecord(zone, context, nameService string) (bind.RR, error) {
	c, err := names.CanonicalContext(context)
	if err != nil {
		return bind.RR{}, err
	}
	if nameService == "" {
		return bind.RR{}, fmt.Errorf("hns: context %q registration lacks a name service", c)
	}
	return bind.HNSMeta(c+".ctx."+zone, "ns="+strings.ToLower(nameService), DefaultMetaTTL), nil
}

// NameServiceRecord builds the meta record declaring a name service.
func NameServiceRecord(zone, name, nsType string) (bind.RR, error) {
	if name == "" || nsType == "" {
		return bind.RR{}, fmt.Errorf("hns: name service registration needs name and type")
	}
	return bind.HNSMeta(strings.ToLower(name)+".ns."+zone, "type="+nsType, DefaultMetaTTL), nil
}

// NSMRecords builds the meta records registering an NSM: the
// (name service, query class) → NSM mapping plus the NSM's own record set.
func NSMRecords(zone string, info NSMInfo) ([]bind.RR, error) {
	if err := info.validate(); err != nil {
		return nil, err
	}
	qc := strings.ToLower(info.QueryClass)
	ns := strings.ToLower(info.NameService)
	nsm := strings.ToLower(info.Name)
	ttl := info.ttl()
	rec := nsm + ".nsm." + zone
	return []bind.RR{
		bind.HNSMeta(qc+"."+ns+".qc."+zone, "nsm="+nsm, ttl),
		bind.HNSMeta(rec, "host="+info.Host, ttl),
		bind.HNSMeta(rec, "hostctx="+strings.ToLower(info.HostContext), ttl),
		bind.HNSMeta(rec, "port="+info.Port, ttl),
		bind.HNSMeta(rec, "suite="+info.Suite.Transport+","+info.Suite.DataRep+","+info.Suite.Control, ttl),
	}, nil
}

func (h *HNS) removeMeta(ctx context.Context, name string) error {
	_, err := h.meta.Update(ctx, h.metaZone, bind.UpdateRemove,
		bind.RR{Name: name, Type: bind.TypeHNSMeta})
	return err
}

// RegisterNameService records that a name service exists, with a
// free-form type tag ("bind", "clearinghouse", ...).
func (h *HNS) RegisterNameService(ctx context.Context, name, nsType string) error {
	rr, err := NameServiceRecord(h.metaZone, name, nsType)
	if err != nil {
		return err
	}
	return h.addRecord(ctx, rr)
}

// RegisterContext maps a context onto a name service.
func (h *HNS) RegisterContext(ctx context.Context, context, nameService string) error {
	rr, err := ContextRecord(h.metaZone, context, nameService)
	if err != nil {
		return err
	}
	if err := h.addRecord(ctx, rr); err != nil {
		return err
	}
	// Keep our own cache coherent immediately; remote caches converge by
	// TTL, which the paper accepts ("data changes slowly over time").
	h.resolver.Purge()
	return nil
}

func (h *HNS) addRecord(ctx context.Context, rr bind.RR) error {
	_, err := h.meta.Update(ctx, h.metaZone, bind.UpdateAdd, rr)
	return err
}

// UnregisterContext removes a context mapping.
func (h *HNS) UnregisterContext(ctx context.Context, context string) error {
	c, err := names.CanonicalContext(context)
	if err != nil {
		return err
	}
	if err := h.removeMeta(ctx, h.ctxName(c)); err != nil {
		return err
	}
	h.resolver.Purge()
	return nil
}

// RegisterNSM records an NSM: the (name service, query class) → NSM
// mapping plus the NSM's own record. "Adding a new system type simply
// requires building NSMs for those queries to be supported and registering
// their existence with the HNS."
func (h *HNS) RegisterNSM(ctx context.Context, info NSMInfo) error {
	rrs, err := NSMRecords(h.metaZone, info)
	if err != nil {
		return err
	}
	for _, rr := range rrs {
		if err := h.addRecord(ctx, rr); err != nil {
			return err
		}
	}
	h.resolver.Purge()
	return nil
}

// UnregisterNSM removes an NSM and its query-class mapping.
func (h *HNS) UnregisterNSM(ctx context.Context, nsmName, nameService, queryClass string) error {
	nsm := strings.ToLower(nsmName)
	if err := h.removeMeta(ctx, h.qcName(strings.ToLower(queryClass), strings.ToLower(nameService))); err != nil {
		return err
	}
	if err := h.removeMeta(ctx, h.nsmName(nsm)); err != nil {
		return err
	}
	h.resolver.Purge()
	return nil
}

// Inventory is a report of everything registered in the meta zone, for
// administrative tooling.
type Inventory struct {
	NameServices []string
	Contexts     map[string]string // context -> name service
	NSMs         map[string]string // "queryclass@nameservice" -> NSM name
}

// ListRegistrations reads the whole meta zone (via zone transfer) and
// decodes it.
func (h *HNS) ListRegistrations(ctx context.Context) (Inventory, error) {
	_, rrs, err := h.meta.Transfer(ctx, h.metaZone)
	if err != nil {
		return Inventory{}, err
	}
	inv := Inventory{
		Contexts: make(map[string]string),
		NSMs:     make(map[string]string),
	}
	ctxSuffix := ".ctx." + h.metaZone
	nsSuffix := ".ns." + h.metaZone
	qcSuffix := ".qc." + h.metaZone
	for _, rr := range rrs {
		if rr.Type != bind.TypeHNSMeta {
			continue
		}
		switch {
		case strings.HasSuffix(rr.Name, ctxSuffix):
			if v, ok := findValue([]bind.RR{rr}, "ns"); ok {
				inv.Contexts[strings.TrimSuffix(rr.Name, ctxSuffix)] = v
			}
		case strings.HasSuffix(rr.Name, nsSuffix):
			inv.NameServices = append(inv.NameServices, strings.TrimSuffix(rr.Name, nsSuffix))
		case strings.HasSuffix(rr.Name, qcSuffix):
			if v, ok := findValue([]bind.RR{rr}, "nsm"); ok {
				key := strings.TrimSuffix(rr.Name, qcSuffix)
				// key is "<queryclass>.<nameservice>"; split at the first
				// label (query classes are single labels).
				if i := strings.IndexByte(key, '.'); i > 0 {
					inv.NSMs[key[:i]+"@"+key[i+1:]] = v
				}
			}
		}
	}
	sort.Strings(inv.NameServices)
	return inv, nil
}
