package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/world"
)

// corrupt injects a raw meta record directly through the meta-BIND's
// dynamic-update interface, bypassing the registration API — simulating a
// buggy or hostile administrator tool.
func corrupt(t *testing.T, w *world.World, name, payload string) {
	t.Helper()
	mc := w.HNS.MetaClient()
	if _, err := mc.Update(context.Background(), world.MetaZone, bind.UpdateAdd,
		bind.HNSMeta(name, payload, 600)); err != nil {
		t.Fatal(err)
	}
	w.HNS.FlushCache()
}

func TestFindNSMMalformedContextRecord(t *testing.T) {
	w := newWorld(t, world.Config{})
	// A context record that has a payload but no ns= pair.
	corrupt(t, w, "broken-ctx.ctx."+world.MetaZone, "garbage-no-equals")
	_, err := w.HNS.FindNSM(context.Background(),
		names.Must("broken-ctx", "x"), qclass.HRPCBinding)
	if !errors.Is(err, core.ErrBadMetaRecord) {
		t.Fatalf("want ErrBadMetaRecord, got %v", err)
	}
}

func TestFindNSMIncompleteNSMRecord(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	// Wire a context and query-class mapping to an NSM whose record set
	// lacks required keys.
	if err := w.HNS.RegisterNameService(ctx, "brittle-ns", "test"); err != nil {
		t.Fatal(err)
	}
	if err := w.HNS.RegisterContext(ctx, "brittle-ctx", "brittle-ns"); err != nil {
		t.Fatal(err)
	}
	corrupt(t, w, "hrpcbinding.brittle-ns.qc."+world.MetaZone, "nsm=halfdone")
	corrupt(t, w, "halfdone.nsm."+world.MetaZone, "host=somewhere.cs.washington.edu")
	// Missing hostctx/port/suite.
	_, err := w.HNS.FindNSM(ctx, names.Must("brittle-ctx", "x"), qclass.HRPCBinding)
	if !errors.Is(err, core.ErrBadMetaRecord) {
		t.Fatalf("want ErrBadMetaRecord, got %v", err)
	}
}

func TestFindNSMBadSuiteRecord(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	if err := w.HNS.RegisterNameService(ctx, "badsuite-ns", "test"); err != nil {
		t.Fatal(err)
	}
	if err := w.HNS.RegisterContext(ctx, "badsuite-ctx", "badsuite-ns"); err != nil {
		t.Fatal(err)
	}
	corrupt(t, w, "hrpcbinding.badsuite-ns.qc."+world.MetaZone, "nsm=badsuite")
	for _, payload := range []string{
		"host=" + world.HostNSM,
		"hostctx=" + world.CtxHostB,
		"port=p",
		"suite=only-two,parts", // malformed: needs three components
	} {
		corrupt(t, w, "badsuite.nsm."+world.MetaZone, payload)
	}
	_, err := w.HNS.FindNSM(ctx, names.Must("badsuite-ctx", "x"), qclass.HRPCBinding)
	if !errors.Is(err, core.ErrBadMetaRecord) {
		t.Fatalf("want ErrBadMetaRecord, got %v", err)
	}
}

func TestFindNSMConcurrent(t *testing.T) {
	w := newWorld(t, world.Config{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				name := world.DesiredServiceName()
				if i%2 == 1 {
					name = world.CourierServiceName()
				}
				if _, err := w.HNS.FindNSM(context.Background(), name, qclass.HRPCBinding); err != nil {
					errs <- fmt.Errorf("worker %d: %w", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := w.HNS.Stats()
	if st.FindNSMCalls != 320 {
		t.Fatalf("FindNSMCalls = %d", st.FindNSMCalls)
	}
}

func TestBoundedMetaCacheStillCorrect(t *testing.T) {
	// A tiny cache bound forces constant eviction; answers stay correct,
	// only slower.
	w := newWorld(t, world.Config{})
	h := w.NewHNS(core.Config{MaxCacheEntries: 2})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		b1, err := h.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := h.FindNSM(ctx, world.CourierServiceName(), qclass.HRPCBinding)
		if err != nil {
			t.Fatal(err)
		}
		if b1.Addr == b2.Addr {
			t.Fatal("worlds conflated under eviction pressure")
		}
	}
	if st := h.Stats(); st.Cache.Misses < 10 {
		t.Fatalf("expected heavy misses under a 2-entry bound, got %+v", st.Cache)
	}
}

func TestConcurrentRegistrationAndLookup(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 32)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			ns := fmt.Sprintf("conc-ns-%d", i)
			if err := w.HNS.RegisterNameService(ctx, ns, "test"); err != nil {
				errs <- err
				return
			}
			if err := w.HNS.RegisterContext(ctx, fmt.Sprintf("conc-ctx-%d", i), ns); err != nil {
				errs <- err
				return
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := w.HNS.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFindNSMTrace(t *testing.T) {
	w := newWorld(t, world.Config{})
	var steps []string
	ctx := core.WithTrace(context.Background(), func(s string) { steps = append(steps, s) })
	if _, err := w.HNS.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	// All six mappings (plus the final resolution line) must appear, in
	// order.
	wantPrefixes := []string{
		"mapping 1:", "mapping 2:", "mapping 3:",
		"mapping 4:", "mapping 5:", "mapping 6:", "resolved:",
	}
	if len(steps) != len(wantPrefixes) {
		t.Fatalf("trace has %d steps: %q", len(steps), steps)
	}
	for i, p := range wantPrefixes {
		if len(steps[i]) < len(p) || steps[i][:len(p)] != p {
			t.Errorf("step %d = %q, want prefix %q", i, steps[i], p)
		}
	}
	// Without a tracer, nothing is recorded (and nothing panics).
	steps = nil
	if _, err := w.HNS.FindNSM(context.Background(), world.DesiredServiceName(), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Fatal("trace leaked into untraced context")
	}
}

// TestFindNSMConsistentAcrossCacheStates: the cache is transparent — the
// binding FindNSM returns must be identical whether every mapping came
// from the wire or from the cache, in either cache mode.
func TestFindNSMConsistentAcrossCacheStates(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	for _, mode := range []bind.CacheMode{bind.CacheDemarshalled, bind.CacheMarshalled} {
		h := w.NewHNS(core.Config{CacheMode: mode})
		for round := 0; round < 4; round++ {
			if round%2 == 0 {
				h.FlushCache()
				w.BindHostNSM.FlushCache()
			}
			for _, q := range []struct {
				name names.Name
				qc   string
			}{
				{world.DesiredServiceName(), qclass.HRPCBinding},
				{world.CourierServiceName(), qclass.HRPCBinding},
				{names.Must(world.CtxMailB, world.MailUserBind), qclass.MailRoute},
			} {
				b, err := h.FindNSM(ctx, q.name, q.qc)
				if err != nil {
					t.Fatalf("mode %v round %d %s: %v", mode, round, q.name, err)
				}
				key := q.name.String() + "/" + q.qc
				if prevB, ok := seenBindings[key]; ok && prevB != b.String() {
					t.Fatalf("binding for %s changed across cache states: %s vs %s",
						key, prevB, b)
				}
				seenBindings[key] = b.String()
			}
		}
	}
}

var seenBindings = map[string]string{}

// TestNoNamingConflictsAcrossWorlds verifies the paper's conflict-freedom
// claim: "no naming conflicts can ever be created in the HNS name space
// when combining previously separate systems." Two independently
// administered worlds both register the very same individual name; under
// the HNS each remains reachable through its own context.
func TestNoNamingConflictsAcrossWorlds(t *testing.T) {
	w := newWorld(t, world.Config{})
	ctx := context.Background()
	// Two synthetic worlds join, each with a host literally named
	// "host.typeN.lab"; use the *same* string in both by adding an extra
	// record to each world's zone through its own name service. The
	// shared local name is "printer" in each world's own syntax.
	if _, err := w.AddSyntheticType(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddSyntheticType(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Both worlds already expose one host each; resolve the same query
	// class through each context and confirm the answers are distinct
	// and correct, with no coordination ever having happened between the
	// two worlds.
	b0, err := w.HNS.FindNSM(ctx, names.Must(world.SyntheticContext(0), world.SyntheticHost(0)), qclass.HostAddress)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := w.HNS.FindNSM(ctx, names.Must(world.SyntheticContext(1), world.SyntheticHost(1)), qclass.HostAddress)
	if err != nil {
		t.Fatal(err)
	}
	if b0.Addr == b1.Addr {
		t.Fatalf("two worlds' NSMs conflated: %v vs %v", b0, b1)
	}
	// And the full HNS names differ even though the naming *pattern* is
	// identical — the context disambiguates, never the individual name.
	n0 := names.Must(world.SyntheticContext(0), "printer.type0.lab")
	n1 := names.Must(world.SyntheticContext(1), "printer.type1.lab")
	if n0.String() == n1.String() {
		t.Fatal("distinct worlds produced identical HNS names")
	}
}
