package core

import (
	"context"
	"sync/atomic"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/transport"
)

// The HNS is "a collection of library routines", so it can be linked with
// any process — including a server process, which is how the remote-HNS
// colocation arrangements of Table 3.1 are built. This file provides that
// wrapping: an HRPC program exposing FindNSM, and a client (RemoteHNS)
// satisfying Finder.

// HNS service program identification.
const (
	HNSProgram uint32 = 300000
	HNSVersion uint32 = 1
)

// Procedure IDs of the HNS program, exported so fronting services (the
// hnsgw gateway) can classify calls without repeating the IDL.
const (
	ProcFindNSMID      uint32 = 1
	ProcFindNSMBatchID uint32 = 2
)

// procFindNSM is the remote FindNSM interface.
//
//	args: {context string, individual string, queryClass string}
//	ret:  {binding}
var procFindNSM = hrpc.Procedure{
	Name: "FindNSM", ID: ProcFindNSMID,
	Args: marshal.TStruct(marshal.TString, marshal.TString, marshal.TString),
	Ret: marshal.TStruct(marshal.TStruct(
		marshal.TString, marshal.TString, marshal.TString, marshal.TString,
		marshal.TString, marshal.TUint32, marshal.TUint32,
	)),
}

// resolveHostArgs builds the argument record for ProcResolveHost calls.
func resolveHostArgs(context, individual string) marshal.Value {
	return marshal.StructV(marshal.Str(context), marshal.Str(individual))
}

// NewFinderServer wraps any Finder in the HNS HRPC program — the local
// library, or another remote HNS (which is how the hnsgw gateway fronts
// a backend: its Finder is a RemoteHNS pointing upstream).
func NewFinderServer(f Finder, name string) *hrpc.Server {
	s := hrpc.NewServer(name, HNSProgram, HNSVersion)
	s.Register(procFindNSM, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		context, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		individual, err := args.Items[1].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		qc, err := args.Items[2].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		n, err := names.New(context, individual)
		if err != nil {
			return marshal.Value{}, err
		}
		b, err := f.FindNSM(ctx, n, qc)
		if err != nil {
			return marshal.Value{}, err
		}
		return marshal.StructV(qclass.BindingValue(b)), nil
	})
	registerFindBatch(s, f)
	return s
}

// NewHNSServer wraps h in its HRPC program.
func NewHNSServer(h *HNS, name string) *hrpc.Server {
	return NewFinderServer(h, name)
}

// ServeHNS binds an HNS server at addr over the Raw suite.
func ServeHNS(net *transport.Network, h *HNS, host, addr string) (transport.Listener, hrpc.Binding, error) {
	return hrpc.Serve(net, NewHNSServer(h, "hns@"+host), hrpc.SuiteRaw, host, addr)
}

// RemoteHNS is a Finder that calls an HNS server over HRPC — the
// "[Client] [HNS ...]" colocation arrangements.
type RemoteHNS struct {
	c *hrpc.Client
	b hrpc.Binding

	// noBatch latches once the server reports FindNSMBatch unavailable:
	// later batches fan out as single calls without re-probing.
	noBatch atomic.Bool
}

// NewRemoteHNS creates a Finder for the HNS served at b.
func NewRemoteHNS(c *hrpc.Client, b hrpc.Binding) *RemoteHNS {
	return &RemoteHNS{c: c, b: b}
}

// Binding reports the server binding in use.
func (r *RemoteHNS) Binding() hrpc.Binding { return r.b }

// FindNSM implements Finder.
func (r *RemoteHNS) FindNSM(ctx context.Context, name names.Name, queryClass string) (hrpc.Binding, error) {
	ret, err := r.c.Call(ctx, r.b, procFindNSM, marshal.StructV(
		marshal.Str(name.Context), marshal.Str(name.Individual), marshal.Str(queryClass),
	))
	if err != nil {
		return hrpc.Binding{}, err
	}
	return qclass.ValueBinding(ret.Items[0])
}

var _ Finder = (*HNS)(nil)
var _ Finder = (*RemoteHNS)(nil)
