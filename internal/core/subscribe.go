package core

// Push-invalidation wiring for the meta-cache. The HNS library keeps
// its MetaClient interface at the paper's four calls — widening it
// would break every implementation (notably shard.Client) — so push is
// discovered by optional interface assertion: a meta client that can
// subscribe exposes Subscribe, and SubscribeMeta wires its
// notifications into cache invalidation. Clients that cannot (sharded,
// old servers, legacy transports) simply keep TTL polling.

import (
	"hns/internal/bind"
	"hns/internal/push"
)

// MetaSubscriber is the optional push face of a MetaClient.
// *bind.HRPCClient implements it; shard.Client deliberately does not
// (its names span many servers — per-shard subscriptions are future
// work tracked in ROADMAP.md).
type MetaSubscriber interface {
	Subscribe(cfg bind.SubscribeConfig) *bind.Subscriber
}

// SubscribeMeta connects the meta-cache to the server's push plane when
// the meta client supports it, reporting whether a subscription was
// started. While the subscription is live:
//
//   - every pushed update invalidates exactly the touched meta name, so
//     the next lookup re-fetches it instead of waiting out its TTL;
//   - refresh-ahead stands down (the push keeps entries fresh), and
//     resumes by itself if the subscription drops;
//   - a continuity loss (reconnect past the server's diff window)
//     flushes the whole meta-cache rather than risk stale entries.
//
// TTL expiry stays on regardless — push narrows the staleness window,
// it never becomes the sole freshness mechanism.
func (h *HNS) SubscribeMeta() bool {
	ms, ok := h.meta.(MetaSubscriber)
	if !ok {
		return false
	}
	sub := ms.Subscribe(bind.SubscribeConfig{
		Zone: h.metaZone,
		OnNotify: func(n push.Notification) {
			if n.Name == "" {
				// Zone-level event (e.g. a secondary refresh landed): the
				// change set is unknown, flush.
				h.FlushCache()
				return
			}
			h.resolver.Invalidate(n.Name, bind.TypeHNSMeta)
			if h.bindings != nil {
				// Any meta change can underlie any memoized binding; the
				// memo layer has no dependency index, so drop it wholesale.
				h.bindings.Purge()
			}
		},
		OnReset: func() { h.FlushCache() },
	})
	h.mu.Lock()
	h.metaSub = sub
	h.mu.Unlock()
	h.resolver.SetPushCovered(sub.Active)
	return true
}

// MetaSubscription exposes the live subscription (nil when none was
// started) — the stats surface reports its state.
func (h *HNS) MetaSubscription() *bind.Subscriber {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.metaSub
}

// UnsubscribeMeta tears down the push subscription (if any) and
// restores timer-driven freshness.
func (h *HNS) UnsubscribeMeta() {
	h.mu.Lock()
	sub := h.metaSub
	h.metaSub = nil
	h.mu.Unlock()
	if sub == nil {
		return
	}
	h.resolver.SetPushCovered(nil)
	sub.Close()
}
