package core

import (
	"context"
	"fmt"
)

// FindNSM step tracing. A TraceFunc installed in the context receives one
// line per data mapping as FindNSM executes, making the paper's six-
// mapping structure observable — hnsbench's Figure 2.1 trace and hnsctl's
// verbose mode use it. Tracing costs nothing when absent.

// TraceFunc receives one trace line per FindNSM step.
type TraceFunc func(step string)

type traceKey struct{}

// WithTrace installs fn as the FindNSM step tracer in ctx.
func WithTrace(ctx context.Context, fn TraceFunc) context.Context {
	return context.WithValue(ctx, traceKey{}, fn)
}

// tracef emits a step line if a tracer is installed.
func tracef(ctx context.Context, format string, args ...any) {
	if fn, ok := ctx.Value(traceKey{}).(TraceFunc); ok && fn != nil {
		fn(fmt.Sprintf(format, args...))
	}
}
