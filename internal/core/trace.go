package core

import (
	"context"
	"fmt"
	"time"
)

// FindNSM step tracing. A tracer installed in the context receives one
// span-style Event per data mapping as FindNSM executes, making the
// paper's six-mapping structure observable — hnsbench's Figure 2.1 trace
// and hnsctl's verbose mode use it. Tracing costs nothing when absent.
//
// The original interface was a bare string callback (TraceFunc); it is
// kept as a compat shim over the structured form and still receives
// exactly one line per mapping step, in the original wording.

// Cache states an Event can report for its step.
const (
	CacheWarm = "warm" // the step was served entirely from cache
	CacheCold = "cold" // the step went to a backend at least once
)

// Event is one FindNSM mapping step.
type Event struct {
	// Step is the step identifier: "mapping 1" … "mapping 6", or
	// "resolved" for the final address line.
	Step string
	// Detail is the human-readable description of what the step mapped.
	Detail string
	// Duration is the simulated time the step consumed (zero when the
	// context carries no simtime meter).
	Duration time.Duration
	// Cache is CacheWarm or CacheCold, by whether the step caused any
	// backend fetches.
	Cache string
}

// String renders the event as the classic one-line trace form.
func (e Event) String() string { return e.Step + ": " + e.Detail }

// EventFunc receives one Event per FindNSM step.
type EventFunc func(Event)

// TraceFunc receives one trace line per FindNSM step (the pre-structured
// interface, kept for hnsbench and hnsctl -v).
type TraceFunc func(step string)

type traceKey struct{}

// WithTracer installs fn as the structured FindNSM step tracer in ctx.
func WithTracer(ctx context.Context, fn EventFunc) context.Context {
	return context.WithValue(ctx, traceKey{}, fn)
}

// WithTrace installs fn as a FindNSM step tracer in ctx. It is the compat
// shim over WithTracer: fn receives each Event flattened to its classic
// one-line form.
func WithTrace(ctx context.Context, fn TraceFunc) context.Context {
	if fn == nil {
		return WithTracer(ctx, nil)
	}
	return WithTracer(ctx, func(e Event) { fn(e.String()) })
}

// tracer returns the installed EventFunc, or nil.
func tracer(ctx context.Context) EventFunc {
	fn, _ := ctx.Value(traceKey{}).(EventFunc)
	return fn
}

// emit delivers a step event if the call carries a tracer. The tracer is
// looked up once per FindNSM call (see stepObs), not per step, and the
// detail line is only formatted when someone is listening.
func (s *stepObs) emit(step string, d time.Duration, cache string, format string, args ...any) {
	if s == nil || s.fn == nil {
		return
	}
	s.fn(Event{
		Step:     step,
		Detail:   fmt.Sprintf(format, args...),
		Duration: d,
		Cache:    cache,
	})
}
