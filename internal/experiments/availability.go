package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/health"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/transport"
	"hns/internal/world"
)

// The availability experiment. The paper's meta-information server "must
// be distributed and replicated for the usual reasons of performance,
// availability, and scalability" — but Section 3 measures only the happy
// path. Here we make the availability claim concrete: run the Table 3.1
// FindNSM workload against a two-replica meta BIND while a chaos plan
// kills, blackholes, and degrades the replicas, and measure what the
// client actually experiences: success rate, failover cost, and how far
// serve-stale carries the service through a total outage.

// Replica and transport names used by the chaos arrangement.
const (
	availPrimary   = "tahoma:bind-hrpc"
	availSecondary = "tahoma2:bind-hrpc"
	availChaos     = "tcp-chaos"
)

// Knobs of the chaos run. Every op first advances the fake clock past the
// meta TTL so each FindNSM re-resolves all six mapping steps against the
// (possibly dead) meta replicas — the hardest case for availability.
const (
	availThreshold = 3                // breaker opens after 3 consecutive failures
	availCooldown  = 40 * time.Minute // breaker cooldown (≈4 ops at one op per TTL)
	availBudget    = time.Second      // per-call retransmission budget
	availGrace     = 24 * time.Hour   // serve-stale ceiling
)

// AvailPhase is one segment of the chaos schedule.
type AvailPhase struct {
	// Name identifies the fault condition ("baseline", "flaky-primary",
	// "primary-down", "recovered", "blackout", "restored").
	Name string
	// Ops and Failures count FindNSM calls in the phase.
	Ops, Failures int
	// MeanCost is the mean simulated cost per op.
	MeanCost time.Duration
	// StaleServed counts meta lookups answered from expired cache
	// entries during the phase.
	StaleServed int64
}

// AvailabilityResult is what the chaos run reports.
type AvailabilityResult struct {
	// Phases is the schedule in order.
	Phases []AvailPhase
	// Ops and Failures total the whole run; SuccessRate = 1 - Failures/Ops.
	Ops, Failures int
	SuccessRate   float64
	// Baseline is the mean per-op cost with both replicas healthy.
	Baseline time.Duration
	// FailoverExtra is the extra cost of the first op after the primary
	// went silent: the retransmission waits spent discovering the
	// failure before the breaker opens.
	FailoverExtra time.Duration
	// StaleServed totals the meta lookups served from expired entries
	// while every replica was unreachable.
	StaleServed int64
	// BreakerOpens, Probes, and Failovers are the health-layer counters:
	// open transitions, half-open probes, and calls answered by a
	// non-primary replica.
	BreakerOpens int64
	Probes       int64
	Failovers    int64
}

// RunAvailability executes the chaos schedule against w. The world must
// have been built with clk as its clock; seed drives the fault plan's
// randomness, so a given (world, seed) pair replays identically.
func RunAvailability(ctx context.Context, w *world.World, clk *simtime.FakeClock, seed int64) (AvailabilityResult, error) {
	var res AvailabilityResult

	// A second meta replica: a standard BIND secondary that mirrors the
	// meta zone by zone transfer, serving the identical HRPC interface.
	sec, err := bind.NewSecondary(w.MetaHRPCClient(), world.MetaZone, "tahoma2", w.Model)
	if err != nil {
		return res, err
	}
	if _, err := sec.Refresh(ctx); err != nil {
		return res, err
	}
	ln, _, err := sec.Server().ServeHRPC(w.Net, availSecondary)
	if err != nil {
		return res, err
	}
	defer ln.Close()

	// The chaos transport: wraps the simulated "tcp" the Raw suite uses,
	// so faults apply to meta traffic and nothing else. Endpoints are
	// listened on the inner transport, so recovery needs no re-binding.
	inner, err := w.Net.Transport("tcp")
	if err != nil {
		return res, err
	}
	plan := transport.NewPlan(seed)
	w.Net.Register(transport.NewChaos(inner, availChaos, plan))

	// The client under test: replica-aware, health-gated, budgeted, and
	// measured on its own registry.
	reg := metrics.NewRegistry()
	mc := hrpc.NewClient(w.Net)
	mc.FreshConn = true // Raw suite discipline: dial per call
	mc.Metrics = reg
	mc.Policy = hrpc.RetryPolicy{Budget: availBudget}
	mc.Health = health.Config{
		Threshold: availThreshold,
		Cooldown:  availCooldown,
		Clock:     clk,
		Metrics:   reg,
		Service:   "meta-bind",
	}
	mc.SetReplicas(availPrimary, availSecondary)

	mb := w.MetaHRPC
	mb.Transport = availChaos
	h := core.New(bind.NewHRPCClient(mc, mb), w.Model, core.Config{
		MetaZone:   world.MetaZone,
		CacheMode:  bind.CacheMarshalled,
		Clock:      clk,
		ServeStale: availGrace,
		RPC:        w.RPC,
		Metrics:    reg,
	})
	h.LinkHostResolver(world.NSBind, w.BindHostNSM)
	h.LinkHostResolver(world.NSCH, w.CHHostNSM)

	name := world.DesiredServiceName()
	op := func() (time.Duration, error) {
		// Step past the meta TTL: every op re-resolves all six mapping
		// lookups, so every op exercises the replicas.
		clk.Advance(time.Duration(core.DefaultMetaTTL+1) * time.Second)
		return simtime.Measure(ctx, func(ctx context.Context) error {
			_, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
			return err
		})
	}
	var opCosts []time.Duration
	phase := func(name string, ops int) AvailPhase {
		p := AvailPhase{Name: name, Ops: ops}
		before := h.Stats().Cache.StaleServed
		var total time.Duration
		opCosts = opCosts[:0]
		for i := 0; i < ops; i++ {
			cost, err := op()
			if err != nil {
				p.Failures++
			}
			total += cost
			opCosts = append(opCosts, cost)
		}
		p.MeanCost = total / time.Duration(ops)
		p.StaleServed = h.Stats().Cache.StaleServed - before
		res.Phases = append(res.Phases, p)
		res.Ops += p.Ops
		res.Failures += p.Failures
		return p
	}

	// Warm the caches once (not counted: it is setup, not workload).
	if _, err := op(); err != nil {
		return res, fmt.Errorf("availability: warmup: %w", err)
	}

	// Phase 1 — baseline: both replicas healthy.
	res.Baseline = phase("baseline", 10).MeanCost

	// Phase 2 — flaky primary: seeded 30% message loss. Retransmission
	// and failover absorb it; the workload must not notice.
	plan.SetLossRate(availPrimary, 0.3)
	phase("flaky-primary", 8)
	plan.SetLossRate(availPrimary, 0)

	// Let any breaker the loss burst opened close again before the next
	// fault: past the cooldown, one (uncounted) op probes the primary
	// back to Closed, so phase 3 measures failover from a clean slate.
	clk.Advance(availCooldown)
	if _, err := op(); err != nil {
		return res, fmt.Errorf("availability: settle: %w", err)
	}

	// Phase 3 — primary silent (blackhole: requests vanish, the
	// worst case for a timeout-based client). The first op pays the
	// retransmission waits until the breaker opens; later ops fail over
	// for free, with an occasional half-open probe when the cooldown
	// elapses.
	plan.Blackhole(availPrimary)
	phase("primary-down", 10)
	res.FailoverExtra = opCosts[0] - res.Baseline

	// Phase 4 — primary recovers. After the cooldown a half-open probe
	// discovers it and the breaker closes; traffic returns to the
	// primary.
	plan.Recover(availPrimary)
	clk.Advance(availCooldown)
	phase("recovered", 5)

	// Phase 5 — total blackout: both replicas silent. Serve-stale is the
	// only thing keeping FindNSM answering: expired meta entries within
	// the grace are served, flagged, and counted.
	plan.Blackhole(availPrimary)
	plan.Blackhole(availSecondary)
	res.StaleServed = phase("blackout", 8).StaleServed

	// Phase 6 — full recovery.
	plan.Recover(availPrimary)
	plan.Recover(availSecondary)
	clk.Advance(availCooldown)
	phase("restored", 5)

	res.SuccessRate = 1 - float64(res.Failures)/float64(res.Ops)
	res.BreakerOpens = sumCounters(reg, "breaker_opens_total")
	res.Probes = sumCounters(reg, "breaker_probes_total")
	res.Failovers = sumCounters(reg, "hrpc_client_failovers_total")
	return res, nil
}

// sumCounters totals every counter series whose name starts with prefix
// (the per-endpoint breaker series carry labels).
func sumCounters(reg *metrics.Registry, prefix string) int64 {
	var total int64
	for _, c := range reg.Snapshot().Counters {
		if strings.HasPrefix(c.Name, prefix) {
			total += c.Value
		}
	}
	return total
}
