package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hns/internal/admission"
	"hns/internal/core"
	"hns/internal/gateway"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// The batch experiment measures the PR's two front-door claims:
//
//   - Amortization: resolving N names in one FindNSMBatch call exchanges
//     a constant number of wire frames where N singles exchange 2N, and
//     at high concurrency that turns into higher sustained names/sec.
//   - Bounded shedding: a crowd of callers against an
//     admission-capped gateway sees the *served* calls' p99 bounded by
//     the in-flight cap (times the backend's service time), while the
//     uncapped arm's p99 grows with the crowd itself.
//
// Frame counts are deterministic (they count code-path events, not
// time); names/sec and the p99 comparison are wall-clock and vary with
// the host.

// BatchSpec parameterizes the batch resolution experiment.
type BatchSpec struct {
	// Names is the batch size compared against the same count of
	// single-name calls.
	Names int
	// Callers and Rounds drive the throughput arms: Callers concurrent
	// goroutines each resolving Rounds batches (or Rounds x Names
	// singles).
	Callers int
	Rounds  int
	// ShedCallers is the crowd size for the shed comparison: every
	// caller places one FindNSM call at once.
	ShedCallers int
	// ShedMaxInflight is the capped arm's admission in-flight cap.
	ShedMaxInflight int
	// ShedHandle is the backend's serialized service time per
	// resolution — the contended resource the cap protects.
	ShedHandle time.Duration
}

// DefaultBatchSpec is the hnsbench configuration: the ISSUE's bench bar
// (64 concurrent callers, batch of 16, a 10,000-caller shed crowd).
func DefaultBatchSpec() BatchSpec {
	return BatchSpec{
		Names:           16,
		Callers:         64,
		Rounds:          8,
		ShedCallers:     10000,
		ShedMaxInflight: 64,
		ShedHandle:      200 * time.Microsecond,
	}
}

// Validate checks the spec.
func (s BatchSpec) Validate() error {
	switch {
	case s.Names < 1 || s.Names > core.MaxFindBatch:
		return fmt.Errorf("experiments: batch names must be in [1, %d]", core.MaxFindBatch)
	case s.Callers < 1 || s.Rounds < 1:
		return fmt.Errorf("experiments: batch callers and rounds must be >= 1")
	case s.ShedCallers < 1 || s.ShedMaxInflight < 1:
		return fmt.Errorf("experiments: shed callers and max-inflight must be >= 1")
	case s.ShedHandle < 0:
		return fmt.Errorf("experiments: shed handle must be >= 0")
	}
	return nil
}

// BatchFrames is the deterministic wire-frame comparison.
type BatchFrames struct {
	Names        int     `json:"names"`
	BatchFrames  int64   `json:"batch_frames"`
	SingleFrames int64   `json:"single_frames"`
	Amortization float64 `json:"amortization"` // SingleFrames / BatchFrames
}

// BatchThroughput is the wall-clock names/sec comparison at Callers
// concurrent goroutines.
type BatchThroughput struct {
	Callers           int     `json:"callers"`
	Rounds            int     `json:"rounds"`
	BatchNamesPerSec  float64 `json:"batch_names_per_sec"`
	SingleNamesPerSec float64 `json:"single_names_per_sec"`
	Speedup           float64 `json:"speedup"`
}

// BatchShed is the wall-clock shed comparison: the same caller crowd
// against an uncapped and an admission-capped gateway.
type BatchShed struct {
	Callers           int     `json:"callers"`
	MaxInflight       int     `json:"max_inflight"`
	UncappedP99Ms     float64 `json:"uncapped_p99_ms"`
	CappedServedP99Ms float64 `json:"capped_served_p99_ms"`
	Served            int     `json:"served"`
	Refused           int64   `json:"refused"`
}

// BatchResult is one full run of the experiment.
type BatchResult struct {
	Frames     BatchFrames     `json:"frames"`
	Throughput BatchThroughput `json:"throughput"`
	Shed       BatchShed       `json:"shed"`
}

// batchStubBinding is the fixed answer the experiment's backend serves;
// the experiment measures the transport and front door, not resolution.
var batchStubBinding = hrpc.Binding{
	Host: "nsm-host", Addr: "nsm:1", Transport: "udp",
	DataRep: "xdr", Control: "sunrpc", Program: 200100, Version: 10,
}

// batchBackend is a Finder whose per-resolution work is serialized real
// time — the contended backend resource the shed arms fight over.
type batchBackend struct {
	mu     sync.Mutex
	handle time.Duration
}

func (b *batchBackend) FindNSM(ctx context.Context, n names.Name, qc string) (hrpc.Binding, error) {
	if b.handle > 0 {
		b.mu.Lock()
		time.Sleep(b.handle)
		b.mu.Unlock()
	}
	return batchStubBinding, nil
}

// batchEnv is one arm's deployment on its own simulated network: a stub
// backend HNS server, optionally fronted by an hnsgw, and a client.
type batchEnv struct {
	remote *core.RemoteHNS
	close  func()
}

func newBatchEnv(handle time.Duration, admit *admission.Config) (*batchEnv, error) {
	n := transport.NewNetwork(simtime.Default())
	n.SetMux(true)
	srv := core.NewFinderServer(&batchBackend{handle: handle}, "batchbench")
	srv.Metrics = metrics.NewRegistry()
	bln, bb, err := hrpc.Serve(n, srv, hrpc.SuiteRaw, "bench", "bench:hns")
	if err != nil {
		return nil, err
	}
	closers := []func(){func() { bln.Close() }}
	fail := func(err error) (*batchEnv, error) {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		return nil, err
	}

	front := bb
	var upstream *hrpc.Client
	if admit != nil {
		upstream = hrpc.NewClient(n)
		upstream.Metrics = metrics.NewRegistry()
		closers = append(closers, func() { upstream.Close() })
		gw := gateway.New(upstream, bb, gateway.Config{Admission: admit})
		gw.SetMetrics(metrics.NewRegistry())
		gln, gb, err := gw.Serve(n, hrpc.SuiteRaw, "gw", "gw:hns")
		if err != nil {
			return fail(err)
		}
		closers = append(closers, func() { gln.Close() })
		front = gb
	}

	c := hrpc.NewClient(n)
	c.Metrics = metrics.NewRegistry()
	closers = append(closers, func() { c.Close() })
	return &batchEnv{
		remote: core.NewRemoteHNS(c, front),
		close: func() {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
		},
	}, nil
}

// batchQueries builds n distinct queries (the stub ignores them; they
// size the frames).
func batchQueries(n int) []core.NameQuery {
	qs := make([]core.NameQuery, n)
	for i := range qs {
		qs[i] = core.NameQuery{
			Name:       names.Must(fmt.Sprintf("ctx%d", i%4), fmt.Sprintf("host%d", i)),
			QueryClass: qclass.HostAddress,
		}
	}
	return qs
}

// framesTotal sums every transport_frames_total series in the process
// registry (the wire transports count frames there regardless of which
// client/server registries an experiment uses).
func framesTotal() int64 {
	var total int64
	for _, c := range metrics.Default().Snapshot().Counters {
		if strings.HasPrefix(c.Name, "transport_frames_total") {
			total += c.Value
		}
	}
	return total
}

// runBatchFrames measures the deterministic frame counts on a warm
// connection: one batch of Names, then the same Names as singles.
func runBatchFrames(ctx context.Context, spec BatchSpec, e *batchEnv) (BatchFrames, error) {
	qs := batchQueries(spec.Names)
	mctx := simtime.WithMeter(ctx, simtime.NewMeter())
	// Warm the pooled connection so dial frames don't skew either arm.
	if _, err := e.remote.FindNSM(mctx, qs[0].Name, qs[0].QueryClass); err != nil {
		return BatchFrames{}, err
	}

	before := framesTotal()
	if _, err := e.remote.FindNSMBatch(mctx, qs); err != nil {
		return BatchFrames{}, err
	}
	batchFrames := framesTotal() - before

	before = framesTotal()
	for _, q := range qs {
		if _, err := e.remote.FindNSM(mctx, q.Name, q.QueryClass); err != nil {
			return BatchFrames{}, err
		}
	}
	singleFrames := framesTotal() - before

	f := BatchFrames{Names: spec.Names, BatchFrames: batchFrames, SingleFrames: singleFrames}
	if batchFrames > 0 {
		f.Amortization = float64(singleFrames) / float64(batchFrames)
	}
	return f, nil
}

// runBatchThroughput drives Callers goroutines through each arm and
// reports sustained names/sec.
func runBatchThroughput(ctx context.Context, spec BatchSpec, e *batchEnv) (BatchThroughput, error) {
	qs := batchQueries(spec.Names)
	arm := func(batched bool) (float64, error) {
		var wg sync.WaitGroup
		errs := make([]error, spec.Callers)
		start := time.Now()
		for i := 0; i < spec.Callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				mctx := simtime.WithMeter(ctx, simtime.NewMeter())
				for r := 0; r < spec.Rounds; r++ {
					if batched {
						if _, err := e.remote.FindNSMBatch(mctx, qs); err != nil {
							errs[i] = err
							return
						}
						continue
					}
					for _, q := range qs {
						if _, err := e.remote.FindNSM(mctx, q.Name, q.QueryClass); err != nil {
							errs[i] = err
							return
						}
					}
				}
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return float64(spec.Callers*spec.Rounds*spec.Names) / wall.Seconds(), nil
	}

	t := BatchThroughput{Callers: spec.Callers, Rounds: spec.Rounds}
	var err error
	if t.SingleNamesPerSec, err = arm(false); err != nil {
		return t, err
	}
	if t.BatchNamesPerSec, err = arm(true); err != nil {
		return t, err
	}
	if t.SingleNamesPerSec > 0 {
		t.Speedup = t.BatchNamesPerSec / t.SingleNamesPerSec
	}
	return t, nil
}

// runShedArm releases ShedCallers concurrent single-name calls at once
// and reports the served calls' p99 wall latency plus the refused count
// (zero in the uncapped arm).
func runShedArm(ctx context.Context, spec BatchSpec, capped bool) (p99 time.Duration, served int, refused int64, err error) {
	var admit *admission.Config
	if capped {
		admit = &admission.Config{
			MaxInflight: spec.ShedMaxInflight,
			// Keep the client's post-shed backpressure window open past
			// the measurement, so refused work stays refused (and cheap).
			RetryAfter: time.Minute,
			Metrics:    metrics.NewRegistry(),
		}
	}
	e, err := newBatchEnv(spec.ShedHandle, admit)
	if err != nil {
		return 0, 0, 0, err
	}
	defer e.close()

	q := batchQueries(1)[0]
	lat := make([]time.Duration, spec.ShedCallers) // 0 = refused
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < spec.ShedCallers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mctx := simtime.WithMeter(ctx, simtime.NewMeter())
			<-release
			start := time.Now()
			if _, err := e.remote.FindNSM(mctx, q.Name, q.QueryClass); err == nil {
				lat[i] = time.Since(start)
			}
		}(i)
	}
	close(release)
	wg.Wait()

	servedLat := make([]time.Duration, 0, spec.ShedCallers)
	for _, d := range lat {
		if d > 0 {
			servedLat = append(servedLat, d)
		}
	}
	served = len(servedLat)
	refused = int64(spec.ShedCallers - served)
	if !capped && refused > 0 {
		return 0, served, refused, fmt.Errorf("experiments: uncapped shed arm refused %d calls", refused)
	}
	if served == 0 {
		return 0, 0, refused, fmt.Errorf("experiments: shed arm served nothing")
	}
	sort.Slice(servedLat, func(i, j int) bool { return servedLat[i] < servedLat[j] })
	p99 = servedLat[int(0.99*float64(len(servedLat)-1)+0.5)]
	return p99, served, refused, nil
}

// RunBatch runs the full experiment: the deterministic frame counts,
// the concurrent throughput comparison, and the shed comparison.
func RunBatch(ctx context.Context, spec BatchSpec) (BatchResult, error) {
	var res BatchResult
	if err := spec.Validate(); err != nil {
		return res, err
	}

	e, err := newBatchEnv(0, nil)
	if err != nil {
		return res, err
	}
	defer e.close()
	if res.Frames, err = runBatchFrames(ctx, spec, e); err != nil {
		return res, fmt.Errorf("experiments: batch frames: %w", err)
	}
	if res.Throughput, err = runBatchThroughput(ctx, spec, e); err != nil {
		return res, fmt.Errorf("experiments: batch throughput: %w", err)
	}

	uncapped, _, _, err := runShedArm(ctx, spec, false)
	if err != nil {
		return res, fmt.Errorf("experiments: uncapped shed arm: %w", err)
	}
	capped, served, refused, err := runShedArm(ctx, spec, true)
	if err != nil {
		return res, fmt.Errorf("experiments: capped shed arm: %w", err)
	}
	res.Shed = BatchShed{
		Callers:           spec.ShedCallers,
		MaxInflight:       spec.ShedMaxInflight,
		UncappedP99Ms:     simMs(uncapped),
		CappedServedP99Ms: simMs(capped),
		Served:            served,
		Refused:           refused,
	}
	return res, nil
}

// BatchDoc is the BENCH_batch.json document.
type BatchDoc struct {
	Schema string `json:"schema"`
	Note   string `json:"note"`
	Spec   struct {
		Names           int     `json:"names"`
		Callers         int     `json:"callers"`
		Rounds          int     `json:"rounds"`
		ShedCallers     int     `json:"shed_callers"`
		ShedMaxInflight int     `json:"shed_max_inflight"`
		ShedHandleMs    float64 `json:"shed_handle_ms"`
	} `json:"spec"`
	Result BatchResult `json:"result"`
}

// BatchSchema identifies the BENCH_batch.json layout; bump it when a
// field changes meaning, not just when a field is added.
const BatchSchema = "hns/bench-batch/v1"

// BuildBatchDoc assembles the document around a measured result.
func BuildBatchDoc(spec BatchSpec, res BatchResult) BatchDoc {
	var doc BatchDoc
	doc.Schema = BatchSchema
	doc.Note = "frame counts are deterministic (code-path events); names/sec and the " +
		"p99 comparison are wall-clock and vary with the host (CI runs in a 1-core container)"
	doc.Spec.Names = spec.Names
	doc.Spec.Callers = spec.Callers
	doc.Spec.Rounds = spec.Rounds
	doc.Spec.ShedCallers = spec.ShedCallers
	doc.Spec.ShedMaxInflight = spec.ShedMaxInflight
	doc.Spec.ShedHandleMs = simMs(spec.ShedHandle)
	doc.Result = res
	return doc
}

// EncodeBatchDoc renders the document as the file's canonical JSON.
func EncodeBatchDoc(doc BatchDoc) ([]byte, error) {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
