package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestBatchDocGolden locks the BENCH_batch.json schema: field names,
// nesting, and ordering. The result is a synthetic fixture, so the
// golden file captures the document layout without depending on the
// host; regenerate with `go test ./internal/experiments -run
// BatchDocGolden -update-golden` when the schema intentionally changes
// (and bump BatchSchema).
func TestBatchDocGolden(t *testing.T) {
	spec := BatchSpec{
		Names:           16,
		Callers:         64,
		Rounds:          8,
		ShedCallers:     10000,
		ShedMaxInflight: 64,
		ShedHandle:      200 * time.Microsecond,
	}
	res := BatchResult{
		Frames: BatchFrames{
			Names: 16, BatchFrames: 2, SingleFrames: 32, Amortization: 16,
		},
		Throughput: BatchThroughput{
			Callers: 64, Rounds: 8,
			BatchNamesPerSec: 250000.5, SingleNamesPerSec: 31000.25, Speedup: 8.06,
		},
		Shed: BatchShed{
			Callers: 10000, MaxInflight: 64,
			UncappedP99Ms: 1980.5, CappedServedP99Ms: 13.25,
			Served: 80, Refused: 9920,
		},
	}
	buf, err := EncodeBatchDoc(BuildBatchDoc(spec, res))
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "BENCH_batch.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Errorf("BENCH_batch.json schema drifted from %s;\ngot:\n%s\nwant:\n%s\n"+
			"(rerun with -update-golden and bump BatchSchema if intentional)",
			golden, buf, want)
	}
}

func TestBatchSpecValidate(t *testing.T) {
	good := DefaultBatchSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default batch spec rejected: %v", err)
	}
	bad := []BatchSpec{
		func() BatchSpec { s := good; s.Names = 0; return s }(),
		func() BatchSpec { s := good; s.Names = 1000; return s }(),
		func() BatchSpec { s := good; s.Callers = 0; return s }(),
		func() BatchSpec { s := good; s.Rounds = 0; return s }(),
		func() BatchSpec { s := good; s.ShedCallers = 0; return s }(),
		func() BatchSpec { s := good; s.ShedMaxInflight = 0; return s }(),
		func() BatchSpec { s := good; s.ShedHandle = -time.Second; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad batch spec %d accepted: %+v", i, s)
		}
	}
}

// smallBatchSpec keeps the experiment fast enough for the ordinary test
// tier; the full DefaultBatchSpec crowd runs in hnsbench and the smoke
// script's shed tier.
func smallBatchSpec() BatchSpec {
	return BatchSpec{
		Names:           16,
		Callers:         8,
		Rounds:          2,
		ShedCallers:     200,
		ShedMaxInflight: 8,
		ShedHandle:      200 * time.Microsecond,
	}
}

// TestRunBatchContracts runs the whole experiment small and asserts the
// PR's bench bar where it is host-independent (frames) and directional
// where it is wall-clock (throughput, shed p99).
func TestRunBatchContracts(t *testing.T) {
	res, err := RunBatch(context.Background(), smallBatchSpec())
	if err != nil {
		t.Fatal(err)
	}

	// The deterministic bar: a batch of 16 must move >= 4x fewer frames
	// than 16 singles (it actually moves 16x fewer — one exchange).
	f := res.Frames
	if f.BatchFrames <= 0 || f.SingleFrames <= 0 {
		t.Fatalf("frame counters did not move: %+v", f)
	}
	if f.Amortization < 4 {
		t.Fatalf("batch amortization %.1fx (batch %d vs single %d frames), want >= 4x",
			f.Amortization, f.BatchFrames, f.SingleFrames)
	}

	// Wall-clock, so directional only: batching a 16-name working set
	// must not be slower than 16 sequential singles per round. One run
	// on a loaded 1-core host can land either way, so an apparent loss
	// gets two re-measurements before it counts.
	tp := res.Throughput
	if tp.BatchNamesPerSec <= 0 || tp.SingleNamesPerSec <= 0 {
		t.Fatalf("throughput arms did not run: %+v", tp)
	}
	for retry := 0; tp.Speedup <= 1 && retry < 2; retry++ {
		t.Logf("batch arm slower than singles (%.2fx), re-measuring", tp.Speedup)
		again, err := RunBatch(context.Background(), smallBatchSpec())
		if err != nil {
			t.Fatal(err)
		}
		tp = again.Throughput
	}
	if tp.Speedup <= 1 {
		t.Errorf("batch arm slower than singles: %.2fx (%+v)", tp.Speedup, tp)
	}

	// The shed bar: the capped arm refuses part of the crowd and its
	// served p99 stays below the uncapped arm's crowd-sized p99.
	sh := res.Shed
	if sh.Served < 1 || sh.Refused < 1 {
		t.Fatalf("capped arm should serve some and refuse some: %+v", sh)
	}
	if sh.CappedServedP99Ms >= sh.UncappedP99Ms {
		t.Errorf("shedding did not bound served p99: capped %.2fms vs uncapped %.2fms",
			sh.CappedServedP99Ms, sh.UncappedP99Ms)
	}
}

// TestBatchFramesDeterministic pins the frames part of the experiment to
// exact values: one warm batch is one request/reply exchange (2 frames),
// singles are one exchange per name.
func TestBatchFramesDeterministic(t *testing.T) {
	spec := smallBatchSpec()
	e, err := newBatchEnv(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.close()
	a, err := runBatchFrames(context.Background(), spec, e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runBatchFrames(context.Background(), spec, e)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("frame counts not deterministic: %+v vs %+v", a, b)
	}
	if a.BatchFrames != 2 {
		t.Fatalf("warm batch moved %d frames, want 2 (one exchange)", a.BatchFrames)
	}
	if a.SingleFrames != int64(2*spec.Names) {
		t.Fatalf("%d singles moved %d frames, want %d", spec.Names, a.SingleFrames, 2*spec.Names)
	}
}

// TestBatchShed10K is the full ISSUE bar at fleet scale: a 10,000-caller
// crowd against the capped front door. scripts/smoke.sh runs it under
// -race; it is skipped in -short runs.
func TestBatchShed10K(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-caller crowd skipped in -short")
	}
	spec := DefaultBatchSpec()
	uncapped, _, _, err := runShedArm(context.Background(), spec, false)
	if err != nil {
		t.Fatal(err)
	}
	capped, served, refused, err := runShedArm(context.Background(), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if served < 1 || refused < 1 {
		t.Fatalf("capped arm should serve some and refuse some: served %d refused %d", served, refused)
	}
	if capped >= uncapped {
		t.Errorf("shedding did not bound served p99 at 10k callers: capped %v vs uncapped %v", capped, uncapped)
	}
}
