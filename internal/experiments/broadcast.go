package experiments

import (
	"context"
	"fmt"
	"time"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/regbaseline"
	"hns/internal/simtime"
	"hns/internal/world"
)

// The broadcast-location ablation (X4): resolve a host name by
// interrogating every subsystem's name server versus the HNS's
// context-directed routing, as the federation grows. This quantifies the
// sentence in §2 rejecting multicast/search-path location.

// BroadcastPoint is one federation size's measurement.
type BroadcastPoint struct {
	// Subsystems is the number of federated name services.
	Subsystems int
	// BroadcastWorst is resolving a name held by the *last* subsystem
	// interrogated (the worst case broadcast pays routinely).
	BroadcastWorst time.Duration
	// BroadcastQueried is how many servers the worst case touched.
	BroadcastQueried int
	// HNSWarm is the HNS resolving the same name with a warm meta-cache.
	HNSWarm time.Duration
	// HNSCold is the same with a cold meta-cache (the honest comparison
	// for a first-ever reference).
	HNSCold time.Duration
}

// RunBroadcast sweeps federation sizes. The world must be fresh; synthetic
// types are integrated as needed.
func RunBroadcast(ctx context.Context, w *world.World, sizes []int) ([]BroadcastPoint, error) {
	var out []BroadcastPoint
	locator := regbaseline.NewBroadcastLocator(w.Model)
	integrated := 0
	for _, target := range sizes {
		for integrated < target {
			if _, err := w.AddSyntheticType(ctx, integrated); err != nil {
				return nil, err
			}
			locator.AddServer(bind.NewStdClient(w.Net, "udp", fmt.Sprintf("type%d:53", integrated)))
			integrated++
		}
		// The target lives in the last-added subsystem — broadcast's
		// worst case, the HNS's indifference.
		lastIdx := integrated - 1
		host := world.SyntheticHost(lastIdx)
		var point BroadcastPoint
		point.Subsystems = integrated

		cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
			addr, queried, err := locator.Resolve(ctx, host)
			if err != nil {
				return err
			}
			if addr == "" {
				return fmt.Errorf("empty address for %s", host)
			}
			point.BroadcastQueried = queried
			return nil
		})
		if err != nil {
			return nil, err
		}
		point.BroadcastWorst = cost

		h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled})
		name := names.Must(world.SyntheticContext(lastIdx), host)
		resolve := func(ctx context.Context) error {
			b, err := h.FindNSM(ctx, name, qclass.HostAddress)
			if err != nil {
				return err
			}
			_, err = nsm.CallResolveHost(ctx, w.RPC, b, name)
			return err
		}
		if point.HNSCold, err = simtime.Measure(ctx, resolve); err != nil {
			return nil, err
		}
		if point.HNSWarm, err = simtime.Measure(ctx, resolve); err != nil {
			return nil, err
		}
		out = append(out, point)
	}
	return out, nil
}
