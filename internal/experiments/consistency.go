package experiments

import (
	"context"
	"time"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/world"
)

// The cache-consistency experiment. The paper accepts TTL-bounded
// staleness: "Cached data is tagged with a time-to-live field for cache
// invalidation. While this simplistic mechanism can cause cache
// consistency problems, it would not make sense to use a more
// sophisticated scheme... Given our assumption that data changes slowly
// over time, we feel that this mechanism will suffice." We make the
// trade-off concrete: after a meta-information change, how long does a
// warm client see the old answer, and what does it see afterwards?

// ConsistencyResult reports the staleness window measurement.
type ConsistencyResult struct {
	// StaleServed reports whether the warm client saw the old NSM
	// binding right after the change (it must — that is the trade-off).
	StaleServed bool
	// Window is how long the stale answer persisted (the record TTL).
	Window time.Duration
	// ConvergedTo is the binding observed after the window.
	ConvergedTo hrpc.Binding
	// Moved is the binding the registration changed to.
	Moved hrpc.Binding
}

// RunConsistency measures the staleness window with a controllable clock.
// The world must have been built with that same clock.
func RunConsistency(ctx context.Context, w *world.World, clk *simtime.FakeClock) (ConsistencyResult, error) {
	var res ConsistencyResult
	h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled})
	name := world.DesiredServiceName()

	before, err := h.FindNSM(ctx, name, qclass.HRPCBinding) // warms the cache
	if err != nil {
		return res, err
	}

	// The NSM moves: administrators re-register it at a new endpoint.
	// (The registering HNS purges its own cache; h is a *different*
	// client and only converges by TTL.)
	if err := w.HNS.UnregisterNSM(ctx, "binding-bind-1", world.NSBind, qclass.HRPCBinding); err != nil {
		return res, err
	}
	moved := core.NSMInfo{
		Name: "binding-bind-2", NameService: world.NSBind, QueryClass: qclass.HRPCBinding,
		Host: world.HostNSM, HostContext: world.CtxHostB,
		Port: world.PortBindingBind + "-moved", Suite: hrpc.SuiteSunRPC,
	}
	if err := w.HNS.RegisterNSM(ctx, moved); err != nil {
		return res, err
	}

	// Immediately after: the warm client still gets the old answer.
	stale, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
	if err != nil {
		return res, err
	}
	res.StaleServed = stale == before

	// Advance past the TTL: the client converges.
	res.Window = time.Duration(core.DefaultMetaTTL) * time.Second
	clk.Advance(res.Window + time.Second)
	after, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
	if err != nil {
		return res, err
	}
	res.ConvergedTo = after
	res.Moved = hrpc.SuiteSunRPC.Bind(world.HostNSM, "june:"+moved.Port,
		qclass.ProgHRPCBinding, qclass.NSMVersion)

	// Restore the original registration so the world stays usable.
	if err := w.HNS.UnregisterNSM(ctx, "binding-bind-2", world.NSBind, qclass.HRPCBinding); err != nil {
		return res, err
	}
	err = w.HNS.RegisterNSM(ctx, core.NSMInfo{
		Name: "binding-bind-1", NameService: world.NSBind, QueryClass: qclass.HRPCBinding,
		Host: world.HostNSM, HostContext: world.CtxHostB,
		Port: world.PortBindingBind, Suite: hrpc.SuiteSunRPC,
	})
	return res, err
}
