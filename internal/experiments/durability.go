package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hns/internal/bind"
	"hns/internal/simtime"
	"hns/internal/store"
)

// The durability experiment measures what crash safety costs and what
// checkpoints buy, on a real directory (store.DirFS over an os.MkdirTemp
// dir — the same path bindd -data-dir takes):
//
//   - Fsync policy: updates/sec through the full journaled Update path
//     under -fsync=always (one fsync per acked update — the
//     exact-acked-prefix guarantee), interval, and never.
//   - Recovery: wall-clock reopen time as the WAL grows, with snapshots
//     off (replay everything) and on (replay only the suffix past the
//     newest checkpoint).
//
// Replayed counts and snapshot positions are deterministic; updates/sec
// and recovery milliseconds are wall-clock and vary with the host disk.

// DurabilitySpec parameterizes the durability experiment.
type DurabilitySpec struct {
	// Updates is the journaled update count per fsync-policy arm.
	Updates int
	// RecoverySteps are the WAL lengths (in records) at which recovery
	// is timed.
	RecoverySteps []int
	// SnapshotEvery is the checkpoint interval of the snapshotted
	// recovery arm.
	SnapshotEvery int
	// WorkingSet is the live zone size: updates cycle through this many
	// names, so past the first WorkingSet they are re-registration
	// refreshes — the churn a name service actually sees — and history
	// grows while the zone does not.
	WorkingSet int
}

// DefaultDurabilitySpec is the hnsbench configuration.
func DefaultDurabilitySpec() DurabilitySpec {
	return DurabilitySpec{
		Updates:       2000,
		RecoverySteps: []int{100, 1000, 5000},
		SnapshotEvery: 256,
		WorkingSet:    256,
	}
}

// Validate checks the spec.
func (s DurabilitySpec) Validate() error {
	switch {
	case s.Updates < 1:
		return fmt.Errorf("experiments: durability updates must be >= 1")
	case len(s.RecoverySteps) == 0:
		return fmt.Errorf("experiments: durability needs at least one recovery step")
	case s.SnapshotEvery < 1:
		return fmt.Errorf("experiments: durability snapshot-every must be >= 1")
	case s.WorkingSet < 1:
		return fmt.Errorf("experiments: durability working set must be >= 1")
	}
	for _, n := range s.RecoverySteps {
		if n < 1 {
			return fmt.Errorf("experiments: durability recovery steps must be >= 1")
		}
	}
	return nil
}

// DurabilityFsyncRow is one fsync policy's throughput measurement.
type DurabilityFsyncRow struct {
	Policy        string  `json:"policy"`
	Updates       int     `json:"updates"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Fsyncs        int64   `json:"fsyncs"`
}

// DurabilityRecoveryRow is one reopen timing: a WAL of WALRecords
// records, recovered with or without checkpoints.
type DurabilityRecoveryRow struct {
	WALRecords  int     `json:"wal_records"`
	Snapshotted bool    `json:"snapshotted"`
	SnapshotLSN uint64  `json:"snapshot_lsn"`
	Replayed    int     `json:"replayed"`
	RecoveryMs  float64 `json:"recovery_ms"`
}

// DurabilityResult is one full run of the experiment.
type DurabilityResult struct {
	Fsync    []DurabilityFsyncRow    `json:"fsync"`
	Recovery []DurabilityRecoveryRow `json:"recovery"`
}

// durableEnv is one arm's durable single-zone server on its own temp
// directory — the bindd startup sequence over DirFS.
type durableEnv struct {
	srv *bind.Server
	d   *bind.Durable
	dir string
}

// openDurableEnv opens (or reopens) a durable server over dir.
func openDurableEnv(dir string, cfg bind.DurableConfig) (*durableEnv, error) {
	fs, err := store.DirFS(dir)
	if err != nil {
		return nil, err
	}
	cfg.FS = fs
	d, err := bind.OpenDurable(cfg)
	if err != nil {
		return nil, err
	}
	srv := bind.NewServer("durbench", simtime.Default())
	z, err := bind.NewZone("hns", true)
	if err != nil {
		d.Close()
		return nil, err
	}
	if err := srv.AddZone(z); err != nil {
		d.Close()
		return nil, err
	}
	for _, rz := range d.Zones() {
		target := srv.Zone(rz.Origin)
		if target == nil {
			d.Close()
			return nil, fmt.Errorf("experiments: recovered unknown zone %s", rz.Origin)
		}
		if err := target.Replace(rz.Records, rz.Serial); err != nil {
			d.Close()
			return nil, err
		}
	}
	d.Attach(srv)
	return &durableEnv{srv: srv, d: d, dir: dir}, nil
}

// storm drives n acked updates through the journaled Update path,
// cycling a working set of ws names: past the first ws, each update is
// a re-registration refresh of a live name, so the zone stays at ws
// records while the journal keeps growing.
func (e *durableEnv) storm(ctx context.Context, n, ws int) error {
	for i := 0; i < n; i++ {
		rr := bind.A(fmt.Sprintf("h%d.hns", i%ws), fmt.Sprintf("10.0.%d.%d", i%ws/200, i%ws%200), 60)
		rcode, _, err := e.srv.Update(ctx, "hns", bind.UpdateAdd, rr)
		if err != nil {
			return err
		}
		if rcode != bind.RCodeOK {
			return fmt.Errorf("experiments: update %d refused: %v", i, rcode)
		}
	}
	return nil
}

// runDurabilityFsync times spec.Updates acked updates under each flush
// policy, each on its own fresh directory.
func runDurabilityFsync(ctx context.Context, spec DurabilitySpec) ([]DurabilityFsyncRow, error) {
	rows := make([]DurabilityFsyncRow, 0, 3)
	for _, policy := range []store.SyncPolicy{store.SyncAlways, store.SyncInterval, store.SyncNever} {
		dir, err := os.MkdirTemp("", "hns-durable-fsync-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		e, err := openDurableEnv(dir, bind.DurableConfig{
			Fsync:         policy,
			FsyncInterval: 5 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := e.storm(ctx, spec.Updates, spec.WorkingSet); err != nil {
			e.d.Close()
			return nil, err
		}
		wall := time.Since(start)
		syncs := e.d.LogStats().Syncs
		if err := e.d.Close(); err != nil {
			return nil, err
		}
		rows = append(rows, DurabilityFsyncRow{
			Policy:        policy.String(),
			Updates:       spec.Updates,
			UpdatesPerSec: float64(spec.Updates) / wall.Seconds(),
			Fsyncs:        syncs,
		})
	}
	return rows, nil
}

// runDurabilityRecovery times reopening a WAL of n records, with
// checkpoints off and on, for each spec step.
func runDurabilityRecovery(ctx context.Context, spec DurabilitySpec) ([]DurabilityRecoveryRow, error) {
	rows := make([]DurabilityRecoveryRow, 0, 2*len(spec.RecoverySteps))
	for _, n := range spec.RecoverySteps {
		for _, snapshotted := range []bool{false, true} {
			dir, err := os.MkdirTemp("", "hns-durable-recover-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			// Small segments so checkpoints can actually prune covered
			// history; both arms rotate identically.
			cfg := bind.DurableConfig{Fsync: store.SyncNever, SegmentBytes: 4096}
			if snapshotted {
				cfg.SnapshotEvery = spec.SnapshotEvery
			}
			e, err := openDurableEnv(dir, cfg)
			if err != nil {
				return nil, err
			}
			if err := e.storm(ctx, n, spec.WorkingSet); err != nil {
				e.d.Close()
				return nil, err
			}
			if err := e.d.Close(); err != nil {
				return nil, err
			}

			// The measured reopen replays with the same checkpoint config.
			e2, err := openDurableEnv(dir, cfg)
			if err != nil {
				return nil, err
			}
			st := e2.d.Stats()
			want := n
			if want > spec.WorkingSet {
				want = spec.WorkingSet
			}
			if got := e2.srv.Zone("hns").Count(); got != want {
				e2.d.Close()
				return nil, fmt.Errorf("experiments: recovered %d records, want %d", got, want)
			}
			if err := e2.d.Close(); err != nil {
				return nil, err
			}
			rows = append(rows, DurabilityRecoveryRow{
				WALRecords:  n,
				Snapshotted: snapshotted,
				SnapshotLSN: st.SnapshotLSN,
				Replayed:    st.Replayed,
				RecoveryMs:  simMs(st.Elapsed),
			})
		}
	}
	return rows, nil
}

// RunDurability runs the full experiment: fsync-policy throughput, then
// recovery time against WAL length.
func RunDurability(ctx context.Context, spec DurabilitySpec) (DurabilityResult, error) {
	var res DurabilityResult
	if err := spec.Validate(); err != nil {
		return res, err
	}
	var err error
	if res.Fsync, err = runDurabilityFsync(ctx, spec); err != nil {
		return res, fmt.Errorf("experiments: durability fsync arm: %w", err)
	}
	if res.Recovery, err = runDurabilityRecovery(ctx, spec); err != nil {
		return res, fmt.Errorf("experiments: durability recovery arm: %w", err)
	}
	return res, nil
}

// DurabilityDoc is the BENCH_durable.json document.
type DurabilityDoc struct {
	Schema string `json:"schema"`
	Note   string `json:"note"`
	Spec   struct {
		Updates       int   `json:"updates"`
		RecoverySteps []int `json:"recovery_steps"`
		SnapshotEvery int   `json:"snapshot_every"`
		WorkingSet    int   `json:"working_set"`
	} `json:"spec"`
	Result DurabilityResult `json:"result"`
}

// DurabilitySchema identifies the BENCH_durable.json layout; bump it
// when a field changes meaning, not just when a field is added.
const DurabilitySchema = "hns/bench-durable/v1"

// BuildDurabilityDoc assembles the document around a measured result.
func BuildDurabilityDoc(spec DurabilitySpec, res DurabilityResult) DurabilityDoc {
	var doc DurabilityDoc
	doc.Schema = DurabilitySchema
	doc.Note = "replayed counts and snapshot positions are deterministic; updates/sec and " +
		"recovery ms are wall-clock against the host disk (CI runs in a 1-core container)"
	doc.Spec.Updates = spec.Updates
	doc.Spec.RecoverySteps = spec.RecoverySteps
	doc.Spec.SnapshotEvery = spec.SnapshotEvery
	doc.Spec.WorkingSet = spec.WorkingSet
	doc.Result = res
	return doc
}

// EncodeDurabilityDoc renders the document as the file's canonical JSON.
func EncodeDurabilityDoc(doc DurabilityDoc) ([]byte, error) {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
