package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestDurabilityDocGolden locks the BENCH_durable.json schema: field
// names, nesting, and ordering. The result is a synthetic fixture, so
// the golden file captures the document layout without depending on the
// host; regenerate with `go test ./internal/experiments -run
// DurabilityDocGolden -update-golden` when the schema intentionally
// changes (and bump DurabilitySchema).
func TestDurabilityDocGolden(t *testing.T) {
	spec := DefaultDurabilitySpec()
	res := DurabilityResult{
		Fsync: []DurabilityFsyncRow{
			{Policy: "always", Updates: 2000, UpdatesPerSec: 4200.5, Fsyncs: 2000},
			{Policy: "interval", Updates: 2000, UpdatesPerSec: 61000.25, Fsyncs: 12},
			{Policy: "never", Updates: 2000, UpdatesPerSec: 88000.75, Fsyncs: 0},
		},
		Recovery: []DurabilityRecoveryRow{
			{WALRecords: 100, Snapshotted: false, SnapshotLSN: 0, Replayed: 100, RecoveryMs: 0.4},
			{WALRecords: 100, Snapshotted: true, SnapshotLSN: 0, Replayed: 100, RecoveryMs: 0.4},
			{WALRecords: 1000, Snapshotted: false, SnapshotLSN: 0, Replayed: 1000, RecoveryMs: 3.1},
			{WALRecords: 1000, Snapshotted: true, SnapshotLSN: 768, Replayed: 232, RecoveryMs: 1.2},
			{WALRecords: 5000, Snapshotted: false, SnapshotLSN: 0, Replayed: 5000, RecoveryMs: 15.9},
			{WALRecords: 5000, Snapshotted: true, SnapshotLSN: 4864, Replayed: 136, RecoveryMs: 1.4},
		},
	}
	buf, err := EncodeDurabilityDoc(BuildDurabilityDoc(spec, res))
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "BENCH_durable.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Errorf("BENCH_durable.json schema drifted from %s;\ngot:\n%s\nwant:\n%s\n"+
			"(rerun with -update-golden and bump DurabilitySchema if intentional)",
			golden, buf, want)
	}
}

func TestDurabilitySpecValidate(t *testing.T) {
	good := DefaultDurabilitySpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default durability spec rejected: %v", err)
	}
	bad := []DurabilitySpec{
		func() DurabilitySpec { s := good; s.Updates = 0; return s }(),
		func() DurabilitySpec { s := good; s.RecoverySteps = nil; return s }(),
		func() DurabilitySpec { s := good; s.RecoverySteps = []int{100, 0}; return s }(),
		func() DurabilitySpec { s := good; s.SnapshotEvery = 0; return s }(),
		func() DurabilitySpec { s := good; s.WorkingSet = 0; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad durability spec %d accepted: %+v", i, s)
		}
	}
}

// smallDurabilitySpec keeps the experiment fast enough for the ordinary
// test tier; the full DefaultDurabilitySpec runs in hnsbench.
func smallDurabilitySpec() DurabilitySpec {
	return DurabilitySpec{
		Updates:       64,
		RecoverySteps: []int{20, 120},
		SnapshotEvery: 32,
		WorkingSet:    16,
	}
}

// TestRunDurabilityContracts runs the whole experiment small and asserts
// the deterministic parts exactly (fsync counts under always/never,
// replayed counts, checkpoint positions) and the wall-clock parts only
// for presence.
func TestRunDurabilityContracts(t *testing.T) {
	spec := smallDurabilitySpec()
	res, err := RunDurability(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Fsync) != 3 {
		t.Fatalf("fsync arm rows: %+v", res.Fsync)
	}
	byPolicy := map[string]DurabilityFsyncRow{}
	for _, r := range res.Fsync {
		byPolicy[r.Policy] = r
		if r.UpdatesPerSec <= 0 || r.Updates != spec.Updates {
			t.Fatalf("fsync row did not run: %+v", r)
		}
	}
	// -fsync=always is one flush per acked update; never leaves flushing
	// to Close.
	if got := byPolicy["always"].Fsyncs; got != int64(spec.Updates) {
		t.Errorf("always fsyncs = %d, want %d", got, spec.Updates)
	}
	if got := byPolicy["never"].Fsyncs; got != 0 {
		t.Errorf("never fsyncs = %d, want 0", got)
	}

	if len(res.Recovery) != 2*len(spec.RecoverySteps) {
		t.Fatalf("recovery arm rows: %+v", res.Recovery)
	}
	for _, r := range res.Recovery {
		if !r.Snapshotted {
			// No checkpoints: recovery replays the whole log.
			if r.SnapshotLSN != 0 || r.Replayed != r.WALRecords {
				t.Errorf("unsnapshotted recovery row off: %+v", r)
			}
			continue
		}
		// Checkpoints cover the largest multiple of SnapshotEvery; replay
		// is only the suffix.
		wantLSN := uint64(r.WALRecords / spec.SnapshotEvery * spec.SnapshotEvery)
		if r.SnapshotLSN != wantLSN || r.Replayed != r.WALRecords-int(wantLSN) {
			t.Errorf("snapshotted recovery row off (want snapshot at %d): %+v", wantLSN, r)
		}
	}
}
