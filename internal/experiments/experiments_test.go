package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"hns/internal/bind"
	"hns/internal/simtime"
	"hns/internal/world"
)

func newWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.New(world.Config{CacheMode: bind.CacheMarshalled})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func within(t *testing.T, name string, got time.Duration, wantMS, tolPct float64) {
	t.Helper()
	g := ms(got)
	if g < wantMS*(1-tolPct) || g > wantMS*(1+tolPct) {
		t.Errorf("%s = %.2f ms, want %.2f ± %.0f%%", name, g, wantMS, tolPct*100)
	}
}

func TestRunTable32ShapeAndAnchors(t *testing.T) {
	w := newWorld(t)
	rows, err := RunTable32(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		p := PaperTable32[r.Records]
		if !(r.DemarshalledHit < r.MarshalledHit && r.MarshalledHit < r.Miss) {
			t.Errorf("%dRR: ordering broken: %.2f/%.2f/%.2f",
				r.Records, ms(r.Miss), ms(r.MarshalledHit), ms(r.DemarshalledHit))
		}
		within(t, "marshalled hit", r.MarshalledHit, p[1], 0.10)
		within(t, "demarshalled hit", r.DemarshalledHit, p[2], 0.10)
		// Miss tolerance is looser: our colocated path keeps the Raw
		// control overhead (see EXPERIMENTS.md).
		within(t, "miss", r.Miss, p[0], 0.25)
	}
	if rows[1].Miss <= rows[0].Miss || rows[1].MarshalledHit <= rows[0].MarshalledHit {
		t.Error("costs must grow with record count")
	}
}

func TestRunFindNSM(t *testing.T) {
	w := newWorld(t)
	res, err := RunFindNSM(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "FindNSM hit", res.Hit, 88, 0.10)
	if res.Miss < 4*res.Hit {
		t.Errorf("caching speedup %.1fx too small", float64(res.Miss)/float64(res.Hit))
	}
}

func TestRunNSMCalls(t *testing.T) {
	w := newWorld(t)
	res, err := RunNSMCalls(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.SunRPC >= res.Courier {
		t.Errorf("Sun (%v) must be cheaper than Courier (%v)", res.SunRPC, res.Courier)
	}
	if ms(res.SunRPC) < 18 || ms(res.Courier) > 50 {
		t.Errorf("calls outside plausible band: %v / %v", res.SunRPC, res.Courier)
	}
}

func TestRunUnderlying(t *testing.T) {
	w := newWorld(t)
	res, err := RunUnderlying(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "BIND", res.Bind, 27, 0.10)
	within(t, "Clearinghouse", res.Clearinghouse, 156, 0.10)
}

func TestRunBaselines(t *testing.T) {
	w := newWorld(t)
	res, err := RunBaselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "files", res.FileReg, 200, 0.10)
	within(t, "rereg-CH", res.CHReg, 166, 0.10)
	// The paper's conclusion: tuned HNS ≲ homogeneous alternatives, and
	// the HNS spans both sides of the baselines.
	if res.HNSBest >= res.CHReg {
		t.Errorf("tuned HNS (%v) should beat the reregistered CH (%v)", res.HNSBest, res.CHReg)
	}
	if res.HNSWorst <= res.FileReg {
		t.Errorf("cold remote HNS (%v) should exceed the file baseline (%v)", res.HNSWorst, res.FileReg)
	}
}

func TestRunPreload(t *testing.T) {
	w := newWorld(t)
	res, err := RunPreload(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "preload", res.Cost, 390, 0.15)
	if res.Bytes < 500 || res.Bytes > 8000 {
		t.Errorf("preload size %d bytes not at the paper's ~2 KB scale", res.Bytes)
	}
	// "preloading seems to be effective in situations where two or more
	// calls to the HNS for different context/query classes will be made":
	// cost must land between one and two cold FindNSMs.
	breakEven := float64(res.Cost) / float64(res.MissWithout-res.HitAfter)
	if breakEven < 1 || breakEven > 2 {
		t.Errorf("preload break-even at %.2f calls, want between 1 and 2", breakEven)
	}
}

func TestRunBreakEven(t *testing.T) {
	w := newWorld(t)
	res, err := RunBreakEven(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 11% and 42%.
	if res.QHNS < 0.08 || res.QHNS > 0.16 {
		t.Errorf("HNS break-even %.3f, want ≈0.11", res.QHNS)
	}
	if res.QNSM < 0.35 || res.QNSM > 0.50 {
		t.Errorf("NSM break-even %.3f, want ≈0.42", res.QNSM)
	}
	if res.QNSM < 2*res.QHNS {
		t.Error("remote NSMs must need a much larger hit-rate edge than a remote HNS")
	}
}

func TestRunMarshalling(t *testing.T) {
	w := newWorld(t)
	rows := RunMarshalling(context.Background(), w)
	for _, r := range rows {
		within(t, "hand", r.Hand, PaperMarshalling[r.Records], 0.05)
		if r.Generated < 5*r.Hand {
			t.Errorf("%dRR: generated (%v) not ≫ hand (%v)", r.Records, r.Generated, r.Hand)
		}
	}
}

func TestRunFigure21(t *testing.T) {
	w := newWorld(t)
	var buf bytes.Buffer
	if err := RunFigure21(context.Background(), w, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Clearinghouse NSM", "BIND NSM", "identical HRPCBinding interface",
		"hello from the client",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureNSMSources(t *testing.T) {
	sizes, err := MeasureNSMSources()
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	for _, s := range sizes {
		// Each NSM file should be the same order of magnitude as the
		// paper's 230-line NSMs.
		if s.Lines < 40 || s.Lines > 600 {
			t.Errorf("%s = %d lines, outside the paper's order of magnitude", s.File, s.Lines)
		}
	}
}

func TestCountCodeLines(t *testing.T) {
	src := "package x\n\n// comment\n/* block\ncomment */\nfunc f() {}\n"
	// Counted: package, func. Not counted: blank, line comment, block
	// comment lines. (Lines *starting* with a block comment count as
	// comments even if code trails the close — an accepted approximation
	// for this report.)
	if got := countCodeLines(src); got != 2 {
		t.Fatalf("countCodeLines = %d, want 2", got)
	}
}

func TestRunScaling(t *testing.T) {
	w := newWorld(t)
	points, err := RunScaling(context.Background(), w, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	// Integration cost is O(1) in the number of existing types.
	ratio := float64(last.IntegrationCost) / float64(first.IntegrationCost)
	if ratio > 1.1 || ratio < 0.9 {
		t.Errorf("integration cost changed %.2fx with federation size", ratio)
	}
	// FindNSM stays flat as types are added (within 10%).
	ratio = float64(last.FindCold) / float64(first.FindCold)
	if ratio > 1.1 || ratio < 0.9 {
		t.Errorf("cold FindNSM scaled %.2fx with federation size", ratio)
	}
	if last.FindWarm > first.FindWarm*2 {
		t.Errorf("warm FindNSM degraded: %v -> %v", first.FindWarm, last.FindWarm)
	}
	// Meta-zone growth is linear in types, a handful of records each —
	// not in names (each type's own namespace stays in its own service).
	perType := float64(last.MetaRecords-first.MetaRecords) / 7
	if perType > 8 {
		t.Errorf("meta records per type = %.1f, want a small constant", perType)
	}
	// The new types actually resolve.
	if last.FindCold == 0 || last.FindWarm == 0 {
		t.Error("zero measurements")
	}
}

func TestRunConsistency(t *testing.T) {
	clk := simtime.NewFakeClock(time.Now())
	w, err := world.New(world.Config{Clock: clk, CacheMode: bind.CacheMarshalled})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	res, err := RunConsistency(context.Background(), w, clk)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StaleServed {
		t.Error("warm client did not see the stale binding — TTL semantics broken")
	}
	if res.Window <= 0 {
		t.Errorf("window = %v", res.Window)
	}
	if res.ConvergedTo.Addr != res.Moved.Addr {
		t.Errorf("converged to %v, want %v", res.ConvergedTo, res.Moved)
	}
}

func TestRunAvailability(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(563328000, 0))
	w, err := world.New(world.Config{Clock: clk, CacheMode: bind.CacheMarshalled})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	res, err := RunAvailability(context.Background(), w, clk, 1987)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: the workload survives a dead replica — and
	// here even a total blackout — at ≥ 99% success.
	if res.SuccessRate < 0.99 {
		t.Errorf("success rate %.3f, want >= 0.99 (%d/%d failed)",
			res.SuccessRate, res.Failures, res.Ops)
	}
	if res.Ops < 40 {
		t.Errorf("ops = %d, schedule too small to mean anything", res.Ops)
	}
	// Failover discovery is bounded by the breaker threshold: at most
	// Threshold retransmission waits over baseline, and strictly more
	// than zero (the first op after the kill must pay something).
	maxExtra := time.Duration(availThreshold) * 250 * time.Millisecond
	if res.FailoverExtra <= 0 || res.FailoverExtra > maxExtra+availBudget {
		t.Errorf("failover extra = %v, want in (0, %v]", res.FailoverExtra, maxExtra+availBudget)
	}
	// The blackout phase is carried entirely by serve-stale.
	if res.StaleServed == 0 {
		t.Error("no stale serves during the blackout — degraded mode never engaged")
	}
	// Breakers must have opened for the primary kill and the blackout.
	if res.BreakerOpens < 2 {
		t.Errorf("breaker opens = %d, want >= 2", res.BreakerOpens)
	}
	if res.Probes == 0 {
		t.Error("no half-open probes — recovery was never attempted")
	}
	if res.Failovers == 0 {
		t.Error("no failovers — the secondary never answered")
	}
	// Phase shape: steady failover should not cost an order of magnitude
	// over baseline (the breaker keeps dead-replica waits off the path).
	for _, p := range res.Phases {
		if p.Name == "restored" && p.Failures > 0 {
			t.Errorf("failures after full recovery: %d", p.Failures)
		}
	}
	// Determinism: the same seed replays the same schedule.
	clk2 := simtime.NewFakeClock(time.Unix(563328000, 0))
	w2, err := world.New(world.Config{Clock: clk2, CacheMode: bind.CacheMarshalled})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	res2, err := RunAvailability(context.Background(), w2, clk2, 1987)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SuccessRate != res.SuccessRate || res2.FailoverExtra != res.FailoverExtra ||
		res2.StaleServed != res.StaleServed || res2.BreakerOpens != res.BreakerOpens {
		t.Errorf("same seed diverged: %+v vs %+v", res, res2)
	}
}

func TestRunBroadcast(t *testing.T) {
	w := newWorld(t)
	points, err := RunBroadcast(context.Background(), w, []int{2, 8, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	small, mid, large := points[0], points[1], points[2]
	// Broadcast interrogates every subsystem in the worst case.
	if small.BroadcastQueried != 2 || mid.BroadcastQueried != 8 || large.BroadcastQueried != 24 {
		t.Fatalf("queried = %d/%d/%d", small.BroadcastQueried, mid.BroadcastQueried, large.BroadcastQueried)
	}
	// Its cost grows linearly with federation size; the HNS's does not.
	if large.BroadcastWorst < 10*small.BroadcastWorst {
		t.Errorf("broadcast cost not linear: %v -> %v", small.BroadcastWorst, large.BroadcastWorst)
	}
	ratio := float64(large.HNSCold) / float64(small.HNSCold)
	if ratio > 1.1 || ratio < 0.9 {
		t.Errorf("HNS cold cost scaled %.2fx with federation size", ratio)
	}
	// The crossover: broadcast wins tiny federations even against a warm
	// HNS's first op, but a warm HNS beats it from ~6 subsystems on, and
	// by ~17 subsystems even a stone-cold HNS wins — "too inefficient in
	// our environment" is a statement about growth.
	if mid.HNSWarm >= mid.BroadcastWorst {
		t.Errorf("warm HNS (%v) not below 8-subsystem broadcast (%v)", mid.HNSWarm, mid.BroadcastWorst)
	}
	if large.HNSCold >= large.BroadcastWorst {
		t.Errorf("cold HNS (%v) not below 24-subsystem broadcast (%v)", large.HNSCold, large.BroadcastWorst)
	}
	if large.HNSWarm >= large.BroadcastWorst/3 {
		t.Errorf("warm HNS (%v) not ≪ 24-subsystem broadcast (%v)", large.HNSWarm, large.BroadcastWorst)
	}
}

// TestRunMuxThroughput is a fast variant of the hnsbench experiment:
// multiplexing must beat the serialized wire by a wide margin once
// callers contend for one endpoint, while each arm's warm per-call
// simulated cost stays identical — concurrency changes scheduling,
// never the cost model. (The default spec's 64-caller point is the
// ISSUE's ≥3x acceptance bar; this uses a smaller spec to keep the
// suite quick and asserts the conservative ≥2x.)
func TestRunMuxThroughput(t *testing.T) {
	spec := MuxThroughputSpec{
		Handle:      2 * time.Millisecond,
		SimCost:     3 * time.Millisecond,
		Calls:       64,
		Concurrency: []int{8},
	}
	points, err := RunMuxThroughput(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	p := points[0]
	if p.SimWarmSerial != p.SimWarmMux {
		t.Errorf("warm per-call simulated cost differs across arms: serial %v, mux %v",
			p.SimWarmSerial, p.SimWarmMux)
	}
	if p.SimWarmSerial < spec.SimCost {
		t.Errorf("warm call charged %v, below the handler's %v", p.SimWarmSerial, spec.SimCost)
	}
	if p.Speedup < 2 {
		t.Errorf("mux speedup at %d callers = %.2fx (serial %.0f ops/s, mux %.0f ops/s), want ≥2x",
			p.Goroutines, p.Speedup, p.SerialOps, p.MuxOps)
	}
}
