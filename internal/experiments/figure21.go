package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"hns/internal/core"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/world"
)

// RunFigure21 reproduces Figure 2.1, "HNS Query Processing", as an
// executed trace: a client presents an HNS name whose data lives in the
// Clearinghouse and is handed a handle to the Clearinghouse NSM; a
// subsequent query for a name in BIND is routed to the BIND NSM — through
// the identical query-class interface, so the client code is the same
// both times.
func RunFigure21(ctx context.Context, w *world.World, out io.Writer) error {
	fmt.Fprintln(out, "Figure 2.1 — HNS Query Processing (executed trace)")
	fmt.Fprintln(out)

	queries := []struct {
		label   string
		name    names.Name
		service string
		prog    uint32
		vers    uint32
	}{
		{"Clearinghouse", world.CourierServiceName(), "fileserver",
			world.CourierProgram, world.CourierVersion},
		{"BIND", world.DesiredServiceName(), world.DesiredService,
			world.DesiredProgram, world.DesiredVersion},
	}
	for i, q := range queries {
		fmt.Fprintf(out, "query %d: client presents HNS name %q, query class %q\n",
			i+1, q.name, qclass.HRPCBinding)

		// Trace the mapping sequence of the first (cache-cold) FindNSM.
		traced := core.WithTrace(ctx, func(step string) {
			fmt.Fprintf(out, "    . %s\n", step)
		})
		findCost, err := simtime.Measure(traced, func(ctx context.Context) error {
			_, err := w.HNS.FindNSM(ctx, q.name, qclass.HRPCBinding)
			return err
		})
		if err != nil {
			return err
		}
		b, err := w.HNS.FindNSM(ctx, q.name, qclass.HRPCBinding)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  HNS:    FindNSM -> %s NSM at %s  (%.1f ms)\n",
			q.label, b.Addr, msf(findCost))

		svcB, err := nsm.CallBindService(ctx, w.RPC, b, q.service, q.prog, q.vers, q.name)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  NSM:    %s NSM queries its name service, returns standardized binding %s\n",
			q.label, svcB)

		ret, err := w.RPC.Call(ctx, svcB, world.EchoProc, world.EchoArgs("hello from the client"))
		if err != nil {
			return err
		}
		echoed, _ := ret.Items[0].AsString()
		fmt.Fprintf(out, "  client: calls the bound service directly -> %q\n\n", echoed)
	}
	fmt.Fprintln(out, "Both NSMs were reached through the identical HRPCBinding interface;")
	fmt.Fprintln(out, "the client never learned which name service answered.")
	return nil
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
