package experiments

import (
	"context"
	"sync"
	"time"

	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// MuxThroughputSpec parameterizes the multiplexing throughput
// experiment: two identical HRPC echo deployments over real TCP, one
// dialed with the legacy one-call-at-a-time framing, one with tagged
// multiplexed frames and a small connection pool. The handler sleeps
// Handle of real time per call (standing in for server work the kernel
// can overlap — sleeps overlap even on one core, so the result is
// meaningful in a single-CPU container) and charges SimCost of
// simulated time, so the arms' per-call simulated costs can be checked
// for equality while their wall-clock throughput diverges.
type MuxThroughputSpec struct {
	Handle      time.Duration // real time each handler call sleeps
	SimCost     time.Duration // simulated cost each handler call charges
	Calls       int           // total calls per arm per concurrency level
	Concurrency []int         // caller goroutine counts to measure
}

// DefaultMuxThroughputSpec is the hnsbench configuration.
func DefaultMuxThroughputSpec() MuxThroughputSpec {
	return MuxThroughputSpec{
		Handle:      time.Millisecond,
		SimCost:     3 * time.Millisecond,
		Calls:       256,
		Concurrency: []int{1, 8, 64},
	}
}

// MuxThroughputPoint is one concurrency level: ops/sec through a
// single pooled endpoint with serialized vs multiplexed framing, plus
// each arm's warm per-call simulated cost (equal by construction —
// multiplexing changes scheduling, never the cost model).
type MuxThroughputPoint struct {
	Goroutines    int
	SerialOps     float64 // ops/sec, legacy framing, one connection
	MuxOps        float64 // ops/sec, tagged frames, pooled connections
	Speedup       float64 // MuxOps / SerialOps
	SimWarmSerial time.Duration
	SimWarmMux    time.Duration
}

// muxBenchProc is the experiment's echo procedure.
var muxBenchProc = hrpc.Procedure{
	Name: "MuxBenchEcho", ID: 1,
	Args:  marshal.TStruct(marshal.TString),
	Ret:   marshal.TStruct(marshal.TString),
	Style: marshal.StyleGenerated,
}

// muxArm is one deployment: an echo server on a real TCP socket and a
// client whose connections to it either serialize or multiplex.
type muxArm struct {
	client *hrpc.Client
	b      hrpc.Binding
	stop   func()
}

func newMuxArm(spec MuxThroughputSpec, muxed bool) (*muxArm, error) {
	// Each arm gets its own network so the mux setting cannot leak: the
	// serialized arm speaks the legacy framing end to end (the listener
	// detects it per connection), the muxed arm tagged frames.
	n := transport.NewNetwork(simtime.Default())
	n.SetMux(muxed)
	s := hrpc.NewServer("muxbench", 7100, 1)
	s.Register(muxBenchProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		if spec.Handle > 0 {
			time.Sleep(spec.Handle)
		}
		simtime.Charge(ctx, spec.SimCost)
		return args, nil
	})
	ln, b, err := hrpc.Serve(n, s, hrpc.SuiteCourierNet, "bench", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := hrpc.NewClient(n)
	c.Metrics = metrics.NewRegistry() // keep bench metrics out of the process registry
	if muxed {
		c.Pool = hrpc.PoolConfig{MaxConns: 2, MaxStreams: 32}
	}
	return &muxArm{
		client: c,
		b:      b,
		stop:   func() { c.Close(); ln.Close() },
	}, nil
}

// call places one echo call on the arm.
func (a *muxArm) call(ctx context.Context) error {
	_, err := a.client.Call(ctx, a.b, muxBenchProc, marshal.StructV(marshal.Str("ping")))
	return err
}

// run drives total calls through the arm from g goroutines and reports
// sustained ops/sec.
func (a *muxArm) run(ctx context.Context, g, total int) (float64, error) {
	per := total / g
	if per < 1 {
		per = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, g)
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-caller meter: simulated charges accumulate per caller,
			// exactly as concurrent application threads would account them.
			mctx := simtime.WithMeter(ctx, simtime.NewMeter())
			for k := 0; k < per; k++ {
				if err := a.call(mctx); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(g*per) / wall.Seconds(), nil
}

// warmCost measures one warm call's simulated cost (the connection is
// already pooled, so no setup cost skews the comparison).
func (a *muxArm) warmCost(ctx context.Context) (time.Duration, error) {
	var callErr error
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		callErr = a.call(ctx)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return cost, callErr
}

// RunMuxThroughput measures head-of-line blocking: the same echo
// workload through one endpoint with the wire serialized (one call per
// connection at a time — each caller waits out every other caller's
// handler) versus multiplexed (tagged frames, concurrent dispatch, a
// two-connection pool). The experiment is self-contained — it builds
// its own networks on real TCP loopback sockets and does not touch the
// world's calibrated tables.
func RunMuxThroughput(ctx context.Context, spec MuxThroughputSpec) ([]MuxThroughputPoint, error) {
	serial, err := newMuxArm(spec, false)
	if err != nil {
		return nil, err
	}
	defer serial.stop()
	mux, err := newMuxArm(spec, true)
	if err != nil {
		return nil, err
	}
	defer mux.stop()

	// Warm both arms: dial, pool, then measure per-call simulated cost
	// on the second (warm) call.
	for _, a := range []*muxArm{serial, mux} {
		if err := a.call(simtime.WithMeter(ctx, simtime.NewMeter())); err != nil {
			return nil, err
		}
	}
	simSerial, err := serial.warmCost(ctx)
	if err != nil {
		return nil, err
	}
	simMux, err := mux.warmCost(ctx)
	if err != nil {
		return nil, err
	}

	var out []MuxThroughputPoint
	for _, g := range spec.Concurrency {
		p := MuxThroughputPoint{Goroutines: g, SimWarmSerial: simSerial, SimWarmMux: simMux}
		if p.SerialOps, err = serial.run(ctx, g, spec.Calls); err != nil {
			return nil, err
		}
		if p.MuxOps, err = mux.run(ctx, g, spec.Calls); err != nil {
			return nil, err
		}
		if p.SerialOps > 0 {
			p.Speedup = p.MuxOps / p.SerialOps
		}
		out = append(out, p)
	}
	return out, nil
}
