package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// P8: "The binding NSMs for both the BIND and Clearinghouse subsystems are
// about 230 lines each." We report the size of our binding NSM source as
// the comparable integration-effort metric.

// NSMSize reports the measured size of one NSM implementation.
type NSMSize struct {
	File  string
	Lines int // non-blank, non-comment lines
}

// PaperNSMLines is the published per-NSM figure.
const PaperNSMLines = 230

// MeasureNSMSources counts the effective source lines of the NSM
// implementation files. It locates the sources via this file's compiled-in
// path, so it works under `go run` and `go test` in a checkout; binaries
// away from the sources get an error.
func MeasureNSMSources() ([]NSMSize, error) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		return nil, fmt.Errorf("experiments: cannot locate own source")
	}
	nsmDir := filepath.Join(filepath.Dir(thisFile), "..", "nsm")
	var out []NSMSize
	for _, f := range []string{"binding.go", "hostaddr.go", "mail.go"} {
		path := filepath.Join(nsmDir, f)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w (run from a source checkout)", err)
		}
		out = append(out, NSMSize{File: "internal/nsm/" + f, Lines: countCodeLines(string(data))})
	}
	return out, nil
}

// countCodeLines counts lines that are neither blank nor pure comments.
func countCodeLines(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if inBlock {
			if strings.Contains(t, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case t == "", strings.HasPrefix(t, "//"):
		case strings.HasPrefix(t, "/*"):
			if !strings.Contains(t, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n
}
