package experiments

import (
	"context"
	"fmt"
	"time"

	"hns/internal/bind"
	"hns/internal/clearinghouse"
	"hns/internal/colocate"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/regbaseline"
	"hns/internal/simtime"
	"hns/internal/world"
)

// The prose measurements of Section 3, each with its paper anchor.

// FindNSMResult is P1: FindNSM at 460 ms uncached, 88 ms cached.
type FindNSMResult struct {
	Miss time.Duration
	Hit  time.Duration
}

// RunFindNSM measures FindNSM cold and warm with the marshalled-form
// cache the prototype's 88 ms figure was taken with.
func RunFindNSM(ctx context.Context, w *world.World) (FindNSMResult, error) {
	h := w.NewHNS(coreMarshalled())
	name := world.DesiredServiceName()
	var res FindNSMResult
	var err error
	res.Miss, err = simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
		return err
	})
	if err != nil {
		return res, err
	}
	res.Hit, err = simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := h.FindNSM(ctx, name, qclass.HRPCBinding)
		return err
	})
	return res, err
}

// NSMCallResult is P2: the remote NSM call at 22–38 ms by RPC system.
type NSMCallResult struct {
	SunRPC  time.Duration
	Courier time.Duration
}

// RunNSMCalls measures the pure remote-call overhead to the two binding
// NSMs (warm caches, warm connections), isolating the call from the NSM's
// internal work.
func RunNSMCalls(ctx context.Context, w *world.World) (NSMCallResult, error) {
	var res NSMCallResult
	measure := func(nsmB hrpc.Binding, service string, prog, vers uint32, name string,
		inner func(ctx context.Context) error) (time.Duration, error) {
		hnsName, err := names.Parse(name)
		if err != nil {
			return 0, err
		}
		// Warm everything.
		if _, err := nsm.CallBindService(ctx, w.RPC, nsmB, service, prog, vers, hnsName); err != nil {
			return 0, err
		}
		total, err := simtime.Measure(ctx, func(ctx context.Context) error {
			_, err := nsm.CallBindService(ctx, w.RPC, nsmB, service, prog, vers, hnsName)
			return err
		})
		if err != nil {
			return 0, err
		}
		internal, err := simtime.Measure(ctx, inner)
		if err != nil {
			return 0, err
		}
		return total - internal, nil
	}

	sunName := world.DesiredServiceName()
	nsmB, err := w.HNS.FindNSM(ctx, sunName, qclass.HRPCBinding)
	if err != nil {
		return res, err
	}
	res.SunRPC, err = measure(nsmB, world.DesiredService, world.DesiredProgram,
		world.DesiredVersion, sunName.String(), func(ctx context.Context) error {
			_, err := w.BindBindingNSM.BindService(ctx, world.DesiredService,
				world.DesiredProgram, world.DesiredVersion, sunName)
			return err
		})
	if err != nil {
		return res, err
	}

	chName := world.CourierServiceName()
	nsmB, err = w.HNS.FindNSM(ctx, chName, qclass.HRPCBinding)
	if err != nil {
		return res, err
	}
	res.Courier, err = measure(nsmB, "fileserver", world.CourierProgram,
		world.CourierVersion, chName.String(), func(ctx context.Context) error {
			_, err := w.CHBindingNSM.BindService(ctx, "fileserver",
				world.CourierProgram, world.CourierVersion, chName)
			return err
		})
	return res, err
}

// UnderlyingResult is P3: BIND 27 ms, Clearinghouse 156 ms.
type UnderlyingResult struct {
	Bind          time.Duration
	Clearinghouse time.Duration
}

// RunUnderlying measures one name→address lookup against each substrate.
func RunUnderlying(ctx context.Context, w *world.World) (UnderlyingResult, error) {
	var res UnderlyingResult
	std := w.BindStdClient()
	defer std.Close()
	var err error
	res.Bind, err = simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := std.Lookup(ctx, world.HostBind, bind.TypeA)
		return err
	})
	if err != nil {
		return res, err
	}
	ch := w.CHClient()
	// Warm the Courier connection (steady state, as the paper measured).
	if _, err := ch.Retrieve(ctx, clearinghouse.MustName(world.HostXerox), clearinghouse.PropAddress); err != nil {
		return res, err
	}
	res.Clearinghouse, err = simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := ch.Retrieve(ctx, clearinghouse.MustName(world.HostXerox), clearinghouse.PropAddress)
		return err
	})
	return res, err
}

// BaselinesResult is P4: binding cost by mechanism. Paper: replicated
// files 200 ms, reregistered Clearinghouse 166 ms, HNS 104–547 ms.
type BaselinesResult struct {
	FileReg  time.Duration
	CHReg    time.Duration
	HNSBest  time.Duration // all colocated, caches warm (Table 3.1 row 1 C)
	HNSWorst time.Duration // all remote, caches cold  (Table 3.1 row 5 A)
}

// PaperBaselineEntries is the registry population at which the file
// baseline was calibrated.
const PaperBaselineEntries = 200

// RunBaselines measures all the binding mechanisms side by side.
func RunBaselines(ctx context.Context, w *world.World) (BaselinesResult, error) {
	var res BaselinesResult

	// Replicated local files.
	fr := regbaseline.NewFileRegistry(w.Model)
	for i := 0; i < PaperBaselineEntries-1; i++ {
		fr.Add(regbaseline.FileEntry{
			Service: fmt.Sprintf("svc-%d", i), Host: "fiji",
			Binding: hrpc.SuiteSunRPC.Bind("fiji", fmt.Sprintf("fiji:%d", i), uint32(i), 1),
		})
	}
	fr.Add(regbaseline.FileEntry{
		Service: world.DesiredService, Host: "fiji",
		Binding: hrpc.SuiteSunRPC.Bind("fiji", "fiji:svc", world.DesiredProgram, world.DesiredVersion),
	})
	var err error
	res.FileReg, err = simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := fr.Import(ctx, world.DesiredService, "fiji")
		return err
	})
	if err != nil {
		return res, err
	}

	// Reregistered Clearinghouse.
	cr := regbaseline.NewCHRegistry(w.CHClient(), w.Model, world.CHDomain, world.CHOrg)
	if err := cr.Register(ctx, world.DesiredService,
		hrpc.SuiteSunRPC.Bind("fiji", "fiji:svc", world.DesiredProgram, world.DesiredVersion)); err != nil {
		return res, err
	}
	if _, err := cr.Import(ctx, world.DesiredService); err != nil { // warm connection
		return res, err
	}
	res.CHReg, err = simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := cr.Import(ctx, world.DesiredService)
		return err
	})
	if err != nil {
		return res, err
	}

	// HNS best and worst (Table 3.1 corners).
	best, err := colocate.RunRow(ctx, w, colocate.ClientHNSNSMs, bind.CacheMarshalled)
	if err != nil {
		return res, err
	}
	worst, err := colocate.RunRow(ctx, w, colocate.AllRemote, bind.CacheMarshalled)
	if err != nil {
		return res, err
	}
	res.HNSBest = best.BothHit
	res.HNSWorst = worst.Miss
	return res, nil
}

// PreloadResult is P5: the ~2 KB, ~390 ms cache preload that pays off at
// two or more distinct context/query-class calls.
type PreloadResult struct {
	Records     int
	Bytes       int
	Cost        time.Duration
	HitAfter    time.Duration // FindNSM after preloading
	MissWithout time.Duration // FindNSM cold without preloading
}

// RunPreload measures the preloading experiment.
func RunPreload(ctx context.Context, w *world.World) (PreloadResult, error) {
	var res PreloadResult

	cold := w.NewHNS(coreMarshalled())
	var err error
	res.MissWithout, err = simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := cold.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
		return err
	})
	if err != nil {
		return res, err
	}

	warm := w.NewHNS(coreMarshalled())
	res.Cost, err = simtime.Measure(ctx, func(ctx context.Context) error {
		rep, err := warm.Preload(ctx)
		if err != nil {
			return err
		}
		res.Records = rep.Records
		res.Bytes = rep.Bytes
		return nil
	})
	if err != nil {
		return res, err
	}
	res.HitAfter, err = simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := warm.FindNSM(ctx, world.DesiredServiceName(), qclass.HRPCBinding)
		return err
	})
	return res, err
}

// BreakEvenResult is P6: equation (1)'s break-even extra hit fractions.
// Paper: remote HNS needs +11% hit rate, remote NSMs +42%.
type BreakEvenResult struct {
	RemoteCall time.Duration
	HNSMiss    time.Duration
	HNSHit     time.Duration
	NSMMiss    time.Duration
	NSMHit     time.Duration
	QHNS       float64
	QNSM       float64
}

// RunBreakEven applies equation (1) to measured Table 3.1 values exactly
// as the paper does: the HNS case from row 5's columns A and B, the NSM
// case from row 4's columns B and C, with the remote-call cost estimated
// from the row spreads.
func RunBreakEven(ctx context.Context, w *world.World) (BreakEvenResult, error) {
	table, err := colocate.RunTable31(ctx, w, bind.CacheMarshalled)
	if err != nil {
		return BreakEvenResult{}, err
	}
	r1 := table[colocate.ClientHNSNSMs]
	r4 := table[colocate.RemoteNSMs]
	r5 := table[colocate.AllRemote]
	res := BreakEvenResult{
		// Two remote calls separate rows 5 and 1 in every column.
		RemoteCall: (r5.Miss - r1.Miss) / 2,
		HNSMiss:    r5.Miss,
		HNSHit:     r5.HNSHit,
		NSMMiss:    r4.HNSHit,
		NSMHit:     r4.BothHit,
	}
	res.QHNS = colocate.BreakEven(res.RemoteCall, res.HNSMiss, res.HNSHit)
	res.QNSM = colocate.BreakEven(res.RemoteCall, res.NSMMiss, res.NSMHit)
	return res, nil
}

// coreMarshalled is the HNS configuration the prototype's headline numbers
// were measured with.
func coreMarshalled() core.Config {
	return core.Config{CacheMode: bind.CacheMarshalled}
}
