package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hns/internal/bind"
	"hns/internal/hrpc"
	"hns/internal/push"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// The push experiment measures the invalidation plane's two claims:
//
//   - Fetch economy: under sustained dynamic-update churn, a subscribed
//     client fleet re-fetches only what changed, where a TTL-polling
//     fleet with the same freshness bound re-fetches its whole working
//     set every poll interval. With M shared names and C churned per
//     interval the ratio is M/C, independent of fleet size.
//   - Diff economy: an IXFR catch-up moves bytes proportional to the
//     mutations missed, not to zone size, and provably falls back to a
//     full transfer when the diff window cannot prove continuity.
//
// Fetch and byte counts are deterministic (they count code-path events);
// the propagation percentiles are wall-clock fan-out latency and vary
// with the host.

// PushSpec parameterizes the push-invalidation experiment.
type PushSpec struct {
	// Rows are the simulated client-fleet sizes compared; each row runs a
	// TTL-poll arm and a subscribed arm over a fresh deployment.
	Rows []int
	// Names is the shared hot set size M: the zone's records that client
	// working sets draw from.
	Names int
	// WorkingSet is W: how many of the M names each client re-reads every
	// poll interval.
	WorkingSet int
	// ChurnPerRound is C: how many names the authority dynamically
	// updates per poll interval.
	ChurnPerRound int
	// Rounds is how many poll intervals the fetch comparison spans.
	Rounds int
	// PollIntervalSec is P: the poll arm's record TTL and the simulated
	// time advanced per round — the staleness bound both arms are held
	// to. The push arm's records carry a 1000x TTL, so any freshness it
	// shows comes from invalidation, not expiry.
	PollIntervalSec uint32
	// ZoneRecords sizes the quiet zone of the IXFR byte comparison.
	ZoneRecords int
	// DeltaRecords is how many mutations the IXFR catch-up misses.
	DeltaRecords int
	// IXFRWindow is the server's retained diff-log depth.
	IXFRWindow int
}

// DefaultPushSpec is the hnsbench configuration: the ISSUE's bench bar
// (1k/10k/100k clients; 32 hot names with 2 churned per 30s interval,
// so the equal-freshness fetch ratio is 16x).
func DefaultPushSpec() PushSpec {
	return PushSpec{
		Rows:            []int{1000, 10000, 100000},
		Names:           32,
		WorkingSet:      2,
		ChurnPerRound:   2,
		Rounds:          3,
		PollIntervalSec: 30,
		ZoneRecords:     400,
		DeltaRecords:    5,
		IXFRWindow:      64,
	}
}

// Validate checks the spec.
func (s PushSpec) Validate() error {
	if len(s.Rows) == 0 {
		return fmt.Errorf("experiments: push needs at least one client row")
	}
	for _, n := range s.Rows {
		if n < 1 {
			return fmt.Errorf("experiments: push client rows must be >= 1")
		}
	}
	switch {
	case s.WorkingSet < 1 || s.Names < s.WorkingSet:
		return fmt.Errorf("experiments: push needs 1 <= working set <= names")
	case s.ChurnPerRound < 1 || s.ChurnPerRound > s.Names:
		return fmt.Errorf("experiments: push churn must be in [1, names]")
	case s.Rounds < 1:
		return fmt.Errorf("experiments: push rounds must be >= 1")
	case s.PollIntervalSec < 1:
		return fmt.Errorf("experiments: push poll interval must be >= 1s")
	case s.DeltaRecords < 1 || s.ZoneRecords < s.DeltaRecords:
		return fmt.Errorf("experiments: push needs 1 <= delta records <= zone records")
	case s.IXFRWindow < s.DeltaRecords:
		return fmt.Errorf("experiments: push diff window must cover the delta")
	}
	return nil
}

// PushRow is one fleet size's poll-vs-subscribe comparison.
type PushRow struct {
	Clients int `json:"clients"`
	// PollFetches / PushFetches are each arm's authority fetches over
	// Rounds poll intervals, working-set warmup excluded. Deterministic.
	PollFetches int64   `json:"poll_fetches"`
	PushFetches int64   `json:"push_fetches"`
	FetchRatio  float64 `json:"fetch_ratio"` // PollFetches / PushFetches
	// Propagation percentiles: wall time from the dynamic update landing
	// to each subscriber's invalidation handler having run.
	PropagationP50Ms float64 `json:"propagation_p50_ms"`
	PropagationP99Ms float64 `json:"propagation_p99_ms"`
	// PollIntervalMs is the polling arm's staleness bound — the number
	// the propagation percentiles are up against.
	PollIntervalMs float64 `json:"poll_interval_ms"`
}

// PushIXFR is the incremental-transfer byte comparison.
type PushIXFR struct {
	ZoneRecords  int     `json:"zone_records"`
	DeltaRecords int     `json:"delta_records"`
	FullBytes    int64   `json:"full_transfer_bytes"`
	DeltaBytes   int64   `json:"delta_transfer_bytes"`
	BytesRatio   float64 `json:"bytes_ratio"` // FullBytes / DeltaBytes
	// FallbackFull records that a request from before the diff window was
	// answered "take a full transfer" rather than a wrong diff.
	FallbackFull bool `json:"fallback_full"`
}

// PushResult is one full run of the experiment.
type PushResult struct {
	Rows []PushRow `json:"rows"`
	IXFR PushIXFR  `json:"ixfr"`
}

// pushBenchName returns the i-th shared hot name.
func pushBenchName(i int) string {
	return fmt.Sprintf("n%04d.push.hns", i)
}

// countingLookuper counts authority fetches across every client cache
// sharing it — the experiment's primary meter.
type countingLookuper struct {
	inner   bind.Lookuper
	fetches atomic.Int64
}

func (c *countingLookuper) Lookup(ctx context.Context, name string, t bind.RRType) ([]bind.RR, error) {
	c.fetches.Add(1)
	return c.inner.Lookup(ctx, name, t)
}

// pushBenchEnv is one arm's deployment: an authoritative bindd-shaped
// server on its own in-process network, and a shared counted client.
type pushBenchEnv struct {
	srv     *bind.Server
	zone    *bind.Zone
	client  *bind.HRPCClient
	counter *countingLookuper
	clk     *simtime.FakeClock
	close   func()
}

// newPushBenchEnv deploys a zone of records records with TTL ttlSec.
// With pushOn the server carries a diff log and a subscriber table sized
// for maxSubs.
func newPushBenchEnv(spec PushSpec, records int, ttlSec uint32, pushOn bool, maxSubs int) (*pushBenchEnv, error) {
	net := transport.NewNetwork(simtime.Default())
	net.SetMux(true)
	srv := bind.NewServer("pushbench", simtime.Default())
	z, err := bind.NewZone("hns", true)
	if err != nil {
		return nil, err
	}
	if err := srv.AddZone(z); err != nil {
		return nil, err
	}
	rrs := make([]bind.RR, records)
	for i := range rrs {
		rrs[i] = bind.HNSMeta(pushBenchName(i), fmt.Sprintf("ns=push-%d", i), ttlSec)
	}
	if err := z.Replace(rrs, 1); err != nil {
		return nil, err
	}
	if pushOn {
		z.EnableDiffLog(spec.IXFRWindow)
		srv.EnablePush(maxSubs)
	}
	ln, binding, err := srv.ServeHRPC(net, "pushbench:bind-hrpc")
	if err != nil {
		return nil, err
	}
	rpc := hrpc.NewClient(net)
	client := bind.NewHRPCClient(rpc, binding)
	return &pushBenchEnv{
		srv:     srv,
		zone:    z,
		client:  client,
		counter: &countingLookuper{inner: client},
		clk:     simtime.NewFakeClock(time.Unix(1987, 0)),
		close:   func() { rpc.Close(); ln.Close() },
	}, nil
}

// bytesTotal sums every transport_bytes_total series in the process
// registry; deltas around a transfer give its wire bytes.
func bytesTotal() int64 {
	var total int64
	for _, c := range metrics.Default().Snapshot().Counters {
		if strings.HasPrefix(c.Name, "transport_bytes_total") {
			total += c.Value
		}
	}
	return total
}

// pushBenchClient is one simulated client: a private TTL cache, and in
// the subscribed arm a push subscription invalidating it.
type pushBenchClient struct {
	res *bind.Resolver
	sub *bind.Subscriber
}

// workingSet lists client i's W hot names: W consecutive names starting
// at i mod M, so every name is held by ~W*N/M clients and the expected
// per-round push fetch count is C*W*N/M.
func workingSet(spec PushSpec, i int) []string {
	ws := make([]string, spec.WorkingSet)
	for j := range ws {
		ws[j] = pushBenchName((i + j) % spec.Names)
	}
	return ws
}

// propRecorder collects per-subscriber propagation latency for one
// marked update. The sim transport runs handlers on the publisher's
// goroutine, but the recorder locks anyway — handler ordering is the
// transport's business, not ours.
type propRecorder struct {
	armed atomic.Bool
	name  string
	mu    sync.Mutex
	start time.Time
	durs  []time.Duration
}

func (r *propRecorder) record() {
	d := time.Since(r.start)
	r.mu.Lock()
	r.durs = append(r.durs, d)
	r.mu.Unlock()
}

// runPushArm measures one fleet arm. subscribe=false is TTL polling
// (records expire every poll interval); subscribe=true holds long-TTL
// records fresh by NOTIFY invalidation. Returns the authority fetch
// count over spec.Rounds intervals and, for the subscribed arm, the
// propagation percentiles of one marked update.
func runPushArm(ctx context.Context, spec PushSpec, clients int, subscribe bool) (fetches int64, p50, p99 time.Duration, err error) {
	ttl := spec.PollIntervalSec
	if subscribe {
		ttl = spec.PollIntervalSec * 1000 // freshness must come from invalidation
	}
	e, err := newPushBenchEnv(spec, spec.Names, ttl, subscribe, clients+16)
	if err != nil {
		return 0, 0, 0, err
	}
	defer e.close()
	mctx := simtime.WithMeter(ctx, simtime.NewMeter())

	rec := &propRecorder{name: pushBenchName(0), durs: make([]time.Duration, 0, clients)}
	fleet := make([]pushBenchClient, clients)
	for i := range fleet {
		res := bind.NewResolver(e.counter, simtime.Default(), bind.ResolverConfig{Clock: e.clk})
		fleet[i].res = res
		if subscribe {
			fleet[i].sub = e.client.Subscribe(bind.SubscribeConfig{
				Zone: "hns",
				OnNotify: func(n push.Notification) {
					if n.Name == "" {
						res.Purge()
					} else {
						res.Invalidate(n.Name, bind.TypeHNSMeta)
					}
					if rec.armed.Load() && n.Name == rec.name {
						rec.record()
					}
				},
				OnReset: func() { res.Purge() },
			})
		}
	}
	if subscribe {
		deadline := time.Now().Add(time.Minute)
		for i := range fleet {
			for !fleet[i].sub.Active() {
				if fleet[i].sub.Degraded() {
					return 0, 0, 0, fmt.Errorf("experiments: push subscriber %d degraded", i)
				}
				if time.Now().After(deadline) {
					return 0, 0, 0, fmt.Errorf("experiments: push subscriber %d never became active", i)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
		defer func() {
			for i := range fleet {
				fleet[i].sub.Close()
			}
		}()
	}

	lookupSet := func(i int) error {
		for _, name := range workingSet(spec, i) {
			if _, err := fleet[i].res.Lookup(mctx, name, bind.TypeHNSMeta); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm every working set, then zero the meter: the comparison is
	// steady-state behaviour, not cold-start.
	for i := range fleet {
		if err := lookupSet(i); err != nil {
			return 0, 0, 0, err
		}
	}
	e.counter.fetches.Store(0)

	churn := func(round int) (uint32, error) {
		var serial uint32
		for k := 0; k < spec.ChurnPerRound; k++ {
			i := (round*spec.ChurnPerRound + k) % spec.Names
			rr := bind.HNSMeta(pushBenchName(i), fmt.Sprintf("ns=push-%d", i), ttl)
			rcode, s, err := e.srv.Update(mctx, "hns", bind.UpdateAdd, rr)
			if err != nil || rcode != bind.RCodeOK {
				return 0, fmt.Errorf("experiments: push churn: rcode %v: %v", rcode, err)
			}
			serial = s
		}
		return serial, nil
	}
	for r := 0; r < spec.Rounds; r++ {
		serial, err := churn(r)
		if err != nil {
			return 0, 0, 0, err
		}
		if subscribe {
			// The sim transport delivers pushes synchronously, but hold the
			// invariant explicitly: every subscriber has processed the
			// round's churn before anyone reads.
			deadline := time.Now().Add(time.Minute)
			for i := range fleet {
				for fleet[i].sub.LastSerial() < serial {
					if time.Now().After(deadline) {
						return 0, 0, 0, fmt.Errorf("experiments: push fan-out stalled at subscriber %d", i)
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
		}
		e.clk.Advance(time.Duration(spec.PollIntervalSec)*time.Second + time.Nanosecond)
		for i := range fleet {
			if err := lookupSet(i); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	fetches = e.counter.fetches.Load()

	if subscribe {
		// One marked update: wall time from the authority applying it to
		// each subscriber's handler having invalidated. The handlers run in
		// the fan-out itself, so the tail percentile is the cost of telling
		// the whole fleet.
		rec.start = time.Now()
		rec.armed.Store(true)
		rr := bind.HNSMeta(rec.name, "ns=push-0", ttl)
		if rcode, _, err := e.srv.Update(mctx, "hns", bind.UpdateAdd, rr); err != nil || rcode != bind.RCodeOK {
			return fetches, 0, 0, fmt.Errorf("experiments: push marked update: rcode %v: %v", rcode, err)
		}
		rec.armed.Store(false)
		if len(rec.durs) < clients {
			return fetches, 0, 0, fmt.Errorf("experiments: marked update reached %d of %d subscribers",
				len(rec.durs), clients)
		}
		sort.Slice(rec.durs, func(i, j int) bool { return rec.durs[i] < rec.durs[j] })
		p50 = rec.durs[len(rec.durs)/2]
		p99 = rec.durs[int(0.99*float64(len(rec.durs)-1)+0.5)]
	}
	return fetches, p50, p99, nil
}

// runPushIXFR measures the diff economy on a quiet deployment: a full
// transfer of the whole zone, then an incremental catch-up that missed
// exactly DeltaRecords mutations, then the out-of-window fallback.
func runPushIXFR(ctx context.Context, spec PushSpec) (PushIXFR, error) {
	res := PushIXFR{ZoneRecords: spec.ZoneRecords, DeltaRecords: spec.DeltaRecords}
	e, err := newPushBenchEnv(spec, spec.ZoneRecords, spec.PollIntervalSec, true, 16)
	if err != nil {
		return res, err
	}
	defer e.close()
	mctx := simtime.WithMeter(ctx, simtime.NewMeter())

	// Warm the connection so dial bytes don't land in either measurement.
	if _, err := e.client.Lookup(mctx, pushBenchName(0), bind.TypeHNSMeta); err != nil {
		return res, err
	}

	before := bytesTotal()
	serial, rrs, err := e.client.Transfer(mctx, "hns")
	if err != nil {
		return res, err
	}
	res.FullBytes = bytesTotal() - before
	if len(rrs) != spec.ZoneRecords {
		return res, fmt.Errorf("experiments: full transfer moved %d records, want %d", len(rrs), spec.ZoneRecords)
	}

	for i := 0; i < spec.DeltaRecords; i++ {
		rr := bind.HNSMeta(pushBenchName(i), fmt.Sprintf("ns=push-%d", i), spec.PollIntervalSec)
		if rcode, _, err := e.srv.Update(mctx, "hns", bind.UpdateAdd, rr); err != nil || rcode != bind.RCodeOK {
			return res, fmt.Errorf("experiments: ixfr churn: rcode %v: %v", rcode, err)
		}
	}
	before = bytesTotal()
	_, diffs, ok, err := e.client.TransferDelta(mctx, "hns", serial)
	if err != nil {
		return res, err
	}
	res.DeltaBytes = bytesTotal() - before
	if !ok || len(diffs) != spec.DeltaRecords {
		return res, fmt.Errorf("experiments: incremental transfer returned ok=%v with %d diffs, want %d",
			ok, len(diffs), spec.DeltaRecords)
	}
	if res.DeltaBytes > 0 {
		res.BytesRatio = float64(res.FullBytes) / float64(res.DeltaBytes)
	}

	// Serial 0 predates the diff log: the server must refuse to fake a
	// diff and direct the peer to a full transfer.
	_, _, ok, err = e.client.TransferDelta(mctx, "hns", 0)
	if err != nil {
		return res, err
	}
	res.FallbackFull = !ok
	return res, nil
}

// RunPush runs the full experiment: the fetch comparison at every fleet
// size, then the IXFR byte comparison.
func RunPush(ctx context.Context, spec PushSpec) (PushResult, error) {
	var res PushResult
	if err := spec.Validate(); err != nil {
		return res, err
	}
	for _, clients := range spec.Rows {
		poll, _, _, err := runPushArm(ctx, spec, clients, false)
		if err != nil {
			return res, fmt.Errorf("experiments: poll arm at %d clients: %w", clients, err)
		}
		pushed, p50, p99, err := runPushArm(ctx, spec, clients, true)
		if err != nil {
			return res, fmt.Errorf("experiments: push arm at %d clients: %w", clients, err)
		}
		row := PushRow{
			Clients:          clients,
			PollFetches:      poll,
			PushFetches:      pushed,
			PropagationP50Ms: simMs(p50),
			PropagationP99Ms: simMs(p99),
			PollIntervalMs:   float64(spec.PollIntervalSec) * 1000,
		}
		if pushed > 0 {
			row.FetchRatio = float64(poll) / float64(pushed)
		}
		res.Rows = append(res.Rows, row)
	}
	var err error
	if res.IXFR, err = runPushIXFR(ctx, spec); err != nil {
		return res, fmt.Errorf("experiments: ixfr comparison: %w", err)
	}
	return res, nil
}

// PushDoc is the BENCH_push.json document.
type PushDoc struct {
	Schema string `json:"schema"`
	Note   string `json:"note"`
	Spec   struct {
		Rows            []int  `json:"rows"`
		Names           int    `json:"names"`
		WorkingSet      int    `json:"working_set"`
		ChurnPerRound   int    `json:"churn_per_round"`
		Rounds          int    `json:"rounds"`
		PollIntervalSec uint32 `json:"poll_interval_sec"`
		ZoneRecords     int    `json:"zone_records"`
		DeltaRecords    int    `json:"delta_records"`
		IXFRWindow      int    `json:"ixfr_window"`
	} `json:"spec"`
	Result PushResult `json:"result"`
}

// PushSchema identifies the BENCH_push.json layout; bump it when a field
// changes meaning, not just when a field is added.
const PushSchema = "hns/bench-push/v1"

// BuildPushDoc assembles the document around a measured result.
func BuildPushDoc(spec PushSpec, res PushResult) PushDoc {
	var doc PushDoc
	doc.Schema = PushSchema
	doc.Note = "fetch and byte counts are deterministic (code-path events); the propagation " +
		"percentiles are wall-clock fan-out latency and vary with the host"
	doc.Spec.Rows = spec.Rows
	doc.Spec.Names = spec.Names
	doc.Spec.WorkingSet = spec.WorkingSet
	doc.Spec.ChurnPerRound = spec.ChurnPerRound
	doc.Spec.Rounds = spec.Rounds
	doc.Spec.PollIntervalSec = spec.PollIntervalSec
	doc.Spec.ZoneRecords = spec.ZoneRecords
	doc.Spec.DeltaRecords = spec.DeltaRecords
	doc.Spec.IXFRWindow = spec.IXFRWindow
	doc.Result = res
	return doc
}

// EncodePushDoc renders the document as the file's canonical JSON.
func EncodePushDoc(doc PushDoc) ([]byte, error) {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
