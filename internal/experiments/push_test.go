package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestPushDocGolden locks the BENCH_push.json schema: field names,
// nesting, and ordering. The result is a synthetic fixture, so the
// golden file captures the document layout without depending on the
// host; regenerate with `go test ./internal/experiments -run
// PushDocGolden -update-golden` when the schema intentionally changes
// (and bump PushSchema).
func TestPushDocGolden(t *testing.T) {
	spec := DefaultPushSpec()
	res := PushResult{
		Rows: []PushRow{
			{Clients: 1000, PollFetches: 6000, PushFetches: 375, FetchRatio: 16,
				PropagationP50Ms: 0.41, PropagationP99Ms: 0.92, PollIntervalMs: 30000},
			{Clients: 10000, PollFetches: 60000, PushFetches: 3750, FetchRatio: 16,
				PropagationP50Ms: 3.2, PropagationP99Ms: 7.8, PollIntervalMs: 30000},
		},
		IXFR: PushIXFR{
			ZoneRecords: 400, DeltaRecords: 5,
			FullBytes: 21050, DeltaBytes: 310, BytesRatio: 67.9,
			FallbackFull: true,
		},
	}
	buf, err := EncodePushDoc(BuildPushDoc(spec, res))
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "BENCH_push.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Errorf("BENCH_push.json schema drifted from %s;\ngot:\n%s\nwant:\n%s\n"+
			"(rerun with -update-golden and bump PushSchema if intentional)",
			golden, buf, want)
	}
}

func TestPushSpecValidate(t *testing.T) {
	good := DefaultPushSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default push spec rejected: %v", err)
	}
	bad := []PushSpec{
		func() PushSpec { s := good; s.Rows = nil; return s }(),
		func() PushSpec { s := good; s.Rows = []int{0}; return s }(),
		func() PushSpec { s := good; s.WorkingSet = 0; return s }(),
		func() PushSpec { s := good; s.WorkingSet = s.Names + 1; return s }(),
		func() PushSpec { s := good; s.ChurnPerRound = 0; return s }(),
		func() PushSpec { s := good; s.ChurnPerRound = s.Names + 1; return s }(),
		func() PushSpec { s := good; s.Rounds = 0; return s }(),
		func() PushSpec { s := good; s.PollIntervalSec = 0; return s }(),
		func() PushSpec { s := good; s.DeltaRecords = 0; return s }(),
		func() PushSpec { s := good; s.ZoneRecords = s.DeltaRecords - 1; return s }(),
		func() PushSpec { s := good; s.IXFRWindow = s.DeltaRecords - 1; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad push spec %d accepted: %+v", i, s)
		}
	}
}

// smallPushSpec keeps the experiment fast enough for the ordinary test
// tier; the full DefaultPushSpec runs in hnsbench and smoke.sh. The
// client count is a multiple of Names so every name is held by exactly
// WorkingSet*Clients/Names clients and the fetch counts are exact.
func smallPushSpec() PushSpec {
	return PushSpec{
		Rows:            []int{48},
		Names:           24,
		WorkingSet:      2,
		ChurnPerRound:   2,
		Rounds:          2,
		PollIntervalSec: 30,
		ZoneRecords:     60,
		DeltaRecords:    4,
		IXFRWindow:      16,
	}
}

// TestRunPushContracts runs the whole experiment small and asserts the
// PR's bench bars where they are deterministic: the exact fetch counts
// of both arms, the >= 10x fetch economy, zero staleness debt in the
// push arm (its fetches are invalidation-driven, never expiry), the
// propagation tail under the poll interval, and the IXFR diff moving a
// small fraction of the full transfer with the fallback proven.
func TestRunPushContracts(t *testing.T) {
	spec := smallPushSpec()
	res, err := RunPush(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	n := spec.Rows[0]

	// Poll arm: every client re-fetches its whole working set every
	// interval — N*W per round, exactly.
	wantPoll := int64(spec.Rounds * n * spec.WorkingSet)
	if row.PollFetches != wantPoll {
		t.Errorf("poll fetches = %d, want %d", row.PollFetches, wantPoll)
	}
	// Push arm: only the churned names' holders re-fetch — C*W*N/M per
	// round, exactly (N is a multiple of M).
	wantPush := int64(spec.Rounds * spec.ChurnPerRound * spec.WorkingSet * n / spec.Names)
	if row.PushFetches != wantPush {
		t.Errorf("push fetches = %d, want %d", row.PushFetches, wantPush)
	}
	if row.FetchRatio < 10 {
		t.Errorf("fetch economy %.1fx below the 10x bar", row.FetchRatio)
	}
	if row.PropagationP99Ms <= 0 || row.PropagationP99Ms >= row.PollIntervalMs {
		t.Errorf("propagation p99 %.3fms not inside (0, poll interval %gms)",
			row.PropagationP99Ms, row.PollIntervalMs)
	}

	// IXFR: the diff moves a small fraction of the zone and the
	// out-of-window request is directed to a full transfer.
	ix := res.IXFR
	if ix.FullBytes <= 0 || ix.DeltaBytes <= 0 {
		t.Fatalf("transfer bytes not measured: %+v", ix)
	}
	if ix.DeltaBytes*4 > ix.FullBytes {
		t.Errorf("delta moved %d bytes vs full %d — not an incremental transfer", ix.DeltaBytes, ix.FullBytes)
	}
	if !ix.FallbackFull {
		t.Error("out-of-window IXFR was not directed to a full transfer")
	}
}
