package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hns/internal/bind"
	"hns/internal/hrpc"
	"hns/internal/simtime"
	"hns/internal/world"
)

// ReplyCacheResult is one row of the Table 3.2 extension: the effect of
// *server-side* marshalled-form caching on a repeat BIND lookup. Table 3.2
// proper is about the client's cache entry form; this measures the other
// end — the server answering a repeat identical request from its stored
// marshalled reply instead of re-running demarshal → zone lookup →
// marshal. Simulated cost must be identical with the cache off and on
// (the hit replays the recorded cost); the win shows up in real ns/op and
// allocs/op, which is what the wire-path work optimizes.
type ReplyCacheResult struct {
	Records int

	// Warm per-call simulated cost with the server reply cache off / on.
	// Equal by construction (cost replay) — printed so a regression is
	// visible next to the real-time numbers.
	SimOff, SimOn time.Duration

	// Real wall-clock ns per warm call, cache off / on.
	NsOff, NsOn float64

	// Heap allocations per warm call (whole process, the server's work
	// included — the suite is in-process), cache off / on.
	AllocsOff, AllocsOn float64

	// HitRate is the server reply cache's hit rate over the measured
	// calls of the cache-on arm.
	HitRate float64
}

// replyCacheIters is how many warm calls each timing arm averages over.
const replyCacheIters = 400

// RunReplyCache measures server-side marshalled-reply caching on the BIND
// HRPC interface, colocated (SuiteLocal) like the Table 3.2 setup so the
// numbers isolate server work rather than transport.
func RunReplyCache(ctx context.Context, w *world.World) ([]ReplyCacheResult, error) {
	cases := []struct {
		records int
		name    string
	}{
		{1, world.HostBind},
		{6, world.GatewayHost},
	}

	// One server per arm: a plain HRPC interface and one with the
	// marshalled-reply cache enabled.
	arm := func(addr string, withCache bool) (*bind.HRPCClient, *hrpc.Server, func(), error) {
		hs := w.BindServer.HRPCServer()
		if withCache {
			hs.EnableReplyCache(w.Clock, time.Hour, 0)
		}
		ln, hb, err := hrpc.Serve(w.Net, hs, hrpc.SuiteLocal, "fiji", addr)
		if err != nil {
			return nil, nil, nil, err
		}
		client := hrpc.NewClient(w.Net)
		return bind.NewHRPCClient(client, hb), hs, func() { client.Close(); ln.Close() }, nil
	}

	off, _, closeOff, err := arm("fiji:bind-hrpc-rcoff", false)
	if err != nil {
		return nil, err
	}
	defer closeOff()
	on, onSrv, closeOn, err := arm("fiji:bind-hrpc-rcon", true)
	if err != nil {
		return nil, err
	}
	defer closeOn()

	measure := func(c *bind.HRPCClient, name string, records int) (sim time.Duration, nsOp, allocs float64, err error) {
		lookup := func(ctx context.Context) error {
			rrs, lerr := c.Lookup(ctx, name, bind.TypeA)
			if lerr != nil {
				return lerr
			}
			if len(rrs) != records {
				return fmt.Errorf("replycache: %s returned %d records, want %d", name, len(rrs), records)
			}
			return nil
		}
		if err = lookup(ctx); err != nil { // warm the server
			return
		}
		if sim, err = simtime.Measure(ctx, lookup); err != nil {
			return
		}
		allocs = testing.AllocsPerRun(replyCacheIters, func() {
			if lerr := lookup(ctx); lerr != nil {
				err = lerr
			}
		})
		if err != nil {
			return
		}
		start := time.Now()
		for i := 0; i < replyCacheIters; i++ {
			if err = lookup(ctx); err != nil {
				return
			}
		}
		nsOp = float64(time.Since(start)) / replyCacheIters
		return
	}

	var out []ReplyCacheResult
	for _, c := range cases {
		row := ReplyCacheResult{Records: c.records}
		if row.SimOff, row.NsOff, row.AllocsOff, err = measure(off, c.name, c.records); err != nil {
			return nil, err
		}
		before := onSrv.ReplyCacheStats()
		if row.SimOn, row.NsOn, row.AllocsOn, err = measure(on, c.name, c.records); err != nil {
			return nil, err
		}
		after := onSrv.ReplyCacheStats()
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		if total := hits + misses; total > 0 {
			row.HitRate = float64(hits) / float64(total)
		}
		out = append(out, row)
	}
	return out, nil
}
