package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"hns/internal/workload"
)

// ScaleSpec parameterizes the fleet-scale scenario matrix: every named
// workload scenario run at each client-count point over a fixed site
// topology. The sim-side numbers (latency percentiles, per-tier hit
// ratios, effective authority fetches) are deterministic per seed; the
// real side (ops/sec, coalesce counts) depends on the host.
type ScaleSpec struct {
	// ClientPoints are the fleet sizes to sweep.
	ClientPoints []int
	// Sites is the site count the population spreads over.
	Sites int
	// OpsPerClient, Contexts, Skew, Seed are as in workload.FleetSpec.
	OpsPerClient int
	Contexts     int
	Skew         float64
	Seed         int64
	// Workers bounds the wall pass's concurrency (<= 0 means the
	// workload default).
	Workers int
	// Scenarios names the scenarios to run; empty means the pinned
	// default matrix (scaleScenarios), so BENCH_scale.json stays
	// bit-identical as new scenarios accrue elsewhere.
	Scenarios []string
}

// DefaultScaleSpec is the hnsbench configuration: three decades of fleet
// size, every scenario.
func DefaultScaleSpec() ScaleSpec {
	return ScaleSpec{
		ClientPoints: []int{1000, 10000, 100000},
		Sites:        8,
		OpsPerClient: 4,
		Contexts:     8,
		Skew:         1.3,
		Seed:         1987,
	}
}

// scaleScenarios is the default matrix, pinned rather than derived from
// workload.Scenarios(): scenarios added for other benches (shardloss
// reports through BENCH_shard.json) must not silently change this file's
// frozen shape.
var scaleScenarios = []string{"coldstart", "flashcrowd", "primaryloss"}

func (s ScaleSpec) scenarios() []string {
	if len(s.Scenarios) > 0 {
		return s.Scenarios
	}
	return append([]string(nil), scaleScenarios...)
}

// ScaleRow is one (scenario, client-count) cell of the matrix. sim_*
// fields are deterministic per seed; real_* fields are wall-clock
// measurements.
type ScaleRow struct {
	Scenario string `json:"scenario"`
	Clients  int    `json:"clients"`
	Sites    int    `json:"sites"`
	Ops      int    `json:"ops"`

	SimP50Ms  float64 `json:"sim_p50_ms"`
	SimP99Ms  float64 `json:"sim_p99_ms"`
	SimMeanMs float64 `json:"sim_mean_ms"`

	HostHitRatio      float64 `json:"host_hit_ratio"`
	SiteHitRatio      float64 `json:"site_hit_ratio"`
	AuthorityHitRatio float64 `json:"authority_hit_ratio"`
	AuthorityFetches  int64   `json:"authority_fetches"`
	StaleOps          int64   `json:"stale_ops"`
	SimFailures       int     `json:"sim_failures"`

	RealOpsPerSec float64 `json:"real_ops_per_sec"`
	Coalesced     int64   `json:"coalesced"`
	WallFetches   int64   `json:"wall_fetches"`
	WallStale     int64   `json:"wall_stale"`
	WallFailures  int     `json:"wall_failures"`
}

// scaleRow flattens a fleet result into the JSON row.
func scaleRow(res workload.FleetResult) ScaleRow {
	return ScaleRow{
		Scenario:          res.Scenario,
		Clients:           res.Clients,
		Sites:             res.Sites,
		Ops:               res.Ops,
		SimP50Ms:          simMs(res.P50),
		SimP99Ms:          simMs(res.P99),
		SimMeanMs:         simMs(res.Mean),
		HostHitRatio:      res.Host.HitRatio,
		SiteHitRatio:      res.Site.HitRatio,
		AuthorityHitRatio: res.Authority.HitRatio,
		AuthorityFetches:  res.AuthorityFetches,
		StaleOps:          res.StaleOps,
		SimFailures:       res.Failures,
		RealOpsPerSec:     res.OpsPerSec,
		Coalesced:         res.Coalesced,
		WallFetches:       res.WallFetches,
		WallStale:         res.WallStale,
		WallFailures:      res.WallFailures,
	}
}

// RunScale runs the scenario matrix: every scenario at every client
// point, in canonical order (scenario-major).
func RunScale(ctx context.Context, spec ScaleSpec) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, name := range spec.scenarios() {
		for _, clients := range spec.ClientPoints {
			fs := workload.FleetSpec{
				Sites:        spec.Sites,
				Clients:      clients,
				OpsPerClient: spec.OpsPerClient,
				Contexts:     spec.Contexts,
				Skew:         spec.Skew,
				Seed:         spec.Seed,
				Workers:      spec.Workers,
			}
			res, err := workload.RunScenario(ctx, name, fs)
			if err != nil {
				return nil, fmt.Errorf("experiments: scale %s/%d clients: %w", name, clients, err)
			}
			rows = append(rows, scaleRow(res))
		}
	}
	return rows, nil
}

// ScaleDoc is the BENCH_scale.json document.
type ScaleDoc struct {
	Schema string `json:"schema"`
	Note   string `json:"note"`
	Spec   struct {
		ClientPoints []int    `json:"client_points"`
		Sites        int      `json:"sites"`
		OpsPerClient int      `json:"ops_per_client"`
		Contexts     int      `json:"contexts"`
		Skew         float64  `json:"skew"`
		Seed         int64    `json:"seed"`
		Scenarios    []string `json:"scenarios"`
	} `json:"spec"`
	Rows []ScaleRow `json:"rows"`
}

// ScaleSchema identifies the BENCH_scale.json layout; bump it when a
// field changes meaning, not just when a field is added.
const ScaleSchema = "hns/bench-scale/v1"

// BuildScaleDoc assembles the document around the measured rows.
func BuildScaleDoc(spec ScaleSpec, rows []ScaleRow) ScaleDoc {
	var doc ScaleDoc
	doc.Schema = ScaleSchema
	doc.Note = "sim_* fields and per-tier ratios are deterministic per seed; " +
		"real_* fields are wall-clock and vary with the host (CI runs in a 1-core container)"
	doc.Spec.ClientPoints = spec.ClientPoints
	doc.Spec.Sites = spec.Sites
	doc.Spec.OpsPerClient = spec.OpsPerClient
	doc.Spec.Contexts = spec.Contexts
	doc.Spec.Skew = spec.Skew
	doc.Spec.Seed = spec.Seed
	doc.Spec.Scenarios = spec.scenarios()
	doc.Rows = rows
	return doc
}

// EncodeScaleDoc renders the document as the file's canonical JSON.
func EncodeScaleDoc(doc ScaleDoc) ([]byte, error) {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// simMs converts a simulated duration to milliseconds for the JSON
// document.
func simMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
