package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestScaleDocGolden locks the BENCH_scale.json schema: field names,
// nesting, and ordering. The rows are synthetic fixtures, so the golden
// file captures the document layout without depending on the cost model;
// regenerate with `go test ./internal/experiments -run ScaleDocGolden
// -update-golden` when the schema intentionally changes (and bump
// ScaleSchema).
func TestScaleDocGolden(t *testing.T) {
	spec := ScaleSpec{
		ClientPoints: []int{10, 100},
		Sites:        2,
		OpsPerClient: 3,
		Contexts:     4,
		Skew:         1.3,
		Seed:         7,
	}
	rows := []ScaleRow{{
		Scenario:          "coldstart",
		Clients:           10,
		Sites:             2,
		Ops:               30,
		SimP50Ms:          85.75,
		SimP99Ms:          290.5,
		SimMeanMs:         101.25,
		HostHitRatio:      0.25,
		SiteHitRatio:      0.875,
		AuthorityHitRatio: 1,
		AuthorityFetches:  52,
		StaleOps:          0,
		SimFailures:       0,
		RealOpsPerSec:     12345.5,
		Coalesced:         3,
		WallFetches:       49,
		WallStale:         0,
		WallFailures:      0,
	}}
	buf, err := EncodeScaleDoc(BuildScaleDoc(spec, rows))
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "BENCH_scale.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Errorf("BENCH_scale.json schema drifted from %s;\ngot:\n%s\nwant:\n%s\n"+
			"(rerun with -update-golden and bump ScaleSchema if intentional)",
			golden, buf, want)
	}
}

// TestRunScaleDeterministicSimSide: two full matrix runs at a tiny spec
// produce identical sim-side cells — the reproducibility contract
// BENCH_scale.json rests on.
func TestRunScaleDeterministicSimSide(t *testing.T) {
	ctx := context.Background()
	spec := ScaleSpec{
		ClientPoints: []int{16, 48},
		Sites:        2,
		OpsPerClient: 2,
		Contexts:     3,
		Skew:         1.3,
		Seed:         7,
	}
	a, err := RunScale(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScale(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 2*3 { // points x scenarios
		t.Fatalf("row counts %d/%d, want 6", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		// Blank the real-side fields; everything left must match exactly.
		x.RealOpsPerSec, y.RealOpsPerSec = 0, 0
		x.Coalesced, y.Coalesced = 0, 0
		x.WallFetches, y.WallFetches = 0, 0
		x.WallStale, y.WallStale = 0, 0
		x.WallFailures, y.WallFailures = 0, 0
		if x != y {
			t.Errorf("sim-side row %d differs between runs:\n%+v\nvs\n%+v", i, x, y)
		}
	}
}
