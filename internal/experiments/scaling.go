package experiments

import (
	"context"
	"time"

	"hns/internal/bind"
	"hns/internal/core"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/world"
)

// The heterogeneity-scaling experiment. The paper's goal statement —
// "scalable in the heterogeneous dimension, meaning that it may be applied
// to environments consisting of a large and increasing number of different
// system types" — has no table of its own, so we measure it: add N extra
// system types (each a fresh name service with its own NSM) and verify
// that
//
//   - integrating type k costs the same as integrating type 1 (a constant
//     number of meta updates), unlike reregistration whose sweep grows
//     with the total name count; and
//   - FindNSM cost is flat in N (lookups touch only the queried context's
//     records), so load distributes across the subsystems.
type ScalingPoint struct {
	// SystemTypes is the number of integrated system types.
	SystemTypes int
	// IntegrationCost is the simulated cost of integrating the last type
	// (registrations only; building the NSM is a human cost).
	IntegrationCost time.Duration
	// FindCold is a cache-cold FindNSM against the newest type.
	FindCold time.Duration
	// FindWarm is a warm FindNSM against the newest type.
	FindWarm time.Duration
	// MetaRecords is the total meta-zone size.
	MetaRecords int
}

// RunScaling integrates sizes[i] system types and measures each point.
func RunScaling(ctx context.Context, w *world.World, sizes []int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	integrated := 0
	var lastCost time.Duration
	for _, target := range sizes {
		for integrated < target {
			cost, err := w.AddSyntheticType(ctx, integrated)
			if err != nil {
				return nil, err
			}
			lastCost = cost
			integrated++
		}
		h := w.NewHNS(core.Config{CacheMode: bind.CacheMarshalled})
		name := names.Must(world.SyntheticContext(integrated-1), world.SyntheticHost(integrated-1))
		cold, err := simtime.Measure(ctx, func(ctx context.Context) error {
			_, err := h.FindNSM(ctx, name, qclass.HostAddress)
			return err
		})
		if err != nil {
			return nil, err
		}
		warm, err := simtime.Measure(ctx, func(ctx context.Context) error {
			_, err := h.FindNSM(ctx, name, qclass.HostAddress)
			return err
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{
			SystemTypes:     2 + integrated, // the base world's two worlds plus ours
			IntegrationCost: lastCost,
			FindCold:        cold,
			FindWarm:        warm,
			MetaRecords:     w.MetaServer.Zone(world.MetaZone).Count(),
		})
	}
	return out, nil
}
