package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"hns/internal/bind"
	"hns/internal/hrpc"
	"hns/internal/shard"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// The shard experiment measures what partitioning the meta-store buys
// and what it costs, over real (in-process) HRPC exchanges:
//
//   - Warm lookups: ops/sec through the shard-aware client at 1..N
//     shards, against an unsharded single-bindd baseline. Owner routing
//     is one hash — warm reads must not pay for the partitioning.
//   - Update throughput: acked updates/sec at 1..N shards with every
//     shard journaling each update at a fixed cost inside its journal
//     lock. Journal sleeps overlap across shards even on one core (the
//     muxthroughput discipline), so the scaling measured is the
//     partitioning's, not the host's core count.
//   - Kill one shard: per-name lookup latency before and after closing
//     one shard's listener. Names the victim does not own keep resolving
//     at pre-kill speed — their lookups never touch the dead endpoint —
//     so the kept fraction of the namespace tracks (N-1)/N.
//
// Ownership splits are deterministic per seed; ops/sec and latencies are
// wall-clock and vary with the host.

// ShardSpec parameterizes the shard experiment.
type ShardSpec struct {
	// Shards are the shard counts measured by the lookup and update arms;
	// the first entry must be 1 (the scaling denominator).
	Shards []int
	// Names is the namespace size: preloaded for the lookup and kill
	// arms, cycled by the update arm.
	Names int
	// Lookups is the warm-lookup count per lookup arm.
	Lookups int
	// Updates is the acked-update count per update arm.
	Updates int
	// UpdateCost is each shard's journal cost per acked update.
	UpdateCost time.Duration
	// Workers is the client-side concurrency of the wall-clock arms.
	Workers int
	// KillShards is the shard count of the kill-one arm.
	KillShards int
	// Seed fixes the shard map's hash seed (and so the ownership split).
	Seed int64
}

// DefaultShardSpec is the hnsbench configuration.
func DefaultShardSpec() ShardSpec {
	return ShardSpec{
		Shards:     []int{1, 2, 4, 8},
		Names:      256,
		Lookups:    4000,
		Updates:    320,
		UpdateCost: 500 * time.Microsecond,
		Workers:    16,
		KillShards: 4,
		Seed:       1987,
	}
}

// Validate checks the spec.
func (s ShardSpec) Validate() error {
	switch {
	case len(s.Shards) == 0:
		return fmt.Errorf("experiments: shard arm needs at least one shard count")
	case s.Shards[0] != 1:
		return fmt.Errorf("experiments: first shard count must be 1 (the scaling denominator)")
	case s.Names < 1:
		return fmt.Errorf("experiments: shard names must be >= 1")
	case s.Lookups < 1:
		return fmt.Errorf("experiments: shard lookups must be >= 1")
	case s.Updates < 1:
		return fmt.Errorf("experiments: shard updates must be >= 1")
	case s.UpdateCost <= 0:
		return fmt.Errorf("experiments: shard update cost must be > 0")
	case s.Workers < 1:
		return fmt.Errorf("experiments: shard workers must be >= 1")
	case s.KillShards < 2:
		return fmt.Errorf("experiments: kill arm needs >= 2 shards")
	}
	for _, n := range s.Shards {
		if n < 1 || n > 64 {
			return fmt.Errorf("experiments: shard counts must be in [1, 64]")
		}
	}
	return nil
}

// ShardLookupRow is one shard count's warm-lookup throughput.
type ShardLookupRow struct {
	Shards    int     `json:"shards"`
	Lookups   int     `json:"lookups"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// ShardUpdateRow is one shard count's acked-update throughput.
type ShardUpdateRow struct {
	Shards        int     `json:"shards"`
	Updates       int     `json:"updates"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
}

// ShardKillRow is the kill-one availability arm: how much of the
// namespace still answers at pre-kill speed after one shard dies.
type ShardKillRow struct {
	Shards        int     `json:"shards"`
	VictimID      string  `json:"victim_id"`
	VictimOwned   int     `json:"victim_owned"`
	Names         int     `json:"names"`
	Kept          int     `json:"kept"`
	KeptFrac      float64 `json:"kept_frac"`
	PrekillP99Ms  float64 `json:"prekill_p99_ms"`
	SurvivorP99Ms float64 `json:"survivor_p99_ms"`
}

// ShardResult is one full run of the experiment.
type ShardResult struct {
	// BaselineLookupOpsPerSec is the unsharded single-bindd client's
	// warm-lookup throughput (no shard client, no ownership gate).
	BaselineLookupOpsPerSec float64          `json:"baseline_lookup_ops_per_sec"`
	Lookup                  []ShardLookupRow `json:"lookup"`
	Update                  []ShardUpdateRow `json:"update"`
	Kill                    ShardKillRow     `json:"kill"`
}

// sleepJournal prices each acked update at a fixed cost inside the
// server's journal lock: updates serialize per shard and overlap across
// shards, exactly like per-shard disks would.
type sleepJournal struct{ d time.Duration }

func (j sleepJournal) LogUpdate(string, uint32, bind.RR, uint32) error {
	time.Sleep(j.d)
	return nil
}
func (j sleepJournal) LogReplace(string, uint32, []bind.RR) error { return nil }

// benchMetaRR is the i-th synthetic meta record of the experiment's
// namespace.
func benchMetaRR(i int) bind.RR {
	return bind.HNSMeta(fmt.Sprintf("n%04d.hns", i), fmt.Sprintf("shardbench=%d", i), 600)
}

// shardBenchEnv is one arm's sharded meta-store: n gated bindd-shaped
// servers over an in-process network, and a shard-aware client.
type shardBenchEnv struct {
	net       *transport.Network
	rpc       *hrpc.Client
	m         shard.Map
	listeners []transport.Listener
	client    *shard.Client
}

func (e *shardBenchEnv) close() {
	e.rpc.Close()
	for _, ln := range e.listeners {
		ln.Close()
	}
}

// newShardBenchEnv stands up n shards, each loaded with its owned slice
// of preload and journaling updates at updateCost (0 = free).
func newShardBenchEnv(n int, seed int64, preload []bind.RR, updateCost time.Duration) (*shardBenchEnv, error) {
	e := &shardBenchEnv{net: transport.NewNetwork(simtime.Default())}
	members := make([]shard.Member, 0, n)
	for i := 0; i < n; i++ {
		members = append(members, shard.Member{
			ID:   fmt.Sprintf("b%d", i),
			Addr: fmt.Sprintf("bshard%d:bind-hrpc", i),
		})
	}
	e.m = shard.Map{Epoch: 1, Seed: uint64(seed), Members: members}
	ok := false
	defer func() {
		if !ok {
			e.close()
		}
	}()
	for i, mem := range members {
		srv := bind.NewServer(fmt.Sprintf("bshard%d", i), simtime.Default())
		z, err := bind.NewZone("hns", true)
		if err != nil {
			return nil, err
		}
		if err := srv.AddZone(z); err != nil {
			return nil, err
		}
		owned := make([]bind.RR, 0, len(preload)/n+1)
		for _, rr := range preload {
			if e.m.Owns(mem.ID, rr.Name) {
				owned = append(owned, rr)
			}
		}
		if err := z.Replace(owned, 1); err != nil {
			return nil, err
		}
		if _, err := shard.Serve(srv, shard.ServingConfig{
			ID:   mem.ID,
			Zone: "hns",
			Map:  e.m,
		}); err != nil {
			return nil, err
		}
		ln, _, err := srv.ServeHRPC(e.net, mem.Addr)
		if err != nil {
			return nil, err
		}
		e.listeners = append(e.listeners, ln)
		// After Serve, so the map install is not priced as an update.
		if updateCost > 0 {
			srv.SetJournal(sleepJournal{d: updateCost})
		}
	}
	e.rpc = hrpc.NewClient(e.net)
	e.rpc.FreshConn = true
	client, err := shard.NewClient(shard.ClientConfig{
		Zone:    "hns",
		Members: members,
		Dial:    shard.NewDialer(e.rpc, hrpc.SuiteRaw),
		Model:   simtime.Default(),
	})
	if err != nil {
		return nil, err
	}
	e.client = client
	ok = true
	return e, nil
}

// shardStorm runs total calls of f over a striped worker pool and
// returns the first error.
func shardStorm(workers, total int, f func(i int) error) error {
	if workers > total {
		workers = total
	}
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += workers {
				if err := f(i); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// runShardLookupArm measures warm lookups/sec against n shards.
func runShardLookupArm(ctx context.Context, spec ShardSpec, n int) (ShardLookupRow, error) {
	preload := make([]bind.RR, spec.Names)
	for i := range preload {
		preload[i] = benchMetaRR(i)
	}
	e, err := newShardBenchEnv(n, spec.Seed, preload, 0)
	if err != nil {
		return ShardLookupRow{}, err
	}
	defer e.close()
	lookup := func(i int) error {
		_, err := e.client.Lookup(ctx, preload[i%spec.Names].Name, bind.TypeHNSMeta)
		return err
	}
	// One unmeasured lap bootstraps the shard map and proves every name
	// resolvable before the clock starts.
	if err := shardStorm(spec.Workers, spec.Names, lookup); err != nil {
		return ShardLookupRow{}, err
	}
	start := time.Now()
	if err := shardStorm(spec.Workers, spec.Lookups, lookup); err != nil {
		return ShardLookupRow{}, err
	}
	wall := time.Since(start)
	return ShardLookupRow{
		Shards:    n,
		Lookups:   spec.Lookups,
		OpsPerSec: float64(spec.Lookups) / wall.Seconds(),
	}, nil
}

// runShardLookupBaseline measures the same warm-lookup storm against one
// plain ungated bindd through a plain HRPC client — the unsharded path.
func runShardLookupBaseline(ctx context.Context, spec ShardSpec) (float64, error) {
	net := transport.NewNetwork(simtime.Default())
	srv := bind.NewServer("bbase", simtime.Default())
	z, err := bind.NewZone("hns", true)
	if err != nil {
		return 0, err
	}
	if err := srv.AddZone(z); err != nil {
		return 0, err
	}
	preload := make([]bind.RR, spec.Names)
	for i := range preload {
		preload[i] = benchMetaRR(i)
	}
	if err := z.Replace(preload, 1); err != nil {
		return 0, err
	}
	ln, binding, err := srv.ServeHRPC(net, "bbase:bind-hrpc")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	rpc := hrpc.NewClient(net)
	rpc.FreshConn = true
	defer rpc.Close()
	client := bind.NewHRPCClient(rpc, binding)
	lookup := func(i int) error {
		_, err := client.Lookup(ctx, preload[i%spec.Names].Name, bind.TypeHNSMeta)
		return err
	}
	if err := shardStorm(spec.Workers, spec.Names, lookup); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := shardStorm(spec.Workers, spec.Lookups, lookup); err != nil {
		return 0, err
	}
	return float64(spec.Lookups) / time.Since(start).Seconds(), nil
}

// runShardUpdateArm measures acked updates/sec against n journaling
// shards.
func runShardUpdateArm(ctx context.Context, spec ShardSpec, n int) (ShardUpdateRow, error) {
	e, err := newShardBenchEnv(n, spec.Seed, nil, spec.UpdateCost)
	if err != nil {
		return ShardUpdateRow{}, err
	}
	defer e.close()
	start := time.Now()
	err = shardStorm(spec.Workers, spec.Updates, func(i int) error {
		rr := bind.HNSMeta(fmt.Sprintf("u%04d.hns", i%spec.Names), fmt.Sprintf("gen=%d", i), 600)
		_, err := e.client.Update(ctx, "hns", bind.UpdateAdd, rr)
		return err
	})
	if err != nil {
		return ShardUpdateRow{}, err
	}
	wall := time.Since(start)
	return ShardUpdateRow{
		Shards:        n,
		Updates:       spec.Updates,
		UpdatesPerSec: float64(spec.Updates) / wall.Seconds(),
	}, nil
}

// wallP99 reads the 99th percentile of a latency sample.
func wallP99(sample []time.Duration) time.Duration {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(0.99*float64(len(sorted)-1)+0.5)]
}

// runShardKillArm measures per-name lookup latency before and after
// closing one shard's listener. kept counts names that still answer
// within the pre-kill p99.
func runShardKillArm(ctx context.Context, spec ShardSpec) (ShardKillRow, error) {
	n := spec.KillShards
	preload := make([]bind.RR, spec.Names)
	for i := range preload {
		preload[i] = benchMetaRR(i)
	}
	e, err := newShardBenchEnv(n, spec.Seed, preload, 0)
	if err != nil {
		return ShardKillRow{}, err
	}
	defer e.close()

	// Per-name latency is the mean of a few samples, best of two laps, on
	// both sides of the kill: single in-process samples are at the mercy
	// of the scheduler, and the question is what latency each name's
	// lookups achieve, not what one unlucky sample saw.
	const killSamples = 4
	timeAll := func() ([]time.Duration, []error) {
		lat := make([]time.Duration, spec.Names)
		errs := make([]error, spec.Names)
		for lap := 0; lap < 2; lap++ {
			for i := range preload {
				var total time.Duration
				var sampleErr error
				for s := 0; s < killSamples; s++ {
					start := time.Now()
					_, err := e.client.Lookup(ctx, preload[i].Name, bind.TypeHNSMeta)
					total += time.Since(start)
					if err != nil {
						sampleErr = err
					}
				}
				d := total / killSamples
				if lap == 0 || d < lat[i] {
					lat[i] = d
					errs[i] = sampleErr
				}
			}
		}
		return lat, errs
	}

	// Warm lap (bootstraps the map), then the measured pre-kill laps.
	_, warmErrs := timeAll()
	for _, err := range warmErrs {
		if err != nil {
			return ShardKillRow{}, err
		}
	}
	preLat, preErrs := timeAll()
	for _, err := range preErrs {
		if err != nil {
			return ShardKillRow{}, err
		}
	}
	prekillP99 := wallP99(preLat)

	victim := e.m.Members[n-1]
	victimOwned := 0
	for _, rr := range preload {
		if e.m.Owns(victim.ID, rr.Name) {
			victimOwned++
		}
	}
	e.listeners[n-1].Close()

	// Kept = names still answering authoritatively. Their lookups never
	// touch the dead endpoint (owner routing), so the latency evidence is
	// the survivors' p99 next to the pre-kill p99 — same distribution, no
	// failover penalty — rather than a per-name race against scheduler
	// noise at microsecond scale.
	postLat, postErrs := timeAll()
	kept := 0
	var survivor []time.Duration
	for i := range preload {
		if postErrs[i] != nil {
			continue
		}
		survivor = append(survivor, postLat[i])
		kept++
	}
	return ShardKillRow{
		Shards:        n,
		VictimID:      victim.ID,
		VictimOwned:   victimOwned,
		Names:         spec.Names,
		Kept:          kept,
		KeptFrac:      float64(kept) / float64(spec.Names),
		PrekillP99Ms:  float64(prekillP99) / float64(time.Millisecond),
		SurvivorP99Ms: float64(wallP99(survivor)) / float64(time.Millisecond),
	}, nil
}

// RunShard runs the full experiment: the lookup baseline and per-count
// lookup arms, the journaled update arms, then the kill-one arm.
func RunShard(ctx context.Context, spec ShardSpec) (ShardResult, error) {
	var res ShardResult
	if err := spec.Validate(); err != nil {
		return res, err
	}
	var err error
	if res.BaselineLookupOpsPerSec, err = runShardLookupBaseline(ctx, spec); err != nil {
		return res, fmt.Errorf("experiments: shard lookup baseline: %w", err)
	}
	for _, n := range spec.Shards {
		row, err := runShardLookupArm(ctx, spec, n)
		if err != nil {
			return res, fmt.Errorf("experiments: shard lookup arm (%d shards): %w", n, err)
		}
		res.Lookup = append(res.Lookup, row)
	}
	for _, n := range spec.Shards {
		row, err := runShardUpdateArm(ctx, spec, n)
		if err != nil {
			return res, fmt.Errorf("experiments: shard update arm (%d shards): %w", n, err)
		}
		if base := res.Update; len(base) > 0 && base[0].UpdatesPerSec > 0 {
			row.SpeedupVs1 = row.UpdatesPerSec / base[0].UpdatesPerSec
		} else if len(res.Update) == 0 {
			row.SpeedupVs1 = 1
		}
		res.Update = append(res.Update, row)
	}
	if res.Kill, err = runShardKillArm(ctx, spec); err != nil {
		return res, fmt.Errorf("experiments: shard kill arm: %w", err)
	}
	return res, nil
}

// ShardDoc is the BENCH_shard.json document.
type ShardDoc struct {
	Schema string `json:"schema"`
	Note   string `json:"note"`
	Spec   struct {
		Shards       []int   `json:"shards"`
		Names        int     `json:"names"`
		Lookups      int     `json:"lookups"`
		Updates      int     `json:"updates"`
		UpdateCostMs float64 `json:"update_cost_ms"`
		Workers      int     `json:"workers"`
		KillShards   int     `json:"kill_shards"`
		Seed         int64   `json:"seed"`
	} `json:"spec"`
	Result ShardResult `json:"result"`
}

// ShardSchema identifies the BENCH_shard.json layout; bump it when a
// field changes meaning, not just when a field is added.
const ShardSchema = "hns/bench-shard/v1"

// BuildShardDoc assembles the document around a measured result.
func BuildShardDoc(spec ShardSpec, res ShardResult) ShardDoc {
	var doc ShardDoc
	doc.Schema = ShardSchema
	doc.Note = "ownership splits are deterministic per seed; ops/sec and latencies are " +
		"wall-clock against the host (journal sleeps overlap across shards even on one core)"
	doc.Spec.Shards = spec.Shards
	doc.Spec.Names = spec.Names
	doc.Spec.Lookups = spec.Lookups
	doc.Spec.Updates = spec.Updates
	doc.Spec.UpdateCostMs = float64(spec.UpdateCost) / float64(time.Millisecond)
	doc.Spec.Workers = spec.Workers
	doc.Spec.KillShards = spec.KillShards
	doc.Spec.Seed = spec.Seed
	doc.Result = res
	return doc
}

// EncodeShardDoc renders the document as the file's canonical JSON.
func EncodeShardDoc(doc ShardDoc) ([]byte, error) {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
