package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestShardDocGolden locks the BENCH_shard.json schema: field names,
// nesting, and ordering. The result is a synthetic fixture, so the
// golden file captures the document layout without depending on the
// host; regenerate with `go test ./internal/experiments -run
// ShardDocGolden -update-golden` when the schema intentionally changes
// (and bump ShardSchema).
func TestShardDocGolden(t *testing.T) {
	spec := DefaultShardSpec()
	res := ShardResult{
		BaselineLookupOpsPerSec: 200000.5,
		Lookup: []ShardLookupRow{
			{Shards: 1, Lookups: 4000, OpsPerSec: 198000.25},
			{Shards: 4, Lookups: 4000, OpsPerSec: 185000.75},
		},
		Update: []ShardUpdateRow{
			{Shards: 1, Updates: 320, UpdatesPerSec: 800.5, SpeedupVs1: 1},
			{Shards: 4, Updates: 320, UpdatesPerSec: 2900.25, SpeedupVs1: 3.62},
		},
		Kill: ShardKillRow{
			Shards: 4, VictimID: "b3", VictimOwned: 63, Names: 256,
			Kept: 193, KeptFrac: 0.75390625,
			PrekillP99Ms: 0.0101, SurvivorP99Ms: 0.0112,
		},
	}
	buf, err := EncodeShardDoc(BuildShardDoc(spec, res))
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "BENCH_shard.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Errorf("BENCH_shard.json schema drifted from %s;\ngot:\n%s\nwant:\n%s\n"+
			"(rerun with -update-golden and bump ShardSchema if intentional)",
			golden, buf, want)
	}
}

func TestShardSpecValidate(t *testing.T) {
	good := DefaultShardSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default shard spec rejected: %v", err)
	}
	bad := []ShardSpec{
		func() ShardSpec { s := good; s.Shards = nil; return s }(),
		func() ShardSpec { s := good; s.Shards = []int{2, 4}; return s }(),
		func() ShardSpec { s := good; s.Shards = []int{1, 65}; return s }(),
		func() ShardSpec { s := good; s.Names = 0; return s }(),
		func() ShardSpec { s := good; s.Lookups = 0; return s }(),
		func() ShardSpec { s := good; s.Updates = 0; return s }(),
		func() ShardSpec { s := good; s.UpdateCost = 0; return s }(),
		func() ShardSpec { s := good; s.Workers = 0; return s }(),
		func() ShardSpec { s := good; s.KillShards = 1; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad shard spec %d accepted: %+v", i, s)
		}
	}
}

// smallShardSpec keeps the experiment fast enough for the ordinary test
// tier; the full DefaultShardSpec runs in hnsbench and smoke.sh. Names
// is chosen so the kill victim owns exactly its fair share (32 of 128),
// making the kept-fraction bar exact, not probabilistic.
func smallShardSpec() ShardSpec {
	return ShardSpec{
		Shards:     []int{1, 4},
		Names:      128,
		Lookups:    600,
		Updates:    96,
		UpdateCost: 2 * time.Millisecond,
		Workers:    8,
		KillShards: 4,
		Seed:       1987,
	}
}

// TestRunShardContracts runs the whole experiment small and asserts the
// PR's bench bars where they are host-independent (ownership, kept
// counts) and directional with re-measures where they are wall-clock
// (throughput scaling, latency parity).
func TestRunShardContracts(t *testing.T) {
	ctx := context.Background()
	spec := smallShardSpec()
	res, err := RunShard(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic: the seeded rendezvous split gives the victim at most
	// a fair share, and the kill loses exactly the victim's slice — every
	// other name keeps answering, so >= (N-1)/N of the namespace is kept.
	k := res.Kill
	if k.VictimOwned > spec.Names/spec.KillShards {
		t.Fatalf("victim owns %d of %d names, above the fair share %d (retune Names/Seed)",
			k.VictimOwned, spec.Names, spec.Names/spec.KillShards)
	}
	if k.Kept != spec.Names-k.VictimOwned {
		t.Fatalf("kill arm kept %d names, want %d (all but the victim's slice)",
			k.Kept, spec.Names-k.VictimOwned)
	}
	if bar := float64(spec.KillShards-1) / float64(spec.KillShards); k.KeptFrac < bar {
		t.Fatalf("kept fraction %.4f below (N-1)/N = %.4f", k.KeptFrac, bar)
	}

	// Wall-clock, directional: survivors never touch the dead endpoint,
	// so their p99 must stay in the pre-kill p99's neighbourhood — a
	// failover penalty would show up as orders of magnitude, not a small
	// factor. Scheduler noise at microsecond scale gets two re-measures.
	for retry := 0; k.SurvivorP99Ms > 3*k.PrekillP99Ms && retry < 2; retry++ {
		t.Logf("survivor p99 %.4fms vs pre-kill %.4fms, re-measuring", k.SurvivorP99Ms, k.PrekillP99Ms)
		if k, err = runShardKillArm(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	if k.SurvivorP99Ms > 3*k.PrekillP99Ms {
		t.Errorf("survivors slowed down: p99 %.4fms vs pre-kill %.4fms", k.SurvivorP99Ms, k.PrekillP99Ms)
	}

	// The scaling bar: 1 -> 4 shards must lift journaled update
	// throughput >= 2.5x. Journal sleeps dominate and overlap across
	// shards even on one core, so this is robust — but it is wall-clock,
	// so an apparent miss gets two re-measurements.
	up := res.Update[len(res.Update)-1]
	if up.Shards != 4 {
		t.Fatalf("last update row is %d shards, want 4", up.Shards)
	}
	speedup := up.SpeedupVs1
	for retry := 0; speedup < 2.5 && retry < 2; retry++ {
		t.Logf("update scaling %.2fx below bar, re-measuring", speedup)
		base, err := runShardUpdateArm(ctx, spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		four, err := runShardUpdateArm(ctx, spec, 4)
		if err != nil {
			t.Fatal(err)
		}
		speedup = four.UpdatesPerSec / base.UpdatesPerSec
	}
	if speedup < 2.5 {
		t.Errorf("update throughput scaled %.2fx from 1 to 4 shards, want >= 2.5x", speedup)
	}

	// The parity bar: warm lookups through the shard client at 1 shard
	// must not be materially slower than the plain unsharded client —
	// owner routing is one hash. Wall-clock, so directional with slack.
	if res.BaselineLookupOpsPerSec <= 0 || res.Lookup[0].OpsPerSec <= 0 {
		t.Fatalf("lookup arms did not run: %+v", res)
	}
	ratio := res.Lookup[0].OpsPerSec / res.BaselineLookupOpsPerSec
	for retry := 0; ratio < 0.7 && retry < 2; retry++ {
		t.Logf("1-shard lookups at %.2fx of baseline, re-measuring", ratio)
		base, err := runShardLookupBaseline(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		one, err := runShardLookupArm(ctx, spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		ratio = one.OpsPerSec / base
	}
	if ratio < 0.7 {
		t.Errorf("sharded warm lookups at 1 shard run at %.2fx of the unsharded baseline", ratio)
	}
}

// TestShardKillDeterministicSplit pins the ownership arithmetic the kill
// arm's availability claim rests on: the same spec always yields the
// same victim slice.
func TestShardKillDeterministicSplit(t *testing.T) {
	spec := smallShardSpec()
	e, err := newShardBenchEnv(spec.KillShards, spec.Seed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.close()
	victim := e.m.Members[spec.KillShards-1]
	owned := 0
	for i := 0; i < spec.Names; i++ {
		if e.m.Owns(victim.ID, benchMetaRR(i).Name) {
			owned++
		}
	}
	if owned != 32 {
		t.Fatalf("victim %s owns %d of %d names, want 32 (the pinned fair share)",
			victim.ID, owned, spec.Names)
	}
}
