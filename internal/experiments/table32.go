// Package experiments contains runnable reproductions of every table,
// figure, and prose measurement in the paper's evaluation (Section 3).
// Each runner returns structured results; cmd/hnsbench formats them next
// to the paper's published numbers, and bench_test.go wraps them in
// testing.B benchmarks. DESIGN.md's experiment index maps each paper
// artifact to its runner here.
package experiments

import (
	"context"
	"fmt"
	"time"

	"hns/internal/bind"
	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/simtime"
	"hns/internal/world"
)

// Table32Row is one row of Table 3.2: "The Effect of Marshalling Costs on
// Cache Access Speed (msec.)".
type Table32Row struct {
	Records         int
	Miss            time.Duration
	MarshalledHit   time.Duration
	DemarshalledHit time.Duration
}

// PaperTable32 records the published numbers (ms) keyed by resource
// records per name.
var PaperTable32 = map[int][3]float64{
	1: {20.23, 11.11, 0.83},
	6: {32.34, 26.17, 1.22},
}

// RunTable32 reproduces Table 3.2. The measurement mirrors the paper's
// setup: BIND lookups through the HRPC (generated-marshalling) interface
// with the measuring process colocated with the server, cache kept first
// in marshalled then in demarshalled form.
func RunTable32(ctx context.Context, w *world.World) ([]Table32Row, error) {
	// Colocated HRPC interface to fiji's BIND.
	ln, hb, err := hrpc.Serve(w.Net, w.BindServer.HRPCServer(), hrpc.SuiteLocal,
		"fiji", "fiji:bind-hrpc-t32")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	client := hrpc.NewClient(w.Net)
	defer client.Close()
	backend := bind.NewHRPCClient(client, hb)

	cases := []struct {
		records int
		name    string
	}{
		{1, world.HostBind},
		{6, world.GatewayHost},
	}
	var rows []Table32Row
	for _, c := range cases {
		row := Table32Row{Records: c.records}

		// Miss: a fresh resolver, cold cache.
		for _, probe := range []struct {
			mode bind.CacheMode
			dst  *time.Duration
		}{
			{bind.CacheMarshalled, &row.MarshalledHit},
			{bind.CacheDemarshalled, &row.DemarshalledHit},
		} {
			r := bind.NewResolver(backend, w.Model, bind.ResolverConfig{
				Mode: probe.mode, Style: marshal.StyleGenerated, Clock: w.Clock,
			})
			missCost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				rrs, err := r.Lookup(ctx, c.name, bind.TypeA)
				if err != nil {
					return err
				}
				if len(rrs) != c.records {
					return fmt.Errorf("table 3.2: %s returned %d records, want %d", c.name, len(rrs), c.records)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			// The miss path is identical in both modes; keep the first.
			if row.Miss == 0 {
				row.Miss = missCost
			}
			hitCost, err := simtime.Measure(ctx, func(ctx context.Context) error {
				_, err := r.Lookup(ctx, c.name, bind.TypeA)
				return err
			})
			if err != nil {
				return nil, err
			}
			*probe.dst = hitCost
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MarshallingCosts reports the standalone marshalling comparison from the
// paper's prose: the standard BIND library routines (0.65 / 2.6 ms for one
// and six records) versus the stub-compiler generated routines — the P7
// ablation of generated vs hand-written marshalling.
type MarshallingCosts struct {
	Records   int
	Hand      time.Duration
	Generated time.Duration
}

// PaperMarshalling records the published standard-library numbers (ms).
var PaperMarshalling = map[int]float64{1: 0.65, 6: 2.6}

// RunMarshalling measures both marshalling styles at 1 and 6 records.
func RunMarshalling(ctx context.Context, w *world.World) []MarshallingCosts {
	var out []MarshallingCosts
	for _, n := range []int{1, 6} {
		row := MarshallingCosts{Records: n}
		row.Hand, _ = simtime.Measure(ctx, func(ctx context.Context) error {
			marshal.ChargeRecords(ctx, w.Model, marshal.StyleHand, n)
			return nil
		})
		row.Generated, _ = simtime.Measure(ctx, func(ctx context.Context) error {
			marshal.ChargeRecords(ctx, w.Model, marshal.StyleGenerated, n)
			return nil
		})
		out = append(out, row)
	}
	return out
}
