// Package filing implements the heterogeneous filing application built on
// the HNS — one of the HCS core network services, and the "heterogeneous
// file system that mediates access to the set of local file systems
// present in the environment" the paper's conclusions announce.
//
// The structure mirrors the naming design exactly: file *servers* are
// named through the HNS (so a UNIX file server registered in BIND and a
// Xerox file server registered in the Clearinghouse are reached through
// the same client code), bound through the existing HRPCBinding NSMs, and
// then spoken to with a Fetch/Store protocol over whatever suite their
// world uses. Contrast with Jasmine (paper §4), which keeps per-file
// location data in a database: here the HNS holds only server naming, so
// the "location database" never grows with the number of files.
package filing

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/marshal"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
	"hns/internal/simtime"
)

// Program identification for the filing protocol.
const (
	Program uint32 = 500001
	Version uint32 = 1
)

// ServiceName is the service name filing clients import.
const ServiceName = "filing"

// The filing procedures.
var (
	procFetch = hrpc.Procedure{
		Name: "FileFetch", ID: 1,
		Args: marshal.TStruct(marshal.TString),
		Ret:  marshal.TStruct(marshal.TBool, marshal.TBytes),
	}
	procStore = hrpc.Procedure{
		Name: "FileStore", ID: 2,
		Args: marshal.TStruct(marshal.TString, marshal.TBytes),
		Ret:  marshal.TStruct(),
	}
	procList = hrpc.Procedure{
		Name: "FileList", ID: 3,
		Args: marshal.TStruct(marshal.TString),
		Ret:  marshal.TStruct(marshal.TList(marshal.TString)),
	}
	procRemove = hrpc.Procedure{
		Name: "FileRemove", ID: 4,
		Args: marshal.TStruct(marshal.TString),
		Ret:  marshal.TStruct(marshal.TBool),
	}
)

// NotFoundError reports a missing file.
type NotFoundError struct {
	Path string
}

// Error implements error.
func (e *NotFoundError) Error() string { return "filing: no such file: " + e.Path }

// Server is one file server: an in-memory file store charging
// disk-realistic simulated costs, servable over any protocol suite.
type Server struct {
	host  string
	model *simtime.Model

	mu    sync.RWMutex
	files map[string][]byte
}

// NewServer creates an empty file server on host.
func NewServer(host string, model *simtime.Model) *Server {
	return &Server{host: host, model: model, files: make(map[string][]byte)}
}

// Host reports the server's host name.
func (s *Server) Host() string { return s.host }

// Fetch reads one file, charging a disk read plus per-KB transfer.
func (s *Server) Fetch(ctx context.Context, path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	simtime.Charge(ctx, s.model.FSRead)
	data, ok := s.files[path]
	if !ok {
		return nil, &NotFoundError{Path: path}
	}
	chargeKB(ctx, s.model, len(data))
	return append([]byte(nil), data...), nil
}

// Store writes one file, charging per-KB write cost.
func (s *Server) Store(ctx context.Context, path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("filing: empty path")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chargeKB(ctx, s.model, len(data))
	s.files[path] = append([]byte(nil), data...)
	return nil
}

// List enumerates (sorted) paths with the given prefix, charging one disk
// read.
func (s *Server) List(ctx context.Context, prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	simtime.Charge(ctx, s.model.FSRead)
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Remove deletes a file, reporting whether it existed.
func (s *Server) Remove(ctx context.Context, path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	simtime.Charge(ctx, s.model.FSRead)
	_, ok := s.files[path]
	delete(s.files, path)
	return ok
}

// Len reports the number of stored files.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

func chargeKB(ctx context.Context, model *simtime.Model, n int) {
	kb := (n + 1023) / 1024
	if kb == 0 {
		kb = 1
	}
	simtime.Charge(ctx, time.Duration(kb)*model.FSWritePerKB)
}

// HRPCServer wraps the server in the filing program.
func (s *Server) HRPCServer() *hrpc.Server {
	hs := hrpc.NewServer("filing@"+s.host, Program, Version)
	hs.Register(procFetch, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		path, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		data, err := s.Fetch(ctx, path)
		if err != nil {
			var nf *NotFoundError
			if errors.As(err, &nf) {
				return marshal.StructV(marshal.BoolV(false), marshal.BytesV(nil)), nil
			}
			return marshal.Value{}, err
		}
		return marshal.StructV(marshal.BoolV(true), marshal.BytesV(data)), nil
	})
	hs.Register(procStore, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		path, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		data, err := args.Items[1].AsBytes()
		if err != nil {
			return marshal.Value{}, err
		}
		if err := s.Store(ctx, path, data); err != nil {
			return marshal.Value{}, err
		}
		return marshal.StructV(), nil
	})
	hs.Register(procList, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		prefix, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		paths := s.List(ctx, prefix)
		items := make([]marshal.Value, 0, len(paths))
		for _, p := range paths {
			items = append(items, marshal.Str(p))
		}
		return marshal.StructV(marshal.ListV(items...)), nil
	})
	hs.Register(procRemove, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		path, err := args.Items[0].AsString()
		if err != nil {
			return marshal.Value{}, err
		}
		return marshal.StructV(marshal.BoolV(s.Remove(ctx, path))), nil
	})
	return hs
}

// Client is the heterogeneous filing client: it names file servers with
// HNS names, binds them through the HNS (FindNSM + the world's binding
// NSM), caches the bindings, and then speaks the filing protocol.
type Client struct {
	finder core.Finder
	rpc    *hrpc.Client

	mu       sync.Mutex
	bindings map[string]hrpc.Binding
}

// NewClient creates a filing client over the given HNS access path.
func NewClient(finder core.Finder, rpc *hrpc.Client) *Client {
	return &Client{finder: finder, rpc: rpc, bindings: make(map[string]hrpc.Binding)}
}

// bind resolves (and caches) the binding for the file server the HNS name
// designates.
func (c *Client) bind(ctx context.Context, server names.Name) (hrpc.Binding, error) {
	key := server.String()
	c.mu.Lock()
	if b, ok := c.bindings[key]; ok {
		c.mu.Unlock()
		return b, nil
	}
	c.mu.Unlock()

	nsmB, err := c.finder.FindNSM(ctx, server, qclass.HRPCBinding)
	if err != nil {
		return hrpc.Binding{}, err
	}
	b, err := nsm.CallBindService(ctx, c.rpc, nsmB, ServiceName, Program, Version, server)
	if err != nil {
		return hrpc.Binding{}, err
	}
	c.mu.Lock()
	c.bindings[key] = b
	c.mu.Unlock()
	return b, nil
}

// Invalidate drops a cached server binding (after a server move).
func (c *Client) Invalidate(server names.Name) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.bindings, server.String())
}

// Fetch reads path from the named file server.
func (c *Client) Fetch(ctx context.Context, server names.Name, path string) ([]byte, error) {
	b, err := c.bind(ctx, server)
	if err != nil {
		return nil, err
	}
	ret, err := c.rpc.Call(ctx, b, procFetch, marshal.StructV(marshal.Str(path)))
	if err != nil {
		return nil, err
	}
	found, _ := ret.Items[0].AsBool()
	if !found {
		return nil, &NotFoundError{Path: path}
	}
	return ret.Items[1].AsBytes()
}

// Store writes path on the named file server.
func (c *Client) Store(ctx context.Context, server names.Name, path string, data []byte) error {
	b, err := c.bind(ctx, server)
	if err != nil {
		return err
	}
	_, err = c.rpc.Call(ctx, b, procStore, marshal.StructV(
		marshal.Str(path), marshal.BytesV(data)))
	return err
}

// List enumerates paths with prefix on the named file server.
func (c *Client) List(ctx context.Context, server names.Name, prefix string) ([]string, error) {
	b, err := c.bind(ctx, server)
	if err != nil {
		return nil, err
	}
	ret, err := c.rpc.Call(ctx, b, procList, marshal.StructV(marshal.Str(prefix)))
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, ret.Items[0].Len())
	for _, it := range ret.Items[0].Items {
		p, err := it.AsString()
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Remove deletes path on the named file server.
func (c *Client) Remove(ctx context.Context, server names.Name, path string) (bool, error) {
	b, err := c.bind(ctx, server)
	if err != nil {
		return false, err
	}
	ret, err := c.rpc.Call(ctx, b, procRemove, marshal.StructV(marshal.Str(path)))
	if err != nil {
		return false, err
	}
	return ret.Items[0].AsBool()
}

// Copy fetches from one named server and stores to another — possibly
// across worlds: a UNIX file server and a Xerox one differ in name
// service, binding protocol, data representation, and transport, and none
// of that appears here.
func (c *Client) Copy(ctx context.Context, from names.Name, fromPath string, to names.Name, toPath string) error {
	data, err := c.Fetch(ctx, from, fromPath)
	if err != nil {
		return err
	}
	return c.Store(ctx, to, toPath, data)
}
