package filing_test

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hns/internal/clearinghouse"
	"hns/internal/filing"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/world"
)

// filingEnv is a world with a file server in each naming world: a UNIX one
// on fiji (named in BIND, Sun RPC) and a Xerox one (named in the
// Clearinghouse, Courier).
type filingEnv struct {
	w          *world.World
	client     *filing.Client
	unixName   names.Name
	xeroxName  names.Name
	unixServer *filing.Server
}

const xeroxFSObject = "bigfiles:cs:uw"

func newFilingEnv(t *testing.T) *filingEnv {
	t.Helper()
	w, err := world.New(world.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	// UNIX file server on fiji: portmapper-registered Sun RPC service.
	unix := filing.NewServer("fiji", w.Model)
	lnU, bU, err := hrpc.Serve(w.Net, unix.HRPCServer(), hrpc.SuiteSunRPC, "fiji", "fiji:filing")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lnU.Close() })
	w.Portmappers["fiji"].Set(filing.Program, filing.Version, "udp", bU.Addr)

	// Xerox file server: binding stored in the Clearinghouse.
	xerox := filing.NewServer("xerox-d0", w.Model)
	lnX, bX, err := hrpc.Serve(w.Net, xerox.HRPCServer(), hrpc.SuiteCourier, "xerox-d0", "xerox:filing")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lnX.Close() })
	if err := w.CHClient().AddItem(context.Background(),
		clearinghouse.MustName(xeroxFSObject), clearinghouse.PropBinding,
		[]byte(qclass.FormatBinding(bX))); err != nil {
		t.Fatal(err)
	}

	return &filingEnv{
		w:          w,
		client:     filing.NewClient(w.HNS, w.RPC),
		unixName:   names.Must(world.CtxBind, world.HostBind),
		xeroxName:  names.Must(world.CtxCH, xeroxFSObject),
		unixServer: unix,
	}
}

func TestFetchStoreBothWorlds(t *testing.T) {
	env := newFilingEnv(t)
	ctx := context.Background()

	for _, server := range []names.Name{env.unixName, env.xeroxName} {
		if err := env.client.Store(ctx, server, "/etc/motd", []byte("welcome to HCS")); err != nil {
			t.Fatalf("%s: %v", server, err)
		}
		got, err := env.client.Fetch(ctx, server, "/etc/motd")
		if err != nil {
			t.Fatalf("%s: %v", server, err)
		}
		if string(got) != "welcome to HCS" {
			t.Fatalf("%s: fetched %q", server, got)
		}
	}
}

func TestFetchMissing(t *testing.T) {
	env := newFilingEnv(t)
	_, err := env.client.Fetch(context.Background(), env.unixName, "/no/such")
	var nf *filing.NotFoundError
	if !errors.As(err, &nf) || nf.Path != "/no/such" {
		t.Fatalf("want NotFoundError, got %v", err)
	}
}

func TestListAndRemove(t *testing.T) {
	env := newFilingEnv(t)
	ctx := context.Background()
	for _, p := range []string{"/src/a.c", "/src/b.c", "/doc/readme"} {
		if err := env.client.Store(ctx, env.unixName, p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := env.client.List(ctx, env.unixName, "/src/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "/src/a.c" || got[1] != "/src/b.c" {
		t.Fatalf("List = %v", got)
	}
	ok, err := env.client.Remove(ctx, env.unixName, "/src/a.c")
	if err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	ok, err = env.client.Remove(ctx, env.unixName, "/src/a.c")
	if err != nil || ok {
		t.Fatalf("second Remove = %v, %v", ok, err)
	}
	if env.unixServer.Len() != 2 {
		t.Fatalf("server holds %d files", env.unixServer.Len())
	}
}

// TestCrossWorldCopy is the headline: one call moves a file from the UNIX
// world to the Xerox world; name service, binding protocol, data
// representation, and transport all change underneath.
func TestCrossWorldCopy(t *testing.T) {
	env := newFilingEnv(t)
	ctx := context.Background()
	if err := env.client.Store(ctx, env.unixName, "/paper/hns.tex", []byte("direct access naming")); err != nil {
		t.Fatal(err)
	}
	if err := env.client.Copy(ctx, env.unixName, "/paper/hns.tex",
		env.xeroxName, "/archive/hns.tex"); err != nil {
		t.Fatal(err)
	}
	got, err := env.client.Fetch(ctx, env.xeroxName, "/archive/hns.tex")
	if err != nil || string(got) != "direct access naming" {
		t.Fatalf("cross-world copy: %q, %v", got, err)
	}
}

func TestBindingCachedAcrossCalls(t *testing.T) {
	env := newFilingEnv(t)
	ctx := context.Background()
	if err := env.client.Store(ctx, env.unixName, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// First fetch after Store reuses the cached binding: its cost must be
	// just the filing call, not a fresh FindNSM + binding.
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := env.client.Fetch(ctx, env.unixName, "/f")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Filing call ≈ RTT + control + server read, well under a cold bind
	// (hundreds of ms).
	if cost > 100*time.Millisecond {
		t.Fatalf("warm fetch cost %v — binding not cached", cost)
	}
}

func TestInvalidate(t *testing.T) {
	env := newFilingEnv(t)
	ctx := context.Background()
	if err := env.client.Store(ctx, env.unixName, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	env.client.Invalidate(env.unixName)
	// Still works (rebinds through the HNS).
	if _, err := env.client.Fetch(ctx, env.unixName, "/f"); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownServer(t *testing.T) {
	env := newFilingEnv(t)
	_, err := env.client.Fetch(context.Background(),
		names.Must("no-such-ctx", "nowhere"), "/f")
	if err == nil {
		t.Fatal("fetch from unknown server context succeeded")
	}
}

func TestServerDirect(t *testing.T) {
	model := simtime.Default()
	s := filing.NewServer("h", model)
	ctx := context.Background()
	if err := s.Store(ctx, "", []byte("x")); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := s.Store(ctx, "/a", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Returned data is a copy.
	got, err := s.Fetch(ctx, "/a")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	got2, _ := s.Fetch(ctx, "/a")
	if string(got2) != "data" {
		t.Fatal("Fetch aliases internal storage")
	}
}

func TestFetchCostScalesWithSize(t *testing.T) {
	model := simtime.Default()
	s := filing.NewServer("h", model)
	ctx := context.Background()
	small := make([]byte, 512)
	big := make([]byte, 64*1024)
	s.Store(ctx, "/small", small)
	s.Store(ctx, "/big", big)
	costSmall, _ := simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := s.Fetch(ctx, "/small")
		return err
	})
	costBig, _ := simtime.Measure(ctx, func(ctx context.Context) error {
		_, err := s.Fetch(ctx, "/big")
		return err
	})
	if costBig < 5*costSmall {
		t.Fatalf("big fetch (%v) not ≫ small fetch (%v)", costBig, costSmall)
	}
}

// Property: store/fetch round-trips arbitrary contents.
func TestStoreFetchProperty(t *testing.T) {
	model := simtime.Default()
	s := filing.NewServer("h", model)
	ctx := context.Background()
	f := func(path string, data []byte) bool {
		if path == "" {
			return true
		}
		if err := s.Store(ctx, path, data); err != nil {
			return false
		}
		got, err := s.Fetch(ctx, path)
		if err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for i := range got {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
