// Package gateway implements hnsgw's core: an admission-controlled
// front door for the HNS resolution service.
//
// A Gateway serves the HNS HRPC program (FindNSM and FindNSMBatch) and
// forwards every admitted call to a backend Finder — typically a
// RemoteHNS pointing at an hnsd. What the gateway adds is the front-door
// discipline a resolver fleet needs at scale:
//
//   - Admission control: per-client token buckets plus a global inflight
//     cap (internal/admission), applied before any forwarding work, so
//     an overloaded gateway sheds cheap typed Overloaded replies instead
//     of queueing into collapse.
//   - Priority shedding: batch resolution (the throughput path) is
//     classified Low and sheds at the inflight low-watermark; single
//     FindNSM calls (the latency path) are High and admitted up to the
//     full cap.
//   - Deadline-aware forwarding: budgets arriving on the wire (the HDLN
//     prefix) flow through the gateway's context into its upstream
//     client, which re-encodes the *remaining* budget per attempt — an
//     expired call is shed here, not forwarded upstream to waste backend
//     work.
package gateway

import (
	"hns/internal/admission"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/transport"
)

// Config configures a Gateway.
type Config struct {
	// Name labels the gateway's server and metrics (default "hnsgw").
	Name string
	// Admission, when non-nil, enables the front door with these limits.
	// Config.Server defaults to Name.
	Admission *admission.Config
	// PropagateDeadline makes the upstream client carry the caller's
	// remaining budget on forwarded calls. Requires a backend that
	// tolerates the HDLN prefix (any server in this tree; old peers
	// need it off).
	PropagateDeadline bool
}

// Gateway is an HNS front door: an HRPC server whose Finder is a remote
// backend (or a Pool of them).
type Gateway struct {
	srv   *hrpc.Server
	admit *admission.Controller
}

// New builds a gateway forwarding to the HNS service bound at backend.
// The client carries the gateway's upstream connection pool (and its
// retry policy, breakers, and deadline propagation).
func New(client *hrpc.Client, backend hrpc.Binding, cfg Config) *Gateway {
	client.PropagateDeadline = cfg.PropagateDeadline
	return NewWithFinder(core.NewRemoteHNS(client, backend), cfg)
}

// NewPooled builds a gateway spreading admitted calls round-robin over
// several equivalent backends, failing over on unreachability.
func NewPooled(client *hrpc.Client, backends []hrpc.Binding, cfg Config) *Gateway {
	client.PropagateDeadline = cfg.PropagateDeadline
	return NewWithFinder(NewPool(client, backends), cfg)
}

// NewWithFinder builds a gateway over any Finder (the other
// constructors' common core).
func NewWithFinder(f core.Finder, cfg Config) *Gateway {
	if cfg.Name == "" {
		cfg.Name = "hnsgw"
	}
	srv := core.NewFinderServer(f, cfg.Name)
	g := &Gateway{srv: srv}
	if cfg.Admission != nil {
		ac := *cfg.Admission
		if ac.Server == "" {
			ac.Server = cfg.Name
		}
		g.admit = admission.New(ac)
		srv.EnableAdmission(g.admit)
		srv.AdmitPriority = func(proc uint32) admission.Priority {
			if proc == core.ProcFindNSMBatchID {
				return admission.Low
			}
			return admission.High
		}
	}
	return g
}

// Server exposes the underlying HRPC server (for metrics registry
// overrides and suite-specific serving).
func (g *Gateway) Server() *hrpc.Server { return g.srv }

// Admission exposes the controller, nil when admission is disabled.
func (g *Gateway) Admission() *admission.Controller { return g.admit }

// SetMetrics points the gateway's server at a registry. Call before
// serving.
func (g *Gateway) SetMetrics(reg *metrics.Registry) { g.srv.Metrics = reg }

// Serve binds the gateway at addr over the given suite.
func (g *Gateway) Serve(net *transport.Network, suite hrpc.Suite, host, addr string) (transport.Listener, hrpc.Binding, error) {
	return hrpc.Serve(net, g.srv, suite, host, addr)
}
