package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hns/internal/admission"
	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/names"
	"hns/internal/qclass"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// stubFinder is the backend behind the gateway's upstream: it answers a
// fixed binding, fails a designated context, and records the budget each
// call arrived with.
type stubFinder struct {
	mu      sync.Mutex
	budgets []time.Duration
}

var stubBinding = hrpc.Binding{
	Host: "nsm-host", Addr: "nsm:1", Transport: "udp",
	DataRep: "xdr", Control: "sunrpc", Program: 200100, Version: 10,
}

func (s *stubFinder) FindNSM(ctx context.Context, n names.Name, qc string) (hrpc.Binding, error) {
	b, _ := hrpc.BudgetFrom(ctx)
	s.mu.Lock()
	s.budgets = append(s.budgets, b)
	s.mu.Unlock()
	if n.Context == "ghost" {
		return hrpc.Binding{}, fmt.Errorf("no such context %q", n.Context)
	}
	return stubBinding, nil
}

func (s *stubFinder) recorded() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.budgets...)
}

// gwEnv is client → gateway → backend, all on one simulated network.
type gwEnv struct {
	net   *transport.Network
	stub  *stubFinder
	gw    *Gateway
	gwB   hrpc.Binding
	front *core.RemoteHNS
}

func newGWEnv(t *testing.T, cfg Config) *gwEnv {
	t.Helper()
	n := transport.NewNetwork(simtime.Default())
	stub := &stubFinder{}

	backend := core.NewFinderServer(stub, "hns-backend")
	backend.Metrics = metrics.NewRegistry()
	bln, bb, err := hrpc.Serve(n, backend, hrpc.SuiteRaw, "backend", "backend:hns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bln.Close() })

	up := hrpc.NewClient(n)
	up.Metrics = metrics.NewRegistry()
	t.Cleanup(func() { up.Close() })
	gw := New(up, bb, cfg)
	gw.SetMetrics(metrics.NewRegistry())
	gln, gb, err := gw.Serve(n, hrpc.SuiteRaw, "gw", "gw:hns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gln.Close() })

	fc := hrpc.NewClient(n)
	fc.Metrics = metrics.NewRegistry()
	fc.PropagateDeadline = cfg.PropagateDeadline
	t.Cleanup(func() { fc.Close() })
	return &gwEnv{net: n, stub: stub, gw: gw, gwB: gb, front: core.NewRemoteHNS(fc, gb)}
}

func TestGatewayForwards(t *testing.T) {
	e := newGWEnv(t, Config{})
	ctx := simtime.WithMeter(context.Background(), simtime.NewMeter())
	b, err := e.front.FindNSM(ctx, names.Must("svc", "a"), qclass.HRPCBinding)
	if err != nil {
		t.Fatal(err)
	}
	if b != stubBinding {
		t.Fatalf("forwarded binding = %v, want %v", b, stubBinding)
	}
	// A batch through the gateway: per-slot results, one failing slot.
	res, err := e.front.FindNSMBatch(ctx, []core.NameQuery{
		{Name: names.Must("svc", "a"), QueryClass: qclass.HRPCBinding},
		{Name: names.Must("ghost", "x"), QueryClass: qclass.HRPCBinding},
		{Name: names.Must("svc", "b"), QueryClass: qclass.HRPCBinding},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Binding != stubBinding {
		t.Fatalf("slot 0 = %+v", res[0])
	}
	if res[1].Err == nil {
		t.Fatal("ghost slot resolved through gateway")
	}
	if res[2].Err != nil || res[2].Binding != stubBinding {
		t.Fatalf("slot 2 = %+v", res[2])
	}
}

// TestGatewayShedsBatchFirst pins the priority policy: past the
// low-watermark, batch (Low) calls shed with a typed Overloaded while
// single FindNSM (High) calls keep flowing.
func TestGatewayShedsBatchFirst(t *testing.T) {
	e := newGWEnv(t, Config{
		Admission: &admission.Config{
			MaxInflight:  4,
			LowWatermark: 0.5, // Low sheds past 2 in flight
			Metrics:      metrics.NewRegistry(),
		},
	})
	ctl := e.gw.Admission()
	// Occupy the low-priority headroom.
	for i := 0; i < 2; i++ {
		if err := ctl.Admit("occupier", admission.High); err != nil {
			t.Fatal(err)
		}
	}
	defer func() { ctl.Done(); ctl.Done() }()

	ctx := simtime.WithMeter(context.Background(), simtime.NewMeter())
	_, err := e.front.FindNSMBatch(ctx, []core.NameQuery{
		{Name: names.Must("svc", "a"), QueryClass: qclass.HRPCBinding},
	})
	if !errors.Is(err, hrpc.ErrOverloaded) {
		t.Fatalf("batch past watermark: %v, want ErrOverloaded", err)
	}
	// The shed put the gateway endpoint in a client-side backoff window —
	// by design. A different caller's single (High) call is still served.
	fc2 := hrpc.NewClient(e.net)
	fc2.Metrics = metrics.NewRegistry()
	defer fc2.Close()
	front2 := core.NewRemoteHNS(fc2, e.gwB)
	if _, err := front2.FindNSM(ctx, names.Must("svc", "a"), qclass.HRPCBinding); err != nil {
		t.Fatalf("single call past watermark: %v, want admitted", err)
	}
}

// TestGatewayPropagatesBudget: a budget on the front call crosses the
// gateway and reaches the backend Finder — minus whatever the journey
// charged, never more than the original.
func TestGatewayPropagatesBudget(t *testing.T) {
	e := newGWEnv(t, Config{PropagateDeadline: true})
	const budget = 600 * time.Millisecond
	ctx := hrpc.WithBudget(simtime.WithMeter(context.Background(), simtime.NewMeter()), budget)
	if _, err := e.front.FindNSM(ctx, names.Must("svc", "a"), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	got := e.stub.recorded()
	if len(got) != 1 {
		t.Fatalf("backend saw %d calls, want 1", len(got))
	}
	if got[0] <= 0 || got[0] > budget {
		t.Fatalf("backend budget = %v, want in (0, %v]", got[0], budget)
	}
}

// TestGatewayWithoutPropagationSendsNoBudget: the default gateway does
// not invent budgets — the backend sees none.
func TestGatewayWithoutPropagationSendsNoBudget(t *testing.T) {
	e := newGWEnv(t, Config{})
	ctx := hrpc.WithBudget(simtime.WithMeter(context.Background(), simtime.NewMeter()), 600*time.Millisecond)
	if _, err := e.front.FindNSM(ctx, names.Must("svc", "a"), qclass.HRPCBinding); err != nil {
		t.Fatal(err)
	}
	if got := e.stub.recorded(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("backend budgets = %v, want [0]", got)
	}
}
