package gateway

import (
	"context"
	"sync/atomic"

	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/metrics"
	"hns/internal/names"
)

// Pool is a Finder over several equivalent HNS backends: calls rotate
// round-robin for load spreading and fail over to the next backend when
// one is unreachable. Resolution is read-only and every hnsd serves the
// same namespace (each with its own meta-cache), so any backend can
// answer any call — this is the gateway-side arrangement for a sharded
// meta-store, where the shard fan-in happens inside each hnsd's meta
// client rather than at the gateway.
type Pool struct {
	backends []*core.RemoteHNS
	next     atomic.Uint64
	failover *metrics.Counter // gateway_pool_failover_total
}

// NewPool builds a round-robin Finder over the bindings. The client
// carries the pool's connections, breakers, and deadline propagation,
// exactly as with a single backend.
func NewPool(client *hrpc.Client, backends []hrpc.Binding) *Pool {
	p := &Pool{failover: metrics.Default().Counter("gateway_pool_failover_total")}
	for _, b := range backends {
		p.backends = append(p.backends, core.NewRemoteHNS(client, b))
	}
	return p
}

// Backends reports the pool size.
func (p *Pool) Backends() int { return len(p.backends) }

// pick orders the backends for one call: the rotor's choice first, then
// the rest as failover candidates.
func (p *Pool) pick() []*core.RemoteHNS {
	n := len(p.backends)
	start := int(p.next.Add(1)-1) % n
	ordered := make([]*core.RemoteHNS, 0, n)
	for i := 0; i < n; i++ {
		ordered = append(ordered, p.backends[(start+i)%n])
	}
	return ordered
}

// FindNSM implements core.Finder with rotation and failover.
func (p *Pool) FindNSM(ctx context.Context, name names.Name, queryClass string) (hrpc.Binding, error) {
	var lastErr error
	for i, r := range p.pick() {
		b, err := r.FindNSM(ctx, name, queryClass)
		if err == nil {
			return b, nil
		}
		lastErr = err
		// Only unreachability moves on: an authoritative answer (no such
		// context, bad name) is the same from every backend.
		if !hrpc.Unavailable(err) {
			break
		}
		if i < len(p.backends)-1 {
			p.failover.Inc()
		}
	}
	return hrpc.Binding{}, lastErr
}

// FindNSMBatch implements the batch interface the same way, keeping the
// gateway's batch amortization across a backend pool.
func (p *Pool) FindNSMBatch(ctx context.Context, qs []core.NameQuery) ([]core.FindResult, error) {
	var lastErr error
	for i, r := range p.pick() {
		res, err := r.FindNSMBatch(ctx, qs)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !hrpc.Unavailable(err) {
			break
		}
		if i < len(p.backends)-1 {
			p.failover.Inc()
		}
	}
	return nil, lastErr
}
