package greeter

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"go/format"
	"os"
	"strings"
	"testing"

	"hns/internal/hrpc"
	"hns/internal/idl"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// impl implements GreeterHandler.
type impl struct{}

func (impl) Greet(ctx context.Context, who Person, loud bool) (string, error) {
	if who.Name == "" {
		return "", errors.New("greeter: anonymous person")
	}
	g := fmt.Sprintf("hello %s (age %d)", who.Name, who.Age)
	if loud {
		g = strings.ToUpper(g)
	}
	return g, nil
}

func (impl) Enroll(ctx context.Context, r Roster) (uint32, []byte, error) {
	h := sha256.New()
	for _, p := range r.People {
		fmt.Fprintf(h, "%s/%d/%v;", p.Name, p.Age, p.Admin)
	}
	for _, tg := range r.Tags {
		h.Write([]byte(tg))
	}
	return uint32(len(r.People)), h.Sum(nil)[:8], nil
}

func (impl) Ping(ctx context.Context) error { return nil }

func newClient(t *testing.T, suite hrpc.Suite) *GreeterClient {
	t.Helper()
	net := transport.NewNetwork(simtime.Default())
	ln, b, err := hrpc.Serve(net, NewGreeterServer("greeter-test", impl{}), suite, "h", "h:greeter")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	c := hrpc.NewClient(net)
	t.Cleanup(func() { c.Close() })
	return NewGreeterClient(c, b)
}

func TestGeneratedStubsEndToEnd(t *testing.T) {
	client := newClient(t, hrpc.SuiteSunRPC)
	ctx := context.Background()

	greeting, err := client.Greet(ctx, Person{Name: "schwartz", Age: 29, Admin: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if greeting != "hello schwartz (age 29)" {
		t.Fatalf("Greet = %q", greeting)
	}
	greeting, err = client.Greet(ctx, Person{Name: "notkin", Age: 32}, true)
	if err != nil || !strings.HasPrefix(greeting, "HELLO NOTKIN") {
		t.Fatalf("loud Greet = %q, %v", greeting, err)
	}

	count, digest, err := client.Enroll(ctx, Roster{
		People: []Person{{Name: "a", Age: 1}, {Name: "b", Age: 2, Admin: true}},
		Tags:   []string{"hcs", "sosp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 || len(digest) != 8 {
		t.Fatalf("Enroll = %d, %x", count, digest)
	}
	// Determinism of the round-tripped payload.
	count2, digest2, err := client.Enroll(ctx, Roster{
		People: []Person{{Name: "a", Age: 1}, {Name: "b", Age: 2, Admin: true}},
		Tags:   []string{"hcs", "sosp"},
	})
	if err != nil || count2 != count || string(digest2) != string(digest) {
		t.Fatalf("Enroll not stable: %d %x vs %d %x", count, digest, count2, digest2)
	}

	if err := client.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedStubsOverCourier(t *testing.T) {
	// The generated stubs are suite-agnostic, like every HRPC client.
	client := newClient(t, hrpc.SuiteCourier)
	greeting, err := client.Greet(context.Background(), Person{Name: "x", Age: 1}, false)
	if err != nil || greeting == "" {
		t.Fatalf("Greet over Courier = %q, %v", greeting, err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	client := newClient(t, hrpc.SuiteSunRPC)
	_, err := client.Greet(context.Background(), Person{}, false)
	if err == nil || !strings.Contains(err.Error(), "anonymous person") {
		t.Fatalf("handler error lost: %v", err)
	}
}

// TestStubsMatchIDL regenerates the stubs from greeter.idl and fails if
// the checked-in file has drifted.
func TestStubsMatchIDL(t *testing.T) {
	f, err := os.Open("greeter.idl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	iface, err := idl.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	src, err := idl.Generate(iface, "greeter")
	if err != nil {
		t.Fatal(err)
	}
	want, err := format.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("greeter_stubs.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("greeter_stubs.go is stale; rerun: go run ./cmd/hrpcgen -in internal/gen/greeter/greeter.idl -pkg greeter -out internal/gen/greeter/greeter_stubs.go")
	}
}
