// Package hcs is the application-facing facade of the name service: the
// thin layer an HCS application links to resolve names without caring
// which name service answers.
//
// It packages the invariant two-step of every HNS client — FindNSM for the
// query class, then the query-class call on whichever NSM was designated —
// behind one method per query class. This is deliberately *all* it does:
// the paper's structure puts the real work in the NSMs and the management
// in the HNS, leaving the client glue small enough to embed anywhere.
package hcs

import (
	"context"

	"hns/internal/core"
	"hns/internal/hrpc"
	"hns/internal/names"
	"hns/internal/nsm"
	"hns/internal/qclass"
)

// Directory resolves HNS names through a Finder (a linked *core.HNS or a
// remote HNS service) and calls the designated NSMs.
type Directory struct {
	finder core.Finder
	rpc    *hrpc.Client
}

// New creates a directory facade.
func New(finder core.Finder, rpc *hrpc.Client) *Directory {
	return &Directory{finder: finder, rpc: rpc}
}

// ResolveHost maps an HNS host name to its transport address
// (the HostAddress query class).
func (d *Directory) ResolveHost(ctx context.Context, name names.Name) (string, error) {
	b, err := d.finder.FindNSM(ctx, name, qclass.HostAddress)
	if err != nil {
		return "", err
	}
	return nsm.CallResolveHost(ctx, d.rpc, b, name)
}

// Import binds a named service on the host an HNS name designates (the
// HRPCBinding query class) — the paper's Import call. program and version
// come from the importing stub.
func (d *Directory) Import(ctx context.Context, service string, program, version uint32, name names.Name) (hrpc.Binding, error) {
	b, err := d.finder.FindNSM(ctx, name, qclass.HRPCBinding)
	if err != nil {
		return hrpc.Binding{}, err
	}
	return nsm.CallBindService(ctx, d.rpc, b, service, program, version, name)
}

// MailRoute maps a user's HNS name to their mailbox host and routing
// discipline (the MailRoute query class).
func (d *Directory) MailRoute(ctx context.Context, name names.Name) (mailHost, route string, err error) {
	b, err := d.finder.FindNSM(ctx, name, qclass.MailRoute)
	if err != nil {
		return "", "", err
	}
	return nsm.CallMailRoute(ctx, d.rpc, b, name)
}

// Query invokes an arbitrary query class's NSM, for applications defining
// their own classes: it returns the NSM binding for the caller to use with
// that class's interface.
func (d *Directory) Query(ctx context.Context, name names.Name, queryClass string) (hrpc.Binding, error) {
	return d.finder.FindNSM(ctx, name, queryClass)
}
