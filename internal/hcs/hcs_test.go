package hcs_test

import (
	"context"
	"testing"

	"hns/internal/core"
	"hns/internal/hcs"
	"hns/internal/names"
	"hns/internal/world"
)

func newWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.New(world.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestDirectoryResolveHost(t *testing.T) {
	w := newWorld(t)
	d := hcs.New(w.HNS, w.RPC)
	ctx := context.Background()

	addr, err := d.ResolveHost(ctx, names.Must(world.CtxHostB, world.HostBind))
	if err != nil {
		t.Fatal(err)
	}
	if addr != "fiji" {
		t.Fatalf("ResolveHost = %q", addr)
	}
	addr, err = d.ResolveHost(ctx, names.Must(world.CtxHostCH, world.HostXerox))
	if err != nil {
		t.Fatal(err)
	}
	if addr != "xerox" {
		t.Fatalf("CH ResolveHost = %q", addr)
	}
}

func TestDirectoryImport(t *testing.T) {
	w := newWorld(t)
	d := hcs.New(w.HNS, w.RPC)
	ctx := context.Background()

	b, err := d.Import(ctx, world.DesiredService, world.DesiredProgram,
		world.DesiredVersion, world.DesiredServiceName())
	if err != nil {
		t.Fatal(err)
	}
	ret, err := w.RPC.Call(ctx, b, world.EchoProc, world.EchoArgs("via facade"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ret.Items[0].AsString(); got != "via facade" {
		t.Fatalf("echo = %q", got)
	}
}

func TestDirectoryMailRoute(t *testing.T) {
	w := newWorld(t)
	d := hcs.New(w.HNS, w.RPC)
	host, route, err := d.MailRoute(context.Background(),
		names.Must(world.CtxMailB, world.MailUserBind))
	if err != nil {
		t.Fatal(err)
	}
	if host != world.MailHostBind || route != "smtp" {
		t.Fatalf("MailRoute = %q %q", host, route)
	}
}

func TestDirectoryOverRemoteHNS(t *testing.T) {
	// The facade is Finder-agnostic: same calls through a remote HNS.
	w := newWorld(t)
	ln, hb, err := core.ServeHNS(w.Net, w.HNS, "beaver", "beaver:hns-facade")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	d := hcs.New(core.NewRemoteHNS(w.RPC, hb), w.RPC)
	addr, err := d.ResolveHost(context.Background(), names.Must(world.CtxHostB, world.HostBind))
	if err != nil {
		t.Fatal(err)
	}
	if addr != "fiji" {
		t.Fatalf("remote ResolveHost = %q", addr)
	}
}

func TestDirectoryQueryUnknownClass(t *testing.T) {
	w := newWorld(t)
	d := hcs.New(w.HNS, w.RPC)
	if _, err := d.Query(context.Background(),
		world.DesiredServiceName(), "locking"); err == nil {
		t.Fatal("unknown query class resolved")
	}
}
