package health

import (
	"testing"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

func backpressureSet(clk simtime.Clock) *Set {
	return NewSet(Config{
		Threshold: 3,
		Cooldown:  5 * time.Second,
		Clock:     clk,
		Metrics:   metrics.NewRegistry(),
		Service:   "bp-test",
	})
}

func TestBackpressureRefusesWithoutOpening(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	b := backpressureSet(clk).Breaker("ep")

	b.Backpressure(100 * time.Millisecond)
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow during backpressure window")
	}
	if got := b.State(); got != Closed {
		t.Fatalf("backpressure changed state to %v, want Closed", got)
	}
	if got := b.BackoffRemaining(); got != 100*time.Millisecond {
		t.Fatalf("BackoffRemaining = %v, want 100ms", got)
	}

	// Window passes: calls flow again, still Closed, no probe discipline.
	clk.Advance(100 * time.Millisecond)
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("after window: Allow = (%v, %v), want (true, false)", ok, probe)
	}
	if got := b.BackoffRemaining(); got != 0 {
		t.Fatalf("BackoffRemaining after expiry = %v", got)
	}
}

func TestBackpressureKeepsLongerWindow(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	b := backpressureSet(clk).Breaker("ep")
	b.Backpressure(200 * time.Millisecond)
	b.Backpressure(50 * time.Millisecond) // shorter: must not shrink the window
	if got := b.BackoffRemaining(); got != 200*time.Millisecond {
		t.Fatalf("BackoffRemaining = %v, want 200ms", got)
	}
	b.Backpressure(0) // no-op
	if got := b.BackoffRemaining(); got != 200*time.Millisecond {
		t.Fatalf("zero-duration backpressure changed window: %v", got)
	}
}

func TestBackpressureDoesNotCountAsFailure(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	reg := metrics.NewRegistry()
	s := NewSet(Config{Threshold: 2, Clock: clk, Metrics: reg, Service: "bp"})
	b := s.Breaker("ep")

	// Backpressure many times: the breaker must stay Closed (a real
	// failure threshold of 2 would have opened it).
	for i := 0; i < 10; i++ {
		b.Backpressure(time.Millisecond)
		clk.Advance(time.Millisecond)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed", got)
	}
	if got := reg.Counter(metrics.Labels("breaker_failures_total",
		"service", "bp", "endpoint", "ep")).Value(); got != 0 {
		t.Fatalf("backpressure counted %d failures", got)
	}
	if got := reg.Counter(metrics.Labels("breaker_backpressure_total",
		"service", "bp", "endpoint", "ep")).Value(); got != 10 {
		t.Fatalf("breaker_backpressure_total = %d, want 10", got)
	}
}

func TestBackpressureInteractsWithOpenState(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	b := backpressureSet(clk).Breaker("ep")

	// Open the breaker the hard way; backpressure bookkeeping must not
	// interfere with the open/half-open machinery.
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open", got)
	}
	b.Backpressure(time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow while Open")
	}
	// Cooldown passes: the half-open probe is admitted (the backpressure
	// window applies to Closed operation, not to probe recovery).
	clk.Advance(5 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("probe after cooldown: (%v, %v), want (true, true)", ok, probe)
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("state after probe success = %v", got)
	}
	// The stale window set while Open has long expired by now.
	if ok, _ := b.Allow(); !ok {
		t.Fatal("Allow after recovery")
	}
}
