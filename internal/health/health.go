// Package health tracks per-endpoint liveness with consecutive-failure
// circuit breakers. The HNS fronts name services it does not control —
// BIND replicas, Clearinghouses, NSMs — and a dead backend must cost one
// detection, not one timeout per call. A Set holds one Breaker per
// endpoint address; RPC clients consult the breaker before dialing and
// report the outcome after, so traffic routes itself around endpoints
// that have stopped answering and probes them back in once they recover.
//
// The state machine is the classic three-state breaker:
//
//	Closed ──(Threshold consecutive failures)──▶ Open
//	Open ──(Cooldown elapses; next caller becomes the probe)──▶ HalfOpen
//	HalfOpen ──(probe succeeds)──▶ Closed
//	HalfOpen ──(probe fails)──▶ Open (cooldown restarts)
//
// While Open, Allow refuses every caller, so a breaker-aware client
// fails over (or fails fast) without charging the caller any simulated
// wait. HalfOpen admits exactly one in-flight probe; concurrent callers
// are refused until the probe concludes, so a recovering server sees one
// request, not a stampede.
package health

import (
	"errors"
	"sync"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

// ErrNoLiveEndpoint is returned by breaker-aware clients when every
// replica's breaker refuses the call — the fail-fast outcome.
var ErrNoLiveEndpoint = errors.New("health: no live endpoint")

// State is a breaker's position in the state machine.
type State int32

// Breaker states. The numeric values are exported as the breaker_state
// gauge, so they are part of the metrics contract.
const (
	Closed   State = 0 // endpoint healthy; calls flow
	Open     State = 1 // endpoint presumed dead; calls refused until cooldown
	HalfOpen State = 2 // probationary; a single probe is in flight
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Config parameterizes a Set. The zero value is usable.
type Config struct {
	// Threshold is how many consecutive failures open the breaker.
	// Non-positive means DefaultThreshold.
	Threshold int

	// Cooldown is how long an Open breaker refuses calls before letting
	// a single probe through. Non-positive means DefaultCooldown. The
	// cooldown is measured on Clock — real time in daemons, a FakeClock
	// in experiments — never on simulated call time.
	Cooldown time.Duration

	// Clock supplies the time base for cooldowns. Nil means real time.
	Clock simtime.Clock

	// Metrics receives the endpoint_health / breaker_* series. Nil means
	// the process-wide metrics.Default(); metrics.Discard disables them.
	Metrics *metrics.Registry

	// Service labels the exported series, so several breaker sets in one
	// process (meta-BIND vs. an NSM's underlying server) stay distinct.
	// Empty means "default".
	Service string
}

// Defaults for Config's zero fields.
const (
	DefaultThreshold = 3
	DefaultCooldown  = 5 * time.Second
)

// Set is a collection of breakers, one per endpoint address, created
// lazily on first use. Safe for concurrent use.
type Set struct {
	cfg Config

	mu       sync.RWMutex
	breakers map[string]*Breaker
}

// NewSet creates a breaker set, resolving Config defaults.
func NewSet(cfg Config) *Set {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.RealClock{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default()
	}
	if cfg.Service == "" {
		cfg.Service = "default"
	}
	return &Set{cfg: cfg, breakers: make(map[string]*Breaker)}
}

// Breaker returns endpoint's breaker, creating it (Closed) on first use.
func (s *Set) Breaker(endpoint string) *Breaker {
	s.mu.RLock()
	b := s.breakers[endpoint]
	s.mu.RUnlock()
	if b != nil {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b = s.breakers[endpoint]; b != nil {
		return b
	}
	reg := s.cfg.Metrics
	b = &Breaker{
		cfg:      &s.cfg,
		endpoint: endpoint,
		healthy: reg.Gauge(metrics.Labels("endpoint_health",
			"service", s.cfg.Service, "endpoint", endpoint)),
		stateG: reg.Gauge(metrics.Labels("breaker_state",
			"service", s.cfg.Service, "endpoint", endpoint)),
		opens: reg.Counter(metrics.Labels("breaker_opens_total",
			"service", s.cfg.Service, "endpoint", endpoint)),
		probes: reg.Counter(metrics.Labels("breaker_probes_total",
			"service", s.cfg.Service, "endpoint", endpoint)),
		failures: reg.Counter(metrics.Labels("breaker_failures_total",
			"service", s.cfg.Service, "endpoint", endpoint)),
		backpr: reg.Counter(metrics.Labels("breaker_backpressure_total",
			"service", s.cfg.Service, "endpoint", endpoint)),
	}
	b.healthy.Set(1)
	s.breakers[endpoint] = b
	return b
}

// Breaker is one endpoint's health state. Callers ask Allow before a
// call and report Success or Failure after; the breaker does the rest.
type Breaker struct {
	cfg      *Config
	endpoint string

	healthy  *metrics.Gauge   // 1 while calls are admitted normally, 0 while open
	stateG   *metrics.Gauge   // numeric State
	opens    *metrics.Counter // transitions into Open
	probes   *metrics.Counter // half-open probes admitted
	failures *metrics.Counter // failures reported
	backpr   *metrics.Counter // backpressure windows recorded

	mu       sync.Mutex
	state    State
	fails    int       // consecutive failures while Closed
	openedAt time.Time // Clock time of the last transition into Open
	probing  bool      // a half-open probe is in flight

	// backoffUntil is the server-requested backpressure window: an
	// Overloaded reply means the endpoint is alive but shedding, so Allow
	// refuses calls until the window passes without opening the breaker
	// (no probe discipline, no cooldown — the server named its own
	// retry-after). Sharing the breaker table keeps one map of endpoint
	// state, not two.
	backoffUntil time.Time
}

// Allow reports whether a call to this endpoint may proceed. The second
// result is true when the admitted call is the half-open probe — its
// outcome decides whether the endpoint rejoins the rotation. A caller
// that gets (true, _) must report Success or Failure afterwards.
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if !b.backoffUntil.IsZero() {
			if b.cfg.Clock.Now().Before(b.backoffUntil) {
				return false, false
			}
			b.backoffUntil = time.Time{}
		}
		return true, false
	case Open:
		if b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		// Cooldown served: this caller becomes the probe.
		b.state = HalfOpen
		b.probing = true
		b.stateG.Set(int64(HalfOpen))
		b.probes.Inc()
		return true, true
	default: // HalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		b.probes.Inc()
		return true, true
	}
}

// Success records a successful call: the endpoint is healthy, whatever
// state the breaker was in.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.probing = false
	b.healthy.Set(1)
	b.stateG.Set(int64(Closed))
}

// Failure records a failed call. The breaker opens after Threshold
// consecutive failures, or immediately when a half-open probe fails.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures.Inc()
	b.fails++
	if b.state == HalfOpen || (b.state == Closed && b.fails >= b.cfg.Threshold) {
		if b.state != Open {
			b.opens.Inc()
		}
		b.state = Open
		b.openedAt = b.cfg.Clock.Now()
		b.probing = false
		b.healthy.Set(0)
		b.stateG.Set(int64(Open))
	} else if b.state == Open {
		// A straggler failing after the breaker already opened (two
		// calls were in flight): restart the cooldown.
		b.openedAt = b.cfg.Clock.Now()
	}
}

// Backpressure records a server-requested backoff: the endpoint answered
// Overloaded, so calls are refused for d without counting a failure or
// opening the breaker — the server is alive, just shedding. A longer
// window already in force is kept; Success and Failure leave the window
// untouched (an admitted probe that squeaks through early does not erase
// the server's own retry-after hint — the window simply expires).
func (b *Breaker) Backpressure(d time.Duration) {
	if d <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	until := b.cfg.Clock.Now().Add(d)
	if until.After(b.backoffUntil) {
		b.backoffUntil = until
	}
	b.backpr.Inc()
}

// BackoffRemaining reports how much of a backpressure window is left
// (zero when none is in force).
func (b *Breaker) BackoffRemaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.backoffUntil.IsZero() {
		return 0
	}
	if d := b.backoffUntil.Sub(b.cfg.Clock.Now()); d > 0 {
		return d
	}
	return 0
}

// State reports the breaker's current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Endpoint reports the address this breaker guards.
func (b *Breaker) Endpoint() string { return b.endpoint }
