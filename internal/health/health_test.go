package health

import (
	"testing"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

func newTestSet(clk simtime.Clock) (*Set, *metrics.Registry) {
	reg := metrics.NewRegistry()
	s := NewSet(Config{
		Threshold: 3,
		Cooldown:  10 * time.Second,
		Clock:     clk,
		Metrics:   reg,
		Service:   "test",
	})
	return s, reg
}

func counter(t *testing.T, reg *metrics.Registry, name, endpoint string) int64 {
	t.Helper()
	return reg.Counter(metrics.Labels(name, "service", "test", "endpoint", endpoint)).Value()
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")

	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("failure %d: breaker refused while under threshold", i)
		}
		b.Failure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("after 2 failures state = %v, want Closed", got)
	}
	b.Failure() // third consecutive failure
	if got := b.State(); got != Open {
		t.Fatalf("after 3 failures state = %v, want Open", got)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if got := counter(t, reg, "breaker_opens_total", "a:1"); got != 1 {
		t.Fatalf("breaker_opens_total = %d, want 1", got)
	}
	if got := reg.Gauge(metrics.Labels("endpoint_health", "service", "test", "endpoint", "a:1")).Value(); got != 0 {
		t.Fatalf("endpoint_health = %d, want 0 while open", got)
	}
}

func TestSuccessResetsConsecutiveFailures(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	b := s.Breaker("a:1")

	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != Closed {
		t.Fatalf("interleaved success should reset the streak; state = %v", got)
	}
}

func TestHalfOpenProbeAdmitsExactlyOne(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(10 * time.Second)

	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown Allow = (%v, %v), want probe admission", ok, probe)
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", got)
	}
	// A second caller while the probe is in flight is refused.
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second caller during the probe")
	}
	if got := counter(t, reg, "breaker_probes_total", "a:1"); got != 1 {
		t.Fatalf("breaker_probes_total = %d, want 1", got)
	}
}

func TestProbeSuccessCloses(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	b := s.Breaker("a:1")
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(10 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("expected probe admission")
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("state after probe success = %v, want Closed", got)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("closed breaker Allow = (%v, %v), want plain admission", ok, probe)
	}
}

func TestProbeFailureReopensAndRestartsCooldown(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(10 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("expected probe admission")
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state after probe failure = %v, want Open", got)
	}
	// Cooldown restarted at the probe failure: still refused short of it.
	clk.Advance(9 * time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("reopened breaker admitted a call before the new cooldown elapsed")
	}
	clk.Advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("expected a second probe after the restarted cooldown")
	}
	if got := counter(t, reg, "breaker_opens_total", "a:1"); got != 2 {
		t.Fatalf("breaker_opens_total = %d, want 2 (initial open + probe failure)", got)
	}
}

func TestSetSharesBreakerPerEndpoint(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	if s.Breaker("a:1") != s.Breaker("a:1") {
		t.Fatal("same endpoint should return the same breaker")
	}
	if s.Breaker("a:1") == s.Breaker("b:1") {
		t.Fatal("distinct endpoints should get distinct breakers")
	}
}

func TestDiscardMetricsAreNoOp(t *testing.T) {
	s := NewSet(Config{Metrics: metrics.Discard})
	b := s.Breaker("a:1")
	b.Failure()
	b.Success()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker logic should work with Discard metrics")
	}
}

func TestConcurrentBreakerAccess(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			b := s.Breaker("shared:1")
			for i := 0; i < 200; i++ {
				if ok, _ := b.Allow(); ok {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				clk.Advance(time.Second)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
