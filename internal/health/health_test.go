package health

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
)

func newTestSet(clk simtime.Clock) (*Set, *metrics.Registry) {
	reg := metrics.NewRegistry()
	s := NewSet(Config{
		Threshold: 3,
		Cooldown:  10 * time.Second,
		Clock:     clk,
		Metrics:   reg,
		Service:   "test",
	})
	return s, reg
}

func counter(t *testing.T, reg *metrics.Registry, name, endpoint string) int64 {
	t.Helper()
	return reg.Counter(metrics.Labels(name, "service", "test", "endpoint", endpoint)).Value()
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")

	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("failure %d: breaker refused while under threshold", i)
		}
		b.Failure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("after 2 failures state = %v, want Closed", got)
	}
	b.Failure() // third consecutive failure
	if got := b.State(); got != Open {
		t.Fatalf("after 3 failures state = %v, want Open", got)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if got := counter(t, reg, "breaker_opens_total", "a:1"); got != 1 {
		t.Fatalf("breaker_opens_total = %d, want 1", got)
	}
	if got := reg.Gauge(metrics.Labels("endpoint_health", "service", "test", "endpoint", "a:1")).Value(); got != 0 {
		t.Fatalf("endpoint_health = %d, want 0 while open", got)
	}
}

func TestSuccessResetsConsecutiveFailures(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	b := s.Breaker("a:1")

	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != Closed {
		t.Fatalf("interleaved success should reset the streak; state = %v", got)
	}
}

func TestHalfOpenProbeAdmitsExactlyOne(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(10 * time.Second)

	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown Allow = (%v, %v), want probe admission", ok, probe)
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", got)
	}
	// A second caller while the probe is in flight is refused.
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second caller during the probe")
	}
	if got := counter(t, reg, "breaker_probes_total", "a:1"); got != 1 {
		t.Fatalf("breaker_probes_total = %d, want 1", got)
	}
}

func TestProbeSuccessCloses(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	b := s.Breaker("a:1")
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(10 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("expected probe admission")
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("state after probe success = %v, want Closed", got)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("closed breaker Allow = (%v, %v), want plain admission", ok, probe)
	}
}

func TestProbeFailureReopensAndRestartsCooldown(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(10 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("expected probe admission")
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state after probe failure = %v, want Open", got)
	}
	// Cooldown restarted at the probe failure: still refused short of it.
	clk.Advance(9 * time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("reopened breaker admitted a call before the new cooldown elapsed")
	}
	clk.Advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("expected a second probe after the restarted cooldown")
	}
	if got := counter(t, reg, "breaker_opens_total", "a:1"); got != 2 {
		t.Fatalf("breaker_opens_total = %d, want 2 (initial open + probe failure)", got)
	}
}

func TestSetSharesBreakerPerEndpoint(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	if s.Breaker("a:1") != s.Breaker("a:1") {
		t.Fatal("same endpoint should return the same breaker")
	}
	if s.Breaker("a:1") == s.Breaker("b:1") {
		t.Fatal("distinct endpoints should get distinct breakers")
	}
}

func TestDiscardMetricsAreNoOp(t *testing.T) {
	s := NewSet(Config{Metrics: metrics.Discard})
	b := s.Breaker("a:1")
	b.Failure()
	b.Success()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker logic should work with Discard metrics")
	}
}

func TestConcurrentBreakerAccess(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			b := s.Breaker("shared:1")
			for i := 0; i < 200; i++ {
				if ok, _ := b.Allow(); ok {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				clk.Advance(time.Second)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// TestHalfOpenProbeRacesFailure: while the half-open probe is in flight,
// a straggler from the pre-open era reports Failure. A half-open failure
// is authoritative — the breaker re-opens immediately (second open,
// cooldown restarted) and the probe slot clears, so when the probe itself
// later reports Success the breaker closes again: Success is always
// authoritative, whatever raced in between.
func TestHalfOpenProbeRacesFailure(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")

	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open", got)
	}

	clk.Advance(11 * time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after cooldown = (%v, %v), want the probe slot", ok, probe)
	}

	// The straggler's failure lands while the probe is still in flight.
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("after racing failure state = %v, want Open", got)
	}
	if got := counter(t, reg, "breaker_opens_total", "a:1"); got != 2 {
		t.Fatalf("breaker_opens_total = %d, want 2 (initial + re-open)", got)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker admitted a call with no cooldown served")
	}

	// The probe's success arrives late — success is authoritative.
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("after probe success state = %v, want Closed", got)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("closed breaker Allow = (%v, %v), want plain admit", ok, probe)
	}
	if got := counter(t, reg, "breaker_probes_total", "a:1"); got != 1 {
		t.Fatalf("breaker_probes_total = %d, want 1", got)
	}
}

// TestHalfOpenProbeFailureReopens: the probe itself fails — back to Open
// immediately, and the next caller inside the fresh cooldown is refused;
// after another cooldown a second probe is admitted.
func TestHalfOpenProbeFailureReopens(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")

	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(11 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("Allow = (%v, %v), want probe", ok, probe)
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open after failed probe", got)
	}
	clk.Advance(5 * time.Second) // half the cooldown: still refused
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted a call before the restarted cooldown elapsed")
	}
	clk.Advance(6 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("second probe Allow = (%v, %v), want probe", ok, probe)
	}
	if got := counter(t, reg, "breaker_probes_total", "a:1"); got != 2 {
		t.Fatalf("breaker_probes_total = %d, want 2", got)
	}
	if got := counter(t, reg, "breaker_opens_total", "a:1"); got != 2 {
		t.Fatalf("breaker_opens_total = %d, want 2", got)
	}
}

// TestOpenStragglerRestartsCooldown: a failure reported while already
// Open (a second in-flight call finishing late) restarts the cooldown
// instead of being lost — the endpoint just demonstrated it is still
// dead, so probing is postponed.
func TestOpenStragglerRestartsCooldown(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, reg := newTestSet(clk)
	b := s.Breaker("a:1")

	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(9 * time.Second) // one second shy of cooldown
	b.Failure()                  // straggler: restarts the clock
	if got := counter(t, reg, "breaker_opens_total", "a:1"); got != 1 {
		t.Fatalf("straggler while Open bumped breaker_opens_total to %d, want 1", got)
	}
	clk.Advance(2 * time.Second) // past the original deadline, inside the new one
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted a probe on the pre-straggler cooldown")
	}
	clk.Advance(9 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("Allow = (%v, %v), want probe after restarted cooldown", ok, probe)
	}
}

// TestHalfOpenRaceHammer drives Allow/Success/Failure from many
// goroutines across repeated open/probe/close cycles; run under -race it
// checks the breaker's locking, and afterwards the breaker must still be
// in a legal state with exactly one probe admitted per half-open window.
func TestHalfOpenRaceHammer(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	s, _ := newTestSet(clk)
	b := s.Breaker("a:1")

	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < 3; i++ {
			b.Failure()
		}
		clk.Advance(11 * time.Second)

		var probes int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ok, probe := b.Allow()
				if probe {
					atomic.AddInt64(&probes, 1)
				}
				if ok {
					if g%2 == 0 {
						b.Success()
					} else {
						b.Failure()
					}
				}
			}(g)
		}
		wg.Wait()
		if probes > 1 {
			t.Fatalf("cycle %d admitted %d probes in one half-open window", cycle, probes)
		}
		b.Success() // settle to Closed for the next cycle
		if got := b.State(); got != Closed {
			t.Fatalf("cycle %d: state = %v after settling Success", cycle, got)
		}
	}
}
