// Package hrpc implements the Heterogeneous Remote Procedure Call facility
// (Bershad et al. 1987) the HNS was built for and stress-tested by.
//
// HRPC factors an RPC facility into five components with clean interfaces:
//
//   - stubs: here, Procedure descriptors declaring argument/result types
//     (standing in for stub-compiler output);
//   - binding protocol: how a client locates a particular server — the
//     portmapper client in this package plus the binding NSMs in package
//     nsm;
//   - data representation: package marshal (XDR, Courier);
//   - transport protocol: package transport;
//   - control protocol: the call/reply header formats in this package
//     (Sun RPC-style, Courier-style, and the Raw suite).
//
// The defining property is that the last four components are "black boxes"
// that can be mixed and matched *at bind time*, long after the client was
// written and linked: a Binding names the component set plus the endpoint,
// and Client.Call assembles the protocol stack from those names on every
// call. That is exactly what lets one client import Sun RPC, Courier, and
// raw message-passing services through a single interface.
package hrpc

import (
	"fmt"

	"hns/internal/marshal"
)

// Binding is the system-independent handle a client needs to call a remote
// procedure: the endpoint plus the names of the four dynamically selected
// protocol components. It is what FindNSM returns for NSMs and what binding
// NSMs return for application servers.
type Binding struct {
	// Host is the (descriptive) host name the server lives on.
	Host string
	// Addr is the transport address to dial.
	Addr string
	// Transport, DataRep, and Control name the protocol components,
	// resolved through the transport.Network and the package registries.
	Transport string
	DataRep   string
	Control   string
	// Program and Version identify the remote program, in the Sun RPC
	// sense; Courier calls them program and version too.
	Program uint32
	Version uint32
}

// String implements fmt.Stringer.
func (b Binding) String() string {
	return fmt.Sprintf("%s/%s/%s!%s#%d.%d", b.Transport, b.Control, b.DataRep, b.Addr, b.Program, b.Version)
}

// IsZero reports whether b is the zero binding.
func (b Binding) IsZero() bool { return b == Binding{} }

// Validate checks that the binding is plausibly complete. Component names
// are resolved lazily at call time; Validate only catches obviously empty
// bindings early.
func (b Binding) Validate() error {
	switch {
	case b.Addr == "":
		return fmt.Errorf("hrpc: binding %v has no address", b)
	case b.Transport == "":
		return fmt.Errorf("hrpc: binding %v has no transport", b)
	case b.DataRep == "":
		return fmt.Errorf("hrpc: binding %v has no data representation", b)
	case b.Control == "":
		return fmt.Errorf("hrpc: binding %v has no control protocol", b)
	}
	return nil
}

// Procedure describes one remote procedure the way a generated stub would:
// its number, argument and result types, and the marshalling style of the
// stubs. Interfaces are shared between client and server by sharing
// Procedure values.
type Procedure struct {
	// Name is used in errors and traces.
	Name string
	// ID is the procedure number within the program.
	ID uint32
	// Args and Ret are the declared message shapes.
	Args marshal.Type
	Ret  marshal.Type
	// Style prices the stub marshalling: StyleGenerated for stub-compiler
	// output (the default), StyleHand for hand-coded routines, StyleNone
	// for interfaces that charge their own marshalling costs.
	Style marshal.Style
	// Cacheable marks a procedure safe for the server's marshalled-reply
	// cache: read-only and deterministic given server state, so a repeat
	// of the identical request may be answered from a stored encoded
	// result. Procedures with side effects (updates, transfers counted as
	// work) must leave it false.
	Cacheable bool
}

// Suite bundles the component selection of a protocol family, as the
// paper's "protocol suites" did. Predefined suites mirror the systems the
// HCS prototype emulated.
type Suite struct {
	Transport string
	DataRep   string
	Control   string
}

// The protocol suites of the HCS environment. The transport entries name
// the simulated remote transports; deployments on real sockets substitute
// "udp-net"/"tcp-net".
var (
	// SuiteSunRPC is Sun RPC: UDP, XDR, ONC-style control.
	SuiteSunRPC = Suite{Transport: "udp", DataRep: "xdr", Control: "sunrpc"}
	// SuiteCourier is Xerox Courier: TCP (SPP stand-in), Courier data rep
	// and control.
	SuiteCourier = Suite{Transport: "tcp", DataRep: "courier", Control: "courier"}
	// SuiteRaw is the Raw HRPC suite: TCP message passing with a minimal
	// request/response header ("make a request and wait for a response").
	SuiteRaw = Suite{Transport: "tcp", DataRep: "xdr", Control: "raw"}
	// SuiteLocal is the in-process suite used for linked-in components.
	SuiteLocal = Suite{Transport: "inproc", DataRep: "xdr", Control: "raw"}

	// The *-Net variants are the same protocol suites deployed over real
	// sockets, used by the cmd/ daemons.
	SuiteSunRPCNet  = Suite{Transport: "udp-net", DataRep: "xdr", Control: "sunrpc"}
	SuiteCourierNet = Suite{Transport: "tcp-net", DataRep: "courier", Control: "courier"}
	SuiteRawNet     = Suite{Transport: "tcp-net", DataRep: "xdr", Control: "raw"}
)

// Bind builds a Binding from a suite and an endpoint.
func (s Suite) Bind(host, addr string, program, version uint32) Binding {
	return Binding{
		Host:      host,
		Addr:      addr,
		Transport: s.Transport,
		DataRep:   s.DataRep,
		Control:   s.Control,
		Program:   program,
		Version:   version,
	}
}
