package hrpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// Client places HRPC calls. It resolves a Binding's component names to
// implementations at call time — the "mix and match at bind time" property
// — and caches transport connections per endpoint. A Client is safe for
// concurrent use.
type Client struct {
	net *transport.Network
	xid atomic.Uint32

	// FreshConn, when set, makes every call dial (and close) its own
	// connection instead of using the cache. The Raw protocol suite of
	// the era worked this way — one request/response exchange per
	// connection — and the HNS's interface to its meta-BIND pays the
	// resulting per-call setup cost. Set before first use.
	FreshConn bool

	// Retries is how many times a call is retransmitted after a
	// transport-level loss (the Sun RPC discipline: datagrams get lost;
	// the RPC layer times out and resends). Each retry charges the
	// model's retransmission timeout. Remote faults — a live server
	// saying no — are never retried. Set before first use.
	Retries int

	// Metrics receives the client's hrpc_client_* series. Nil means the
	// process-wide metrics.Default(); metrics.Discard disables them.
	// Set before first use.
	Metrics *metrics.Registry

	mu    sync.Mutex
	conns map[string]transport.Conn
}

// registry resolves the effective metrics registry.
func (c *Client) registry() *metrics.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return metrics.Default()
}

// NewClient creates a client on the given network.
func NewClient(net *transport.Network) *Client {
	return &Client{net: net, conns: make(map[string]transport.Conn)}
}

// Network exposes the client's network (for components that need the cost
// model or to dial directly).
func (c *Client) Network() *transport.Network { return c.net }

// RemoteFault is an application-level error returned by the remote
// procedure, as distinguished from a transport or protocol failure.
type RemoteFault struct {
	Proc string
	Msg  string
}

// Error implements error.
func (e *RemoteFault) Error() string { return fmt.Sprintf("hrpc: %s: %s", e.Proc, e.Msg) }

// xidMatcher lets control protocols with narrower transaction IDs define
// their own reply-matching rule (Courier truncates to 16 bits).
type xidMatcher interface {
	matchXID(call, reply uint32) bool
}

// Call invokes procedure p on the server identified by b, marshalling args
// and unmarshalling the result according to the binding's components. All
// simulated costs on the call path are charged to the meter in ctx.
func (c *Client) Call(ctx context.Context, b Binding, p Procedure, args marshal.Value) (_ marshal.Value, err error) {
	reg := c.registry()
	if reg.Enabled() {
		reg.Counter(metrics.Labels("hrpc_client_calls_total", "proc", p.Name)).Inc()
		meter := simtime.From(ctx)
		before := meter.Elapsed()
		defer func() {
			reg.Histogram(metrics.Labels("hrpc_client_call_ms", "addr", b.Addr)).
				Observe(meter.Elapsed() - before)
			if err != nil {
				reg.Counter(metrics.Labels("hrpc_client_errors_total",
					"kind", errKind(err))).Inc()
			}
		}()
	}
	if err := b.Validate(); err != nil {
		return marshal.Value{}, err
	}
	tr, err := c.net.Transport(b.Transport)
	if err != nil {
		return marshal.Value{}, err
	}
	rep, err := marshal.Lookup(b.DataRep)
	if err != nil {
		return marshal.Value{}, err
	}
	ctl, err := LookupControl(b.Control)
	if err != nil {
		return marshal.Value{}, err
	}
	model := c.net.Model()

	// Client-side stub work: control bookkeeping plus argument marshalling.
	simtime.Charge(ctx, ctl.Overhead(model))
	argBytes, err := marshal.Marshal(rep, args, p.Args)
	if err != nil {
		return marshal.Value{}, fmt.Errorf("hrpc: %s: marshal args: %w", p.Name, err)
	}
	marshal.ChargeValue(ctx, model, p.Style, args)

	xid := c.xid.Add(1)
	frame, err := ctl.EncodeCall(CallHeader{
		XID: xid, Program: b.Program, Version: b.Version, Procedure: p.ID,
	}, argBytes)
	if err != nil {
		return marshal.Value{}, err
	}

	respFrame, err := c.roundTrip(ctx, tr, b.Addr, frame)
	if err != nil {
		return marshal.Value{}, fmt.Errorf("hrpc: %s to %s: %w", p.Name, b.Addr, err)
	}

	rh, resBytes, err := ctl.DecodeReply(respFrame)
	if err != nil {
		return marshal.Value{}, fmt.Errorf("hrpc: %s: %w", p.Name, err)
	}
	if m, ok := ctl.(xidMatcher); ok {
		if !m.matchXID(xid, rh.XID) {
			return marshal.Value{}, fmt.Errorf("%w: sent %d, got %d", ErrXIDMismatch, xid, rh.XID)
		}
	} else if rh.XID != xid {
		return marshal.Value{}, fmt.Errorf("%w: sent %d, got %d", ErrXIDMismatch, xid, rh.XID)
	}
	if rh.Err != "" {
		return marshal.Value{}, &RemoteFault{Proc: p.Name, Msg: rh.Err}
	}

	ret, err := marshal.Unmarshal(rep, resBytes, p.Ret)
	if err != nil {
		return marshal.Value{}, fmt.Errorf("hrpc: %s: unmarshal result: %w", p.Name, err)
	}
	marshal.ChargeValue(ctx, model, p.Style, ret)
	return ret, nil
}

// errKind buckets a call error for hrpc_client_errors_total.
func errKind(err error) string {
	var rf *RemoteFault
	if errors.As(err, &rf) {
		return "remote_fault"
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return "remote_error"
	}
	return "transport"
}

// roundTrip sends one frame, retransmitting after transport-level losses
// up to c.Retries times (each retry first charges the retransmission
// timeout the caller would have sat through).
func (c *Client) roundTrip(ctx context.Context, tr transport.Transport, addr string, frame []byte) ([]byte, error) {
	reg := c.registry()
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			simtime.Charge(ctx, c.net.Model().RetransmitTimeout)
			reg.Counter("hrpc_client_retries_total").Inc()
		}
		resp, err := c.sendOnce(ctx, tr, addr, frame)
		if err == nil {
			return resp, nil
		}
		// A RemoteError is a live server saying no; retransmitting
		// cannot help. A dead context likewise.
		var re *transport.RemoteError
		if errors.As(err, &re) || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	// Every retransmission was lost too: the call timed out for good.
	reg.Counter("hrpc_client_timeouts_total").Inc()
	return nil, lastErr
}

// sendOnce performs a single exchange over a cached connection, redialing
// once if a cached connection has gone stale.
func (c *Client) sendOnce(ctx context.Context, tr transport.Transport, addr string, frame []byte) ([]byte, error) {
	if c.FreshConn {
		conn, err := tr.Dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		return conn.Call(ctx, frame)
	}
	key := tr.Name() + "!" + addr
	conn, cached, err := c.conn(ctx, tr, addr, key)
	if err != nil {
		return nil, err
	}
	resp, err := conn.Call(ctx, frame)
	if err == nil {
		return resp, nil
	}
	// A stale cached connection gets one redial within the same attempt.
	var re *transport.RemoteError
	if errors.As(err, &re) || !cached {
		return nil, err
	}
	c.dropConn(key, conn)
	conn2, _, err2 := c.conn(ctx, tr, addr, key)
	if err2 != nil {
		return nil, err
	}
	return conn2.Call(ctx, frame)
}

// conn returns a cached connection for key, dialing if absent. The second
// result reports whether the connection came from the cache.
func (c *Client) conn(ctx context.Context, tr transport.Transport, addr, key string) (transport.Conn, bool, error) {
	c.mu.Lock()
	if conn, ok := c.conns[key]; ok {
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()

	conn, err := tr.Dial(ctx, addr)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.conns[key]; ok {
		// Lost the race; keep the existing connection.
		_ = conn.Close()
		return prev, true, nil
	}
	c.conns[key] = conn
	return conn, false, nil
}

func (c *Client) dropConn(key string, conn transport.Conn) {
	c.mu.Lock()
	if c.conns[key] == conn {
		delete(c.conns, key)
	}
	c.mu.Unlock()
	_ = conn.Close()
}

// Close releases every cached connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for k, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.conns, k)
	}
	return first
}
