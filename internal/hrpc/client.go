package hrpc

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hns/internal/bufpool"
	"hns/internal/health"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// Client places HRPC calls. It resolves a Binding's component names to
// implementations at call time — the "mix and match at bind time" property
// — and pools transport connections per endpoint (one by default; see
// PoolConfig for multiplexed fan-out). A Client is safe for concurrent
// use.
type Client struct {
	net *transport.Network
	xid atomic.Uint32

	// FreshConn, when set, makes every call dial (and close) its own
	// connection instead of using the cache. The Raw protocol suite of
	// the era worked this way — one request/response exchange per
	// connection — and the HNS's interface to its meta-BIND pays the
	// resulting per-call setup cost. Set before first use.
	FreshConn bool

	// Retries is how many times a call is retransmitted after a
	// transport-level loss (the Sun RPC discipline: datagrams get lost;
	// the RPC layer times out and resends). Each retry charges the
	// model's retransmission timeout. Remote faults — a live server
	// saying no — are never retried. Set before first use.
	Retries int

	// Metrics receives the client's hrpc_client_* series. Nil means the
	// process-wide metrics.Default(); metrics.Discard disables them.
	// Set before first use.
	Metrics *metrics.Registry

	// Policy bounds the retransmission discipline per call. The zero
	// value derives its budget from Retries so legacy configuration
	// keeps its exact cost behavior. Set before first use.
	Policy RetryPolicy

	// PropagateDeadline, when set, carries the caller's remaining budget
	// with every call attempt (an explicit WithBudget value, else the
	// ctx deadline): deadline-aware servers shed work that arrives
	// already expired, and each retransmission carries what remains
	// after the charged backoff, not the original budget. Off by
	// default — the prefix changes the wire bytes, so it is opt-in per
	// client, and pre-extension servers would reject the frame. Set
	// before first use.
	PropagateDeadline bool

	// Health parameterizes the per-endpoint circuit breakers. The zero
	// value uses the package defaults with real time. Set before first
	// use.
	Health health.Config

	// Pool bounds the per-endpoint connection pool (see pool.go). The
	// zero value keeps the legacy discipline: one connection per
	// endpoint, kept until Close. Set before first use.
	Pool PoolConfig

	mu    sync.Mutex
	pools map[string]*connPool

	// brokenSeen records, per endpoint, the newest broken-connection ID
	// already charged to its breaker: a multiplexed connection dying with
	// many calls in flight fails them all with one ConnBrokenError, and
	// the breaker must see one endpoint failure, not one per caller.
	brokenMu   sync.Mutex
	brokenSeen map[string]uint64

	repMu    sync.RWMutex
	replicas map[string][]string // primary addr → ordered replica set

	healthOnce sync.Once
	healthSet  *health.Set
}

// RetryPolicy bounds how long one call may spend detecting and retrying
// transport-level losses. All durations are simulated time, charged to
// the caller's meter exactly as the waits they model.
type RetryPolicy struct {
	// Budget caps the total retransmission wait one call may charge.
	// When the next backoff would exceed what remains, the call charges
	// the remainder and fails with ErrCallTimeout — a blackout costs
	// exactly Budget, never more. Non-positive means Retries × the
	// model's retransmission timeout (the legacy discipline's cost).
	Budget time.Duration

	// Base is the first retransmission timeout. Non-positive means the
	// model's RetransmitTimeout. The first wait is exactly Base —
	// deterministic, so calibrated costs stay reproducible.
	Base time.Duration

	// Max caps the exponential backoff. Non-positive means 4 × Base.
	Max time.Duration

	// Jitter, in (0, 1], spreads backoffs ±Jitter fraction around the
	// exponential schedule from the second wait on. The spread is a
	// deterministic hash of (endpoint, attempt) — reproducible runs,
	// no shared randomness. Zero disables jitter.
	Jitter float64
}

// SetReplicas installs an ordered replica set for calls bound to
// primary: the primary is tried first, then each replica in order as
// breakers take endpoints out of rotation. The Binding itself is
// untouched (it stays a comparable value and its wire form is
// unchanged); replica routing is client configuration.
func (c *Client) SetReplicas(primary string, replicas ...string) {
	set := append([]string{primary}, replicas...)
	c.repMu.Lock()
	defer c.repMu.Unlock()
	if c.replicas == nil {
		c.replicas = make(map[string][]string)
	}
	c.replicas[primary] = set
}

// replicasFor resolves the replica set for addr; a single-element set
// (just addr) when none was configured.
func (c *Client) replicasFor(addr string) []string {
	c.repMu.RLock()
	set := c.replicas[addr]
	c.repMu.RUnlock()
	if set == nil {
		return []string{addr}
	}
	return set
}

// breakers returns the client's breaker set, building it on first use
// from c.Health.
func (c *Client) breakers() *health.Set {
	c.healthOnce.Do(func() {
		cfg := c.Health
		if cfg.Metrics == nil {
			cfg.Metrics = c.registry()
		}
		if cfg.Service == "" {
			cfg.Service = "hrpc"
		}
		c.healthSet = health.NewSet(cfg)
	})
	return c.healthSet
}

// registry resolves the effective metrics registry.
func (c *Client) registry() *metrics.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return metrics.Default()
}

// NewClient creates a client on the given network.
func NewClient(net *transport.Network) *Client {
	return &Client{net: net, pools: make(map[string]*connPool)}
}

// Network exposes the client's network (for components that need the cost
// model or to dial directly).
func (c *Client) Network() *transport.Network { return c.net }

// RemoteFault is an application-level error returned by the remote
// procedure, as distinguished from a transport or protocol failure.
type RemoteFault struct {
	Proc string
	Msg  string
}

// Error implements error.
func (e *RemoteFault) Error() string { return fmt.Sprintf("hrpc: %s: %s", e.Proc, e.Msg) }

// xidMatcher lets control protocols with narrower transaction IDs define
// their own reply-matching rule (Courier truncates to 16 bits).
type xidMatcher interface {
	matchXID(call, reply uint32) bool
}

// Call invokes procedure p on the server identified by b, marshalling args
// and unmarshalling the result according to the binding's components. All
// simulated costs on the call path are charged to the meter in ctx.
func (c *Client) Call(ctx context.Context, b Binding, p Procedure, args marshal.Value) (_ marshal.Value, err error) {
	reg := c.registry()
	if reg.Enabled() {
		reg.Counter(metrics.Labels("hrpc_client_calls_total", "proc", p.Name)).Inc()
		meter := simtime.From(ctx)
		before := meter.Elapsed()
		defer func() {
			reg.Histogram(metrics.Labels("hrpc_client_call_ms", "addr", b.Addr)).
				Observe(meter.Elapsed() - before)
			if err != nil {
				reg.Counter(metrics.Labels("hrpc_client_errors_total",
					"kind", errKind(err))).Inc()
			}
		}()
	}
	if err := b.Validate(); err != nil {
		return marshal.Value{}, err
	}
	tr, err := c.net.Transport(b.Transport)
	if err != nil {
		return marshal.Value{}, err
	}
	rep, err := marshal.Lookup(b.DataRep)
	if err != nil {
		return marshal.Value{}, err
	}
	ctl, err := LookupControl(b.Control)
	if err != nil {
		return marshal.Value{}, err
	}
	model := c.net.Model()

	// Client-side stub work: control bookkeeping plus argument marshalling.
	// Both the marshalled arguments and the call frame build in pooled
	// buffers: the arguments are recycled as soon as the frame has copied
	// them, the frame once the reply is fully decoded (a handler on the
	// in-process transport may return bytes aliasing its request).
	simtime.Charge(ctx, ctl.Overhead(model))
	argBytes, err := rep.Append(bufpool.Get(64), args, p.Args)
	if err != nil {
		return marshal.Value{}, fmt.Errorf("hrpc: %s: marshal args: %w", p.Name, err)
	}
	marshal.ChargeValue(ctx, model, p.Style, args)

	xid := c.xid.Add(1)
	frame, err := appendCall(ctl, bufpool.Get(48+len(argBytes)), CallHeader{
		XID: xid, Program: b.Program, Version: b.Version, Procedure: p.ID,
	}, argBytes)
	bufpool.Put(argBytes)
	if err != nil {
		return marshal.Value{}, err
	}
	defer bufpool.Put(frame)

	respFrame, ep, err := c.roundTrip(ctx, tr, b.Addr, frame, c.budgetState(ctx))
	if err != nil {
		return marshal.Value{}, fmt.Errorf("hrpc: %s to %s: %w", p.Name, b.Addr, err)
	}

	rh, resBytes, err := ctl.DecodeReply(respFrame)
	if err != nil {
		return marshal.Value{}, fmt.Errorf("hrpc: %s: %w", p.Name, err)
	}
	if m, ok := ctl.(xidMatcher); ok {
		if !m.matchXID(xid, rh.XID) {
			return marshal.Value{}, fmt.Errorf("%w: sent %d, got %d", ErrXIDMismatch, xid, rh.XID)
		}
	} else if rh.XID != xid {
		return marshal.Value{}, fmt.Errorf("%w: sent %d, got %d", ErrXIDMismatch, xid, rh.XID)
	}
	if rh.Err != "" {
		// Typed statuses ride the error text under reserved prefixes.
		// An Overloaded reply is backpressure, not failure: record the
		// server's retry-after on the endpoint's breaker (the shared
		// breaker table IS the per-endpoint backoff state) so the next
		// call routes around the shedding endpoint without tripping it.
		if reason, retryAfter, ok := parseOverloadedErr(rh.Err); ok {
			c.breakers().Breaker(ep).Backpressure(retryAfter)
			reg.Counter(metrics.Labels("hrpc_client_backpressure_total", "addr", ep)).Inc()
			return marshal.Value{}, &BackpressureError{Endpoint: ep, Reason: reason, RetryAfter: retryAfter}
		}
		if _, ok := parseExpiredErr(rh.Err); ok {
			return marshal.Value{}, &BudgetExpiredError{Endpoint: ep, Proc: p.Name}
		}
		return marshal.Value{}, &RemoteFault{Proc: p.Name, Msg: rh.Err}
	}

	ret, err := marshal.Unmarshal(rep, resBytes, p.Ret)
	if err != nil {
		return marshal.Value{}, fmt.Errorf("hrpc: %s: unmarshal result: %w", p.Name, err)
	}
	marshal.ChargeValue(ctx, model, p.Style, ret)
	return ret, nil
}

// ErrCallTimeout is matched (errors.Is) by the error roundTrip returns
// when a call exhausts its retry budget or no replica's breaker admits
// it — "backend unreachable", as distinguished from marshalling errors
// and remote faults. The concrete error is a *CallTimeout.
var ErrCallTimeout = errors.New("hrpc: call timed out")

// CallTimeout is the exhausted-retry error: every admitted endpoint
// failed (or none was admitted) within the call's budget. It wraps the
// last transport error, so errors.Is still sees the underlying cause
// (transport.ErrInjectedLoss, transport.ErrRefused, ...).
type CallTimeout struct {
	Addr     string // the binding's (primary) address
	Attempts int    // exchanges attempted before giving up
	LastErr  error  // last transport error; nil when breakers refused every endpoint
}

// Error implements error.
func (e *CallTimeout) Error() string {
	if e.LastErr == nil {
		return fmt.Sprintf("hrpc: call to %s timed out: no live endpoint", e.Addr)
	}
	return fmt.Sprintf("hrpc: call to %s timed out after %d attempts: %v", e.Addr, e.Attempts, e.LastErr)
}

// Unwrap exposes the last transport error to errors.Is/As.
func (e *CallTimeout) Unwrap() error { return e.LastErr }

// Is matches the ErrCallTimeout sentinel.
func (e *CallTimeout) Is(target error) bool { return target == ErrCallTimeout }

// ProcUnavailable reports whether err is the remote fault a server
// raises for a procedure it does not implement — the negotiation signal
// a new client uses to detect an old peer and fall back to the
// procedures both sides share.
func ProcUnavailable(err error) bool {
	var rf *RemoteFault
	return errors.As(err, &rf) && strings.Contains(rf.Msg, "unavailable on program")
}

// Unavailable reports whether err means the backend could not be
// reached: the call timed out, no replica was live, or the transport
// failed outright. It is false for remote faults and remote errors — a
// live server answering, however unhelpfully, is not an availability
// failure. Serve-stale logic keys off this predicate.
func Unavailable(err error) bool {
	if err == nil {
		return false
	}
	var rf *RemoteFault
	if errors.As(err, &rf) {
		return false
	}
	if errors.Is(err, ErrCallTimeout) || errors.Is(err, health.ErrNoLiveEndpoint) {
		return true
	}
	return transport.Unavailable(err)
}

// errKind buckets a call error for hrpc_client_errors_total.
func errKind(err error) string {
	if errors.Is(err, ErrOverloaded) {
		return "overloaded"
	}
	if errors.Is(err, ErrBudgetExpired) {
		return "budget_expired"
	}
	var rf *RemoteFault
	if errors.As(err, &rf) {
		return "remote_fault"
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return "remote_error"
	}
	if errors.Is(err, ErrCallTimeout) {
		return "timeout"
	}
	return "transport"
}

// timeoutClass reports whether err looks like a silent loss — the
// caller sat out a retransmission timer to detect it — rather than a
// fast failure (refused, closed) the caller learned about immediately.
// Only timeout-class failures charge backoff to the caller's meter.
func timeoutClass(err error) bool {
	if errors.Is(err, transport.ErrInjectedLoss) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// jitterScale returns the deterministic jitter multiplier for the
// attempt-th backoff against endpoint: 1 ± j, derived from a hash so
// identical runs charge identical costs.
func jitterScale(endpoint string, attempt int, j float64) float64 {
	if j <= 0 {
		return 1
	}
	h := fnv.New64a()
	h.Write([]byte(endpoint))
	v := h.Sum64() ^ uint64(attempt)*0x9E3779B97F4A7C15
	v ^= v >> 33
	v *= 0xFF51AFD7ED558CCD
	v ^= v >> 33
	u := float64(v>>11) / float64(uint64(1)<<53)
	return 1 + j*(2*u-1)
}

// budgetState tracks a propagated deadline across a call's attempts:
// the budget at Call entry plus the caller's meter position then, so
// each attempt can compute what remains after the sim-time already
// charged (backoffs, earlier marshalling).
type budgetState struct {
	active bool
	total  time.Duration
	meter  *simtime.Meter
	start  time.Duration // meter position at Call entry
}

// budgetState captures the propagated-deadline state for one call. An
// explicit WithBudget value (a gateway forwarding an inbound budget)
// wins over the ctx deadline; without either, nothing is propagated.
func (c *Client) budgetState(ctx context.Context) budgetState {
	if !c.PropagateDeadline {
		return budgetState{}
	}
	m := simtime.From(ctx)
	if d, ok := BudgetFrom(ctx); ok {
		return budgetState{active: true, total: d, meter: m, start: m.Elapsed()}
	}
	if dl, ok := ctx.Deadline(); ok {
		return budgetState{active: true, total: time.Until(dl), meter: m, start: m.Elapsed()}
	}
	return budgetState{}
}

// remaining reports the unspent budget: the entry budget minus the sim
// time this call has charged since entry (never negative).
func (b budgetState) remaining() time.Duration {
	d := b.total - (b.meter.Elapsed() - b.start)
	if d < 0 {
		return 0
	}
	return d
}

// roundTrip sends one frame to the first live endpoint of addr's replica
// set, retransmitting after transport-level losses and failing over as
// breakers take endpoints out of rotation, within the policy's budget.
// It reports the endpoint that produced the returned reply, so the
// caller can attribute reply-carried statuses (backpressure) to it.
//
// Cost discipline: a timeout-class failure charges the current backoff
// (the wait the caller sat through to detect the loss), capped so the
// total charged wait never exceeds the budget; fast failures (refused,
// open breaker) charge nothing. With a single replica and the legacy
// Retries configuration this charges exactly what the old fixed-count
// loop did, so calibrated Table 3.1 costs are unchanged.
func (c *Client) roundTrip(ctx context.Context, tr transport.Transport, addr string, frame []byte, bs budgetState) ([]byte, string, error) {
	reg := c.registry()
	model := c.net.Model()
	replicas := c.replicasFor(addr)
	hs := c.breakers()

	base := c.Policy.Base
	if base <= 0 {
		base = model.RetransmitTimeout
	}
	maxWait := c.Policy.Max
	if maxWait <= 0 {
		maxWait = 4 * base
	}
	remaining := c.Policy.Budget
	if remaining <= 0 {
		remaining = time.Duration(c.Retries) * model.RetransmitTimeout
	}
	// A caller deadline already shorter than the policy's budget clamps
	// it: scheduling a retry wait the caller will not live to see only
	// charges sim time for a reply nobody wants. The propagated budget
	// (when one is active) clamps the same way.
	if dl, ok := ctx.Deadline(); ok {
		if until := time.Until(dl); until < remaining {
			remaining = max(until, 0)
		}
	}
	if bs.active && bs.remaining() < remaining {
		remaining = bs.remaining()
	}

	var (
		lastErr  error
		attempts int
		waits    int    // timeout-class failures so far (backoff schedule position)
		tried    uint64 // bitmask of replica indexes that failed this call
		rawWait  = base // unjittered next backoff
	)
	for {
		// Choose an endpoint: the first untried replica whose breaker
		// admits the call; failing that — only after a timeout-class
		// failure, where a retransmission can plausibly get through —
		// the first admitted replica again. Fast failures (refused) are
		// deterministic, so re-dialing the same dead endpoint within
		// one call is pointless.
		idx := -1
		for i, ep := range replicas {
			if i < 64 && tried&(1<<uint(i)) != 0 {
				continue
			}
			if ok, _ := hs.Breaker(ep).Allow(); ok {
				idx = i
				break
			}
		}
		if idx < 0 && timeoutClass(lastErr) {
			for i, ep := range replicas {
				if ok, _ := hs.Breaker(ep).Allow(); ok {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			// No breaker admits the call: fail fast, charging nothing —
			// the point of knowing an endpoint is dead is not waiting
			// on it.
			reg.Counter("hrpc_client_failfast_total").Inc()
			if lastErr == nil {
				lastErr = health.ErrNoLiveEndpoint
			}
			return nil, "", &CallTimeout{Addr: addr, Attempts: attempts, LastErr: lastErr}
		}
		ep := replicas[idx]

		// With a propagated deadline, each attempt carries what is left
		// of the budget NOW — after charged backoffs and failovers — not
		// the budget the call started with. The prefixed frame is a
		// plain allocation (not pooled): the in-process transport may
		// hand back a reply aliasing the request, so its lifetime must
		// outlive the reply decode.
		attemptFrame := frame
		if bs.active {
			pf := appendBudgetPrefix(make([]byte, 0, deadlinePrefixLen+len(frame)), bs.remaining())
			attemptFrame = append(pf, frame...)
		}
		resp, err := c.sendOnce(ctx, tr, ep, attemptFrame)
		attempts++
		if err == nil {
			hs.Breaker(ep).Success()
			if ep != addr {
				reg.Counter("hrpc_client_failovers_total").Inc()
			}
			return resp, ep, nil
		}
		// A RemoteError is a live server saying no; retransmitting
		// cannot help, and the endpoint is healthy.
		var re *transport.RemoteError
		if errors.As(err, &re) {
			hs.Breaker(ep).Success()
			return nil, ep, err
		}
		// A dead context: surface immediately, charging nothing — the
		// caller gave up, not the endpoint.
		if ctx.Err() != nil {
			return nil, ep, err
		}
		c.recordFailure(hs, ep, err)
		if idx < 64 {
			tried |= 1 << uint(idx)
		}
		lastErr = err

		if !timeoutClass(err) {
			continue // fast failure: fail over without waiting
		}
		// The caller sat out the retransmission timer to detect this
		// loss: charge it, bounded by the per-call budget.
		waits++
		wait := rawWait
		if waits > 1 {
			wait = time.Duration(float64(rawWait) * jitterScale(ep, waits, c.Policy.Jitter))
		}
		if wait > remaining {
			simtime.Charge(ctx, remaining)
			reg.Counter("hrpc_client_timeouts_total").Inc()
			return nil, "", &CallTimeout{Addr: addr, Attempts: attempts, LastErr: err}
		}
		simtime.Charge(ctx, wait)
		remaining -= wait
		reg.Counter("hrpc_client_retries_total").Inc()
		if rawWait < maxWait {
			rawWait *= 2
			if rawWait > maxWait {
				rawWait = maxWait
			}
		}
	}
}

// recordFailure charges one endpoint failure to ep's breaker,
// deduplicating broken-connection errors: when a multiplexed connection
// dies with many calls in flight, every caller surfaces the same
// *transport.ConnBrokenError, and the breaker must count one dead
// connection — not one failure per in-flight call (which would trip a
// healthy replica's breaker on a single socket reset).
func (c *Client) recordFailure(hs *health.Set, ep string, err error) {
	var cb *transport.ConnBrokenError
	if errors.As(err, &cb) {
		c.brokenMu.Lock()
		seen := c.brokenSeen[ep] == cb.ConnID
		if !seen {
			if c.brokenSeen == nil {
				c.brokenSeen = make(map[string]uint64)
			}
			c.brokenSeen[ep] = cb.ConnID
		}
		c.brokenMu.Unlock()
		if seen {
			return
		}
	}
	hs.Breaker(ep).Failure()
}

// sendOnce performs a single exchange over a pooled connection,
// redialing once if a pooled connection has gone stale.
func (c *Client) sendOnce(ctx context.Context, tr transport.Transport, addr string, frame []byte) ([]byte, error) {
	if c.FreshConn {
		conn, err := tr.Dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		return conn.Call(ctx, frame)
	}
	key := tr.Name() + "!" + addr
	e, pooled, err := c.acquire(ctx, tr, addr, key)
	if err != nil {
		return nil, err
	}
	resp, err := e.conn.Call(ctx, frame)
	if err == nil {
		c.release(e)
		return resp, nil
	}
	// A remote error came over a healthy exchange; an expired call left
	// a healthy multiplexed connection (its reply will be dropped by
	// tag). Both keep the connection pooled.
	var re *transport.RemoteError
	var ce *transport.CallExpiredError
	if errors.As(err, &re) || errors.As(err, &ce) {
		c.release(e)
		return nil, err
	}
	// A connection dialed by this very call gets no second chance — but
	// it stays pooled unless it is actually broken, matching the legacy
	// cache (a lost datagram says nothing about the socket; the next
	// attempt reuses it).
	if !pooled {
		if errors.Is(err, transport.ErrConnBroken) {
			c.discard(e)
		} else {
			c.release(e)
		}
		return nil, err
	}
	// A pre-existing pooled connection may simply have gone stale (server
	// restarted since the last call): retire it and redial once within
	// the same attempt.
	c.discard(e)
	e2, _, err2 := c.acquire(ctx, tr, addr, key)
	if err2 != nil {
		return nil, err
	}
	resp, err = e2.conn.Call(ctx, frame)
	if err == nil || !errors.Is(err, transport.ErrConnBroken) {
		c.release(e2)
	} else {
		c.discard(e2)
	}
	return resp, err
}

// Close releases every pooled connection.
func (c *Client) Close() error {
	var first error
	c.mu.Lock()
	for key, p := range c.pools {
		for _, e := range p.conns {
			e.gone = true
			if err := e.conn.Close(); err != nil && first == nil {
				first = err
			}
		}
		p.conns = nil
		p.size.Set(0)
		delete(c.pools, key)
	}
	c.mu.Unlock()
	return first
}
