package hrpc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hns/internal/simtime"
)

// CallHeader is the control-protocol-independent view of a call header.
//
// Budget is the caller's remaining deadline, when the call carried one.
// It is NOT part of any control protocol's wire layout (those formats
// are byte-pinned for old peers); it rides the sniffable frame prefix
// described in deadline.go, and is zero for calls without one.
type CallHeader struct {
	XID       uint32
	Program   uint32
	Version   uint32
	Procedure uint32

	Budget time.Duration
}

// ReplyHeader is the control-protocol-independent view of a reply header.
// Err is empty on success; otherwise it carries the remote error text
// (our stand-in for the various protocols' reject/abort conventions).
type ReplyHeader struct {
	XID uint32
	Err string
}

// ControlProtocol is the HRPC "control protocol" component: the header
// format used internally by the RPC facility to track the state of a call.
// Implementations must be safe for concurrent use.
type ControlProtocol interface {
	// Name identifies the protocol in bindings ("sunrpc", "courier",
	// "raw").
	Name() string
	// EncodeCall prepends a call header to the marshalled arguments.
	EncodeCall(h CallHeader, args []byte) ([]byte, error)
	// DecodeCall splits a request frame into header and arguments.
	DecodeCall(frame []byte) (CallHeader, []byte, error)
	// EncodeReply prepends a reply header to the marshalled results.
	EncodeReply(h ReplyHeader, results []byte) ([]byte, error)
	// DecodeReply splits a reply frame into header and results.
	DecodeReply(frame []byte) (ReplyHeader, []byte, error)
	// Overhead reports the per-call client-side bookkeeping cost of this
	// protocol (header construction, XID tracking, retransmission
	// timers).
	Overhead(m *simtime.Model) time.Duration
}

// CallAppender is the pooled-buffer fast path of a control protocol:
// append the call header and arguments to a caller-supplied buffer
// instead of allocating a fresh frame. Implementations must produce
// bytes identical to EncodeCall. All built-in protocols implement it;
// external protocols may omit it and take the allocating path.
type CallAppender interface {
	AppendCall(buf []byte, h CallHeader, args []byte) ([]byte, error)
}

// ReplyAppender is the reply-side counterpart of CallAppender.
type ReplyAppender interface {
	AppendReply(buf []byte, h ReplyHeader, results []byte) ([]byte, error)
}

// appendCall encodes a call into buf via the protocol's appender when it
// has one, falling back to EncodeCall (whose result replaces buf).
func appendCall(ctl ControlProtocol, buf []byte, h CallHeader, args []byte) ([]byte, error) {
	if a, ok := ctl.(CallAppender); ok {
		return a.AppendCall(buf, h, args)
	}
	return ctl.EncodeCall(h, args)
}

// ErrBadFrame reports a control-protocol frame that cannot be parsed.
var ErrBadFrame = errors.New("hrpc: malformed control frame")

// ErrXIDMismatch reports a reply whose transaction ID does not match the
// outstanding call.
var ErrXIDMismatch = errors.New("hrpc: reply XID does not match call")

// The control-protocol registry, mirroring the data-representation
// registry in package marshal: binding records store component *names*,
// and the client resolves them here at call time.

var (
	ctlMu sync.RWMutex
	ctls  = map[string]ControlProtocol{}
)

// RegisterControl installs a control protocol. Duplicate names panic.
func RegisterControl(c ControlProtocol) {
	ctlMu.Lock()
	defer ctlMu.Unlock()
	if _, dup := ctls[c.Name()]; dup {
		panic("hrpc: duplicate control protocol " + c.Name())
	}
	ctls[c.Name()] = c
}

// LookupControl resolves a control protocol by name.
func LookupControl(name string) (ControlProtocol, error) {
	ctlMu.RLock()
	defer ctlMu.RUnlock()
	c, ok := ctls[name]
	if !ok {
		return nil, fmt.Errorf("hrpc: unknown control protocol %q", name)
	}
	return c, nil
}

// ControlNames lists registered control protocols, sorted.
func ControlNames() []string {
	ctlMu.RLock()
	defer ctlMu.RUnlock()
	out := make([]string, 0, len(ctls))
	for n := range ctls {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterControl(SunRPCControl{})
	RegisterControl(CourierControl{})
	RegisterControl(RawControl{})
}
