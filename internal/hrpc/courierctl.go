package hrpc

import (
	"encoding/binary"
	"fmt"
	"time"

	"hns/internal/simtime"
)

// CourierControl emulates the Xerox Courier message format: 16-bit words,
// CALL/RETURN/ABORT message types, and a 16-bit transaction ID. Used by the
// Clearinghouse world.
type CourierControl struct{}

// Courier wire constants.
const (
	courierVersion = 3

	courierMsgCall   = 0
	courierMsgReturn = 2
	courierMsgAbort  = 3
)

// Name implements ControlProtocol.
func (CourierControl) Name() string { return "courier" }

// EncodeCall implements ControlProtocol.
//
// Layout (big-endian): version u16, msg_type u16=CALL, tid u16,
// program u32, version u16, procedure u16, args...
//
// Courier transaction IDs are 16 bits; the XID is truncated on the wire
// and compared modulo 2^16, which is faithful to the original and safe
// because calls are serialized per connection.
func (c CourierControl) EncodeCall(h CallHeader, args []byte) ([]byte, error) {
	return c.AppendCall(make([]byte, 0, 14+len(args)), h, args)
}

// AppendCall implements CallAppender.
func (CourierControl) AppendCall(buf []byte, h CallHeader, args []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, courierVersion)
	buf = binary.BigEndian.AppendUint16(buf, courierMsgCall)
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.XID))
	buf = binary.BigEndian.AppendUint32(buf, h.Program)
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.Version))
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.Procedure))
	return append(buf, args...), nil
}

// DecodeCall implements ControlProtocol.
func (CourierControl) DecodeCall(frame []byte) (CallHeader, []byte, error) {
	if len(frame) < 14 {
		return CallHeader{}, nil, fmt.Errorf("%w: courier call header truncated", ErrBadFrame)
	}
	if v := binary.BigEndian.Uint16(frame[0:]); v != courierVersion {
		return CallHeader{}, nil, fmt.Errorf("%w: courier version %d", ErrBadFrame, v)
	}
	if mt := binary.BigEndian.Uint16(frame[2:]); mt != courierMsgCall {
		return CallHeader{}, nil, fmt.Errorf("%w: courier msg_type %d is not CALL", ErrBadFrame, mt)
	}
	h := CallHeader{
		XID:       uint32(binary.BigEndian.Uint16(frame[4:])),
		Program:   binary.BigEndian.Uint32(frame[6:]),
		Version:   uint32(binary.BigEndian.Uint16(frame[10:])),
		Procedure: uint32(binary.BigEndian.Uint16(frame[12:])),
	}
	return h, frame[14:], nil
}

// EncodeReply implements ControlProtocol.
//
// Layout: version u16, msg_type u16 (RETURN or ABORT), tid u16, then
// results (RETURN) or error text (ABORT).
func (c CourierControl) EncodeReply(h ReplyHeader, results []byte) ([]byte, error) {
	return c.AppendReply(make([]byte, 0, 6+len(results)+len(h.Err)), h, results)
}

// AppendReply implements ReplyAppender.
func (CourierControl) AppendReply(buf []byte, h ReplyHeader, results []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, courierVersion)
	mt := uint16(courierMsgReturn)
	if h.Err != "" {
		mt = courierMsgAbort
	}
	buf = binary.BigEndian.AppendUint16(buf, mt)
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.XID))
	if h.Err != "" {
		return append(buf, h.Err...), nil
	}
	return append(buf, results...), nil
}

// DecodeReply implements ControlProtocol.
func (CourierControl) DecodeReply(frame []byte) (ReplyHeader, []byte, error) {
	if len(frame) < 6 {
		return ReplyHeader{}, nil, fmt.Errorf("%w: courier reply header truncated", ErrBadFrame)
	}
	if v := binary.BigEndian.Uint16(frame[0:]); v != courierVersion {
		return ReplyHeader{}, nil, fmt.Errorf("%w: courier version %d", ErrBadFrame, v)
	}
	h := ReplyHeader{XID: uint32(binary.BigEndian.Uint16(frame[4:]))}
	switch mt := binary.BigEndian.Uint16(frame[2:]); mt {
	case courierMsgReturn:
		return h, frame[6:], nil
	case courierMsgAbort:
		h.Err = string(frame[6:])
		if h.Err == "" {
			h.Err = "courier: call aborted"
		}
		return h, nil, nil
	default:
		return ReplyHeader{}, nil, fmt.Errorf("%w: courier msg_type %d", ErrBadFrame, mt)
	}
}

// Overhead implements ControlProtocol.
func (CourierControl) Overhead(m *simtime.Model) time.Duration { return m.CtlCourier }

// matchXID reports whether a reply tid matches a call XID under this
// protocol's 16-bit truncation.
func (CourierControl) matchXID(call, reply uint32) bool {
	return uint16(call) == uint16(reply)
}

var _ ControlProtocol = CourierControl{}
