package hrpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"hns/internal/admission"
)

// Deadline propagation. A caller with a deadline has a budget: the time
// left before its answer stops mattering. Carrying that budget with the
// call lets every layer downstream make better decisions — the retry
// policy stops scheduling waits the caller will not live to see, and a
// server sheds work whose budget is already exhausted instead of
// computing a dead reply.
//
// The budget rides a small frame prefix rather than a control-protocol
// header field: the sunrpc/courier/raw layouts are fixed, byte-pinned
// formats old peers parse, so — exactly like the PR 5 "HMUX" preamble —
// the extension is negotiated by prefix sniffing. A client opted in via
// Client.PropagateDeadline prepends "HDLN" + u32 budget-ms to each
// attempt's frame (re-encoded per attempt, so a retry after a charged
// backoff carries the *remaining* budget); a server strips the prefix
// when present. Nothing is sent for callers without deadlines, and the
// flag defaults to off, so pre-extension peers and every calibrated
// table are untouched.

// deadlinePreamble opens a budget-prefixed call frame.
var deadlinePreamble = [4]byte{'H', 'D', 'L', 'N'}

// deadlinePrefixLen is the prefix's wire size: magic + u32 millisecond
// budget.
const deadlinePrefixLen = 8

// appendBudgetPrefix appends the budget prefix to buf. Budgets are
// clamped into [0, ~49 days] and rounded up to a whole millisecond so a
// small positive budget never truncates to "already exhausted".
func appendBudgetPrefix(buf []byte, budget time.Duration) []byte {
	ms := int64(0)
	if budget > 0 {
		ms = int64((budget + time.Millisecond - 1) / time.Millisecond)
		if ms > int64(^uint32(0)) {
			ms = int64(^uint32(0))
		}
	}
	buf = append(buf, deadlinePreamble[:]...)
	return binary.BigEndian.AppendUint32(buf, uint32(ms))
}

// stripBudgetPrefix detects and removes a budget prefix, returning the
// carried budget and the control frame proper. ok is false when the
// frame has no prefix (a pre-extension caller).
func stripBudgetPrefix(frame []byte) (budget time.Duration, rest []byte, ok bool) {
	if len(frame) < deadlinePrefixLen || [4]byte(frame[:4]) != deadlinePreamble {
		return 0, frame, false
	}
	ms := binary.BigEndian.Uint32(frame[4:8])
	return time.Duration(ms) * time.Millisecond, frame[deadlinePrefixLen:], true
}

// budgetCtxKey carries a call budget through a context.
type budgetCtxKey struct{}

// WithBudget returns a context carrying an explicit call budget in
// simulated time. Servers install the received budget here so nested
// clients (a gateway forwarding the call) can propagate what remains.
func WithBudget(ctx context.Context, budget time.Duration) context.Context {
	return context.WithValue(ctx, budgetCtxKey{}, budget)
}

// BudgetFrom reports the call budget in ctx, if one was installed.
func BudgetFrom(ctx context.Context) (time.Duration, bool) {
	d, ok := ctx.Value(budgetCtxKey{}).(time.Duration)
	return d, ok
}

// ---- Typed reply statuses.
//
// Overload and budget-shed outcomes travel in the reply's error text —
// the only channel every control protocol already carries — under
// reserved prefixes the client maps back to typed errors. A pre-extension
// client simply surfaces them as remote faults, which is safe: it backs
// off through its normal retry discipline.

// ErrOverloaded is matched (errors.Is) by backpressure errors: the
// server is alive but shedding load. Retry machinery must not trip the
// endpoint's breaker on it — back off instead.
var ErrOverloaded = errors.New("hrpc: server overloaded")

// BackpressureError is the client-side form of a server's Overloaded
// reply.
type BackpressureError struct {
	Endpoint   string
	Reason     string // "rate" or "load"
	RetryAfter time.Duration
}

// Error implements error.
func (e *BackpressureError) Error() string {
	return fmt.Sprintf("hrpc: %s overloaded (%s), retry after %s",
		e.Endpoint, e.Reason, e.RetryAfter)
}

// Is matches the ErrOverloaded sentinel.
func (e *BackpressureError) Is(target error) bool { return target == ErrOverloaded }

// ErrBudgetExpired is matched (errors.Is) by budget-shed errors: the
// server refused the call because its propagated budget was already
// exhausted on arrival.
var ErrBudgetExpired = errors.New("hrpc: call budget expired")

// BudgetExpiredError is the client-side form of a server's budget shed.
type BudgetExpiredError struct {
	Endpoint string
	Proc     string
}

// Error implements error.
func (e *BudgetExpiredError) Error() string {
	return fmt.Sprintf("hrpc: %s shed %s: budget expired before dispatch", e.Endpoint, e.Proc)
}

// Is matches the ErrBudgetExpired sentinel.
func (e *BudgetExpiredError) Is(target error) bool { return target == ErrBudgetExpired }

// Reserved reply-error prefixes.
const (
	overloadedErrPrefix = "!hrpc-overloaded "
	expiredErrPrefix    = "!hrpc-expired "
)

// encodeOverloadedErr renders an admission refusal as reply-error text:
// "!hrpc-overloaded <reason> <retry-ms> <detail>".
func encodeOverloadedErr(ov *admission.Overloaded) string {
	return overloadedErrPrefix + ov.Reason + " " +
		strconv.FormatInt(int64(ov.RetryAfter/time.Millisecond), 10) + " " + ov.Error()
}

// parseOverloadedErr recognizes an overloaded reply-error string.
func parseOverloadedErr(msg string) (reason string, retryAfter time.Duration, ok bool) {
	rest, found := strings.CutPrefix(msg, overloadedErrPrefix)
	if !found {
		return "", 0, false
	}
	fields := strings.SplitN(rest, " ", 3)
	if len(fields) < 2 {
		return "", 0, false
	}
	ms, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || ms < 0 {
		return "", 0, false
	}
	return fields[0], time.Duration(ms) * time.Millisecond, true
}

// encodeExpiredErr renders a budget shed as reply-error text.
func encodeExpiredErr(proc string) string {
	return expiredErrPrefix + proc
}

// parseExpiredErr recognizes a budget-shed reply-error string.
func parseExpiredErr(msg string) (proc string, ok bool) {
	return strings.CutPrefix(msg, expiredErrPrefix)
}
