package hrpc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hns/internal/admission"
	"hns/internal/health"
	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

func TestBudgetPrefixRoundTrip(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{0, 0},
		{time.Millisecond, time.Millisecond},
		{1500 * time.Microsecond, 2 * time.Millisecond}, // rounds up, never to zero
		{time.Microsecond, time.Millisecond},
		{-time.Second, 0},
		{500 * time.Hour, 500 * time.Hour},
	}
	for _, tc := range cases {
		frame := append(appendBudgetPrefix(nil, tc.in), "control-bytes"...)
		got, rest, ok := stripBudgetPrefix(frame)
		if !ok || got != tc.want || string(rest) != "control-bytes" {
			t.Errorf("prefix(%v): got (%v, %q, %v), want (%v, control-bytes, true)",
				tc.in, got, rest, ok, tc.want)
		}
	}
	// A frame without the prefix passes through untouched.
	if _, rest, ok := stripBudgetPrefix([]byte("plain")); ok || string(rest) != "plain" {
		t.Fatal("bare frame misdetected as budget-prefixed")
	}
	// Short frames that begin like the magic are not prefixed.
	if _, _, ok := stripBudgetPrefix([]byte("HDLN")); ok {
		t.Fatal("truncated prefix accepted")
	}
}

func TestOverloadedErrCodec(t *testing.T) {
	ov := &admission.Overloaded{Server: "s", Reason: "rate", RetryAfter: 75 * time.Millisecond}
	reason, after, ok := parseOverloadedErr(encodeOverloadedErr(ov))
	if !ok || reason != "rate" || after != 75*time.Millisecond {
		t.Fatalf("round trip: (%q, %v, %v)", reason, after, ok)
	}
	for _, bad := range []string{"", "plain fault", "!hrpc-overloaded ", "!hrpc-overloaded rate x y"} {
		if _, _, ok := parseOverloadedErr(bad); ok {
			t.Errorf("parseOverloadedErr(%q) accepted", bad)
		}
	}
	if proc, ok := parseExpiredErr(encodeExpiredErr("FindNSM")); !ok || proc != "FindNSM" {
		t.Fatalf("expired round trip: (%q, %v)", proc, ok)
	}
	if _, ok := parseExpiredErr("other"); ok {
		t.Fatal("parseExpiredErr accepted a plain fault")
	}
}

// TestRetryRespectsContextDeadline is the regression for the
// budget-vs-deadline bug: a call with 100 ms of context budget must not
// schedule retry waits beyond it, even when the policy's own budget is
// much larger. Before the clamp, this call charged the full 600 ms.
func TestRetryRespectsContextDeadline(t *testing.T) {
	e := newFailoverEnv(t)
	e.plan.Blackhole(foPrimary)
	e.c.Policy = RetryPolicy{Budget: 600 * time.Millisecond}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	cost, err := e.call(ctx)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if cost > 100*time.Millisecond {
		t.Fatalf("charged %v of sim time past a 100ms context budget", cost)
	}
	if cost < 50*time.Millisecond {
		t.Fatalf("charged only %v; the clamp should spend the caller's budget, not skip the wait", cost)
	}
}

// TestPropagatedBudgetClampsRetryExactly pins the deterministic variant:
// an explicit 100 ms propagated budget clamps the 600 ms retry budget to
// exactly 100 ms of charged sim time.
func TestPropagatedBudgetClampsRetryExactly(t *testing.T) {
	e := newFailoverEnv(t)
	e.plan.Blackhole(foPrimary)
	e.c.Policy = RetryPolicy{Budget: 600 * time.Millisecond}

	ctx := simtime.WithMeter(context.Background(), simtime.NewMeter())
	m := simtime.From(ctx)
	bs := budgetState{active: true, total: 100 * time.Millisecond, meter: m, start: m.Elapsed()}
	before := m.Elapsed()
	_, _, err := e.c.roundTrip(ctx, e.tr, foPrimary, []byte("ping"), bs)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if got := m.Elapsed() - before; got != 100*time.Millisecond {
		t.Fatalf("charged %v, want exactly the 100ms propagated budget", got)
	}
}

// deadlineEnv is a full client/server stack whose server records the
// budget each call arrived with: an HRPC server on simulated UDP behind
// a chaos plan, dialed by a deadline-propagating client.
type deadlineEnv struct {
	plan *transport.Plan
	c    *Client
	b    Binding

	mu      sync.Mutex
	budgets map[string][]time.Duration // listen addr → received budgets
}

var deadlineProc = Procedure{
	Name: "DeadlineEcho", ID: 1,
	Args:  marshal.TStruct(marshal.TString),
	Ret:   marshal.TStruct(marshal.TString),
	Style: marshal.StyleNone,
}

const (
	dlPrimary   = "dl-a:1"
	dlSecondary = "dl-b:1"
)

func newDeadlineEnv(t *testing.T, admit *admission.Controller) *deadlineEnv {
	t.Helper()
	n := transport.NewNetwork(simtime.Default())
	suite := Suite{Transport: "udp", DataRep: "xdr", Control: "raw"}
	e := &deadlineEnv{budgets: make(map[string][]time.Duration)}
	for _, addr := range []string{dlPrimary, dlSecondary} {
		addr := addr
		s := NewServer("dl@"+addr, 7200, 1)
		s.Metrics = metrics.NewRegistry()
		if admit != nil {
			s.EnableAdmission(admit)
		}
		s.Register(deadlineProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
			b, _ := BudgetFrom(ctx)
			e.mu.Lock()
			e.budgets[addr] = append(e.budgets[addr], b)
			e.mu.Unlock()
			return args, nil
		})
		ln, b, err := Serve(n, s, suite, "host", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		if addr == dlPrimary {
			e.b = b
		}
	}
	e.plan = transport.NewPlan(1987)
	n.Register(transport.NewChaos(mustTransport(t, n, "udp"), "udp-chaos", e.plan))
	e.b.Transport = "udp-chaos"

	reg := metrics.NewRegistry()
	c := NewClient(n)
	c.FreshConn = true
	c.Metrics = reg
	c.PropagateDeadline = true
	c.Health = health.Config{
		Threshold: 3,
		Cooldown:  10 * time.Second,
		Clock:     simtime.NewFakeClock(time.Unix(563328000, 0)),
		Metrics:   reg,
		Service:   "dl-test",
	}
	e.c = c
	return e
}

func mustTransport(t *testing.T, n *transport.Network, name string) transport.Transport {
	t.Helper()
	tr, err := n.Transport(name)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func (e *deadlineEnv) received(addr string) []time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]time.Duration(nil), e.budgets[addr]...)
}

// TestFailoverCarriesRemainingBudget is the deadline-propagation
// failover suite: when the primary is blackholed and the call retries on
// the secondary, the secondary must see the budget that REMAINS after
// the charged detection wait — not the budget the call started with.
func TestFailoverCarriesRemainingBudget(t *testing.T) {
	rto := simtime.Default().RetransmitTimeout // 250ms: the loss-detection wait

	cases := []struct {
		name       string
		budget     time.Duration
		arrange    func(e *deadlineEnv)
		wantErr    error           // nil means the call must succeed
		wantAt     string          // endpoint that must have served it
		wantBudget []time.Duration // budgets that endpoint must have seen
	}{
		{
			name:   "healthy-primary-sees-full-budget",
			budget: 600 * time.Millisecond,
			arrange: func(e *deadlineEnv) {
				e.c.SetReplicas(dlPrimary, dlSecondary)
			},
			wantAt:     dlPrimary,
			wantBudget: []time.Duration{600 * time.Millisecond},
		},
		{
			name:   "blackholed-primary-secondary-sees-remainder",
			budget: 600 * time.Millisecond,
			arrange: func(e *deadlineEnv) {
				e.plan.Blackhole(dlPrimary)
				e.c.SetReplicas(dlPrimary, dlSecondary)
			},
			// One silent loss costs rto to detect; the retry must carry
			// 600-250 = 350ms, not 600.
			wantAt:     dlSecondary,
			wantBudget: []time.Duration{600*time.Millisecond - rto},
		},
		{
			name:   "killed-primary-fails-over-without-spending-budget",
			budget: 600 * time.Millisecond,
			arrange: func(e *deadlineEnv) {
				e.plan.Kill(dlPrimary)
				e.c.SetReplicas(dlPrimary, dlSecondary)
			},
			// Connection-refused is free: the secondary sees the full
			// budget.
			wantAt:     dlSecondary,
			wantBudget: []time.Duration{600 * time.Millisecond},
		},
		{
			name:   "exhausted-budget-is-shed-by-the-server",
			budget: 0,
			arrange: func(e *deadlineEnv) {
				e.c.SetReplicas(dlPrimary, dlSecondary)
			},
			wantErr:    ErrBudgetExpired,
			wantAt:     dlPrimary,
			wantBudget: nil, // the handler must never run
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			e := newDeadlineEnv(t, nil)
			tc.arrange(e)
			e.c.Policy = RetryPolicy{Budget: 750 * time.Millisecond}

			ctx := WithBudget(simtime.WithMeter(context.Background(), simtime.NewMeter()), tc.budget)
			_, err := e.c.Call(ctx, e.b, deadlineProc, marshal.StructV(marshal.Str("ping")))
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("call failed: %v", err)
				}
			} else if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			got := e.received(tc.wantAt)
			if len(got) != len(tc.wantBudget) {
				t.Fatalf("%s saw budgets %v, want %v", tc.wantAt, got, tc.wantBudget)
			}
			for i := range got {
				if got[i] != tc.wantBudget[i] {
					t.Fatalf("%s budget[%d] = %v, want %v", tc.wantAt, i, got[i], tc.wantBudget[i])
				}
			}
		})
	}
}

// TestLegacyClientUnaffected: without PropagateDeadline the wire bytes
// carry no prefix and the server records a zero budget — the
// pre-extension contract.
func TestLegacyClientUnaffected(t *testing.T) {
	e := newDeadlineEnv(t, nil)
	e.c.PropagateDeadline = false
	ctx := WithBudget(simtime.WithMeter(context.Background(), simtime.NewMeter()), 500*time.Millisecond)
	if _, err := e.c.Call(ctx, e.b, deadlineProc, marshal.StructV(marshal.Str("ping"))); err != nil {
		t.Fatal(err)
	}
	if got := e.received(dlPrimary); len(got) != 1 || got[0] != 0 {
		t.Fatalf("legacy call recorded budgets %v, want [0]", got)
	}
}

// TestOverloadIsBackpressureNotFailure: an admission-shed reply surfaces
// as ErrOverloaded, leaves the breaker Closed, and installs the server's
// retry-after as a backoff window on the SAME breaker entry (no second
// backoff table).
func TestOverloadIsBackpressureNotFailure(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	admit := admission.New(admission.Config{
		Rate: 1, Burst: 1, RetryAfter: 50 * time.Millisecond,
		Clock: clk, Metrics: metrics.NewRegistry(), Server: "dl",
	})
	e := newDeadlineEnv(t, admit)
	e.c.Health.Clock = clk // share the clock so backoff windows expire together
	// Reuse the connection: the sim transport mints one peer identity per
	// dial, and this test needs both calls in the same token bucket.
	e.c.FreshConn = false

	ctx := simtime.WithMeter(context.Background(), simtime.NewMeter())
	call := func() error {
		_, err := e.c.Call(ctx, e.b, deadlineProc, marshal.StructV(marshal.Str("ping")))
		return err
	}

	if err := call(); err != nil {
		t.Fatalf("first call: %v", err)
	}
	err := call()
	var bp *BackpressureError
	if !errors.As(err, &bp) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second call: %v, want BackpressureError", err)
	}
	if bp.RetryAfter != 50*time.Millisecond || bp.Reason != "rate" {
		t.Fatalf("backpressure details: %+v", bp)
	}

	br := e.c.breakers().Breaker(dlPrimary)
	if st := br.State(); st != health.Closed {
		t.Fatalf("breaker state = %v, want Closed (overload is not failure)", st)
	}
	if got := br.BackoffRemaining(); got != 50*time.Millisecond {
		t.Fatalf("backoff window = %v, want 50ms", got)
	}

	// During the window the endpoint is out of rotation: fail fast, free.
	if err := call(); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("call inside backoff window: %v, want fail-fast CallTimeout", err)
	}

	// Window passes (and the token bucket refills): service resumes.
	clk.Advance(time.Second)
	if err := call(); err != nil {
		t.Fatalf("call after backoff window: %v", err)
	}
}

// TestAdmissionKeysOnPeer: two clients dialing the same server get
// separate token buckets, keyed by the transport's peer identity.
func TestAdmissionKeysOnPeer(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	admit := admission.New(admission.Config{
		Rate: 0.001, Burst: 1, Clock: clk, Metrics: metrics.NewRegistry(), Server: "peers",
	})
	n := transport.NewNetwork(simtime.Default())
	s := NewServer("peers", 7201, 1)
	s.Metrics = metrics.NewRegistry()
	s.EnableAdmission(admit)
	s.Register(deadlineProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		return args, nil
	})
	ln, b, err := Serve(n, s, Suite{Transport: "udp", DataRep: "xdr", Control: "raw"}, "host", "peers:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	call := func(c *Client) error {
		ctx := simtime.WithMeter(context.Background(), simtime.NewMeter())
		_, err := c.Call(ctx, b, deadlineProc, marshal.StructV(marshal.Str("hi")))
		return err
	}
	newPeer := func() *Client {
		c := NewClient(n)
		c.Metrics = metrics.NewRegistry()
		return c
	}

	// Each fresh connection is a distinct peer with its own burst-of-1
	// bucket: client A's second call sheds, client B's first is admitted.
	a, b2 := newPeer(), newPeer()
	if err := call(a); err != nil {
		t.Fatalf("peer A first call: %v", err)
	}
	if err := call(a); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("peer A second call: %v, want ErrOverloaded", err)
	}
	if err := call(b2); err != nil {
		t.Fatalf("peer B first call: %v", err)
	}
	if admit.Clients() < 2 {
		t.Fatalf("admission saw %d clients, want >= 2 distinct peers", admit.Clients())
	}
}
