package hrpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hns/internal/health"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

func newDedupSet(clk simtime.Clock) (*health.Set, *metrics.Registry) {
	reg := metrics.NewRegistry()
	hs := health.NewSet(health.Config{
		Threshold: 3,
		Cooldown:  10 * time.Second,
		Clock:     clk,
		Metrics:   reg,
		Service:   "dedup",
	})
	return hs, reg
}

func breakerFailures(reg *metrics.Registry, endpoint string) int64 {
	return reg.Counter(metrics.Labels("breaker_failures_total",
		"service", "dedup", "endpoint", endpoint)).Value()
}

// TestRecordFailureDedupsConnBroken: when a multiplexed connection dies
// with 32 calls in flight, every caller surfaces the same
// *transport.ConnBrokenError — the breaker must record exactly one
// failure, or one socket reset would trip a healthy replica's breaker.
func TestRecordFailureDedupsConnBroken(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	hs, reg := newDedupSet(clk)
	c := &Client{}
	const ep = "tahoma:bind-hrpc"

	cause := errors.New("socket reset")
	for i := 0; i < 32; i++ {
		// Callers see the shared error through their own wrapping.
		err := fmt.Errorf("call %d: %w", i, &transport.ConnBrokenError{ConnID: 7, Cause: cause})
		c.recordFailure(hs, ep, err)
	}
	if got := breakerFailures(reg, ep); got != 1 {
		t.Fatalf("32 in-flight deaths of one connection recorded %d breaker failures, want 1", got)
	}
	if got := hs.Breaker(ep).State(); got != health.Closed {
		t.Fatalf("breaker state = %v after one deduplicated reset, want Closed", got)
	}

	// A second connection dying is new evidence: one more failure.
	c.recordFailure(hs, ep, &transport.ConnBrokenError{ConnID: 8, Cause: cause})
	if got := breakerFailures(reg, ep); got != 2 {
		t.Fatalf("new ConnID recorded %d total failures, want 2", got)
	}

	// Ordinary errors are never deduplicated.
	c.recordFailure(hs, ep, errors.New("server misbehaved"))
	if got := breakerFailures(reg, ep); got != 3 {
		t.Fatalf("plain error recorded %d total failures, want 3", got)
	}
}

// TestRecordFailureDedupPerEndpoint: the dedup key is (endpoint, conn),
// so the same ConnID on two endpoints counts once each, and a replica
// cannot shadow another's failures.
func TestRecordFailureDedupPerEndpoint(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	hs, reg := newDedupSet(clk)
	c := &Client{}

	for i := 0; i < 4; i++ {
		c.recordFailure(hs, "a:1", &transport.ConnBrokenError{ConnID: 7})
		c.recordFailure(hs, "b:1", &transport.ConnBrokenError{ConnID: 7})
	}
	if got := breakerFailures(reg, "a:1"); got != 1 {
		t.Fatalf("endpoint a:1 recorded %d failures, want 1", got)
	}
	if got := breakerFailures(reg, "b:1"); got != 1 {
		t.Fatalf("endpoint b:1 recorded %d failures, want 1", got)
	}
}

// TestRecordFailureDedupConcurrent is the satellite's race shape: 32
// pending mux calls die together on distinct goroutines, all reporting
// the same ConnBrokenError concurrently. Exactly one breaker failure may
// land; run under -race this also checks brokenSeen's locking.
func TestRecordFailureDedupConcurrent(t *testing.T) {
	clk := simtime.NewFakeClock(time.Unix(0, 0))
	for round := 0; round < 20; round++ {
		hs, reg := newDedupSet(clk)
		c := &Client{}
		const ep = "tahoma:bind-hrpc"

		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.recordFailure(hs, ep, &transport.ConnBrokenError{ConnID: 42})
			}()
		}
		wg.Wait()
		if got := breakerFailures(reg, ep); got != 1 {
			t.Fatalf("round %d: 32 concurrent reports recorded %d failures, want 1", round, got)
		}
		if got := hs.Breaker(ep).State(); got != health.Closed {
			t.Fatalf("round %d: breaker %v after one deduplicated reset, want Closed", round, got)
		}
	}
}
