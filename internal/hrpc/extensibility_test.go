package hrpc

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"hns/internal/marshal"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// The point of the component factoring is that a new system type can bring
// its own wire conventions: this test integrates a complete foreign
// protocol family — a little-endian data representation ("ndr-le",
// DCE-flavoured) and a trivial control protocol ("tagctl") — through the
// public registries alone, then runs calls over the mixed stack. No
// framework code changes.

// ndrLE is a little-endian data representation.
type ndrLE struct{}

func (ndrLE) Name() string { return "ndr-le" }

func (n ndrLE) Append(buf []byte, v marshal.Value, t marshal.Type) ([]byte, error) {
	if err := marshal.Check(v, t); err != nil {
		return nil, err
	}
	return n.append(buf, v, t)
}

func (n ndrLE) append(buf []byte, v marshal.Value, t marshal.Type) ([]byte, error) {
	switch t.Kind {
	case marshal.KindUint32:
		return binary.LittleEndian.AppendUint32(buf, uint32(v.Num)), nil
	case marshal.KindUint64:
		return binary.LittleEndian.AppendUint64(buf, v.Num), nil
	case marshal.KindBool:
		if v.Num != 0 {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case marshal.KindString:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Str)))
		return append(buf, v.Str...), nil
	case marshal.KindBytes:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Bytes)))
		return append(buf, v.Bytes...), nil
	case marshal.KindList:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Items)))
		var err error
		for _, it := range v.Items {
			if buf, err = n.append(buf, it, *t.Elem); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case marshal.KindStruct:
		var err error
		for i, it := range v.Items {
			if buf, err = n.append(buf, it, t.Fields[i]); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("ndr-le: kind %v", t.Kind)
	}
}

func (n ndrLE) Decode(buf []byte, t marshal.Type) (marshal.Value, []byte, error) {
	switch t.Kind {
	case marshal.KindUint32:
		if len(buf) < 4 {
			return marshal.Value{}, nil, marshal.ErrTruncated
		}
		return marshal.U32(binary.LittleEndian.Uint32(buf)), buf[4:], nil
	case marshal.KindUint64:
		if len(buf) < 8 {
			return marshal.Value{}, nil, marshal.ErrTruncated
		}
		return marshal.U64(binary.LittleEndian.Uint64(buf)), buf[8:], nil
	case marshal.KindBool:
		if len(buf) < 1 {
			return marshal.Value{}, nil, marshal.ErrTruncated
		}
		return marshal.BoolV(buf[0] != 0), buf[1:], nil
	case marshal.KindString, marshal.KindBytes:
		if len(buf) < 4 {
			return marshal.Value{}, nil, marshal.ErrTruncated
		}
		ln := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if ln > len(buf) {
			return marshal.Value{}, nil, marshal.ErrTruncated
		}
		if t.Kind == marshal.KindString {
			return marshal.Str(string(buf[:ln])), buf[ln:], nil
		}
		return marshal.BytesV(append([]byte(nil), buf[:ln]...)), buf[ln:], nil
	case marshal.KindList:
		if len(buf) < 4 {
			return marshal.Value{}, nil, marshal.ErrTruncated
		}
		count := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if count > len(buf)+1 {
			return marshal.Value{}, nil, marshal.ErrTruncated
		}
		items := make([]marshal.Value, 0, count)
		for i := 0; i < count; i++ {
			var (
				it  marshal.Value
				err error
			)
			if it, buf, err = n.Decode(buf, *t.Elem); err != nil {
				return marshal.Value{}, nil, err
			}
			items = append(items, it)
		}
		return marshal.ListV(items...), buf, nil
	case marshal.KindStruct:
		items := make([]marshal.Value, 0, len(t.Fields))
		for _, ft := range t.Fields {
			var (
				it  marshal.Value
				err error
			)
			if it, buf, err = n.Decode(buf, ft); err != nil {
				return marshal.Value{}, nil, err
			}
			items = append(items, it)
		}
		return marshal.StructV(items...), buf, nil
	default:
		return marshal.Value{}, nil, fmt.Errorf("ndr-le: kind %v", t.Kind)
	}
}

// tagCtl is a minimal foreign control protocol: one tag byte, then the raw
// header fields little-endian.
type tagCtl struct{}

func (tagCtl) Name() string { return "tagctl" }

func (tagCtl) EncodeCall(h CallHeader, args []byte) ([]byte, error) {
	buf := []byte{0xC1}
	for _, w := range []uint32{h.XID, h.Program, h.Version, h.Procedure} {
		buf = binary.LittleEndian.AppendUint32(buf, w)
	}
	return append(buf, args...), nil
}

func (tagCtl) DecodeCall(frame []byte) (CallHeader, []byte, error) {
	if len(frame) < 17 || frame[0] != 0xC1 {
		return CallHeader{}, nil, ErrBadFrame
	}
	w := func(i int) uint32 { return binary.LittleEndian.Uint32(frame[1+4*i:]) }
	return CallHeader{XID: w(0), Program: w(1), Version: w(2), Procedure: w(3)}, frame[17:], nil
}

func (tagCtl) EncodeReply(h ReplyHeader, results []byte) ([]byte, error) {
	tag := byte(0xC2)
	if h.Err != "" {
		tag = 0xC3
	}
	buf := []byte{tag}
	buf = binary.LittleEndian.AppendUint32(buf, h.XID)
	if h.Err != "" {
		return append(buf, h.Err...), nil
	}
	return append(buf, results...), nil
}

func (tagCtl) DecodeReply(frame []byte) (ReplyHeader, []byte, error) {
	if len(frame) < 5 {
		return ReplyHeader{}, nil, ErrBadFrame
	}
	h := ReplyHeader{XID: binary.LittleEndian.Uint32(frame[1:])}
	switch frame[0] {
	case 0xC2:
		return h, frame[5:], nil
	case 0xC3:
		h.Err = string(frame[5:])
		return h, nil, nil
	default:
		return ReplyHeader{}, nil, ErrBadFrame
	}
}

func (tagCtl) Overhead(m *simtime.Model) time.Duration { return m.CtlRaw }

func TestForeignProtocolFamilyIntegrates(t *testing.T) {
	// Registries are global; guard against double registration across
	// test runs in the same binary.
	if _, err := marshal.Lookup("ndr-le"); err != nil {
		marshal.Register(ndrLE{})
	}
	if _, err := LookupControl("tagctl"); err != nil {
		RegisterControl(tagCtl{})
	}

	net := transport.NewNetwork(simtime.Default())
	s := NewServer("foreign", 7200, 1)
	s.Register(echoProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		return args, nil
	})
	// Mix and match: the foreign data rep and control protocol over the
	// stock UDP transport.
	suite := Suite{Transport: "udp", DataRep: "ndr-le", Control: "tagctl"}
	ln, b, err := Serve(net, s, suite, "vms", "vms:svc")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c := NewClient(net)
	defer c.Close()
	ret, err := c.Call(context.Background(), b, echoProc,
		marshal.StructV(marshal.Str("спутник"))) // non-ASCII survives too
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ret.Items[0].AsString(); got != "спутник" {
		t.Fatalf("echo = %q", got)
	}

	// The same server simultaneously speaks a stock suite — one
	// implementation, many wire personalities, now including a foreign one.
	ln2, b2, err := Serve(net, s, SuiteSunRPC, "vms", "vms:svc-sun")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if _, err := c.Call(context.Background(), b2, echoProc,
		marshal.StructV(marshal.Str("x"))); err != nil {
		t.Fatal(err)
	}
}
