package hrpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"hns/internal/health"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// failoverEnv is a two-replica world behind a chaos plan: raw echo
// servers at a:1 and b:1 on simulated UDP, dialed through a Plan-driven
// chaos transport, with breakers on a fake clock.
type failoverEnv struct {
	plan *transport.Plan
	tr   transport.Transport
	clk  *simtime.FakeClock
	c    *Client
	reg  *metrics.Registry
}

const (
	foPrimary   = "a:1"
	foSecondary = "b:1"
)

func newFailoverEnv(t *testing.T) *failoverEnv {
	t.Helper()
	n := transport.NewNetwork(simtime.Default())
	inner, err := n.Transport("udp")
	if err != nil {
		t.Fatal(err)
	}
	echo := func(ctx context.Context, req []byte) ([]byte, error) { return req, nil }
	for _, addr := range []string{foPrimary, foSecondary} {
		ln, err := inner.Listen(addr, echo)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
	}
	plan := transport.NewPlan(1987)
	chaos := transport.NewChaos(inner, "udp-chaos", plan)
	n.Register(chaos)

	clk := simtime.NewFakeClock(time.Unix(563328000, 0))
	reg := metrics.NewRegistry()
	c := NewClient(n)
	c.FreshConn = true
	c.Metrics = reg
	c.Health = health.Config{
		Threshold: 3,
		Cooldown:  10 * time.Second,
		Clock:     clk,
		Metrics:   reg,
		Service:   "test",
	}
	return &failoverEnv{plan: plan, tr: chaos, clk: clk, c: c, reg: reg}
}

// call runs one roundTrip and reports the exact simulated cost charged.
func (e *failoverEnv) call(ctx context.Context) (time.Duration, error) {
	var callErr error
	cost, err := simtime.Measure(ctx, func(ctx context.Context) error {
		_, _, callErr = e.c.roundTrip(ctx, e.tr, foPrimary, []byte("ping"), budgetState{})
		return nil
	})
	if err != nil {
		return cost, err
	}
	return cost, callErr
}

// openBreaker drives the primary's breaker open with zero-budget calls
// against a blackholed endpoint (each charges nothing and records one
// consecutive failure).
func (e *failoverEnv) openBreaker(t *testing.T, ctx context.Context) {
	t.Helper()
	e.plan.Blackhole(foPrimary)
	for i := 0; i < 3; i++ {
		cost, err := e.call(ctx)
		if err == nil || cost != 0 {
			t.Fatalf("breaker-opening call %d: cost %v err %v; want free failure", i, cost, err)
		}
	}
	if st := e.c.breakers().Breaker(foPrimary).State(); st != health.Open {
		t.Fatalf("breaker state after 3 failures = %v, want Open", st)
	}
}

// TestFailoverSimtimeAccounting asserts, case by case, that the retry /
// failover / breaker machinery charges the caller's simtime meter
// exactly the wait a real caller would have sat through — no more (the
// budget is a hard cap) and no less (every loss detection costs its
// backoff).
func TestFailoverSimtimeAccounting(t *testing.T) {
	model := simtime.Default()
	rtt := model.RTTUDP
	rto := model.RetransmitTimeout

	cases := []struct {
		name string
		// arrange prepares faults, policy, and breaker state; it may use
		// e.call for pre-conditioning traffic.
		arrange func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context
		// one measured call:
		wantCost time.Duration
		wantOK   bool
		wantIs   []error // errors.Is targets the failure must match
		wantNot  []error // ... and must not
	}{
		{
			name: "cancelled-context-charges-nothing",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.plan.Blackhole(foPrimary)
				e.c.Retries = 100
				cctx, cancel := context.WithCancel(ctx)
				cancel()
				return cctx
			},
			wantCost: 0,
			wantIs:   []error{transport.ErrInjectedLoss},
			wantNot:  []error{ErrCallTimeout},
		},
		{
			name: "blackout-exhausts-budget-exactly",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.plan.Blackhole(foPrimary)
				e.c.Policy = RetryPolicy{Budget: 600 * time.Millisecond}
				return ctx
			},
			// 250ms first wait, then the 500ms backoff is capped to the
			// remaining 350ms: exactly the budget, never more.
			wantCost: 600 * time.Millisecond,
			wantIs:   []error{ErrCallTimeout, transport.ErrInjectedLoss},
		},
		{
			name: "blackout-with-jitter-still-exact-budget",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.plan.Blackhole(foPrimary)
				e.c.Policy = RetryPolicy{Budget: 600 * time.Millisecond, Jitter: 0.5}
				return ctx
			},
			wantCost: 600 * time.Millisecond,
			wantIs:   []error{ErrCallTimeout, transport.ErrInjectedLoss},
		},
		{
			name: "refused-primary-fails-over-free",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.plan.Kill(foPrimary)
				e.c.Policy = RetryPolicy{Budget: 750 * time.Millisecond}
				e.c.SetReplicas(foPrimary, foSecondary)
				return ctx
			},
			// Connection-refused is detected immediately: the failover
			// costs one round trip to the replica and nothing else.
			wantCost: rtt,
			wantOK:   true,
		},
		{
			name: "blackholed-primary-fails-over-after-one-timeout",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.plan.Blackhole(foPrimary)
				e.c.Policy = RetryPolicy{Budget: 750 * time.Millisecond}
				e.c.SetReplicas(foPrimary, foSecondary)
				return ctx
			},
			// Silent loss costs the caller one retransmission timeout to
			// detect, then the replica answers.
			wantCost: rto + rtt,
			wantOK:   true,
		},
		{
			name: "all-replicas-dead-fails-fast-free",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.c.SetReplicas(foPrimary, foSecondary)
				e.plan.Kill(foPrimary)
				e.plan.Kill(foSecondary)
				// Three free calls open both breakers (one consecutive
				// failure per endpoint per call).
				for i := 0; i < 3; i++ {
					if cost, err := e.call(ctx); err == nil || cost != 0 {
						t.Fatalf("pre-call %d: cost %v err %v; want free failure", i, cost, err)
					}
				}
				return ctx
			},
			wantCost: 0,
			wantIs:   []error{ErrCallTimeout, health.ErrNoLiveEndpoint},
		},
		{
			name: "open-breakers-refuse-without-charge",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.openBreaker(t, ctx)
				return ctx
			},
			wantCost: 0,
			wantIs:   []error{ErrCallTimeout},
		},
		{
			name: "half-open-probe-failure-charges-one-timeout",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.openBreaker(t, ctx)
				e.clk.Advance(10 * time.Second) // serve the cooldown
				e.c.Policy = RetryPolicy{Budget: 250 * time.Millisecond}
				return ctx
			},
			// The probe is admitted, lost, and charged exactly one base
			// timeout; the breaker reopens, so the call then fails fast.
			wantCost: rto,
			wantIs:   []error{ErrCallTimeout, transport.ErrInjectedLoss},
		},
		{
			name: "half-open-probe-success-restores-service",
			arrange: func(t *testing.T, e *failoverEnv, ctx context.Context) context.Context {
				e.openBreaker(t, ctx)
				e.plan.Recover(foPrimary)
				e.clk.Advance(10 * time.Second)
				return ctx
			},
			wantCost: rtt,
			wantOK:   true,
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			e := newFailoverEnv(t)
			ctx := tc.arrange(t, e, context.Background())

			cost, err := e.call(ctx)
			if tc.wantOK {
				if err != nil {
					t.Fatalf("call failed: %v", err)
				}
			} else if err == nil {
				t.Fatal("call succeeded, want failure")
			}
			if cost != tc.wantCost {
				t.Fatalf("charged %v, want exactly %v", cost, tc.wantCost)
			}
			for _, target := range tc.wantIs {
				if !errors.Is(err, target) {
					t.Errorf("errors.Is(err, %v) = false; err = %v", target, err)
				}
			}
			for _, target := range tc.wantNot {
				if errors.Is(err, target) {
					t.Errorf("errors.Is(err, %v) = true; err = %v", target, err)
				}
			}
		})
	}
}

// TestFailoverRestoresPrimaryAfterProbe exercises the full arc: primary
// dies, traffic fails over, primary recovers, the half-open probe
// restores it — with the caller charged only for the waits it actually
// sat through.
func TestFailoverRestoresPrimaryAfterProbe(t *testing.T) {
	model := simtime.Default()
	e := newFailoverEnv(t)
	ctx := context.Background()
	e.c.Policy = RetryPolicy{Budget: 750 * time.Millisecond}
	e.c.SetReplicas(foPrimary, foSecondary)

	// Healthy baseline.
	if cost, err := e.call(ctx); err != nil || cost != model.RTTUDP {
		t.Fatalf("baseline: cost %v err %v", cost, err)
	}

	// Kill the primary: three failovers open its breaker...
	e.plan.Kill(foPrimary)
	for i := 0; i < 3; i++ {
		if cost, err := e.call(ctx); err != nil || cost != model.RTTUDP {
			t.Fatalf("failover call %d: cost %v err %v", i, cost, err)
		}
	}
	// ...after which calls go straight to the secondary.
	if st := e.c.breakers().Breaker(foPrimary).State(); st != health.Open {
		t.Fatalf("primary breaker = %v, want Open", st)
	}
	if cost, err := e.call(ctx); err != nil || cost != model.RTTUDP {
		t.Fatalf("steady-state failover: cost %v err %v", cost, err)
	}
	if got := e.reg.Counter("hrpc_client_failovers_total").Value(); got != 4 {
		t.Fatalf("hrpc_client_failovers_total = %d, want 4", got)
	}

	// Primary recovers; after the cooldown the next call probes it.
	e.plan.Recover(foPrimary)
	e.clk.Advance(10 * time.Second)
	if cost, err := e.call(ctx); err != nil || cost != model.RTTUDP {
		t.Fatalf("probe call: cost %v err %v", cost, err)
	}
	if st := e.c.breakers().Breaker(foPrimary).State(); st != health.Closed {
		t.Fatalf("primary breaker after successful probe = %v, want Closed", st)
	}
	// And no further failovers: traffic is back on the primary.
	if got := e.reg.Counter("hrpc_client_failovers_total").Value(); got != 4 {
		t.Fatalf("failovers after recovery = %d, want still 4", got)
	}
}
