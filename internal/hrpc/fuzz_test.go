package hrpc

import "testing"

// Fuzz targets for the three control-protocol parsers: no input may panic,
// and accepted headers must round-trip.

func fuzzControl(f *testing.F, ctl ControlProtocol) {
	call, _ := ctl.EncodeCall(CallHeader{XID: 7, Program: 100017, Version: 1, Procedure: 3},
		[]byte("some args"))
	reply, _ := ctl.EncodeReply(ReplyHeader{XID: 7}, []byte("results"))
	fault, _ := ctl.EncodeReply(ReplyHeader{XID: 7, Err: "denied"}, nil)
	f.Add(call)
	f.Add(reply)
	f.Add(fault)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, body, err := ctl.DecodeCall(data); err == nil {
			re, err := ctl.EncodeCall(h, body)
			if err != nil {
				t.Fatalf("accepted call does not re-encode: %v", err)
			}
			h2, body2, err := ctl.DecodeCall(re)
			if err != nil || h2 != h || string(body2) != string(body) {
				t.Fatalf("call round trip changed: %+v/%q vs %+v/%q (%v)", h, body, h2, body2, err)
			}
		}
		_, _, _ = ctl.DecodeReply(data) // must not panic
	})
}

func FuzzSunRPCControl(f *testing.F)  { fuzzControl(f, SunRPCControl{}) }
func FuzzCourierControl(f *testing.F) { fuzzControl(f, CourierControl{}) }
func FuzzRawControl(f *testing.F)     { fuzzControl(f, RawControl{}) }
