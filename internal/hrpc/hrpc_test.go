package hrpc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hns/internal/marshal"
	"hns/internal/simtime"
	"hns/internal/transport"
)

var echoProc = Procedure{
	Name: "Echo", ID: 1,
	Args:  marshal.TStruct(marshal.TString),
	Ret:   marshal.TStruct(marshal.TString),
	Style: marshal.StyleGenerated,
}

var addProc = Procedure{
	Name: "Add", ID: 2,
	Args:  marshal.TStruct(marshal.TUint32, marshal.TUint32),
	Ret:   marshal.TStruct(marshal.TUint32),
	Style: marshal.StyleGenerated,
}

func newEchoServer(t *testing.T, net *transport.Network, suite Suite, host, addr string) (Binding, func()) {
	t.Helper()
	s := NewServer("echo@"+host, 7001, 1)
	s.Register(echoProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		v, err := args.Field(0)
		if err != nil {
			return marshal.Value{}, err
		}
		return marshal.StructV(v), nil
	})
	s.Register(addProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		a, _ := args.Items[0].AsU32()
		b, _ := args.Items[1].AsU32()
		return marshal.StructV(marshal.U32(a + b)), nil
	})
	ln, b, err := Serve(net, s, suite, host, addr)
	if err != nil {
		t.Fatal(err)
	}
	return b, func() { ln.Close() }
}

func allSuites() []struct {
	name  string
	suite Suite
} {
	return []struct {
		name  string
		suite Suite
	}{
		{"sunrpc", SuiteSunRPC},
		{"courier", SuiteCourier},
		{"raw", SuiteRaw},
		{"local", SuiteLocal},
	}
}

func TestCallAllSuites(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	for _, tc := range allSuites() {
		t.Run(tc.name, func(t *testing.T) {
			b, stop := newEchoServer(t, net, tc.suite, "fiji", "fiji:echo-"+tc.name)
			defer stop()
			c := NewClient(net)
			defer c.Close()

			ret, err := c.Call(context.Background(), b, echoProc,
				marshal.StructV(marshal.Str("hello heterogeneity")))
			if err != nil {
				t.Fatal(err)
			}
			got, _ := ret.Items[0].AsString()
			if got != "hello heterogeneity" {
				t.Fatalf("echo = %q", got)
			}

			ret, err = c.Call(context.Background(), b, addProc,
				marshal.StructV(marshal.U32(40), marshal.U32(2)))
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := ret.Items[0].AsU32(); n != 42 {
				t.Fatalf("add = %d", n)
			}
		})
	}
}

// TestMixAndMatch exercises the defining HRPC property: the same server
// implementation served simultaneously over different component stacks,
// addressed by bindings that differ only in component names.
func TestMixAndMatch(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	s := NewServer("poly", 7002, 1)
	s.Register(echoProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		return args, nil
	})
	var bindings []Binding
	for i, suite := range []Suite{SuiteSunRPC, SuiteCourier, SuiteRaw} {
		ln, b, err := Serve(net, s, suite, "vax", fmt.Sprintf("vax:poly%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		bindings = append(bindings, b)
	}
	c := NewClient(net)
	defer c.Close()
	for _, b := range bindings {
		ret, err := c.Call(context.Background(), b, echoProc,
			marshal.StructV(marshal.Str("same server, "+b.Control)))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if got, _ := ret.Items[0].AsString(); !strings.Contains(got, b.Control) {
			t.Fatalf("%v: echo = %q", b, got)
		}
	}
}

func TestRemoteFault(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	s := NewServer("faulty", 7003, 1)
	s.Register(echoProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		return marshal.Value{}, errors.New("name not found")
	})
	for _, tc := range allSuites() {
		t.Run(tc.name, func(t *testing.T) {
			ln, b, err := Serve(net, s, tc.suite, "h", "h:faulty-"+tc.name)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			c := NewClient(net)
			defer c.Close()
			_, err = c.Call(context.Background(), b, echoProc, marshal.StructV(marshal.Str("x")))
			var rf *RemoteFault
			if !errors.As(err, &rf) {
				t.Fatalf("want RemoteFault, got %v", err)
			}
			if !strings.Contains(rf.Msg, "name not found") {
				t.Fatalf("fault text lost: %q", rf.Msg)
			}
		})
	}
}

func TestWrongProgramVersionProc(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, stop := newEchoServer(t, net, SuiteSunRPC, "h", "h:echo")
	defer stop()
	c := NewClient(net)
	defer c.Close()

	wrongProg := b
	wrongProg.Program = 9999
	if _, err := c.Call(context.Background(), wrongProg, echoProc, marshal.StructV(marshal.Str("x"))); err == nil {
		t.Fatal("call to wrong program succeeded")
	}

	wrongVers := b
	wrongVers.Version = 42
	if _, err := c.Call(context.Background(), wrongVers, echoProc, marshal.StructV(marshal.Str("x"))); err == nil {
		t.Fatal("call to wrong version succeeded")
	}

	missing := Procedure{Name: "Missing", ID: 99, Args: marshal.TStruct(), Ret: marshal.TStruct()}
	if _, err := c.Call(context.Background(), b, missing, marshal.StructV()); err == nil {
		t.Fatal("call to missing procedure succeeded")
	}
}

func TestNullProcAlwaysAvailable(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, stop := newEchoServer(t, net, SuiteSunRPC, "h", "h:echo2")
	defer stop()
	c := NewClient(net)
	defer c.Close()
	if err := NullCall(context.Background(), c, b); err != nil {
		t.Fatalf("null call: %v", err)
	}
}

func TestInvalidBinding(t *testing.T) {
	c := NewClient(transport.NewNetwork(simtime.Default()))
	defer c.Close()
	_, err := c.Call(context.Background(), Binding{}, echoProc, marshal.StructV(marshal.Str("x")))
	if err == nil {
		t.Fatal("zero binding accepted")
	}
	b := Binding{Addr: "a", Transport: "udp", DataRep: "xdr", Control: "nope"}
	if _, err := c.Call(context.Background(), b, echoProc, marshal.StructV(marshal.Str("x"))); err == nil {
		t.Fatal("unknown control accepted")
	}
}

func TestCallCostBySuite(t *testing.T) {
	// The paper: "The remote call to the NSM takes 22-38 msec., depending
	// on the RPC system used." Check our suites land in that band and
	// order correctly (Sun/UDP < Raw/TCP ≤ Courier/TCP).
	model := simtime.Default()
	net := transport.NewNetwork(model)
	costs := map[string]time.Duration{}
	for _, tc := range allSuites() {
		if tc.name == "local" {
			continue
		}
		b, stop := newEchoServer(t, net, tc.suite, "h", "h:cost-"+tc.name)
		c := NewClient(net)
		// Warm the connection so TCP setup is excluded (steady state).
		if err := NullCall(context.Background(), c, b); err != nil {
			t.Fatal(err)
		}
		cost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
			_, err := c.Call(ctx, b, echoProc, marshal.StructV(marshal.Str("fiji.cs.washington.edu")))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		costs[tc.name] = cost
		c.Close()
		stop()
	}
	if !(costs["sunrpc"] < costs["raw"] && costs["raw"] <= costs["courier"]) {
		t.Fatalf("suite cost ordering wrong: %v", costs)
	}
	for name, cost := range costs {
		if cost < 18*time.Millisecond || cost > 45*time.Millisecond {
			t.Errorf("%s call cost %v outside the paper's remote-call band", name, cost)
		}
	}
}

func TestLocalSuiteNearZeroCost(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, stop := newEchoServer(t, net, SuiteLocal, "h", "h:local")
	defer stop()
	c := NewClient(net)
	defer c.Close()
	cost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := c.Call(ctx, b, echoProc, marshal.StructV(marshal.Str("x")))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// "C(local call) is effectively zero in the time scale of the other
	// terms" — well under a simulated 10 ms.
	if cost > 10*time.Millisecond {
		t.Fatalf("local call cost %v is not effectively zero", cost)
	}
}

func TestConcurrentClients(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, stop := newEchoServer(t, net, SuiteSunRPC, "h", "h:conc")
	defer stop()
	c := NewClient(net)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				msg := fmt.Sprintf("m-%d-%d", i, j)
				ret, err := c.Call(context.Background(), b, echoProc, marshal.StructV(marshal.Str(msg)))
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if got, _ := ret.Items[0].AsString(); got != msg {
					t.Errorf("echo %q != %q", got, msg)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestClientRedialAfterServerRestart(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, stop := newEchoServer(t, net, SuiteSunRPC, "h", "h:restart")
	c := NewClient(net)
	defer c.Close()
	if err := NullCall(context.Background(), c, b); err != nil {
		t.Fatal(err)
	}
	stop() // server goes down
	if err := NullCall(context.Background(), c, b); err == nil {
		t.Fatal("call to dead server succeeded")
	}
	// Server comes back at the same address; cached connection is stale.
	b2, stop2 := newEchoServer(t, net, SuiteSunRPC, "h", "h:restart")
	defer stop2()
	if b2.Addr != b.Addr {
		t.Fatalf("restart changed address: %s != %s", b2.Addr, b.Addr)
	}
	if err := NullCall(context.Background(), c, b); err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
}

func TestDuplicateProcedurePanics(t *testing.T) {
	s := NewServer("dup", 1, 1)
	s.Register(echoProc, func(ctx context.Context, v marshal.Value) (marshal.Value, error) { return v, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	s.Register(echoProc, func(ctx context.Context, v marshal.Value) (marshal.Value, error) { return v, nil })
}

// ---- Control protocol codecs.

func controls() []ControlProtocol {
	return []ControlProtocol{SunRPCControl{}, CourierControl{}, RawControl{}}
}

func TestControlCallRoundTrip(t *testing.T) {
	for _, ctl := range controls() {
		h := CallHeader{XID: 77, Program: 100017, Version: 1, Procedure: 3}
		frame, err := ctl.EncodeCall(h, []byte("args"))
		if err != nil {
			t.Fatalf("%s: %v", ctl.Name(), err)
		}
		got, body, err := ctl.DecodeCall(frame)
		if err != nil {
			t.Fatalf("%s: %v", ctl.Name(), err)
		}
		if got != h {
			t.Fatalf("%s: header %+v != %+v", ctl.Name(), got, h)
		}
		if string(body) != "args" {
			t.Fatalf("%s: body %q", ctl.Name(), body)
		}
	}
}

func TestControlReplyRoundTrip(t *testing.T) {
	for _, ctl := range controls() {
		// Success.
		frame, err := ctl.EncodeReply(ReplyHeader{XID: 9}, []byte("results"))
		if err != nil {
			t.Fatalf("%s: %v", ctl.Name(), err)
		}
		rh, body, err := ctl.DecodeReply(frame)
		if err != nil {
			t.Fatalf("%s: %v", ctl.Name(), err)
		}
		if rh.Err != "" || string(body) != "results" {
			t.Fatalf("%s: %+v %q", ctl.Name(), rh, body)
		}
		// Error.
		frame, err = ctl.EncodeReply(ReplyHeader{XID: 9, Err: "denied"}, nil)
		if err != nil {
			t.Fatalf("%s: %v", ctl.Name(), err)
		}
		rh, _, err = ctl.DecodeReply(frame)
		if err != nil {
			t.Fatalf("%s: %v", ctl.Name(), err)
		}
		if rh.Err != "denied" {
			t.Fatalf("%s: error text = %q", ctl.Name(), rh.Err)
		}
	}
}

func TestControlHeaderProperty(t *testing.T) {
	for _, ctl := range controls() {
		ctl := ctl
		f := func(xid, prog, vers, proc uint32, payload []byte) bool {
			// Courier narrows version/procedure to 16 bits on the wire.
			if ctl.Name() == "courier" {
				vers &= 0xffff
				proc &= 0xffff
				xid &= 0xffff
			}
			h := CallHeader{XID: xid, Program: prog, Version: vers, Procedure: proc}
			frame, err := ctl.EncodeCall(h, payload)
			if err != nil {
				return false
			}
			got, body, err := ctl.DecodeCall(frame)
			if err != nil || got != h {
				return false
			}
			if len(body) != len(payload) {
				return false
			}
			for i := range body {
				if body[i] != payload[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", ctl.Name(), err)
		}
	}
}

func TestControlDecodeGarbage(t *testing.T) {
	for _, ctl := range controls() {
		for _, junk := range [][]byte{nil, {1}, {1, 2, 3, 4, 5}, make([]byte, 64)} {
			// Must not panic; errors are fine (an all-zero 64-byte frame
			// may parse as a legitimate header under some protocols).
			_, _, _ = ctl.DecodeCall(junk)
			_, _, _ = ctl.DecodeReply(junk)
		}
	}
}

func TestControlRegistry(t *testing.T) {
	for _, name := range []string{"sunrpc", "courier", "raw"} {
		c, err := LookupControl(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Fatalf("LookupControl(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := LookupControl("xns"); err == nil {
		t.Fatal("unknown control resolved")
	}
	// At least the three built-ins (tests may register more).
	if got := ControlNames(); len(got) < 3 {
		t.Fatalf("ControlNames() = %v", got)
	}
}

// ---- Portmapper.

func TestPortmapper(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	pm := NewPortmapper("fiji", net.Model())
	ln, pmB, err := ServePortmap(net, pm)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if pmB != PortmapBinding("fiji") {
		t.Fatalf("portmap binding %v != well-known %v", pmB, PortmapBinding("fiji"))
	}

	c := NewClient(net)
	defer c.Close()

	// Unregistered program.
	if _, err := GetPortCall(context.Background(), c, pmB, 300, 1); err == nil {
		t.Fatal("lookup of unregistered program succeeded")
	}

	// Register remotely, then look up.
	if err := SetCall(context.Background(), c, pmB, 300, 1, "udp", "fiji:3000"); err != nil {
		t.Fatal(err)
	}
	addr, err := GetPortCall(context.Background(), c, pmB, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "fiji:3000" {
		t.Fatalf("GetPort = %q", addr)
	}

	// Unset locally, confirm gone.
	if !pm.Unset(300, 1) {
		t.Fatal("Unset reported missing entry")
	}
	if _, err := GetPortCall(context.Background(), c, pmB, 300, 1); err == nil {
		t.Fatal("lookup after unset succeeded")
	}
}

func TestBindingString(t *testing.T) {
	b := SuiteSunRPC.Bind("fiji", "fiji:9", 300, 1)
	s := b.String()
	for _, want := range []string{"udp", "sunrpc", "xdr", "fiji:9", "300"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Binding.String() = %q missing %q", s, want)
		}
	}
}

func TestSuiteBindFields(t *testing.T) {
	b := SuiteCourier.Bind("xerox", "xerox:5", 2, 3)
	if b.Transport != "tcp" || b.DataRep != "courier" || b.Control != "courier" {
		t.Fatalf("SuiteCourier.Bind = %+v", b)
	}
	if b.Program != 2 || b.Version != 3 || b.Host != "xerox" || b.Addr != "xerox:5" {
		t.Fatalf("SuiteCourier.Bind = %+v", b)
	}
}
