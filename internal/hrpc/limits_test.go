package hrpc

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"hns/internal/marshal"
	"hns/internal/simtime"
	"hns/internal/transport"
)

var blobProc = Procedure{
	Name: "Blob", ID: 3,
	Args:  marshal.TStruct(marshal.TBytes),
	Ret:   marshal.TStruct(marshal.TUint32),
	Style: marshal.StyleNone,
}

// TestOversizedFrameOverRealTCP verifies the transport's frame bound is
// enforced cleanly on the real-socket path: a payload beyond the limit
// errors at the sender, and the connection remains usable for normal
// traffic afterwards.
func TestOversizedFrameOverRealTCP(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	s := NewServer("blob", 7300, 1)
	s.Register(blobProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		b, _ := args.Items[0].AsBytes()
		return marshal.StructV(marshal.U32(uint32(len(b)))), nil
	})
	ln, b, err := Serve(net, s, SuiteRawNet, "localhost", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c := NewClient(net)
	defer c.Close()
	ctx := context.Background()

	// 2 MiB exceeds the 1 MiB frame bound.
	_, err = c.Call(ctx, b, blobProc, marshal.StructV(marshal.BytesV(make([]byte, 2<<20))))
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("unexpected error: %v", err)
	}

	// A sane payload still goes through on a fresh exchange.
	ret, err := c.Call(ctx, b, blobProc, marshal.StructV(marshal.BytesV(make([]byte, 64<<10))))
	if err != nil {
		t.Fatalf("normal call after oversize: %v", err)
	}
	if n, _ := ret.Items[0].AsU32(); n != 64<<10 {
		t.Fatalf("blob length = %d", n)
	}
}

// TestBindingWithMismatchedComponents exercises mix-and-match gone wrong:
// a client whose binding names the wrong data representation cannot talk
// to the server, but fails with an error instead of hanging or panicking.
func TestBindingWithMismatchedComponents(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	s := NewServer("echo", 7301, 1)
	s.Register(echoProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		return args, nil
	})
	ln, good, err := Serve(net, s, SuiteSunRPC, "h", "h:mm")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := NewClient(net)
	defer c.Close()

	bad := good
	bad.DataRep = "courier" // server speaks xdr
	if _, err := c.Call(context.Background(), bad, echoProc,
		marshal.StructV(marshal.Str("x"))); err == nil {
		t.Fatal("mismatched data representation succeeded")
	}
	bad = good
	bad.Control = "raw" // server speaks sunrpc
	if _, err := c.Call(context.Background(), bad, echoProc,
		marshal.StructV(marshal.Str("x"))); err == nil {
		t.Fatal("mismatched control protocol succeeded")
	}
	// The correct binding still works afterwards.
	if _, err := c.Call(context.Background(), good, echoProc,
		marshal.StructV(marshal.Str("x"))); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCallsOverRealTCP(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	s := NewServer("echo", 7302, 1)
	s.Register(echoProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		return args, nil
	})
	ln, b, err := Serve(net, s, SuiteRawNet, "localhost", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := NewClient(net)
	defer c.Close()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			for j := 0; j < 25; j++ {
				msg := marshal.Str(strings.Repeat("x", i+1))
				ret, err := c.Call(context.Background(), b, echoProc, marshal.StructV(msg))
				if err != nil {
					done <- err
					return
				}
				if got, _ := ret.Items[0].AsString(); len(got) != i+1 {
					done <- fmt.Errorf("echo length %d, want %d", len(got), i+1)
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
