package hrpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// countingTransport wraps a transport and counts dials, so pool tests
// can assert exactly when a new connection was opened.
type countingTransport struct {
	transport.Transport
	dials atomic.Int64
}

func (ct *countingTransport) Dial(ctx context.Context, addr string) (transport.Conn, error) {
	ct.dials.Add(1)
	return ct.Transport.Dial(ctx, addr)
}

// muxKillServer is a raw TCP backend that dies mid-conversation: it
// accepts one multiplexed connection, answers the first request (so the
// client pools the connection), swallows the next kill requests without
// replying, then closes its listener and the connection — a server
// crashing with kill calls in flight, redials refused.
func muxKillServer(t *testing.T, kill int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.SetDeadline(time.Now().Add(10 * time.Second))
		readFrame := func() (uint32, bool) {
			var hdr [8]byte
			if _, err := io.ReadFull(c, hdr[:]); err != nil {
				return 0, false
			}
			n := binary.BigEndian.Uint32(hdr[4:])
			if _, err := io.CopyN(io.Discard, c, int64(n)); err != nil {
				return 0, false
			}
			return binary.BigEndian.Uint32(hdr[:4]), true
		}
		var pre [4]byte
		if _, err := io.ReadFull(c, pre[:]); err != nil {
			c.Close()
			return
		}
		if tag, ok := readFrame(); ok {
			reply := binary.BigEndian.AppendUint32(nil, tag)
			reply = binary.BigEndian.AppendUint32(reply, 9)
			reply = append(reply, make([]byte, 8)...) // zero simulated cost
			reply = append(reply, 0)                  // statusOK, empty payload
			_, _ = c.Write(reply)
		}
		for i := 0; i < kill; i++ {
			if _, ok := readFrame(); !ok {
				break
			}
		}
		ln.Close() // refuse redials before breaking the stream
		c.Close()
	}()
	return ln.Addr().String()
}

// TestMuxTeardownOneBreakerFailure kills a multiplexed connection with
// many calls in flight and checks the failure contract end to end: every
// caller gets an error the availability machinery understands (matching
// transport.ErrConnBroken and Unavailable), all callers surface the same
// broken connection, and the endpoint's breaker records exactly one
// failure — not one per in-flight call.
func TestMuxTeardownOneBreakerFailure(t *testing.T) {
	for _, inflight := range []int{1, 8, 32} {
		t.Run(fmt.Sprintf("inflight=%d", inflight), func(t *testing.T) {
			addr := muxKillServer(t, inflight)
			n := transport.NewNetwork(simtime.Default())
			tr, err := n.Transport("tcp-net")
			if err != nil {
				t.Fatal(err)
			}
			reg := metrics.NewRegistry()
			c := NewClient(n)
			c.Metrics = reg
			defer c.Close()
			ctx := context.Background()

			// Warm-up call: establishes and pools the one connection all
			// the doomed calls will share.
			if _, _, err := c.roundTrip(ctx, tr, addr, []byte("warm"), budgetState{}); err != nil {
				t.Fatalf("warm-up call: %v", err)
			}

			errs := make([]error, inflight)
			var wg sync.WaitGroup
			for i := range errs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, _, errs[i] = c.roundTrip(ctx, tr, addr, []byte("doomed"), budgetState{})
				}(i)
			}
			wg.Wait()

			ids := make(map[uint64]bool)
			for i, err := range errs {
				if err == nil {
					t.Fatalf("call %d: expected error, got success", i)
				}
				if !errors.Is(err, transport.ErrConnBroken) {
					t.Fatalf("call %d: error %v does not match ErrConnBroken", i, err)
				}
				if !Unavailable(err) {
					t.Fatalf("call %d: error %v not Unavailable", i, err)
				}
				var cb *transport.ConnBrokenError
				if !errors.As(err, &cb) {
					t.Fatalf("call %d: error %v carries no *ConnBrokenError", i, err)
				}
				ids[cb.ConnID] = true
			}
			if len(ids) != 1 {
				t.Fatalf("in-flight calls saw %d distinct broken connections, want 1", len(ids))
			}
			failures := reg.Counter(metrics.Labels("breaker_failures_total",
				"service", "hrpc", "endpoint", addr)).Value()
			if failures != 1 {
				t.Fatalf("breaker_failures_total = %d, want 1 (one dead connection, not one per call)", failures)
			}
		})
	}
}

// TestMuxPoolIdleEviction checks the idle-timeout half of satellite 1:
// a connection that sits unused past Pool.IdleTimeout is closed on the
// next acquire and replaced by a fresh dial; before the deadline it is
// reused.
func TestMuxPoolIdleEviction(t *testing.T) {
	n := transport.NewNetwork(simtime.Default())
	inner, err := n.Transport("udp")
	if err != nil {
		t.Fatal(err)
	}
	echo := func(ctx context.Context, req []byte) ([]byte, error) { return req, nil }
	ln, err := inner.Listen("idle:1", echo)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ct := &countingTransport{Transport: inner}

	clk := simtime.NewFakeClock(time.Unix(563328000, 0))
	reg := metrics.NewRegistry()
	c := NewClient(n)
	c.Metrics = reg
	c.Pool = PoolConfig{IdleTimeout: time.Minute, Clock: clk}
	defer c.Close()

	call := func() {
		t.Helper()
		if _, _, err := c.roundTrip(context.Background(), ct, "idle:1", []byte("ping"), budgetState{}); err != nil {
			t.Fatal(err)
		}
	}
	poolSize := reg.Gauge(metrics.Labels("conn_pool_size", "addr", "idle:1"))

	call()
	call()
	if d := ct.dials.Load(); d != 1 {
		t.Fatalf("dials after two back-to-back calls = %d, want 1 (connection reused)", d)
	}
	clk.Advance(59 * time.Second)
	call()
	if d := ct.dials.Load(); d != 1 {
		t.Fatalf("dials before the idle deadline = %d, want 1", d)
	}
	clk.Advance(60 * time.Second)
	call()
	if d := ct.dials.Load(); d != 2 {
		t.Fatalf("dials after the idle deadline = %d, want 2 (stale connection evicted)", d)
	}
	if s := poolSize.Value(); s != 1 {
		t.Fatalf("conn_pool_size = %d, want 1 (evicted connection replaced, not accumulated)", s)
	}
}

// TestMuxClientCloseIdle checks the explicit-eviction half of satellite
// 1: CloseIdle closes every connection with no call in flight, spares
// busy ones, and drops emptied endpoint entries so the per-endpoint map
// no longer grows without bound.
func TestMuxClientCloseIdle(t *testing.T) {
	n := transport.NewNetwork(simtime.Default())
	inner, err := n.Transport("udp")
	if err != nil {
		t.Fatal(err)
	}
	arrive := make(chan struct{}, 8)
	release := make(chan struct{})
	blockable := func(ctx context.Context, req []byte) ([]byte, error) {
		if string(req) == "block" {
			arrive <- struct{}{}
			<-release
		}
		return req, nil
	}
	echo := func(ctx context.Context, req []byte) ([]byte, error) { return req, nil }
	lnA, err := inner.Listen("ci-a:1", blockable)
	if err != nil {
		t.Fatal(err)
	}
	defer lnA.Close()
	lnB, err := inner.Listen("ci-b:1", echo)
	if err != nil {
		t.Fatal(err)
	}
	defer lnB.Close()
	ct := &countingTransport{Transport: inner}

	c := NewClient(n)
	c.Metrics = metrics.NewRegistry()
	defer c.Close()
	ctx := context.Background()

	call := func(addr, payload string) error {
		_, _, err := c.roundTrip(ctx, ct, addr, []byte(payload), budgetState{})
		return err
	}
	if err := call("ci-a:1", "ping"); err != nil {
		t.Fatal(err)
	}
	if err := call("ci-b:1", "ping"); err != nil {
		t.Fatal(err)
	}
	if d := ct.dials.Load(); d != 2 {
		t.Fatalf("dials = %d, want 2", d)
	}

	// Park a call in flight on a's connection, then CloseIdle: only b's
	// idle connection may be closed.
	done := make(chan error, 1)
	go func() { done <- call("ci-a:1", "block") }()
	<-arrive
	if got := c.CloseIdle(); got != 1 {
		t.Fatalf("CloseIdle with one call in flight = %d closed, want 1 (the idle one)", got)
	}
	c.mu.Lock()
	remaining := len(c.pools)
	c.mu.Unlock()
	if remaining != 1 {
		t.Fatalf("pools after CloseIdle = %d entries, want 1 (emptied entries dropped)", remaining)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight call across CloseIdle: %v", err)
	}

	// Everything is idle now: CloseIdle empties the map entirely.
	if got := c.CloseIdle(); got != 1 {
		t.Fatalf("second CloseIdle = %d closed, want 1", got)
	}
	c.mu.Lock()
	remaining = len(c.pools)
	c.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("pools after draining CloseIdle = %d entries, want 0", remaining)
	}
	// And the client recovers: the next call simply dials again.
	if err := call("ci-b:1", "ping"); err != nil {
		t.Fatal(err)
	}
	if d := ct.dials.Load(); d != 3 {
		t.Fatalf("dials after recovery call = %d, want 3", d)
	}
}

// TestMuxPoolGrowsAtStreamCap checks PoolConfig sizing: with
// MaxStreams=1 a second concurrent call opens a second connection, and
// once MaxConns is reached further calls overflow onto the least-loaded
// connection instead of dialing or queueing.
func TestMuxPoolGrowsAtStreamCap(t *testing.T) {
	n := transport.NewNetwork(simtime.Default())
	inner, err := n.Transport("udp")
	if err != nil {
		t.Fatal(err)
	}
	arrive := make(chan struct{}, 8)
	release := make(chan struct{})
	block := func(ctx context.Context, req []byte) ([]byte, error) {
		arrive <- struct{}{}
		<-release
		return req, nil
	}
	ln, err := inner.Listen("grow:1", block)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ct := &countingTransport{Transport: inner}

	reg := metrics.NewRegistry()
	c := NewClient(n)
	c.Metrics = reg
	c.Pool = PoolConfig{MaxConns: 2, MaxStreams: 1}
	defer c.Close()

	done := make(chan error, 3)
	start := func() {
		go func() {
			_, _, err := c.roundTrip(context.Background(), ct, "grow:1", []byte("ping"), budgetState{})
			done <- err
		}()
	}
	inflight := reg.Gauge(metrics.Labels("conn_inflight", "addr", "grow:1"))
	poolSize := reg.Gauge(metrics.Labels("conn_pool_size", "addr", "grow:1"))

	start() // first call: dials connection 1
	<-arrive
	if d := ct.dials.Load(); d != 1 {
		t.Fatalf("dials after first call = %d, want 1", d)
	}
	start() // connection 1 is at its stream cap: dials connection 2
	<-arrive
	if d := ct.dials.Load(); d != 2 {
		t.Fatalf("dials with second concurrent call = %d, want 2 (stream cap forces growth)", d)
	}
	if s := poolSize.Value(); s != 2 {
		t.Fatalf("conn_pool_size = %d, want 2", s)
	}
	start() // pool at MaxConns: overflow rides a connection, no dial, no queue
	<-arrive
	if d := ct.dials.Load(); d != 2 {
		t.Fatalf("dials with overflow call = %d, want 2 (MaxConns caps growth)", d)
	}
	if f := inflight.Value(); f != 3 {
		t.Fatalf("conn_inflight = %d, want 3", f)
	}

	close(release)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if f := inflight.Value(); f != 0 {
		t.Fatalf("conn_inflight after completion = %d, want 0", f)
	}
	if s := poolSize.Value(); s != 2 {
		t.Fatalf("conn_pool_size after completion = %d, want 2 (connections stay pooled)", s)
	}
}

// TestMuxHRPCConcurrentEcho drives the full client stack — marshalling,
// control protocol, pooled multiplexed TCP — with many concurrent
// callers sharing a small pool, checking that every reply reaches its
// caller intact (no cross-stream mixups under -race).
func TestMuxHRPCConcurrentEcho(t *testing.T) {
	n := transport.NewNetwork(simtime.Default())
	b, stop := newEchoServer(t, n, SuiteCourierNet, "fiji", "127.0.0.1:0")
	defer stop()
	c := NewClient(n)
	c.Pool = PoolConfig{MaxConns: 2, MaxStreams: 16}
	defer c.Close()

	const callers = 64
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				want := fmt.Sprintf("caller-%d-call-%d", i, k)
				ret, err := c.Call(context.Background(), b, echoProc,
					marshal.StructV(marshal.Str(want)))
				if err != nil {
					errs[i] = err
					return
				}
				if got, _ := ret.Items[0].AsString(); got != want {
					errs[i] = fmt.Errorf("echo = %q, want %q", got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
}
