package hrpc

// Per-endpoint connection pool.
//
// The client used to cache exactly one connection per transport+address
// key, forever: the map never evicted, and with the serialized legacy
// transports that single socket carried one call at a time. Multiplexed
// transports (internal/transport mux.go) change the economics — one
// connection carries many concurrent streams — so the cache becomes a
// small pool: up to MaxConns connections per endpoint, each carrying up
// to MaxStreams in-flight calls, with idle connections closed after
// IdleTimeout (or explicitly via Client.CloseIdle).
//
// The zero-value PoolConfig reproduces the legacy discipline exactly —
// one connection per endpoint, kept until Close — so every calibrated
// simulated cost (one dial per endpoint per client, ever) is unchanged
// unless a caller opts into a bigger pool.

import (
	"context"
	"time"

	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// PoolConfig bounds the client's per-endpoint connection pool. Set
// before first use.
type PoolConfig struct {
	// MaxConns caps how many connections may be open to one endpoint.
	// With multiplexed transports one connection usually suffices;
	// additional ones help once MaxStreams bounds the calls a single
	// connection may carry. Non-positive means 1 — the legacy single
	// cached connection.
	MaxConns int

	// MaxStreams caps concurrent in-flight calls per connection. When
	// every open connection is at the cap, a new one is dialed if
	// MaxConns allows; otherwise the least-loaded connection carries the
	// overflow (the cap is a growth signal, not an admission limit, so
	// calls never queue in the pool). Non-positive means unbounded.
	MaxStreams int

	// IdleTimeout retires connections that have carried no call for this
	// long. Expiry is checked lazily on the next acquire against the
	// same endpoint and eagerly by Client.CloseIdle. Non-positive means
	// idle connections are kept until Close.
	IdleTimeout time.Duration

	// Clock supplies the idle-accounting time base. Nil means real time.
	Clock simtime.Clock
}

// connPool is the per-endpoint state: a small set of open connections
// plus the gauges that make its size and load observable.
type connPool struct {
	addr     string
	size     *metrics.Gauge // conn_pool_size{addr}
	inflight *metrics.Gauge // conn_inflight{addr}

	// conns is guarded by Client.mu (the pool map's own lock): pool
	// operations are brief bookkeeping — dials and calls happen outside
	// the lock.
	conns []*pooledConn
}

// pooledConn is one pool entry. inflight counts calls between acquire
// and release/discard; idleSince is meaningful only while inflight is 0.
type pooledConn struct {
	pool      *connPool
	conn      transport.Conn
	inflight  int
	idleSince time.Time
	gone      bool // removed from the pool (discarded or evicted)
}

// clock resolves the pool's time base.
func (c *Client) clock() simtime.Clock {
	if c.Pool.Clock != nil {
		return c.Pool.Clock
	}
	return simtime.RealClock{}
}

// poolFor returns (creating if needed) the pool for key. Caller must
// hold c.mu.
func (c *Client) poolFor(key, addr string) *connPool {
	if c.pools == nil {
		c.pools = make(map[string]*connPool)
	}
	p, ok := c.pools[key]
	if !ok {
		reg := c.registry()
		p = &connPool{
			addr:     addr,
			size:     reg.Gauge(metrics.Labels("conn_pool_size", "addr", addr)),
			inflight: reg.Gauge(metrics.Labels("conn_inflight", "addr", addr)),
		}
		c.pools[key] = p
	}
	return p
}

// evictIdleLocked removes (and returns, for closing outside the lock)
// every connection that has sat idle past the deadline. Caller holds
// c.mu.
func (p *connPool) evictIdleLocked(now time.Time, idle time.Duration) []*pooledConn {
	if idle <= 0 {
		return nil
	}
	var expired []*pooledConn
	kept := p.conns[:0]
	for _, e := range p.conns {
		if e.inflight == 0 && now.Sub(e.idleSince) >= idle {
			e.gone = true
			expired = append(expired, e)
			continue
		}
		kept = append(kept, e)
	}
	p.conns = kept
	p.size.Set(int64(len(p.conns)))
	return expired
}

// leastLoadedLocked returns the connection with the fewest in-flight
// calls, optionally skipping those at the stream cap. Caller holds c.mu.
func (p *connPool) leastLoadedLocked(maxStreams int) *pooledConn {
	var best *pooledConn
	for _, e := range p.conns {
		if maxStreams > 0 && e.inflight >= maxStreams {
			continue
		}
		if best == nil || e.inflight < best.inflight {
			best = e
		}
	}
	return best
}

// acquire returns a connection to addr holding one in-flight
// reservation, reusing a pooled connection when one is available and
// dialing otherwise. The second result reports whether the connection
// predates this acquire (the legacy "came from the cache" signal that
// gates the one-redial recovery in sendOnce).
func (c *Client) acquire(ctx context.Context, tr transport.Transport, addr, key string) (*pooledConn, bool, error) {
	maxConns := c.Pool.MaxConns
	if maxConns <= 0 {
		maxConns = 1
	}
	now := c.clock().Now()

	c.mu.Lock()
	pool := c.poolFor(key, addr)
	expired := pool.evictIdleLocked(now, c.Pool.IdleTimeout)
	if e := pool.leastLoadedLocked(c.Pool.MaxStreams); e != nil {
		e.inflight++
		pool.inflight.Add(1)
		c.mu.Unlock()
		closeAll(expired)
		return e, true, nil
	}
	full := len(pool.conns) >= maxConns
	var overflow *pooledConn
	if full {
		// Every connection is at the stream cap and the pool is at its
		// size cap: ride the least-loaded one rather than queueing.
		overflow = pool.leastLoadedLocked(0)
	}
	if overflow != nil {
		overflow.inflight++
		pool.inflight.Add(1)
		c.mu.Unlock()
		closeAll(expired)
		return overflow, true, nil
	}
	c.mu.Unlock()
	closeAll(expired)

	conn, err := tr.Dial(ctx, addr)
	if err != nil {
		return nil, false, err
	}
	e := &pooledConn{pool: pool, conn: conn, inflight: 1}
	c.mu.Lock()
	if len(pool.conns) >= maxConns {
		// Lost a dial race; ride an existing connection and drop ours.
		if prev := pool.leastLoadedLocked(0); prev != nil {
			prev.inflight++
			pool.inflight.Add(1)
			c.mu.Unlock()
			_ = conn.Close()
			return prev, true, nil
		}
	}
	pool.conns = append(pool.conns, e)
	pool.size.Set(int64(len(pool.conns)))
	pool.inflight.Add(1)
	c.mu.Unlock()
	return e, false, nil
}

// release returns an acquire's reservation after a successful (or
// conn-preserving) call.
func (c *Client) release(e *pooledConn) {
	c.mu.Lock()
	e.inflight--
	e.idleSince = c.clock().Now()
	e.pool.inflight.Add(-1)
	c.mu.Unlock()
}

// discard drops a failed connection: the reservation is returned and the
// connection is removed from the pool (idempotently — the first caller
// to notice the failure removes it, later ones only release) and closed.
func (c *Client) discard(e *pooledConn) {
	c.mu.Lock()
	e.inflight--
	e.pool.inflight.Add(-1)
	remove := false
	if !e.gone {
		p := e.pool
		for i, x := range p.conns {
			if x == e {
				p.conns = append(p.conns[:i], p.conns[i+1:]...)
				p.size.Set(int64(len(p.conns)))
				e.gone = true
				remove = true
				break
			}
		}
	}
	c.mu.Unlock()
	if remove {
		_ = e.conn.Close()
	}
}

// CloseIdle closes every pooled connection with no call in flight —
// those idle at least Pool.IdleTimeout when it is set, every idle one
// when it is not — and drops endpoint entries whose pools empty out, so
// the per-endpoint map no longer grows without bound across many
// distinct addresses. It reports how many connections it closed.
func (c *Client) CloseIdle() int {
	now := c.clock().Now()
	idle := c.Pool.IdleTimeout

	var victims []*pooledConn
	c.mu.Lock()
	for key, p := range c.pools {
		kept := p.conns[:0]
		for _, e := range p.conns {
			if e.inflight == 0 && (idle <= 0 || now.Sub(e.idleSince) >= idle) {
				e.gone = true
				victims = append(victims, e)
				continue
			}
			kept = append(kept, e)
		}
		p.conns = kept
		p.size.Set(int64(len(p.conns)))
		if len(p.conns) == 0 {
			delete(c.pools, key)
		}
	}
	c.mu.Unlock()
	closeAll(victims)
	return len(victims)
}

func closeAll(entries []*pooledConn) {
	for _, e := range entries {
		_ = e.conn.Close()
	}
}
