package hrpc

import (
	"context"
	"fmt"
	"sync"

	"hns/internal/marshal"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// The Sun portmapper: the per-host program→port registry Sun RPC binding
// consults. The BIND-world binding NSM speaks this protocol to complete a
// binding (host address alone does not identify the server's port).
//
// Program number and procedure numbers follow the ONC convention.
const (
	// PortmapProgram is the portmapper's own program number.
	PortmapProgram = 100000
	// PortmapVersion is the protocol version implemented here.
	PortmapVersion = 2
	// PortmapPort is the well-known address suffix the portmapper listens
	// on (":111" by convention; the simulated transports use
	// "host:portmap").
	PortmapPort = "111"
)

// Portmapper procedures.
var (
	procPmapSet = Procedure{
		Name: "PMAPPROC_SET", ID: 1,
		Args: marshal.TStruct(marshal.TUint32, marshal.TUint32, marshal.TString, marshal.TString),
		Ret:  marshal.TStruct(marshal.TBool),
	}
	procPmapUnset = Procedure{
		Name: "PMAPPROC_UNSET", ID: 2,
		Args: marshal.TStruct(marshal.TUint32, marshal.TUint32),
		Ret:  marshal.TStruct(marshal.TBool),
	}
	procPmapGetPort = Procedure{
		Name: "PMAPPROC_GETPORT", ID: 3,
		Args: marshal.TStruct(marshal.TUint32, marshal.TUint32, marshal.TString),
		Ret:  marshal.TStruct(marshal.TBool, marshal.TString),
	}
	procPmapDump = Procedure{
		Name: "PMAPPROC_DUMP", ID: 4,
		Args: marshal.TStruct(),
		Ret: marshal.TStruct(marshal.TList(marshal.TStruct(
			marshal.TUint32, marshal.TUint32, marshal.TString, marshal.TString,
		))),
	}
)

type pmapKey struct {
	prog, vers uint32
}

type pmapEntry struct {
	proto string
	addr  string
}

// Portmapper is one host's registration table. Servers register their
// concrete endpoint under (program, version); Sun-style binding looks the
// endpoint up before calling.
type Portmapper struct {
	host  string
	model *simtime.Model

	mu      sync.RWMutex
	entries map[pmapKey]pmapEntry
}

// NewPortmapper creates an empty portmapper for host.
func NewPortmapper(host string, model *simtime.Model) *Portmapper {
	return &Portmapper{host: host, model: model, entries: make(map[pmapKey]pmapEntry)}
}

// Set registers (or replaces) the endpoint for program/version. It is both
// the local API and the PMAPPROC_SET implementation.
func (p *Portmapper) Set(prog, vers uint32, proto, addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries[pmapKey{prog, vers}] = pmapEntry{proto: proto, addr: addr}
}

// Unset removes the registration, reporting whether one existed.
func (p *Portmapper) Unset(prog, vers uint32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := pmapKey{prog, vers}
	_, ok := p.entries[k]
	delete(p.entries, k)
	return ok
}

// GetPort looks up the endpoint for program/version.
func (p *Portmapper) GetPort(prog, vers uint32) (proto, addr string, ok bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.entries[pmapKey{prog, vers}]
	return e.proto, e.addr, ok
}

// Server wraps the portmapper in an HRPC server speaking the standard
// portmap procedures.
func (p *Portmapper) Server() *Server {
	s := NewServer("portmap@"+p.host, PortmapProgram, PortmapVersion)
	s.Register(procPmapSet, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		simtime.Charge(ctx, p.model.PortmapLookup)
		prog, _ := args.Items[0].AsU32()
		vers, _ := args.Items[1].AsU32()
		proto, _ := args.Items[2].AsString()
		addr, _ := args.Items[3].AsString()
		p.Set(prog, vers, proto, addr)
		return marshal.StructV(marshal.BoolV(true)), nil
	})
	s.Register(procPmapUnset, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		simtime.Charge(ctx, p.model.PortmapLookup)
		prog, _ := args.Items[0].AsU32()
		vers, _ := args.Items[1].AsU32()
		return marshal.StructV(marshal.BoolV(p.Unset(prog, vers))), nil
	})
	s.Register(procPmapGetPort, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		simtime.Charge(ctx, p.model.PortmapLookup)
		prog, _ := args.Items[0].AsU32()
		vers, _ := args.Items[1].AsU32()
		_, addr, ok := p.GetPort(prog, vers)
		return marshal.StructV(marshal.BoolV(ok), marshal.Str(addr)), nil
	})
	s.Register(procPmapDump, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		simtime.Charge(ctx, p.model.PortmapLookup)
		p.mu.RLock()
		defer p.mu.RUnlock()
		items := make([]marshal.Value, 0, len(p.entries))
		for k, e := range p.entries {
			items = append(items, marshal.StructV(
				marshal.U32(k.prog), marshal.U32(k.vers),
				marshal.Str(e.proto), marshal.Str(e.addr),
			))
		}
		return marshal.StructV(marshal.ListV(items...)), nil
	})
	return s
}

// ServePortmap starts the portmapper at its well-known address
// ("<host>:portmap") over the Sun RPC suite and returns its binding.
func ServePortmap(net *transport.Network, p *Portmapper) (transport.Listener, Binding, error) {
	return Serve(net, p.Server(), SuiteSunRPC, p.host, p.host+":portmap")
}

// PortmapBinding returns the well-known binding for host's portmapper on
// the simulated network.
func PortmapBinding(host string) Binding {
	return SuiteSunRPC.Bind(host, host+":portmap", PortmapProgram, PortmapVersion)
}

// GetPortCall asks the portmapper bound by pm for program/version's
// endpoint.
func GetPortCall(ctx context.Context, c *Client, pm Binding, prog, vers uint32) (string, error) {
	ret, err := c.Call(ctx, pm, procPmapGetPort, marshal.StructV(
		marshal.U32(prog), marshal.U32(vers), marshal.Str("udp"),
	))
	if err != nil {
		return "", err
	}
	ok, _ := ret.Items[0].AsBool()
	if !ok {
		return "", fmt.Errorf("hrpc: portmap %s: program %d.%d not registered", pm.Addr, prog, vers)
	}
	addr, _ := ret.Items[1].AsString()
	return addr, nil
}

// SetCall registers program/version→addr with the portmapper bound by pm.
func SetCall(ctx context.Context, c *Client, pm Binding, prog, vers uint32, proto, addr string) error {
	_, err := c.Call(ctx, pm, procPmapSet, marshal.StructV(
		marshal.U32(prog), marshal.U32(vers), marshal.Str(proto), marshal.Str(addr),
	))
	return err
}

// NullCall pings procedure 0 of the server bound by b — the liveness probe
// Sun-style binding performs before handing a binding to the client.
func NullCall(ctx context.Context, c *Client, b Binding) error {
	_, err := c.Call(ctx, b, NullProc, marshal.StructV())
	return err
}
