package hrpc

import (
	"encoding/binary"
	"fmt"
	"time"

	"hns/internal/simtime"
)

// RawControl is the Raw HRPC protocol suite's control protocol: the
// minimal header that lets HRPC clients "make calls to any message passing
// program that conforms with the basic RPC paradigm of make a request and
// wait for a response". The prototype's HRPC interface to BIND was built
// on this suite.
type RawControl struct{}

const (
	rawStatusOK  = 0
	rawStatusErr = 1
)

// Name implements ControlProtocol.
func (RawControl) Name() string { return "raw" }

// EncodeCall implements ControlProtocol.
//
// Layout: xid u32, program u32, version u32, procedure u32, args...
func (c RawControl) EncodeCall(h CallHeader, args []byte) ([]byte, error) {
	return c.AppendCall(make([]byte, 0, 16+len(args)), h, args)
}

// AppendCall implements CallAppender.
func (RawControl) AppendCall(buf []byte, h CallHeader, args []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint32(buf, h.XID)
	buf = binary.BigEndian.AppendUint32(buf, h.Program)
	buf = binary.BigEndian.AppendUint32(buf, h.Version)
	buf = binary.BigEndian.AppendUint32(buf, h.Procedure)
	return append(buf, args...), nil
}

// DecodeCall implements ControlProtocol.
func (RawControl) DecodeCall(frame []byte) (CallHeader, []byte, error) {
	if len(frame) < 16 {
		return CallHeader{}, nil, fmt.Errorf("%w: raw call header truncated", ErrBadFrame)
	}
	h := CallHeader{
		XID:       binary.BigEndian.Uint32(frame[0:]),
		Program:   binary.BigEndian.Uint32(frame[4:]),
		Version:   binary.BigEndian.Uint32(frame[8:]),
		Procedure: binary.BigEndian.Uint32(frame[12:]),
	}
	return h, frame[16:], nil
}

// EncodeReply implements ControlProtocol.
//
// Layout: xid u32, status u32 (0 ok, 1 error), then results or error text.
func (c RawControl) EncodeReply(h ReplyHeader, results []byte) ([]byte, error) {
	return c.AppendReply(make([]byte, 0, 8+len(results)+len(h.Err)), h, results)
}

// AppendReply implements ReplyAppender.
func (RawControl) AppendReply(buf []byte, h ReplyHeader, results []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint32(buf, h.XID)
	if h.Err != "" {
		buf = binary.BigEndian.AppendUint32(buf, rawStatusErr)
		return append(buf, h.Err...), nil
	}
	buf = binary.BigEndian.AppendUint32(buf, rawStatusOK)
	return append(buf, results...), nil
}

// DecodeReply implements ControlProtocol.
func (RawControl) DecodeReply(frame []byte) (ReplyHeader, []byte, error) {
	if len(frame) < 8 {
		return ReplyHeader{}, nil, fmt.Errorf("%w: raw reply header truncated", ErrBadFrame)
	}
	h := ReplyHeader{XID: binary.BigEndian.Uint32(frame[0:])}
	switch st := binary.BigEndian.Uint32(frame[4:]); st {
	case rawStatusOK:
		return h, frame[8:], nil
	case rawStatusErr:
		h.Err = string(frame[8:])
		if h.Err == "" {
			h.Err = "raw: call failed"
		}
		return h, nil, nil
	default:
		return ReplyHeader{}, nil, fmt.Errorf("%w: raw status %d", ErrBadFrame, st)
	}
}

// Overhead implements ControlProtocol.
func (RawControl) Overhead(m *simtime.Model) time.Duration { return m.CtlRaw }

var _ ControlProtocol = RawControl{}
