package hrpc

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hns/internal/marshal"
	"hns/internal/metrics"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// lookupProc is a read-only procedure marked cacheable, standing in for
// the BIND query path.
var lookupProc = Procedure{
	Name: "Lookup", ID: 3,
	Args:      marshal.TStruct(marshal.TString),
	Ret:       marshal.TStruct(marshal.TString),
	Style:     marshal.StyleGenerated,
	Cacheable: true,
}

// newCountingServer serves lookupProc (cacheable) and echoProc (not),
// counting handler invocations.
func newCountingServer(t *testing.T, net *transport.Network, ttl time.Duration) (Binding, *atomic.Int64, *Server, func()) {
	t.Helper()
	s := NewServer("count@fiji", 7002, 1)
	s.Metrics = metrics.Discard
	var calls atomic.Int64
	handler := func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		calls.Add(1)
		simtime.Charge(ctx, 3*time.Millisecond) // deterministic handler work
		v, err := args.Field(0)
		if err != nil {
			return marshal.Value{}, err
		}
		return marshal.StructV(v), nil
	}
	s.Register(lookupProc, handler)
	s.Register(echoProc, handler)
	s.EnableReplyCache(nil, ttl, 0)
	ln, b, err := Serve(net, s, SuiteRaw, "fiji", "fiji:count")
	if err != nil {
		t.Fatal(err)
	}
	return b, &calls, s, func() { ln.Close() }
}

func callCost(t *testing.T, c *Client, b Binding, p Procedure, arg string) (time.Duration, string) {
	t.Helper()
	m := simtime.NewMeter()
	ctx := simtime.WithMeter(context.Background(), m)
	ret, err := c.Call(ctx, b, p, marshal.StructV(marshal.Str(arg)))
	if err != nil {
		t.Fatalf("call %s(%q): %v", p.Name, arg, err)
	}
	got, err := ret.Items[0].AsString()
	if err != nil {
		t.Fatal(err)
	}
	return m.Elapsed(), got
}

func TestReplyCacheSkipsHandler(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, calls, s, stop := newCountingServer(t, net, time.Hour)
	defer stop()
	c := NewClient(net)
	defer c.Close()

	// Warm the connection so both measured calls ride the cached conn
	// (the first dial charges TCPConnSetup to whichever call makes it).
	callCost(t, c, b, lookupProc, "warmup")

	missCost, got := callCost(t, c, b, lookupProc, "fiji")
	if got != "fiji" || calls.Load() != 2 {
		t.Fatalf("first call: got %q, %d handler invocations", got, calls.Load())
	}
	hitCost, got := callCost(t, c, b, lookupProc, "fiji")
	if got != "fiji" {
		t.Fatalf("cached call returned %q", got)
	}
	if calls.Load() != 2 {
		t.Fatalf("repeat request invoked the handler (%d calls)", calls.Load())
	}
	// Cost replay: a hit charges exactly what the original exchange did,
	// so enabling the cache cannot perturb the calibrated tables.
	if hitCost != missCost {
		t.Fatalf("hit cost %v != miss cost %v", hitCost, missCost)
	}
	st := s.ReplyCacheStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit 2 misses", st)
	}
}

func TestReplyCacheDistinctArgs(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, calls, _, stop := newCountingServer(t, net, time.Hour)
	defer stop()
	c := NewClient(net)
	defer c.Close()

	_, g1 := callCost(t, c, b, lookupProc, "fiji")
	_, g2 := callCost(t, c, b, lookupProc, "june")
	_, g3 := callCost(t, c, b, lookupProc, "june")
	if g1 != "fiji" || g2 != "june" || g3 != "june" {
		t.Fatalf("answers: %q %q %q", g1, g2, g3)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2 (one per distinct request)", calls.Load())
	}
}

func TestReplyCacheUncacheableProc(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, calls, _, stop := newCountingServer(t, net, time.Hour)
	defer stop()
	c := NewClient(net)
	defer c.Close()

	callCost(t, c, b, echoProc, "x")
	callCost(t, c, b, echoProc, "x")
	if calls.Load() != 2 {
		t.Fatalf("uncacheable procedure was cached (%d handler calls)", calls.Load())
	}
}

func TestReplyCacheInvalidate(t *testing.T) {
	net := transport.NewNetwork(simtime.Default())
	b, calls, s, stop := newCountingServer(t, net, time.Hour)
	defer stop()
	c := NewClient(net)
	defer c.Close()

	callCost(t, c, b, lookupProc, "fiji")
	s.InvalidateReplies()
	callCost(t, c, b, lookupProc, "fiji")
	if calls.Load() != 2 {
		t.Fatalf("invalidated entry still served (%d handler calls)", calls.Load())
	}
}

func TestReplyCacheTTLExpiry(t *testing.T) {
	clock := simtime.NewFakeClock(time.Unix(0, 0))
	net := transport.NewNetwork(simtime.Default())
	s := NewServer("ttl@fiji", 7003, 1)
	s.Metrics = metrics.Discard
	var calls atomic.Int64
	s.Register(lookupProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		calls.Add(1)
		v, _ := args.Field(0)
		return marshal.StructV(v), nil
	})
	s.EnableReplyCache(clock, time.Minute, 0)
	ln, b, err := Serve(net, s, SuiteRaw, "fiji", "fiji:ttl")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := NewClient(net)
	defer c.Close()

	callCost(t, c, b, lookupProc, "fiji")
	callCost(t, c, b, lookupProc, "fiji")
	if calls.Load() != 1 {
		t.Fatalf("warm repeat hit the handler (%d)", calls.Load())
	}
	clock.Advance(2 * time.Minute)
	callCost(t, c, b, lookupProc, "fiji")
	if calls.Load() != 2 {
		t.Fatalf("expired entry still served (%d handler calls)", calls.Load())
	}
}

// TestAppendersMatchEncoders pins the pooled append path of every built-in
// control protocol to its allocating encoder, for both reply statuses and
// with recycled (dirty) destination buffers.
func TestAppendersMatchEncoders(t *testing.T) {
	h := CallHeader{XID: 0xdeadbeef, Program: 100017, Version: 1, Procedure: 4}
	args := []byte("args bytes \x00\xff")
	replies := []ReplyHeader{
		{XID: 0xdeadbeef},
		{XID: 7, Err: "no such zone"},
	}
	for _, name := range []string{"raw", "sunrpc", "courier"} {
		ctl, err := LookupControl(name)
		if err != nil {
			t.Fatal(err)
		}
		ca, ok := ctl.(CallAppender)
		if !ok {
			t.Fatalf("%s: built-in protocol lacks CallAppender", name)
		}
		ra, ok := ctl.(ReplyAppender)
		if !ok {
			t.Fatalf("%s: built-in protocol lacks ReplyAppender", name)
		}
		want, err := ctl.EncodeCall(h, args)
		if err != nil {
			t.Fatal(err)
		}
		dirty := append(make([]byte, 0, 128), 0xaa, 0xbb)
		got, err := ca.AppendCall(dirty[:0], h, args)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: AppendCall differs from EncodeCall", name)
		}
		for _, rh := range replies {
			want, err := ctl.EncodeReply(rh, []byte("results"))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ra.AppendReply(dirty[:0], rh, []byte("results"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: AppendReply (err=%q) differs from EncodeReply", name, rh.Err)
			}
		}
	}
}
