package hrpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"hns/internal/marshal"
	"hns/internal/simtime"
	"hns/internal/transport"
)

// flakyNetwork builds a network with a lossy UDP variant registered as
// "udp-lossy" and an echo server reachable through it.
func flakyNetwork(t *testing.T, fail transport.FailFunc) (*transport.Network, Binding) {
	t.Helper()
	net := transport.NewNetwork(simtime.Default())
	inner, err := net.Transport("udp")
	if err != nil {
		t.Fatal(err)
	}
	net.Register(transport.NewFaulty(inner, "udp-lossy", fail))

	s := NewServer("echo", 7100, 1)
	s.Register(echoProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		return args, nil
	})
	suite := Suite{Transport: "udp-lossy", DataRep: "xdr", Control: "sunrpc"}
	ln, b, err := Serve(net, s, suite, "h", "h:echo-lossy")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return net, b
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	// Every other datagram is lost; a client with one retry always
	// succeeds.
	net, b := flakyNetwork(t, transport.DropEvery(2))
	c := NewClient(net)
	c.Retries = 1
	defer c.Close()
	for i := 0; i < 8; i++ {
		if _, err := c.Call(context.Background(), b, echoProc,
			marshal.StructV(marshal.Str("x"))); err != nil {
			t.Fatalf("call %d failed despite retries: %v", i, err)
		}
	}
}

func TestNoRetriesSurfacesLoss(t *testing.T) {
	net, b := flakyNetwork(t, transport.DropFirst(1))
	c := NewClient(net)
	defer c.Close()
	_, err := c.Call(context.Background(), b, echoProc, marshal.StructV(marshal.Str("x")))
	if !errors.Is(err, transport.ErrInjectedLoss) {
		t.Fatalf("want injected loss, got %v", err)
	}
	// The next call (network healthy again) succeeds.
	if _, err := c.Call(context.Background(), b, echoProc, marshal.StructV(marshal.Str("x"))); err != nil {
		t.Fatal(err)
	}
}

func TestRetryChargesTimeout(t *testing.T) {
	net, b := flakyNetwork(t, transport.DropFirst(1))
	model := net.Model()
	c := NewClient(net)
	c.Retries = 2
	defer c.Close()
	cost, err := simtime.Measure(context.Background(), func(ctx context.Context) error {
		_, err := c.Call(ctx, b, echoProc, marshal.StructV(marshal.Str("x")))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// One loss → exactly one retransmission timeout plus one successful
	// round trip; the cost must sit in [timeout+rtt, timeout+rtt+slack).
	min := model.RetransmitTimeout + model.RTTUDP
	if cost < min || cost > min+20*time.Millisecond {
		t.Fatalf("cost = %v, want ≈ %v", cost, min)
	}
}

func TestRetriesExhausted(t *testing.T) {
	net, b := flakyNetwork(t, func(int) bool { return true }) // total blackout
	c := NewClient(net)
	c.Retries = 3
	defer c.Close()
	_, err := c.Call(context.Background(), b, echoProc, marshal.StructV(marshal.Str("x")))
	if !errors.Is(err, transport.ErrInjectedLoss) {
		t.Fatalf("want injected loss after exhausting retries, got %v", err)
	}
}

func TestRemoteFaultNotRetried(t *testing.T) {
	// A live server's error must not be retransmitted.
	net := transport.NewNetwork(simtime.Default())
	calls := 0
	s := NewServer("faulty", 7101, 1)
	s.Register(echoProc, func(ctx context.Context, args marshal.Value) (marshal.Value, error) {
		calls++
		return marshal.Value{}, errors.New("permanent refusal")
	})
	ln, b, err := Serve(net, s, SuiteSunRPC, "h", "h:faulty-retry")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := NewClient(net)
	c.Retries = 5
	defer c.Close()
	_, err = c.Call(context.Background(), b, echoProc, marshal.StructV(marshal.Str("x")))
	var rf *RemoteFault
	if !errors.As(err, &rf) {
		t.Fatalf("want RemoteFault, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("server saw %d calls; remote faults must not be retried", calls)
	}
}

func TestRetryRespectsCancelledContext(t *testing.T) {
	net, b := flakyNetwork(t, func(int) bool { return true })
	c := NewClient(net)
	c.Retries = 100
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := c.Call(ctx, b, echoProc, marshal.StructV(marshal.Str("x")))
	if err == nil {
		t.Fatal("call succeeded on dead context")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled call kept retrying")
	}
}
